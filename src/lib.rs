//! Workspace-level umbrella crate: hosts the runnable `examples/` and the
//! cross-crate integration tests in `tests/`. Re-exports the public crates
//! for convenience.
pub use mpisim;
pub use mpjbuf;
pub use mrt;
pub use mvapich2j;
pub use nif;
pub use ombj;
pub use openmpij;
pub use simfabric;
pub use vtime;
