//! Differential conformance harness over the full bindings stack.
//!
//! A seeded LCG draws random collectives, message sizes, roots, reduce
//! ops, and communicator splits; every drawn case runs through the
//! bindings (blocking *and* non-blocking, buffer *and* array flavor) and
//! is checked against a naive flat reference computed in plain Rust from
//! the deterministic per-rank inputs. On top of payload correctness the
//! harness asserts:
//!
//! * **cross-flavor equivalence** — the array-flavor digest equals the
//!   buffer-flavor digest for the same seed (same bytes through a
//!   different staging path);
//! * **virtual-time determinism** — a rerun reproduces every rank's
//!   final clock bit-for-bit.

mod harness;

use harness::{conformance_body, rma_body};
use mvapich2j::{run_job, run_job_with_obs, JobConfig, Topology};

fn conformance_job(ranks: usize, trials: u64, seed: u64, arrays: bool) -> Vec<(u64, u64)> {
    let topo = if ranks > 4 {
        Topology::new(ranks / 4, 4)
    } else {
        Topology::single_node(ranks)
    };
    run_job(JobConfig::mvapich2j(topo), move |env| {
        conformance_body(env, trials, seed, arrays)
    })
}

/// Buffer and array flavors must produce byte-identical payloads, and a
/// rerun must reproduce every clock bit-for-bit.
fn check(ranks: usize, trials: u64, seed: u64) {
    let buf = conformance_job(ranks, trials, seed, false);
    let arr = conformance_job(ranks, trials, seed, true);
    for r in 0..ranks {
        assert_eq!(
            buf[r].0, arr[r].0,
            "rank {r}: array flavor diverged from buffer flavor"
        );
    }
    let again = conformance_job(ranks, trials, seed, false);
    assert_eq!(buf, again, "virtual time not deterministic across reruns");
}

#[test]
fn conformance_2_ranks() {
    check(2, 12, 1);
}

#[test]
fn conformance_4_ranks() {
    check(4, 10, 2);
}

#[test]
fn conformance_16_ranks() {
    check(16, 6, 3);
}

// ----------------------------------------------------------------------
// One-sided (RMA) conformance
// ----------------------------------------------------------------------

fn rma_job(ranks: usize, seed: u64, arrays: bool) -> Vec<(u64, u64)> {
    let topo = if ranks > 4 {
        Topology::new(ranks / 4, 4)
    } else {
        Topology::single_node(ranks)
    };
    run_job(JobConfig::mvapich2j(topo), move |env| {
        rma_body(env, seed, arrays)
    })
}

/// RMA cross-flavor equivalence and determinism: buffer- and array-backed
/// windows produce byte-identical contents, and a rerun reproduces every
/// rank's final clock bit-for-bit.
fn rma_check(ranks: usize, seed: u64) {
    let buf = rma_job(ranks, seed, false);
    let arr = rma_job(ranks, seed, true);
    for r in 0..ranks {
        assert_eq!(
            buf[r].0, arr[r].0,
            "rank {r}: array-backed window diverged from buffer-backed"
        );
    }
    let again = rma_job(ranks, seed, false);
    assert_eq!(
        buf, again,
        "RMA virtual time not deterministic across reruns"
    );
}

#[test]
fn rma_conformance_2_ranks() {
    rma_check(2, 11);
}

#[test]
fn rma_conformance_4_ranks() {
    rma_check(4, 12);
}

/// The comparator flavor supports the same one-sided API (windows are
/// buffer-based underneath either way); digests must agree with
/// MVAPICH2-J's over the same seed.
#[test]
fn rma_conformance_across_libraries() {
    let seed = 13;
    let mv = rma_job(4, seed, false);
    let om = run_job(
        JobConfig::mvapich2j(Topology::single_node(4))
            .with_flavor(mvapich2j::OPENMPIJ, mvapich2j::Profile::openmpi_ucx()),
        move |env| rma_body(env, seed, false),
    );
    for r in 0..4 {
        assert_eq!(
            mv[r].0, om[r].0,
            "rank {r}: Open MPI-J window contents diverged"
        );
    }
}

/// Satellite check for the flavor comparison: the network-layer pvar
/// deltas (pt2pt/coll/fabric) are identical across flavors — the staging
/// path differs only in pool and copy counters.
#[test]
fn cross_flavor_pvar_deltas_match_except_pool_and_copies() {
    let run_with = |arrays: bool| {
        let (_, report) =
            run_job_with_obs(JobConfig::mvapich2j(Topology::single_node(4)), move |env| {
                conformance_body(env, 8, 7, arrays)
            });
        report.merged_pvars()
    };
    let buf = run_with(false);
    let arr = run_with(true);
    // `unexpected_hits` counts arrival-before-post races, and the array
    // flavor's charged staging copies legitimately shift when receives
    // are posted relative to arrivals — every other network counter is
    // purely structural and must match.
    let network = |name: &str| {
        (name.starts_with("pt2pt.") || name.starts_with("coll.") || name.starts_with("fabric."))
            && name != "pt2pt.unexpected_hits"
    };
    for (name, v) in arr.iter() {
        if !network(name) {
            continue;
        }
        if let Some(c) = v.as_counter() {
            assert_eq!(
                buf.counter(name),
                c,
                "network pvar {name} differs between flavors"
            );
        }
    }
    assert!(arr.counter("coll.nb.posted") > 0, "harness drew NBC cases");
    // The staging path is the difference the paper describes: the pool
    // only works for the array flavor.
    assert!(arr.counter("mpjbuf.pool.hits") + arr.counter("mpjbuf.pool.misses") > 0);
    assert_eq!(
        buf.counter("mpjbuf.pool.hits") + buf.counter("mpjbuf.pool.misses"),
        0
    );
}
