//! Workspace-level RMA tests: the zero-copy contract for direct-buffer
//! windows (registration cache, no staging traffic), the staged path for
//! array windows, LRU pressure on the pin-down cache, and the typed
//! failure a dead target NIC must surface through an RMA epoch.

use mvapich2j::datatype::INT;
use mvapich2j::{run_job, run_job_with_obs, BindError, JobConfig, Topology};
use simfabric::FaultPlan;

/// Direct-buffer Put over the rendezvous (zero-copy) path: the origin
/// buffer is pinned once, re-used from the registration cache on every
/// later epoch, and the payload never touches the mpjbuf staging pool.
#[test]
fn direct_buffer_put_is_zero_copy_through_the_reg_cache() {
    let n = 64 * 1024usize; // > rma_eager_threshold for every flavor
    let k = (n / 4) as i32;
    let rounds = 4u64;
    let (_, report) =
        run_job_with_obs(JobConfig::mvapich2j(Topology::single_node(2)), move |env| {
            let w = env.world();
            let me = env.rank();
            let peer = 1 - me;
            let buf = env.new_direct(n);
            let origin = env.new_direct(n);
            let win = env.win_create_buffer(buf, w).unwrap();
            for round in 0..rounds as i32 {
                for i in 0..16 {
                    env.direct_put::<i32>(origin, i * 4, round ^ (me as i32) << 8 ^ i as i32)
                        .unwrap();
                }
                env.win_fence(win).unwrap();
                env.put_buffer(win, origin, k, &INT, peer, 0).unwrap();
                env.win_fence(win).unwrap();
                for i in 0..16 {
                    assert_eq!(
                        env.direct_get::<i32>(buf, i * 4).unwrap(),
                        round ^ (peer as i32) << 8 ^ i as i32,
                        "round {round} word {i}"
                    );
                }
            }
            env.win_free(win).unwrap();
        });
    let pvars = report.merged_pvars();
    let msgs = 2 * rounds;
    assert_eq!(pvars.counter("rma.put.msgs"), msgs);
    assert_eq!(
        pvars.counter("rma.put.eager"),
        0,
        "64 KiB puts must take the rendezvous path"
    );
    assert_eq!(pvars.counter("rma.put.zcopy"), msgs);
    // One pin per rank (first epoch), cache hits ever after.
    assert_eq!(pvars.counter("rma.reg.miss"), 2);
    assert_eq!(pvars.counter("rma.reg.hit"), msgs - 2);
    assert_eq!(pvars.counter("rma.reg.evict"), 0);
    // The zero-copy contract: no staging buffer was ever requested.
    assert_eq!(pvars.counter("mpjbuf.pool.hits"), 0);
    assert_eq!(pvars.counter("mpjbuf.pool.misses"), 0);
    assert_eq!(pvars.counter("mpjbuf.pool.fallback_allocs"), 0);
}

/// The same workload over array windows must stage: GC-movable storage
/// is gathered into a pooled pinned buffer before it hits the NIC.
#[test]
fn array_window_put_stages_through_the_pool() {
    let elems = 16 * 1024usize;
    let (_, report) =
        run_job_with_obs(JobConfig::mvapich2j(Topology::single_node(2)), move |env| {
            let w = env.world();
            let me = env.rank() as i32;
            let peer = (1 - me) as usize;
            let arr = env.new_array::<i32>(elems).unwrap();
            let origin = env.new_array::<i32>(elems).unwrap();
            let win = env.win_create_array(arr, w).unwrap();
            let vals: Vec<i32> = (0..elems as i32).map(|i| me << 20 | i).collect();
            env.array_write(origin, 0, &vals).unwrap();
            env.win_fence(win).unwrap();
            env.put_array(win, origin, elems as i32, peer, 0).unwrap();
            env.win_fence(win).unwrap();
            let mut got = vec![0i32; elems];
            env.array_read(arr, 0, &mut got).unwrap();
            for (i, v) in got.iter().enumerate() {
                assert_eq!(*v, (1 - me) << 20 | i as i32, "word {i}");
            }
            env.win_free(win).unwrap();
        });
    let pvars = report.merged_pvars();
    assert_eq!(pvars.counter("rma.put.msgs"), 2);
    assert!(
        pvars.counter("mpjbuf.pool.hits") + pvars.counter("mpjbuf.pool.misses") > 0,
        "array origins must stage through the pool"
    );
    assert_eq!(
        pvars.counter("mpjbuf.pool.releases"),
        pvars.counter("mpjbuf.pool.hits") + pvars.counter("mpjbuf.pool.misses"),
        "every staging buffer goes back to the pool"
    );
}

/// More pinned regions than the cache holds: the LRU entry is unpinned
/// and `rma.reg.evict` accounts for it.
#[test]
fn reg_cache_evicts_lru_under_pressure() {
    let n = 16 * 1024usize; // > threshold, so every region registers
    let regions = 68usize; // REG_CACHE_REGIONS is 64
    let (_, report) =
        run_job_with_obs(JobConfig::mvapich2j(Topology::single_node(2)), move |env| {
            let w = env.world();
            let me = env.rank();
            let peer = 1 - me;
            let buf = env.new_direct(n);
            let win = env.win_create_buffer(buf, w).unwrap();
            env.win_fence(win).unwrap();
            for _ in 0..regions {
                let origin = env.new_direct(n);
                env.put_buffer(win, origin, (n / 4) as i32, &INT, peer, 0)
                    .unwrap();
            }
            env.win_fence(win).unwrap();
            env.win_free(win).unwrap();
        });
    let pvars = report.merged_pvars();
    assert_eq!(pvars.counter("rma.reg.miss"), 2 * regions as u64);
    assert_eq!(pvars.counter("rma.reg.hit"), 0);
    assert_eq!(
        pvars.counter("rma.reg.evict"),
        2 * (regions as u64 - 64),
        "regions beyond capacity must evict the LRU pin"
    );
}

/// A traced `osu_put_latency` run must attribute one-sided time: the
/// analyzer's `rma` category (registration + epoch waits) owns a slice
/// of wall time and the series itself still measures.
#[test]
fn rma_time_shows_up_in_attribution() {
    use ombj::{run_with_obs, Api, BenchOptions, Benchmark, Library, RunSpec};
    let spec = RunSpec {
        library: Library::Mvapich2J,
        benchmark: Benchmark::PutLatency,
        api: Api::Buffer,
        topo: Topology::single_node(2),
        opts: BenchOptions {
            max_size: 1 << 14,
            ..BenchOptions::quick()
        },
        faults: None,
        engine: simfabric::EngineMode::Threaded,
    };
    let (series, report) = run_with_obs(spec, obs::ObsOptions::traced());
    let s = series.expect("put_latency runs");
    assert!(s.points.iter().all(|p| p.value > 0.0));
    let a = obs::analyze::analyze(&report);
    assert!(!a.buckets.is_empty());
    assert!(
        a.category_share_pct("rma") > 0.0,
        "registration and epoch waits must land in the rma category:\n{}",
        a.render_text()
    );
    assert!(
        a.render_text().contains("rma%"),
        "report grows an rma column"
    );
}

/// A target whose NIC dies mid-epoch (the rank stops progressing, its
/// RDMA completions never come back) must surface as a typed
/// `RankFailed` from the origin's closing fence within the watchdog
/// bound — not hang the epoch forever.
#[test]
fn dead_target_nic_surfaces_rank_failed_within_watchdog() {
    let mut plan = FaultPlan::new(0);
    // The crash entry arms the watchdog; the crash time is never reached
    // in virtual time, so rank 1's death below is purely a simulated NIC
    // failure (it returns early and stops serving one-sided traffic).
    plan.crash = Some((1, 1e15));
    plan.watchdog_ms = 100;
    plan.rto_ns = 50.0;
    plan.max_retries = 3;
    let results = run_job(
        JobConfig::mvapich2j(Topology::single_node(2)).with_faults(plan),
        |env| {
            let w = env.world();
            env.native_mut()
                .set_errhandler(w, mpisim::Errhandler::ErrorsReturn)
                .unwrap();
            let me = env.rank();
            let buf = env.new_direct(64 * 4);
            let win = env.win_create_buffer(buf, w).unwrap();
            env.win_fence(win).unwrap();
            if me == 1 {
                // Dead NIC: never serve the GetReq, never join the
                // closing fence.
                return None;
            }
            let started = std::time::Instant::now();
            let dest = env.new_direct(64 * 4);
            let err = env
                .get_buffer(win, dest, 64, &INT, 1, 0)
                .and_then(|_| env.win_fence(win))
                .unwrap_err();
            assert!(
                started.elapsed().as_millis() < 5_000,
                "watchdog must fire near its bound"
            );
            Some(err)
        },
    );
    assert_eq!(
        results[0],
        Some(BindError::Mpi(mpisim::MpiError::RankFailed { rank: 1 })),
        "origin must see the dead target as a typed rank failure"
    );
    assert_eq!(results[1], None);
}
