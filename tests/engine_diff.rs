//! Engine-differential tier: the threaded engine (one OS thread per
//! rank, real blocking) and the event-driven engine (cooperative
//! discrete-event scheduler) must be *observationally identical* on
//! every determinism surface. The seeded conformance generator (shared
//! with `tests/conformance.rs` via `tests/harness/`) draws collectives,
//! sizes, roots, reduce ops, and communicator splits — blocking and
//! non-blocking, buffer and array flavor — plus the four-epoch
//! one-sided (RMA) workload, and each sampled case runs under both
//! engines. The assertions are exact, not statistical:
//!
//! * **byte-identical payload digests** — both engines moved the same
//!   bytes through the same algorithms;
//! * **bit-identical virtual clocks** — arrival times are a pure
//!   function of per-sender program order, so the schedule an engine
//!   picks must not leak into virtual time;
//! * **identical pvar deltas** — except the small documented set of
//!   arrival-vs-post race counters, which legitimately depend on *when*
//!   a frame lands relative to the matching receive being posted;
//! * **rerun stability** — the event engine replays itself exactly.

mod harness;

use harness::{conformance_body, rma_body};
use mvapich2j::{run_job, run_job_with_obs, EngineMode, JobConfig, Topology};

/// Pvars whose deltas legitimately differ across engines (and reruns of
/// the threaded engine): they count arrival-before-post races, and the
/// two engines interleave frame arrival with receive posting
/// differently while producing the same payloads and virtual clocks.
const RACY_PVARS: [&str; 4] = [
    "pt2pt.unexpected_hits",
    "pt2pt.unexpected_depth",
    "pt2pt.match.maxdepth",
    "rma.epoch.deferred",
];

fn topo(ranks: usize) -> Topology {
    if ranks > 4 {
        Topology::new(ranks / 4, 4)
    } else {
        Topology::single_node(ranks)
    }
}

fn cfg(ranks: usize, engine: EngineMode, openmpij: bool) -> JobConfig {
    let cfg = JobConfig::mvapich2j(topo(ranks)).with_engine(engine);
    if openmpij {
        cfg.with_flavor(mvapich2j::OPENMPIJ, mvapich2j::Profile::openmpi_ucx())
    } else {
        cfg
    }
}

fn conformance_on(
    engine: EngineMode,
    ranks: usize,
    trials: u64,
    seed: u64,
    arrays: bool,
    openmpij: bool,
) -> Vec<(u64, u64)> {
    run_job(cfg(ranks, engine, openmpij), move |env| {
        conformance_body(env, trials, seed, arrays)
    })
}

fn assert_engines_agree(a: &[(u64, u64)], b: &[(u64, u64)], what: &str) {
    for (r, (t, e)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            t.0, e.0,
            "{what}: rank {r} payload digest differs across engines"
        );
        assert_eq!(
            t.1, e.1,
            "{what}: rank {r} virtual clock differs across engines"
        );
    }
}

/// Every sampled collective case — blocking and NBC, world and split
/// communicators, both binding flavors — produces the same payload
/// digest and the same final clock bits under both engines.
#[test]
fn collectives_match_across_engines_both_flavors() {
    for arrays in [false, true] {
        let threaded = conformance_on(EngineMode::Threaded, 4, 10, 2, arrays, false);
        let event = conformance_on(EngineMode::EventDriven, 4, 10, 2, arrays, false);
        assert_engines_agree(&threaded, &event, if arrays { "arrays" } else { "buffer" });
    }
}

/// Same at 16 ranks (multi-node topology, hierarchical collectives).
#[test]
fn collectives_match_across_engines_16_ranks() {
    let threaded = conformance_on(EngineMode::Threaded, 16, 6, 3, false, false);
    let event = conformance_on(EngineMode::EventDriven, 16, 6, 3, false, false);
    assert_engines_agree(&threaded, &event, "16 ranks");
}

/// The comparator flavor (Open MPI-J profile) is engine-invariant too.
#[test]
fn openmpij_flavor_matches_across_engines() {
    let threaded = conformance_on(EngineMode::Threaded, 4, 8, 5, false, true);
    let event = conformance_on(EngineMode::EventDriven, 4, 8, 5, false, true);
    assert_engines_agree(&threaded, &event, "openmpij");
}

/// One-sided epochs (active fence, accumulate, get, passive
/// lock/unlock) are engine-invariant for both window backings.
#[test]
fn rma_matches_across_engines_both_flavors() {
    for arrays in [false, true] {
        let seed = 11;
        let run_on = |engine| {
            run_job(cfg(4, engine, false), move |env| {
                rma_body(env, seed, arrays)
            })
        };
        let threaded = run_on(EngineMode::Threaded);
        let event = run_on(EngineMode::EventDriven);
        assert_engines_agree(
            &threaded,
            &event,
            if arrays { "rma arrays" } else { "rma buffer" },
        );
    }
}

/// The event engine replays itself bit-for-bit: digests, clocks, and
/// the *entire* merged pvar surface (racy counters included — within
/// one engine the interleaving is deterministic).
#[test]
fn event_engine_reruns_are_bit_identical() {
    let run_once = || {
        let (results, report) = run_job_with_obs(
            cfg(4, EngineMode::EventDriven, false).with_obs(obs::ObsOptions::default()),
            move |env| conformance_body(env, 8, 7, false),
        );
        (results, report.pvar_dump())
    };
    let (r1, p1) = run_once();
    let (r2, p2) = run_once();
    assert_eq!(r1, r2, "event engine must replay digests and clocks");
    assert_eq!(p1, p2, "event engine must replay the full pvar dump");
}

/// Pvar deltas match across engines for everything except the
/// documented arrival-vs-post race counters: same message counts, same
/// protocol splits, same retransmissions, same pool traffic.
#[test]
fn pvar_deltas_match_across_engines_except_racy() {
    let run_on = |engine: EngineMode| {
        let (_, report) = run_job_with_obs(
            cfg(4, engine, false).with_obs(obs::ObsOptions::default()),
            move |env| conformance_body(env, 8, 7, true),
        );
        report.merged_pvars()
    };
    let threaded = run_on(EngineMode::Threaded);
    let event = run_on(EngineMode::EventDriven);
    let mut compared = 0usize;
    for (name, v) in event.iter() {
        if RACY_PVARS.iter().any(|&r| r == name) {
            continue;
        }
        if let Some(c) = v.as_counter() {
            assert_eq!(
                threaded.counter(name),
                c,
                "pvar {name} differs between engines"
            );
            compared += 1;
        }
    }
    assert!(
        compared > 10,
        "the comparison must cover the pvar surface (saw {compared})"
    );
    // The workload exercised every layer the tier claims to compare.
    assert!(
        event.counter("coll.nb.posted") > 0,
        "harness drew NBC cases"
    );
    assert!(event.counter("pt2pt.eager_msgs") > 0);
    assert!(event.counter("mpjbuf.pool.hits") > 0, "array flavor staged");
}

/// Same contract for the one-sided pvar surface.
#[test]
fn rma_pvar_deltas_match_across_engines_except_racy() {
    let run_on = |engine: EngineMode| {
        let (_, report) = run_job_with_obs(
            cfg(4, engine, false).with_obs(obs::ObsOptions::default()),
            move |env| rma_body(env, 12, false),
        );
        report.merged_pvars()
    };
    let threaded = run_on(EngineMode::Threaded);
    let event = run_on(EngineMode::EventDriven);
    for (name, v) in event.iter() {
        if !name.starts_with("rma.") || RACY_PVARS.iter().any(|&r| r == name) {
            continue;
        }
        if let Some(c) = v.as_counter() {
            assert_eq!(
                threaded.counter(name),
                c,
                "rma pvar {name} differs between engines"
            );
        }
    }
    assert!(event.counter("rma.put.msgs") > 0, "harness issued puts");
}
