//! Workspace-level tests for the observability layer's two contracts:
//!
//! * **Determinism** — all trace timestamps are virtual, so two identical
//!   traced runs serialize to byte-identical Chrome trace files and pvar
//!   dumps.
//! * **Zero virtual cost** — instrumentation only reads virtual clocks,
//!   so every measured number is bit-identical with tracing on or off.

use mvapich2j::{run_job_with_obs, EngineMode, JobConfig, Topology};
use ombj::{run_with_obs, Api, BenchOptions, Benchmark, Library, RunSpec};

fn latency_spec() -> RunSpec {
    // Inter-node osu_latency: crosses the eager→rendezvous switch.
    RunSpec {
        library: Library::Mvapich2J,
        benchmark: Benchmark::Latency,
        api: Api::Buffer,
        topo: Topology::new(2, 1),
        opts: BenchOptions {
            max_size: 1 << 17,
            ..BenchOptions::quick()
        },
        faults: None,
        engine: EngineMode::Threaded,
    }
}

#[test]
fn traced_runs_serialize_byte_identically() {
    let run_once = || {
        let (series, report) = run_with_obs(latency_spec(), obs::ObsOptions::traced());
        (
            series.expect("latency runs"),
            report.chrome_trace_json(),
            report.pvar_dump(),
        )
    };
    let (s1, trace1, pvars1) = run_once();
    let (s2, trace2, pvars2) = run_once();
    assert_eq!(s1, s2, "measured series must replay exactly");
    assert_eq!(trace1, trace2, "trace files must be byte-identical");
    assert_eq!(pvars1, pvars2, "pvar dumps must be byte-identical");

    // The trace is a Chrome trace_event JSON object with per-rank
    // process rows and complete spans.
    assert!(trace1.starts_with('{') && trace1.trim_end().ends_with('}'));
    assert!(trace1.contains(r#""traceEvents":["#));
    assert!(trace1.contains(r#""name":"process_name""#));
    assert!(trace1.contains(r#""name":"rank 1 (MVAPICH2-J, threaded engine)""#));
    assert!(trace1.contains(r#""ph":"X""#), "complete spans present");
    assert!(trace1.contains(r#""cat":"pt2pt""#));
    assert!(trace1.contains(r#""proto":"eager""#));
    assert!(
        trace1.contains(r#""proto":"rndv""#),
        "128 kB sweeps past the rndv threshold"
    );
}

#[test]
fn tracing_has_zero_virtual_cost() {
    // Every observability sink — tracer, flight ring, telemetry sampler,
    // and all three together — only *reads* virtual clocks. The measured
    // series must be bit-identical whichever combination is live.
    let (without, _) = run_with_obs(latency_spec(), obs::ObsOptions::default());
    let baseline = without.unwrap().points;
    for (label, o) in [
        ("tracing", obs::ObsOptions::traced()),
        ("flight", obs::ObsOptions::default().with_flight()),
        ("telemetry", obs::ObsOptions::default().with_telemetry(0.0)),
        (
            "all sinks",
            obs::ObsOptions::traced().with_flight().with_telemetry(0.0),
        ),
    ] {
        let (with, _) = run_with_obs(latency_spec(), o);
        assert_eq!(
            with.unwrap().points,
            baseline,
            "{label} must not advance any virtual clock"
        );
    }
}

#[test]
fn fig14_is_bit_identical_with_tracing_on() {
    let plain = ombj_bench::run_figure("fig14", ombj_bench::Scale::Quick);
    ombj_bench::figures::set_tracing(true);
    let traced = ombj_bench::run_figure("fig14", ombj_bench::Scale::Quick);
    ombj_bench::figures::set_tracing(false);
    assert_eq!(
        plain.series, traced.series,
        "figure output must not depend on tracing"
    );
}

#[test]
fn pvar_snapshot_covers_every_layer() {
    let spec = RunSpec {
        api: Api::Arrays,
        ..latency_spec()
    };
    let (_, report) = run_with_obs(spec, obs::ObsOptions::default());
    let merged = report.merged_pvars();
    // Engine (pt2pt), bindings, managed runtime, pool — one pvar from
    // each layer on the benchmark path proves the wiring end to end.
    for name in [
        "pt2pt.eager_msgs",
        "pt2pt.rndv_msgs",
        "bind.calls",
        "mrt.heap.allocs",
        "mpjbuf.pool.hits",
    ] {
        assert!(merged.counter(name) > 0, "pvar {name} missing or zero");
    }
}

#[test]
fn nif_crossing_pvars_cover_all_three_access_modes() {
    // The benchmark path charges JNI costs from the cost model, so the
    // `nif` crate's pvars are exercised at its own API surface: one
    // counter per access mode the paper distinguishes.
    use vtime::{Clock, CostModel};
    obs::install(0, obs::ObsOptions::default());
    let mut rt = mrt::Runtime::new(CostModel::default());
    let mut clock = Clock::new();
    nif::jni_transition(&rt, &mut clock);
    let arr = rt.alloc_array::<i32>(16, &mut clock).unwrap();
    let native = nif::get_array_elements(&rt, &mut clock, arr).unwrap();
    nif::release_array_elements(&mut rt, &mut clock, arr, &native, nif::ReleaseMode::Abort)
        .unwrap();
    {
        let _g = nif::get_primitive_array_critical(&mut rt, &mut clock, arr).unwrap();
    }
    let db = rt.allocate_direct(64, &mut clock);
    let _ = nif::get_direct_buffer_address(&rt, &mut clock, db).unwrap();
    let report = obs::uninstall().expect("recorder installed");
    let pvars = &report.pvars;
    assert_eq!(pvars.counter("nif.transitions"), 1);
    assert_eq!(pvars.counter("nif.crossings.copy"), 2);
    assert_eq!(pvars.counter("nif.crossings.critical"), 1);
    assert!(pvars.counter("nif.crossings.direct") >= 1);
}

#[test]
fn bcast_recv_flows_pair_with_exactly_one_send() {
    // Tentpole contract: on a 4-rank bcast, every consumed message (flow
    // `End`) pairs with exactly one injection (flow `Begin`) — no orphans,
    // no duplicate flow ids — and the constituent messages carry a
    // collective instance id the analyzer can group.
    let spec = RunSpec {
        library: Library::Mvapich2J,
        benchmark: Benchmark::Collective(ombj::CollOp::Bcast),
        api: Api::Buffer,
        topo: Topology::new(2, 2),
        opts: BenchOptions {
            max_size: 1 << 12,
            ..BenchOptions::quick()
        },
        faults: None,
        engine: EngineMode::Threaded,
    };
    let (_, report) = run_with_obs(spec, obs::ObsOptions::traced());
    let a = obs::analyze::analyze(&report);
    assert!(a.flows.sends > 0, "bcast must inject messages");
    assert_eq!(a.flows.sends, a.flows.recvs, "every send is consumed");
    assert_eq!(a.flows.unmatched_recvs, 0, "recv without a matching send");
    assert_eq!(a.flows.unmatched_sends, 0, "send never consumed");
    assert_eq!(a.flows.duplicate_ids, 0, "flow ids must be unique");
    assert_eq!(a.dropped_events, 0, "default ring must hold a quick run");
    let bcast = a
        .collectives
        .iter()
        .find(|c| c.op == "bcast")
        .expect("bcast instances grouped by collective id");
    assert!(bcast.instances > 0);
    assert!(
        bcast.critical_hops >= 1,
        "a bcast critical path crosses at least one message edge"
    );
}

#[test]
fn latency_attribution_has_no_unattributed_gap() {
    // Tentpole contract: the critical path of each osu_latency iteration
    // equals the sum of the attributed segments — the per-size category
    // shares partition wall time exactly (gap == 0 by construction, and
    // the shares must sum to 100%).
    let (_, report) = run_with_obs(latency_spec(), obs::ObsOptions::traced());
    let a = obs::analyze::analyze(&report);
    assert!(!a.buckets.is_empty(), "size markers must produce buckets");
    for b in &a.buckets {
        assert!(
            b.unattributed_ns().abs() < 1e-6,
            "size {}: unattributed gap of {} ns",
            b.size,
            b.unattributed_ns()
        );
        let total: f64 = (0..obs::analyze::NCATS).map(|i| b.share_pct(i)).sum();
        assert!(
            (total - 100.0).abs() < 1e-6,
            "size {}: shares sum to {total}%",
            b.size
        );
    }
}

#[test]
fn arrays_attribution_shows_more_boundary_cost_than_buffers() {
    // The paper's headline story, recovered automatically: the arrays API
    // pays for staging copies and pool traffic that the direct-ByteBuffer
    // API never incurs.
    let run_api = |api| {
        let spec = RunSpec {
            api,
            ..latency_spec()
        };
        let (_, report) = run_with_obs(spec, obs::ObsOptions::traced());
        obs::analyze::analyze(&report)
    };
    let arrays = run_api(Api::Arrays);
    let buffer = run_api(Api::Buffer);
    assert!(
        arrays.boundary_share_pct() > buffer.boundary_share_pct(),
        "arrays copy+staging+gc share ({:.2}%) must exceed buffer's ({:.2}%)",
        arrays.boundary_share_pct(),
        buffer.boundary_share_pct()
    );
    assert!(
        arrays.category_share_pct("staging") > 0.0,
        "arrays runs stage through the pool"
    );
    assert_eq!(
        buffer.category_share_pct("staging"),
        0.0,
        "buffer runs never touch the staging layer"
    );
}

#[test]
fn analysis_output_is_byte_identical_across_runs() {
    let run_once = || {
        let (_, report) = run_with_obs(latency_spec(), obs::ObsOptions::traced());
        let a = obs::analyze::analyze(&report);
        (a.render_text(), a.render_json(), a.render_csv())
    };
    assert_eq!(run_once(), run_once(), "analysis must replay byte-for-byte");
}

#[test]
fn dropped_events_surface_in_pvars_and_analysis() {
    // A deliberately tiny ring drops events; the loss is recorded as the
    // `trace.dropped_events` pvar and the analyzer flags the truncation
    // instead of silently attributing a partial trace.
    let spec = latency_spec();
    let (_, report) = run_with_obs(
        spec,
        obs::ObsOptions {
            tracing: true,
            ring_capacity: 8,
            ..Default::default()
        },
    );
    assert!(
        report.merged_pvars().counter(obs::DROPPED_EVENTS_PVAR) > 0,
        "a 8-event ring cannot hold an osu_latency sweep"
    );
    let a = obs::analyze::analyze(&report);
    assert!(a.dropped_events > 0);
    assert!(
        a.render_text().contains("WARNING: trace ring dropped"),
        "analysis must surface the truncation"
    );
}

#[test]
fn unexpected_message_pvars_fire() {
    // Rank 1 sends tag 5 then tag 6; rank 0 receives tag 6 *first*.
    // Draining the mailbox for tag 6 parks the tag-5 message in the
    // unexpected queue (depth gauge); the second receive then finds it
    // there (hit counter).
    let (_, report) = run_job_with_obs(JobConfig::mvapich2j(Topology::new(2, 1)), |env| {
        let w = env.world();
        if env.rank() == 0 {
            let b6 = env.new_direct(64);
            env.recv_buffer(b6, 64, &mvapich2j::datatype::BYTE, 1, 6, w)
                .unwrap();
            let b5 = env.new_direct(64);
            env.recv_buffer(b5, 64, &mvapich2j::datatype::BYTE, 1, 5, w)
                .unwrap();
        } else {
            let buf = env.new_direct(64);
            env.send_buffer(buf, 64, &mvapich2j::datatype::BYTE, 0, 5, w)
                .unwrap();
            env.send_buffer(buf, 64, &mvapich2j::datatype::BYTE, 0, 6, w)
                .unwrap();
        }
    });
    let merged = report.merged_pvars();
    assert!(merged.counter("pt2pt.unexpected_hits") >= 1);
    let depth_max = merged
        .get("pt2pt.unexpected_depth")
        .and_then(|v| v.as_gauge_max())
        .expect("unexpected-depth gauge present");
    assert!(depth_max >= 1);
}
