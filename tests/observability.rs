//! Workspace-level tests for the observability layer's two contracts:
//!
//! * **Determinism** — all trace timestamps are virtual, so two identical
//!   traced runs serialize to byte-identical Chrome trace files and pvar
//!   dumps.
//! * **Zero virtual cost** — instrumentation only reads virtual clocks,
//!   so every measured number is bit-identical with tracing on or off.

use mvapich2j::{run_job_with_obs, JobConfig, Topology};
use ombj::{run_with_obs, Api, BenchOptions, Benchmark, Library, RunSpec};

fn latency_spec() -> RunSpec {
    // Inter-node osu_latency: crosses the eager→rendezvous switch.
    RunSpec {
        library: Library::Mvapich2J,
        benchmark: Benchmark::Latency,
        api: Api::Buffer,
        topo: Topology::new(2, 1),
        opts: BenchOptions {
            max_size: 1 << 17,
            ..BenchOptions::quick()
        },
    }
}

#[test]
fn traced_runs_serialize_byte_identically() {
    let run_once = || {
        let (series, report) = run_with_obs(latency_spec(), obs::ObsOptions::traced());
        (
            series.expect("latency runs"),
            report.chrome_trace_json(),
            report.pvar_dump(),
        )
    };
    let (s1, trace1, pvars1) = run_once();
    let (s2, trace2, pvars2) = run_once();
    assert_eq!(s1, s2, "measured series must replay exactly");
    assert_eq!(trace1, trace2, "trace files must be byte-identical");
    assert_eq!(pvars1, pvars2, "pvar dumps must be byte-identical");

    // The trace is a Chrome trace_event JSON object with per-rank
    // process rows and complete spans.
    assert!(trace1.starts_with('{') && trace1.trim_end().ends_with('}'));
    assert!(trace1.contains(r#""traceEvents":["#));
    assert!(trace1.contains(r#""name":"process_name""#));
    assert!(trace1.contains(r#""name":"rank 1 (MVAPICH2-J)""#));
    assert!(trace1.contains(r#""ph":"X""#), "complete spans present");
    assert!(trace1.contains(r#""cat":"pt2pt""#));
    assert!(trace1.contains(r#""proto":"eager""#));
    assert!(
        trace1.contains(r#""proto":"rndv""#),
        "128 kB sweeps past the rndv threshold"
    );
}

#[test]
fn tracing_has_zero_virtual_cost() {
    let (with, _) = run_with_obs(latency_spec(), obs::ObsOptions::traced());
    let (without, _) = run_with_obs(latency_spec(), obs::ObsOptions::default());
    assert_eq!(
        with.unwrap().points,
        without.unwrap().points,
        "recording trace events must not advance any virtual clock"
    );
}

#[test]
fn fig14_is_bit_identical_with_tracing_on() {
    let plain = ombj_bench::run_figure("fig14", ombj_bench::Scale::Quick);
    ombj_bench::figures::set_tracing(true);
    let traced = ombj_bench::run_figure("fig14", ombj_bench::Scale::Quick);
    ombj_bench::figures::set_tracing(false);
    assert_eq!(
        plain.series, traced.series,
        "figure output must not depend on tracing"
    );
}

#[test]
fn pvar_snapshot_covers_every_layer() {
    let spec = RunSpec {
        api: Api::Arrays,
        ..latency_spec()
    };
    let (_, report) = run_with_obs(spec, obs::ObsOptions::default());
    let merged = report.merged_pvars();
    // Engine (pt2pt), bindings, managed runtime, pool — one pvar from
    // each layer on the benchmark path proves the wiring end to end.
    for name in [
        "pt2pt.eager_msgs",
        "pt2pt.rndv_msgs",
        "bind.calls",
        "mrt.heap.allocs",
        "mpjbuf.pool.hits",
    ] {
        assert!(merged.counter(name) > 0, "pvar {name} missing or zero");
    }
}

#[test]
fn nif_crossing_pvars_cover_all_three_access_modes() {
    // The benchmark path charges JNI costs from the cost model, so the
    // `nif` crate's pvars are exercised at its own API surface: one
    // counter per access mode the paper distinguishes.
    use vtime::{Clock, CostModel};
    obs::install(0, obs::ObsOptions::default());
    let mut rt = mrt::Runtime::new(CostModel::default());
    let mut clock = Clock::new();
    nif::jni_transition(&rt, &mut clock);
    let arr = rt.alloc_array::<i32>(16, &mut clock).unwrap();
    let native = nif::get_array_elements(&rt, &mut clock, arr).unwrap();
    nif::release_array_elements(&mut rt, &mut clock, arr, &native, nif::ReleaseMode::Abort)
        .unwrap();
    {
        let _g = nif::get_primitive_array_critical(&mut rt, &mut clock, arr).unwrap();
    }
    let db = rt.allocate_direct(64, &mut clock);
    let _ = nif::get_direct_buffer_address(&rt, &mut clock, db).unwrap();
    let report = obs::uninstall().expect("recorder installed");
    let pvars = &report.pvars;
    assert_eq!(pvars.counter("nif.transitions"), 1);
    assert_eq!(pvars.counter("nif.crossings.copy"), 2);
    assert_eq!(pvars.counter("nif.crossings.critical"), 1);
    assert!(pvars.counter("nif.crossings.direct") >= 1);
}

#[test]
fn unexpected_message_pvars_fire() {
    // Rank 1 sends tag 5 then tag 6; rank 0 receives tag 6 *first*.
    // Draining the mailbox for tag 6 parks the tag-5 message in the
    // unexpected queue (depth gauge); the second receive then finds it
    // there (hit counter).
    let (_, report) = run_job_with_obs(JobConfig::mvapich2j(Topology::new(2, 1)), |env| {
        let w = env.world();
        if env.rank() == 0 {
            let b6 = env.new_direct(64);
            env.recv_buffer(b6, 64, &mvapich2j::datatype::BYTE, 1, 6, w)
                .unwrap();
            let b5 = env.new_direct(64);
            env.recv_buffer(b5, 64, &mvapich2j::datatype::BYTE, 1, 5, w)
                .unwrap();
        } else {
            let buf = env.new_direct(64);
            env.send_buffer(buf, 64, &mvapich2j::datatype::BYTE, 0, 5, w)
                .unwrap();
            env.send_buffer(buf, 64, &mvapich2j::datatype::BYTE, 0, 6, w)
                .unwrap();
        }
    });
    let merged = report.merged_pvars();
    assert!(merged.counter("pt2pt.unexpected_hits") >= 1);
    let depth_max = merged
        .get("pt2pt.unexpected_depth")
        .and_then(|v| v.as_gauge_max())
        .expect("unexpected-depth gauge present");
    assert!(depth_max >= 1);
}
