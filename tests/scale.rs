//! Scale tier: the event engine's reason to exist. One OS thread per
//! rank tops out around the low hundreds of ranks (stack + scheduler
//! pressure); the cooperative discrete-event scheduler runs exactly one
//! rank at a time, so a 1024-rank job is just a longer event loop in
//! one process.
//!
//! The quick tests (64–128 ranks) run in the default tier; the
//! 1024-rank and 256-rank-crash runs are `#[ignore]`d by default and
//! executed by CI's `scale` job (`cargo test --test scale -- --ignored`).

use ombj::{run_with_obs, Api, BenchOptions, Benchmark, CollOp, Library, RunSpec};
use simfabric::{EngineMode, FaultPlan, Topology};

fn coll_spec(op: CollOp, topo: Topology) -> RunSpec {
    RunSpec {
        library: Library::Mvapich2J,
        benchmark: Benchmark::Collective(op),
        api: Api::Buffer,
        topo,
        opts: BenchOptions {
            max_size: 1 << 10,
            ..BenchOptions::quick()
        },
        faults: None,
        engine: EngineMode::EventDriven,
    }
}

fn assert_completes(spec: RunSpec) {
    let (series, report) = run_with_obs(spec, obs::ObsOptions::profiled());
    let s = series.expect("collective completes at scale");
    assert!(!s.points.is_empty());
    assert!(s.points.iter().all(|p| p.value > 0.0));
    let perf = report.sim_perf.expect("profiling was on");
    assert_eq!(perf.engine, "event");
    assert!(perf.events() > 0);
}

/// 64 ranks in the default tier: cheap enough to run always, large
/// enough to catch scheduler regressions before the ignored tier does.
#[test]
fn bcast_64_ranks_event_engine() {
    assert_completes(coll_spec(CollOp::Bcast, Topology::new(8, 8)));
}

#[test]
fn allreduce_128_ranks_event_engine() {
    assert_completes(coll_spec(CollOp::Allreduce, Topology::new(16, 8)));
}

/// The acceptance run: a 1024-rank `osu_bcast` in one process.
#[test]
#[ignore = "scale tier: run via `cargo test --test scale -- --ignored` (CI `scale` job)"]
fn bcast_1024_ranks_event_engine() {
    assert_completes(coll_spec(CollOp::Bcast, Topology::new(16, 64)));
}

#[test]
#[ignore = "scale tier: run via `cargo test --test scale -- --ignored` (CI `scale` job)"]
fn allreduce_1024_ranks_event_engine() {
    assert_completes(coll_spec(CollOp::Allreduce, Topology::new(16, 64)));
}

/// Fault smoke at scale: a 256-rank job where the crash plan kills one
/// rank mid-sweep. The event engine's structural watchdog (a stalled
/// event loop, not a wall-clock timeout) must convert the stall into a
/// rank failure, and the incident bundle must name the failed rank.
fn crash_at_scale(topo: Topology, victim: usize) {
    let mut plan = FaultPlan::new(7);
    plan.crash = Some((victim, 200_000.0));
    plan.watchdog_ms = 100;
    let spec = RunSpec {
        library: Library::Mvapich2J,
        benchmark: Benchmark::Collective(CollOp::Allreduce),
        api: Api::Buffer,
        topo,
        opts: BenchOptions {
            max_size: 1 << 10,
            ..BenchOptions::quick()
        },
        faults: Some(plan),
        engine: EngineMode::EventDriven,
    };
    let (series, report) = run_with_obs(
        spec,
        obs::ObsOptions::default().with_flight().with_telemetry(0.0),
    );
    assert!(series.is_none(), "the planned crash aborts the benchmark");
    let bundle = report
        .incident_bundle_json()
        .expect("a crashed run must yield an incident bundle");
    let inc = obs::analyze::incident_from_json(&bundle).expect("bundle parses");
    assert_eq!(
        inc.failed_rank, victim,
        "the bundle must name the crashed rank"
    );
    assert_eq!(
        inc.ranks.len(),
        topo.size(),
        "every rank's flight window is in the bundle"
    );
    assert!(inc.render_text().contains(&format!("rank {victim} failed")));
}

/// Small always-on version of the crash smoke (8 ranks).
#[test]
fn crash_8_ranks_event_engine_names_failed_rank() {
    crash_at_scale(Topology::new(2, 4), 5);
}

#[test]
#[ignore = "scale tier: run via `cargo test --test scale -- --ignored` (CI `scale` job)"]
fn crash_256_ranks_event_engine_names_failed_rank() {
    crash_at_scale(Topology::new(8, 32), 129);
}
