//! Workspace-level tests for the flight recorder, virtual-time
//! telemetry, and fault-triggered incident bundles riding under the full
//! benchmark stack. The core contracts:
//!
//! * a seeded crash run auto-emits an incident bundle that is
//!   **byte-identical** across reruns of the same seed;
//! * `obs-analyze --incident` (the same parser, called as a library)
//!   names the failed rank from the bundle alone;
//! * telemetry series are deterministic under a lossy seed, never lose a
//!   counter increment to binning, and cost zero virtual time;
//! * the always-on flight ring wraps without losing the newest window
//!   and accounts every eviction in `flight.dropped`.

use ombj::{run_with_obs, Api, BenchOptions, Benchmark, Library, RunSpec};
use simfabric::{EngineMode, FaultPlan, Topology};

fn latency_spec(faults: Option<FaultPlan>) -> RunSpec {
    RunSpec {
        library: Library::Mvapich2J,
        benchmark: Benchmark::Latency,
        api: Api::Buffer,
        topo: Topology::new(2, 1),
        opts: BenchOptions {
            max_size: 1 << 14,
            ..BenchOptions::quick()
        },
        faults,
        engine: EngineMode::Threaded,
    }
}

/// Rank 1 dies mid-sweep; rank 0's watchdog converts the stall into a
/// rank failure. The runner downgrades the world to `ErrorsReturn`, so
/// the job exits cleanly with no series and a drained report.
fn crash_plan() -> FaultPlan {
    let mut p = FaultPlan::new(7);
    p.crash = Some((1, 200_000.0));
    p.watchdog_ms = 100;
    p
}

fn crash_obs() -> obs::ObsOptions {
    obs::ObsOptions::default().with_flight().with_telemetry(0.0)
}

#[test]
fn crash_run_emits_bit_identical_incident_bundles() {
    let run_once = || {
        let (series, report) = run_with_obs(latency_spec(Some(crash_plan())), crash_obs());
        assert!(series.is_none(), "the planned crash aborts the benchmark");
        report
            .incident_bundle_json()
            .expect("a crashed run must yield an incident bundle")
    };
    let b1 = run_once();
    let b2 = run_once();
    assert_eq!(b1, b2, "incident bundles must replay byte-identically");
}

#[test]
fn analyzer_names_the_failed_rank_from_the_bundle_alone() {
    let (_, report) = run_with_obs(latency_spec(Some(crash_plan())), crash_obs());
    let bundle = report.incident_bundle_json().expect("bundle emitted");
    // The analyzer sees only the serialized bundle — exactly what
    // `obs-analyze --incident` reads off disk.
    let inc = obs::analyze::incident_from_json(&bundle).expect("bundle parses");
    assert_eq!(inc.failed_rank, 1, "the crash plan killed rank 1");
    assert!(
        matches!(
            inc.kind.as_str(),
            "rank_failed" | "transport_failure" | "watchdog"
        ),
        "unexpected incident kind {:?}",
        inc.kind
    );
    assert_eq!(inc.ranks.len(), 2, "every rank's window is in the bundle");
    for r in &inc.ranks {
        assert!(
            r.window_events > 0,
            "rank {}'s flight window drained empty",
            r.rank
        );
    }
    let text = inc.render_text();
    assert!(text.contains("rank 1 failed"), "report names the rank");
}

#[test]
fn clean_run_emits_no_incident_bundle() {
    let (series, report) = run_with_obs(latency_spec(None), crash_obs());
    series.expect("fault-free latency runs");
    assert!(
        report.incident_bundle_json().is_none(),
        "no fault, no bundle"
    );
    assert_eq!(report.merged_pvars().counter("incident.marks"), 0);
}

#[test]
fn flight_ring_wraps_and_accounts_every_eviction() {
    // A full sweep records far more than the default 512-event window;
    // the ring must wrap, count every eviction in `flight.dropped`, and
    // still hold exactly `capacity` events.
    let (series, report) =
        run_with_obs(latency_spec(None), obs::ObsOptions::default().with_flight());
    series.expect("latency runs");
    for r in &report.ranks {
        let w = r.flight.as_ref().expect("flight was on for every rank");
        assert_eq!(w.events.len(), obs::DEFAULT_FLIGHT_CAPACITY);
        assert!(w.dropped > 0, "a full sweep must overflow the window");
        assert_eq!(
            r.pvars.counter(obs::flight::DROPPED_PVAR),
            w.dropped,
            "the dropped pvar must match the ring's own count"
        );
        // The window holds the newest events: its last timestamp reaches
        // the end of the run, far past the first retained event. (Strict
        // per-event ts order is not guaranteed — spans are recorded at
        // close time but stamped with their begin time.)
        let newest = w.last_event_ns().expect("window is non-empty");
        assert!(
            newest > w.events[0].ts_ns,
            "rank {}'s window does not extend past its oldest event",
            r.rank
        );
    }
}

#[test]
fn lossy_telemetry_series_replays_and_loses_no_increment() {
    let mut plan = FaultPlan::parse("drop=0.03,corrupt=0.005,dup=0.02,jitter=150").unwrap();
    plan.seed = 42;
    let run_once = || {
        run_with_obs(
            latency_spec(Some(plan)),
            obs::ObsOptions::default().with_telemetry(0.0),
        )
    };
    let (s1, r1) = run_once();
    let (s2, r2) = run_once();
    assert_eq!(
        s1.unwrap().points,
        s2.unwrap().points,
        "lossy series replays"
    );
    let t1 = r1.telemetry_json().expect("telemetry was on");
    let t2 = r2.telemetry_json().expect("telemetry was on");
    assert_eq!(t1, t2, "telemetry documents must be byte-identical");

    // Binning must not lose (or invent) a single increment: the series
    // total of each counter equals the cumulative pvar.
    let merged = r1.merged_pvars();
    for name in [
        "engine.deliveries",
        "fabric.retransmits",
        "fabric.drops_injected",
        "fabric.acks",
        "pt2pt.eager_msgs",
    ] {
        assert_eq!(
            obs::telemetry::series_counter_total(&r1.ranks, name),
            merged.counter(name),
            "binned total of {name} diverged from the cumulative pvar"
        );
    }

    // The retransmit burst is visible from the timeline alone (the
    // README walkthrough): some interval carries a retransmit spike.
    let tl = obs::analyze::timeline_from_json(&t1).expect("telemetry doc parses");
    assert!(tl.peak_retransmit_t_ns().is_some(), "lossy run retransmits");
    assert!(!tl.links.is_empty(), "per-link counters populate the table");
}

#[test]
fn incident_bundle_embeds_telemetry_and_survives_reserialization() {
    let (_, report) = run_with_obs(latency_spec(Some(crash_plan())), crash_obs());
    let bundle = report.incident_bundle_json().expect("bundle emitted");
    let doc = obs::json::parse(&bundle).expect("bundle is valid JSON");
    let ranks = doc
        .get("ranks")
        .and_then(|v| v.as_arr())
        .expect("ranks array");
    for r in ranks {
        assert!(
            r.get("telemetry").is_some(),
            "bundle carries each rank's telemetry series"
        );
        assert!(r.get("pvars").is_some(), "bundle carries the pvar snapshot");
    }
}
