//! Cross-crate end-to-end tests: the full stack (managed runtime → JNI
//! analog → buffering layer → bindings → native MPI → fabric) driven the
//! way an application would.

use mvapich2j::datatype::{Datatype, INT};
use mvapich2j::{run_job, JobConfig, ReduceOp, Topology};

/// Deterministic pseudo-random source (Knuth LCG) — replaces the old
/// proptest strategies so the test needs no external crates and replays
/// identically every run.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() >> 33) as usize % (hi - lo)
    }
}

#[test]
fn payload_integrity_random_sizes_and_apis() {
    // Pseudo-random message sizes across both APIs and both protocol
    // regimes (eager and rendezvous straddle 40 kB).
    let mut rng = Lcg::new(7);
    for _case in 0..12 {
        let sizes: Vec<usize> = (0..rng.range(1, 5)).map(|_| rng.range(1, 40_000)).collect();
        let seed = (rng.next() >> 24) as u8;
        let sizes2 = sizes.clone();
        run_job(JobConfig::mvapich2j(Topology::new(2, 1)), move |env| {
            let w = env.world();
            let me = env.rank();
            for (k, &n) in sizes2.iter().enumerate() {
                let tag = k as i32;
                if me == 0 {
                    let arr = env.new_array::<i8>(n).unwrap();
                    for i in 0..n {
                        env.array_set(arr, i, (i as u8 ^ seed) as i8).unwrap();
                    }
                    env.send_array(arr, n as i32, 1, tag, w).unwrap();
                    env.free_array(arr).unwrap();
                } else {
                    let arr = env.new_array::<i8>(n).unwrap();
                    let st = env.recv_array(arr, n as i32, 0, tag, w).unwrap();
                    assert_eq!(st.bytes, n);
                    for i in 0..n {
                        assert_eq!(
                            env.array_get(arr, i).unwrap(),
                            (i as u8 ^ seed) as i8,
                            "byte {i} of {n} corrupted"
                        );
                    }
                    env.free_array(arr).unwrap();
                }
            }
        });
    }
}

#[test]
fn whole_job_virtual_times_are_deterministic() {
    let run = || {
        run_job(JobConfig::mvapich2j(Topology::new(2, 2)), |env| {
            let w = env.world();
            let me = env.rank() as i32;
            let send = env.new_array::<i32>(1000).unwrap();
            let recv = env.new_array::<i32>(1000).unwrap();
            for i in 0..1000 {
                env.array_set(send, i, me * 7 + i as i32).unwrap();
            }
            env.allreduce_array(send, recv, 1000, ReduceOp::Min, w)
                .unwrap();
            let buf = env.new_direct(4096);
            env.bcast_buffer(buf, 1024, &INT, 2, w).unwrap();
            env.barrier(w).unwrap();
            env.now().as_nanos()
        })
    };
    assert_eq!(run(), run());
}

#[test]
fn gc_pressure_does_not_corrupt_in_flight_messages() {
    // Heavy allocation churn while messages are in flight: the staging
    // buffers (direct) must be immune to the moving collector.
    let mut cfg = JobConfig::mvapich2j(Topology::single_node(2));
    cfg.heap_initial = 1 << 15;
    cfg.heap_max = 1 << 18;
    let stats = run_job(cfg, |env| {
        let w = env.world();
        let me = env.rank();
        for round in 0..60 {
            let n = 500 + round * 13;
            if me == 0 {
                let arr = env.new_array::<i32>(n).unwrap();
                for i in 0..n {
                    env.array_set(arr, i, (round * 100_000 + i) as i32).unwrap();
                }
                let req = env.isend_array(arr, n as i32, 1, 0, w).unwrap();
                // Churn while the send is pending.
                for _ in 0..8 {
                    let junk = env.new_array::<i64>(700).unwrap();
                    env.free_array(junk).unwrap();
                }
                env.wait(req).unwrap();
                env.free_array(arr).unwrap();
            } else {
                let arr = env.new_array::<i32>(n).unwrap();
                let req = env.irecv_array(arr, n as i32, 0, 0, w).unwrap();
                for _ in 0..8 {
                    let junk = env.new_array::<i64>(700).unwrap();
                    env.free_array(junk).unwrap();
                }
                env.wait(req).unwrap();
                for i in (0..n).step_by(97) {
                    assert_eq!(env.array_get(arr, i).unwrap(), (round * 100_000 + i) as i32);
                }
                env.free_array(arr).unwrap();
            }
        }
        env.gc_stats()
    });
    assert!(
        stats.iter().any(|s| s.collections > 0),
        "the collector must actually have run: {stats:?}"
    );
}

#[test]
fn derived_datatype_matrix_column_exchange() {
    // Send the first column of a 6x8 row-major matrix using a vector
    // datatype — the buffering layer's gather/scatter in a realistic
    // layout.
    const ROWS: usize = 6;
    const COLS: usize = 8;
    run_job(JobConfig::mvapich2j(Topology::new(2, 1)), |env| {
        let w = env.world();
        let me = env.rank();
        let col = Datatype::vector(ROWS, 1, COLS, INT).unwrap();
        let mat = env.new_array::<i32>(ROWS * COLS).unwrap();
        if me == 0 {
            for r in 0..ROWS {
                for c in 0..COLS {
                    env.array_set(mat, r * COLS + c, (r * 10 + c) as i32)
                        .unwrap();
                }
            }
            // One datatype element = the whole strided column.
            env.send_array_dt(mat, 1, &col, 1, 0, w).unwrap();
        } else {
            for i in 0..ROWS * COLS {
                env.array_set(mat, i, -1).unwrap();
            }
            env.recv_array_dt(mat, 1, &col, 0, 0, w).unwrap();
            // Received column lands at stride positions from offset 0.
            for r in 0..ROWS {
                assert_eq!(env.array_get(mat, r * COLS).unwrap(), (r * 10) as i32 + 0);
                // Everything else untouched.
                assert_eq!(env.array_get(mat, r * COLS + 1).unwrap(), -1);
            }
        }
    });
}

#[test]
fn subcommunicators_compose_with_collectives() {
    // Split the world into row/column communicators (2x2 grid) and run
    // independent reductions in each — a standard application pattern.
    run_job(JobConfig::mvapich2j(Topology::new(2, 2)), |env| {
        let w = env.world();
        let me = env.rank();
        let (row, col) = (me / 2, me % 2);
        let row_comm = env.comm_split(w, row as i32, me as i32).unwrap().unwrap();
        let col_comm = env.comm_split(w, col as i32, me as i32).unwrap().unwrap();

        let send = env.new_array::<i32>(1).unwrap();
        env.array_set(send, 0, me as i32).unwrap();
        let rsum = env.new_array::<i32>(1).unwrap();
        env.allreduce_array(send, rsum, 1, ReduceOp::Sum, row_comm)
            .unwrap();
        let csum = env.new_array::<i32>(1).unwrap();
        env.allreduce_array(send, csum, 1, ReduceOp::Sum, col_comm)
            .unwrap();

        // Row sums: {0+1, 2+3}; column sums: {0+2, 1+3}.
        assert_eq!(
            env.array_get(rsum, 0).unwrap(),
            if row == 0 { 1 } else { 5 }
        );
        assert_eq!(
            env.array_get(csum, 0).unwrap(),
            if col == 0 { 2 } else { 4 }
        );
        env.comm_free(row_comm).unwrap();
        env.comm_free(col_comm).unwrap();
    });
}

#[test]
fn openmpij_and_mvapich2j_compute_identical_results() {
    // Performance differs; semantics must not.
    let compute = |cfg: JobConfig| {
        run_job(cfg, |env| {
            let w = env.world();
            let me = env.rank() as i32;
            let send = env.new_array::<i32>(64).unwrap();
            for i in 0..64 {
                env.array_set(send, i, me * 1000 + i as i32).unwrap();
            }
            let recv = env.new_array::<i32>(64).unwrap();
            env.allreduce_array(send, recv, 64, ReduceOp::Max, w)
                .unwrap();
            let mut out = vec![0i32; 64];
            env.array_read(recv, 0, &mut out).unwrap();
            out
        })
    };
    let topo = Topology::new(2, 2);
    let mv = compute(JobConfig::mvapich2j(topo));
    let om = compute(openmpij::job_config(topo));
    assert_eq!(mv, om);
}
