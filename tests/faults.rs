//! Workspace-level tests for the fault-injection fabric riding under the
//! full benchmark stack: OMB-J sweeps must complete with validation under
//! a seeded non-crash plan, the fault pvars must fire exactly when a plan
//! is active, and a lossy `--analyze` run must replay byte-identically
//! for the same seed.

use mvapich2j::datatype::INT;
use mvapich2j::{run_job, run_job_with_obs, BindError, JobConfig, ReduceOp, Topology};
use ombj::{run_with_obs, Api, BenchOptions, Benchmark, Library, RunSpec};
use simfabric::{EngineMode, FaultPlan};

fn lossy_plan(seed: u64) -> FaultPlan {
    let mut p = FaultPlan::parse("drop=0.03,corrupt=0.005,dup=0.02,jitter=150").unwrap();
    p.seed = seed;
    p
}

fn spec(faults: Option<FaultPlan>) -> RunSpec {
    RunSpec {
        library: Library::Mvapich2J,
        benchmark: Benchmark::Latency,
        api: Api::Buffer,
        topo: Topology::new(2, 1),
        opts: BenchOptions {
            max_size: 1 << 17,
            validate: true,
            ..BenchOptions::quick()
        },
        faults,
        engine: EngineMode::Threaded,
    }
}

#[test]
fn lossy_benchmark_validates_and_fault_pvars_fire() {
    let (series, report) = run_with_obs(spec(Some(lossy_plan(7))), obs::ObsOptions::default());
    let s = series.expect("latency runs under a lossy plan");
    assert!(s.points.iter().all(|p| p.value > 0.0));
    let pvars = report.merged_pvars();
    // A 3% drop rate over a full sweep injects many drops; each one is
    // answered by at least one retransmit, and every accepted frame by
    // an ack.
    for name in [
        "fabric.drops_injected",
        "fabric.retransmits",
        "fabric.corrupt_detected",
        "fabric.dups_suppressed",
        "fabric.acks",
        "reliability.backoff_ns",
    ] {
        assert!(pvars.counter(name) > 0, "pvar {name} missing or zero");
    }
}

#[test]
fn fault_free_run_keeps_reliability_pvars_at_zero() {
    let (series, report) = run_with_obs(spec(None), obs::ObsOptions::default());
    series.expect("latency runs");
    let pvars = report.merged_pvars();
    for name in [
        "fabric.drops_injected",
        "fabric.retransmits",
        "fabric.corrupt_detected",
        "fabric.dups_suppressed",
        "fabric.acks",
        "reliability.backoff_ns",
        "fabric.watchdog_trips",
    ] {
        assert_eq!(pvars.counter(name), 0, "pvar {name} fired without a plan");
    }
}

#[test]
fn fault_free_plan_matches_no_plan_measurements() {
    // Acceptance criterion: with no faults firing, the reliability
    // sublayer adds zero virtual-time overhead to the measured series.
    let (clean, _) = run_with_obs(spec(None), obs::ObsOptions::default());
    let (framed, _) = run_with_obs(spec(Some(FaultPlan::new(3))), obs::ObsOptions::default());
    assert_eq!(
        clean.unwrap().points,
        framed.unwrap().points,
        "inactive plan must not move any measured latency"
    );
}

#[test]
fn lossy_analyze_output_is_byte_identical_for_the_same_seed() {
    let run_once = || {
        let (series, report) = run_with_obs(spec(Some(lossy_plan(11))), obs::ObsOptions::traced());
        let a = obs::analyze::analyze(&report);
        (
            series.expect("latency runs"),
            a.render_text(),
            a.render_csv(),
            report.pvar_dump(),
        )
    };
    assert_eq!(
        run_once(),
        run_once(),
        "a seeded lossy run must replay byte-for-byte"
    );
}

#[test]
fn retransmit_category_shows_up_in_lossy_attribution() {
    // The analyzer's `retrans` category exists and the lossy run's
    // retransmit spans land in it (share may round to zero, but the
    // category wiring must place them ahead of generic wait time).
    let (_, report) = run_with_obs(spec(Some(lossy_plan(5))), obs::ObsOptions::traced());
    let a = obs::analyze::analyze(&report);
    assert!(!a.buckets.is_empty());
    let header = a.render_text();
    assert!(header.contains("retrans%"), "analysis table: {header}");
    assert!(
        a.category_share_pct("retrans") >= 0.0,
        "retrans category must be defined"
    );
    let total: f64 = a
        .buckets
        .iter()
        .map(|b| {
            b.cat_ns[obs::analyze::CATEGORY_NAMES
                .iter()
                .position(|&n| n == "retrans")
                .unwrap()]
        })
        .sum();
    assert!(
        total > 0.0,
        "a 3% drop sweep must accumulate retransmit backoff on the critical path"
    );
}

#[test]
fn lossy_collective_benchmark_validates() {
    let spec = RunSpec {
        library: Library::Mvapich2J,
        benchmark: Benchmark::Collective(ombj::CollOp::Allreduce),
        api: Api::Buffer,
        topo: Topology::new(2, 2),
        opts: BenchOptions {
            max_size: 1 << 12,
            validate: true,
            ..BenchOptions::quick()
        },
        faults: Some(lossy_plan(9)),
        engine: EngineMode::Threaded,
    };
    let (series, _) = run_with_obs(spec, obs::ObsOptions::default());
    let s = series.expect("allreduce runs under a lossy plan");
    assert!(s.points.iter().all(|p| p.value > 0.0));
}

#[test]
fn nonblocking_collectives_validate_under_a_lossy_plan() {
    // A schedule in flight keeps several rounds of traffic outstanding
    // at once; a seeded drop plan must cost retransmits, never payload.
    let mut plan = FaultPlan::parse("drop=0.05,jitter=100").unwrap();
    plan.seed = 13;
    let n = 2048usize;
    let (_, report) = run_job_with_obs(
        JobConfig::mvapich2j(Topology::new(2, 2)).with_faults(plan),
        move |env| {
            let w = env.world();
            let p = env.size() as i32;
            let me = env.rank() as i32;
            let buf = env.new_direct(n * 4);
            let send = env.new_direct(n * 4);
            let recv = env.new_direct(n * 4);
            for round in 0..8i32 {
                if me == 1 {
                    for i in 0..n {
                        env.direct_put::<i32>(buf, i * 4, round ^ i as i32 ^ 0x5a)
                            .unwrap();
                    }
                }
                let req = env.ibcast_buffer(buf, n as i32, &INT, 1, w).unwrap();
                env.wait(req).unwrap();
                for i in 0..n {
                    assert_eq!(
                        env.direct_get::<i32>(buf, i * 4).unwrap(),
                        round ^ i as i32 ^ 0x5a
                    );
                }

                for i in 0..n {
                    env.direct_put::<i32>(send, i * 4, me + round + i as i32)
                        .unwrap();
                }
                let req = env
                    .iallreduce_buffer(send, recv, n as i32, &INT, ReduceOp::Sum, w)
                    .unwrap();
                env.wait(req).unwrap();
                let ranksum: i32 = (0..p).sum();
                for i in 0..n {
                    assert_eq!(
                        env.direct_get::<i32>(recv, i * 4).unwrap(),
                        ranksum + p * (round + i as i32)
                    );
                }
            }
        },
    );
    let pvars = report.merged_pvars();
    assert!(pvars.counter("coll.nb.completed") > 0);
    assert!(
        pvars.counter("fabric.drops_injected") > 0,
        "a 5% plan over two schedules must drop at least one frame"
    );
    assert!(pvars.counter("fabric.retransmits") > 0);
}

#[test]
fn crashed_rank_surfaces_rank_failed_from_nonblocking_wait() {
    // Rank 1 is dead from virtual time 0. The surviving rank's Wait on a
    // non-blocking broadcast must come back with a typed `RankFailed`
    // within the watchdog bound — not hang in the progression loop.
    let mut plan = FaultPlan::new(0);
    plan.crash = Some((1, 0.0));
    plan.watchdog_ms = 100;
    plan.rto_ns = 50.0;
    plan.max_retries = 3;
    let results = run_job(
        JobConfig::mvapich2j(Topology::single_node(2)).with_faults(plan),
        |env| {
            let w = env.world();
            env.native_mut()
                .set_errhandler(w, mpisim::Errhandler::ErrorsReturn)
                .unwrap();
            let started = std::time::Instant::now();
            let buf = env.new_direct(64 * 4);
            let err = env
                .ibcast_buffer(buf, 64, &INT, 0, w)
                .and_then(|req| env.wait(req).map(|_| ()))
                .unwrap_err();
            assert!(
                started.elapsed().as_millis() < 5_000,
                "watchdog must fire near its bound"
            );
            err
        },
    );
    for (rank, err) in results.iter().enumerate() {
        assert_eq!(
            *err,
            BindError::Mpi(mpisim::MpiError::RankFailed { rank: 1 }),
            "rank {rank} got {err:?}"
        );
    }
}
