//! Workspace-level tests for the simulator self-profiling layer
//! (`obs::wallprof`) and the perf-trajectory basket. The core contract:
//! wall-clock telemetry lives strictly *outside* every determinism
//! surface — digests, dumps, and measured series are bit-identical with
//! profiling on, off, or across reruns, while the wall numbers
//! themselves are free to differ run to run.

use ombj::{run_with_obs, Api, BenchOptions, Benchmark, Library, RunSpec};
use ombj_bench::perf;
use simfabric::{EngineMode, Topology};

fn latency_spec() -> RunSpec {
    RunSpec {
        library: Library::Mvapich2J,
        benchmark: Benchmark::Latency,
        api: Api::Buffer,
        topo: Topology::new(2, 1),
        opts: BenchOptions {
            max_size: 1 << 14,
            ..BenchOptions::quick()
        },
        faults: None,
        engine: EngineMode::Threaded,
    }
}

fn profiled_and_traced() -> obs::ObsOptions {
    obs::ObsOptions {
        tracing: true,
        profiling: true,
        ..Default::default()
    }
}

#[test]
fn profiling_preserves_bitwise_determinism() {
    // Two profiled runs: every determinism digest is byte-identical even
    // though the embedded wall-clock profiles inevitably differ.
    let run_once = || run_with_obs(latency_spec(), profiled_and_traced());
    let (s1, r1) = run_once();
    let (s2, r2) = run_once();
    assert_eq!(s1, s2, "measured series must replay exactly");
    assert_eq!(r1.pvar_dump(), r2.pvar_dump(), "pvar dump is a digest");
    assert_eq!(
        r1.chrome_trace_json(),
        r2.chrome_trace_json(),
        "trace file is a digest"
    );
    // JobReport equality itself is a determinism digest: it must hold
    // even though both reports carry (different) wall-clock profiles.
    assert_eq!(r1, r2, "report equality must ignore wall metrics");
    for r in [&r1, &r2] {
        let p = r.sim_perf.as_ref().expect("profiling was on");
        assert!(p.wall_ns > 0, "job wall clock must have advanced");
        assert!(p.events() > 0, "latency run injects and delivers");
    }
}

#[test]
fn profiling_has_zero_virtual_cost() {
    // The measured numbers are bit-identical with profiling on or off:
    // wallprof reads `Instant`, never a virtual clock.
    let (with, _) = run_with_obs(latency_spec(), obs::ObsOptions::profiled());
    let (without, _) = run_with_obs(latency_spec(), obs::ObsOptions::default());
    assert_eq!(
        with.unwrap().points,
        without.unwrap().points,
        "profiling must not advance any virtual clock"
    );
}

#[test]
fn wall_metrics_never_reach_determinism_digests() {
    let (_, report) = run_with_obs(latency_spec(), profiled_and_traced());
    assert!(report.sim_perf.is_some(), "profile was collected");
    // The digest surfaces never mention wall-clock fields, so the
    // profile cannot leak into byte-diffed CI artifacts.
    for digest in [report.pvar_dump(), report.chrome_trace_json()] {
        for key in ["wall_ns", "wall_ms", "events_per_sec", "vns_per_ws"] {
            assert!(
                !digest.contains(key),
                "wall-clock key {key:?} leaked into a determinism digest"
            );
        }
    }
    // RankReport equality also excludes the per-rank wall profile.
    let mut a = report.ranks[0].clone();
    let mut b = report.ranks[0].clone();
    a.wall = Some(obs::wallprof::RankWallProf {
        wall_ns: 1,
        ..Default::default()
    });
    b.wall = Some(obs::wallprof::RankWallProf {
        wall_ns: 999_999,
        ..Default::default()
    });
    assert_eq!(a, b, "rank equality must ignore the wall profile");
}

#[test]
fn disabled_profiling_and_obs_paths_stay_cheap() {
    // Satellite experiment (see EXPERIMENTS.md): with no recorder and no
    // profiler installed, the instrumentation probes on the hot path are
    // a single thread-local read — no formatting, no allocation. The
    // bound is deliberately generous (debug builds, shared CI boxes):
    // 100k disabled probes must finish inside 250 ms, i.e. < 2.5 µs per
    // probe where the real cost is a few nanoseconds.
    obs::uninstall();
    obs::wallprof::reset();
    assert!(!obs::tracing_enabled());
    assert!(!obs::wallprof::enabled());
    const N: u64 = 100_000;
    let start = std::time::Instant::now();
    for i in 0..N {
        obs::count("disabled.counter", 1);
        obs::wallprof::add(obs::wallprof::Counter::Deliveries, 1);
        let _s = obs::wallprof::span(obs::wallprof::Subsystem::Engine);
        std::hint::black_box(i);
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_millis() < 250,
        "disabled probes took {elapsed:?} for {N} iterations"
    );
    // And they must observe nothing: a fresh harvest sees no state.
    assert!(obs::wallprof::harvest().is_none());
}

#[test]
fn bench_json_roundtrips_and_reruns_keep_virtual_clocks() {
    // Satellite 3: the BENCH_*.json document round-trips through
    // `obs::json` with every required key, and rerunning the basket
    // yields *identical virtual clocks* (and counters) while the wall
    // fields are free to differ.
    let run_once = || {
        let results = perf::run_basket(true);
        let text = perf::bench_json(&results, "deadbeef", 6, true);
        perf::parse_bench(&text).expect("bench json parses")
    };
    let d1 = run_once();
    let d2 = run_once();

    assert_eq!(
        d1.get("schema_version").and_then(|v| v.as_f64()),
        Some(perf::SCHEMA_VERSION as f64)
    );
    assert_eq!(d1.get("commit").and_then(|v| v.as_str()), Some("deadbeef"));
    let totals = d1.get("totals").expect("totals object");
    for key in ["events", "events_per_sec", "vns_per_ws", "alloc_per_msg"] {
        assert!(
            totals.get(key).and_then(|v| v.as_f64()).is_some(),
            "totals missing {key}"
        );
    }
    let basket = d1.get("basket").and_then(|b| b.as_arr()).expect("basket");
    assert_eq!(basket.len(), perf::basket(true).len());

    let virtuals = |d: &obs::json::JsonValue| -> Vec<(String, f64, f64)> {
        d.get("basket")
            .and_then(|b| b.as_arr())
            .unwrap()
            .iter()
            .map(|e| {
                let p = e.get("sim_perf").expect("per-entry profile");
                (
                    e.get("name").and_then(|n| n.as_str()).unwrap().to_string(),
                    p.get("virtual_ms").and_then(|v| v.as_f64()).unwrap(),
                    p.get("events").and_then(|v| v.as_f64()).unwrap(),
                )
            })
            .collect()
    };
    assert_eq!(
        virtuals(&d1),
        virtuals(&d2),
        "virtual clocks and event counts must replay exactly"
    );
    // Wall fields exist in both but are not asserted equal — that is
    // the whole point of the wall/virtual split.
    for d in [&d1, &d2] {
        let wall = d
            .get("totals")
            .and_then(|t| t.get("wall_ms"))
            .and_then(|v| v.as_f64())
            .unwrap();
        assert!(wall > 0.0, "basket consumed real time");
    }
}

#[test]
fn baseline_gate_passes_against_itself_and_fails_on_regression() {
    let results = perf::run_basket(true);
    let text = perf::bench_json(&results, "x", 6, true);
    let doc = perf::parse_bench(&text).unwrap();
    // A document always passes against itself (0% delta).
    assert!(perf::compare_baseline(&doc, &doc, perf::DEFAULT_GATE_PCT).is_ok());
    // A baseline 10x faster trips the 25% gate.
    let mut inflated = text.clone();
    let eps = doc
        .get("totals")
        .and_then(|t| t.get("events_per_sec"))
        .and_then(|v| v.as_f64())
        .unwrap();
    let needle = format!("\"events_per_sec\":{}", obs::json::num(eps));
    assert!(inflated.contains(&needle), "totals events_per_sec present");
    inflated = inflated.replacen(
        &needle,
        &format!("\"events_per_sec\":{}", obs::json::num(eps * 10.0)),
        1,
    );
    let base = perf::parse_bench(&inflated).unwrap();
    assert!(
        perf::compare_baseline(&doc, &base, perf::DEFAULT_GATE_PCT).is_err(),
        "a 90% drop must fail the gate"
    );
    // Mode mismatch (quick vs full) skips the gate rather than lying.
    let full = perf::parse_bench(&text.replacen("\"quick\":true", "\"quick\":false", 1)).unwrap();
    assert!(perf::compare_baseline(&doc, &full, perf::DEFAULT_GATE_PCT).is_ok());
}

#[test]
fn rma_put_latency_allocs_exactly_one_buffer_per_message() {
    // Regression guard for the BENCH_7 drift: `win_create` used to charge
    // its one-time window allocation to `Allocs`, nudging the RMA
    // benchmark's allocs/msg to 1.007. The steady-state contract is
    // exact: every Buffer-API put stages one pooled buffer and sends one
    // message, so Allocs == Messages and alloc_per_msg is 1.00, not
    // 1.00-and-change.
    let spec = RunSpec {
        benchmark: Benchmark::PutLatency,
        opts: BenchOptions {
            max_size: 1 << 12,
            ..BenchOptions::quick()
        },
        ..latency_spec()
    };
    let (series, report) = run_with_obs(spec, obs::ObsOptions::profiled());
    series.expect("put_latency runs under the Buffer API");
    let perf = report.sim_perf.expect("profiling was on");
    let totals = perf.totals();
    let allocs = totals.counter(obs::wallprof::Counter::Allocs);
    let messages = totals.counter(obs::wallprof::Counter::Messages);
    assert!(messages > 0, "the benchmark sent messages");
    assert_eq!(
        allocs, messages,
        "RMA put must charge exactly one staging alloc per message"
    );
    assert_eq!(perf.allocs_per_msg(), 1.0, "alloc_per_msg is exact");
}

#[test]
fn sim_perf_is_engine_labeled_and_comparable_across_engines() {
    // Events are counted per rank (injections + deliveries), so the
    // events/sec metric means the same thing under both engines; the
    // profile says which engine produced it.
    let threaded = latency_spec();
    let mut event = latency_spec();
    event.engine = EngineMode::EventDriven;
    let (s_t, r_t) = run_with_obs(threaded, obs::ObsOptions::profiled());
    let (s_e, r_e) = run_with_obs(event, obs::ObsOptions::profiled());
    assert_eq!(
        s_t.unwrap().points,
        s_e.unwrap().points,
        "virtual-time series must not depend on the engine"
    );
    let p_t = r_t.sim_perf.expect("profiling was on");
    let p_e = r_e.sim_perf.expect("profiling was on");
    assert_eq!(p_t.engine, "threaded");
    assert_eq!(p_e.engine, "event");
    assert_eq!(
        p_t.events(),
        p_e.events(),
        "per-rank event counts are engine-invariant"
    );
    assert!(p_e.render_text().contains("(event engine)"));
    let mut w = obs::json::JsonBuf::new();
    p_e.write_json(&mut w);
    assert!(w.finish().contains("\"engine\":\"event\""));
}

#[test]
fn perf_basket_carries_the_event_engine_rows() {
    // Satellite: the trajectory basket prices the event engine too —
    // one row comparable 1:1 with `bcast_8`, one scale row that only
    // the event engine can host at full size (1024 ranks).
    let entries = perf::basket(true);
    let engine_of = |name: &str| {
        entries
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("basket entry {name} missing"))
            .spec
            .engine
    };
    assert_eq!(engine_of("bcast_8"), EngineMode::Threaded);
    assert_eq!(engine_of("bcast_8_event"), EngineMode::EventDriven);
    assert_eq!(engine_of("bcast_1k_event"), EngineMode::EventDriven);
    let full: Vec<_> = perf::basket(false)
        .into_iter()
        .filter(|e| e.name == "bcast_1k_event")
        .collect();
    assert_eq!(full[0].spec.topo.size(), 1024, "full-mode scale row");
}

#[test]
fn match_depth_pvars_are_structural() {
    // Satellite 6: the tag-matching pvars. `pt2pt.match.scans` counts
    // one scan per accepted delivery / posted-list probe, so it is
    // structural (identical across reruns — covered by the pvar-dump
    // digest test above). Here: it fires on a pt2pt run, and the
    // posted-depth gauge is bounded by what the benchmark can post.
    let (_, report) = run_with_obs(latency_spec(), obs::ObsOptions::default());
    let merged = report.merged_pvars();
    assert!(merged.counter("pt2pt.match.scans") > 0, "scans pvar fires");
    let depth = merged
        .get("pt2pt.match.maxdepth")
        .and_then(|v| v.as_gauge_max())
        .expect("maxdepth gauge present");
    assert!(
        (1..=2).contains(&depth),
        "osu_latency posts one recv at a time (saw depth {depth})"
    );
}
