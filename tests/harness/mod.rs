//! Shared seeded-LCG conformance generator (split out of
//! `tests/conformance.rs` so the engine-differential tier can drive the
//! exact same drawn cases through both cluster engines).
//!
//! A seeded LCG draws random collectives, message sizes, roots, reduce
//! ops, and communicator splits; every drawn case runs through the
//! bindings (blocking *and* non-blocking, buffer *and* array flavor) and
//! is checked against a naive flat reference computed in plain Rust from
//! the deterministic per-rank inputs. The RMA half replays four
//! one-sided epochs (put-fence, accumulate, get, passive lock/unlock)
//! against the same kind of pure reference.
#![allow(dead_code)] // each test binary uses its own subset

use mvapich2j::datatype::INT;
use mvapich2j::{Env, ReduceOp};

/// Deterministic generator shared by every rank (same draws everywhere).
pub struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The value rank `rank` contributes at element `i` of trial `t` —
/// pure function, so the reference needs no communication.
pub fn input(seed: u64, t: u64, rank: usize, i: usize) -> i32 {
    let v = seed
        .wrapping_mul(0x2545_F491_4F6C_DD1D)
        .wrapping_add(t.wrapping_mul(0x9E37_79B9))
        .wrapping_add((rank as u64) << 17)
        .wrapping_add(i as u64 * 0x45D9_F3B3);
    (v ^ (v >> 29)) as i32
}

pub fn apply(op: ReduceOp, a: i32, b: i32) -> i32 {
    match op {
        ReduceOp::Sum => a.wrapping_add(b),
        ReduceOp::Min => a.min(b),
        ReduceOp::Max => a.max(b),
        _ => a | b, // Bor — the only other op the harness draws
    }
}

pub fn fnv(digest: &mut u64, vals: &[i32]) {
    for v in vals {
        for b in v.to_le_bytes() {
            *digest ^= b as u64;
            *digest = digest.wrapping_mul(0x100_0000_01b3);
        }
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Kind {
    Bcast,
    Allreduce,
    Allgather,
    Gather,
    Alltoall,
    Barrier,
}

pub const KINDS: [Kind; 6] = [
    Kind::Bcast,
    Kind::Allreduce,
    Kind::Allgather,
    Kind::Gather,
    Kind::Alltoall,
    Kind::Barrier,
];
pub const OPS: [ReduceOp; 4] = [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max, ReduceOp::Bor];

/// Write `vals` into a fresh buffer/array pair for the trial.
pub fn write_input(env: &mut Env, arrays: bool, vals: &[i32]) -> Io {
    if arrays {
        let arr = env.new_array::<i32>(vals.len().max(1)).unwrap();
        env.array_write(arr, 0, vals).unwrap();
        Io::Arr(arr)
    } else {
        let buf = env.new_direct((vals.len() * 4).max(4));
        for (i, v) in vals.iter().enumerate() {
            env.direct_put::<i32>(buf, i * 4, *v).unwrap();
        }
        Io::Buf(buf)
    }
}

pub fn alloc_out(env: &mut Env, arrays: bool, elems: usize) -> Io {
    if arrays {
        Io::Arr(env.new_array::<i32>(elems.max(1)).unwrap())
    } else {
        Io::Buf(env.new_direct((elems * 4).max(4)))
    }
}

pub fn read_out(env: &mut Env, io: &Io, elems: usize) -> Vec<i32> {
    match io {
        Io::Arr(arr) => {
            let mut out = vec![0i32; elems];
            env.array_read(*arr, 0, &mut out).unwrap();
            out
        }
        Io::Buf(buf) => (0..elems)
            .map(|i| env.direct_get::<i32>(*buf, i * 4).unwrap())
            .collect(),
    }
}

pub enum Io {
    Buf(mvapich2j::DirectBuffer),
    Arr(mvapich2j::JArray<i32>),
}

/// Run one drawn case on `comm` (whose members are the world ranks in
/// `members`); returns the validated local result (empty for barrier or
/// a non-root gather).
#[allow(clippy::too_many_arguments)]
pub fn run_case(
    env: &mut Env,
    comm: mvapich2j::CommHandle,
    members: &[usize],
    kind: Kind,
    nonblocking: bool,
    arrays: bool,
    count: usize,
    root: usize,
    op: ReduceOp,
    seed: u64,
    t: u64,
) -> Vec<i32> {
    let w = env.world();
    let me_world = env.rank();
    let me = members.iter().position(|&r| r == me_world).unwrap();
    let p = members.len();
    let n = count as i32;
    let mine: Vec<i32> = (0..count).map(|i| input(seed, t, me_world, i)).collect();
    let _ = w;

    let (got, expect): (Vec<i32>, Vec<i32>) = match kind {
        Kind::Barrier => {
            if nonblocking {
                let req = env.ibarrier(comm).unwrap();
                env.wait(req).unwrap();
            } else {
                env.barrier(comm).unwrap();
            }
            (Vec::new(), Vec::new())
        }
        Kind::Bcast => {
            let root_vals: Vec<i32> = (0..count)
                .map(|i| input(seed, t, members[root], i))
                .collect();
            let zeros = vec![0; count];
            let io = write_input(env, arrays, if me == root { &mine } else { &zeros });
            match (&io, nonblocking) {
                (Io::Buf(b), false) => env.bcast_buffer(*b, n, &INT, root, comm).unwrap(),
                (Io::Arr(a), false) => env.bcast_array(*a, n, root, comm).unwrap(),
                (Io::Buf(b), true) => {
                    let req = env.ibcast_buffer(*b, n, &INT, root, comm).unwrap();
                    env.wait(req).unwrap();
                }
                (Io::Arr(a), true) => {
                    let req = env.ibcast_array(*a, n, root, comm).unwrap();
                    env.wait(req).unwrap();
                }
            }
            (read_out(env, &io, count), root_vals)
        }
        Kind::Allreduce => {
            let expect: Vec<i32> = (0..count)
                .map(|i| {
                    members
                        .iter()
                        .map(|&r| input(seed, t, r, i))
                        .reduce(|a, b| apply(op, a, b))
                        .unwrap()
                })
                .collect();
            let send = write_input(env, arrays, &mine);
            let recv = alloc_out(env, arrays, count);
            match (&send, &recv, nonblocking) {
                (Io::Buf(s), Io::Buf(r), false) => {
                    env.allreduce_buffer(*s, *r, n, &INT, op, comm).unwrap()
                }
                (Io::Arr(s), Io::Arr(r), false) => {
                    env.allreduce_array(*s, *r, n, op, comm).unwrap()
                }
                (Io::Buf(s), Io::Buf(r), true) => {
                    let req = env.iallreduce_buffer(*s, *r, n, &INT, op, comm).unwrap();
                    env.wait(req).unwrap();
                }
                (Io::Arr(s), Io::Arr(r), true) => {
                    let req = env.iallreduce_array(*s, *r, n, op, comm).unwrap();
                    env.wait(req).unwrap();
                }
                _ => unreachable!(),
            }
            (read_out(env, &recv, count), expect)
        }
        Kind::Allgather => {
            let expect: Vec<i32> = members
                .iter()
                .flat_map(|&r| (0..count).map(move |i| input(seed, t, r, i)))
                .collect();
            let send = write_input(env, arrays, &mine);
            let recv = alloc_out(env, arrays, count * p);
            match (&send, &recv, nonblocking) {
                (Io::Buf(s), Io::Buf(r), false) => {
                    env.allgather_buffer(*s, *r, n, &INT, comm).unwrap()
                }
                (Io::Arr(s), Io::Arr(r), false) => env.allgather_array(*s, *r, n, comm).unwrap(),
                (Io::Buf(s), Io::Buf(r), true) => {
                    let req = env.iallgather_buffer(*s, *r, n, &INT, comm).unwrap();
                    env.wait(req).unwrap();
                }
                (Io::Arr(s), Io::Arr(r), true) => {
                    let req = env.iallgather_array(*s, *r, n, comm).unwrap();
                    env.wait(req).unwrap();
                }
                _ => unreachable!(),
            }
            (read_out(env, &recv, count * p), expect)
        }
        Kind::Gather => {
            let expect: Vec<i32> = if me == root {
                members
                    .iter()
                    .flat_map(|&r| (0..count).map(move |i| input(seed, t, r, i)))
                    .collect()
            } else {
                Vec::new()
            };
            let send = write_input(env, arrays, &mine);
            let recv = (me == root).then(|| alloc_out(env, arrays, count * p));
            match (&send, nonblocking) {
                (Io::Buf(s), false) => {
                    let out = recv.as_ref().map(|io| match io {
                        Io::Buf(b) => *b,
                        _ => unreachable!(),
                    });
                    env.gather_buffer(*s, out, n, &INT, root, comm).unwrap();
                }
                (Io::Arr(s), false) => {
                    let out = recv.as_ref().map(|io| match io {
                        Io::Arr(a) => *a,
                        _ => unreachable!(),
                    });
                    env.gather_array(*s, out, n, root, comm).unwrap();
                }
                (Io::Buf(s), true) => {
                    let out = recv.as_ref().map(|io| match io {
                        Io::Buf(b) => *b,
                        _ => unreachable!(),
                    });
                    let req = env.igather_buffer(*s, out, n, &INT, root, comm).unwrap();
                    env.wait(req).unwrap();
                }
                (Io::Arr(s), true) => {
                    let out = recv.as_ref().map(|io| match io {
                        Io::Arr(a) => *a,
                        _ => unreachable!(),
                    });
                    let req = env.igather_array(*s, out, n, root, comm).unwrap();
                    env.wait(req).unwrap();
                }
            }
            match &recv {
                Some(io) => (read_out(env, io, count * p), expect),
                None => (Vec::new(), expect),
            }
        }
        Kind::Alltoall => {
            // Block d of my send buffer goes to comm rank d; block s of
            // my receive holds rank s's block for me.
            let sendv: Vec<i32> = (0..count * p)
                .map(|i| input(seed, t, me_world, i))
                .collect();
            let expect: Vec<i32> = members
                .iter()
                .flat_map(|&r| (0..count).map(move |i| input(seed, t, r, me * count + i)))
                .collect();
            let send = write_input(env, arrays, &sendv);
            let recv = alloc_out(env, arrays, count * p);
            match (&send, &recv, nonblocking) {
                (Io::Buf(s), Io::Buf(r), false) => {
                    env.alltoall_buffer(*s, *r, n, &INT, comm).unwrap()
                }
                (Io::Arr(s), Io::Arr(r), false) => env.alltoall_array(*s, *r, n, comm).unwrap(),
                (Io::Buf(s), Io::Buf(r), true) => {
                    let req = env.ialltoall_buffer(*s, *r, n, &INT, comm).unwrap();
                    env.wait(req).unwrap();
                }
                (Io::Arr(s), Io::Arr(r), true) => {
                    let req = env.ialltoall_array(*s, *r, n, comm).unwrap();
                    env.wait(req).unwrap();
                }
                _ => unreachable!(),
            }
            (read_out(env, &recv, count * p), expect)
        }
    };
    assert_eq!(
        got, expect,
        "trial {t} {kind:?} nb={nonblocking} arrays={arrays} count={count} root={root} op={op:?}"
    );
    got
}

/// The per-rank harness body: `trials` drawn cases, half on a split
/// communicator. Returns (payload digest, final virtual clock bits).
pub fn conformance_body(env: &mut Env, trials: u64, seed: u64, arrays: bool) -> (u64, u64) {
    let w = env.world();
    let p = env.size();
    let me = env.rank();
    // Odd/even split, checked once per job: collectives on a
    // communicator that is not the world must agree with a reference
    // over the member world-ranks.
    let color = (me % 2) as i32;
    let sub = env
        .comm_split(w, color, me as i32)
        .unwrap()
        .expect("color >= 0");
    let world_members: Vec<usize> = (0..p).collect();
    let sub_members: Vec<usize> = (0..p).filter(|r| r % 2 == me % 2).collect();

    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut lcg = Lcg::new(seed);
    for t in 0..trials {
        let kind = KINDS[lcg.pick(KINDS.len())];
        let nonblocking = lcg.pick(2) == 1;
        let use_sub = lcg.pick(4) == 3 && sub_members.len() > 1;
        let (comm, members) = if use_sub {
            (sub, &sub_members)
        } else {
            (w, &world_members)
        };
        let count = [1usize, 3, 16, 128, 1024, 2500][lcg.pick(6)];
        let root = lcg.pick(members.len());
        let op = OPS[lcg.pick(OPS.len())];
        let got = run_case(
            env,
            comm,
            members,
            kind,
            nonblocking,
            arrays,
            count,
            root,
            op,
            seed,
            t,
        );
        fnv(&mut digest, &got);
    }
    env.barrier(w).unwrap();
    (digest, env.now().as_nanos().to_bits())
}

/// Expected window content of rank `r` after each epoch, computed as a
/// pure function (no communication) so every rank can check every
/// window it owns against the same reference.
pub fn rma_reference(p: usize, k: usize, seed: u64, epoch: u32) -> Vec<Vec<i32>> {
    let mut wins = vec![vec![0i32; k * p]; p];
    if epoch >= 1 {
        // Epoch 1: every rank puts its block (at offset me*k) into every
        // window, with target-dependent content.
        for (r, win) in wins.iter_mut().enumerate() {
            for s in 0..p {
                for i in 0..k {
                    win[s * k + i] = input(seed, 100 + r as u64, s, i);
                }
            }
        }
    }
    if epoch >= 2 {
        // Epoch 2: all ranks accumulate Sum into block 0 of rank p-1.
        for i in 0..k {
            let contrib = (0..p)
                .map(|r| input(seed, 200, r, i))
                .fold(0i32, |a, b| a.wrapping_add(b));
            wins[p - 1][i] = wins[p - 1][i].wrapping_add(contrib);
        }
    }
    if epoch >= 4 {
        // Epoch 4 (passive target): rank s locks rank (s+1)%p and puts a
        // fresh block at offset s*k.
        for (r, win) in wins.iter_mut().enumerate() {
            let s = (r + p - 1) % p;
            for i in 0..k {
                win[s * k + i] = input(seed, 300 + r as u64, s, i);
            }
        }
    }
    wins
}

pub enum WinIo {
    Buf(mvapich2j::DirectBuffer),
    Arr(mvapich2j::JArray<i32>),
}

/// Seeded one-sided epochs over the full bindings stack: active-target
/// fence epochs with Put and Accumulate, a Get epoch, and a passive
/// lock/unlock epoch, all checked against [`rma_reference`]. Returns
/// (payload digest, final clock bits) like [`conformance_body`].
pub fn rma_body(env: &mut Env, seed: u64, arrays: bool) -> (u64, u64) {
    let w = env.world();
    let p = env.size();
    let me = env.rank();
    let k = 32usize; // ints per block
    let n = k * p; // window length in ints

    let (win, io) = if arrays {
        let arr = env.new_array::<i32>(n).unwrap();
        (env.win_create_array(arr, w).unwrap(), WinIo::Arr(arr))
    } else {
        let buf = env.new_direct(n * 4);
        (env.win_create_buffer(buf, w).unwrap(), WinIo::Buf(buf))
    };
    let read_window = |env: &mut Env, io: &WinIo| -> Vec<i32> {
        match io {
            WinIo::Arr(a) => {
                let mut out = vec![0i32; n];
                env.array_read(*a, 0, &mut out).unwrap();
                out
            }
            WinIo::Buf(b) => (0..n)
                .map(|i| env.direct_get::<i32>(*b, i * 4).unwrap())
                .collect(),
        }
    };
    let mut digest = 0xcbf2_9ce4_8422_2325u64;

    // Epoch 1: puts to every rank (self included — exercises the local
    // delivery path).
    env.win_fence(win).unwrap();
    for r in 0..p {
        let vals: Vec<i32> = (0..k).map(|i| input(seed, 100 + r as u64, me, i)).collect();
        let origin = write_input(env, arrays, &vals);
        match &origin {
            Io::Buf(b) => env
                .put_buffer(win, *b, k as i32, &INT, r, me * k * 4)
                .unwrap(),
            Io::Arr(a) => env.put_array(win, *a, k as i32, r, me * k * 4).unwrap(),
        }
    }
    env.win_fence(win).unwrap();
    let got = read_window(env, &io);
    assert_eq!(
        got,
        rma_reference(p, k, seed, 1)[me],
        "epoch 1 (put) rank {me}"
    );
    fnv(&mut digest, &got);

    // Epoch 2: everyone accumulates Sum into block 0 of rank p-1.
    let vals: Vec<i32> = (0..k).map(|i| input(seed, 200, me, i)).collect();
    let origin = write_input(env, arrays, &vals);
    match &origin {
        Io::Buf(b) => env
            .accumulate_buffer(win, *b, k as i32, ReduceOp::Sum, p - 1, 0)
            .unwrap(),
        Io::Arr(a) => env
            .accumulate_array(win, *a, k as i32, ReduceOp::Sum, p - 1, 0)
            .unwrap(),
    }
    env.win_fence(win).unwrap();
    let got = read_window(env, &io);
    assert_eq!(
        got,
        rma_reference(p, k, seed, 2)[me],
        "epoch 2 (acc) rank {me}"
    );
    fnv(&mut digest, &got);

    // Epoch 3: get the block owned by rank (me+1)%p out of the window of
    // rank (me+2)%p; windows are unchanged.
    let src_rank = (me + 2) % p;
    let blk = (me + 1) % p;
    let dest = alloc_out(env, arrays, k);
    match &dest {
        Io::Buf(b) => env
            .get_buffer(win, *b, k as i32, &INT, src_rank, blk * k * 4)
            .unwrap(),
        Io::Arr(a) => env
            .get_array(win, *a, k as i32, src_rank, blk * k * 4)
            .unwrap(),
    }
    env.win_fence(win).unwrap();
    let got = read_out(env, &dest, k);
    let expect = rma_reference(p, k, seed, 3)[src_rank][blk * k..(blk + 1) * k].to_vec();
    assert_eq!(got, expect, "epoch 3 (get) rank {me}");
    fnv(&mut digest, &got);

    // Epoch 4: passive target — lock the neighbor, put, unlock; the
    // target observes the deposit at its next sync after the barrier.
    let t = (me + 1) % p;
    let vals: Vec<i32> = (0..k).map(|i| input(seed, 300 + t as u64, me, i)).collect();
    let origin = write_input(env, arrays, &vals);
    env.win_lock(win, t).unwrap();
    match &origin {
        Io::Buf(b) => env
            .put_buffer(win, *b, k as i32, &INT, t, me * k * 4)
            .unwrap(),
        Io::Arr(a) => env.put_array(win, *a, k as i32, t, me * k * 4).unwrap(),
    }
    env.win_unlock(win, t).unwrap();
    env.barrier(w).unwrap();
    env.win_sync(win).unwrap();
    let got = read_window(env, &io);
    assert_eq!(
        got,
        rma_reference(p, k, seed, 4)[me],
        "epoch 4 (passive) rank {me}"
    );
    fnv(&mut digest, &got);

    env.win_free(win).unwrap();
    env.barrier(w).unwrap();
    (digest, env.now().as_nanos().to_bits())
}
