//! Shape assertions over the regenerated figures (quick scale): who wins,
//! where the crossovers fall, which series are missing — the qualitative
//! content of the paper's evaluation, enforced in CI.
//!
//! Quick scale uses smaller sweeps and a 2×4 cluster for the collectives,
//! so the asserted factors are looser than the full-scale numbers in
//! `EXPERIMENTS.md` — the *directions* are the invariants.

use ombj_bench::{run_figure, Scale};

fn series<'a>(fig: &'a ombj_bench::Figure, label: &str) -> &'a ombj::Series {
    fig.series
        .iter()
        .find(|s| s.label.contains(label))
        .unwrap_or_else(|| panic!("{} missing series {label}", fig.id))
}

#[test]
fn fig5_mvapich2j_wins_intra_node_small_latency() {
    let fig = run_figure("fig5", Scale::Quick);
    let mv = series(&fig, "MVAPICH2-J buffer");
    let om = series(&fig, "Open MPI-J buffer");
    for (m, o) in mv.points.iter().zip(&om.points) {
        assert!(
            o.value > 1.5 * m.value,
            "OMPI-J must clearly trail at {} B: {} vs {}",
            m.size,
            o.value,
            m.value
        );
    }
}

#[test]
fn fig5_buffers_beat_arrays_at_omb_level() {
    // "At the OMB-J level, ByteBuffers are superior in performance."
    let fig = run_figure("fig5", Scale::Quick);
    let buf = series(&fig, "MVAPICH2-J buffer");
    let arr = series(&fig, "MVAPICH2-J arrays");
    for (b, a) in buf.points.iter().zip(&arr.points) {
        assert!(
            a.value > b.value,
            "arrays pay the buffering layer at {} B",
            b.size
        );
    }
}

#[test]
fn fig7_openmpij_arrays_series_is_missing() {
    let fig = run_figure("fig7", Scale::Quick);
    assert!(
        fig.series
            .iter()
            .all(|s| !s.label.contains("Open MPI-J arrays")),
        "Open MPI-J cannot produce an arrays bandwidth series"
    );
    assert!(
        fig.notes.iter().any(|n| n.contains("does not support")),
        "the omission must be recorded as a note"
    );
    assert_eq!(fig.series.len(), 3);
}

#[test]
fn fig9_inter_node_buffers_are_comparable() {
    // Paper: "MVAPICH2-J buffer performs comparably to Open MPI-J buffer"
    // inter-node.
    let fig = run_figure("fig9", Scale::Quick);
    let mv = series(&fig, "MVAPICH2-J buffer");
    let om = series(&fig, "Open MPI-J buffer");
    for (m, o) in mv.points.iter().zip(&om.points) {
        let ratio = o.value / m.value;
        assert!(
            (0.7..1.6).contains(&ratio),
            "inter-node buffers should be within ~1.6x at {} B (ratio {ratio:.2})",
            m.size
        );
    }
}

#[test]
fn fig11_overhead_is_submicrosecond_ballpark_and_ordered() {
    let fig = run_figure("fig11", Scale::Quick);
    let mv = series(&fig, "MVAPICH2-J overhead");
    let om = series(&fig, "Open MPI-J overhead");
    let mean =
        |s: &ombj::Series| s.points.iter().map(|p| p.value).sum::<f64>() / s.points.len() as f64;
    let (m, o) = (mean(mv), mean(om));
    assert!(
        m > 0.1 && m < 2.0,
        "MVAPICH2-J overhead in the ~1 us ballpark: {m}"
    );
    assert!(
        o > 0.1 && o < 2.5,
        "Open MPI-J overhead in the ~1 us ballpark: {o}"
    );
    assert!(
        o > m,
        "MVAPICH2-J has the smaller Java overhead ({m} vs {o})"
    );
}

#[test]
fn fig13_openmpij_slightly_ahead_on_large_internode_bandwidth() {
    let fig = run_figure("fig13", Scale::Quick);
    let mv = series(&fig, "MVAPICH2-J buffer");
    let om = series(&fig, "Open MPI-J buffer");
    let (m, o) = (
        mv.points.last().unwrap().value,
        om.points.last().unwrap().value,
    );
    assert!(
        o > m && o < 1.3 * m,
        "Open MPI-J buffer slightly ahead at the largest size: {o} vs {m}"
    );
}

#[test]
fn fig14_collective_gap_direction_and_magnitude() {
    let fig = run_figure("fig14", Scale::Quick);
    let mv = series(&fig, "MVAPICH2-J buffer");
    let om = series(&fig, "Open MPI-J buffer");
    for (m, o) in mv.points.iter().zip(&om.points) {
        assert!(
            o.value > 2.0 * m.value,
            "bcast gap must be large at {} B: {} vs {}",
            m.size,
            o.value,
            m.value
        );
    }
}

#[test]
fn fig16_allreduce_gap_direction() {
    let fig = run_figure("fig16", Scale::Quick);
    let mv = series(&fig, "MVAPICH2-J buffer");
    let om = series(&fig, "Open MPI-J buffer");
    for (m, o) in mv.points.iter().zip(&om.points) {
        assert!(
            o.value > 1.2 * m.value,
            "allreduce gap at {} B: {} vs {}",
            m.size,
            o.value,
            m.value
        );
    }
}

#[test]
fn fig18_validation_flips_the_winner() {
    let fig = run_figure("fig18", Scale::Quick);
    let buf = series(&fig, "buffer");
    let arr = series(&fig, "arrays");
    // Small messages: buffers win (staging overhead dominates).
    assert!(
        arr.points[0].value > buf.points[0].value,
        "buffers must win at {} B",
        buf.points[0].size
    );
    // Large messages: arrays win (element access dominates).
    let (b, a) = (buf.points.last().unwrap(), arr.points.last().unwrap());
    assert!(
        a.value < b.value,
        "arrays must win at {} B: {} vs {}",
        b.size,
        a.value,
        b.value
    );
    // There is exactly one crossover: once arrays win, they keep winning.
    let mut crossed = false;
    for (b, a) in buf.points.iter().zip(&arr.points) {
        if crossed {
            assert!(
                a.value < b.value,
                "arrays must stay ahead past the crossover (size {})",
                b.size
            );
        } else if a.value < b.value {
            crossed = true;
        }
    }
    assert!(crossed, "a crossover must exist");
}

#[test]
fn figures_are_deterministic_across_runs() {
    let a = run_figure("fig5", Scale::Quick);
    let b = run_figure("fig5", Scale::Quick);
    for (sa, sb) in a.series.iter().zip(&b.series) {
        assert_eq!(
            sa.points, sb.points,
            "series {} must be bit-identical",
            sa.label
        );
    }
}
