//! Native-library baselines: the same `osu_latency`/`osu_bw` loops run
//! directly against the simulated native MPI libraries (no Java layer,
//! no JNI, no managed heap). Figure 11 plots the gap between these and
//! the bindings.

use mpisim::datatype::BYTE;
use mpisim::{run_mpi, Profile};
use simfabric::Topology;

use crate::options::{BenchOptions, SizeValue};

/// Native `osu_latency` between ranks 0 and 1.
pub fn native_latency(topo: Topology, profile: Profile, opts: &BenchOptions) -> Vec<SizeValue> {
    let opts = *opts;
    let results = run_mpi(topo, profile, move |mpi| {
        let w = mpi.world();
        let me = mpi.rank(w).unwrap();
        let mut buf = vec![0u8; opts.max_size];
        let mut out = Vec::new();
        for size in opts.sizes() {
            let (warmup, iters) = opts.iters_for(size);
            mpi.barrier(w).unwrap();
            let mut elapsed = 0.0f64;
            for i in 0..warmup + iters {
                let t0 = mpi.now();
                if me == 0 {
                    mpi.send(&buf[..size], size as i32, &BYTE, 1, 1, w).unwrap();
                    mpi.recv(&mut buf[..size], size as i32, &BYTE, 1, 1, w)
                        .unwrap();
                } else if me == 1 {
                    mpi.recv(&mut buf[..size], size as i32, &BYTE, 0, 1, w)
                        .unwrap();
                    mpi.send(&buf[..size], size as i32, &BYTE, 0, 1, w).unwrap();
                }
                if me == 0 && i >= warmup {
                    elapsed += (mpi.now() - t0).as_nanos();
                }
            }
            if me == 0 {
                out.push(SizeValue {
                    size,
                    value: elapsed / (2.0 * iters as f64) / 1_000.0,
                });
            }
            mpi.barrier(w).unwrap();
        }
        out
    });
    results.into_iter().next().expect("rank 0 exists")
}

/// Native windowed bandwidth (MB/s).
pub fn native_bandwidth(topo: Topology, profile: Profile, opts: &BenchOptions) -> Vec<SizeValue> {
    let opts = *opts;
    let results = run_mpi(topo, profile, move |mpi| {
        let w = mpi.world();
        let me = mpi.rank(w).unwrap();
        let buf = vec![0u8; opts.max_size];
        let mut scratch = vec![0u8; opts.max_size];
        let mut out = Vec::new();
        for size in opts.sizes() {
            let (warmup, iters) = opts.iters_for(size);
            mpi.barrier(w).unwrap();
            let mut t_start = mpi.now();
            for i in 0..warmup + iters {
                if i == warmup {
                    mpi.barrier(w).unwrap();
                    t_start = mpi.now();
                }
                if me == 0 {
                    let reqs: Vec<_> = (0..opts.window_size)
                        .map(|_| {
                            mpi.isend(&buf[..size], size as i32, &BYTE, 1, 2, w)
                                .unwrap()
                        })
                        .collect();
                    for r in reqs {
                        mpi.wait(r, None).unwrap();
                    }
                    mpi.recv(&mut scratch[..4], 4, &BYTE, 1, 3, w).unwrap();
                } else if me == 1 {
                    let reqs: Vec<_> = (0..opts.window_size)
                        .map(|_| mpi.irecv(size as i32, &BYTE, 0, 2, w).unwrap())
                        .collect();
                    for r in reqs {
                        mpi.wait(r, Some(&mut scratch[..size])).unwrap();
                    }
                    mpi.send(&buf[..4], 4, &BYTE, 0, 3, w).unwrap();
                }
            }
            if me == 0 {
                let secs = (mpi.now() - t_start).as_secs();
                out.push(SizeValue {
                    size,
                    value: (size * opts.window_size * iters) as f64 / secs / 1e6,
                });
            }
            mpi.barrier(w).unwrap();
        }
        out
    });
    results.into_iter().next().expect("rank 0 exists")
}
