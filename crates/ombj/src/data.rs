//! Data population and validation for the `-validate` mode.
//!
//! OMB-J's validation populates the send buffer and verifies the receive
//! buffer **inside the timed region**. The cost of those element loops is
//! the whole point of Section VI-F: arrays are faster to read/write than
//! direct ByteBuffers, so validation flips the winner (Figure 18).
//!
//! The element loops charge exact per-element virtual costs
//! (`charge_array_loop` / `charge_direct_loop`) while the payload bytes
//! are produced in bulk — the virtual clock sees a Java loop, the
//! simulation stays O(n) in memcpy speed.

use mvapich2j::{DirectBuffer, Env, JArray};

/// Deterministic byte pattern for iteration `iter`.
#[inline]
fn pattern(iter: usize, i: usize) -> u8 {
    (iter as u8).wrapping_mul(31).wrapping_add(i as u8)
}

fn pattern_bytes(iter: usize, n: usize) -> Vec<u8> {
    (0..n).map(|i| pattern(iter, i)).collect()
}

/// Populate the first `n` elements of a byte array element-by-element
/// (Java loop cost).
pub fn fill_array(env: &mut Env, arr: JArray<i8>, n: usize, iter: usize) {
    let bytes = pattern_bytes(iter, n);
    {
        let (rt, _clock) = env.runtime_mut();
        rt.heap_mut()
            .bytes_mut(arr.handle())
            .expect("array is live")[..n]
            .copy_from_slice(&bytes);
    }
    env.charge_array_loop(n);
}

/// Verify the first `n` elements of a byte array element-by-element.
/// Returns how many elements mismatched.
pub fn validate_array(env: &mut Env, arr: JArray<i8>, n: usize, iter: usize) -> usize {
    let mismatches = {
        let (rt, _clock) = env.runtime_mut();
        let got = &rt.heap().bytes(arr.handle()).expect("array is live")[..n];
        got.iter()
            .enumerate()
            .filter(|&(i, &b)| b != pattern(iter, i))
            .count()
    };
    env.charge_array_loop(n);
    mismatches
}

/// Populate a direct ByteBuffer element-by-element (`put` loop cost).
pub fn fill_direct(env: &mut Env, buf: DirectBuffer, n: usize, iter: usize) {
    let bytes = pattern_bytes(iter, n);
    {
        let (rt, _clock) = env.runtime_mut();
        rt.direct_bytes_mut(buf).expect("buffer is live")[..n].copy_from_slice(&bytes);
    }
    env.charge_direct_loop(n);
}

/// Verify a direct ByteBuffer element-by-element (`get` loop cost).
pub fn validate_direct(env: &mut Env, buf: DirectBuffer, n: usize, iter: usize) -> usize {
    let mismatches = {
        let (rt, _clock) = env.runtime_mut();
        let got = &rt.direct_bytes(buf).expect("buffer is live")[..n];
        got.iter()
            .enumerate()
            .filter(|&(i, &b)| b != pattern(iter, i))
            .count()
    };
    env.charge_direct_loop(n);
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvapich2j::{run_job, JobConfig, Topology};

    #[test]
    fn fill_then_validate_is_clean() {
        run_job(JobConfig::mvapich2j(Topology::single_node(1)), |env| {
            let arr = env.new_array::<i8>(100).unwrap();
            fill_array(env, arr, 100, 3);
            assert_eq!(validate_array(env, arr, 100, 3), 0);
            assert!(
                validate_array(env, arr, 100, 4) > 0,
                "wrong seed must mismatch"
            );

            let buf = env.new_direct(100);
            fill_direct(env, buf, 100, 7);
            assert_eq!(validate_direct(env, buf, 100, 7), 0);
            assert!(validate_direct(env, buf, 100, 8) > 0);
        });
    }

    #[test]
    fn validation_charges_more_for_buffers_than_arrays() {
        // The Figure-18 mechanism, at the helper level.
        run_job(JobConfig::mvapich2j(Topology::single_node(1)), |env| {
            let n = 10_000;
            let arr = env.new_array::<i8>(n).unwrap();
            let buf = env.new_direct(n);
            let t0 = env.now();
            fill_array(env, arr, n, 0);
            let arr_cost = (env.now() - t0).as_nanos();
            let t1 = env.now();
            fill_direct(env, buf, n, 0);
            let buf_cost = (env.now() - t1).as_nanos();
            assert!(
                buf_cost > 2.0 * arr_cost,
                "BB fill {buf_cost} must dwarf array fill {arr_cost}"
            );
        });
    }

    #[test]
    fn corruption_is_detected() {
        run_job(JobConfig::mvapich2j(Topology::single_node(1)), |env| {
            let arr = env.new_array::<i8>(64).unwrap();
            fill_array(env, arr, 64, 1);
            // Corrupt one element.
            env.array_set(arr, 10, 99).unwrap();
            let bad = validate_array(env, arr, 64, 1);
            assert!(bad >= 1);
        });
    }
}
