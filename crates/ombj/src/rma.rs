//! One-sided benchmarks: `osu_put_latency`, `osu_get_bw`, `osu_put_bibw`
//! over window objects in both binding flavors. Passive-target epochs
//! (lock/unlock) drive the latency and get benchmarks like the OSU
//! defaults; the bidirectional put benchmark closes fence epochs so both
//! directions complete together.

use mvapich2j::datatype::BYTE;
use mvapich2j::{BindResult, DirectBuffer, Env, JArray, JWin};

use crate::data::{fill_array, fill_direct, validate_array, validate_direct};
use crate::options::{Api, BenchOptions, SizeValue};

/// Window plus origin/destination storage for one RMA run.
enum RmaBufs {
    Buffer {
        win: JWin,
        window: DirectBuffer,
        origin: DirectBuffer,
    },
    Arrays {
        win: JWin,
        window: JArray<i8>,
        origin: JArray<i8>,
    },
}

fn alloc_rma(env: &mut Env, api: Api, max: usize) -> BindResult<RmaBufs> {
    let w = env.world();
    Ok(match api {
        Api::Buffer => {
            let window = env.new_direct(max);
            let origin = env.new_direct(max);
            let win = env.win_create_buffer(window, w)?;
            RmaBufs::Buffer {
                win,
                window,
                origin,
            }
        }
        Api::Arrays => {
            let window = env.new_array::<i8>(max)?;
            let origin = env.new_array::<i8>(max)?;
            let win = env.win_create_array(window, w)?;
            RmaBufs::Arrays {
                win,
                window,
                origin,
            }
        }
    })
}

impl RmaBufs {
    fn win(&self) -> JWin {
        match self {
            RmaBufs::Buffer { win, .. } | RmaBufs::Arrays { win, .. } => *win,
        }
    }

    fn put(&self, env: &mut Env, size: usize, target: usize) -> BindResult<()> {
        match self {
            RmaBufs::Buffer { win, origin, .. } => {
                env.put_buffer(*win, *origin, size as i32, &BYTE, target, 0)
            }
            RmaBufs::Arrays { win, origin, .. } => {
                env.put_array(*win, *origin, size as i32, target, 0)
            }
        }
    }

    fn get(&self, env: &mut Env, size: usize, target: usize) -> BindResult<()> {
        match self {
            RmaBufs::Buffer { win, origin, .. } => {
                env.get_buffer(*win, *origin, size as i32, &BYTE, target, 0)
            }
            RmaBufs::Arrays { win, origin, .. } => {
                env.get_array(*win, *origin, size as i32, target, 0)
            }
        }
    }

    fn fill_origin(&self, env: &mut Env, size: usize, iter: usize) {
        match self {
            RmaBufs::Buffer { origin, .. } => fill_direct(env, *origin, size, iter),
            RmaBufs::Arrays { origin, .. } => fill_array(env, *origin, size, iter),
        }
    }

    fn fill_window(&self, env: &mut Env, size: usize, iter: usize) {
        match self {
            RmaBufs::Buffer { window, .. } => fill_direct(env, *window, size, iter),
            RmaBufs::Arrays { window, .. } => fill_array(env, *window, size, iter),
        }
    }

    fn validate_window(&self, env: &mut Env, size: usize, iter: usize) -> usize {
        match self {
            RmaBufs::Buffer { window, .. } => validate_direct(env, *window, size, iter),
            RmaBufs::Arrays { window, .. } => validate_array(env, *window, size, iter),
        }
    }

    fn validate_origin(&self, env: &mut Env, size: usize, iter: usize) -> usize {
        match self {
            RmaBufs::Buffer { origin, .. } => validate_direct(env, *origin, size, iter),
            RmaBufs::Arrays { origin, .. } => validate_array(env, *origin, size, iter),
        }
    }
}

fn size_marker(env: &Env, size: usize) {
    obs::instant(
        "bench.size",
        "bench",
        env.now(),
        vec![("bytes", obs::ArgValue::U64(size as u64))],
    );
}

/// `osu_put_latency`: rank 0 runs a lock/put/unlock passive-target epoch
/// against rank 1's window per iteration; reports µs per completed put.
pub fn put_latency(env: &mut Env, opts: &BenchOptions, api: Api) -> BindResult<Vec<SizeValue>> {
    assert!(env.size() >= 2, "osu_put_latency needs two ranks");
    let w = env.world();
    let me = env.rank();
    let bufs = alloc_rma(env, api, opts.max_size)?;
    let mut out = Vec::new();

    for size in opts.sizes() {
        let (warmup, iters) = opts.iters_for(size);
        env.barrier(w)?;
        size_marker(env, size);
        let mut elapsed = 0.0f64;
        for i in 0..warmup + iters {
            if me == 0 {
                if opts.validate {
                    bufs.fill_origin(env, size, i);
                }
                let t0 = env.now();
                env.win_lock(bufs.win(), 1)?;
                bufs.put(env, size, 1)?;
                env.win_unlock(bufs.win(), 1)?;
                if i >= warmup {
                    elapsed += (env.now() - t0).as_nanos();
                }
            }
            // The target stays passive; its progress engine applies the
            // deposit when the frame lands.
        }
        env.barrier(w)?;
        if me == 1 && opts.validate && iters > 0 {
            env.win_sync(bufs.win())?;
            let last = warmup + iters - 1;
            assert_eq!(
                bufs.validate_window(env, size, last),
                0,
                "corrupt put payload at {size} bytes"
            );
        }
        if me == 0 {
            out.push(SizeValue {
                size,
                value: elapsed / iters as f64 / 1_000.0, // µs per put
            });
        }
        env.barrier(w)?;
    }
    env.win_free(bufs.win())?;
    Ok(out)
}

/// `osu_get_bw`: rank 0 issues a window of RDMA reads from rank 1 under
/// one lock and completes them at the unlock; reports MB/s.
pub fn get_bw(env: &mut Env, opts: &BenchOptions, api: Api) -> BindResult<Vec<SizeValue>> {
    assert!(env.size() >= 2, "osu_get_bw needs two ranks");
    let w = env.world();
    let me = env.rank();
    let window = opts.window_size;
    let bufs = alloc_rma(env, api, opts.max_size)?;
    let mut out = Vec::new();

    for size in opts.sizes() {
        let (warmup, iters) = opts.iters_for(size);
        if me == 1 && opts.validate {
            bufs.fill_window(env, size, size);
        }
        // The fence publishes the target's freshly-written window
        // content before any origin reads it.
        env.win_fence(bufs.win())?;
        size_marker(env, size);
        let mut t_start = env.now();
        for i in 0..warmup + iters {
            if i == warmup {
                t_start = env.now();
            }
            if me == 0 {
                env.win_lock(bufs.win(), 1)?;
                for _ in 0..window {
                    bufs.get(env, size, 1)?;
                }
                env.win_unlock(bufs.win(), 1)?;
                if opts.validate {
                    assert_eq!(
                        bufs.validate_origin(env, size, size),
                        0,
                        "corrupt get payload at {size} bytes"
                    );
                }
            }
        }
        let elapsed_s = (env.now() - t_start).as_secs();
        env.barrier(w)?;
        if me == 0 {
            let bytes = (size * window * iters) as f64;
            out.push(SizeValue {
                size,
                value: bytes / elapsed_s / 1e6, // MB/s
            });
        }
    }
    env.win_free(bufs.win())?;
    Ok(out)
}

/// `osu_put_bibw`: both ranks stream a window of puts at each other and
/// close a fence epoch; reports aggregate MB/s over both directions.
pub fn put_bibw(env: &mut Env, opts: &BenchOptions, api: Api) -> BindResult<Vec<SizeValue>> {
    assert!(env.size() >= 2, "osu_put_bibw needs two ranks");
    let me = env.rank();
    let peer = if me == 0 { 1 } else { 0 };
    let window = opts.window_size;
    let bufs = alloc_rma(env, api, opts.max_size)?;
    let mut out = Vec::new();

    for size in opts.sizes() {
        let (warmup, iters) = opts.iters_for(size);
        env.win_fence(bufs.win())?;
        size_marker(env, size);
        let mut t_start = env.now();
        for i in 0..warmup + iters {
            if i == warmup {
                env.win_fence(bufs.win())?;
                t_start = env.now();
            }
            if me <= 1 {
                if opts.validate {
                    bufs.fill_origin(env, size, i);
                }
                for _ in 0..window {
                    bufs.put(env, size, peer)?;
                }
            }
            env.win_fence(bufs.win())?;
            if me <= 1 && opts.validate {
                assert_eq!(
                    bufs.validate_window(env, size, i),
                    0,
                    "corrupt bidirectional put at {size} bytes"
                );
            }
        }
        let elapsed_s = (env.now() - t_start).as_secs();
        if me == 0 {
            let bytes = 2.0 * (size * window * iters) as f64;
            out.push(SizeValue {
                size,
                value: bytes / elapsed_s / 1e6, // MB/s
            });
        }
    }
    env.win_free(bufs.win())?;
    Ok(out)
}
