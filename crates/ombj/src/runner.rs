//! Benchmark runner: resolve a (library, benchmark, API, topology)
//! specification into a measured series.

use mpjbuf::PoolStats;
use mvapich2j::{run_job_with_obs, BindError, BindResult, Env, JobConfig, Topology};
use simfabric::FaultPlan;

use crate::coll::{collective, CollOp};
use crate::options::{Api, BenchOptions, SizeValue};
use crate::pt2pt::{bandwidth, bibandwidth, lat_impl};

/// The libraries OMB-J can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Library {
    /// MVAPICH2-J over the MVAPICH2 native profile.
    Mvapich2J,
    /// Open MPI-J over the Open MPI + UCX native profile.
    OpenMpiJ,
}

impl Library {
    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Library::Mvapich2J => "MVAPICH2-J",
            Library::OpenMpiJ => "Open MPI-J",
        }
    }

    /// Job configuration on `topo`.
    pub fn config(self, topo: Topology) -> JobConfig {
        match self {
            Library::Mvapich2J => JobConfig::mvapich2j(topo),
            Library::OpenMpiJ => openmpij_config(topo),
        }
    }
}

/// Open MPI-J configuration (kept here so `ombj` does not depend on the
/// comparator crate's re-exports).
fn openmpij_config(topo: Topology) -> JobConfig {
    JobConfig::mvapich2j(topo).with_flavor(mvapich2j::OPENMPIJ, mpisim::Profile::openmpi_ucx())
}

/// The benchmarks OMB-J implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Benchmark {
    /// `osu_latency`.
    Latency,
    /// `osu_bw`.
    Bandwidth,
    /// `osu_bibw`.
    BiBandwidth,
    /// A blocking (possibly vectored) collective.
    Collective(CollOp),
}

impl Benchmark {
    /// OMB benchmark name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Latency => "osu_latency",
            Benchmark::Bandwidth => "osu_bw",
            Benchmark::BiBandwidth => "osu_bibw",
            Benchmark::Collective(op) => op.name(),
        }
    }

    /// Metric unit.
    pub fn unit(self) -> &'static str {
        match self {
            Benchmark::Latency | Benchmark::Collective(_) => "us",
            Benchmark::Bandwidth | Benchmark::BiBandwidth => "MB/s",
        }
    }
}

/// A fully-specified benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    pub library: Library,
    pub benchmark: Benchmark,
    pub api: Api,
    pub topo: Topology,
    pub opts: BenchOptions,
    /// Fault plan injected at the fabric (`None` = perfect fabric). The
    /// reliability sublayer keeps benchmark semantics unchanged under any
    /// non-crash plan; latency then reflects retransmission cost.
    pub faults: Option<FaultPlan>,
}

/// A measured series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// e.g. "MVAPICH2-J buffer".
    pub label: String,
    /// Benchmark name, e.g. "osu_latency".
    pub benchmark: &'static str,
    /// Metric unit.
    pub unit: &'static str,
    /// Measured points.
    pub points: Vec<SizeValue>,
    /// Rank 0's buffering-layer pool counters at the end of the run
    /// (`None` for series not produced by the runner, e.g. derived ones).
    pub pool: Option<PoolStats>,
}

/// Execute a run. Returns `None` when the combination is unsupported by
/// the library (Open MPI-J + arrays + non-blocking benchmarks), matching
/// the missing series in the paper's figures.
pub fn run(spec: RunSpec) -> Option<Series> {
    run_with_obs(spec, obs::ObsOptions::default()).0
}

/// Execute a run and also harvest the per-rank observability recorders
/// (pvars always; trace events when `o.tracing`). The report covers the
/// whole job even when the series itself is unsupported.
pub fn run_with_obs(spec: RunSpec, o: obs::ObsOptions) -> (Option<Series>, obs::JobReport) {
    let opts = spec.opts;
    let api = spec.api;
    let bench = spec.benchmark;
    let f = move |env: &mut Env| -> BindResult<(Vec<SizeValue>, PoolStats)> {
        let points = match bench {
            Benchmark::Latency => lat_impl(env, &opts, api),
            Benchmark::Bandwidth => bandwidth(env, &opts, api),
            Benchmark::BiBandwidth => bibandwidth(env, &opts, api),
            Benchmark::Collective(op) => collective(env, &opts, api, op),
        }?;
        Ok((points, env.pool_stats()))
    };
    let mut cfg = spec.library.config(spec.topo).with_obs(o);
    if let Some(plan) = spec.faults {
        cfg = cfg.with_faults(plan);
    }
    let (results, report) = run_job_with_obs(cfg, f);
    let series = match results.into_iter().next().expect("rank 0 exists") {
        Ok((points, pool)) => Some(Series {
            label: format!("{} {}", spec.library.label(), spec.api.label()),
            benchmark: spec.benchmark.name(),
            unit: spec.benchmark.unit(),
            points,
            pool: Some(pool),
        }),
        Err(BindError::Unsupported(_)) => None,
        Err(e) => panic!("benchmark {} failed: {e}", spec.benchmark.name()),
    };
    (series, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(library: Library, benchmark: Benchmark, api: Api) -> RunSpec {
        RunSpec {
            library,
            benchmark,
            api,
            topo: Topology::single_node(2),
            opts: BenchOptions::quick(),
            faults: None,
        }
    }

    #[test]
    fn latency_produces_monotonic_sizes() {
        let s = run(quick_spec(
            Library::Mvapich2J,
            Benchmark::Latency,
            Api::Buffer,
        ))
        .unwrap();
        assert_eq!(s.unit, "us");
        assert!(!s.points.is_empty());
        assert!(s.points.windows(2).all(|w| w[0].size < w[1].size));
        assert!(s.points.iter().all(|p| p.value > 0.0));
        // Large messages cost more than small ones.
        assert!(s.points.last().unwrap().value > s.points[0].value);
    }

    #[test]
    fn bandwidth_grows_with_message_size() {
        let s = run(quick_spec(
            Library::Mvapich2J,
            Benchmark::Bandwidth,
            Api::Buffer,
        ))
        .unwrap();
        assert!(s.points.last().unwrap().value > s.points[0].value * 5.0);
    }

    #[test]
    fn openmpij_arrays_bandwidth_is_missing() {
        // The paper's missing series.
        assert!(run(quick_spec(
            Library::OpenMpiJ,
            Benchmark::Bandwidth,
            Api::Arrays
        ))
        .is_none());
        assert!(run(quick_spec(
            Library::OpenMpiJ,
            Benchmark::BiBandwidth,
            Api::Arrays
        ))
        .is_none());
        // But buffers work.
        assert!(run(quick_spec(
            Library::OpenMpiJ,
            Benchmark::Bandwidth,
            Api::Buffer
        ))
        .is_some());
        // And MVAPICH2-J arrays work.
        assert!(run(quick_spec(
            Library::Mvapich2J,
            Benchmark::Bandwidth,
            Api::Arrays
        ))
        .is_some());
    }

    #[test]
    fn collective_benchmark_runs_on_multinode() {
        let spec = RunSpec {
            library: Library::Mvapich2J,
            benchmark: Benchmark::Collective(CollOp::Bcast),
            api: Api::Arrays,
            topo: Topology::new(2, 2),
            opts: BenchOptions {
                max_size: 1 << 10,
                ..BenchOptions::quick()
            },
            faults: None,
        };
        let s = run(spec).unwrap();
        assert_eq!(s.benchmark, "osu_bcast");
        assert!(s.points.iter().all(|p| p.value > 0.0));
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = quick_spec(Library::Mvapich2J, Benchmark::Latency, Api::Arrays);
        assert_eq!(run(spec).unwrap().points, run(spec).unwrap().points);
    }

    #[test]
    fn arrays_runs_surface_pool_stats_and_pvars() {
        let (series, report) = run_with_obs(
            quick_spec(Library::Mvapich2J, Benchmark::Latency, Api::Arrays),
            obs::ObsOptions::default(),
        );
        let pool = series
            .unwrap()
            .pool
            .expect("runner always records pool stats");
        assert!(pool.hits > 0, "steady-state staging reuses pooled buffers");
        assert!(pool.hits > pool.misses);
        let merged = report.merged_pvars();
        assert_eq!(merged.counter("mpjbuf.pool.hits"), 2 * pool.hits);
        assert!(merged.counter("pt2pt.eager_msgs") > 0);
        // Buffer runs bypass the buffering layer entirely.
        let s = run(quick_spec(
            Library::Mvapich2J,
            Benchmark::Latency,
            Api::Buffer,
        ))
        .unwrap();
        let pool = s.pool.unwrap();
        assert_eq!(pool.hits + pool.misses, 0);
    }
}
