//! Benchmark runner: resolve a (library, benchmark, API, topology)
//! specification into a measured series.

use mpjbuf::PoolStats;
use mvapich2j::{run_job_with_obs, BindError, BindResult, Env, JobConfig, Topology};
use simfabric::{EngineMode, FaultPlan};

use crate::coll::{collective, CollOp};
use crate::nbcoll::{nb_collective, NbOp, OverlapPoint};
use crate::options::{Api, BenchOptions, SizeValue};
use crate::pt2pt::{bandwidth, bibandwidth, lat_impl};

/// The libraries OMB-J can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Library {
    /// MVAPICH2-J over the MVAPICH2 native profile.
    Mvapich2J,
    /// Open MPI-J over the Open MPI + UCX native profile.
    OpenMpiJ,
}

impl Library {
    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Library::Mvapich2J => "MVAPICH2-J",
            Library::OpenMpiJ => "Open MPI-J",
        }
    }

    /// Job configuration on `topo`.
    pub fn config(self, topo: Topology) -> JobConfig {
        match self {
            Library::Mvapich2J => JobConfig::mvapich2j(topo),
            Library::OpenMpiJ => openmpij_config(topo),
        }
    }
}

/// Open MPI-J configuration (kept here so `ombj` does not depend on the
/// comparator crate's re-exports).
fn openmpij_config(topo: Topology) -> JobConfig {
    JobConfig::mvapich2j(topo).with_flavor(mvapich2j::OPENMPIJ, mpisim::Profile::openmpi_ucx())
}

/// The benchmarks OMB-J implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Benchmark {
    /// `osu_latency`.
    Latency,
    /// `osu_bw`.
    Bandwidth,
    /// `osu_bibw`.
    BiBandwidth,
    /// `osu_put_latency`: one-sided put under a passive-target epoch.
    PutLatency,
    /// `osu_get_bw`: windowed one-sided reads, completed at the unlock.
    GetBandwidth,
    /// `osu_put_bibw`: bidirectional put streams closed by fence epochs.
    PutBiBandwidth,
    /// A blocking (possibly vectored) collective.
    Collective(CollOp),
    /// A non-blocking collective with overlap measurement. `overlap`
    /// places the simulated compute between post and wait; without it
    /// the compute runs after the wait (the `--no-overlap` control).
    NonBlocking { op: NbOp, overlap: bool },
}

impl Benchmark {
    /// OMB benchmark name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Latency => "osu_latency",
            Benchmark::Bandwidth => "osu_bw",
            Benchmark::BiBandwidth => "osu_bibw",
            Benchmark::PutLatency => "osu_put_latency",
            Benchmark::GetBandwidth => "osu_get_bw",
            Benchmark::PutBiBandwidth => "osu_put_bibw",
            Benchmark::Collective(op) => op.name(),
            Benchmark::NonBlocking { op, .. } => op.name(),
        }
    }

    /// Metric unit.
    pub fn unit(self) -> &'static str {
        match self {
            Benchmark::Latency
            | Benchmark::PutLatency
            | Benchmark::Collective(_)
            | Benchmark::NonBlocking { .. } => "us",
            Benchmark::Bandwidth
            | Benchmark::BiBandwidth
            | Benchmark::GetBandwidth
            | Benchmark::PutBiBandwidth => "MB/s",
        }
    }
}

/// A fully-specified benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    pub library: Library,
    pub benchmark: Benchmark,
    pub api: Api,
    pub topo: Topology,
    pub opts: BenchOptions,
    /// Fault plan injected at the fabric (`None` = perfect fabric). The
    /// reliability sublayer keeps benchmark semantics unchanged under any
    /// non-crash plan; latency then reflects retransmission cost.
    pub faults: Option<FaultPlan>,
    /// Cluster engine: one OS thread per rank (`Threaded`) or the
    /// cooperative discrete-event scheduler (`EventDriven`), which lifts
    /// the rank ceiling into the thousands. Virtual-time results are
    /// identical (see `tests/engine_diff.rs`).
    pub engine: EngineMode,
}

/// A measured series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// e.g. "MVAPICH2-J buffer".
    pub label: String,
    /// Benchmark name, e.g. "osu_latency".
    pub benchmark: &'static str,
    /// Metric unit.
    pub unit: &'static str,
    /// Measured points.
    pub points: Vec<SizeValue>,
    /// Rank 0's buffering-layer pool counters at the end of the run
    /// (`None` for series not produced by the runner, e.g. derived ones).
    pub pool: Option<PoolStats>,
    /// Full overlap breakdown for non-blocking collective benchmarks
    /// (`points` then carries the overall latency column).
    pub overlap: Option<Vec<OverlapPoint>>,
}

/// Execute a run. Returns `None` when the combination is unsupported by
/// the library (Open MPI-J + arrays + non-blocking benchmarks), matching
/// the missing series in the paper's figures.
pub fn run(spec: RunSpec) -> Option<Series> {
    run_with_obs(spec, obs::ObsOptions::default()).0
}

/// Execute a run and also harvest the per-rank observability recorders
/// (pvars always; trace events when `o.tracing`). The report covers the
/// whole job even when the series itself is unsupported.
pub fn run_with_obs(spec: RunSpec, o: obs::ObsOptions) -> (Option<Series>, obs::JobReport) {
    let opts = spec.opts;
    let api = spec.api;
    let bench = spec.benchmark;
    let crashy = spec.faults.is_some_and(|p| p.crash.is_some());
    type RankOut = (Vec<SizeValue>, Option<Vec<OverlapPoint>>, PoolStats);
    let f = move |env: &mut Env| -> BindResult<RankOut> {
        if crashy {
            // Under a crash plan, failures are data rather than panics:
            // every rank returns the typed error, its recorder drains
            // normally, and the job report can assemble an incident
            // bundle from the flight windows.
            let w = env.world();
            env.native_mut()
                .set_errhandler(w, mpisim::Errhandler::ErrorsReturn)
                .expect("world accepts an errhandler");
        }
        let (points, overlap) = match bench {
            Benchmark::Latency => (lat_impl(env, &opts, api)?, None),
            Benchmark::Bandwidth => (bandwidth(env, &opts, api)?, None),
            Benchmark::BiBandwidth => (bibandwidth(env, &opts, api)?, None),
            Benchmark::PutLatency => (crate::rma::put_latency(env, &opts, api)?, None),
            Benchmark::GetBandwidth => (crate::rma::get_bw(env, &opts, api)?, None),
            Benchmark::PutBiBandwidth => (crate::rma::put_bibw(env, &opts, api)?, None),
            Benchmark::Collective(op) => (collective(env, &opts, api, op)?, None),
            Benchmark::NonBlocking { op, overlap } => {
                let pts = nb_collective(env, &opts, api, op, overlap)?;
                let latency = pts
                    .iter()
                    .map(|p| SizeValue {
                        size: p.size,
                        value: p.overall_us,
                    })
                    .collect();
                (latency, Some(pts))
            }
        };
        Ok((points, overlap, env.pool_stats()))
    };
    let mut cfg = spec
        .library
        .config(spec.topo)
        .with_engine(spec.engine)
        .with_obs(o);
    if let Some(plan) = spec.faults {
        cfg = cfg.with_faults(plan);
    }
    let (results, report) = run_job_with_obs(cfg, f);
    let series = match results.into_iter().next().expect("rank 0 exists") {
        Ok((points, overlap, pool)) => Some(Series {
            label: format!("{} {}", spec.library.label(), spec.api.label()),
            benchmark: spec.benchmark.name(),
            unit: spec.benchmark.unit(),
            points,
            pool: Some(pool),
            overlap,
        }),
        Err(BindError::Unsupported(_)) => None,
        // Expected outcome of a crash-plan run: no series, but the
        // report (pvars, flight windows, incident marks) is intact.
        Err(BindError::Mpi(e)) if crashy && e.is_transport() => None,
        Err(e) => panic!("benchmark {} failed: {e}", spec.benchmark.name()),
    };
    (series, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(library: Library, benchmark: Benchmark, api: Api) -> RunSpec {
        RunSpec {
            library,
            benchmark,
            api,
            topo: Topology::single_node(2),
            opts: BenchOptions::quick(),
            faults: None,
            engine: EngineMode::Threaded,
        }
    }

    #[test]
    fn latency_produces_monotonic_sizes() {
        let s = run(quick_spec(
            Library::Mvapich2J,
            Benchmark::Latency,
            Api::Buffer,
        ))
        .unwrap();
        assert_eq!(s.unit, "us");
        assert!(!s.points.is_empty());
        assert!(s.points.windows(2).all(|w| w[0].size < w[1].size));
        assert!(s.points.iter().all(|p| p.value > 0.0));
        // Large messages cost more than small ones.
        assert!(s.points.last().unwrap().value > s.points[0].value);
    }

    #[test]
    fn bandwidth_grows_with_message_size() {
        let s = run(quick_spec(
            Library::Mvapich2J,
            Benchmark::Bandwidth,
            Api::Buffer,
        ))
        .unwrap();
        assert!(s.points.last().unwrap().value > s.points[0].value * 5.0);
    }

    #[test]
    fn openmpij_arrays_bandwidth_is_missing() {
        // The paper's missing series.
        assert!(run(quick_spec(
            Library::OpenMpiJ,
            Benchmark::Bandwidth,
            Api::Arrays
        ))
        .is_none());
        assert!(run(quick_spec(
            Library::OpenMpiJ,
            Benchmark::BiBandwidth,
            Api::Arrays
        ))
        .is_none());
        // But buffers work.
        assert!(run(quick_spec(
            Library::OpenMpiJ,
            Benchmark::Bandwidth,
            Api::Buffer
        ))
        .is_some());
        // And MVAPICH2-J arrays work.
        assert!(run(quick_spec(
            Library::Mvapich2J,
            Benchmark::Bandwidth,
            Api::Arrays
        ))
        .is_some());
    }

    #[test]
    fn collective_benchmark_runs_on_multinode() {
        let spec = RunSpec {
            library: Library::Mvapich2J,
            benchmark: Benchmark::Collective(CollOp::Bcast),
            api: Api::Arrays,
            topo: Topology::new(2, 2),
            opts: BenchOptions {
                max_size: 1 << 10,
                ..BenchOptions::quick()
            },
            faults: None,
            engine: EngineMode::Threaded,
        };
        let s = run(spec).unwrap();
        assert_eq!(s.benchmark, "osu_bcast");
        assert!(s.points.iter().all(|p| p.value > 0.0));
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = quick_spec(Library::Mvapich2J, Benchmark::Latency, Api::Arrays);
        assert_eq!(run(spec).unwrap().points, run(spec).unwrap().points);
    }

    fn nb_spec(op: NbOp, api: Api, overlap: bool) -> RunSpec {
        RunSpec {
            library: Library::Mvapich2J,
            benchmark: Benchmark::NonBlocking { op, overlap },
            api,
            topo: Topology::new(2, 2),
            opts: BenchOptions {
                min_size: 1 << 10,
                max_size: 1 << 16,
                ..BenchOptions::quick()
            },
            faults: None,
            engine: EngineMode::Threaded,
        }
    }

    #[test]
    fn nonblocking_overlap_hides_communication_under_compute() {
        for op in [NbOp::Ibcast, NbOp::Iallreduce] {
            let s = run(nb_spec(op, Api::Buffer, true)).unwrap();
            let overlap = s.overlap.as_ref().expect("overlap breakdown present");
            assert_eq!(s.points.len(), overlap.len());
            // With a schedule-based progression engine the largest
            // messages hide most of their communication.
            let last = overlap.last().unwrap();
            assert!(
                last.overlap_pct > 50.0,
                "{}: large-message overlap only {:.1}%",
                op.name(),
                last.overlap_pct
            );
            // And overlap grows with message size (software post/wait
            // overhead dominates the small sizes).
            assert!(overlap.first().unwrap().overlap_pct < last.overlap_pct);
            for p in overlap {
                assert!(p.pure_us > 0.0 && p.overall_us >= p.pure_us);
            }
        }
    }

    #[test]
    fn nonblocking_without_overlap_reports_zero() {
        let s = run(nb_spec(NbOp::Iallreduce, Api::Buffer, false)).unwrap();
        for p in s.overlap.unwrap() {
            assert!(
                p.overlap_pct < 1.0,
                "no-overlap control leaked {:.2}% at {} bytes",
                p.overlap_pct,
                p.size
            );
        }
    }

    #[test]
    fn nonblocking_runs_are_deterministic() {
        let spec = nb_spec(NbOp::Ibcast, Api::Arrays, true);
        let a = run(spec).unwrap();
        let b = run(spec).unwrap();
        assert_eq!(a.overlap, b.overlap);
        assert!(a.overlap.unwrap().last().unwrap().overlap_pct > 0.0);
    }

    #[test]
    fn openmpij_arrays_nonblocking_collectives_are_missing() {
        let spec = RunSpec {
            library: Library::OpenMpiJ,
            ..nb_spec(NbOp::Ibcast, Api::Arrays, true)
        };
        assert!(run(spec).is_none());
        let spec = RunSpec {
            library: Library::OpenMpiJ,
            ..nb_spec(NbOp::Ibcast, Api::Buffer, true)
        };
        assert!(run(spec).is_some());
    }

    #[test]
    fn arrays_runs_surface_pool_stats_and_pvars() {
        let (series, report) = run_with_obs(
            quick_spec(Library::Mvapich2J, Benchmark::Latency, Api::Arrays),
            obs::ObsOptions::default(),
        );
        let pool = series
            .unwrap()
            .pool
            .expect("runner always records pool stats");
        assert!(pool.hits > 0, "steady-state staging reuses pooled buffers");
        assert!(pool.hits > pool.misses);
        let merged = report.merged_pvars();
        assert_eq!(merged.counter("mpjbuf.pool.hits"), 2 * pool.hits);
        assert!(merged.counter("pt2pt.eager_msgs") > 0);
        // Buffer runs bypass the buffering layer entirely.
        let s = run(quick_spec(
            Library::Mvapich2J,
            Benchmark::Latency,
            Api::Buffer,
        ))
        .unwrap();
        let pool = s.pool.unwrap();
        assert_eq!(pool.hits + pool.misses, 0);
    }
}
