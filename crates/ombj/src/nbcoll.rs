//! Non-blocking collective benchmarks: `osu_ibcast` and
//! `osu_iallreduce`, measuring communication/computation overlap the way
//! OSU's non-blocking benchmarks do.
//!
//! For each message size the benchmark measures:
//!
//! 1. **Pure communication time** — post the collective and wait
//!    immediately (`Icoll; Wait`), averaged across ranks.
//! 2. **Overall time** — post the collective, run simulated application
//!    compute sized to the pure communication time, then wait
//!    (`Icoll; compute; Wait`).
//!
//! Overlap is the fraction of communication hidden under compute:
//! `100 × (1 − (overall − compute) / pure)`. A schedule progressed
//! entirely by a hardware-offload-style engine scores near 100; a
//! library that only progresses inside `Wait` scores near 0. With
//! `--no-overlap` the compute runs *after* the wait, so overall ≈ pure +
//! compute and the reported overlap collapses to ≈ 0 — the control the
//! acceptance experiment compares against.

use mvapich2j::datatype::{BYTE, DOUBLE};
use mvapich2j::{BindResult, Env, JRequest, ReduceOp};
use vtime::VDur;

use crate::options::{Api, BenchOptions};

/// The non-blocking collectives OMB-J covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NbOp {
    Ibcast,
    Iallreduce,
}

impl NbOp {
    /// OMB benchmark name.
    pub fn name(self) -> &'static str {
        match self {
            NbOp::Ibcast => "osu_ibcast",
            NbOp::Iallreduce => "osu_iallreduce",
        }
    }
}

/// One measured overlap point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapPoint {
    /// Message size in bytes.
    pub size: usize,
    /// Overall time per operation with compute in flight (µs).
    pub overall_us: f64,
    /// Pure communication time per operation (µs).
    pub pure_us: f64,
    /// Simulated compute per operation (µs).
    pub compute_us: f64,
    /// Communication hidden under compute, in percent (0–100).
    pub overlap_pct: f64,
}

enum NbBufs {
    Buffer {
        send: mvapich2j::DirectBuffer,
        recv: mvapich2j::DirectBuffer,
    },
    Arrays {
        send: mvapich2j::JArray<i8>,
        recv: mvapich2j::JArray<i8>,
    },
}

fn post(env: &mut Env, bufs: &NbBufs, op: NbOp, n: i32) -> BindResult<JRequest> {
    let w = env.world();
    match (bufs, op) {
        (NbBufs::Buffer { send, .. }, NbOp::Ibcast) => env.ibcast_buffer(*send, n, &BYTE, 0, w),
        (NbBufs::Buffer { send, recv }, NbOp::Iallreduce) => {
            env.iallreduce_buffer(*send, *recv, n, &BYTE, ReduceOp::Sum, w)
        }
        (NbBufs::Arrays { send, .. }, NbOp::Ibcast) => env.ibcast_array(*send, n, 0, w),
        (NbBufs::Arrays { send, recv }, NbOp::Iallreduce) => {
            env.iallreduce_array(*send, *recv, n, ReduceOp::Sum, w)
        }
    }
}

/// Average per-rank elapsed nanoseconds across the job, in µs/op.
fn avg_us(env: &mut Env, local_ns: f64, iters: usize) -> BindResult<f64> {
    let w = env.world();
    let p = env.size() as f64;
    let send = env.new_direct(8);
    let recv = env.new_direct(8);
    env.direct_put::<f64>(send, 0, local_ns)?;
    env.allreduce_buffer(send, recv, 1, &DOUBLE, ReduceOp::Sum, w)?;
    let total = env.direct_get::<f64>(recv, 0)?;
    env.free_direct(send)?;
    env.free_direct(recv)?;
    Ok(total / p / iters as f64 / 1_000.0)
}

/// Run one non-blocking collective benchmark. With `overlap` the
/// simulated compute runs between post and wait; without it the compute
/// runs after the wait (no chance to hide communication).
pub fn nb_collective(
    env: &mut Env,
    opts: &BenchOptions,
    api: Api,
    op: NbOp,
    overlap: bool,
) -> BindResult<Vec<OverlapPoint>> {
    let w = env.world();
    let bufs = match api {
        Api::Buffer => NbBufs::Buffer {
            send: env.new_direct(opts.max_size.max(1)),
            recv: env.new_direct(opts.max_size.max(1)),
        },
        Api::Arrays => NbBufs::Arrays {
            send: env.new_array::<i8>(opts.max_size.max(1))?,
            recv: env.new_array::<i8>(opts.max_size.max(1))?,
        },
    };
    // Surface the restriction before any timing: Open MPI-J has no
    // array-flavor non-blocking collectives.
    if matches!(bufs, NbBufs::Arrays { .. }) {
        let probe = post(env, &bufs, op, 1)?;
        env.wait(probe)?;
    }

    let mut out = Vec::new();
    for size in opts.sizes() {
        let (warmup, iters) = opts.iters_for(size);
        let n = size as i32;
        env.barrier(w)?;
        obs::instant(
            "bench.size",
            "bench",
            env.now(),
            vec![("bytes", obs::ArgValue::U64(size as u64))],
        );

        // Phase 1: pure communication (Icoll; Wait).
        let mut local = 0.0;
        for i in 0..warmup + iters {
            let t0 = env.now();
            let req = post(env, &bufs, op, n)?;
            env.wait(req)?;
            if i >= warmup {
                local += (env.now() - t0).as_nanos();
            }
        }
        let pure_us = avg_us(env, local, iters)?;

        // Phase 2: the same operation with compute sized to the pure
        // communication time. Every rank uses the job-wide average, so
        // the compute block is identical across ranks.
        let compute_us = pure_us;
        let compute = VDur::from_nanos(compute_us * 1_000.0);
        env.barrier(w)?;
        let mut local = 0.0;
        for i in 0..warmup + iters {
            let t0 = env.now();
            let req = post(env, &bufs, op, n)?;
            if overlap {
                env.compute(compute);
                env.wait(req)?;
            } else {
                env.wait(req)?;
                env.compute(compute);
            }
            if i >= warmup {
                local += (env.now() - t0).as_nanos();
            }
        }
        let overall_us = avg_us(env, local, iters)?;

        let overlap_pct = if pure_us > 0.0 {
            (100.0 * (1.0 - (overall_us - compute_us) / pure_us)).clamp(0.0, 100.0)
        } else {
            0.0
        };
        out.push(OverlapPoint {
            size,
            overall_us,
            pure_us,
            compute_us,
            overlap_pct,
        });
    }
    Ok(out)
}
