//! Collective benchmarks: `osu_bcast`, `osu_allreduce`, `osu_reduce`,
//! `osu_allgather`, `osu_alltoall`, `osu_gather`, `osu_scatter`, their
//! vectored variants, and `osu_barrier`.
//!
//! Each reports the latency per message size, **averaged across all
//! ranks** (the per-rank elapsed totals are combined with a reduction,
//! exactly as the paper describes for `osu_bcast`).

use mvapich2j::datatype::{BYTE, DOUBLE};
use mvapich2j::{BindResult, DirectBuffer, Env, JArray, ReduceOp};

use crate::options::{Api, BenchOptions, SizeValue};

/// The blocking collectives OMB-J covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollOp {
    Bcast,
    Reduce,
    Allreduce,
    Allgather,
    Allgatherv,
    Gather,
    Gatherv,
    Scatter,
    Scatterv,
    Alltoall,
    Alltoallv,
    Barrier,
}

impl CollOp {
    /// OMB benchmark name.
    pub fn name(self) -> &'static str {
        match self {
            CollOp::Bcast => "osu_bcast",
            CollOp::Reduce => "osu_reduce",
            CollOp::Allreduce => "osu_allreduce",
            CollOp::Allgather => "osu_allgather",
            CollOp::Allgatherv => "osu_allgatherv",
            CollOp::Gather => "osu_gather",
            CollOp::Gatherv => "osu_gatherv",
            CollOp::Scatter => "osu_scatter",
            CollOp::Scatterv => "osu_scatterv",
            CollOp::Alltoall => "osu_alltoall",
            CollOp::Alltoallv => "osu_alltoallv",
            CollOp::Barrier => "osu_barrier",
        }
    }

    /// Whether the recv side needs `p ×` the per-rank size.
    fn recv_scales_with_p(self) -> bool {
        matches!(
            self,
            CollOp::Allgather
                | CollOp::Allgatherv
                | CollOp::Gather
                | CollOp::Gatherv
                | CollOp::Alltoall
                | CollOp::Alltoallv
        )
    }

    /// Whether the send side needs `p ×` the per-rank size.
    fn send_scales_with_p(self) -> bool {
        matches!(
            self,
            CollOp::Alltoall | CollOp::Alltoallv | CollOp::Scatter | CollOp::Scatterv
        )
    }
}

enum Bufs {
    Buffer {
        send: DirectBuffer,
        recv: DirectBuffer,
    },
    Arrays {
        send: JArray<i8>,
        recv: JArray<i8>,
    },
}

/// Average the per-rank elapsed nanoseconds and convert to µs/op.
fn avg_latency_us(env: &mut Env, local_ns: f64, iters: usize) -> BindResult<f64> {
    let w = env.world();
    let p = env.size() as f64;
    let send = env.new_direct(8);
    let recv = env.new_direct(8);
    env.direct_put::<f64>(send, 0, local_ns)?;
    env.allreduce_buffer(send, recv, 1, &DOUBLE, ReduceOp::Sum, w)?;
    let total = env.direct_get::<f64>(recv, 0)?;
    env.free_direct(send)?;
    env.free_direct(recv)?;
    Ok(total / p / iters as f64 / 1_000.0)
}

/// Run one collective benchmark; every rank gets the same result vector.
pub fn collective(
    env: &mut Env,
    opts: &BenchOptions,
    api: Api,
    op: CollOp,
) -> BindResult<Vec<SizeValue>> {
    let w = env.world();
    let p = env.size();
    let me = env.rank();

    if op == CollOp::Barrier {
        let (warmup, iters) = (opts.warmup, opts.iterations);
        env.barrier(w)?;
        obs::instant(
            "bench.size",
            "bench",
            env.now(),
            vec![("bytes", obs::ArgValue::U64(0))],
        );
        let mut local = 0.0;
        for i in 0..warmup + iters {
            let t0 = env.now();
            env.barrier(w)?;
            if i >= warmup {
                local += (env.now() - t0).as_nanos();
            }
        }
        let v = avg_latency_us(env, local, iters)?;
        return Ok(vec![SizeValue { size: 0, value: v }]);
    }

    let send_max = if op.send_scales_with_p() {
        opts.max_size * p
    } else {
        opts.max_size
    };
    let recv_max = if op.recv_scales_with_p() {
        opts.max_size * p
    } else {
        opts.max_size
    };
    let bufs = match api {
        Api::Buffer => Bufs::Buffer {
            send: env.new_direct(send_max),
            recv: env.new_direct(recv_max),
        },
        Api::Arrays => Bufs::Arrays {
            send: env.new_array::<i8>(send_max)?,
            recv: env.new_array::<i8>(recv_max)?,
        },
    };

    let mut out = Vec::new();
    for size in opts.sizes() {
        let (warmup, iters) = opts.iters_for(size);
        let counts = vec![size as i32; p];
        let displs: Vec<i32> = (0..p).map(|r| (r * size) as i32).collect();
        env.barrier(w)?;
        obs::instant(
            "bench.size",
            "bench",
            env.now(),
            vec![("bytes", obs::ArgValue::U64(size as u64))],
        );
        let mut local = 0.0;
        for i in 0..warmup + iters {
            let t0 = env.now();
            run_one(env, &bufs, op, size, me, p, &counts, &displs)?;
            if i >= warmup {
                local += (env.now() - t0).as_nanos();
            }
            env.barrier(w)?;
        }
        let v = avg_latency_us(env, local, iters)?;
        out.push(SizeValue { size, value: v });
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    env: &mut Env,
    bufs: &Bufs,
    op: CollOp,
    size: usize,
    me: usize,
    p: usize,
    counts: &[i32],
    displs: &[i32],
) -> BindResult<()> {
    let w = env.world();
    let n = size as i32;
    let root = 0usize;
    match bufs {
        Bufs::Buffer { send, recv } => match op {
            CollOp::Bcast => env.bcast_buffer(*send, n, &BYTE, root, w),
            CollOp::Reduce => {
                let out = (me == root).then_some(*recv);
                env.reduce_buffer(*send, out, n, &BYTE, ReduceOp::Sum, root, w)
            }
            CollOp::Allreduce => env.allreduce_buffer(*send, *recv, n, &BYTE, ReduceOp::Sum, w),
            CollOp::Allgather => env.allgather_buffer(*send, *recv, n, &BYTE, w),
            CollOp::Allgatherv => env.allgatherv_buffer(*send, n, *recv, counts, displs, &BYTE, w),
            CollOp::Gather => {
                let out = (me == root).then_some(*recv);
                env.gather_buffer(*send, out, n, &BYTE, root, w)
            }
            CollOp::Gatherv => {
                let out = (me == root).then_some(*recv);
                env.gatherv_buffer(*send, n, out, counts, displs, &BYTE, root, w)
            }
            CollOp::Scatter => {
                let src = (me == root).then_some(*send);
                env.scatter_buffer(src, *recv, n, &BYTE, root, w)
            }
            CollOp::Scatterv => {
                let src = (me == root).then_some(*send);
                env.scatterv_buffer(src, counts, displs, *recv, n, &BYTE, root, w)
            }
            CollOp::Alltoall => env.alltoall_buffer(*send, *recv, n, &BYTE, w),
            CollOp::Alltoallv => {
                env.alltoallv_buffer(*send, counts, displs, *recv, counts, displs, &BYTE, w)
            }
            CollOp::Barrier => unreachable!("handled above"),
        },
        Bufs::Arrays { send, recv } => match op {
            CollOp::Bcast => env.bcast_array(*send, n, root, w),
            CollOp::Reduce => {
                let out = (me == root).then_some(*recv);
                env.reduce_array(*send, out, n, ReduceOp::Sum, root, w)
            }
            CollOp::Allreduce => env.allreduce_array(*send, *recv, n, ReduceOp::Sum, w),
            CollOp::Allgather => env.allgather_array(*send, *recv, n, w),
            CollOp::Allgatherv => env.allgatherv_array(*send, n, *recv, counts, displs, w),
            CollOp::Gather => {
                let out = (me == root).then_some(*recv);
                env.gather_array(*send, out, n, root, w)
            }
            CollOp::Gatherv => {
                let out = (me == root).then_some(*recv);
                env.gatherv_array(*send, n, out, counts, displs, root, w)
            }
            CollOp::Scatter => {
                let src = (me == root).then_some(*send);
                env.scatter_array(src, *recv, n, root, w)
            }
            CollOp::Scatterv => {
                let src = (me == root).then_some(*send);
                env.scatterv_array(src, counts, displs, *recv, n, root, w)
            }
            CollOp::Alltoall => env.alltoall_array(*send, *recv, n, w),
            CollOp::Alltoallv => {
                env.alltoallv_array(*send, counts, displs, *recv, counts, displs, w)
            }
            CollOp::Barrier => unreachable!("handled above"),
        },
    }?;
    let _ = p;
    Ok(())
}
