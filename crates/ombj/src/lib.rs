//! **OMB-J** — the OSU Micro-Benchmark suite for Java-style MPI
//! libraries, as designed in Section V of the paper.
//!
//! Supported benchmarks:
//!
//! * point-to-point: `osu_latency`, `osu_bw`, `osu_bibw` — each over
//!   direct ByteBuffers or Java arrays, with optional in-loop data
//!   validation (the Section VI-F experiment);
//! * blocking collectives: `osu_bcast`, `osu_reduce`, `osu_allreduce`,
//!   `osu_allgather`, `osu_gather`, `osu_scatter`, `osu_alltoall`,
//!   `osu_barrier`;
//! * vectored blocking collectives: `osu_allgatherv`, `osu_gatherv`,
//!   `osu_scatterv`, `osu_alltoallv`;
//! * non-blocking collectives with communication/computation overlap
//!   measurement: `osu_ibcast`, `osu_iallreduce` (see [`nbcoll`]);
//! * native baselines (no Java layer) for the Figure-11 overhead plot.
//!
//! Because timing is virtual, every reported number is deterministic —
//! rerunning a benchmark reproduces it bit-for-bit.

pub mod coll;
pub mod data;
pub mod native;
pub mod nbcoll;
pub mod options;
pub mod pt2pt;
pub mod report;
pub mod rma;
pub mod runner;

pub use coll::CollOp;
pub use nbcoll::{NbOp, OverlapPoint};
pub use options::{Api, BenchOptions, SizeValue};
pub use runner::{run, run_with_obs, Benchmark, Library, RunSpec, Series};
