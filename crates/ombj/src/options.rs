//! Benchmark options, mirroring the OMB command-line knobs the paper's
//! OMB-J supports (message-size range, iteration counts, validation).

/// Which user-buffer API a benchmark exercises (the paper's central
/// comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Api {
    /// Direct NIO ByteBuffers.
    Buffer,
    /// Java arrays (through the buffering layer).
    Arrays,
}

impl Api {
    /// Label used in series names ("buffer" / "arrays", as in the
    /// figures).
    pub fn label(self) -> &'static str {
        match self {
            Api::Buffer => "buffer",
            Api::Arrays => "arrays",
        }
    }
}

/// Options shared by all benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct BenchOptions {
    /// Smallest message size in bytes (power of two).
    pub min_size: usize,
    /// Largest message size in bytes (power of two).
    pub max_size: usize,
    /// Iterations per size below [`BenchOptions::large_threshold`].
    pub iterations: usize,
    /// Warmup iterations per size (small messages).
    pub warmup: usize,
    /// Sizes ≥ this use the reduced large-message iteration counts, like
    /// OMB.
    pub large_threshold: usize,
    /// Iterations for large sizes.
    pub iterations_large: usize,
    /// Warmup for large sizes.
    pub warmup_large: usize,
    /// Populate data at the sender and verify it at the receiver inside
    /// the timed region (Section VI-F / Figure 18).
    pub validate: bool,
    /// Window size for the bandwidth benchmarks (OMB default 64).
    pub window_size: usize,
}

impl Default for BenchOptions {
    fn default() -> Self {
        // OMB defaults are 10000/1000 iterations; the virtual-time
        // simulation converges with far fewer because there is no OS
        // noise — timing is exact.
        BenchOptions {
            min_size: 1,
            max_size: 4 << 20,
            iterations: 100,
            warmup: 10,
            large_threshold: 8 * 1024,
            iterations_large: 20,
            warmup_large: 2,
            validate: false,
            window_size: 64,
        }
    }
}

impl BenchOptions {
    /// Quick options for tests: tiny ranges and counts.
    pub fn quick() -> Self {
        BenchOptions {
            min_size: 1,
            max_size: 1 << 14,
            iterations: 10,
            warmup: 2,
            iterations_large: 4,
            warmup_large: 1,
            ..Default::default()
        }
    }

    /// The message sizes this run sweeps (powers of two, inclusive).
    pub fn sizes(&self) -> Vec<usize> {
        let mut v = Vec::new();
        let mut s = self.min_size.max(1);
        while s <= self.max_size {
            v.push(s);
            s *= 2;
        }
        v
    }

    /// (warmup, iterations) for a given message size.
    pub fn iters_for(&self, size: usize) -> (usize, usize) {
        if size >= self.large_threshold {
            (self.warmup_large, self.iterations_large)
        } else {
            (self.warmup, self.iterations)
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeValue {
    /// Message size in bytes.
    pub size: usize,
    /// Metric value: latency in µs or bandwidth in MB/s.
    pub value: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_powers_of_two_inclusive() {
        let o = BenchOptions {
            min_size: 4,
            max_size: 64,
            ..Default::default()
        };
        assert_eq!(o.sizes(), vec![4, 8, 16, 32, 64]);
    }

    #[test]
    fn iteration_scaling_switches_at_threshold() {
        let o = BenchOptions::default();
        assert_eq!(o.iters_for(1024), (o.warmup, o.iterations));
        assert_eq!(o.iters_for(8 * 1024), (o.warmup_large, o.iterations_large));
    }

    #[test]
    fn api_labels_match_figures() {
        assert_eq!(Api::Buffer.label(), "buffer");
        assert_eq!(Api::Arrays.label(), "arrays");
    }
}
