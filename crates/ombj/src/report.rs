//! OMB-style text reports.

use crate::options::SizeValue;
use crate::runner::Series;

/// Render one series the way OMB prints its tables.
pub fn render_series(s: &Series) -> String {
    let mut out = String::new();
    out.push_str(&format!("# OMB-J {} — {}\n", s.benchmark, s.label));
    out.push_str(&format!("{:>12}  {:>14}\n", "Size (bytes)", heading(s.unit)));
    for p in &s.points {
        out.push_str(&format!("{:>12}  {:>14.2}\n", p.size, p.value));
    }
    out
}

fn heading(unit: &str) -> String {
    match unit {
        "us" => "Latency (us)".to_string(),
        "MB/s" => "Bandwidth (MB/s)".to_string(),
        other => format!("Value ({other})"),
    }
}

/// Render several series side-by-side (one row per size), as the figures
/// compare them.
pub fn render_comparison(title: &str, series: &[&Series]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!("{:>12}", "Size"));
    for s in series {
        out.push_str(&format!("  {:>22}", s.label));
    }
    out.push('\n');
    let sizes: Vec<usize> = series
        .first()
        .map(|s| s.points.iter().map(|p| p.size).collect())
        .unwrap_or_default();
    for (row, size) in sizes.iter().enumerate() {
        out.push_str(&format!("{size:>12}"));
        for s in series {
            match s.points.get(row) {
                Some(p) if p.size == *size => out.push_str(&format!("  {:>22.2}", p.value)),
                _ => out.push_str(&format!("  {:>22}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Geometric-mean ratio of two series over their common sizes — how the
/// paper summarizes "X× better on average over all message sizes".
pub fn mean_ratio(numerator: &[SizeValue], denominator: &[SizeValue]) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for a in numerator {
        if let Some(b) = denominator.iter().find(|b| b.size == a.size) {
            if a.value > 0.0 && b.value > 0.0 {
                log_sum += (a.value / b.value).ln();
                n += 1;
            }
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(label: &str, vals: &[(usize, f64)]) -> Series {
        Series {
            label: label.into(),
            benchmark: "osu_latency",
            unit: "us",
            points: vals
                .iter()
                .map(|&(size, value)| SizeValue { size, value })
                .collect(),
        }
    }

    #[test]
    fn render_contains_all_points() {
        let s = series("MVAPICH2-J buffer", &[(1, 0.5), (2, 0.6)]);
        let r = render_series(&s);
        assert!(r.contains("osu_latency"));
        assert!(r.contains("0.50"));
        assert!(r.contains("0.60"));
    }

    #[test]
    fn comparison_renders_columns() {
        let a = series("A", &[(1, 1.0), (2, 2.0)]);
        let b = series("B", &[(1, 3.0), (2, 4.0)]);
        let r = render_comparison("Fig X", &[&a, &b]);
        assert!(r.lines().count() >= 4);
        assert!(r.contains("Fig X"));
        assert!(r.contains("3.00"));
    }

    #[test]
    fn mean_ratio_is_geometric() {
        let a = series("A", &[(1, 2.0), (2, 8.0)]).points;
        let b = series("B", &[(1, 1.0), (2, 2.0)]).points;
        // ratios 2 and 4 => geomean sqrt(8) ≈ 2.828
        let r = mean_ratio(&a, &b);
        assert!((r - 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mean_ratio_skips_missing_sizes() {
        let a = series("A", &[(1, 2.0), (4, 10.0)]).points;
        let b = series("B", &[(1, 1.0), (2, 5.0)]).points;
        assert_eq!(mean_ratio(&a, &b), 2.0);
    }
}
