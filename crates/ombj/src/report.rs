//! OMB-style text reports, plus machine-readable JSON/CSV renderings
//! (`ombj --format json|csv`).

use obs::json::JsonBuf;

use crate::options::SizeValue;
use crate::runner::Series;

/// Render one series the way OMB prints its tables. Non-blocking
/// collective series get the OSU overlap columns instead of the single
/// latency column.
pub fn render_series(s: &Series) -> String {
    let mut out = String::new();
    out.push_str(&format!("# OMB-J {} — {}\n", s.benchmark, s.label));
    if let Some(overlap) = &s.overlap {
        out.push_str(&format!(
            "{:>12}  {:>14}  {:>14}  {:>14}  {:>12}\n",
            "Size (bytes)", "Overall (us)", "Compute (us)", "Pure Comm (us)", "Overlap (%)"
        ));
        for p in overlap {
            out.push_str(&format!(
                "{:>12}  {:>14.2}  {:>14.2}  {:>14.2}  {:>12.2}\n",
                p.size, p.overall_us, p.compute_us, p.pure_us, p.overlap_pct
            ));
        }
        if let Some(line) = pool_line(s) {
            out.push_str(&line);
        }
        return out;
    }
    out.push_str(&format!(
        "{:>12}  {:>14}\n",
        "Size (bytes)",
        heading(s.unit)
    ));
    for p in &s.points {
        out.push_str(&format!("{:>12}  {:>14.2}\n", p.size, p.value));
    }
    if let Some(line) = pool_line(s) {
        out.push_str(&line);
    }
    out
}

/// Buffering-layer footer for series that went through the pool (the
/// arrays API); buffer-API series never touch it and get no footer.
fn pool_line(s: &Series) -> Option<String> {
    let st = s.pool?;
    if st.hits + st.misses == 0 {
        return None;
    }
    let hit_rate = 100.0 * st.hits as f64 / (st.hits + st.misses) as f64;
    Some(format!(
        "# pool (rank 0): hits={} misses={} releases={} hit-rate={hit_rate:.1}%\n",
        st.hits, st.misses, st.releases
    ))
}

/// One series as a JSON document.
pub fn render_series_json(s: &Series) -> String {
    render_series_json_with(s, None)
}

/// One series as a JSON document, optionally embedding the latency
/// attribution produced by `--analyze` as an `"attribution"` member.
pub fn render_series_json_with(s: &Series, analysis: Option<&obs::analyze::Analysis>) -> String {
    render_series_json_full(s, analysis, None)
}

/// One series as a JSON document with the optional `--analyze`
/// attribution and the optional `--perf` wall-clock self-profile. The
/// `sim_perf` member is *omitted* (never emitted empty) when profiling
/// is off, so byte-diff jobs over unprofiled output stay byte-identical.
pub fn render_series_json_full(
    s: &Series,
    analysis: Option<&obs::analyze::Analysis>,
    sim_perf: Option<&obs::wallprof::SimPerf>,
) -> String {
    let mut w = JsonBuf::new();
    series_obj_full(&mut w, s, analysis, sim_perf);
    w.newline();
    w.finish()
}

fn series_obj(w: &mut JsonBuf, s: &Series) {
    series_obj_with(w, s, None)
}

fn series_obj_with(w: &mut JsonBuf, s: &Series, analysis: Option<&obs::analyze::Analysis>) {
    series_obj_full(w, s, analysis, None)
}

fn series_obj_full(
    w: &mut JsonBuf,
    s: &Series,
    analysis: Option<&obs::analyze::Analysis>,
    sim_perf: Option<&obs::wallprof::SimPerf>,
) {
    w.begin_obj();
    w.key("benchmark");
    w.str_val(s.benchmark);
    w.key("label");
    w.str_val(&s.label);
    w.key("unit");
    w.str_val(s.unit);
    w.key("points");
    w.begin_arr();
    for p in &s.points {
        w.begin_obj();
        w.key("size");
        w.uint_val(p.size as u64);
        w.key("value");
        w.num_val(p.value);
        w.end_obj();
    }
    w.end_arr();
    if let Some(overlap) = &s.overlap {
        w.key("overlap");
        w.begin_arr();
        for p in overlap {
            w.begin_obj();
            w.key("size");
            w.uint_val(p.size as u64);
            w.key("overall_us");
            w.num_val(p.overall_us);
            w.key("compute_us");
            w.num_val(p.compute_us);
            w.key("pure_us");
            w.num_val(p.pure_us);
            w.key("overlap_pct");
            w.num_val(p.overlap_pct);
            w.end_obj();
        }
        w.end_arr();
    }
    if let Some(st) = s.pool {
        w.key("pool");
        w.begin_obj();
        w.key("hits");
        w.uint_val(st.hits);
        w.key("misses");
        w.uint_val(st.misses);
        w.key("releases");
        w.uint_val(st.releases);
        w.key("outstanding");
        w.uint_val(st.outstanding);
        w.key("pooled_bytes");
        w.uint_val(st.pooled_bytes as u64);
        w.end_obj();
    }
    if let Some(a) = analysis {
        w.key("attribution");
        w.raw_val(&a.json_fragment());
    }
    if let Some(p) = sim_perf {
        w.key("sim_perf");
        p.write_json(w);
    }
    w.end_obj();
}

/// The `--perf` CSV section: `sim_perf_metric,value` rows appended after
/// the series table. Callers only invoke this when profiling ran, so an
/// unprofiled CSV is byte-identical to pre-`--perf` output.
pub fn render_sim_perf_csv(p: &obs::wallprof::SimPerf) -> String {
    let mut out = String::new();
    out.push_str("sim_perf_metric,value\n");
    out.push_str(&format!("ranks,{}\n", p.ranks.len()));
    out.push_str(&format!(
        "wall_ms,{}\n",
        obs::json::num(p.wall_ns as f64 / 1e6)
    ));
    out.push_str(&format!(
        "virtual_ms,{}\n",
        obs::json::num(p.virtual_ns / 1e6)
    ));
    out.push_str(&format!("events,{}\n", p.events()));
    out.push_str(&format!(
        "events_per_sec,{}\n",
        obs::json::num(p.events_per_sec())
    ));
    out.push_str(&format!(
        "vns_per_ws,{}\n",
        obs::json::num(p.vns_per_wall_sec())
    ));
    out.push_str(&format!(
        "alloc_per_msg,{}\n",
        obs::json::num(p.allocs_per_msg())
    ));
    for (i, name) in obs::wallprof::SUBSYSTEM_NAMES.iter().enumerate() {
        out.push_str(&format!(
            "share_{name}_pct,{}\n",
            obs::json::num(p.subsystem_share_pct(i))
        ));
    }
    out
}

/// One series as CSV: `size,value` with a header row; overlap series get
/// the full breakdown columns.
pub fn render_series_csv(s: &Series) -> String {
    let mut out = String::new();
    if let Some(overlap) = &s.overlap {
        out.push_str("size,overall_us,compute_us,pure_us,overlap_pct\n");
        for p in overlap {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                p.size,
                obs::json::num(p.overall_us),
                obs::json::num(p.compute_us),
                obs::json::num(p.pure_us),
                obs::json::num(p.overlap_pct)
            ));
        }
        return out;
    }
    out.push_str(&format!(
        "size,{}\n",
        csv_field(&format!("{} ({})", s.label, s.unit))
    ));
    for p in &s.points {
        out.push_str(&format!("{},{}\n", p.size, obs::json::num(p.value)));
    }
    out
}

/// Several series as one JSON document (the `--compare` shape).
pub fn render_comparison_json(title: &str, series: &[&Series]) -> String {
    let mut w = JsonBuf::new();
    w.begin_obj();
    w.key("title");
    w.str_val(title);
    w.key("series");
    w.begin_arr();
    for s in series {
        w.newline();
        series_obj(&mut w, s);
    }
    w.newline();
    w.end_arr();
    w.end_obj();
    w.newline();
    w.finish()
}

/// Several series as CSV: one row per size, one column per series.
pub fn render_comparison_csv(series: &[&Series]) -> String {
    let mut out = String::new();
    out.push_str("size");
    for s in series {
        out.push(',');
        out.push_str(&csv_field(&s.label));
    }
    out.push('\n');
    let sizes: Vec<usize> = series
        .first()
        .map(|s| s.points.iter().map(|p| p.size).collect())
        .unwrap_or_default();
    for (row, size) in sizes.iter().enumerate() {
        out.push_str(&format!("{size}"));
        for s in series {
            out.push(',');
            match s.points.get(row) {
                Some(p) if p.size == *size => out.push_str(&obs::json::num(p.value)),
                _ => {}
            }
        }
        out.push('\n');
    }
    out
}

/// Quote a CSV field if it contains separators.
fn csv_field(v: &str) -> String {
    if v.contains([',', '"', '\n']) {
        format!("\"{}\"", v.replace('"', "\"\""))
    } else {
        v.to_string()
    }
}

fn heading(unit: &str) -> String {
    match unit {
        "us" => "Latency (us)".to_string(),
        "MB/s" => "Bandwidth (MB/s)".to_string(),
        other => format!("Value ({other})"),
    }
}

/// Render several series side-by-side (one row per size), as the figures
/// compare them.
pub fn render_comparison(title: &str, series: &[&Series]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!("{:>12}", "Size"));
    for s in series {
        out.push_str(&format!("  {:>22}", s.label));
    }
    out.push('\n');
    let sizes: Vec<usize> = series
        .first()
        .map(|s| s.points.iter().map(|p| p.size).collect())
        .unwrap_or_default();
    for (row, size) in sizes.iter().enumerate() {
        out.push_str(&format!("{size:>12}"));
        for s in series {
            match s.points.get(row) {
                Some(p) if p.size == *size => out.push_str(&format!("  {:>22.2}", p.value)),
                _ => out.push_str(&format!("  {:>22}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Geometric-mean ratio of two series over their common sizes — how the
/// paper summarizes "X× better on average over all message sizes".
pub fn mean_ratio(numerator: &[SizeValue], denominator: &[SizeValue]) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for a in numerator {
        if let Some(b) = denominator.iter().find(|b| b.size == a.size) {
            if a.value > 0.0 && b.value > 0.0 {
                log_sum += (a.value / b.value).ln();
                n += 1;
            }
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(label: &str, vals: &[(usize, f64)]) -> Series {
        Series {
            label: label.into(),
            benchmark: "osu_latency",
            unit: "us",
            points: vals
                .iter()
                .map(|&(size, value)| SizeValue { size, value })
                .collect(),
            pool: None,
            overlap: None,
        }
    }

    #[test]
    fn render_contains_all_points() {
        let s = series("MVAPICH2-J buffer", &[(1, 0.5), (2, 0.6)]);
        let r = render_series(&s);
        assert!(r.contains("osu_latency"));
        assert!(r.contains("0.50"));
        assert!(r.contains("0.60"));
    }

    #[test]
    fn comparison_renders_columns() {
        let a = series("A", &[(1, 1.0), (2, 2.0)]);
        let b = series("B", &[(1, 3.0), (2, 4.0)]);
        let r = render_comparison("Fig X", &[&a, &b]);
        assert!(r.lines().count() >= 4);
        assert!(r.contains("Fig X"));
        assert!(r.contains("3.00"));
    }

    #[test]
    fn mean_ratio_is_geometric() {
        let a = series("A", &[(1, 2.0), (2, 8.0)]).points;
        let b = series("B", &[(1, 1.0), (2, 2.0)]).points;
        // ratios 2 and 4 => geomean sqrt(8) ≈ 2.828
        let r = mean_ratio(&a, &b);
        assert!((r - 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn pool_footer_appears_only_when_the_pool_was_used() {
        let mut s = series("MVAPICH2-J arrays", &[(1, 0.5)]);
        assert!(!render_series(&s).contains("pool"));
        s.pool = Some(mpjbuf::PoolStats {
            hits: 3,
            misses: 1,
            releases: 4,
            outstanding: 0,
            pooled_bytes: 1024,
            fallback_allocs: 0,
        });
        let r = render_series(&s);
        assert!(
            r.contains("hits=3 misses=1 releases=4 hit-rate=75.0%"),
            "{r}"
        );
    }

    #[test]
    fn json_rendering_is_valid_and_complete() {
        let mut s = series("A,\"q\"", &[(1, 0.5), (2, 1.25)]);
        s.pool = Some(mpjbuf::PoolStats {
            hits: 1,
            ..Default::default()
        });
        let j = render_series_json(&s);
        assert!(j.contains(r#""label":"A,\"q\"""#), "{j}");
        assert!(j.contains(r#"{"size":2,"value":1.25}"#), "{j}");
        assert!(j.contains(r#""pool":{"hits":1"#), "{j}");
        let cmp = render_comparison_json("t", &[&s, &s]);
        assert_eq!(cmp.matches(r#""benchmark""#).count(), 2);
    }

    #[test]
    fn csv_rendering_quotes_and_aligns() {
        let a = series("A,messy", &[(1, 1.0), (2, 2.0)]);
        let b = series("B", &[(1, 3.0), (2, 4.0)]);
        let csv = render_comparison_csv(&[&a, &b]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("size,\"A,messy\",B"));
        assert_eq!(lines.next(), Some("1,1,3"));
        assert_eq!(lines.next(), Some("2,2,4"));
        let single = render_series_csv(&a);
        assert!(
            single.starts_with("size,\"A,messy (us)\"\n1,1\n"),
            "{single}"
        );
    }

    #[test]
    fn mean_ratio_skips_missing_sizes() {
        let a = series("A", &[(1, 2.0), (4, 10.0)]).points;
        let b = series("B", &[(1, 1.0), (2, 5.0)]).points;
        assert_eq!(mean_ratio(&a, &b), 2.0);
    }
}
