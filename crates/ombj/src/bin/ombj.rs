//! OMB-J command-line driver.
//!
//! ```text
//! ombj <benchmark> [options]
//! ombj --benchmark <benchmark> [options]
//!
//! benchmarks:
//!   latency | bw | bibw | put_latency | get_bw | put_bibw | bcast |
//!   reduce | allreduce | allgather | allgatherv | gather | gatherv |
//!   scatter | scatterv | alltoall | alltoallv | barrier | ibcast |
//!   iallreduce
//!
//! options:
//!   --lib mvapich2j|openmpij    library under test (default mvapich2j)
//!   --engine threaded|event     cluster engine: one OS thread per rank, or the
//!                               cooperative discrete-event scheduler (same
//!                               virtual-time results; `event` scales to 1k+ ranks)
//!   --overlap | --no-overlap    non-blocking collectives only: put the
//!                               simulated compute between post and wait
//!                               (default) or after the wait (control)
//!   --api buffer|arrays         user-buffer kind   (default buffer)
//!   --nodes N --ppn P           topology           (default 1x2; 4x16 for collectives)
//!   --min B --max B             message size range
//!   --iters N --warmup N        iteration counts (small messages)
//!   --validate                  populate + verify inside the timed loop
//!   --compare                   run all four library×API series side by side
//!   --format text|json|csv      output format (default text)
//!   --trace-out PATH            record a virtual-time Chrome trace to PATH
//!   --analyze                   trace the run and append the latency attribution
//!   --perf                      profile the simulator itself (wall clock) and
//!                               append the sim-perf footer / `sim_perf` block
//!   --pvar-dump                 print the merged pvar snapshot after the table
//!   --telemetry                 sample pvars on the virtual clock and append the
//!                               timeline (text/csv) or raw series (json)
//!   --telemetry-interval NS     sampling interval in virtual ns (default 10000)
//!   --telemetry-out PATH        write the telemetry series JSON to PATH
//!                               (implies --telemetry; feed to obs-analyze --timeline)
//!   --flight                    keep an always-on bounded flight ring per rank
//!   --incident-out PATH         write the fault-triggered incident bundle to PATH
//!                               (implies --flight; feed to obs-analyze --incident)
//!   --faults SPEC               seeded fault plan, e.g. drop=0.02,corrupt=0.001,jitter=200
//!                               (crash=R@NS plans need --flight or --incident-out)
//!   --fault-seed N              seed for the fault plan (default 0)
//! ```

use ombj::{run, run_with_obs, Api, BenchOptions, Benchmark, CollOp, Library, NbOp, RunSpec};
use simfabric::{EngineMode, FaultPlan, Topology};

fn usage() -> ! {
    eprintln!(
        "usage: ombj <latency|bw|bibw|put_latency|get_bw|put_bibw|bcast|reduce|allreduce|allgather|allgatherv|gather|gatherv|scatter|scatterv|alltoall|alltoallv|barrier|ibcast|iallreduce> \
         [--lib mvapich2j|openmpij] [--engine threaded|event] [--api buffer|arrays] \
         [--nodes N] [--ppn P] \
         [--min B] [--max B] [--iters N] [--warmup N] [--validate] [--compare] \
         [--overlap|--no-overlap] [--format text|json|csv] [--trace-out PATH] \
         [--analyze] [--perf] [--pvar-dump] [--telemetry] [--telemetry-interval NS] \
         [--telemetry-out PATH] [--flight] [--incident-out PATH] \
         [--faults SPEC] [--fault-seed N] \
         (the benchmark may also be passed as --benchmark NAME)"
    );
    std::process::exit(2)
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Csv,
}

fn parse_benchmark(name: &str) -> Benchmark {
    match name {
        "ibcast" => Benchmark::NonBlocking {
            op: NbOp::Ibcast,
            overlap: true,
        },
        "iallreduce" => Benchmark::NonBlocking {
            op: NbOp::Iallreduce,
            overlap: true,
        },
        "latency" => Benchmark::Latency,
        "bw" => Benchmark::Bandwidth,
        "bibw" => Benchmark::BiBandwidth,
        "put_latency" => Benchmark::PutLatency,
        "get_bw" => Benchmark::GetBandwidth,
        "put_bibw" => Benchmark::PutBiBandwidth,
        "bcast" => Benchmark::Collective(CollOp::Bcast),
        "reduce" => Benchmark::Collective(CollOp::Reduce),
        "allreduce" => Benchmark::Collective(CollOp::Allreduce),
        "allgather" => Benchmark::Collective(CollOp::Allgather),
        "allgatherv" => Benchmark::Collective(CollOp::Allgatherv),
        "gather" => Benchmark::Collective(CollOp::Gather),
        "gatherv" => Benchmark::Collective(CollOp::Gatherv),
        "scatter" => Benchmark::Collective(CollOp::Scatter),
        "scatterv" => Benchmark::Collective(CollOp::Scatterv),
        "alltoall" => Benchmark::Collective(CollOp::Alltoall),
        "alltoallv" => Benchmark::Collective(CollOp::Alltoallv),
        "barrier" => Benchmark::Collective(CollOp::Barrier),
        _ => usage(),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    // The benchmark is positional, or named via `--benchmark NAME`.
    let bench_name = if !args[0].starts_with("--") {
        args.remove(0)
    } else {
        let pos = args
            .iter()
            .position(|a| a == "--benchmark")
            .unwrap_or_else(|| usage());
        if pos + 1 >= args.len() {
            usage();
        }
        let name = args.remove(pos + 1);
        args.remove(pos);
        name
    };
    let mut benchmark = parse_benchmark(&bench_name);
    let is_collective = matches!(
        benchmark,
        Benchmark::Collective(_) | Benchmark::NonBlocking { .. }
    );

    let mut library = Library::Mvapich2J;
    let mut engine = EngineMode::Threaded;
    let mut api = Api::Buffer;
    let (mut nodes, mut ppn) = if is_collective { (4, 16) } else { (1, 2) };
    let mut opts = BenchOptions::default();
    if is_collective {
        // Collective sweeps on 64 ranks: trim the default range a bit.
        opts.max_size = 1 << 20;
        opts.iterations = 40;
        opts.iterations_large = 8;
    }
    let mut compare = false;
    let mut format = Format::Text;
    let mut trace_out: Option<String> = None;
    let mut analyze = false;
    let mut perf = false;
    let mut pvar_dump = false;
    let mut telemetry = false;
    let mut telemetry_interval = obs::ObsOptions::DEFAULT_TELEMETRY_INTERVAL_NS;
    let mut telemetry_out: Option<String> = None;
    let mut flight = false;
    let mut incident_out: Option<String> = None;
    let mut faults: Option<FaultPlan> = None;
    let mut fault_seed: Option<u64> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let val = |it: &mut std::slice::Iter<String>| -> String {
            it.next().cloned().unwrap_or_else(|| usage())
        };
        match a.as_str() {
            "--lib" => {
                library = match val(&mut it).as_str() {
                    "mvapich2j" => Library::Mvapich2J,
                    "openmpij" => Library::OpenMpiJ,
                    _ => usage(),
                }
            }
            "--engine" => {
                engine = EngineMode::parse(&val(&mut it)).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                })
            }
            "--api" => {
                api = match val(&mut it).as_str() {
                    "buffer" => Api::Buffer,
                    "arrays" => Api::Arrays,
                    _ => usage(),
                }
            }
            "--nodes" => nodes = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--ppn" => ppn = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--min" => opts.min_size = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--max" => opts.max_size = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--iters" => opts.iterations = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--warmup" => opts.warmup = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--validate" => opts.validate = true,
            "--compare" => compare = true,
            "--overlap" | "--no-overlap" => match benchmark {
                Benchmark::NonBlocking { op, .. } => {
                    benchmark = Benchmark::NonBlocking {
                        op,
                        overlap: a == "--overlap",
                    }
                }
                _ => {
                    eprintln!("error: {a} only applies to ibcast/iallreduce");
                    std::process::exit(2);
                }
            },
            "--format" => {
                format = match val(&mut it).as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    _ => usage(),
                }
            }
            "--trace-out" => trace_out = Some(val(&mut it)),
            "--analyze" => analyze = true,
            "--perf" => perf = true,
            "--pvar-dump" => pvar_dump = true,
            "--telemetry" => telemetry = true,
            "--telemetry-interval" => {
                telemetry = true;
                telemetry_interval = val(&mut it).parse().unwrap_or_else(|_| usage());
            }
            "--telemetry-out" => {
                telemetry = true;
                telemetry_out = Some(val(&mut it));
            }
            "--flight" => flight = true,
            "--incident-out" => {
                flight = true;
                incident_out = Some(val(&mut it));
            }
            "--faults" => {
                faults = Some(FaultPlan::parse(&val(&mut it)).unwrap_or_else(|e| {
                    eprintln!("error: bad --faults spec: {e}");
                    std::process::exit(2);
                }))
            }
            "--fault-seed" => fault_seed = Some(val(&mut it).parse().unwrap_or_else(|_| usage())),
            _ => usage(),
        }
    }
    if let Some(seed) = fault_seed {
        faults.get_or_insert_with(|| FaultPlan::new(0)).seed = seed;
    }
    let crashy = faults.is_some_and(|p| p.crash.is_some());
    if crashy && !flight {
        // Without a flight ring there is nothing to drain into an
        // incident bundle, so a crash plan would just abort the job.
        eprintln!(
            "error: --faults crash=R@... aborts the benchmark job; add --flight \
             (or --incident-out PATH) to capture an incident bundle instead"
        );
        std::process::exit(2);
    }
    if compare && (trace_out.is_some() || analyze || pvar_dump || perf || telemetry || flight) {
        eprintln!(
            "--trace-out/--analyze/--perf/--pvar-dump/--telemetry/--flight apply to a \
             single run; drop --compare"
        );
        std::process::exit(2);
    }

    let topo = Topology::new(nodes, ppn);
    if compare {
        let mut series = Vec::new();
        for lib in [Library::Mvapich2J, Library::OpenMpiJ] {
            for api in [Api::Buffer, Api::Arrays] {
                if let Some(s) = run(RunSpec {
                    library: lib,
                    benchmark,
                    api,
                    topo,
                    opts,
                    faults,
                    engine,
                }) {
                    series.push(s);
                } else {
                    eprintln!(
                        "note: {} {} unsupported for {} — series omitted (as in the paper)",
                        lib.label(),
                        api.label(),
                        benchmark.name()
                    );
                }
            }
        }
        let refs: Vec<&ombj::Series> = series.iter().collect();
        let title = format!(
            "{} on {}x{} ({})",
            benchmark.name(),
            nodes,
            ppn,
            benchmark.unit()
        );
        match format {
            Format::Text => print!("{}", ombj::report::render_comparison(&title, &refs)),
            Format::Json => print!("{}", ombj::report::render_comparison_json(&title, &refs)),
            Format::Csv => print!("{}", ombj::report::render_comparison_csv(&refs)),
        }
    } else {
        let spec = RunSpec {
            library,
            benchmark,
            api,
            topo,
            opts,
            faults,
            engine,
        };
        let obs_opts = obs::ObsOptions {
            tracing: trace_out.is_some() || analyze,
            profiling: perf,
            flight,
            telemetry_interval_ns: if telemetry { telemetry_interval } else { 0.0 },
            ..Default::default()
        };
        let (series, report) = run_with_obs(spec, obs_opts);
        let analysis = analyze.then(|| obs::analyze::analyze(&report));
        match series {
            Some(s) => match format {
                Format::Text => {
                    print!("{}", ombj::report::render_series(&s));
                    if let Some(a) = &analysis {
                        print!("{}", a.render_text());
                    }
                    if let Some(p) = &report.sim_perf {
                        print!("{}", p.render_text());
                    }
                }
                Format::Json => print!(
                    "{}",
                    ombj::report::render_series_json_full(
                        &s,
                        analysis.as_ref(),
                        report.sim_perf.as_ref()
                    )
                ),
                Format::Csv => {
                    print!("{}", ombj::report::render_series_csv(&s));
                    if let Some(a) = &analysis {
                        print!("{}", a.render_csv());
                    }
                    if let Some(p) = &report.sim_perf {
                        print!("{}", ombj::report::render_sim_perf_csv(p));
                    }
                }
            },
            None if crashy => {
                // The fault plan killed the job on purpose; the incident
                // bundle below is the run's real product.
                eprintln!(
                    "note: job aborted by the planned crash — no benchmark series \
                     (incident artifacts follow)"
                );
            }
            None => {
                eprintln!(
                    "{} does not support {} with the {} API",
                    library.label(),
                    benchmark.name(),
                    api.label()
                );
                std::process::exit(1);
            }
        }
        if let Some(path) = trace_out {
            if let Err(e) = std::fs::write(&path, report.chrome_trace_json()) {
                eprintln!("error: writing trace to {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote virtual-time trace to {path} (open in Perfetto / chrome://tracing)");
        }
        if telemetry {
            let doc = report.telemetry_json().unwrap_or_else(|| {
                eprintln!("error: telemetry was enabled but no rank sampled");
                std::process::exit(1);
            });
            if let Some(path) = &telemetry_out {
                if let Err(e) = std::fs::write(path, &doc) {
                    eprintln!("error: writing telemetry to {path}: {e}");
                    std::process::exit(1);
                }
                eprintln!("wrote telemetry series to {path} (feed to obs-analyze --timeline)");
            } else {
                // No file requested: append the timeline straight to the
                // report, via the same parser obs-analyze uses.
                match format {
                    Format::Text => match obs::analyze::timeline_from_json(&doc) {
                        Ok(tl) => print!("{}", tl.render_text()),
                        Err(e) => eprintln!("error: rendering timeline: {e}"),
                    },
                    Format::Csv => match obs::analyze::timeline_from_json(&doc) {
                        Ok(tl) => print!("{}", tl.render_csv()),
                        Err(e) => eprintln!("error: rendering timeline: {e}"),
                    },
                    Format::Json => print!("{doc}"),
                }
            }
        }
        if let Some(path) = &incident_out {
            match report.incident_bundle_json() {
                Some(bundle) => {
                    if let Err(e) = std::fs::write(path, &bundle) {
                        eprintln!("error: writing incident bundle to {path}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("wrote incident bundle to {path} (feed to obs-analyze --incident)");
                }
                None => eprintln!("note: run completed without incident — no bundle written"),
            }
        }
        if pvar_dump {
            print!("{}", report.pvar_dump());
        }
    }
}
