//! Point-to-point benchmarks: `osu_latency`, `osu_bw`, `osu_bibw`
//! (Section V / Algorithm 1), with optional data validation
//! (Section VI-F).

use mvapich2j::datatype::BYTE;
use mvapich2j::{BindResult, DirectBuffer, Env, JArray};

use crate::data::{fill_array, fill_direct, validate_array, validate_direct};
use crate::options::{Api, BenchOptions, SizeValue};

const LAT_TAG: i32 = 1;
const BW_TAG: i32 = 2;
const ACK_TAG: i32 = 3;

/// User-side buffers for one benchmark run.
enum Bufs {
    Buffer {
        send: DirectBuffer,
        recv: DirectBuffer,
    },
    Arrays {
        send: JArray<i8>,
        recv: JArray<i8>,
    },
}

fn alloc_bufs(env: &mut Env, api: Api, max: usize) -> BindResult<Bufs> {
    Ok(match api {
        Api::Buffer => Bufs::Buffer {
            send: env.new_direct(max),
            recv: env.new_direct(max),
        },
        Api::Arrays => Bufs::Arrays {
            send: env.new_array::<i8>(max)?,
            recv: env.new_array::<i8>(max)?,
        },
    })
}

/// `osu_latency`: ping-pong between ranks 0 and 1; reports the one-way
/// latency in µs per message size (measured on rank 0).
pub fn latency(env: &mut Env, opts: &BenchOptions) -> BindResult<Vec<SizeValue>> {
    lat_impl(env, opts, Api::Buffer)
}

/// `osu_latency` over Java arrays.
pub fn latency_arrays(env: &mut Env, opts: &BenchOptions) -> BindResult<Vec<SizeValue>> {
    lat_impl(env, opts, Api::Arrays)
}

/// Latency with an explicit API choice.
pub fn lat_impl(env: &mut Env, opts: &BenchOptions, api: Api) -> BindResult<Vec<SizeValue>> {
    assert!(env.size() >= 2, "osu_latency needs two ranks");
    let w = env.world();
    let me = env.rank();
    let bufs = alloc_bufs(env, api, opts.max_size)?;
    let mut out = Vec::new();

    for size in opts.sizes() {
        let (warmup, iters) = opts.iters_for(size);
        env.barrier(w)?;
        obs::instant(
            "bench.size",
            "bench",
            env.now(),
            vec![("bytes", obs::ArgValue::U64(size as u64))],
        );
        let mut elapsed = 0.0f64;
        for i in 0..warmup + iters {
            let t0 = env.now();
            match (me, &bufs) {
                (0, Bufs::Buffer { send, recv }) => {
                    if opts.validate {
                        fill_direct(env, *send, size, i);
                    }
                    env.send_buffer(*send, size as i32, &BYTE, 1, LAT_TAG, w)?;
                    env.recv_buffer(*recv, size as i32, &BYTE, 1, LAT_TAG, w)?;
                    if opts.validate {
                        assert_eq!(validate_direct(env, *recv, size, i), 0, "corrupt echo");
                    }
                }
                (0, Bufs::Arrays { send, recv }) => {
                    if opts.validate {
                        fill_array(env, *send, size, i);
                    }
                    env.send_array(*send, size as i32, 1, LAT_TAG, w)?;
                    env.recv_array(*recv, size as i32, 1, LAT_TAG, w)?;
                    if opts.validate {
                        assert_eq!(validate_array(env, *recv, size, i), 0, "corrupt echo");
                    }
                }
                (1, Bufs::Buffer { send, recv }) => {
                    env.recv_buffer(*recv, size as i32, &BYTE, 0, LAT_TAG, w)?;
                    if opts.validate {
                        assert_eq!(validate_direct(env, *recv, size, i), 0, "corrupt message");
                        fill_direct(env, *send, size, i);
                        env.send_buffer(*send, size as i32, &BYTE, 0, LAT_TAG, w)?;
                    } else {
                        env.send_buffer(*recv, size as i32, &BYTE, 0, LAT_TAG, w)?;
                    }
                }
                (1, Bufs::Arrays { send, recv }) => {
                    env.recv_array(*recv, size as i32, 0, LAT_TAG, w)?;
                    if opts.validate {
                        assert_eq!(validate_array(env, *recv, size, i), 0, "corrupt message");
                        fill_array(env, *send, size, i);
                        env.send_array(*send, size as i32, 0, LAT_TAG, w)?;
                    } else {
                        env.send_array(*recv, size as i32, 0, LAT_TAG, w)?;
                    }
                }
                _ => {} // ranks > 1 idle
            }
            if me == 0 && i >= warmup {
                elapsed += (env.now() - t0).as_nanos();
            }
        }
        if me == 0 {
            out.push(SizeValue {
                size,
                value: elapsed / (2.0 * iters as f64) / 1_000.0, // one-way µs
            });
        }
        env.barrier(w)?;
    }
    Ok(out)
}

/// `osu_bw`: windowed unidirectional bandwidth in MB/s (rank 0 reports).
pub fn bandwidth(env: &mut Env, opts: &BenchOptions, api: Api) -> BindResult<Vec<SizeValue>> {
    bw_impl(env, opts, api, false)
}

/// `osu_bibw`: bidirectional bandwidth in MB/s.
pub fn bibandwidth(env: &mut Env, opts: &BenchOptions, api: Api) -> BindResult<Vec<SizeValue>> {
    bw_impl(env, opts, api, true)
}

fn bw_impl(
    env: &mut Env,
    opts: &BenchOptions,
    api: Api,
    bidir: bool,
) -> BindResult<Vec<SizeValue>> {
    assert!(env.size() >= 2, "osu_bw needs two ranks");
    let w = env.world();
    let me = env.rank();
    let window = opts.window_size;
    let bufs = alloc_bufs(env, api, opts.max_size)?;
    let ack = alloc_bufs(env, api, 4)?;
    let mut out = Vec::new();

    // Probe the non-blocking path once so unsupported API combinations
    // (Open MPI-J with arrays) fail fast, before any traffic.
    if let Bufs::Arrays { send, .. } = &bufs {
        if me == 0 {
            let probe = env.isend_array(*send, 0, 1, ACK_TAG, w)?;
            env.wait(probe)?;
        } else if me == 1 {
            let probe = env.irecv_array(*send, 0, 0, ACK_TAG, w)?;
            env.wait(probe)?;
        }
    }

    for size in opts.sizes() {
        let (warmup, iters) = opts.iters_for(size);
        env.barrier(w)?;
        obs::instant(
            "bench.size",
            "bench",
            env.now(),
            vec![("bytes", obs::ArgValue::U64(size as u64))],
        );
        let mut t_start = env.now();
        for i in 0..warmup + iters {
            if i == warmup {
                env.barrier(w)?;
                t_start = env.now();
            }
            if me > 1 {
                continue; // extra ranks sit out pt2pt benchmarks
            }
            let sender_turn = me == 0 || (bidir && me == 1);
            let receiver_turn = me == 1 || (bidir && me == 0);
            let mut reqs = Vec::with_capacity(2 * window);
            if receiver_turn {
                for _ in 0..window {
                    match &bufs {
                        Bufs::Buffer { recv, .. } => reqs.push(env.irecv_buffer(
                            *recv,
                            size as i32,
                            &BYTE,
                            (1 - me) as i32,
                            BW_TAG,
                            w,
                        )?),
                        Bufs::Arrays { recv, .. } => reqs.push(env.irecv_array(
                            *recv,
                            size as i32,
                            (1 - me) as i32,
                            BW_TAG,
                            w,
                        )?),
                    }
                }
            }
            if sender_turn {
                for _ in 0..window {
                    match &bufs {
                        Bufs::Buffer { send, .. } => reqs.push(env.isend_buffer(
                            *send,
                            size as i32,
                            &BYTE,
                            1 - me,
                            BW_TAG,
                            w,
                        )?),
                        Bufs::Arrays { send, .. } => {
                            reqs.push(env.isend_array(*send, size as i32, 1 - me, BW_TAG, w)?)
                        }
                    }
                }
            }
            env.waitall(reqs)?;
            // Window-close ack: receiver(s) tell the sender the window
            // fully arrived.
            if bidir {
                // Symmetric: both ack.
                match &ack {
                    Bufs::Buffer { send, recv } => {
                        env.send_buffer(*send, 4, &BYTE, 1 - me, ACK_TAG, w)?;
                        env.recv_buffer(*recv, 4, &BYTE, (1 - me) as i32, ACK_TAG, w)?;
                    }
                    Bufs::Arrays { send, recv } => {
                        env.send_array(*send, 4, 1 - me, ACK_TAG, w)?;
                        env.recv_array(*recv, 4, (1 - me) as i32, ACK_TAG, w)?;
                    }
                }
            } else if me == 1 {
                match &ack {
                    Bufs::Buffer { send, .. } => env.send_buffer(*send, 4, &BYTE, 0, ACK_TAG, w)?,
                    Bufs::Arrays { send, .. } => env.send_array(*send, 4, 0, ACK_TAG, w)?,
                }
            } else if me == 0 {
                match &ack {
                    Bufs::Buffer { recv, .. } => {
                        env.recv_buffer(*recv, 4, &BYTE, 1, ACK_TAG, w)?;
                    }
                    Bufs::Arrays { recv, .. } => {
                        env.recv_array(*recv, 4, 1, ACK_TAG, w)?;
                    }
                }
            }
        }
        if me == 0 {
            let elapsed_s = (env.now() - t_start).as_secs();
            let dirs = if bidir { 2.0 } else { 1.0 };
            let bytes = dirs * (size * window * iters) as f64;
            out.push(SizeValue {
                size,
                value: bytes / elapsed_s / 1e6, // MB/s
            });
        }
        env.barrier(w)?;
    }
    Ok(out)
}
