//! Fault-triggered incident bundles.
//!
//! When a fault surfaces on a rank — its own crash time passing, a peer
//! exhausting retransmits, the receive watchdog naming a silent peer —
//! the engine drops an *incident mark* into that rank's recorder
//! ([`crate::incident_mark`]). The first mark wins per rank (it is the
//! point where that rank's view of the run diverged from the plan;
//! everything after is fallout). When the job harness collects the rank
//! reports, any mark present turns the report into an incident bundle:
//! one JSON document holding, per rank, the mark, the drained flight
//! window (the last-N trace events, chrome-shaped so existing tooling can
//! read them), the cumulative pvar snapshot, and the telemetry series if
//! sampling was on. `obs-analyze --incident` reconstructs the
//! last-window picture from the bundle alone.
//!
//! Determinism: every field is virtual-time data — marks carry virtual
//! timestamps, windows hold virtual-time events, pvars and series are
//! order-independent — so the same seeded crash run produces a
//! byte-identical bundle every time, and a test enforces it.

use crate::json::JsonBuf;
use crate::{telemetry, JobReport};

/// Counts incident marks dropped on a rank (normally 0 or 1; a mark
/// arriving after the first still counts here but does not replace it).
pub const MARKS_PVAR: &str = "incident.marks";

/// The first fault a rank observed.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentMark {
    /// Virtual time at which the fault surfaced on the observing rank.
    pub t_ns: f64,
    /// Fault class: `"rank_failed"`, `"transport_failure"`, `"watchdog"`.
    pub kind: &'static str,
    /// The rank the engine blames (for a self-crash, the observer).
    pub failed_rank: usize,
    /// Free-form context (retry counts, the call that failed, …).
    pub detail: String,
}

fn write_mark(w: &mut JsonBuf, rank: usize, m: &IncidentMark) {
    w.begin_obj();
    w.key("t_ns");
    w.num_val(m.t_ns);
    w.key("kind");
    w.str_val(m.kind);
    w.key("rank");
    w.uint_val(rank as u64);
    w.key("failed_rank");
    w.uint_val(m.failed_rank as u64);
    w.key("detail");
    w.str_val(&m.detail);
    w.end_obj();
}

/// Serialize the job's incident bundle, or `None` when no rank recorded
/// a mark (no fault fired — nothing to bundle).
pub fn bundle_json(report: &JobReport) -> Option<String> {
    // Reason = the earliest mark anywhere, ties broken by observer rank:
    // the first rank to see the fault names it for the whole job.
    let (reason_rank, reason) = report
        .ranks
        .iter()
        .filter_map(|r| r.incident.as_ref().map(|m| (r.rank, m)))
        .min_by(|(ra, a), (rb, b)| {
            a.t_ns
                .partial_cmp(&b.t_ns)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ra.cmp(rb))
        })?;

    let mut w = JsonBuf::new();
    w.begin_obj();
    w.key("schema");
    w.uint_val(1);
    w.key("kind");
    w.str_val("incident");
    w.key("reason");
    write_mark(&mut w, reason_rank, reason);
    w.key("ranks");
    w.begin_arr();
    for r in &report.ranks {
        w.newline();
        w.begin_obj();
        w.key("rank");
        w.uint_val(r.rank as u64);
        w.key("label");
        w.str_val(&r.label);
        w.key("incident");
        match &r.incident {
            Some(m) => write_mark(&mut w, r.rank, m),
            None => w.raw_val("null"),
        }
        w.key("flight");
        match &r.flight {
            Some(fw) => {
                w.begin_obj();
                w.key("dropped");
                w.uint_val(fw.dropped);
                w.key("events");
                w.begin_arr();
                for ev in &fw.events {
                    w.newline();
                    crate::write_chrome_event(&mut w, r.rank as u64, ev);
                }
                w.newline();
                w.end_arr();
                w.end_obj();
            }
            None => w.raw_val("null"),
        }
        w.key("pvars");
        r.pvars.write_json(&mut w);
        w.key("telemetry");
        match &r.telemetry {
            Some(series) => telemetry::write_rank_series(&mut w, series),
            None => w.raw_val("null"),
        }
        w.end_obj();
    }
    w.newline();
    w.end_arr();
    w.end_obj();
    w.newline();
    Some(w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::{FlightWindow, PvarSet, RankReport, TraceEvent};

    fn rank(rank: usize, incident: Option<IncidentMark>, last_ts: f64) -> RankReport {
        RankReport {
            rank,
            label: format!("rank {rank}"),
            pvars: PvarSet::new(),
            events: vec![],
            dropped_events: 0,
            flight: Some(FlightWindow {
                events: vec![TraceEvent::instant(
                    "e",
                    "t",
                    vtime::VTime::from_nanos(last_ts),
                    vec![],
                )],
                dropped: 2,
            }),
            telemetry: None,
            incident,
            wall: None,
        }
    }

    #[test]
    fn no_marks_means_no_bundle() {
        let rep = JobReport {
            ranks: vec![rank(0, None, 1.0)],
            sim_perf: None,
        };
        assert!(bundle_json(&rep).is_none());
    }

    #[test]
    fn reason_is_earliest_mark_and_bundle_parses() {
        let rep = JobReport {
            ranks: vec![
                rank(
                    0,
                    Some(IncidentMark {
                        t_ns: 900.0,
                        kind: "watchdog",
                        failed_rank: 1,
                        detail: "recv stalled".to_string(),
                    }),
                    850.0,
                ),
                rank(
                    1,
                    Some(IncidentMark {
                        t_ns: 400.0,
                        kind: "rank_failed",
                        failed_rank: 1,
                        detail: "self crash".to_string(),
                    }),
                    400.0,
                ),
            ],
            sim_perf: None,
        };
        let text = bundle_json(&rep).unwrap();
        let v = parse(&text).unwrap();
        let reason = v.get("reason").unwrap();
        assert_eq!(reason.get("kind").unwrap().as_str(), Some("rank_failed"));
        assert_eq!(reason.get("failed_rank").unwrap().as_f64(), Some(1.0));
        assert_eq!(reason.get("rank").unwrap().as_f64(), Some(1.0));
        let ranks = v.get("ranks").unwrap().as_arr().unwrap();
        assert_eq!(ranks.len(), 2);
        let flight = ranks[0].get("flight").unwrap();
        assert_eq!(flight.get("dropped").unwrap().as_f64(), Some(2.0));
        assert_eq!(flight.get("events").unwrap().as_arr().unwrap().len(), 1);
        // Byte-stable across re-serialization.
        assert_eq!(bundle_json(&rep).unwrap(), text);
    }
}
