//! The per-rank virtual-time event tracer.
//!
//! Events are stamped with the owning rank's *virtual* clock — reading a
//! clock never advances it, so tracing is invisible to the simulation.
//! Events accumulate in a bounded ring: when it fills, the oldest events
//! are dropped (and counted), so a long run's trace holds its tail — the
//! part a user debugging a slow benchmark iteration actually wants.

use std::collections::VecDeque;

use vtime::VTime;

/// A typed event argument. `&'static str` everywhere keeps the hot path
/// allocation-free; algorithm/protocol names are static by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(&'static str),
    Bool(bool),
}

/// One trace event: a complete span (`dur_ns` present) or an instant.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub name: &'static str,
    /// Category, e.g. `"pt2pt"`, `"coll"`, `"mrt"` — Perfetto can filter
    /// on it.
    pub cat: &'static str,
    /// Virtual begin time (ns since simulation epoch).
    pub ts_ns: f64,
    /// Span length; `None` marks an instant event.
    pub dur_ns: Option<f64>,
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// A complete span covering `[begin, end)`.
    pub fn span(
        name: &'static str,
        cat: &'static str,
        begin: VTime,
        end: VTime,
        args: Vec<(&'static str, ArgValue)>,
    ) -> Self {
        TraceEvent {
            name,
            cat,
            ts_ns: begin.as_nanos(),
            dur_ns: Some(end.saturating_since(begin).as_nanos()),
            args,
        }
    }

    /// An instant event.
    pub fn instant(
        name: &'static str,
        cat: &'static str,
        at: VTime,
        args: Vec<(&'static str, ArgValue)>,
    ) -> Self {
        TraceEvent {
            name,
            cat,
            ts_ns: at.as_nanos(),
            dur_ns: None,
            args,
        }
    }
}

/// Bounded event ring: keeps the newest `capacity` events.
#[derive(Debug, Clone)]
pub struct TraceRing {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceRing {
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            capacity,
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted to make room so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain into `(events_oldest_first, dropped_count)`.
    pub fn into_events(self) -> (Vec<TraceEvent>, u64) {
        (self.buf.into_iter().collect(), self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::instant(
            "e",
            "t",
            VTime::from_nanos(i as f64),
            vec![("i", ArgValue::U64(i))],
        )
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r = TraceRing::new(3);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let (evs, dropped) = r.into_events();
        assert_eq!(dropped, 2);
        let ts: Vec<f64> = evs.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn ring_capacity_is_at_least_one() {
        let mut r = TraceRing::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn span_duration_is_end_minus_begin() {
        let e = TraceEvent::span(
            "s",
            "c",
            VTime::from_nanos(100.0),
            VTime::from_nanos(350.0),
            vec![],
        );
        assert_eq!(e.ts_ns, 100.0);
        assert_eq!(e.dur_ns, Some(250.0));
    }
}
