//! The per-rank virtual-time event tracer.
//!
//! Events are stamped with the owning rank's *virtual* clock — reading a
//! clock never advances it, so tracing is invisible to the simulation.
//! Events accumulate in a bounded ring: when it fills, the oldest events
//! are dropped (and counted), so a long run's trace holds its tail — the
//! part a user debugging a slow benchmark iteration actually wants.

use std::collections::VecDeque;

use vtime::VTime;

/// A typed event argument. `&'static str` everywhere keeps the hot path
/// allocation-free; algorithm/protocol names are static by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(&'static str),
    Bool(bool),
}

/// Which side of a cross-rank flow arrow an event marks (Chrome
/// trace_event `ph:"s"` / `ph:"f"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowDir {
    /// Flow begin — the send side (`ph:"s"`).
    Begin,
    /// Flow end — the recv side (`ph:"f"`, binding point `"e"`).
    End,
}

/// One trace event: a complete span (`dur_ns` present), an instant, or a
/// flow begin/end (`flow` present) that Perfetto renders as a send→recv
/// arrow between rank tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub name: &'static str,
    /// Category, e.g. `"pt2pt"`, `"coll"`, `"mrt"` — Perfetto can filter
    /// on it.
    pub cat: &'static str,
    /// Virtual begin time (ns since simulation epoch).
    pub ts_ns: f64,
    /// Span length; `None` marks an instant or flow event.
    pub dur_ns: Option<f64>,
    /// Flow direction and the globally unique flow id tying the two ends
    /// of one message together.
    pub flow: Option<(FlowDir, u64)>,
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// A complete span covering `[begin, end)`.
    pub fn span(
        name: &'static str,
        cat: &'static str,
        begin: VTime,
        end: VTime,
        args: Vec<(&'static str, ArgValue)>,
    ) -> Self {
        TraceEvent {
            name,
            cat,
            ts_ns: begin.as_nanos(),
            dur_ns: Some(end.saturating_since(begin).as_nanos()),
            flow: None,
            args,
        }
    }

    /// An instant event.
    pub fn instant(
        name: &'static str,
        cat: &'static str,
        at: VTime,
        args: Vec<(&'static str, ArgValue)>,
    ) -> Self {
        TraceEvent {
            name,
            cat,
            ts_ns: at.as_nanos(),
            dur_ns: None,
            flow: None,
            args,
        }
    }

    /// A flow begin/end event. The same `id` on a `Begin` on one rank and
    /// an `End` on another draws the send→recv arrow.
    pub fn flow(
        name: &'static str,
        cat: &'static str,
        at: VTime,
        dir: FlowDir,
        id: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) -> Self {
        TraceEvent {
            name,
            cat,
            ts_ns: at.as_nanos(),
            dur_ns: None,
            flow: Some((dir, id)),
            args,
        }
    }
}

/// Bounded event ring: keeps the newest `capacity` events.
#[derive(Debug, Clone)]
pub struct TraceRing {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceRing {
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            capacity,
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Push an event; returns `true` when an older event was evicted to
    /// make room (so the caller can account the drop as a pvar).
    pub fn push(&mut self, ev: TraceEvent) -> bool {
        let evicted = self.buf.len() == self.capacity;
        if evicted {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
        evicted
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted to make room so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain into `(events_oldest_first, dropped_count)`.
    pub fn into_events(self) -> (Vec<TraceEvent>, u64) {
        (self.buf.into_iter().collect(), self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::instant(
            "e",
            "t",
            VTime::from_nanos(i as f64),
            vec![("i", ArgValue::U64(i))],
        )
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r = TraceRing::new(3);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let (evs, dropped) = r.into_events();
        assert_eq!(dropped, 2);
        let ts: Vec<f64> = evs.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn ring_capacity_is_at_least_one() {
        let mut r = TraceRing::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn push_reports_eviction() {
        let mut r = TraceRing::new(2);
        assert!(!r.push(ev(0)));
        assert!(!r.push(ev(1)));
        assert!(r.push(ev(2)));
    }

    #[test]
    fn flow_events_carry_direction_and_id() {
        let b = TraceEvent::flow(
            "msg",
            "flow",
            VTime::from_nanos(5.0),
            FlowDir::Begin,
            42,
            vec![],
        );
        let e = TraceEvent::flow(
            "msg",
            "flow",
            VTime::from_nanos(9.0),
            FlowDir::End,
            42,
            vec![],
        );
        assert_eq!(b.flow, Some((FlowDir::Begin, 42)));
        assert_eq!(e.flow, Some((FlowDir::End, 42)));
        assert_eq!(b.dur_ns, None);
    }

    #[test]
    fn span_duration_is_end_minus_begin() {
        let e = TraceEvent::span(
            "s",
            "c",
            VTime::from_nanos(100.0),
            VTime::from_nanos(350.0),
            vec![],
        );
        assert_eq!(e.ts_ns, 100.0);
        assert_eq!(e.dur_ns, Some(250.0));
    }
}
