//! Virtual-time telemetry: periodic pvar sampling into compact per-rank
//! time-series.
//!
//! The sampler divides the simulation's virtual timeline into fixed
//! intervals (`ObsOptions::telemetry_interval_ns`) and attributes every
//! pvar update to the interval containing the *virtual event time* the
//! engine last hinted via [`crate::telemetry_tick`] — the arrival time of
//! the delivery being handled, or the application clock at a binding
//! call. Binning at update time (instead of snapshotting live recorder
//! state on a timer) is what keeps the series deterministic: the interval
//! a counter increment lands in is a pure function of the message's
//! virtual arrival, which the fabric derives deterministically, and
//! interval sums are independent of the real-time order in which a rank
//! pops deliveries from its mailbox. Gauges report the interval's
//! high-water mark for the same reason (`last` is kept too, but only the
//! max is order-independent when a rank has several peers).
//!
//! Like every other `obs` surface, sampling reads virtual clocks and
//! never charges one: the measured simulation is bit-identical with
//! telemetry on or off.

use std::collections::BTreeMap;

use crate::json::JsonBuf;
use crate::pvar::{PvarSet, PvarValue};
use crate::{JobReport, RankReport};

/// One closed sampling interval: `t_ns` is the interval's start
/// (`index * interval_ns`), `pvars` holds what happened inside it
/// (counter deltas, gauge levels, histogram samples).
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub t_ns: f64,
    pub pvars: PvarSet,
}

/// One rank's telemetry series. Sparse: intervals with no activity are
/// simply absent.
#[derive(Debug, Clone, PartialEq)]
pub struct RankSeries {
    pub interval_ns: f64,
    pub samples: Vec<Sample>,
}

/// The live per-rank sampler owned by the recorder.
#[derive(Debug, Clone)]
pub(crate) struct Sampler {
    interval_ns: f64,
    /// Interval index of the engine's last virtual-time hint.
    cur: u64,
    /// Interval index → activity inside it. `BTreeMap` so the exported
    /// series is time-ordered even when hints arrive out of order
    /// (deliveries from different peers pop in real-time order).
    bins: BTreeMap<u64, PvarSet>,
}

impl Sampler {
    pub(crate) fn new(interval_ns: f64) -> Self {
        Sampler {
            interval_ns: interval_ns.max(1.0),
            cur: 0,
            bins: BTreeMap::new(),
        }
    }

    /// Move the sampler to the interval containing virtual time `t_ns`.
    #[inline]
    pub(crate) fn tick(&mut self, t_ns: f64) {
        self.cur = (t_ns / self.interval_ns) as u64;
    }

    #[inline]
    fn bin(&mut self) -> &mut PvarSet {
        self.bins.entry(self.cur).or_default()
    }

    pub(crate) fn count(&mut self, name: &str, n: u64) {
        self.bin().count(name, n);
    }

    pub(crate) fn gauge_set(&mut self, name: &str, v: i64) {
        self.bin().gauge_set(name, v);
    }

    pub(crate) fn observe(&mut self, name: &str, v: f64) {
        self.bin().observe(name, v);
    }

    /// Close the series: time-ordered samples stamped with interval
    /// start times.
    pub(crate) fn into_series(self) -> RankSeries {
        let interval_ns = self.interval_ns;
        RankSeries {
            interval_ns,
            samples: self
                .bins
                .into_iter()
                .map(|(idx, pvars)| Sample {
                    t_ns: idx as f64 * interval_ns,
                    pvars,
                })
                .collect(),
        }
    }
}

/// Write one rank's series as a JSON object (used by both the standalone
/// telemetry export and the incident bundle).
pub(crate) fn write_rank_series(w: &mut JsonBuf, s: &RankSeries) {
    w.begin_obj();
    w.key("interval_ns");
    w.num_val(s.interval_ns);
    w.key("samples");
    w.begin_arr();
    for sample in &s.samples {
        w.newline();
        w.begin_obj();
        w.key("t_ns");
        w.num_val(sample.t_ns);
        w.key("pvars");
        sample.pvars.write_json(w);
        w.end_obj();
    }
    w.newline();
    w.end_arr();
    w.end_obj();
}

/// Serialize a job's telemetry series as a standalone JSON document (the
/// `ombj --telemetry-out` file, consumed by `obs-analyze --timeline`).
/// `None` when no rank sampled (telemetry was off).
pub fn series_json(report: &JobReport) -> Option<String> {
    if report.ranks.iter().all(|r| r.telemetry.is_none()) {
        return None;
    }
    let mut w = JsonBuf::new();
    w.begin_obj();
    w.key("schema");
    w.uint_val(1);
    w.key("kind");
    w.str_val("telemetry");
    w.key("ranks");
    w.begin_arr();
    for r in &report.ranks {
        let Some(series) = &r.telemetry else { continue };
        w.newline();
        w.begin_obj();
        w.key("rank");
        w.uint_val(r.rank as u64);
        w.key("label");
        w.str_val(&r.label);
        w.key("series");
        write_rank_series(&mut w, series);
        w.end_obj();
    }
    w.newline();
    w.end_arr();
    w.end_obj();
    w.newline();
    Some(w.finish())
}

/// CSV export: one row per (rank, interval, pvar).
pub fn series_csv(report: &JobReport) -> Option<String> {
    if report.ranks.iter().all(|r| r.telemetry.is_none()) {
        return None;
    }
    let mut out = String::from("rank,t_ns,pvar,kind,value\n");
    for r in &report.ranks {
        let Some(series) = &r.telemetry else { continue };
        for s in &series.samples {
            for (name, v) in s.pvars.iter() {
                let (kind, value) = match v {
                    PvarValue::Counter(n) => ("counter", *n as f64),
                    PvarValue::Gauge { max, .. } => ("gauge_max", *max as f64),
                    PvarValue::Hist(h) => ("hist_count", h.count as f64),
                };
                out.push_str(&format!(
                    "{},{},{},{},{}\n",
                    r.rank, s.t_ns, name, kind, value
                ));
            }
        }
    }
    Some(out)
}

/// Convenience for tests and the analyzer: total of counter `name`
/// across every sample of every rank (must equal the cumulative pvar —
/// binning never loses an increment).
pub fn series_counter_total(ranks: &[RankReport], name: &str) -> u64 {
    ranks
        .iter()
        .filter_map(|r| r.telemetry.as_ref())
        .flat_map(|s| s.samples.iter())
        .map(|s| s.pvars.counter(name))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_is_order_independent_for_counters() {
        let run = |order: &[(f64, &str)]| {
            let mut s = Sampler::new(100.0);
            for (t, name) in order {
                s.tick(*t);
                s.count(name, 1);
            }
            s.into_series()
        };
        let a = run(&[(50.0, "x"), (250.0, "y"), (130.0, "x")]);
        let b = run(&[(130.0, "x"), (50.0, "x"), (250.0, "y")]);
        assert_eq!(a, b, "interval sums must not depend on pop order");
        assert_eq!(a.samples.len(), 3);
        assert_eq!(a.samples[0].t_ns, 0.0);
        assert_eq!(a.samples[1].t_ns, 100.0);
        assert_eq!(a.samples[1].pvars.counter("x"), 1);
        assert_eq!(a.samples[2].t_ns, 200.0);
        assert_eq!(a.samples[2].pvars.counter("y"), 1);
    }

    #[test]
    fn series_is_sparse() {
        let mut s = Sampler::new(10.0);
        s.tick(5.0);
        s.count("a", 1);
        s.tick(1_000_005.0);
        s.count("a", 2);
        let series = s.into_series();
        assert_eq!(series.samples.len(), 2, "quiet intervals are absent");
        assert_eq!(series.samples[1].t_ns, 1_000_000.0);
    }

    #[test]
    fn zero_interval_is_clamped() {
        let mut s = Sampler::new(0.0);
        s.tick(123.0);
        s.count("a", 1);
        assert_eq!(s.into_series().samples.len(), 1);
    }
}
