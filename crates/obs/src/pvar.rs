//! Performance variables (pvars), in the spirit of the MPI_T tool
//! information interface.
//!
//! A pvar is a named, typed metric a library layer exports because a tool
//! might want to read it: protocol decision counters, queue-depth gauges,
//! pause-time histograms. Names are dotted paths (`pt2pt.eager_msgs`,
//! `mrt.gc.pauses_ns`); the catalogue lives in the README's
//! "Observability" section.
//!
//! Three classes, mirroring MPI_T's counter / level / aggregate split:
//!
//! * **Counter** — monotonically increasing `u64` (events, bytes).
//! * **Gauge** — instantaneous level; records the last and the high-water
//!   value (unexpected-queue depth, outstanding pool buffers).
//! * **Hist** — log2-bucket histogram of `f64` samples (GC pause ns).
//!
//! Sets support `diff` (interval measurement, like `MPI_T_pvar_read`
//! before/after a phase) and `merge` (cross-rank aggregation).

use std::collections::BTreeMap;

/// Number of log2 buckets: bucket `i` holds samples in `[2^(i-1), 2^i)`
/// (bucket 0 holds samples `< 1`).
pub const HIST_BUCKETS: usize = 64;

/// A log2-bucket histogram over non-negative `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Log2Hist {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: f64,
    pub max: f64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Log2Hist {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }
}

/// Bucket index for a sample (negative samples clamp to bucket 0).
pub fn bucket_of(v: f64) -> usize {
    if v < 1.0 {
        return 0;
    }
    let n = v as u64;
    ((64 - n.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

impl Log2Hist {
    /// Record one sample.
    pub fn observe(&mut self, v: f64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
    }

    /// Mean of all samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-wise accumulate `other` into `self`.
    pub fn merge(&mut self, other: &Log2Hist) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

/// One pvar's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum PvarValue {
    Counter(u64),
    Gauge { last: i64, max: i64 },
    Hist(Log2Hist),
}

impl PvarValue {
    /// Counter value, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            PvarValue::Counter(n) => Some(*n),
            _ => None,
        }
    }

    /// Gauge high-water mark, if this is a gauge.
    pub fn as_gauge_max(&self) -> Option<i64> {
        match self {
            PvarValue::Gauge { max, .. } => Some(*max),
            _ => None,
        }
    }

    /// Histogram, if this is one.
    pub fn as_hist(&self) -> Option<&Log2Hist> {
        match self {
            PvarValue::Hist(h) => Some(h),
            _ => None,
        }
    }
}

/// A named set of pvars. `BTreeMap` keeps iteration (and therefore every
/// dump/export) in deterministic name order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PvarSet {
    vars: BTreeMap<String, PvarValue>,
}

impl PvarSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bump a counter by `n` (registers it at 0 on first touch).
    pub fn count(&mut self, name: &str, n: u64) {
        match self.vars.get_mut(name) {
            Some(PvarValue::Counter(c)) => *c += n,
            Some(other) => panic!("pvar {name:?} is not a counter: {other:?}"),
            None => {
                self.vars.insert(name.to_string(), PvarValue::Counter(n));
            }
        }
    }

    /// Set a gauge's level (high-water mark is kept automatically).
    pub fn gauge_set(&mut self, name: &str, v: i64) {
        match self.vars.get_mut(name) {
            Some(PvarValue::Gauge { last, max }) => {
                *last = v;
                if v > *max {
                    *max = v;
                }
            }
            Some(other) => panic!("pvar {name:?} is not a gauge: {other:?}"),
            None => {
                self.vars
                    .insert(name.to_string(), PvarValue::Gauge { last: v, max: v });
            }
        }
    }

    /// Record a histogram sample.
    pub fn observe(&mut self, name: &str, v: f64) {
        match self.vars.get_mut(name) {
            Some(PvarValue::Hist(h)) => h.observe(v),
            Some(other) => panic!("pvar {name:?} is not a histogram: {other:?}"),
            None => {
                let mut h = Log2Hist::default();
                h.observe(v);
                self.vars.insert(name.to_string(), PvarValue::Hist(h));
            }
        }
    }

    pub fn get(&self, name: &str) -> Option<&PvarValue> {
        self.vars.get(name)
    }

    /// Counter value by name (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.get(name).and_then(PvarValue::as_counter).unwrap_or(0)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &PvarValue)> {
        self.vars.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn len(&self) -> usize {
        self.vars.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Cross-rank aggregation: counters add, gauges keep the max level,
    /// histograms merge bucket-wise. A name present in only one set is
    /// carried over unchanged.
    pub fn merge(&mut self, other: &PvarSet) {
        for (name, ov) in &other.vars {
            match (self.vars.get_mut(name), ov) {
                (Some(PvarValue::Counter(a)), PvarValue::Counter(b)) => *a += b,
                (Some(PvarValue::Gauge { last, max }), PvarValue::Gauge { last: bl, max: bm }) => {
                    *last = (*last).max(*bl);
                    *max = (*max).max(*bm);
                }
                (Some(PvarValue::Hist(a)), PvarValue::Hist(b)) => a.merge(b),
                (Some(mine), theirs) => {
                    panic!("pvar {name:?} type mismatch in merge: {mine:?} vs {theirs:?}")
                }
                (None, v) => {
                    self.vars.insert(name.clone(), v.clone());
                }
            }
        }
    }

    /// Serialize as a JSON object: counters as numbers, gauges as
    /// `{"last","max"}`, histograms as `{"count","mean","max"}` (the
    /// bucket array is an internal detail; summary stats are what the
    /// analyzers read).
    pub fn write_json(&self, w: &mut crate::json::JsonBuf) {
        w.begin_obj();
        for (name, v) in self.iter() {
            w.key(name);
            match v {
                PvarValue::Counter(n) => w.uint_val(*n),
                PvarValue::Gauge { last, max } => {
                    w.begin_obj();
                    w.key("last");
                    w.int_val(*last);
                    w.key("max");
                    w.int_val(*max);
                    w.end_obj();
                }
                PvarValue::Hist(h) => {
                    w.begin_obj();
                    w.key("count");
                    w.uint_val(h.count);
                    w.key("mean");
                    w.num_val(h.mean());
                    w.key("max");
                    w.num_val(h.max);
                    w.end_obj();
                }
            }
        }
        w.end_obj();
    }

    /// Interval measurement: what happened since `earlier` was captured.
    /// Counters and histogram counts subtract (saturating); gauges keep
    /// the later reading as-is.
    pub fn diff(&self, earlier: &PvarSet) -> PvarSet {
        let mut out = PvarSet::new();
        for (name, now) in &self.vars {
            let then = earlier.vars.get(name);
            let v = match (now, then) {
                (PvarValue::Counter(a), Some(PvarValue::Counter(b))) => {
                    PvarValue::Counter(a.saturating_sub(*b))
                }
                (PvarValue::Hist(a), Some(PvarValue::Hist(b))) => {
                    let mut h = a.clone();
                    for (x, y) in h.buckets.iter_mut().zip(b.buckets.iter()) {
                        *x = x.saturating_sub(*y);
                    }
                    h.count = a.count.saturating_sub(b.count);
                    h.sum = (a.sum - b.sum).max(0.0);
                    PvarValue::Hist(h)
                }
                (v, _) => v.clone(),
            };
            out.vars.insert(name.clone(), v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_register_lazily() {
        let mut p = PvarSet::new();
        assert_eq!(p.counter("pt2pt.eager_msgs"), 0);
        p.count("pt2pt.eager_msgs", 1);
        p.count("pt2pt.eager_msgs", 3);
        assert_eq!(p.counter("pt2pt.eager_msgs"), 4);
    }

    #[test]
    fn gauges_track_last_and_high_water() {
        let mut p = PvarSet::new();
        p.gauge_set("q.depth", 2);
        p.gauge_set("q.depth", 7);
        p.gauge_set("q.depth", 1);
        assert_eq!(
            p.get("q.depth"),
            Some(&PvarValue::Gauge { last: 1, max: 7 })
        );
    }

    #[test]
    fn hist_buckets_are_log2() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(0.9), 0);
        assert_eq!(bucket_of(1.0), 1);
        assert_eq!(bucket_of(1.5), 1);
        assert_eq!(bucket_of(2.0), 2);
        assert_eq!(bucket_of(3.0), 2);
        assert_eq!(bucket_of(4.0), 3);
        assert_eq!(bucket_of(1024.0), 11);
        assert_eq!(bucket_of(f64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn hist_stats() {
        let mut h = Log2Hist::default();
        for v in [1.0, 2.0, 3.0, 10.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.max, 10.0);
        assert_eq!(h.buckets[1], 1); // 1.0
        assert_eq!(h.buckets[2], 2); // 2.0, 3.0
        assert_eq!(h.buckets[4], 1); // 10.0
    }

    #[test]
    fn merge_semantics_per_class() {
        let mut a = PvarSet::new();
        a.count("c", 5);
        a.gauge_set("g", 3);
        a.observe("h", 2.0);
        let mut b = PvarSet::new();
        b.count("c", 7);
        b.gauge_set("g", 9);
        b.observe("h", 8.0);
        b.count("only_b", 1);
        a.merge(&b);
        assert_eq!(a.counter("c"), 12);
        assert_eq!(a.get("g").unwrap().as_gauge_max(), Some(9));
        let h = a.get("h").unwrap().as_hist().unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 8.0);
        assert_eq!(a.counter("only_b"), 1);
    }

    #[test]
    fn merge_is_commutative_on_counters_and_hists() {
        let mut a = PvarSet::new();
        a.count("c", 5);
        a.observe("h", 4.0);
        let mut b = PvarSet::new();
        b.count("c", 2);
        b.observe("h", 100.0);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn diff_subtracts_counters_and_hist_counts() {
        let mut before = PvarSet::new();
        before.count("c", 10);
        before.observe("h", 1.0);
        let mut after = before.clone();
        after.count("c", 5);
        after.observe("h", 2.0);
        after.gauge_set("g", 4);
        let d = after.diff(&before);
        assert_eq!(d.counter("c"), 5);
        assert_eq!(d.get("h").unwrap().as_hist().unwrap().count, 1);
        assert_eq!(d.get("g").unwrap().as_gauge_max(), Some(4));
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut p = PvarSet::new();
        p.count("z", 1);
        p.count("a", 1);
        p.count("m", 1);
        let names: Vec<&str> = p.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn json_export_covers_all_classes() {
        let mut p = PvarSet::new();
        p.count("c", 3);
        p.gauge_set("g", -2);
        p.gauge_set("g", 5);
        p.observe("h", 4.0);
        let mut w = crate::json::JsonBuf::new();
        p.write_json(&mut w);
        let s = w.finish();
        assert!(s.contains(r#""c":3"#));
        assert!(s.contains(r#""g":{"last":5,"max":5}"#));
        assert!(s.contains(r#""h":{"count":1,"mean":4,"max":4}"#));
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn type_confusion_panics() {
        let mut p = PvarSet::new();
        p.gauge_set("x", 1);
        p.count("x", 1);
    }
}
