//! A tiny deterministic JSON writer.
//!
//! The observability layer and the benchmark reports need to emit JSON
//! (Chrome trace-event files, `--format json` reports) with *byte-stable*
//! output: two identical virtual-time runs must serialize to identical
//! bytes. Everything here is plain `std` formatting — field order is
//! whatever the caller writes, floats use Rust's shortest-roundtrip
//! formatting, and no timestamps or addresses ever leak in.

/// Append `s` to `out` with JSON string escaping (quotes not included).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Format a finite `f64` as a JSON number. Non-finite values (which the
/// virtual-time types rule out anyway) degrade to `null`.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // `{}` prints integral floats without a fractional part; keep them
        // valid JSON numbers as-is (JSON allows `3` as well as `3.0`).
        if s == "-0" {
            s = "0".to_string();
        }
        s
    } else {
        "null".to_string()
    }
}

/// Incremental writer for JSON objects/arrays with comma bookkeeping.
///
/// ```
/// let mut w = obs::json::JsonBuf::new();
/// w.begin_obj();
/// w.key("name");
/// w.str_val("osu_latency");
/// w.key("sizes");
/// w.begin_arr();
/// w.num_val(1.0);
/// w.num_val(2.0);
/// w.end_arr();
/// w.end_obj();
/// assert_eq!(w.finish(), r#"{"name":"osu_latency","sizes":[1,2]}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonBuf {
    out: String,
    /// Whether the current nesting level already holds an element.
    has_elem: Vec<bool>,
}

impl JsonBuf {
    pub fn new() -> Self {
        Self::default()
    }

    fn elem_boundary(&mut self) {
        if let Some(has) = self.has_elem.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
    }

    pub fn begin_obj(&mut self) {
        self.elem_boundary();
        self.out.push('{');
        self.has_elem.push(false);
    }

    pub fn end_obj(&mut self) {
        self.has_elem.pop();
        self.out.push('}');
    }

    pub fn begin_arr(&mut self) {
        self.elem_boundary();
        self.out.push('[');
        self.has_elem.push(false);
    }

    pub fn end_arr(&mut self) {
        self.has_elem.pop();
        self.out.push(']');
    }

    /// Object key; the following value call supplies the value.
    pub fn key(&mut self, k: &str) {
        self.elem_boundary();
        self.out.push('"');
        escape_into(&mut self.out, k);
        self.out.push_str("\":");
        // The value that follows must not emit its own comma: mark the
        // level as "no element yet"; the value marks it back.
        if let Some(has) = self.has_elem.last_mut() {
            *has = false;
        }
    }

    pub fn str_val(&mut self, s: &str) {
        self.elem_boundary();
        self.out.push('"');
        escape_into(&mut self.out, s);
        self.out.push('"');
    }

    pub fn num_val(&mut self, v: f64) {
        self.elem_boundary();
        self.out.push_str(&num(v));
    }

    pub fn int_val(&mut self, v: i64) {
        self.elem_boundary();
        self.out.push_str(&v.to_string());
    }

    pub fn uint_val(&mut self, v: u64) {
        self.elem_boundary();
        self.out.push_str(&v.to_string());
    }

    pub fn bool_val(&mut self, v: bool) {
        self.elem_boundary();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Insert a raw pre-serialized fragment (caller guarantees validity).
    pub fn raw_val(&mut self, raw: &str) {
        self.elem_boundary();
        self.out.push_str(raw);
    }

    /// Raw newline, for one-event-per-line trace files.
    pub fn newline(&mut self) {
        self.out.push('\n');
    }

    pub fn finish(self) -> String {
        self.out
    }
}

/// A parsed JSON value. Objects keep insertion order so that
/// parse→inspect pipelines stay deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a JSON document. Accepts exactly what [`JsonBuf`] (and the
/// Chrome trace writer built on it) produces, plus ordinary hand-written
/// JSON; the analyzer uses it to reload per-rank trace files.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: the low half follows.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(cp)
                                    .ok_or_else(|| "invalid surrogate pair".to_string())?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?
                            };
                            out.push(c);
                            continue; // hex4 already advanced
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the maximal run of unescaped bytes in one go,
                    // validating UTF-8 over the run only. (Validating
                    // from `pos` to the end of the document per character
                    // is quadratic — a 256-rank incident bundle made that
                    // a multi-hour parse.)
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| e.to_string())?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number {s:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn numbers_are_shortest_roundtrip() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(3.0), "3");
        assert_eq!(num(-0.0), "0");
        assert_eq!(num(f64::NAN), "null");
    }

    #[test]
    fn nested_structure_with_commas() {
        let mut w = JsonBuf::new();
        w.begin_obj();
        w.key("a");
        w.int_val(1);
        w.key("b");
        w.begin_arr();
        w.str_val("x");
        w.str_val("y");
        w.begin_obj();
        w.key("c");
        w.bool_val(true);
        w.end_obj();
        w.end_arr();
        w.end_obj();
        assert_eq!(w.finish(), r#"{"a":1,"b":["x","y",{"c":true}]}"#);
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonBuf::new();
        w.begin_obj();
        w.key("e");
        w.begin_arr();
        w.end_arr();
        w.end_obj();
        assert_eq!(w.finish(), r#"{"e":[]}"#);
    }

    #[test]
    fn parse_roundtrips_writer_escapes() {
        // Every escape class the writer can produce survives a
        // write→parse round trip.
        let original = "a\"b\\c\nd\te\rf\u{1}g\u{7f}héллоπ";
        let mut w = JsonBuf::new();
        w.begin_obj();
        w.key("s");
        w.str_val(original);
        w.end_obj();
        let parsed = parse(&w.finish()).unwrap();
        assert_eq!(parsed.get("s").unwrap().as_str(), Some(original));
    }

    #[test]
    fn parse_handles_numbers_and_literals() {
        let v = parse(r#"{"a":-1.5e3,"b":true,"c":null,"d":[0,2.25],"e":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
        let d = v.get("d").unwrap().as_arr().unwrap();
        assert_eq!(d[1].as_f64(), Some(2.25));
        assert_eq!(v.get("e"), Some(&JsonValue::Obj(vec![])));
    }

    #[test]
    fn parse_handles_unicode_escapes_and_surrogates() {
        let v = parse(r#"["Aé😀"]"#).unwrap();
        assert_eq!(v.as_arr().unwrap()[0].as_str(), Some("Aé😀"));
    }

    #[test]
    fn parse_scales_to_multi_megabyte_string_content() {
        // Regression: the string scanner used to re-validate UTF-8 from
        // the cursor to the end of the document for every character,
        // which is quadratic — a 256-rank incident bundle (~20 MB of
        // mostly-string JSON) took hours to parse. A few MB of string
        // content must parse in seconds, not hours.
        let chunk = "span name with ünïcode and a \\\"quoted\\\" bit, ";
        let mut doc = String::from("[");
        for i in 0..20_000 {
            if i > 0 {
                doc.push(',');
            }
            doc.push('"');
            for _ in 0..4 {
                doc.push_str(chunk);
            }
            doc.push('"');
        }
        doc.push(']');
        let started = std::time::Instant::now();
        let v = parse(&doc).unwrap();
        assert!(started.elapsed() < std::time::Duration::from_secs(20));
        let items = v.as_arr().unwrap();
        assert_eq!(items.len(), 20_000);
        let want = chunk.replace("\\\"", "\"").repeat(4);
        assert_eq!(items[0].as_str(), Some(want.as_str()));
        assert_eq!(items[19_999].as_str(), Some(want.as_str()));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [r#"{"a":}"#, "[1,", "\"unterminated", "tru", "{\"a\":1}x"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_report_roundtrips_through_chrome_trace_json() {
        // An empty job report still serializes as a valid, parseable
        // Chrome trace document.
        let text = crate::JobReport::default().chrome_trace_json();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
        assert_eq!(v.get("droppedEvents").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn flow_events_roundtrip_through_chrome_trace_json() {
        use crate::trace::{FlowDir, TraceEvent};
        use vtime::VTime;
        let rank = crate::RankReport {
            rank: 3,
            label: "rank 3 (T)".to_string(),
            pvars: crate::PvarSet::new(),
            events: vec![
                TraceEvent::flow(
                    "msg",
                    "flow",
                    VTime::from_nanos(1500.0),
                    FlowDir::Begin,
                    99,
                    vec![("bytes", crate::ArgValue::U64(64))],
                ),
                TraceEvent::flow(
                    "msg",
                    "flow",
                    VTime::from_nanos(2500.0),
                    FlowDir::End,
                    99,
                    vec![],
                ),
            ],
            dropped_events: 0,
            flight: None,
            telemetry: None,
            incident: None,
            wall: None,
        };
        let text = crate::JobReport {
            ranks: vec![rank],
            sim_perf: None,
        }
        .chrome_trace_json();
        let v = parse(&text).unwrap();
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        // process_name row + two flow records.
        assert_eq!(evs.len(), 3);
        let s = &evs[1];
        assert_eq!(s.get("ph").unwrap().as_str(), Some("s"));
        assert_eq!(s.get("id").unwrap().as_f64(), Some(99.0));
        assert_eq!(s.get("pid").unwrap().as_f64(), Some(3.0));
        let f = &evs[2];
        assert_eq!(f.get("ph").unwrap().as_str(), Some("f"));
        assert_eq!(f.get("bp").unwrap().as_str(), Some("e"));
        assert_eq!(f.get("id").unwrap().as_f64(), Some(99.0));
    }
}
