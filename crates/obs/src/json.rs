//! A tiny deterministic JSON writer.
//!
//! The observability layer and the benchmark reports need to emit JSON
//! (Chrome trace-event files, `--format json` reports) with *byte-stable*
//! output: two identical virtual-time runs must serialize to identical
//! bytes. Everything here is plain `std` formatting — field order is
//! whatever the caller writes, floats use Rust's shortest-roundtrip
//! formatting, and no timestamps or addresses ever leak in.

/// Append `s` to `out` with JSON string escaping (quotes not included).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Format a finite `f64` as a JSON number. Non-finite values (which the
/// virtual-time types rule out anyway) degrade to `null`.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // `{}` prints integral floats without a fractional part; keep them
        // valid JSON numbers as-is (JSON allows `3` as well as `3.0`).
        if s == "-0" {
            s = "0".to_string();
        }
        s
    } else {
        "null".to_string()
    }
}

/// Incremental writer for JSON objects/arrays with comma bookkeeping.
///
/// ```
/// let mut w = obs::json::JsonBuf::new();
/// w.begin_obj();
/// w.key("name");
/// w.str_val("osu_latency");
/// w.key("sizes");
/// w.begin_arr();
/// w.num_val(1.0);
/// w.num_val(2.0);
/// w.end_arr();
/// w.end_obj();
/// assert_eq!(w.finish(), r#"{"name":"osu_latency","sizes":[1,2]}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonBuf {
    out: String,
    /// Whether the current nesting level already holds an element.
    has_elem: Vec<bool>,
}

impl JsonBuf {
    pub fn new() -> Self {
        Self::default()
    }

    fn elem_boundary(&mut self) {
        if let Some(has) = self.has_elem.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
    }

    pub fn begin_obj(&mut self) {
        self.elem_boundary();
        self.out.push('{');
        self.has_elem.push(false);
    }

    pub fn end_obj(&mut self) {
        self.has_elem.pop();
        self.out.push('}');
    }

    pub fn begin_arr(&mut self) {
        self.elem_boundary();
        self.out.push('[');
        self.has_elem.push(false);
    }

    pub fn end_arr(&mut self) {
        self.has_elem.pop();
        self.out.push(']');
    }

    /// Object key; the following value call supplies the value.
    pub fn key(&mut self, k: &str) {
        self.elem_boundary();
        self.out.push('"');
        escape_into(&mut self.out, k);
        self.out.push_str("\":");
        // The value that follows must not emit its own comma: mark the
        // level as "no element yet"; the value marks it back.
        if let Some(has) = self.has_elem.last_mut() {
            *has = false;
        }
    }

    pub fn str_val(&mut self, s: &str) {
        self.elem_boundary();
        self.out.push('"');
        escape_into(&mut self.out, s);
        self.out.push('"');
    }

    pub fn num_val(&mut self, v: f64) {
        self.elem_boundary();
        self.out.push_str(&num(v));
    }

    pub fn int_val(&mut self, v: i64) {
        self.elem_boundary();
        self.out.push_str(&v.to_string());
    }

    pub fn uint_val(&mut self, v: u64) {
        self.elem_boundary();
        self.out.push_str(&v.to_string());
    }

    pub fn bool_val(&mut self, v: bool) {
        self.elem_boundary();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Insert a raw pre-serialized fragment (caller guarantees validity).
    pub fn raw_val(&mut self, raw: &str) {
        self.elem_boundary();
        self.out.push_str(raw);
    }

    /// Raw newline, for one-event-per-line trace files.
    pub fn newline(&mut self) {
        self.out.push('\n');
    }

    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn numbers_are_shortest_roundtrip() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(3.0), "3");
        assert_eq!(num(-0.0), "0");
        assert_eq!(num(f64::NAN), "null");
    }

    #[test]
    fn nested_structure_with_commas() {
        let mut w = JsonBuf::new();
        w.begin_obj();
        w.key("a");
        w.int_val(1);
        w.key("b");
        w.begin_arr();
        w.str_val("x");
        w.str_val("y");
        w.begin_obj();
        w.key("c");
        w.bool_val(true);
        w.end_obj();
        w.end_arr();
        w.end_obj();
        assert_eq!(w.finish(), r#"{"a":1,"b":["x","y",{"c":true}]}"#);
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonBuf::new();
        w.begin_obj();
        w.key("e");
        w.begin_arr();
        w.end_arr();
        w.end_obj();
        assert_eq!(w.finish(), r#"{"e":[]}"#);
    }
}
