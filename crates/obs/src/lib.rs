//! `obs` — the MPI_T-style observability layer of the MVAPICH2-J
//! reproduction.
//!
//! The real MVAPICH2 ships the MPI_T tool-information interface and the
//! OSU INAM monitoring stack; this crate plays that role for the
//! simulation: every layer (engine, collectives, managed runtime, JNI
//! boundary, buffering pool, bindings) reports *performance variables*
//! (counters / gauges / histograms, see [`pvar`]) and *virtual-time trace
//! events* (see [`trace`]) through a per-rank recorder.
//!
//! ## Design rules
//!
//! * **Zero virtual cost.** Instrumentation only ever *reads* virtual
//!   clocks; it never charges one. Simulated timings are bit-identical
//!   with observability on or off, and a test in the workspace root
//!   enforces that.
//! * **Deterministic output.** Timestamps are virtual, pvar iteration is
//!   name-ordered, and ranks are assembled in rank order, so two
//!   identical runs serialize to byte-identical trace files.
//! * **No plumbing through signatures.** Each rank runs on its own OS
//!   thread (see `simfabric::run_cluster`), so the recorder is a
//!   thread-local installed by the job harness around the rank closure.
//!   Every layer below calls the free functions ([`count`], [`observe`],
//!   [`span`], …) which no-op (one thread-local read) when no recorder
//!   is installed — e.g. in unit tests that drive a layer directly.

pub mod analyze;
pub mod json;
pub mod pvar;
pub mod trace;
pub mod wallprof;

pub use pvar::{bucket_of, Log2Hist, PvarSet, PvarValue, HIST_BUCKETS};
pub use trace::{ArgValue, FlowDir, TraceEvent, TraceRing};

/// Pvar counting trace events evicted from the ring (satellite of the
/// analyzer: truncated traces are flagged, not silently misread).
pub const DROPPED_EVENTS_PVAR: &str = "trace.dropped_events";

use std::cell::RefCell;

use vtime::VTime;

/// Per-job observability switches. Carried by the job configuration of
/// the bindings crates; `Copy` so configs stay `Copy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsOptions {
    /// Collect trace events (pvars are always collected while a recorder
    /// is installed; the event ring is the expensive part).
    pub tracing: bool,
    /// Ring capacity per rank (newest events win).
    pub ring_capacity: usize,
    /// Wall-clock self-profiling of the simulator (see [`wallprof`]).
    /// Never affects virtual time or any determinism digest.
    pub profiling: bool,
}

impl ObsOptions {
    pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

    /// Tracing on, default ring.
    pub fn traced() -> Self {
        ObsOptions {
            tracing: true,
            ..Default::default()
        }
    }

    /// Wall-clock self-profiling on, tracing off.
    pub fn profiled() -> Self {
        ObsOptions {
            profiling: true,
            ..Default::default()
        }
    }
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            tracing: false,
            ring_capacity: Self::DEFAULT_RING_CAPACITY,
            profiling: false,
        }
    }
}

/// The per-thread (= per-rank) recorder.
struct Recorder {
    rank: usize,
    label: String,
    tracing: bool,
    pvars: PvarSet,
    ring: TraceRing,
}

thread_local! {
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Install a recorder for this thread (one simulated rank). Replaces any
/// previous recorder.
pub fn install(rank: usize, opts: ObsOptions) {
    RECORDER.with(|r| {
        *r.borrow_mut() = Some(Recorder {
            rank,
            label: format!("rank {rank}"),
            tracing: opts.tracing,
            pvars: PvarSet::new(),
            ring: TraceRing::new(opts.ring_capacity),
        });
    });
    if opts.profiling {
        wallprof::install();
    } else {
        wallprof::reset();
    }
}

/// Name this rank's process row in trace viewers (e.g.
/// `"rank 3 (MVAPICH2-J)"`).
pub fn set_process_label(label: String) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.label = label;
        }
    });
}

/// Remove this thread's recorder and return what it collected.
pub fn uninstall() -> Option<RankReport> {
    let wall = wallprof::harvest();
    RECORDER.with(|r| r.borrow_mut().take()).map(|rec| {
        let (events, dropped_events) = rec.ring.into_events();
        RankReport {
            rank: rec.rank,
            label: rec.label,
            pvars: rec.pvars,
            events,
            dropped_events,
            wall,
        }
    })
}

/// Whether a recorder is installed on this thread.
pub fn is_installed() -> bool {
    RECORDER.with(|r| r.borrow().is_some())
}

/// Whether event tracing is on (lets callers skip building argument
/// vectors when nothing would record them).
#[inline]
pub fn tracing_enabled() -> bool {
    RECORDER.with(|r| r.borrow().as_ref().is_some_and(|rec| rec.tracing))
}

/// Bump counter `name` by `n`.
#[inline]
pub fn count(name: &str, n: u64) {
    let _wp = wallprof::obs_record_span();
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.pvars.count(name, n);
        }
    });
}

/// Set gauge `name` to level `v`.
#[inline]
pub fn gauge_set(name: &str, v: i64) {
    let _wp = wallprof::obs_record_span();
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.pvars.gauge_set(name, v);
        }
    });
}

/// Record a histogram sample.
#[inline]
pub fn observe(name: &str, v: f64) {
    let _wp = wallprof::obs_record_span();
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.pvars.observe(name, v);
        }
    });
}

impl Recorder {
    /// Push an event and account ring eviction under
    /// [`DROPPED_EVENTS_PVAR`].
    fn record(&mut self, ev: TraceEvent) {
        if self.ring.push(ev) {
            self.pvars.count(DROPPED_EVENTS_PVAR, 1);
        }
    }
}

/// Record a complete span `[begin, end)` (no-op unless tracing).
#[inline]
pub fn span(
    name: &'static str,
    cat: &'static str,
    begin: VTime,
    end: VTime,
    args: Vec<(&'static str, ArgValue)>,
) {
    let _wp = wallprof::obs_record_span();
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            if rec.tracing {
                rec.record(TraceEvent::span(name, cat, begin, end, args));
            }
        }
    });
}

/// Record an instant event (no-op unless tracing).
#[inline]
pub fn instant(
    name: &'static str,
    cat: &'static str,
    at: VTime,
    args: Vec<(&'static str, ArgValue)>,
) {
    let _wp = wallprof::obs_record_span();
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            if rec.tracing {
                rec.record(TraceEvent::instant(name, cat, at, args));
            }
        }
    });
}

/// Record a flow begin/end event (no-op unless tracing). Matching ids on
/// a `Begin` and an `End` across ranks become one Perfetto arrow.
#[inline]
pub fn flow(
    name: &'static str,
    cat: &'static str,
    at: VTime,
    dir: FlowDir,
    id: u64,
    args: Vec<(&'static str, ArgValue)>,
) {
    let _wp = wallprof::obs_record_span();
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            if rec.tracing {
                rec.record(TraceEvent::flow(name, cat, at, dir, id, args));
            }
        }
    });
}

/// Everything one rank's recorder collected.
#[derive(Debug, Clone)]
pub struct RankReport {
    pub rank: usize,
    pub label: String,
    pub pvars: PvarSet,
    /// Oldest-first trace events that survived the ring.
    pub events: Vec<TraceEvent>,
    /// Events evicted by ring overflow.
    pub dropped_events: u64,
    /// Wall-clock self-profile (only with `ObsOptions::profiling`).
    pub wall: Option<wallprof::RankWallProf>,
}

/// Rank reports compare on the *virtual-time* payload only: the
/// wall-clock profile differs on every run by nature and must never
/// participate in a determinism check.
impl PartialEq for RankReport {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank
            && self.label == other.label
            && self.pvars == other.pvars
            && self.events == other.events
            && self.dropped_events == other.dropped_events
    }
}

/// A whole job's observability output, ranks in rank order.
#[derive(Debug, Clone, Default)]
pub struct JobReport {
    pub ranks: Vec<RankReport>,
    /// The simulator's own wall-clock profile (only with
    /// `ObsOptions::profiling`); excluded from equality and from every
    /// serialized digest (`pvar_dump`, `chrome_trace_json`).
    pub sim_perf: Option<wallprof::SimPerf>,
}

/// Same contract as [`RankReport`]'s equality: `sim_perf` is wall-clock
/// data and stays outside all determinism comparisons.
impl PartialEq for JobReport {
    fn eq(&self, other: &Self) -> bool {
        self.ranks == other.ranks
    }
}

impl JobReport {
    /// Cross-rank pvar aggregation (counters add, gauges max, histograms
    /// merge).
    pub fn merged_pvars(&self) -> PvarSet {
        let mut out = PvarSet::new();
        for r in &self.ranks {
            out.merge(&r.pvars);
        }
        out
    }

    /// Total events dropped across all rings.
    pub fn dropped_events(&self) -> u64 {
        self.ranks.iter().map(|r| r.dropped_events).sum()
    }

    /// Serialize every rank's events as a Chrome `trace_event` JSON file
    /// (the "JSON Object Format"), loadable in Perfetto / chrome://tracing.
    /// `pid` is the rank; timestamps are virtual microseconds.
    pub fn chrome_trace_json(&self) -> String {
        let mut w = json::JsonBuf::new();
        w.begin_obj();
        w.key("traceEvents");
        w.begin_arr();
        for r in &self.ranks {
            w.newline();
            // Process-name metadata row.
            w.begin_obj();
            w.key("ph");
            w.str_val("M");
            w.key("pid");
            w.uint_val(r.rank as u64);
            w.key("tid");
            w.uint_val(0);
            w.key("name");
            w.str_val("process_name");
            w.key("args");
            w.begin_obj();
            w.key("name");
            w.str_val(&r.label);
            w.end_obj();
            w.end_obj();
            for ev in &r.events {
                w.newline();
                w.begin_obj();
                w.key("ph");
                w.str_val(match (ev.flow, ev.dur_ns.is_some()) {
                    (Some((FlowDir::Begin, _)), _) => "s",
                    (Some((FlowDir::End, _)), _) => "f",
                    (None, true) => "X",
                    (None, false) => "i",
                });
                w.key("pid");
                w.uint_val(r.rank as u64);
                w.key("tid");
                w.uint_val(0);
                w.key("ts");
                w.num_val(ev.ts_ns / 1_000.0);
                if let Some((dir, id)) = ev.flow {
                    w.key("id");
                    w.uint_val(id);
                    if dir == FlowDir::End {
                        // Bind the arrow head to the enclosing slice.
                        w.key("bp");
                        w.str_val("e");
                    }
                } else if let Some(dur) = ev.dur_ns {
                    w.key("dur");
                    w.num_val(dur / 1_000.0);
                } else {
                    // Thread-scoped instant marker.
                    w.key("s");
                    w.str_val("t");
                }
                w.key("name");
                w.str_val(ev.name);
                w.key("cat");
                w.str_val(ev.cat);
                if !ev.args.is_empty() {
                    w.key("args");
                    w.begin_obj();
                    for (k, v) in &ev.args {
                        w.key(k);
                        match v {
                            ArgValue::U64(n) => w.uint_val(*n),
                            ArgValue::I64(n) => w.int_val(*n),
                            ArgValue::F64(x) => w.num_val(*x),
                            ArgValue::Str(s) => w.str_val(s),
                            ArgValue::Bool(b) => w.bool_val(*b),
                        }
                    }
                    w.end_obj();
                }
                w.end_obj();
            }
        }
        w.newline();
        w.end_arr();
        w.key("displayTimeUnit");
        w.str_val("ns");
        // Carried in-band so the offline analyzer can flag truncated
        // traces without the pvar dump.
        w.key("droppedEvents");
        w.uint_val(self.dropped_events());
        w.end_obj();
        w.newline();
        w.finish()
    }

    /// Human-readable snapshot of the merged pvars (the `--pvar-dump`
    /// output).
    pub fn pvar_dump(&self) -> String {
        let merged = self.merged_pvars();
        let mut out = String::new();
        out.push_str(&format!(
            "# pvar snapshot ({} ranks, merged: counters sum, gauges max, hists merge)\n",
            self.ranks.len()
        ));
        for (name, v) in merged.iter() {
            match v {
                PvarValue::Counter(n) => out.push_str(&format!("{name:<40} counter {n}\n")),
                PvarValue::Gauge { last, max } => {
                    out.push_str(&format!("{name:<40} gauge   last={last} max={max}\n"))
                }
                PvarValue::Hist(h) => out.push_str(&format!(
                    "{name:<40} hist    count={} mean={:.1} max={:.1}\n",
                    h.count,
                    h.mean(),
                    h.max
                )),
            }
        }
        let dropped = self.dropped_events();
        if dropped > 0 {
            out.push_str(&format!("# trace ring dropped {dropped} events\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run `f` with a recorder installed, returning its report.
    fn with_recorder(opts: ObsOptions, f: impl FnOnce()) -> RankReport {
        install(0, opts);
        f();
        uninstall().expect("recorder was installed")
    }

    #[test]
    fn uninstalled_api_is_a_no_op() {
        assert!(!is_installed());
        count("x", 1);
        gauge_set("g", 2);
        observe("h", 3.0);
        span("s", "c", VTime::ZERO, VTime::from_nanos(1.0), vec![]);
        assert!(uninstall().is_none());
    }

    #[test]
    fn recorder_collects_pvars_and_events() {
        let rep = with_recorder(ObsOptions::traced(), || {
            count("a.calls", 2);
            gauge_set("a.depth", 5);
            observe("a.ns", 12.0);
            span(
                "op",
                "test",
                VTime::from_nanos(10.0),
                VTime::from_nanos(30.0),
                vec![("bytes", ArgValue::U64(64))],
            );
            instant("mark", "test", VTime::from_nanos(15.0), vec![]);
        });
        assert_eq!(rep.pvars.counter("a.calls"), 2);
        assert_eq!(rep.events.len(), 2);
        assert_eq!(rep.events[0].name, "op");
        assert_eq!(rep.events[0].dur_ns, Some(20.0));
        assert_eq!(rep.events[1].dur_ns, None);
        assert_eq!(rep.dropped_events, 0);
    }

    #[test]
    fn tracing_off_still_collects_pvars() {
        let rep = with_recorder(ObsOptions::default(), || {
            count("a.calls", 1);
            span("op", "test", VTime::ZERO, VTime::from_nanos(1.0), vec![]);
        });
        assert_eq!(rep.pvars.counter("a.calls"), 1);
        assert!(rep.events.is_empty());
    }

    #[test]
    fn ring_overflow_is_reported() {
        let rep = with_recorder(
            ObsOptions {
                tracing: true,
                ring_capacity: 4,
                ..Default::default()
            },
            || {
                for i in 0..10 {
                    instant("e", "t", VTime::from_nanos(i as f64), vec![]);
                }
            },
        );
        assert_eq!(rep.events.len(), 4);
        assert_eq!(rep.dropped_events, 6);
        assert_eq!(rep.events[0].ts_ns, 6.0);
        // Evictions are surfaced as a pvar, not just a field.
        assert_eq!(rep.pvars.counter(DROPPED_EVENTS_PVAR), 6);
    }

    #[test]
    fn flow_events_serialize_as_s_and_f_records() {
        let rep = with_recorder(ObsOptions::traced(), || {
            flow(
                "msg",
                "flow",
                VTime::from_nanos(1000.0),
                FlowDir::Begin,
                7,
                vec![("bytes", ArgValue::U64(8))],
            );
            flow(
                "msg",
                "flow",
                VTime::from_nanos(2000.0),
                FlowDir::End,
                7,
                vec![],
            );
        });
        let json = JobReport {
            ranks: vec![rep],
            sim_perf: None,
        }
        .chrome_trace_json();
        assert!(json.contains(r#""ph":"s","pid":0,"tid":0,"ts":1,"id":7"#));
        assert!(json.contains(r#""ph":"f","pid":0,"tid":0,"ts":2,"id":7,"bp":"e""#));
    }

    #[test]
    fn chrome_trace_shape_and_determinism() {
        let mk = || {
            let rep = with_recorder(ObsOptions::traced(), || {
                set_process_label("rank 0 (TEST)".to_string());
                span(
                    "bcast",
                    "coll",
                    VTime::from_nanos(1000.0),
                    VTime::from_nanos(3500.0),
                    vec![
                        ("algo", ArgValue::Str("two_level")),
                        ("bytes", ArgValue::U64(4096)),
                    ],
                );
            });
            JobReport {
                ranks: vec![rep],
                sim_perf: None,
            }
            .chrome_trace_json()
        };
        let a = mk();
        assert_eq!(a, mk(), "trace export must be deterministic");
        assert!(a.contains(r#""name":"process_name""#));
        assert!(a.contains(r#""name":"rank 0 (TEST)""#));
        assert!(a.contains(r#""ph":"X""#));
        assert!(a.contains(r#""ts":1,"dur":2.5"#));
        assert!(a.contains(r#""algo":"two_level""#));
        assert!(a.starts_with('{') && a.trim_end().ends_with('}'));
    }

    #[test]
    fn pvar_dump_lists_merged_values() {
        let r0 = with_recorder(ObsOptions::default(), || count("c", 1));
        let r1 = {
            install(1, ObsOptions::default());
            count("c", 2);
            uninstall().unwrap()
        };
        let dump = JobReport {
            ranks: vec![r0, r1],
            sim_perf: None,
        }
        .pvar_dump();
        assert!(dump.contains("2 ranks"));
        assert!(dump.contains("counter 3"));
    }
}
