//! `obs` — the MPI_T-style observability layer of the MVAPICH2-J
//! reproduction.
//!
//! The real MVAPICH2 ships the MPI_T tool-information interface and the
//! OSU INAM monitoring stack; this crate plays that role for the
//! simulation: every layer (engine, collectives, managed runtime, JNI
//! boundary, buffering pool, bindings) reports *performance variables*
//! (counters / gauges / histograms, see [`pvar`]) and *virtual-time trace
//! events* (see [`trace`]) through a per-rank recorder. On top of those
//! primitives sit three time-aware surfaces:
//!
//! * [`telemetry`] — a virtual-time sampler binning every pvar update
//!   into fixed intervals of the simulation clock (per-rank time-series).
//! * [`flight`] — an always-on bounded flight recorder: the last N trace
//!   events per rank, evictions counted in `flight.dropped`.
//! * [`incident`] — fault-triggered bundles: ring + pvars + telemetry
//!   drained into one JSON document when a fault fires.
//!
//! ## Design rules
//!
//! * **Zero virtual cost.** Instrumentation only ever *reads* virtual
//!   clocks; it never charges one. Simulated timings are bit-identical
//!   with observability on or off, and a test in the workspace root
//!   enforces that.
//! * **Deterministic output.** Timestamps are virtual, pvar iteration is
//!   name-ordered, and ranks are assembled in rank order, so two
//!   identical runs serialize to byte-identical trace files, telemetry
//!   series, and incident bundles.
//! * **No plumbing through signatures.** Each rank runs on its own OS
//!   thread (see `simfabric::run_cluster`), so the recorder is a
//!   thread-local installed by the job harness around the rank closure.
//!   Every layer below calls the free functions ([`count`], [`observe`],
//!   [`span`], …).
//! * **Cheap when off.** Every free function opens with one relaxed load
//!   of a thread-local gate word and returns if no sink wants the record
//!   — no `RefCell` borrow, no argument-vector allocation downstream
//!   (callers check [`tracing_enabled`] first). The perf basket tracks
//!   the obs-on/obs-off spread so regressions here are a number, not a
//!   feeling.

pub mod analyze;
pub mod flight;
pub mod incident;
pub mod json;
pub mod pvar;
pub mod telemetry;
pub mod trace;
pub mod wallprof;

pub use flight::{FlightWindow, DEFAULT_FLIGHT_CAPACITY};
pub use incident::IncidentMark;
pub use pvar::{bucket_of, Log2Hist, PvarSet, PvarValue, HIST_BUCKETS};
pub use telemetry::{RankSeries, Sample};
pub use trace::{ArgValue, FlowDir, TraceEvent, TraceRing};

/// Pvar counting trace events evicted from the ring (satellite of the
/// analyzer: truncated traces are flagged, not silently misread).
pub const DROPPED_EVENTS_PVAR: &str = "trace.dropped_events";

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};

use vtime::VTime;

/// Per-job observability switches. Carried by the job configuration of
/// the bindings crates; `Copy` so configs stay `Copy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsOptions {
    /// Collect trace events (pvars are always collected while a recorder
    /// is installed; the unbounded-ish event ring is the expensive part).
    pub tracing: bool,
    /// Ring capacity per rank (newest events win).
    pub ring_capacity: usize,
    /// Wall-clock self-profiling of the simulator (see [`wallprof`]).
    /// Never affects virtual time or any determinism digest.
    pub profiling: bool,
    /// Keep a bounded flight window of the most recent trace events
    /// (see [`flight`]) — independent of `tracing`, cheap enough to stay
    /// on for long runs.
    pub flight: bool,
    /// Flight window capacity per rank.
    pub flight_capacity: usize,
    /// Telemetry sampling interval in virtual nanoseconds; `0.0` turns
    /// the sampler off (see [`telemetry`]).
    pub telemetry_interval_ns: f64,
}

impl ObsOptions {
    pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;
    /// Default sampling interval: 10 virtual microseconds — fine enough
    /// to localize a retransmit storm inside an `osu_latency` sweep,
    /// coarse enough that a series stays a few hundred samples.
    pub const DEFAULT_TELEMETRY_INTERVAL_NS: f64 = 10_000.0;

    /// Tracing on, default ring.
    pub fn traced() -> Self {
        ObsOptions {
            tracing: true,
            ..Default::default()
        }
    }

    /// Wall-clock self-profiling on, tracing off.
    pub fn profiled() -> Self {
        ObsOptions {
            profiling: true,
            ..Default::default()
        }
    }

    /// Enable the flight recorder (default window size).
    pub fn with_flight(mut self) -> Self {
        self.flight = true;
        self
    }

    /// Enable telemetry sampling at `interval_ns` virtual nanoseconds
    /// (values `<= 0.0` fall back to the default interval).
    pub fn with_telemetry(mut self, interval_ns: f64) -> Self {
        self.telemetry_interval_ns = if interval_ns > 0.0 {
            interval_ns
        } else {
            Self::DEFAULT_TELEMETRY_INTERVAL_NS
        };
        self
    }
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            tracing: false,
            ring_capacity: Self::DEFAULT_RING_CAPACITY,
            profiling: false,
            flight: false,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
            telemetry_interval_ns: 0.0,
        }
    }
}

// ---------------------------------------------------------------------
// The fast gate: one thread-local word saying which sinks are live.
//
// Every record call starts with a single relaxed load of this word; when
// it is zero (the common case in unit tests driving a layer directly,
// and the *only* case priced into disabled-path benchmarks) the call
// returns before touching the `RefCell` recorder slot or wallprof.
// ---------------------------------------------------------------------

/// A recorder is installed: pvar updates have somewhere to go.
pub(crate) const GATE_PVARS: u32 = 1;
/// At least one event sink (full trace ring and/or flight window) wants
/// span/instant/flow records.
pub(crate) const GATE_EVENTS: u32 = 1 << 1;
/// The telemetry sampler is binning updates by virtual time.
pub(crate) const GATE_TELEMETRY: u32 = 1 << 2;
/// Wall-clock self-profiling is live (owned by [`wallprof`]).
pub(crate) const GATE_WALLPROF: u32 = 1 << 3;

thread_local! {
    static GATE: AtomicU32 = const { AtomicU32::new(0) };
}

#[inline]
pub(crate) fn gate() -> u32 {
    GATE.with(|g| g.load(Ordering::Relaxed))
}

pub(crate) fn set_gate(bit: u32, on: bool) {
    GATE.with(|g| {
        let cur = g.load(Ordering::Relaxed);
        let next = if on { cur | bit } else { cur & !bit };
        g.store(next, Ordering::Relaxed);
    });
}

/// The per-thread (= per-rank) recorder.
struct Recorder {
    rank: usize,
    label: String,
    tracing: bool,
    pvars: PvarSet,
    ring: TraceRing,
    /// Bounded always-on window (`ObsOptions::flight`).
    flight: Option<TraceRing>,
    /// Virtual-time sampler (`ObsOptions::telemetry_interval_ns > 0`).
    telemetry: Option<telemetry::Sampler>,
    /// First fault this rank observed (first mark wins).
    incident: Option<IncidentMark>,
}

thread_local! {
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Install a recorder for this thread (one simulated rank). Replaces any
/// previous recorder.
pub fn install(rank: usize, opts: ObsOptions) {
    RECORDER.with(|r| {
        *r.borrow_mut() = Some(Recorder {
            rank,
            label: format!("rank {rank}"),
            tracing: opts.tracing,
            pvars: PvarSet::new(),
            ring: TraceRing::new(opts.ring_capacity),
            flight: opts.flight.then(|| TraceRing::new(opts.flight_capacity)),
            telemetry: (opts.telemetry_interval_ns > 0.0)
                .then(|| telemetry::Sampler::new(opts.telemetry_interval_ns)),
            incident: None,
        });
    });
    set_gate(GATE_PVARS, true);
    set_gate(GATE_EVENTS, opts.tracing || opts.flight);
    set_gate(GATE_TELEMETRY, opts.telemetry_interval_ns > 0.0);
    if opts.profiling {
        wallprof::install();
    } else {
        wallprof::reset();
    }
}

/// Name this rank's process row in trace viewers (e.g.
/// `"rank 3 (MVAPICH2-J, threaded engine)"`).
pub fn set_process_label(label: String) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.label = label;
        }
    });
}

/// Remove this thread's recorder and return what it collected.
pub fn uninstall() -> Option<RankReport> {
    let wall = wallprof::harvest();
    set_gate(GATE_PVARS | GATE_EVENTS | GATE_TELEMETRY, false);
    RECORDER.with(|r| r.borrow_mut().take()).map(|rec| {
        let (events, dropped_events) = rec.ring.into_events();
        RankReport {
            rank: rec.rank,
            label: rec.label,
            pvars: rec.pvars,
            events,
            dropped_events,
            flight: rec.flight.map(FlightWindow::from_ring),
            telemetry: rec.telemetry.map(telemetry::Sampler::into_series),
            incident: rec.incident,
            wall,
        }
    })
}

/// Whether a recorder is installed on this thread.
pub fn is_installed() -> bool {
    gate() & GATE_PVARS != 0
}

/// Whether any event sink (full trace ring or flight window) is live
/// (lets callers skip building argument vectors when nothing would
/// record them).
#[inline]
pub fn tracing_enabled() -> bool {
    gate() & GATE_EVENTS != 0
}

impl Recorder {
    /// Pvar update that also lands in the telemetry bin of the current
    /// virtual interval.
    fn count(&mut self, name: &str, n: u64) {
        self.pvars.count(name, n);
        if let Some(s) = self.telemetry.as_mut() {
            s.count(name, n);
        }
    }

    fn gauge_set(&mut self, name: &str, v: i64) {
        self.pvars.gauge_set(name, v);
        if let Some(s) = self.telemetry.as_mut() {
            s.gauge_set(name, v);
        }
    }

    fn observe(&mut self, name: &str, v: f64) {
        self.pvars.observe(name, v);
        if let Some(s) = self.telemetry.as_mut() {
            s.observe(name, v);
        }
    }

    /// Push an event into whichever sinks are live, accounting ring
    /// evictions under [`DROPPED_EVENTS_PVAR`] / [`flight::DROPPED_PVAR`].
    fn record(&mut self, ev: TraceEvent) {
        match (self.tracing, self.flight.is_some()) {
            (true, true) => {
                let cloned = ev.clone();
                if self.flight.as_mut().unwrap().push(cloned) {
                    self.count(flight::DROPPED_PVAR, 1);
                }
                if self.ring.push(ev) {
                    self.count(DROPPED_EVENTS_PVAR, 1);
                }
            }
            (true, false) => {
                if self.ring.push(ev) {
                    self.count(DROPPED_EVENTS_PVAR, 1);
                }
            }
            (false, true) => {
                if self.flight.as_mut().unwrap().push(ev) {
                    self.count(flight::DROPPED_PVAR, 1);
                }
            }
            (false, false) => {}
        }
    }
}

/// Bump counter `name` by `n`.
#[inline]
pub fn count(name: &str, n: u64) {
    if gate() == 0 {
        return;
    }
    let _wp = wallprof::obs_record_span();
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.count(name, n);
        }
    });
}

/// Set gauge `name` to level `v`.
#[inline]
pub fn gauge_set(name: &str, v: i64) {
    if gate() == 0 {
        return;
    }
    let _wp = wallprof::obs_record_span();
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.gauge_set(name, v);
        }
    });
}

/// Record a histogram sample.
#[inline]
pub fn observe(name: &str, v: f64) {
    if gate() == 0 {
        return;
    }
    let _wp = wallprof::obs_record_span();
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.observe(name, v);
        }
    });
}

/// Move this rank's telemetry sampler to the interval containing virtual
/// time `t`. The engine calls this with the arrival time of the delivery
/// it is about to handle (and the bindings with the application clock at
/// each call), so subsequent pvar updates bin to the virtual moment that
/// caused them — which is what makes the series independent of real-time
/// mailbox pop order.
#[inline]
pub fn telemetry_tick(t: VTime) {
    if gate() & GATE_TELEMETRY == 0 {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            if let Some(s) = rec.telemetry.as_mut() {
                s.tick(t.as_nanos());
            }
        }
    });
}

/// Account `bytes` sent from `src` to `dst` under the per-link pvars
/// `fabric.link.{src}->{dst}.bytes` / `.msgs`. Only live while telemetry
/// is sampling (the dynamic names allocate; the timeline analyzer is
/// their only consumer).
#[inline]
pub fn link_traffic(src: usize, dst: usize, bytes: u64) {
    if gate() & GATE_TELEMETRY == 0 {
        return;
    }
    let _wp = wallprof::obs_record_span();
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.count(&format!("fabric.link.{src}->{dst}.bytes"), bytes);
            rec.count(&format!("fabric.link.{src}->{dst}.msgs"), 1);
        }
    });
}

/// Drop an incident mark on this rank: the engine observed fault `kind`
/// (blaming `failed_rank`) at virtual time `at`. The first mark wins —
/// later faults on the same rank are fallout and only bump the
/// [`incident::MARKS_PVAR`] counter. Also lands an `"incident"` instant
/// event in the live event sinks so the mark shows up inside the flight
/// window itself.
pub fn incident_mark(kind: &'static str, failed_rank: usize, at: VTime, detail: String) {
    if gate() & GATE_PVARS == 0 {
        return;
    }
    let _wp = wallprof::obs_record_span();
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.count(incident::MARKS_PVAR, 1);
            if rec.tracing || rec.flight.is_some() {
                rec.record(TraceEvent::instant(
                    "incident",
                    "incident",
                    at,
                    vec![
                        ("kind", ArgValue::Str(kind)),
                        ("failed_rank", ArgValue::U64(failed_rank as u64)),
                    ],
                ));
            }
            if rec.incident.is_none() {
                rec.incident = Some(IncidentMark {
                    t_ns: at.as_nanos(),
                    kind,
                    failed_rank,
                    detail,
                });
            }
        }
    });
}

/// Record a complete span `[begin, end)` (no-op unless an event sink or
/// the wall profiler is live).
#[inline]
pub fn span(
    name: &'static str,
    cat: &'static str,
    begin: VTime,
    end: VTime,
    args: Vec<(&'static str, ArgValue)>,
) {
    if gate() & (GATE_EVENTS | GATE_WALLPROF) == 0 {
        return;
    }
    let _wp = wallprof::obs_record_span();
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.record(TraceEvent::span(name, cat, begin, end, args));
        }
    });
}

/// Record an instant event (no-op unless an event sink is live).
#[inline]
pub fn instant(
    name: &'static str,
    cat: &'static str,
    at: VTime,
    args: Vec<(&'static str, ArgValue)>,
) {
    if gate() & (GATE_EVENTS | GATE_WALLPROF) == 0 {
        return;
    }
    let _wp = wallprof::obs_record_span();
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.record(TraceEvent::instant(name, cat, at, args));
        }
    });
}

/// Record a flow begin/end event (no-op unless an event sink is live).
/// Matching ids on a `Begin` and an `End` across ranks become one
/// Perfetto arrow.
#[inline]
pub fn flow(
    name: &'static str,
    cat: &'static str,
    at: VTime,
    dir: FlowDir,
    id: u64,
    args: Vec<(&'static str, ArgValue)>,
) {
    if gate() & (GATE_EVENTS | GATE_WALLPROF) == 0 {
        return;
    }
    let _wp = wallprof::obs_record_span();
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.record(TraceEvent::flow(name, cat, at, dir, id, args));
        }
    });
}

/// Everything one rank's recorder collected.
#[derive(Debug, Clone)]
pub struct RankReport {
    pub rank: usize,
    pub label: String,
    pub pvars: PvarSet,
    /// Oldest-first trace events that survived the ring.
    pub events: Vec<TraceEvent>,
    /// Events evicted by ring overflow.
    pub dropped_events: u64,
    /// Drained flight window (only with `ObsOptions::flight`).
    pub flight: Option<FlightWindow>,
    /// Telemetry time-series (only with a sampling interval set).
    pub telemetry: Option<RankSeries>,
    /// First fault observed on this rank, if any.
    pub incident: Option<IncidentMark>,
    /// Wall-clock self-profile (only with `ObsOptions::profiling`).
    pub wall: Option<wallprof::RankWallProf>,
}

/// Rank reports compare on the *virtual-time* payload only: the
/// wall-clock profile differs on every run by nature and must never
/// participate in a determinism check. Everything else — including the
/// flight window, telemetry series, and incident mark — is virtual data
/// and *does* participate.
impl PartialEq for RankReport {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank
            && self.label == other.label
            && self.pvars == other.pvars
            && self.events == other.events
            && self.dropped_events == other.dropped_events
            && self.flight == other.flight
            && self.telemetry == other.telemetry
            && self.incident == other.incident
    }
}

/// A whole job's observability output, ranks in rank order.
#[derive(Debug, Clone, Default)]
pub struct JobReport {
    pub ranks: Vec<RankReport>,
    /// The simulator's own wall-clock profile (only with
    /// `ObsOptions::profiling`); excluded from equality and from every
    /// serialized digest (`pvar_dump`, `chrome_trace_json`).
    pub sim_perf: Option<wallprof::SimPerf>,
}

/// Same contract as [`RankReport`]'s equality: `sim_perf` is wall-clock
/// data and stays outside all determinism comparisons.
impl PartialEq for JobReport {
    fn eq(&self, other: &Self) -> bool {
        self.ranks == other.ranks
    }
}

/// Serialize one event in Chrome `trace_event` object shape under
/// process id `pid` (shared between the full trace export and the
/// incident bundle's flight windows).
pub(crate) fn write_chrome_event(w: &mut json::JsonBuf, pid: u64, ev: &TraceEvent) {
    w.begin_obj();
    w.key("ph");
    w.str_val(match (ev.flow, ev.dur_ns.is_some()) {
        (Some((FlowDir::Begin, _)), _) => "s",
        (Some((FlowDir::End, _)), _) => "f",
        (None, true) => "X",
        (None, false) => "i",
    });
    w.key("pid");
    w.uint_val(pid);
    w.key("tid");
    w.uint_val(0);
    w.key("ts");
    w.num_val(ev.ts_ns / 1_000.0);
    if let Some((dir, id)) = ev.flow {
        w.key("id");
        w.uint_val(id);
        if dir == FlowDir::End {
            // Bind the arrow head to the enclosing slice.
            w.key("bp");
            w.str_val("e");
        }
    } else if let Some(dur) = ev.dur_ns {
        w.key("dur");
        w.num_val(dur / 1_000.0);
    } else {
        // Thread-scoped instant marker.
        w.key("s");
        w.str_val("t");
    }
    w.key("name");
    w.str_val(ev.name);
    w.key("cat");
    w.str_val(ev.cat);
    if !ev.args.is_empty() {
        w.key("args");
        w.begin_obj();
        for (k, v) in &ev.args {
            w.key(k);
            match v {
                ArgValue::U64(n) => w.uint_val(*n),
                ArgValue::I64(n) => w.int_val(*n),
                ArgValue::F64(x) => w.num_val(*x),
                ArgValue::Str(s) => w.str_val(s),
                ArgValue::Bool(b) => w.bool_val(*b),
            }
        }
        w.end_obj();
    }
    w.end_obj();
}

impl JobReport {
    /// Cross-rank pvar aggregation (counters add, gauges max, histograms
    /// merge).
    pub fn merged_pvars(&self) -> PvarSet {
        let mut out = PvarSet::new();
        for r in &self.ranks {
            out.merge(&r.pvars);
        }
        out
    }

    /// Total events dropped across all rings.
    pub fn dropped_events(&self) -> u64 {
        self.ranks.iter().map(|r| r.dropped_events).sum()
    }

    /// The job's incident bundle, if a fault fired (see [`incident`]).
    pub fn incident_bundle_json(&self) -> Option<String> {
        incident::bundle_json(self)
    }

    /// The job's telemetry series as JSON, if sampling was on.
    pub fn telemetry_json(&self) -> Option<String> {
        telemetry::series_json(self)
    }

    /// The job's telemetry series as CSV, if sampling was on.
    pub fn telemetry_csv(&self) -> Option<String> {
        telemetry::series_csv(self)
    }

    /// Serialize every rank's events as a Chrome `trace_event` JSON file
    /// (the "JSON Object Format"), loadable in Perfetto / chrome://tracing.
    /// `pid` is the rank; timestamps are virtual microseconds.
    pub fn chrome_trace_json(&self) -> String {
        let mut w = json::JsonBuf::new();
        w.begin_obj();
        w.key("traceEvents");
        w.begin_arr();
        for r in &self.ranks {
            w.newline();
            // Process-name metadata row.
            w.begin_obj();
            w.key("ph");
            w.str_val("M");
            w.key("pid");
            w.uint_val(r.rank as u64);
            w.key("tid");
            w.uint_val(0);
            w.key("name");
            w.str_val("process_name");
            w.key("args");
            w.begin_obj();
            w.key("name");
            w.str_val(&r.label);
            w.end_obj();
            w.end_obj();
            for ev in &r.events {
                w.newline();
                write_chrome_event(&mut w, r.rank as u64, ev);
            }
        }
        w.newline();
        w.end_arr();
        w.key("displayTimeUnit");
        w.str_val("ns");
        // Carried in-band so the offline analyzer can flag truncated
        // traces without the pvar dump.
        w.key("droppedEvents");
        w.uint_val(self.dropped_events());
        w.end_obj();
        w.newline();
        w.finish()
    }

    /// Human-readable snapshot of the merged pvars (the `--pvar-dump`
    /// output).
    pub fn pvar_dump(&self) -> String {
        let merged = self.merged_pvars();
        let mut out = String::new();
        out.push_str(&format!(
            "# pvar snapshot ({} ranks, merged: counters sum, gauges max, hists merge)\n",
            self.ranks.len()
        ));
        for (name, v) in merged.iter() {
            match v {
                PvarValue::Counter(n) => out.push_str(&format!("{name:<40} counter {n}\n")),
                PvarValue::Gauge { last, max } => {
                    out.push_str(&format!("{name:<40} gauge   last={last} max={max}\n"))
                }
                PvarValue::Hist(h) => out.push_str(&format!(
                    "{name:<40} hist    count={} mean={:.1} max={:.1}\n",
                    h.count,
                    h.mean(),
                    h.max
                )),
            }
        }
        let dropped = self.dropped_events();
        if dropped > 0 {
            out.push_str(&format!("# trace ring dropped {dropped} events\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run `f` with a recorder installed, returning its report.
    fn with_recorder(opts: ObsOptions, f: impl FnOnce()) -> RankReport {
        install(0, opts);
        f();
        uninstall().expect("recorder was installed")
    }

    #[test]
    fn uninstalled_api_is_a_no_op() {
        assert!(!is_installed());
        assert!(!tracing_enabled());
        count("x", 1);
        gauge_set("g", 2);
        observe("h", 3.0);
        span("s", "c", VTime::ZERO, VTime::from_nanos(1.0), vec![]);
        telemetry_tick(VTime::from_nanos(5.0));
        link_traffic(0, 1, 64);
        incident_mark("rank_failed", 1, VTime::ZERO, String::new());
        assert!(uninstall().is_none());
    }

    #[test]
    fn recorder_collects_pvars_and_events() {
        let rep = with_recorder(ObsOptions::traced(), || {
            count("a.calls", 2);
            gauge_set("a.depth", 5);
            observe("a.ns", 12.0);
            span(
                "op",
                "test",
                VTime::from_nanos(10.0),
                VTime::from_nanos(30.0),
                vec![("bytes", ArgValue::U64(64))],
            );
            instant("mark", "test", VTime::from_nanos(15.0), vec![]);
        });
        assert_eq!(rep.pvars.counter("a.calls"), 2);
        assert_eq!(rep.events.len(), 2);
        assert_eq!(rep.events[0].name, "op");
        assert_eq!(rep.events[0].dur_ns, Some(20.0));
        assert_eq!(rep.events[1].dur_ns, None);
        assert_eq!(rep.dropped_events, 0);
        assert!(rep.flight.is_none());
        assert!(rep.telemetry.is_none());
        assert!(rep.incident.is_none());
    }

    #[test]
    fn tracing_off_still_collects_pvars() {
        let rep = with_recorder(ObsOptions::default(), || {
            assert!(!tracing_enabled());
            count("a.calls", 1);
            span("op", "test", VTime::ZERO, VTime::from_nanos(1.0), vec![]);
        });
        assert_eq!(rep.pvars.counter("a.calls"), 1);
        assert!(rep.events.is_empty());
    }

    #[test]
    fn ring_overflow_is_reported() {
        let rep = with_recorder(
            ObsOptions {
                tracing: true,
                ring_capacity: 4,
                ..Default::default()
            },
            || {
                for i in 0..10 {
                    instant("e", "t", VTime::from_nanos(i as f64), vec![]);
                }
            },
        );
        assert_eq!(rep.events.len(), 4);
        assert_eq!(rep.dropped_events, 6);
        assert_eq!(rep.events[0].ts_ns, 6.0);
        // Evictions are surfaced as a pvar, not just a field.
        assert_eq!(rep.pvars.counter(DROPPED_EVENTS_PVAR), 6);
    }

    #[test]
    fn flight_window_wraps_and_counts_drops() {
        let rep = with_recorder(
            ObsOptions {
                flight: true,
                flight_capacity: 4,
                ..Default::default()
            },
            || {
                assert!(tracing_enabled(), "flight alone lights the event gate");
                for i in 0..10 {
                    instant("e", "t", VTime::from_nanos(i as f64), vec![]);
                }
            },
        );
        // Full trace ring never saw the events — only the window did.
        assert!(rep.events.is_empty());
        assert_eq!(rep.dropped_events, 0);
        let w = rep.flight.expect("flight window drained");
        assert_eq!(w.events.len(), 4);
        assert_eq!(w.dropped, 6);
        let ts: Vec<f64> = w.events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![6.0, 7.0, 8.0, 9.0], "oldest dropped first");
        assert_eq!(rep.pvars.counter(flight::DROPPED_PVAR), 6);
    }

    #[test]
    fn tracing_and_flight_both_record() {
        let rep = with_recorder(
            ObsOptions {
                tracing: true,
                flight: true,
                flight_capacity: 2,
                ..Default::default()
            },
            || {
                for i in 0..5 {
                    instant("e", "t", VTime::from_nanos(i as f64), vec![]);
                }
            },
        );
        assert_eq!(rep.events.len(), 5, "full ring keeps everything");
        let w = rep.flight.unwrap();
        assert_eq!(w.events.len(), 2);
        assert_eq!(w.dropped, 3);
        assert_eq!(rep.pvars.counter(flight::DROPPED_PVAR), 3);
        assert_eq!(rep.pvars.counter(DROPPED_EVENTS_PVAR), 0);
    }

    #[test]
    fn telemetry_bins_by_virtual_tick() {
        let rep = with_recorder(ObsOptions::default().with_telemetry(100.0), || {
            telemetry_tick(VTime::from_nanos(10.0));
            count("a", 1);
            telemetry_tick(VTime::from_nanos(250.0));
            count("a", 2);
            link_traffic(0, 1, 64);
        });
        let series = rep.telemetry.expect("sampler drained");
        assert_eq!(series.interval_ns, 100.0);
        assert_eq!(series.samples.len(), 2);
        assert_eq!(series.samples[0].t_ns, 0.0);
        assert_eq!(series.samples[0].pvars.counter("a"), 1);
        assert_eq!(series.samples[1].t_ns, 200.0);
        assert_eq!(series.samples[1].pvars.counter("a"), 2);
        assert_eq!(
            series.samples[1].pvars.counter("fabric.link.0->1.bytes"),
            64
        );
        // Cumulative pvars see the same totals.
        assert_eq!(rep.pvars.counter("a"), 3);
        assert_eq!(rep.pvars.counter("fabric.link.0->1.msgs"), 1);
    }

    #[test]
    fn link_traffic_is_inert_without_telemetry() {
        let rep = with_recorder(ObsOptions::default(), || {
            link_traffic(0, 1, 64);
        });
        assert_eq!(rep.pvars.counter("fabric.link.0->1.bytes"), 0);
    }

    #[test]
    fn first_incident_mark_wins() {
        let rep = with_recorder(ObsOptions::default().with_flight(), || {
            incident_mark(
                "transport_failure",
                1,
                VTime::from_nanos(100.0),
                "retries exhausted".to_string(),
            );
            incident_mark("watchdog", 2, VTime::from_nanos(900.0), String::new());
        });
        let m = rep.incident.expect("mark kept");
        assert_eq!(m.kind, "transport_failure");
        assert_eq!(m.failed_rank, 1);
        assert_eq!(m.t_ns, 100.0);
        assert_eq!(rep.pvars.counter(incident::MARKS_PVAR), 2);
        // Marks are visible inside the flight window too.
        let w = rep.flight.unwrap();
        assert_eq!(w.events.iter().filter(|e| e.name == "incident").count(), 2);
    }

    #[test]
    fn flow_events_serialize_as_s_and_f_records() {
        let rep = with_recorder(ObsOptions::traced(), || {
            flow(
                "msg",
                "flow",
                VTime::from_nanos(1000.0),
                FlowDir::Begin,
                7,
                vec![("bytes", ArgValue::U64(8))],
            );
            flow(
                "msg",
                "flow",
                VTime::from_nanos(2000.0),
                FlowDir::End,
                7,
                vec![],
            );
        });
        let json = JobReport {
            ranks: vec![rep],
            sim_perf: None,
        }
        .chrome_trace_json();
        assert!(json.contains(r#""ph":"s","pid":0,"tid":0,"ts":1,"id":7"#));
        assert!(json.contains(r#""ph":"f","pid":0,"tid":0,"ts":2,"id":7,"bp":"e""#));
    }

    #[test]
    fn chrome_trace_shape_and_determinism() {
        let mk = || {
            let rep = with_recorder(ObsOptions::traced(), || {
                set_process_label("rank 0 (TEST)".to_string());
                span(
                    "bcast",
                    "coll",
                    VTime::from_nanos(1000.0),
                    VTime::from_nanos(3500.0),
                    vec![
                        ("algo", ArgValue::Str("two_level")),
                        ("bytes", ArgValue::U64(4096)),
                    ],
                );
            });
            JobReport {
                ranks: vec![rep],
                sim_perf: None,
            }
            .chrome_trace_json()
        };
        let a = mk();
        assert_eq!(a, mk(), "trace export must be deterministic");
        assert!(a.contains(r#""name":"process_name""#));
        assert!(a.contains(r#""name":"rank 0 (TEST)""#));
        assert!(a.contains(r#""ph":"X""#));
        assert!(a.contains(r#""ts":1,"dur":2.5"#));
        assert!(a.contains(r#""algo":"two_level""#));
        assert!(a.starts_with('{') && a.trim_end().ends_with('}'));
    }

    #[test]
    fn pvar_dump_lists_merged_values() {
        let r0 = with_recorder(ObsOptions::default(), || count("c", 1));
        let r1 = {
            install(1, ObsOptions::default());
            count("c", 2);
            uninstall().unwrap()
        };
        let dump = JobReport {
            ranks: vec![r0, r1],
            sim_perf: None,
        }
        .pvar_dump();
        assert!(dump.contains("2 ranks"));
        assert!(dump.contains("counter 3"));
    }

    #[test]
    fn gate_resets_after_uninstall() {
        install(0, ObsOptions::traced().with_flight().with_telemetry(10.0));
        assert!(is_installed());
        assert!(tracing_enabled());
        uninstall();
        assert_eq!(gate() & (GATE_PVARS | GATE_EVENTS | GATE_TELEMETRY), 0);
    }
}
