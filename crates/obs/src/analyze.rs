//! Offline trace analysis: causal-graph reconstruction, critical-path
//! extraction, and automatic latency attribution.
//!
//! The paper's §IV explains the array-vs-direct-ByteBuffer gap by hand:
//! JNI-boundary copies, buffer-pool staging, and GC pauses. This module
//! reads that story off a virtual-time trace mechanically. It consumes
//! either an in-memory [`JobReport`] (the `ombj --analyze` path) or
//! Chrome trace JSON files written earlier (the `obs-analyze` binary),
//! and produces:
//!
//! * a **latency-attribution table** — per message-size bucket, the % of
//!   virtual wall time spent in GC pauses, JNI copies, pool staging,
//!   fabric transfer, and wait-for-match, with the unattributed rest
//!   reported as `other` (application compute);
//! * **collective skew** — per collective op, the max−min completion
//!   spread across ranks, the straggler rank, and the length of the
//!   critical chain walked backwards through the instance's message flows;
//! * a **flow check** — every recv flow must pair with exactly one send
//!   flow; violations indicate a truncated ring, never a matching bug.
//!
//! Everything is a pure function of the trace, so the output is
//! byte-identical across identical runs.

use std::collections::BTreeMap;

use crate::json::{self, JsonValue};
use crate::trace::FlowDir;
use crate::{ArgValue, JobReport};

/// Attribution categories, in report column order.
pub const NCATS: usize = 8;
pub const CATEGORY_NAMES: [&str; NCATS] = [
    "gc", "copy", "staging", "fabric", "retrans", "wait", "rma", "other",
];
const OTHER: usize = 7;
/// Flattening priority (highest first) for overlapping spans: a GC pause
/// inside a JNI call is GC time, staging inside a wait is staging time,
/// and reliability-sublayer backoff inside a wait is retransmission time
/// (the cost the fault plan injected, separated from the benign wait for
/// a matching message). One-sided epoch bookkeeping (registration,
/// fence/unlock waits) likewise beats the generic wait bucket; RMA
/// transfer time itself still lands in `fabric` via its xfer spans.
const PRIORITY: [usize; 7] = [0, 2, 1, 3, 4, 6, 5];

/// Map a span to its attribution category.
fn category_of(cat: &str, name: &str) -> Option<usize> {
    match cat {
        "mrt" if name == "gc" => Some(0),
        "nif" => Some(1),
        "mpjbuf" => Some(2),
        "fabric" => Some(3),
        "retransmit" | "fault" => Some(4),
        "pt2pt" if name == "mpi.wait" => Some(5),
        "rma" => Some(6),
        _ => None,
    }
}

/// An owned, source-neutral trace event (from a [`JobReport`] or a parsed
/// Chrome trace file).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub rank: usize,
    pub name: String,
    pub cat: String,
    pub ts_ns: f64,
    pub dur_ns: Option<f64>,
    pub flow: Option<(FlowDir, u64)>,
    pub args: Vec<(String, Arg)>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    Num(f64),
    Str(String),
    Bool(bool),
}

impl Event {
    pub fn arg_num(&self, key: &str) -> Option<f64> {
        self.args.iter().find_map(|(k, v)| match v {
            Arg::Num(n) if k == key => Some(*n),
            _ => None,
        })
    }

    fn end_ns(&self) -> f64 {
        self.ts_ns + self.dur_ns.unwrap_or(0.0)
    }
}

/// Flatten a [`JobReport`]'s per-rank events into owned analyzer events.
pub fn events_from_report(report: &JobReport) -> Vec<Event> {
    let mut out = Vec::new();
    for r in &report.ranks {
        for ev in &r.events {
            out.push(Event {
                rank: r.rank,
                name: ev.name.to_string(),
                cat: ev.cat.to_string(),
                ts_ns: ev.ts_ns,
                dur_ns: ev.dur_ns,
                flow: ev.flow,
                args: ev
                    .args
                    .iter()
                    .map(|(k, v)| {
                        let a = match v {
                            ArgValue::U64(n) => Arg::Num(*n as f64),
                            ArgValue::I64(n) => Arg::Num(*n as f64),
                            ArgValue::F64(x) => Arg::Num(*x),
                            ArgValue::Str(s) => Arg::Str(s.to_string()),
                            ArgValue::Bool(b) => Arg::Bool(*b),
                        };
                        (k.to_string(), a)
                    })
                    .collect(),
            });
        }
    }
    out
}

/// Load events (and the in-band dropped-event count) from a Chrome trace
/// JSON document previously written by [`JobReport::chrome_trace_json`].
pub fn events_from_chrome_trace(text: &str) -> Result<(Vec<Event>, u64), String> {
    let doc = json::parse(text)?;
    let rows = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("no traceEvents array")?;
    let dropped = doc
        .get("droppedEvents")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0) as u64;
    let mut out = Vec::new();
    for row in rows {
        if let Some(ev) = chrome_row_to_event(row)? {
            out.push(ev);
        }
    }
    Ok((out, dropped))
}

/// Parse one Chrome trace-event object row (as written by
/// `write_chrome_event`); `None` for metadata rows.
fn chrome_row_to_event(row: &JsonValue) -> Result<Option<Event>, String> {
    let ph = row.get("ph").and_then(JsonValue::as_str).unwrap_or("");
    if ph == "M" {
        return Ok(None); // metadata rows carry no timing
    }
    let flow = match ph {
        "s" | "f" => {
            let id = row
                .get("id")
                .and_then(JsonValue::as_f64)
                .ok_or("flow event without id")? as u64;
            let dir = if ph == "s" {
                FlowDir::Begin
            } else {
                FlowDir::End
            };
            Some((dir, id))
        }
        _ => None,
    };
    let mut args = Vec::new();
    if let Some(JsonValue::Obj(fields)) = row.get("args") {
        for (k, v) in fields {
            let a = match v {
                JsonValue::Num(n) => Arg::Num(*n),
                JsonValue::Str(s) => Arg::Str(s.clone()),
                JsonValue::Bool(b) => Arg::Bool(*b),
                _ => continue,
            };
            args.push((k.clone(), a));
        }
    }
    Ok(Some(Event {
        rank: row.get("pid").and_then(JsonValue::as_f64).unwrap_or(0.0) as usize,
        name: row
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or("")
            .to_string(),
        cat: row
            .get("cat")
            .and_then(JsonValue::as_str)
            .unwrap_or("")
            .to_string(),
        ts_ns: row.get("ts").and_then(JsonValue::as_f64).unwrap_or(0.0) * 1_000.0,
        dur_ns: row
            .get("dur")
            .and_then(JsonValue::as_f64)
            .map(|d| d * 1_000.0),
        flow,
        args,
    }))
}

/// One row of the attribution table: all windows of one message size,
/// aggregated over every rank.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeBucket {
    /// Message size in bytes the window swept.
    pub size: u64,
    /// Rank-windows aggregated into this row.
    pub windows: u64,
    /// Total virtual wall time across those windows.
    pub wall_ns: f64,
    /// Time per category, [`CATEGORY_NAMES`] order. Sums to `wall_ns`
    /// (the last slot is the unattributed remainder).
    pub cat_ns: [f64; NCATS],
}

impl SizeBucket {
    /// Share of wall time for category `i`, in percent.
    pub fn share_pct(&self, i: usize) -> f64 {
        if self.wall_ns > 0.0 {
            self.cat_ns[i] / self.wall_ns * 100.0
        } else {
            0.0
        }
    }

    /// Wall time minus every attributed segment (including `other`).
    /// Zero by construction; the e2e test pins that down.
    pub fn unattributed_ns(&self) -> f64 {
        self.wall_ns - self.cat_ns.iter().sum::<f64>()
    }
}

/// Per-collective-op skew/straggler summary.
#[derive(Debug, Clone, PartialEq)]
pub struct CollStats {
    /// Collective name as traced (e.g. "bcast").
    pub op: String,
    /// Instances observed.
    pub instances: u64,
    /// Mean max−min completion spread across ranks.
    pub mean_skew_ns: f64,
    /// Worst spread over all instances.
    pub max_skew_ns: f64,
    /// Rank finishing last in the worst instance.
    pub straggler: usize,
    /// Message hops on the backward critical chain of the worst instance.
    pub critical_hops: usize,
}

/// Send↔recv flow pairing check.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlowCheck {
    pub sends: u64,
    pub recvs: u64,
    /// Recv flows whose id has no send flow (ring truncation).
    pub unmatched_recvs: u64,
    /// Send flows never consumed.
    pub unmatched_sends: u64,
    /// Flow ids used by more than one send (must be zero).
    pub duplicate_ids: u64,
}

/// The full analysis of one traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    pub ranks: usize,
    pub buckets: Vec<SizeBucket>,
    pub collectives: Vec<CollStats>,
    pub flows: FlowCheck,
    pub dropped_events: u64,
}

/// Analyze an in-memory job report (the `--analyze` path).
pub fn analyze(report: &JobReport) -> Analysis {
    analyze_events(&events_from_report(report), report.dropped_events())
}

/// Analyze a flat event list (the trace-file path).
pub fn analyze_events(events: &[Event], dropped_events: u64) -> Analysis {
    let mut by_rank: BTreeMap<usize, Vec<&Event>> = BTreeMap::new();
    for ev in events {
        by_rank.entry(ev.rank).or_default().push(ev);
    }
    for evs in by_rank.values_mut() {
        evs.sort_by(|a, b| a.ts_ns.partial_cmp(&b.ts_ns).unwrap());
    }

    let mut buckets: BTreeMap<u64, SizeBucket> = BTreeMap::new();
    for evs in by_rank.values() {
        attribute_rank(evs, &mut buckets);
    }

    Analysis {
        ranks: by_rank.len(),
        buckets: buckets.into_values().collect(),
        collectives: collective_stats(events),
        flows: flow_check(events),
        dropped_events,
    }
}

/// Slice one rank's timeline into per-size windows (bounded by the
/// benchmark's `bench.size` markers) and attribute each window.
fn attribute_rank(evs: &[&Event], buckets: &mut BTreeMap<u64, SizeBucket>) {
    let markers: Vec<(f64, u64)> = evs
        .iter()
        .filter(|e| e.cat == "bench" && e.name == "bench.size")
        .filter_map(|e| e.arg_num("bytes").map(|b| (e.ts_ns, b as u64)))
        .collect();
    if markers.is_empty() {
        return;
    }
    let rank_end = evs.iter().map(|e| e.end_ns()).fold(0.0f64, f64::max);
    for (j, &(t0, size)) in markers.iter().enumerate() {
        let t1 = markers.get(j + 1).map(|m| m.0).unwrap_or(rank_end);
        if t1 <= t0 {
            continue;
        }
        let b = buckets.entry(size).or_insert(SizeBucket {
            size,
            windows: 0,
            wall_ns: 0.0,
            cat_ns: [0.0; NCATS],
        });
        b.windows += 1;
        b.wall_ns += t1 - t0;
        let mut free = vec![(t0, t1)];
        for &c in &PRIORITY {
            let clipped: Vec<(f64, f64)> = evs
                .iter()
                .filter(|e| e.dur_ns.is_some() && category_of(&e.cat, &e.name) == Some(c))
                .map(|e| (e.ts_ns.max(t0), e.end_ns().min(t1)))
                .filter(|(a, z)| z > a)
                .collect();
            let owned = intersect(&free, &union(clipped));
            b.cat_ns[c] += total(&owned);
            free = subtract(&free, &owned);
        }
        b.cat_ns[OTHER] += total(&free);
    }
}

/// Merge possibly-overlapping intervals into a sorted disjoint set.
fn union(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (a, z) in iv {
        match out.last_mut() {
            Some(last) if a <= last.1 => last.1 = last.1.max(z),
            _ => out.push((a, z)),
        }
    }
    out
}

/// Intersection of two sorted disjoint interval sets.
fn intersect(a: &[(f64, f64)], b: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            out.push((lo, hi));
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// `a \ b` for sorted disjoint interval sets.
fn subtract(a: &[(f64, f64)], b: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    let mut j = 0;
    for &(mut lo, hi) in a {
        while j < b.len() && b[j].1 <= lo {
            j += 1;
        }
        let mut k = j;
        while k < b.len() && b[k].0 < hi {
            if b[k].0 > lo {
                out.push((lo, b[k].0));
            }
            lo = lo.max(b[k].1);
            k += 1;
        }
        if lo < hi {
            out.push((lo, hi));
        }
    }
    out
}

fn total(iv: &[(f64, f64)]) -> f64 {
    iv.iter().map(|(a, z)| z - a).sum()
}

fn flow_check(events: &[Event]) -> FlowCheck {
    let mut ids: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for ev in events {
        match ev.flow {
            Some((FlowDir::Begin, id)) => ids.entry(id).or_default().0 += 1,
            Some((FlowDir::End, id)) => ids.entry(id).or_default().1 += 1,
            None => {}
        }
    }
    let mut out = FlowCheck::default();
    for (nb, ne) in ids.values() {
        out.sends += nb;
        out.recvs += ne;
        if *nb == 0 {
            out.unmatched_recvs += ne;
        }
        if *nb > 0 && *ne == 0 {
            out.unmatched_sends += 1;
        }
        if *nb > 1 {
            out.duplicate_ids += 1;
        }
    }
    out
}

fn collective_stats(events: &[Event]) -> Vec<CollStats> {
    // Per-instance completion times, from the "coll"-category spans every
    // collective entry point records.
    struct Instance {
        op: String,
        ends: BTreeMap<usize, f64>,
    }
    let mut instances: BTreeMap<u64, Instance> = BTreeMap::new();
    for ev in events {
        if ev.cat != "coll" || ev.dur_ns.is_none() {
            continue;
        }
        let Some(id) = ev.arg_num("coll").map(|v| v as u64) else {
            continue;
        };
        let inst = instances.entry(id).or_insert_with(|| Instance {
            op: ev.name.clone(),
            ends: BTreeMap::new(),
        });
        let e = inst.ends.entry(ev.rank).or_insert(f64::MIN);
        *e = e.max(ev.end_ns());
    }
    // Message edges of each instance, from the coll-tagged flow events.
    let mut sends: BTreeMap<u64, (usize, f64)> = BTreeMap::new(); // flow id -> (rank, ts)
    let mut recvs: BTreeMap<u64, Vec<(usize, f64, u64)>> = BTreeMap::new(); // coll id -> recvs
    for ev in events {
        let Some((dir, fid)) = ev.flow else { continue };
        let Some(coll) = ev.arg_num("coll").map(|v| v as u64) else {
            continue;
        };
        match dir {
            FlowDir::Begin => {
                sends.insert(fid, (ev.rank, ev.ts_ns));
            }
            FlowDir::End if coll != 0 => {
                recvs
                    .entry(coll)
                    .or_default()
                    .push((ev.rank, ev.ts_ns, fid));
            }
            FlowDir::End => {}
        }
    }

    let mut per_op: BTreeMap<String, CollStats> = BTreeMap::new();
    for (id, inst) in &instances {
        if inst.ends.is_empty() {
            continue;
        }
        let max_end = inst.ends.values().fold(f64::MIN, |a, &b| a.max(b));
        let min_end = inst.ends.values().fold(f64::MAX, |a, &b| a.min(b));
        let skew = (max_end - min_end).max(0.0);
        let straggler = inst
            .ends
            .iter()
            .filter(|(_, &e)| e == max_end)
            .map(|(&r, _)| r)
            .min()
            .unwrap_or(0);
        let hops = critical_hops(
            straggler,
            max_end,
            recvs.get(id).map(Vec::as_slice).unwrap_or(&[]),
            &sends,
        );
        let s = per_op.entry(inst.op.clone()).or_insert(CollStats {
            op: inst.op.clone(),
            instances: 0,
            mean_skew_ns: 0.0,
            max_skew_ns: -1.0,
            straggler: 0,
            critical_hops: 0,
        });
        s.instances += 1;
        s.mean_skew_ns += skew; // running sum; divided below
        if skew > s.max_skew_ns {
            s.max_skew_ns = skew;
            s.straggler = straggler;
            s.critical_hops = hops;
        }
    }
    let mut out: Vec<CollStats> = per_op.into_values().collect();
    for s in &mut out {
        s.mean_skew_ns /= s.instances as f64;
        s.max_skew_ns = s.max_skew_ns.max(0.0);
    }
    out
}

/// Walk the critical chain of one collective instance backwards: from the
/// straggler's completion, repeatedly jump to the sender of the latest
/// message the current rank consumed. Returns the hop count.
fn critical_hops(
    mut rank: usize,
    mut t: f64,
    recvs: &[(usize, f64, u64)],
    sends: &BTreeMap<u64, (usize, f64)>,
) -> usize {
    let mut hops = 0;
    while hops < 10_000 {
        // Latest recv on `rank` at or before `t` (ties: largest flow id
        // for determinism).
        let Some(&(_, rts, fid)) = recvs
            .iter()
            .filter(|&&(r, rts, _)| r == rank && rts <= t)
            .max_by(|a, b| (a.1, a.2).partial_cmp(&(b.1, b.2)).unwrap())
        else {
            break;
        };
        let Some(&(srank, sts)) = sends.get(&fid) else {
            break;
        };
        // Guard against non-causal data (truncated traces).
        if sts > rts || (srank == rank && sts >= t) {
            break;
        }
        rank = srank;
        t = sts;
        hops += 1;
    }
    hops
}

impl Analysis {
    /// Weighted share of wall time in the paper's §IV "managed overhead"
    /// categories (GC + JNI copy + staging), across all size buckets.
    pub fn boundary_share_pct(&self) -> f64 {
        let wall: f64 = self.buckets.iter().map(|b| b.wall_ns).sum();
        if wall == 0.0 {
            return 0.0;
        }
        let managed: f64 = self
            .buckets
            .iter()
            .map(|b| b.cat_ns[0] + b.cat_ns[1] + b.cat_ns[2])
            .sum();
        managed / wall * 100.0
    }

    /// Weighted share of wall time in one named category (see
    /// [`CATEGORY_NAMES`]), across all size buckets.
    pub fn category_share_pct(&self, name: &str) -> f64 {
        let Some(i) = CATEGORY_NAMES.iter().position(|&c| c == name) else {
            return 0.0;
        };
        let wall: f64 = self.buckets.iter().map(|b| b.wall_ns).sum();
        if wall == 0.0 {
            return 0.0;
        }
        let ns: f64 = self.buckets.iter().map(|b| b.cat_ns[i]).sum();
        ns / wall * 100.0
    }

    /// Human-readable attribution report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# latency attribution (% of virtual wall time; {} ranks)\n",
            self.ranks
        ));
        out.push_str(&format!(
            "# {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12}\n",
            "size",
            "gc%",
            "copy%",
            "stage%",
            "fabric%",
            "retrans%",
            "wait%",
            "rma%",
            "other%",
            "wall-us"
        ));
        for b in &self.buckets {
            out.push_str(&format!(
                "  {:>10} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>12.2}\n",
                b.size,
                b.share_pct(0),
                b.share_pct(1),
                b.share_pct(2),
                b.share_pct(3),
                b.share_pct(4),
                b.share_pct(5),
                b.share_pct(6),
                b.share_pct(7),
                b.wall_ns / 1_000.0,
            ));
        }
        if self.buckets.is_empty() {
            out.push_str("# (no bench.size markers — attribution needs a traced benchmark)\n");
        }
        if !self.collectives.is_empty() {
            out.push_str("# collective skew (max-min completion spread across ranks)\n");
            out.push_str(&format!(
                "# {:>12} {:>6} {:>14} {:>14} {:>10} {:>10}\n",
                "op", "n", "mean-skew-us", "max-skew-us", "straggler", "crit-hops"
            ));
            for c in &self.collectives {
                out.push_str(&format!(
                    "  {:>12} {:>6} {:>14.3} {:>14.3} {:>10} {:>10}\n",
                    c.op,
                    c.instances,
                    c.mean_skew_ns / 1_000.0,
                    c.max_skew_ns / 1_000.0,
                    c.straggler,
                    c.critical_hops,
                ));
            }
        }
        out.push_str(&format!(
            "# flows: {} sends, {} recvs, {} unmatched recvs, {} unmatched sends, {} duplicate ids\n",
            self.flows.sends,
            self.flows.recvs,
            self.flows.unmatched_recvs,
            self.flows.unmatched_sends,
            self.flows.duplicate_ids,
        ));
        if self.dropped_events > 0 {
            out.push_str(&format!(
                "# WARNING: trace ring dropped {} events — attribution is truncated\n",
                self.dropped_events
            ));
        }
        out
    }

    /// The analysis as a single JSON object (no trailing newline), for
    /// embedding into a larger report.
    pub fn json_fragment(&self) -> String {
        let mut w = json::JsonBuf::new();
        w.begin_obj();
        w.key("ranks");
        w.uint_val(self.ranks as u64);
        w.key("buckets");
        w.begin_arr();
        for b in &self.buckets {
            w.begin_obj();
            w.key("size");
            w.uint_val(b.size);
            w.key("windows");
            w.uint_val(b.windows);
            w.key("wall_ns");
            w.num_val(b.wall_ns);
            w.key("ns");
            w.begin_obj();
            for (i, name) in CATEGORY_NAMES.iter().enumerate() {
                w.key(name);
                w.num_val(b.cat_ns[i]);
            }
            w.end_obj();
            w.key("pct");
            w.begin_obj();
            for (i, name) in CATEGORY_NAMES.iter().enumerate() {
                w.key(name);
                w.num_val(b.share_pct(i));
            }
            w.end_obj();
            w.end_obj();
        }
        w.end_arr();
        w.key("collectives");
        w.begin_arr();
        for c in &self.collectives {
            w.begin_obj();
            w.key("op");
            w.str_val(&c.op);
            w.key("instances");
            w.uint_val(c.instances);
            w.key("mean_skew_ns");
            w.num_val(c.mean_skew_ns);
            w.key("max_skew_ns");
            w.num_val(c.max_skew_ns);
            w.key("straggler");
            w.uint_val(c.straggler as u64);
            w.key("critical_hops");
            w.uint_val(c.critical_hops as u64);
            w.end_obj();
        }
        w.end_arr();
        w.key("flows");
        w.begin_obj();
        w.key("sends");
        w.uint_val(self.flows.sends);
        w.key("recvs");
        w.uint_val(self.flows.recvs);
        w.key("unmatched_recvs");
        w.uint_val(self.flows.unmatched_recvs);
        w.key("unmatched_sends");
        w.uint_val(self.flows.unmatched_sends);
        w.key("duplicate_ids");
        w.uint_val(self.flows.duplicate_ids);
        w.end_obj();
        w.key("dropped_events");
        w.uint_val(self.dropped_events);
        w.end_obj();
        w.finish()
    }

    /// The analysis as a standalone JSON document.
    pub fn render_json(&self) -> String {
        let mut s = self.json_fragment();
        s.push('\n');
        s
    }

    /// CSV: one attribution row per size, then one skew row per op.
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "size,gc_pct,copy_pct,staging_pct,fabric_pct,retrans_pct,wait_pct,rma_pct,\
             other_pct,wall_us\n",
        );
        for b in &self.buckets {
            out.push_str(&format!(
                "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
                b.size,
                b.share_pct(0),
                b.share_pct(1),
                b.share_pct(2),
                b.share_pct(3),
                b.share_pct(4),
                b.share_pct(5),
                b.share_pct(6),
                b.share_pct(7),
                b.wall_ns / 1_000.0,
            ));
        }
        if !self.collectives.is_empty() {
            out.push_str("op,instances,mean_skew_us,max_skew_us,straggler,critical_hops\n");
            for c in &self.collectives {
                out.push_str(&format!(
                    "{},{},{:.4},{:.4},{},{}\n",
                    c.op,
                    c.instances,
                    c.mean_skew_ns / 1_000.0,
                    c.max_skew_ns / 1_000.0,
                    c.straggler,
                    c.critical_hops,
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Telemetry timeline analysis (`obs-analyze --timeline`)
// ---------------------------------------------------------------------------

/// One merged-across-ranks telemetry interval.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineRow {
    /// Interval start, virtual ns.
    pub t_ns: f64,
    /// Engine deliveries handled inside the interval (event rate).
    pub deliveries: u64,
    pub eager: u64,
    pub rndv: u64,
    pub retransmits: u64,
    pub drops: u64,
    pub acks: u64,
    /// High-water unexpected-queue depth across ranks.
    pub unexpected_max: i64,
    /// High-water pool occupancy across ranks.
    pub pool_max: i64,
    pub reg_hits: u64,
    pub reg_misses: u64,
}

impl TimelineRow {
    /// Registration-cache hit rate for the interval, percent; `None`
    /// when no lookups happened.
    pub fn reg_hit_pct(&self) -> Option<f64> {
        let total = self.reg_hits + self.reg_misses;
        (total > 0).then(|| self.reg_hits as f64 / total as f64 * 100.0)
    }
}

/// Whole-run traffic over one directed fabric link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkRow {
    /// `"src->dst"` as recorded by the fabric link counters.
    pub link: String,
    pub bytes: u64,
    pub msgs: u64,
}

/// Parsed + merged view of a telemetry document, ready to render.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    pub ranks: usize,
    pub interval_ns: f64,
    pub rows: Vec<TimelineRow>,
    /// Per-link totals, sorted by bytes descending (ties: link name) so
    /// the congestion table leads with the hottest link.
    pub links: Vec<LinkRow>,
}

fn pvar_counter(pvars: &JsonValue, name: &str) -> u64 {
    pvars.get(name).and_then(JsonValue::as_f64).unwrap_or(0.0) as u64
}

fn pvar_gauge_max(pvars: &JsonValue, name: &str) -> i64 {
    pvars
        .get(name)
        .and_then(|v| v.get("max"))
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0) as i64
}

/// Parse a telemetry JSON document (written by `ombj --telemetry-out`)
/// into a merged timeline.
pub fn timeline_from_json(text: &str) -> Result<Timeline, String> {
    let doc = json::parse(text)?;
    if doc.get("kind").and_then(JsonValue::as_str) != Some("telemetry") {
        return Err("not a telemetry document (kind != \"telemetry\")".into());
    }
    let ranks = doc
        .get("ranks")
        .and_then(JsonValue::as_arr)
        .ok_or("no ranks array")?;
    let mut interval_ns = 0.0_f64;
    let mut rows: BTreeMap<u64, TimelineRow> = BTreeMap::new();
    let mut links: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for r in ranks {
        let series = r.get("series").ok_or("rank without series")?;
        let ins = series
            .get("interval_ns")
            .and_then(JsonValue::as_f64)
            .ok_or("series without interval_ns")?;
        interval_ns = interval_ns.max(ins);
        let samples = series
            .get("samples")
            .and_then(JsonValue::as_arr)
            .ok_or("series without samples")?;
        for s in samples {
            let t_ns = s
                .get("t_ns")
                .and_then(JsonValue::as_f64)
                .ok_or("sample without t_ns")?;
            let pv = s.get("pvars").ok_or("sample without pvars")?;
            // Interval starts are integral multiples of interval_ns, so
            // keying rows by the rounded start merges ranks exactly.
            let row = rows.entry(t_ns as u64).or_insert(TimelineRow {
                t_ns,
                deliveries: 0,
                eager: 0,
                rndv: 0,
                retransmits: 0,
                drops: 0,
                acks: 0,
                unexpected_max: 0,
                pool_max: 0,
                reg_hits: 0,
                reg_misses: 0,
            });
            row.deliveries += pvar_counter(pv, "engine.deliveries");
            row.eager += pvar_counter(pv, "pt2pt.eager_msgs");
            row.rndv += pvar_counter(pv, "pt2pt.rndv_msgs");
            row.retransmits += pvar_counter(pv, "fabric.retransmits");
            row.drops += pvar_counter(pv, "fabric.drops_injected");
            row.acks += pvar_counter(pv, "fabric.acks");
            row.unexpected_max = row
                .unexpected_max
                .max(pvar_gauge_max(pv, "pt2pt.unexpected_depth"));
            row.pool_max = row
                .pool_max
                .max(pvar_gauge_max(pv, "mpjbuf.pool.outstanding"));
            row.reg_hits += pvar_counter(pv, "rma.reg.hit");
            row.reg_misses += pvar_counter(pv, "rma.reg.miss");
            if let Some(JsonValue::Obj(fields)) = s.get("pvars") {
                for (k, v) in fields {
                    let Some(rest) = k.strip_prefix("fabric.link.") else {
                        continue;
                    };
                    let n = v.as_f64().unwrap_or(0.0) as u64;
                    if let Some(link) = rest.strip_suffix(".bytes") {
                        links.entry(link.to_string()).or_default().0 += n;
                    } else if let Some(link) = rest.strip_suffix(".msgs") {
                        links.entry(link.to_string()).or_default().1 += n;
                    }
                }
            }
        }
    }
    let mut link_rows: Vec<LinkRow> = links
        .into_iter()
        .map(|(link, (bytes, msgs))| LinkRow { link, bytes, msgs })
        .collect();
    link_rows.sort_by(|a, b| b.bytes.cmp(&a.bytes).then_with(|| a.link.cmp(&b.link)));
    Ok(Timeline {
        ranks: ranks.len(),
        interval_ns,
        rows: rows.into_values().collect(),
        links: link_rows,
    })
}

impl Timeline {
    /// Interval start of the retransmission peak, if any interval
    /// retransmitted (how the README walkthrough reads a loss burst off
    /// the timeline).
    pub fn peak_retransmit_t_ns(&self) -> Option<f64> {
        self.rows
            .iter()
            .filter(|r| r.retransmits > 0)
            .max_by(|a, b| {
                (a.retransmits, std::cmp::Reverse(a.t_ns as u64))
                    .cmp(&(b.retransmits, std::cmp::Reverse(b.t_ns as u64)))
            })
            .map(|r| r.t_ns)
    }

    /// Human-readable per-interval breakdown + link congestion table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# telemetry timeline ({} ranks, {:.0} ns intervals)\n",
            self.ranks, self.interval_ns
        ));
        out.push_str(&format!(
            "# {:>12} {:>8} {:>7} {:>6} {:>8} {:>6} {:>6} {:>7} {:>6} {:>7}\n",
            "t-us",
            "events",
            "eager",
            "rndv",
            "retrans",
            "drops",
            "acks",
            "unexp",
            "pool",
            "reg-hit%"
        ));
        for r in &self.rows {
            let hit = r
                .reg_hit_pct()
                .map(|p| format!("{p:.1}"))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "  {:>12.2} {:>8} {:>7} {:>6} {:>8} {:>6} {:>6} {:>7} {:>6} {:>7}\n",
                r.t_ns / 1_000.0,
                r.deliveries,
                r.eager,
                r.rndv,
                r.retransmits,
                r.drops,
                r.acks,
                r.unexpected_max,
                r.pool_max,
                hit,
            ));
        }
        if self.rows.is_empty() {
            out.push_str("# (no samples — was the run telemetry-enabled?)\n");
        }
        if let Some(t) = self.peak_retransmit_t_ns() {
            out.push_str(&format!("# retransmit peak at {:.2} us\n", t / 1_000.0));
        }
        if !self.links.is_empty() {
            let total: u64 = self.links.iter().map(|l| l.bytes).sum();
            out.push_str("# link congestion (whole run)\n");
            out.push_str(&format!(
                "# {:>10} {:>12} {:>8} {:>8}\n",
                "link", "bytes", "msgs", "share%"
            ));
            for l in &self.links {
                let share = if total > 0 {
                    l.bytes as f64 / total as f64 * 100.0
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "  {:>10} {:>12} {:>8} {:>8.2}\n",
                    l.link, l.bytes, l.msgs, share
                ));
            }
        }
        out
    }

    /// CSV: one row per interval.
    pub fn render_csv(&self) -> String {
        let mut out = String::from(
            "t_ns,deliveries,eager,rndv,retransmits,drops,acks,unexpected_max,pool_max,\
             reg_hits,reg_misses\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{}\n",
                r.t_ns,
                r.deliveries,
                r.eager,
                r.rndv,
                r.retransmits,
                r.drops,
                r.acks,
                r.unexpected_max,
                r.pool_max,
                r.reg_hits,
                r.reg_misses,
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Incident bundle analysis (`obs-analyze --incident`)
// ---------------------------------------------------------------------------

/// One rank's view inside an incident bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentRank {
    pub rank: usize,
    pub label: String,
    /// `(t_ns, kind, failed_rank, detail)` of this rank's own first mark.
    pub mark: Option<(f64, String, usize, String)>,
    /// Events the flight ring evicted before the drain.
    pub dropped: u64,
    /// Events retained in the last-N window.
    pub window_events: usize,
    /// Virtual timestamp of the newest window event.
    pub last_event_ns: Option<f64>,
    /// Message sends this rank began whose receive never appears in any
    /// rank's window — traffic in flight (or lost) when the run died.
    pub unmatched_sends: u64,
}

/// Reconstruction of a fault-triggered incident bundle: who failed, who
/// noticed, and what the last-window causal graph says.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Failure class from the earliest mark (`rank_failed`,
    /// `transport_failure`, `watchdog`).
    pub kind: String,
    /// The rank the earliest mark blames.
    pub failed_rank: usize,
    /// The rank that recorded the earliest mark.
    pub observer: usize,
    /// Virtual time of the earliest mark.
    pub t_ns: f64,
    pub detail: String,
    pub ranks: Vec<IncidentRank>,
    /// Rank whose flight window goes quiet first — the first to diverge
    /// from the rest of the job (normally the failed rank itself).
    pub first_divergent: usize,
    /// Directed links with traffic still unacknowledged at the incident:
    /// `(src, dst, in-flight message count)`, busiest first.
    pub suspect_links: Vec<(usize, usize, u64)>,
    /// Flow pairing over the union of all windows. Unmatched sends here
    /// are expected — they are the messages the failure stranded.
    pub flows: FlowCheck,
}

/// Parse an incident bundle (written by `ombj --incident-out`) and
/// reconstruct the last-window causal picture.
pub fn incident_from_json(text: &str) -> Result<Incident, String> {
    let doc = json::parse(text)?;
    if doc.get("kind").and_then(JsonValue::as_str) != Some("incident") {
        return Err("not an incident bundle (kind != \"incident\")".into());
    }
    let reason = doc.get("reason").ok_or("bundle without reason")?;
    let kind = reason
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("reason without kind")?
        .to_string();
    let failed_rank = reason
        .get("failed_rank")
        .and_then(JsonValue::as_f64)
        .ok_or("reason without failed_rank")? as usize;
    let observer = reason
        .get("rank")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0) as usize;
    let t_ns = reason
        .get("t_ns")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0);
    let detail = reason
        .get("detail")
        .and_then(JsonValue::as_str)
        .unwrap_or("")
        .to_string();

    let mut ranks = Vec::new();
    let mut all_events: Vec<Event> = Vec::new();
    for r in doc
        .get("ranks")
        .and_then(JsonValue::as_arr)
        .ok_or("bundle without ranks")?
    {
        let rank = r.get("rank").and_then(JsonValue::as_f64).unwrap_or(0.0) as usize;
        let label = r
            .get("label")
            .and_then(JsonValue::as_str)
            .unwrap_or("")
            .to_string();
        let mark = r.get("incident").and_then(|m| {
            Some((
                m.get("t_ns").and_then(JsonValue::as_f64)?,
                m.get("kind").and_then(JsonValue::as_str)?.to_string(),
                m.get("failed_rank").and_then(JsonValue::as_f64)? as usize,
                m.get("detail")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_string(),
            ))
        });
        let flight = r.get("flight").ok_or("rank without flight window")?;
        let dropped = flight
            .get("dropped")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0) as u64;
        let mut window_events = 0usize;
        let mut last_event_ns = None::<f64>;
        for row in flight
            .get("events")
            .and_then(JsonValue::as_arr)
            .ok_or("flight without events")?
        {
            let Some(ev) = chrome_row_to_event(row)? else {
                continue;
            };
            window_events += 1;
            let end = ev.end_ns();
            last_event_ns = Some(last_event_ns.map_or(end, |t: f64| t.max(end)));
            all_events.push(ev);
        }
        ranks.push(IncidentRank {
            rank,
            label,
            mark,
            dropped,
            window_events,
            last_event_ns,
            unmatched_sends: 0, // filled below from the global flow map
        });
    }

    // Pair flows across the union of windows; an unmatched Begin is a
    // message still in flight when the job died. Attribute each to its
    // sender rank and its (src, dst) link (Begin events carry "dst").
    let flows = flow_check(&all_events);
    let mut begins: BTreeMap<u64, &Event> = BTreeMap::new();
    let mut ended: std::collections::BTreeSet<u64> = Default::default();
    for ev in &all_events {
        match ev.flow {
            Some((FlowDir::Begin, id)) => {
                begins.insert(id, ev);
            }
            Some((FlowDir::End, id)) => {
                ended.insert(id);
            }
            None => {}
        }
    }
    let mut links: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    for (id, ev) in &begins {
        if ended.contains(id) {
            continue;
        }
        if let Some(r) = ranks.iter_mut().find(|r| r.rank == ev.rank) {
            r.unmatched_sends += 1;
        }
        if let Some(dst) = ev.arg_num("dst") {
            *links.entry((ev.rank, dst as usize)).or_default() += 1;
        }
    }
    let mut suspect_links: Vec<(usize, usize, u64)> =
        links.into_iter().map(|((s, d), n)| (s, d, n)).collect();
    suspect_links.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| (a.0, a.1).cmp(&(b.0, b.1))));

    // First divergent rank: the one whose window goes quiet earliest.
    // Ranks with an empty window sort first (they diverged before the
    // window even started); ties break to the lowest rank.
    let first_divergent = ranks
        .iter()
        .min_by(|a, b| {
            let ka = a.last_event_ns.unwrap_or(f64::MIN);
            let kb = b.last_event_ns.unwrap_or(f64::MIN);
            ka.partial_cmp(&kb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.rank.cmp(&b.rank))
        })
        .map(|r| r.rank)
        .ok_or("bundle with no ranks")?;

    Ok(Incident {
        kind,
        failed_rank,
        observer,
        t_ns,
        detail,
        ranks,
        first_divergent,
        suspect_links,
        flows,
    })
}

impl Incident {
    /// Human-readable incident report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# incident: {} — rank {} failed (observed by rank {} at {:.2} us)\n",
            self.kind,
            self.failed_rank,
            self.observer,
            self.t_ns / 1_000.0
        ));
        if !self.detail.is_empty() {
            out.push_str(&format!("# detail: {}\n", self.detail));
        }
        out.push_str(&format!(
            "# first divergent rank: {}{}\n",
            self.first_divergent,
            if self.first_divergent == self.failed_rank {
                " (matches the blamed rank)"
            } else {
                ""
            }
        ));
        out.push_str(&format!(
            "# {:>5} {:>10} {:>8} {:>8} {:>14} {:>10} {:>8}\n",
            "rank", "label", "events", "dropped", "last-event-us", "unmatched", "mark"
        ));
        for r in &self.ranks {
            let last = r
                .last_event_ns
                .map(|t| format!("{:.2}", t / 1_000.0))
                .unwrap_or_else(|| "-".to_string());
            let mark = r
                .mark
                .as_ref()
                .map(|(_, k, _, _)| k.as_str())
                .unwrap_or("-");
            out.push_str(&format!(
                "  {:>5} {:>10} {:>8} {:>8} {:>14} {:>10} {:>8}\n",
                r.rank, r.label, r.window_events, r.dropped, last, r.unmatched_sends, mark
            ));
        }
        if !self.suspect_links.is_empty() {
            out.push_str("# traffic stranded in flight (suspect links)\n");
            for (s, d, n) in &self.suspect_links {
                out.push_str(&format!("  {s}->{d}: {n} message(s) never received\n"));
            }
        }
        out.push_str(&format!(
            "# window flows: {} sends, {} recvs, {} stranded sends, {} orphan recvs\n",
            self.flows.sends,
            self.flows.recvs,
            self.flows.unmatched_sends,
            self.flows.unmatched_recvs,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rank: usize, name: &str, cat: &str, ts: f64, dur: Option<f64>) -> Event {
        Event {
            rank,
            name: name.to_string(),
            cat: cat.to_string(),
            ts_ns: ts,
            dur_ns: dur,
            flow: None,
            args: vec![],
        }
    }

    fn marker(rank: usize, ts: f64, size: u64) -> Event {
        let mut e = ev(rank, "bench.size", "bench", ts, None);
        e.args.push(("bytes".to_string(), Arg::Num(size as f64)));
        e
    }

    #[test]
    fn interval_algebra() {
        assert_eq!(
            union(vec![(3.0, 5.0), (0.0, 2.0), (1.0, 4.0)]),
            vec![(0.0, 5.0)]
        );
        assert_eq!(
            intersect(&[(0.0, 10.0)], &[(2.0, 3.0), (8.0, 12.0)]),
            vec![(2.0, 3.0), (8.0, 10.0)]
        );
        assert_eq!(
            subtract(&[(0.0, 10.0)], &[(2.0, 3.0), (8.0, 12.0)]),
            vec![(0.0, 2.0), (3.0, 8.0)]
        );
        assert_eq!(total(&[(1.0, 2.5), (4.0, 5.0)]), 2.5);
    }

    #[test]
    fn window_attribution_partitions_wall_time() {
        // One 100 ns window: GC [10,30) nested inside a nif call [5,40),
        // a wait [50,90) with fabric [60,70), a retransmit backoff
        // [70,75), and an RMA fence wait [75,85) inside it.
        let events = vec![
            marker(0, 0.0, 8),
            ev(0, "gc", "mrt", 10.0, Some(20.0)),
            ev(0, "call", "nif", 5.0, Some(35.0)),
            ev(0, "mpi.wait", "pt2pt", 50.0, Some(40.0)),
            ev(0, "xfer", "fabric", 60.0, Some(10.0)),
            ev(0, "retransmit", "retransmit", 70.0, Some(5.0)),
            ev(0, "rma.fence", "rma", 75.0, Some(10.0)),
            ev(0, "end", "bench2", 100.0, None),
            marker(0, 100.0, 0), // close the window; zero-length tail skipped
        ];
        let a = analyze_events(&events, 0);
        assert_eq!(a.buckets.len(), 1);
        let b = &a.buckets[0];
        assert_eq!(b.size, 8);
        assert_eq!(b.wall_ns, 100.0);
        assert_eq!(b.cat_ns[0], 20.0); // gc wins over the enclosing nif span
        assert_eq!(b.cat_ns[1], 15.0); // nif minus the gc overlap
        assert_eq!(b.cat_ns[3], 10.0); // fabric wins over wait
        assert_eq!(b.cat_ns[4], 5.0); // retransmit backoff wins over wait
        assert_eq!(b.cat_ns[6], 10.0); // rma epoch wait wins over wait
        assert_eq!(b.cat_ns[5], 15.0); // wait minus fabric/retransmit/rma
        assert_eq!(b.cat_ns[7], 25.0); // the rest
        assert!(b.unattributed_ns().abs() < 1e-9);
    }

    #[test]
    fn flow_check_matches_pairs() {
        let mut send = ev(0, "msg", "flow", 1.0, None);
        send.flow = Some((FlowDir::Begin, 7));
        let mut recv = ev(1, "msg", "flow", 2.0, None);
        recv.flow = Some((FlowDir::End, 7));
        let mut orphan = ev(1, "msg", "flow", 3.0, None);
        orphan.flow = Some((FlowDir::End, 8));
        let a = analyze_events(&[send, recv, orphan], 0);
        assert_eq!(a.flows.sends, 1);
        assert_eq!(a.flows.recvs, 2);
        assert_eq!(a.flows.unmatched_recvs, 1);
        assert_eq!(a.flows.duplicate_ids, 0);
    }

    #[test]
    fn collective_skew_and_critical_chain() {
        // Instance 5: rank 0 sends to 1 at t=10 (flow 100), rank 1
        // receives at t=20 and relays to rank 2 at t=25 (flow 101),
        // consumed at t=40. Spans end at 15/30/45 → skew 30, straggler 2,
        // two hops on the chain.
        let mut events = Vec::new();
        for (rank, end) in [(0usize, 15.0), (1, 30.0), (2, 45.0)] {
            let mut s = ev(rank, "bcast", "coll", 0.0, Some(end));
            s.args.push(("coll".to_string(), Arg::Num(5.0)));
            events.push(s);
        }
        for (rank, ts, dir, fid) in [
            (0usize, 10.0, FlowDir::Begin, 100u64),
            (1, 20.0, FlowDir::End, 100),
            (1, 25.0, FlowDir::Begin, 101),
            (2, 40.0, FlowDir::End, 101),
        ] {
            let mut e = ev(rank, "msg", "flow", ts, None);
            e.flow = Some((dir, fid));
            e.args.push(("coll".to_string(), Arg::Num(5.0)));
            events.push(e);
        }
        let a = analyze_events(&events, 0);
        assert_eq!(a.collectives.len(), 1);
        let c = &a.collectives[0];
        assert_eq!(c.op, "bcast");
        assert_eq!(c.instances, 1);
        assert_eq!(c.max_skew_ns, 30.0);
        assert_eq!(c.straggler, 2);
        assert_eq!(c.critical_hops, 2);
    }

    #[test]
    fn renderers_are_deterministic_and_flag_drops() {
        let events = vec![marker(0, 0.0, 4), ev(0, "gc", "mrt", 1.0, Some(2.0))];
        let a1 = analyze_events(&events, 3);
        let a2 = analyze_events(&events, 3);
        assert_eq!(a1.render_text(), a2.render_text());
        assert_eq!(a1.render_json(), a2.render_json());
        assert_eq!(a1.render_csv(), a2.render_csv());
        assert!(a1.render_text().contains("dropped 3 events"));
        assert!(a1.render_json().contains("\"dropped_events\":3"));
    }

    #[test]
    fn analysis_roundtrips_through_chrome_trace_files() {
        use crate::{install, uninstall, ObsOptions};
        install(0, ObsOptions::traced());
        crate::instant(
            "bench.size",
            "bench",
            vtime::VTime::from_nanos(0.0),
            vec![("bytes", ArgValue::U64(16))],
        );
        crate::span(
            "gc",
            "mrt",
            vtime::VTime::from_nanos(5.0),
            vtime::VTime::from_nanos(25.0),
            vec![],
        );
        crate::flow(
            "msg",
            "flow",
            vtime::VTime::from_nanos(10.0),
            FlowDir::Begin,
            12345,
            vec![("coll", ArgValue::U64(0))],
        );
        let report = JobReport {
            ranks: vec![uninstall().unwrap()],
            sim_perf: None,
        };
        let direct = analyze(&report);
        let (events, dropped) = events_from_chrome_trace(&report.chrome_trace_json()).unwrap();
        let via_file = analyze_events(&events, dropped);
        assert_eq!(direct, via_file, "file round trip must not change analysis");
        assert_eq!(direct.flows.sends, 1);
    }

    #[test]
    fn timeline_merges_ranks_and_ranks_links() {
        let doc = r#"{"schema":1,"kind":"telemetry","ranks":[
          {"rank":0,"label":"r0","series":{"interval_ns":100,"samples":[
            {"t_ns":0,"pvars":{"engine.deliveries":2,"fabric.retransmits":1,
              "fabric.link.0->1.bytes":800,"fabric.link.0->1.msgs":2,
              "pt2pt.unexpected_depth":{"last":1,"max":3}}},
            {"t_ns":200,"pvars":{"engine.deliveries":1,"fabric.retransmits":4}}]}},
          {"rank":1,"label":"r1","series":{"interval_ns":100,"samples":[
            {"t_ns":0,"pvars":{"engine.deliveries":5,
              "fabric.link.1->0.bytes":100,"fabric.link.1->0.msgs":1,
              "pt2pt.unexpected_depth":{"last":0,"max":7}}}]}}]}"#;
        let tl = timeline_from_json(doc).expect("valid telemetry doc");
        assert_eq!(tl.ranks, 2);
        assert_eq!(tl.interval_ns, 100.0);
        assert_eq!(tl.rows.len(), 2);
        assert_eq!(tl.rows[0].deliveries, 7, "interval 0 merges both ranks");
        assert_eq!(tl.rows[0].unexpected_max, 7, "gauge merges as max");
        assert_eq!(tl.peak_retransmit_t_ns(), Some(200.0));
        assert_eq!(tl.links[0].link, "0->1", "hottest link first");
        assert_eq!(tl.links[0].bytes, 800);
        assert_eq!(tl.links[1].msgs, 1);
        let text = tl.render_text();
        assert!(text.contains("retransmit peak"));
        assert!(text.contains("0->1"));
    }

    #[test]
    fn timeline_rejects_wrong_kind() {
        assert!(timeline_from_json(r#"{"kind":"incident","ranks":[]}"#).is_err());
    }

    #[test]
    fn incident_names_failed_rank_and_stranded_link() {
        // Rank 0's window: a send flow Begin towards rank 1 that nobody
        // received, newest event at 900 ns. Rank 1's window stops at
        // 400 ns — it diverged first and is the blamed rank.
        let doc = r#"{"schema":1,"kind":"incident",
          "reason":{"t_ns":1000,"kind":"watchdog","rank":0,"failed_rank":1,"detail":"stalled"},
          "ranks":[
            {"rank":0,"label":"r0",
             "incident":{"t_ns":1000,"kind":"watchdog","failed_rank":1,"detail":"stalled"},
             "flight":{"dropped":3,"events":[
               {"ph":"s","pid":0,"tid":0,"ts":0.5,"id":7,"name":"msg","cat":"flow",
                "args":{"dst":1,"bytes":64}},
               {"ph":"i","pid":0,"tid":0,"ts":0.9,"s":"t","name":"x","cat":"pt2pt","args":{}}]},
             "pvars":{}},
            {"rank":1,"label":"r1",
             "flight":{"dropped":0,"events":[
               {"ph":"i","pid":1,"tid":0,"ts":0.4,"s":"t","name":"y","cat":"pt2pt","args":{}}]},
             "pvars":{}}]}"#;
        let inc = incident_from_json(doc).expect("valid bundle");
        assert_eq!(inc.kind, "watchdog");
        assert_eq!(inc.failed_rank, 1);
        assert_eq!(inc.observer, 0);
        assert_eq!(inc.first_divergent, 1, "rank 1's window goes quiet first");
        assert_eq!(inc.suspect_links, vec![(0, 1, 1)]);
        assert_eq!(inc.ranks[0].dropped, 3);
        assert_eq!(inc.ranks[0].unmatched_sends, 1);
        assert_eq!(inc.ranks[1].last_event_ns, Some(400.0));
        let text = inc.render_text();
        assert!(text.contains("rank 1 failed"));
        assert!(text.contains("matches the blamed rank"));
        assert!(text.contains("0->1: 1 message(s)"));
    }

    #[test]
    fn incident_rejects_wrong_kind() {
        assert!(incident_from_json(r#"{"kind":"telemetry","ranks":[]}"#).is_err());
    }
}
