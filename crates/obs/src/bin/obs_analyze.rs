//! `obs-analyze` — offline analysis for virtual-time observability
//! artifacts.
//!
//! ```text
//! obs-analyze [--format text|json|csv] TRACE.json [TRACE.json ...]
//! obs-analyze --timeline [--format text|csv] TELEMETRY.json
//! obs-analyze --incident BUNDLE.json
//! ```
//!
//! The default mode loads one or more Chrome trace files written by
//! `ombj --trace-out` (or any `JobReport::chrome_trace_json` output),
//! reconstructs the causal message graph, and prints the
//! latency-attribution report: per-size GC/copy/staging/fabric/wait
//! shares, collective skew and critical chains, and the send↔recv flow
//! pairing check.
//!
//! `--timeline` reads a telemetry time-series document (`ombj
//! --telemetry-out`) and renders the per-interval breakdown plus the
//! per-link congestion table. `--incident` reads a fault-triggered
//! incident bundle (`ombj --incident-out`), reconstructs the last-window
//! causal graph, and names the failed and first-divergent ranks; it
//! exits 0 only when the bundle parses cleanly.

use obs::analyze;

fn usage() -> ! {
    eprintln!(
        "usage: obs-analyze [--format text|json|csv] TRACE.json [TRACE.json ...]\n\
         \x20      obs-analyze --timeline [--format text|csv] TELEMETRY.json\n\
         \x20      obs-analyze --incident BUNDLE.json"
    );
    std::process::exit(2)
}

fn read_or_die(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = "text".to_string();
    let mut mode = "trace";
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => format = it.next().cloned().unwrap_or_else(|| usage()),
            "--timeline" => mode = "timeline",
            "--incident" => mode = "incident",
            "-h" | "--help" => usage(),
            _ => paths.push(a.clone()),
        }
    }
    if paths.is_empty() || !matches!(format.as_str(), "text" | "json" | "csv") {
        usage();
    }

    match mode {
        "timeline" => {
            if paths.len() != 1 {
                usage();
            }
            match analyze::timeline_from_json(&read_or_die(&paths[0])) {
                Ok(tl) => match format.as_str() {
                    "csv" => print!("{}", tl.render_csv()),
                    _ => print!("{}", tl.render_text()),
                },
                Err(e) => {
                    eprintln!("error: parsing {}: {e}", paths[0]);
                    std::process::exit(1);
                }
            }
        }
        "incident" => {
            if paths.len() != 1 {
                usage();
            }
            match analyze::incident_from_json(&read_or_die(&paths[0])) {
                Ok(inc) => print!("{}", inc.render_text()),
                Err(e) => {
                    eprintln!("error: parsing {}: {e}", paths[0]);
                    std::process::exit(1);
                }
            }
        }
        _ => {
            let mut events = Vec::new();
            let mut dropped = 0u64;
            for path in &paths {
                let text = read_or_die(path);
                match analyze::events_from_chrome_trace(&text) {
                    Ok((evs, d)) => {
                        events.extend(evs);
                        dropped += d;
                    }
                    Err(e) => {
                        eprintln!("error: parsing {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            let analysis = analyze::analyze_events(&events, dropped);
            match format.as_str() {
                "text" => print!("{}", analysis.render_text()),
                "json" => print!("{}", analysis.render_json()),
                "csv" => print!("{}", analysis.render_csv()),
                _ => unreachable!(),
            }
        }
    }
}
