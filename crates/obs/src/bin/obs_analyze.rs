//! `obs-analyze` — offline latency attribution for virtual-time traces.
//!
//! ```text
//! obs-analyze [--format text|json|csv] TRACE.json [TRACE.json ...]
//! ```
//!
//! Loads one or more Chrome trace files written by `ombj --trace-out`
//! (or any `JobReport::chrome_trace_json` output), reconstructs the
//! causal message graph, and prints the latency-attribution report:
//! per-size GC/copy/staging/fabric/wait shares, collective skew and
//! critical chains, and the send↔recv flow pairing check.

use obs::analyze;

fn usage() -> ! {
    eprintln!("usage: obs-analyze [--format text|json|csv] TRACE.json [TRACE.json ...]");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = "text".to_string();
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => format = it.next().cloned().unwrap_or_else(|| usage()),
            "-h" | "--help" => usage(),
            _ => paths.push(a.clone()),
        }
    }
    if paths.is_empty() || !matches!(format.as_str(), "text" | "json" | "csv") {
        usage();
    }

    let mut events = Vec::new();
    let mut dropped = 0u64;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: reading {path}: {e}");
                std::process::exit(1);
            }
        };
        match analyze::events_from_chrome_trace(&text) {
            Ok((evs, d)) => {
                events.extend(evs);
                dropped += d;
            }
            Err(e) => {
                eprintln!("error: parsing {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    let analysis = analyze::analyze_events(&events, dropped);
    match format.as_str() {
        "text" => print!("{}", analysis.render_text()),
        "json" => print!("{}", analysis.render_json()),
        "csv" => print!("{}", analysis.render_csv()),
        _ => unreachable!(),
    }
}
