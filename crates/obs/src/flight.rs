//! Always-on flight recorder: a bounded last-N window of trace events.
//!
//! Full tracing (`ObsOptions::tracing`) keeps every event and is priced
//! accordingly — fine for a benchmark sweep, unaffordable for long or
//! large runs. The flight recorder reuses the same [`TraceRing`] but with
//! a small fixed capacity (default [`DEFAULT_FLIGHT_CAPACITY`]): the ring
//! always holds the *most recent* events, evicting oldest-first, and the
//! number of evictions is surfaced in the [`DROPPED_PVAR`] pvar so a
//! reader knows exactly how much history the window lost. The window is
//! what an incident bundle drains when a fault fires (see
//! [`crate::incident`]).
//!
//! Costs: zero virtual time (events only read clocks), and on the wall
//! clock a push is a `VecDeque` rotate — no allocation once the ring is
//! full.

use crate::trace::{TraceEvent, TraceRing};

/// Counts events evicted from the flight ring (window wraps).
pub const DROPPED_PVAR: &str = "flight.dropped";

/// Default flight-window size: large enough to hold the full protocol
/// exchange for the last few operations on a rank, small enough that a
/// 4k-rank incident bundle stays in the tens of megabytes.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 512;

/// A drained flight window: the last `events.len()` events recorded on a
/// rank, plus how many older events the window dropped to stay bounded.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightWindow {
    pub events: Vec<TraceEvent>,
    pub dropped: u64,
}

impl FlightWindow {
    pub(crate) fn from_ring(ring: TraceRing) -> Self {
        let (events, dropped) = ring.into_events();
        FlightWindow { events, dropped }
    }

    /// Virtual timestamp of the newest event in the window, if any.
    pub fn last_event_ns(&self) -> Option<f64> {
        self.events.last().map(|e| e.ts_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::instant("e", "test", vtime::VTime::from_nanos(i as f64), vec![])
    }

    #[test]
    fn window_keeps_newest_and_counts_drops_exactly() {
        let mut ring = TraceRing::new(4);
        for i in 0..10 {
            ring.push(ev(i));
        }
        let w = FlightWindow::from_ring(ring);
        assert_eq!(w.dropped, 6, "10 pushed into capacity 4 drops 6");
        let ts: Vec<f64> = w.events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![6.0, 7.0, 8.0, 9.0], "oldest-first eviction");
        assert_eq!(w.last_event_ns(), Some(9.0));
    }

    #[test]
    fn under_capacity_drops_nothing() {
        let mut ring = TraceRing::new(8);
        for i in 0..3 {
            ring.push(ev(i));
        }
        let w = FlightWindow::from_ring(ring);
        assert_eq!(w.dropped, 0);
        assert_eq!(w.events.len(), 3);
    }

    #[test]
    fn drained_order_is_stable_across_reruns() {
        let drain = || {
            let mut ring = TraceRing::new(3);
            for i in 0..7 {
                ring.push(ev(i));
            }
            FlightWindow::from_ring(ring)
        };
        assert_eq!(drain(), drain());
    }
}
