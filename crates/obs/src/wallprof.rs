//! `wallprof` — wall-clock self-profiling of the *simulator itself*: the
//! real-time mirror of the virtual-time tracer.
//!
//! Everything else in `obs` measures the *simulated* program in virtual
//! time. This module measures the *simulator* in real time: scoped
//! exclusive timers over its hot subsystems (engine dispatch, fabric
//! injection, tag matching, reliability framing, schedule progression,
//! buffer pooling, and the observability record path itself) plus flat
//! counters (injections, deliveries, match comparisons, allocations, …).
//! Per rank-thread totals are harvested into [`RankWallProf`] and merged
//! into a job-level [`SimPerf`] with the headline metrics: events/sec,
//! virtual-ns simulated per wall-second, allocations per message, and
//! per-subsystem wall-time shares.
//!
//! ## Determinism contract
//!
//! Wall-clock readings differ on every run, so they must never leak into
//! a determinism digest: they are not pvars, they never enter the trace
//! ring, `JobReport::pvar_dump` / `chrome_trace_json` ignore them, and
//! the report equality impls skip them (see the manual `PartialEq` on
//! `RankReport` / `JobReport`). Profiling also never *charges* virtual
//! time — with profiling on or off, every simulated number is
//! bit-identical, enforced by workspace tests.
//!
//! Like the recorder, the state is a thread-local that every probe
//! checks with a single `Cell` read when profiling is off.

use std::cell::{Cell, RefCell};
use std::time::Instant;

use crate::json::JsonBuf;

/// Number of tracked subsystems (== `SUBSYSTEM_NAMES.len()`).
pub const NSUBS: usize = 7;

/// Simulator subsystems whose exclusive wall time is attributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Subsystem {
    /// Engine event dispatch (`Engine::handle`).
    Engine = 0,
    /// Fabric injection + delivery bookkeeping.
    Fabric = 1,
    /// Tag-matching scans (posted list + unexpected queue).
    Match = 2,
    /// Reliability-sublayer framing (checksums, admission, retransmit).
    Reliability = 3,
    /// Non-blocking schedule progression polls.
    Sched = 4,
    /// Buffer-pool acquire/release and staging allocations.
    Pool = 5,
    /// Pvar / tracer record cost (the observability layer itself).
    Obs = 6,
}

/// Display names, indexed by `Subsystem as usize`.
pub const SUBSYSTEM_NAMES: [&str; NSUBS] = [
    "engine",
    "fabric",
    "match",
    "reliability",
    "sched",
    "pool",
    "obs",
];

/// Number of flat counters (== `COUNTER_NAMES.len()`).
pub const NCOUNTERS: usize = 9;

/// Flat wall-side counters. These mirror some pvars but live outside the
/// determinism digests, so they may count real-time-dependent work (e.g.
/// per-scan comparisons) that a pvar never could.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Messages handed to the fabric (including retransmit copies).
    Injections = 0,
    /// Deliveries dispatched by the engine.
    Deliveries = 1,
    /// Tag-matching scan operations.
    MatchScans = 2,
    /// Envelope comparisons performed across all scans.
    MatchComparisons = 3,
    /// Non-blocking schedule progression polls.
    SchedPolls = 4,
    /// Buffer-pool acquires (hits + misses).
    PoolAcquires = 5,
    /// Payload/staging allocations (message copies, pool misses).
    Allocs = 6,
    /// MPI-level messages sent.
    Messages = 7,
    /// Pvar/trace record operations.
    ObsRecords = 8,
}

/// Display names, indexed by `Counter as usize`.
pub const COUNTER_NAMES: [&str; NCOUNTERS] = [
    "injections",
    "deliveries",
    "match_scans",
    "match_comparisons",
    "sched_polls",
    "pool_acquires",
    "allocs",
    "messages",
    "obs_records",
];

/// Per-thread profiling state. `Cell`-based so the hot probes never pay
/// a `RefCell` borrow; only the (cold) span stack uses one.
struct WpState {
    active: Cell<bool>,
    started: Cell<Option<Instant>>,
    subs_ns: [Cell<u64>; NSUBS],
    counters: [Cell<u64>; NCOUNTERS],
    /// Subsystem currently accruing exclusive time, and since when.
    cur: Cell<Option<usize>>,
    cur_since: Cell<Option<Instant>>,
    /// Interrupted subsystems (`span` nests; exclusive time means the
    /// inner span's cost is *not* double-counted in the outer one).
    stack: RefCell<Vec<Option<usize>>>,
}

thread_local! {
    static WP: WpState = WpState {
        active: Cell::new(false),
        started: Cell::new(None),
        subs_ns: std::array::from_fn(|_| Cell::new(0)),
        counters: std::array::from_fn(|_| Cell::new(0)),
        cur: Cell::new(None),
        cur_since: Cell::new(None),
        stack: RefCell::new(Vec::with_capacity(8)),
    };
}

/// Activate profiling for this thread, zeroing all state.
pub fn install() {
    crate::set_gate(crate::GATE_WALLPROF, true);
    WP.with(|s| {
        s.active.set(true);
        s.started.set(Some(Instant::now()));
        for c in &s.subs_ns {
            c.set(0);
        }
        for c in &s.counters {
            c.set(0);
        }
        s.cur.set(None);
        s.cur_since.set(None);
        s.stack.borrow_mut().clear();
    });
}

/// Deactivate without harvesting (used when a recorder is reinstalled
/// with profiling off, so stale state never leaks into a later harvest).
pub fn reset() {
    crate::set_gate(crate::GATE_WALLPROF, false);
    WP.with(|s| s.active.set(false));
}

/// Deactivate and return this thread's totals; `None` if profiling was
/// never activated.
pub fn harvest() -> Option<RankWallProf> {
    crate::set_gate(crate::GATE_WALLPROF, false);
    WP.with(|s| {
        if !s.active.get() {
            return None;
        }
        s.active.set(false);
        let wall_ns = s
            .started
            .take()
            .map(|t| t.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        Some(RankWallProf {
            wall_ns,
            subs_ns: std::array::from_fn(|i| s.subs_ns[i].get()),
            counters: std::array::from_fn(|i| s.counters[i].get()),
        })
    })
}

/// Whether profiling is active on this thread.
#[inline]
pub fn enabled() -> bool {
    WP.with(|s| s.active.get())
}

/// Bump counter `c` by `n` (one thread-local read when inactive).
#[inline]
pub fn add(c: Counter, n: u64) {
    WP.with(|s| {
        if s.active.get() {
            let cell = &s.counters[c as usize];
            cell.set(cell.get() + n);
        }
    });
}

/// RAII guard for an exclusive-time subsystem span.
#[must_use = "the span ends when the guard drops"]
pub struct SpanGuard {
    live: bool,
}

/// Enter subsystem `sub`: wall time accrues to it until the guard drops
/// (or a nested span preempts it). Inert — a single thread-local read —
/// when profiling is off.
#[inline]
pub fn span(sub: Subsystem) -> SpanGuard {
    let live = WP.with(|s| {
        if !s.active.get() {
            return false;
        }
        enter(s, sub as usize);
        true
    });
    SpanGuard { live }
}

/// One probe for the observability record path: counts an obs record and
/// opens an `Obs` span in a single thread-local access.
#[inline]
pub fn obs_record_span() -> SpanGuard {
    let live = WP.with(|s| {
        if !s.active.get() {
            return false;
        }
        let cell = &s.counters[Counter::ObsRecords as usize];
        cell.set(cell.get() + 1);
        enter(s, Subsystem::Obs as usize);
        true
    });
    SpanGuard { live }
}

fn enter(s: &WpState, sub: usize) {
    let now = Instant::now();
    if let (Some(cur), Some(since)) = (s.cur.get(), s.cur_since.get()) {
        let cell = &s.subs_ns[cur];
        cell.set(cell.get() + now.duration_since(since).as_nanos() as u64);
    }
    s.stack.borrow_mut().push(s.cur.get());
    s.cur.set(Some(sub));
    s.cur_since.set(Some(now));
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        WP.with(|s| {
            // Harvested mid-span: totals are already frozen.
            if !s.active.get() {
                return;
            }
            let now = Instant::now();
            if let (Some(cur), Some(since)) = (s.cur.get(), s.cur_since.get()) {
                let cell = &s.subs_ns[cur];
                cell.set(cell.get() + now.duration_since(since).as_nanos() as u64);
            }
            let prev = s.stack.borrow_mut().pop().flatten();
            s.cur.set(prev);
            s.cur_since.set(prev.map(|_| now));
        });
    }
}

/// One rank-thread's harvested totals.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RankWallProf {
    /// Wall time from install to harvest (the rank thread's lifetime).
    pub wall_ns: u64,
    /// Exclusive wall nanoseconds per subsystem.
    pub subs_ns: [u64; NSUBS],
    /// Flat counters.
    pub counters: [u64; NCOUNTERS],
}

impl RankWallProf {
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// The simulator's unit of work: fabric injections + deliveries.
    pub fn events(&self) -> u64 {
        self.counter(Counter::Injections) + self.counter(Counter::Deliveries)
    }

    /// Accumulate `other` (counters and subsystem times sum; wall takes
    /// the max — concurrent rank threads overlap in wall time).
    pub fn merge(&mut self, other: &RankWallProf) {
        self.wall_ns = self.wall_ns.max(other.wall_ns);
        for i in 0..NSUBS {
            self.subs_ns[i] += other.subs_ns[i];
        }
        for i in 0..NCOUNTERS {
            self.counters[i] += other.counters[i];
        }
    }
}

/// One rank's slice of the job-level profile.
#[derive(Debug, Clone)]
pub struct RankPerf {
    pub rank: usize,
    /// Final virtual clock of this rank (ns) — deterministic.
    pub virtual_ns: f64,
    pub prof: RankWallProf,
}

/// The job-level self-profile merged into `JobReport` (outside every
/// determinism digest — see the module docs).
#[derive(Debug, Clone)]
pub struct SimPerf {
    /// Cluster engine the job ran under (`"threaded"` or `"event"`).
    /// Events are counted per rank either way (injections + deliveries
    /// through each rank's endpoint), so `events/sec` is directly
    /// comparable across engines.
    pub engine: &'static str,
    /// Wall time of the whole job as measured by the harness (ns).
    pub wall_ns: u64,
    /// Final virtual clock of the job: max across ranks (ns).
    pub virtual_ns: f64,
    /// Per-rank detail, rank order.
    pub ranks: Vec<RankPerf>,
}

impl Default for SimPerf {
    fn default() -> Self {
        SimPerf {
            engine: "threaded",
            wall_ns: 0,
            virtual_ns: 0.0,
            ranks: Vec::new(),
        }
    }
}

impl SimPerf {
    /// Assemble from per-rank harvests plus the harness wall measurement
    /// (threaded-engine label; see [`SimPerf::from_ranks_on`]).
    pub fn from_ranks(wall_ns: u64, ranks: Vec<RankPerf>) -> SimPerf {
        Self::from_ranks_on("threaded", wall_ns, ranks)
    }

    /// [`SimPerf::from_ranks`] with an explicit engine label.
    pub fn from_ranks_on(engine: &'static str, wall_ns: u64, ranks: Vec<RankPerf>) -> SimPerf {
        let virtual_ns = ranks.iter().map(|r| r.virtual_ns).fold(0.0, f64::max);
        SimPerf {
            engine,
            wall_ns,
            virtual_ns,
            ranks,
        }
    }

    /// Cross-rank totals (counters/subsystem ns summed, wall = max rank).
    pub fn totals(&self) -> RankWallProf {
        let mut out = RankWallProf::default();
        for r in &self.ranks {
            out.merge(&r.prof);
        }
        out
    }

    fn wall_secs(&self) -> f64 {
        self.wall_ns as f64 / 1e9
    }

    /// Total simulator events (injections + deliveries) across ranks.
    pub fn events(&self) -> u64 {
        self.ranks.iter().map(|r| r.prof.events()).sum()
    }

    /// Headline: simulator events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.events() as f64 / self.wall_secs()
    }

    /// Headline: virtual nanoseconds simulated per wall-clock second.
    pub fn vns_per_wall_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.virtual_ns / self.wall_secs()
    }

    /// Headline: payload allocations per MPI-level message.
    pub fn allocs_per_msg(&self) -> f64 {
        let t = self.totals();
        let msgs = t.counter(Counter::Messages);
        if msgs == 0 {
            return 0.0;
        }
        t.counter(Counter::Allocs) as f64 / msgs as f64
    }

    /// Share of the ranks' summed thread lifetime spent (exclusively) in
    /// subsystem `i`; the remainder is "other/idle" (app code, thread
    /// parking).
    pub fn subsystem_share_pct(&self, i: usize) -> f64 {
        let busy_base: u64 = self.ranks.iter().map(|r| r.prof.wall_ns).sum();
        if busy_base == 0 {
            return 0.0;
        }
        100.0 * self.totals().subs_ns[i] as f64 / busy_base as f64
    }

    /// The `obs-perf` report: a `#`-prefixed block usable directly as a
    /// text-report footer.
    pub fn render_text(&self) -> String {
        let t = self.totals();
        let mut out = String::new();
        out.push_str(&format!(
            "# sim-perf: {} ranks ({} engine), wall {:.2} ms, virtual {:.3} ms\n",
            self.ranks.len(),
            self.engine,
            self.wall_ns as f64 / 1e6,
            self.virtual_ns / 1e6,
        ));
        out.push_str(&format!(
            "#   events/sec   {:>12.0}  (injections {}, deliveries {})\n",
            self.events_per_sec(),
            t.counter(Counter::Injections),
            t.counter(Counter::Deliveries),
        ));
        out.push_str(&format!(
            "#   vns/wall-sec {:>12.3e}\n",
            self.vns_per_wall_sec()
        ));
        out.push_str(&format!(
            "#   allocs/msg   {:>12.2}  (allocs {}, messages {})\n",
            self.allocs_per_msg(),
            t.counter(Counter::Allocs),
            t.counter(Counter::Messages),
        ));
        let scans = t.counter(Counter::MatchScans);
        let cmps = t.counter(Counter::MatchComparisons);
        out.push_str(&format!(
            "#   match        scans {scans}  comparisons {cmps}  ({:.2}/scan)\n",
            if scans == 0 {
                0.0
            } else {
                cmps as f64 / scans as f64
            }
        ));
        out.push_str(&format!(
            "#   sched polls  {}  pool acquires {}  obs records {}\n",
            t.counter(Counter::SchedPolls),
            t.counter(Counter::PoolAcquires),
            t.counter(Counter::ObsRecords),
        ));
        out.push_str("#   wall-time shares:");
        let mut accounted = 0.0;
        for (i, name) in SUBSYSTEM_NAMES.iter().enumerate() {
            let pct = self.subsystem_share_pct(i);
            accounted += pct;
            out.push_str(&format!(" {name} {pct:.1}%"));
        }
        out.push_str(&format!(" other/idle {:.1}%\n", 100.0 - accounted));
        out
    }

    /// Write the `sim_perf` JSON object (the `ombj --format json` block
    /// and the per-basket-entry body of `BENCH_*.json`).
    pub fn write_json(&self, w: &mut JsonBuf) {
        let t = self.totals();
        w.begin_obj();
        w.key("engine");
        w.str_val(self.engine);
        w.key("ranks");
        w.uint_val(self.ranks.len() as u64);
        w.key("wall_ms");
        w.num_val(self.wall_ns as f64 / 1e6);
        w.key("virtual_ms");
        w.num_val(self.virtual_ns / 1e6);
        w.key("events");
        w.uint_val(self.events());
        w.key("events_per_sec");
        w.num_val(self.events_per_sec());
        w.key("vns_per_ws");
        w.num_val(self.vns_per_wall_sec());
        w.key("alloc_per_msg");
        w.num_val(self.allocs_per_msg());
        w.key("counters");
        w.begin_obj();
        for (i, name) in COUNTER_NAMES.iter().enumerate() {
            w.key(name);
            w.uint_val(t.counters[i]);
        }
        w.end_obj();
        w.key("subsystems");
        w.begin_arr();
        for (i, name) in SUBSYSTEM_NAMES.iter().enumerate() {
            w.begin_obj();
            w.key("name");
            w.str_val(name);
            w.key("wall_ns");
            w.uint_val(t.subs_ns[i]);
            w.key("share_pct");
            w.num_val(self.subsystem_share_pct(i));
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(ns: u64) {
        let t0 = Instant::now();
        while (t0.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn inactive_probes_are_inert() {
        reset();
        add(Counter::Injections, 3);
        {
            let _g = span(Subsystem::Engine);
        }
        assert!(!enabled());
        assert!(harvest().is_none());
    }

    #[test]
    fn counters_and_spans_accumulate() {
        install();
        add(Counter::Messages, 2);
        add(Counter::Allocs, 3);
        {
            let _g = span(Subsystem::Engine);
            spin(200_000);
        }
        let p = harvest().expect("was active");
        assert_eq!(p.counter(Counter::Messages), 2);
        assert_eq!(p.counter(Counter::Allocs), 3);
        assert!(p.subs_ns[Subsystem::Engine as usize] >= 100_000);
        assert!(p.wall_ns >= p.subs_ns[Subsystem::Engine as usize]);
        // A second harvest yields nothing.
        assert!(harvest().is_none());
    }

    #[test]
    fn nested_spans_attribute_exclusive_time() {
        install();
        {
            let _outer = span(Subsystem::Engine);
            spin(100_000);
            {
                let _inner = span(Subsystem::Match);
                spin(100_000);
            }
            spin(100_000);
        }
        let p = harvest().unwrap();
        let engine = p.subs_ns[Subsystem::Engine as usize];
        let matching = p.subs_ns[Subsystem::Match as usize];
        assert!(engine >= 150_000, "engine exclusive {engine}");
        assert!(matching >= 50_000, "match exclusive {matching}");
        // Exclusive attribution: the sum cannot exceed total wall time
        // (inclusive accounting would make engine alone ≈ wall).
        assert!(engine + matching <= p.wall_ns);
    }

    #[test]
    fn simperf_headline_metrics() {
        let mut prof = RankWallProf {
            wall_ns: 1_000_000, // 1 ms
            ..Default::default()
        };
        prof.counters[Counter::Injections as usize] = 600;
        prof.counters[Counter::Deliveries as usize] = 400;
        prof.counters[Counter::Messages as usize] = 500;
        prof.counters[Counter::Allocs as usize] = 1000;
        prof.subs_ns[Subsystem::Engine as usize] = 250_000;
        let perf = SimPerf::from_ranks(
            2_000_000,
            vec![RankPerf {
                rank: 0,
                virtual_ns: 4_000_000.0,
                prof,
            }],
        );
        assert_eq!(perf.events(), 1000);
        assert!((perf.events_per_sec() - 500_000.0).abs() < 1e-6);
        assert!((perf.vns_per_wall_sec() - 2e9).abs() < 1.0);
        assert!((perf.allocs_per_msg() - 2.0).abs() < 1e-12);
        assert!((perf.subsystem_share_pct(Subsystem::Engine as usize) - 25.0).abs() < 1e-9);
        let text = perf.render_text();
        assert!(text.contains("events/sec"), "{text}");
        assert!(text.contains("other/idle"), "{text}");
        assert!(text.lines().all(|l| l.starts_with('#')), "{text}");
        let mut w = JsonBuf::new();
        perf.write_json(&mut w);
        let j = w.finish();
        let v = crate::json::parse(&j).expect("sim_perf json parses");
        assert_eq!(v.get("events").and_then(|e| e.as_f64()), Some(1000.0));
        assert!(v.get("subsystems").and_then(|s| s.as_arr()).is_some());
    }

    #[test]
    fn empty_simperf_divides_safely() {
        let perf = SimPerf::default();
        assert_eq!(perf.events_per_sec(), 0.0);
        assert_eq!(perf.vns_per_wall_sec(), 0.0);
        assert_eq!(perf.allocs_per_msg(), 0.0);
        assert_eq!(perf.subsystem_share_pct(0), 0.0);
    }
}
