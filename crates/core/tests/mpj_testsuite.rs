//! The MVAPICH2-J functional test-cases.
//!
//! "The MVAPICH2 Java bindings are also equipped with a number of
//! test-cases adopted from the MPJ Express library" — this file is that
//! suite's analogue: one test per classic MPJ Express test program,
//! covering every primitive type, both buffer kinds, and every
//! collective, on a 2×2 simulated cluster.

use mvapich2j::datatype::{BYTE, CHAR, DOUBLE, FLOAT, INT, LONG, SHORT};
use mvapich2j::{run_job, JobConfig, ReduceOp, Topology};

fn cfg() -> JobConfig {
    JobConfig::mvapich2j(Topology::new(2, 2))
}

macro_rules! typed_roundtrip {
    ($name:ident, $ty:ty, $gen:expr) => {
        #[test]
        fn $name() {
            run_job(JobConfig::mvapich2j(Topology::single_node(2)), |env| {
                let w = env.world();
                let n = 33; // odd length: exercises ragged tails
                let gen = $gen;
                if env.rank() == 0 {
                    let arr = env.new_array::<$ty>(n).unwrap();
                    for i in 0..n {
                        env.array_set(arr, i, gen(i)).unwrap();
                    }
                    env.send_array(arr, n as i32, 1, 3, w).unwrap();
                } else {
                    let arr = env.new_array::<$ty>(n).unwrap();
                    let st = env.recv_array(arr, n as i32, 0, 3, w).unwrap();
                    assert_eq!(st.bytes, n * std::mem::size_of::<$ty>());
                    for i in 0..n {
                        assert_eq!(env.array_get(arr, i).unwrap(), gen(i), "element {i}");
                    }
                }
            });
        }
    };
}

// SendRecvTest for every primitive type (MPJ Express: ByteTest.java etc.)
typed_roundtrip!(sendrecv_byte, i8, |i: usize| (i as i8).wrapping_mul(3));
typed_roundtrip!(sendrecv_boolean, bool, |i: usize| i % 3 == 0);
typed_roundtrip!(sendrecv_char, u16, |i: usize| 0x2600 + i as u16);
typed_roundtrip!(sendrecv_short, i16, |i: usize| (i as i16) - 7);
typed_roundtrip!(sendrecv_int, i32, |i: usize| (i as i32).wrapping_mul(-97));
typed_roundtrip!(sendrecv_long, i64, |i: usize| (i as i64) << 33);
typed_roundtrip!(sendrecv_float, f32, |i: usize| i as f32 / 3.0);
typed_roundtrip!(sendrecv_double, f64, |i: usize| i as f64 * 1e-3 + 0.5);

#[test]
fn isend_irecv_overlap_window() {
    // MPJ Express IsendIrecvTest: a window of overlapping transfers.
    run_job(cfg(), |env| {
        let w = env.world();
        let me = env.rank();
        let peer = me ^ 1;
        let window = 12;
        let mut sends = Vec::new();
        let arrs: Vec<_> = (0..window)
            .map(|_| env.new_array::<i32>(16).unwrap())
            .collect();
        let mut recvs = Vec::new();
        for (k, &a) in arrs.iter().enumerate() {
            recvs.push(env.irecv_array(a, 16, peer as i32, k as i32, w).unwrap());
        }
        for k in 0..window {
            let s = env.new_array::<i32>(16).unwrap();
            for i in 0..16 {
                env.array_set(s, i, (me * 1000 + k * 16 + i) as i32)
                    .unwrap();
            }
            sends.push(env.isend_array(s, 16, peer, k as i32, w).unwrap());
        }
        env.waitall(sends).unwrap();
        env.waitall(recvs).unwrap();
        for (k, &a) in arrs.iter().enumerate() {
            for i in 0..16 {
                assert_eq!(
                    env.array_get(a, i).unwrap(),
                    (peer * 1000 + k * 16 + i) as i32
                );
            }
        }
    });
}

#[test]
fn bcast_all_roots() {
    // BcastTest: every rank takes a turn as root.
    run_job(cfg(), |env| {
        let w = env.world();
        let p = env.size();
        for root in 0..p {
            let arr = env.new_array::<i64>(9).unwrap();
            if env.rank() == root {
                for i in 0..9 {
                    env.array_set(arr, i, (root * 100 + i) as i64).unwrap();
                }
            }
            env.bcast_array(arr, 9, root, w).unwrap();
            for i in 0..9 {
                assert_eq!(env.array_get(arr, i).unwrap(), (root * 100 + i) as i64);
            }
            env.free_array(arr).unwrap();
        }
    });
}

#[test]
fn reduce_and_allreduce_every_op() {
    run_job(cfg(), |env| {
        let w = env.world();
        let me = env.rank() as i32;
        let p = env.size() as i32;
        for op in [
            ReduceOp::Sum,
            ReduceOp::Prod,
            ReduceOp::Min,
            ReduceOp::Max,
            ReduceOp::Band,
            ReduceOp::Bor,
            ReduceOp::Bxor,
            ReduceOp::Land,
            ReduceOp::Lor,
        ] {
            let send = env.new_array::<i32>(2).unwrap();
            env.array_set(send, 0, me + 1).unwrap();
            env.array_set(send, 1, me % 2).unwrap();
            let recv = env.new_array::<i32>(2).unwrap();
            env.allreduce_array(send, recv, 2, op, w).unwrap();
            // Reference over ranks 0..p.
            let fold = |f: &dyn Fn(i32, i32) -> i32, init: (i32, i32)| -> (i32, i32) {
                (1..p).fold(init, |acc, r| (f(acc.0, r + 1), f(acc.1, r % 2)))
            };
            let want = match op {
                ReduceOp::Sum => fold(&|a, b| a.wrapping_add(b), (1, 0)),
                ReduceOp::Prod => fold(&|a, b| a.wrapping_mul(b), (1, 0)),
                ReduceOp::Min => fold(&|a, b| a.min(b), (1, 0)),
                ReduceOp::Max => fold(&|a, b| a.max(b), (1, 0)),
                ReduceOp::Band => fold(&|a, b| a & b, (1, 0)),
                ReduceOp::Bor => fold(&|a, b| a | b, (1, 0)),
                ReduceOp::Bxor => fold(&|a, b| a ^ b, (1, 0)),
                ReduceOp::Land => fold(&|a, b| ((a != 0) && (b != 0)) as i32, (1, 0)),
                ReduceOp::Lor => fold(&|a, b| ((a != 0) || (b != 0)) as i32, (1, 0)),
            };
            assert_eq!(env.array_get(recv, 0).unwrap(), want.0, "{op:?} lane 0");
            assert_eq!(env.array_get(recv, 1).unwrap(), want.1, "{op:?} lane 1");
            env.free_array(send).unwrap();
            env.free_array(recv).unwrap();
        }
    });
}

#[test]
fn gather_scatter_inverse() {
    // GatherTest + ScatterTest: scatter(gather(x)) == x.
    run_job(cfg(), |env| {
        let w = env.world();
        let me = env.rank();
        let p = env.size();
        let mine = env.new_array::<f64>(3).unwrap();
        for i in 0..3 {
            env.array_set(mine, i, (me * 10 + i) as f64).unwrap();
        }
        let all = env.new_array::<f64>(3 * p).unwrap();
        let out = (me == 1).then_some(all);
        env.gather_array(mine, out, 3, 1, w).unwrap();
        let back = env.new_array::<f64>(3).unwrap();
        let src = (me == 1).then_some(all);
        env.scatter_array(src, back, 3, 1, w).unwrap();
        for i in 0..3 {
            assert_eq!(
                env.array_get(back, i).unwrap(),
                env.array_get(mine, i).unwrap()
            );
        }
    });
}

#[test]
fn allgather_and_alltoall_buffers() {
    // Buffer-API coverage of the data-movement collectives.
    run_job(cfg(), |env| {
        let w = env.world();
        let me = env.rank();
        let p = env.size();

        let send = env.new_direct(8);
        env.direct_put::<i32>(send, 0, me as i32).unwrap();
        env.direct_put::<i32>(send, 4, -(me as i32)).unwrap();
        let recv = env.new_direct(8 * p);
        env.allgather_buffer(send, recv, 2, &INT, w).unwrap();
        for r in 0..p {
            assert_eq!(env.direct_get::<i32>(recv, r * 8).unwrap(), r as i32);
            assert_eq!(env.direct_get::<i32>(recv, r * 8 + 4).unwrap(), -(r as i32));
        }

        let a2a_send = env.new_direct(4 * p);
        for d in 0..p {
            env.direct_put::<i32>(a2a_send, d * 4, (me * 10 + d) as i32)
                .unwrap();
        }
        let a2a_recv = env.new_direct(4 * p);
        env.alltoall_buffer(a2a_send, a2a_recv, 1, &INT, w).unwrap();
        for s in 0..p {
            assert_eq!(
                env.direct_get::<i32>(a2a_recv, s * 4).unwrap(),
                (s * 10 + me) as i32
            );
        }
    });
}

#[test]
fn reduce_buffer_to_every_root() {
    run_job(cfg(), |env| {
        let w = env.world();
        let me = env.rank();
        let p = env.size();
        for root in 0..p {
            let send = env.new_direct(16);
            for i in 0..2 {
                env.direct_put::<f64>(send, i * 8, (me + i) as f64).unwrap();
            }
            let recv = env.new_direct(16);
            let out = (me == root).then_some(recv);
            env.reduce_buffer(send, out, 2, &DOUBLE, ReduceOp::Sum, root, w)
                .unwrap();
            if me == root {
                let want0: f64 = (0..p).map(|r| r as f64).sum();
                assert_eq!(env.direct_get::<f64>(recv, 0).unwrap(), want0);
                assert_eq!(env.direct_get::<f64>(recv, 8).unwrap(), want0 + p as f64);
            }
            env.free_direct(send).unwrap();
            env.free_direct(recv).unwrap();
        }
    });
}

#[test]
fn vectored_collectives_buffers() {
    // GathervTest/ScattervTest/AllgathervTest over the buffer API with
    // per-rank counts r+1.
    run_job(cfg(), |env| {
        let w = env.world();
        let me = env.rank();
        let p = env.size();
        let counts: Vec<i32> = (0..p).map(|r| r as i32 + 1).collect();
        let displs: Vec<i32> = {
            let mut d = vec![0i32];
            for r in 0..p - 1 {
                d.push(d[r] + counts[r]);
            }
            d
        };
        let total: i32 = counts.iter().sum();

        let send = env.new_direct(4 * (me + 1));
        for i in 0..=me {
            env.direct_put::<i32>(send, i * 4, (me * 100 + i) as i32)
                .unwrap();
        }
        let recv = env.new_direct(4 * total as usize);
        env.allgatherv_buffer(send, me as i32 + 1, recv, &counts, &displs, &INT, w)
            .unwrap();
        for r in 0..p {
            for i in 0..=r {
                assert_eq!(
                    env.direct_get::<i32>(recv, (displs[r] as usize + i) * 4)
                        .unwrap(),
                    (r * 100 + i) as i32,
                    "allgatherv rank {r} element {i}"
                );
            }
        }

        // Scatterv back out from rank 0.
        let svsrc = (me == 0).then_some(recv);
        let dst = env.new_direct(4 * (me + 1));
        env.scatterv_buffer(svsrc, &counts, &displs, dst, me as i32 + 1, &INT, 0, w)
            .unwrap();
        for i in 0..=me {
            assert_eq!(
                env.direct_get::<i32>(dst, i * 4).unwrap(),
                (me * 100 + i) as i32
            );
        }
    });
}

#[test]
fn alltoallv_arrays_square() {
    run_job(cfg(), |env| {
        let w = env.world();
        let me = env.rank() as i32;
        let p = env.size();
        let counts = vec![2i32; p];
        let displs: Vec<i32> = (0..p).map(|r| 2 * r as i32).collect();
        let send = env.new_array::<i16>(2 * p).unwrap();
        for d in 0..p {
            env.array_set(send, 2 * d, (me * 100 + d as i32) as i16)
                .unwrap();
            env.array_set(send, 2 * d + 1, -((me * 100 + d as i32) as i16))
                .unwrap();
        }
        let recv = env.new_array::<i16>(2 * p).unwrap();
        env.alltoallv_array(send, &counts, &displs, recv, &counts, &displs, w)
            .unwrap();
        for s in 0..p {
            let want = (s as i32 * 100 + me) as i16;
            assert_eq!(env.array_get(recv, 2 * s).unwrap(), want);
            assert_eq!(env.array_get(recv, 2 * s + 1).unwrap(), -want);
        }
    });
}

#[test]
fn group_operations() {
    // GroupTest: incl/excl/union/intersection through the bindings.
    run_job(cfg(), |env| {
        let w = env.world();
        let g = env.comm_group(w).unwrap();
        assert_eq!(g.size(), 4);
        let evens = g.incl(&[0, 2]).unwrap();
        let odds = g.excl(&[0, 2]).unwrap();
        assert_eq!(evens.ranks(), &[0, 2]);
        assert_eq!(odds.ranks(), &[1, 3]);
        assert_eq!(evens.union(&odds).size(), 4);
        assert_eq!(evens.intersection(&odds).size(), 0);
        // comm_create yields a communicator only on members.
        let sub = env.comm_create(w, &evens).unwrap();
        match (env.rank() % 2, sub) {
            (0, Some(c)) => {
                assert_eq!(env.comm_size(c).unwrap(), 2);
                let arr = env.new_array::<i32>(1).unwrap();
                env.array_set(arr, 0, env.rank() as i32).unwrap();
                let out = env.new_array::<i32>(1).unwrap();
                env.allreduce_array(arr, out, 1, ReduceOp::Sum, c).unwrap();
                assert_eq!(env.array_get(out, 0).unwrap(), 2); // 0 + 2
            }
            (1, None) => {}
            other => panic!("unexpected comm_create outcome: {:?}", other.0),
        }
    });
}

#[test]
fn status_fields_and_any_source() {
    run_job(cfg(), |env| {
        let w = env.world();
        let me = env.rank();
        if me == 0 {
            // Receive from anyone, twice; sources must be 1 and 2 in some
            // order, tags echo the sender.
            let mut seen = Vec::new();
            for _ in 0..2 {
                let arr = env.new_array::<i8>(4).unwrap();
                let st = env.recv_array(arr, 4, -1, 5, w).unwrap();
                seen.push(st.source);
                assert_eq!(st.tag, 5);
                assert_eq!(st.count(&BYTE), 4);
            }
            seen.sort();
            assert_eq!(seen, vec![1, 2]);
        } else if me <= 2 {
            let arr = env.new_array::<i8>(4).unwrap();
            env.send_array(arr, 4, 0, 5, w).unwrap();
        }
        env.barrier(w).unwrap();
    });
}

#[test]
fn mixed_types_share_the_wire() {
    // CHAR/SHORT/FLOAT/LONG interleaved on distinct tags.
    run_job(cfg(), |env| {
        let w = env.world();
        let me = env.rank();
        if me == 0 {
            let c = env.new_array::<u16>(3).unwrap();
            env.array_write(c, 0, &[10u16, 20, 30]).unwrap();
            env.send_array(c, 3, 1, 1, w).unwrap();
            let s = env.new_array::<i16>(2).unwrap();
            env.array_write(s, 0, &[-5i16, 5]).unwrap();
            env.send_array(s, 2, 1, 2, w).unwrap();
            let f = env.new_array::<f32>(2).unwrap();
            env.array_write(f, 0, &[1.5f32, -2.5]).unwrap();
            env.send_array(f, 2, 1, 3, w).unwrap();
            let l = env.new_array::<i64>(1).unwrap();
            env.array_write(l, 0, &[i64::MIN]).unwrap();
            env.send_array(l, 1, 1, 4, w).unwrap();
        } else if me == 1 {
            // Receive out of order: 4, 1, 3, 2.
            let l = env.new_array::<i64>(1).unwrap();
            env.recv_array(l, 1, 0, 4, w).unwrap();
            assert_eq!(env.array_get(l, 0).unwrap(), i64::MIN);
            let c = env.new_array::<u16>(3).unwrap();
            env.recv_array(c, 3, 0, 1, w).unwrap();
            assert_eq!(env.array_get(c, 2).unwrap(), 30);
            let f = env.new_array::<f32>(2).unwrap();
            env.recv_array(f, 2, 0, 3, w).unwrap();
            assert_eq!(env.array_get(f, 1).unwrap(), -2.5);
            let s = env.new_array::<i16>(2).unwrap();
            env.recv_array(s, 2, 0, 2, w).unwrap();
            assert_eq!(env.array_get(s, 0).unwrap(), -5);
        }
        // Keep the datatype constants "used" for the suite's readability.
        let _ = (&CHAR, &SHORT, &FLOAT, &LONG);
    });
}
