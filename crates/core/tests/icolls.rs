//! Non-blocking collective bindings: both buffer kinds, overlap with
//! managed-heap activity (GC mid-flight), mixed waitall/testany, and the
//! Open MPI-J array restriction.

use mvapich2j::datatype::INT;
use mvapich2j::{
    run_job, BindError, JobConfig, Profile, ReduceOp, TestOutcome, Topology, OPENMPIJ,
};

fn cfg(n: usize) -> JobConfig {
    JobConfig::mvapich2j(Topology::single_node(n))
}

#[test]
fn ibcast_buffer_roundtrip() {
    run_job(cfg(4), |env| {
        let w = env.world();
        let buf = env.new_direct(64);
        if env.rank() == 2 {
            for i in 0..16 {
                env.direct_put::<i32>(buf, i * 4, 1000 + i as i32).unwrap();
            }
        }
        let req = env.ibcast_buffer(buf, 16, &INT, 2, w).unwrap();
        let st = env.wait(req).unwrap();
        assert_eq!(st.bytes, 64);
        for i in 0..16 {
            assert_eq!(env.direct_get::<i32>(buf, i * 4).unwrap(), 1000 + i as i32);
        }
    });
}

#[test]
fn iallreduce_buffer_roundtrip() {
    run_job(cfg(4), |env| {
        let w = env.world();
        let p = env.size() as i32;
        let me = env.rank() as i32;
        let send = env.new_direct(32);
        let recv = env.new_direct(32);
        for i in 0..8 {
            env.direct_put::<i32>(send, i * 4, me + i as i32).unwrap();
        }
        let req = env
            .iallreduce_buffer(send, recv, 8, &INT, ReduceOp::Sum, w)
            .unwrap();
        env.wait(req).unwrap();
        let rank_sum = p * (p - 1) / 2;
        for i in 0..8 {
            assert_eq!(
                env.direct_get::<i32>(recv, i * 4).unwrap(),
                rank_sum + p * i as i32
            );
        }
    });
}

#[test]
fn igather_and_ialltoall_buffer_roundtrip() {
    run_job(cfg(4), |env| {
        let w = env.world();
        let p = env.size();
        let me = env.rank() as i32;

        // igather: everyone contributes 4 ints; root 1 collects.
        let send = env.new_direct(16);
        for i in 0..4 {
            env.direct_put::<i32>(send, i * 4, me * 10 + i as i32)
                .unwrap();
        }
        let recv = (env.rank() == 1).then(|| env.new_direct(16 * p));
        let req = env.igather_buffer(send, recv, 4, &INT, 1, w).unwrap();
        let st = env.wait(req).unwrap();
        if let Some(out) = recv {
            assert_eq!(st.bytes, 16 * p);
            for r in 0..p {
                for i in 0..4 {
                    assert_eq!(
                        env.direct_get::<i32>(out, (r * 4 + i) * 4).unwrap(),
                        r as i32 * 10 + i as i32
                    );
                }
            }
        } else {
            assert_eq!(st.bytes, 0);
        }

        // ialltoall: one int per peer.
        let s2 = env.new_direct(4 * p);
        let r2 = env.new_direct(4 * p);
        for d in 0..p {
            env.direct_put::<i32>(s2, d * 4, me * 100 + d as i32)
                .unwrap();
        }
        let req = env.ialltoall_buffer(s2, r2, 1, &INT, w).unwrap();
        env.wait(req).unwrap();
        for src in 0..p {
            assert_eq!(
                env.direct_get::<i32>(r2, src * 4).unwrap(),
                src as i32 * 100 + me
            );
        }
    });
}

#[test]
fn iallgather_array_roundtrip() {
    run_job(cfg(4), |env| {
        let w = env.world();
        let p = env.size();
        let me = env.rank() as i32;
        let send = env.new_array::<i32>(8).unwrap();
        let recv = env.new_array::<i32>(8 * p).unwrap();
        for i in 0..8 {
            env.array_set(send, i, me * 1000 + i as i32).unwrap();
        }
        let req = env.iallgather_array(send, recv, 8, w).unwrap();
        let st = env.wait(req).unwrap();
        assert_eq!(st.bytes, 32 * p);
        for r in 0..p {
            for i in 0..8 {
                assert_eq!(
                    env.array_get(recv, r * 8 + i).unwrap(),
                    r as i32 * 1000 + i as i32
                );
            }
        }
    });
}

/// The GC-safety property the bindings are designed around: a collection
/// between post and wait must not disturb an in-flight array-flavor
/// collective, because the staging buffers are pinned by the request
/// (outstanding in the pool) until completion.
#[test]
fn gc_between_post_and_wait_is_safe() {
    let counts = run_job(cfg(4), |env| {
        let w = env.world();
        let p = env.size() as i32;
        let me = env.rank() as i32;
        let send = env.new_array::<i32>(256).unwrap();
        let recv = env.new_array::<i32>(256).unwrap();
        for i in 0..256 {
            env.array_set(send, i, me + i as i32).unwrap();
        }
        let before = env.pool_stats().outstanding;
        let req = env
            .iallreduce_array(send, recv, 256, ReduceOp::Sum, w)
            .unwrap();
        // Both the pinned send staging and the receive staging are lent
        // out while the schedule is in flight.
        assert!(env.pool_stats().outstanding >= before + 2);

        // Churn the managed heap hard enough to move things around, then
        // force a full collection mid-flight.
        for _ in 0..64 {
            let junk = env.new_array::<i32>(512).unwrap();
            env.free_array(junk).unwrap();
        }
        env.gc();
        let collections = env.gc_stats().collections;
        assert!(collections > 0, "the mid-flight collection must have run");

        env.wait(req).unwrap();
        assert_eq!(env.pool_stats().outstanding, before);
        let rank_sum = p * (p - 1) / 2;
        for i in 0..256 {
            assert_eq!(
                env.array_get(recv, i).unwrap(),
                rank_sum + p * i as i32,
                "i={i}"
            );
        }
        collections
    });
    assert_eq!(counts.len(), 4);
}

#[test]
fn waitall_drains_mixed_pt2pt_and_collective_requests() {
    run_job(cfg(4), |env| {
        let w = env.world();
        let p = env.size();
        let me = env.rank();
        let left = (me + p - 1) % p;
        let right = (me + 1) % p;

        let send = env.new_direct(32);
        let coll = env.new_direct(32);
        for i in 0..8 {
            env.direct_put::<i32>(send, i * 4, me as i32 + i as i32)
                .unwrap();
        }
        let r_coll = env
            .iallreduce_buffer(send, coll, 8, &INT, ReduceOp::Sum, w)
            .unwrap();
        let ring = env.new_direct(16);
        for i in 0..4 {
            env.direct_put::<i32>(ring, i * 4, me as i32).unwrap();
        }
        let nbr = env.new_direct(16);
        let r_recv = env.irecv_buffer(nbr, 4, &INT, left as i32, 3, w).unwrap();
        let r_send = env.isend_buffer(ring, 4, &INT, right, 3, w).unwrap();

        let st = env.waitall(vec![r_coll, r_recv, r_send]).unwrap();
        assert_eq!(st.len(), 3);
        assert_eq!(st[1].source, left as i32);
        let rank_sum = (0..p as i32).sum::<i32>();
        for i in 0..8 {
            assert_eq!(
                env.direct_get::<i32>(coll, i * 4).unwrap(),
                rank_sum + p as i32 * i as i32
            );
        }
        assert_eq!(env.direct_get::<i32>(nbr, 0).unwrap(), left as i32);
    });
}

#[test]
fn testany_finds_the_barrier_and_test_completes_the_bcast() {
    run_job(cfg(2), |env| {
        let w = env.world();
        let buf = env.new_direct(16);
        if env.rank() == 0 {
            for i in 0..4 {
                env.direct_put::<i32>(buf, i * 4, 7 + i as i32).unwrap();
            }
        }
        let r_bar = env.ibarrier(w).unwrap();
        let r_bcast = env.ibcast_buffer(buf, 4, &INT, 0, w).unwrap();
        let mut pending = vec![r_bar, r_bcast];
        let mut done = 0;
        while done < 2 {
            if let Some((_, _st)) = env.testany(&mut pending).unwrap() {
                done += 1;
            }
        }
        assert!(pending.is_empty());
        for i in 0..4 {
            assert_eq!(env.direct_get::<i32>(buf, i * 4).unwrap(), 7 + i as i32);
        }

        // Single-request test() loop over an ibcast as well.
        let buf2 = env.new_direct(16);
        if env.rank() == 1 {
            for i in 0..4 {
                env.direct_put::<i32>(buf2, i * 4, 90 + i as i32).unwrap();
            }
        }
        let mut req = env.ibcast_buffer(buf2, 4, &INT, 1, w).unwrap();
        loop {
            match env.test(req).unwrap() {
                TestOutcome::Done(st) => {
                    assert_eq!(st.bytes, 16);
                    break;
                }
                TestOutcome::Pending(r) => req = r,
            }
        }
        for i in 0..4 {
            assert_eq!(env.direct_get::<i32>(buf2, i * 4).unwrap(), 90 + i as i32);
        }
    });
}

#[test]
fn openmpij_rejects_arrays_with_nonblocking_collectives() {
    let cfg = JobConfig::mvapich2j(Topology::single_node(2))
        .with_flavor(OPENMPIJ, Profile::openmpi_ucx());
    run_job(cfg, |env| {
        let w = env.world();
        let send = env.new_array::<i32>(4).unwrap();
        let recv = env.new_array::<i32>(4).unwrap();
        match env.iallreduce_array(send, recv, 4, ReduceOp::Sum, w) {
            Err(BindError::Unsupported(_)) => {}
            Err(e) => panic!("wrong error: {e:?}"),
            Ok(_) => panic!("Open MPI-J must reject array-flavor iAllReduce"),
        }
        // Buffers still work under Open MPI-J.
        let s = env.new_direct(16);
        let r = env.new_direct(16);
        for i in 0..4 {
            env.direct_put::<i32>(s, i * 4, env.rank() as i32).unwrap();
        }
        let req = env
            .iallreduce_buffer(s, r, 4, &INT, ReduceOp::Sum, w)
            .unwrap();
        env.wait(req).unwrap();
        assert_eq!(env.direct_get::<i32>(r, 0).unwrap(), 1);
        // Both ranks must agree the collective completed: barrier.
        env.barrier(w).unwrap();
    });
}
