//! End-to-end tests of the MVAPICH2-J bindings: both buffer kinds, both
//! blocking modes, collectives, derived datatypes, communicator
//! management, and the virtual-time properties the figures rely on.

use mvapich2j::datatype::{Datatype, DOUBLE, INT};
use mvapich2j::{run_job, BindError, JobConfig, ReduceOp, TestOutcome, Topology};

fn cfg2() -> JobConfig {
    JobConfig::mvapich2j(Topology::single_node(2))
}

#[test]
fn direct_buffer_send_recv_roundtrip() {
    run_job(cfg2(), |env| {
        let w = env.world();
        if env.rank() == 0 {
            let buf = env.new_direct(64);
            for i in 0..16 {
                env.direct_put::<i32>(buf, i * 4, i as i32 * 3).unwrap();
            }
            env.send_buffer(buf, 16, &INT, 1, 5, w).unwrap();
        } else {
            let buf = env.new_direct(64);
            let st = env.recv_buffer(buf, 16, &INT, 0, 5, w).unwrap();
            assert_eq!(st.bytes, 64);
            assert_eq!(st.source, 0);
            assert_eq!(st.tag, 5);
            assert_eq!(st.count(&INT), 16);
            for i in 0..16 {
                assert_eq!(env.direct_get::<i32>(buf, i * 4).unwrap(), i as i32 * 3);
            }
        }
    });
}

#[test]
fn array_send_recv_roundtrip_all_sizes() {
    // Cross the eager/rendezvous switch on the shm path (8 KiB).
    for n in [1usize, 64, 2048, 4096 /* 16 KiB of ints */] {
        run_job(cfg2(), move |env| {
            let w = env.world();
            if env.rank() == 0 {
                let arr = env.new_array::<i32>(n).unwrap();
                for i in 0..n {
                    env.array_set(arr, i, (i as i32).wrapping_mul(7)).unwrap();
                }
                env.send_array(arr, n as i32, 1, 0, w).unwrap();
            } else {
                let arr = env.new_array::<i32>(n).unwrap();
                let st = env.recv_array(arr, n as i32, 0, 0, w).unwrap();
                assert_eq!(st.bytes, 4 * n);
                for i in 0..n {
                    assert_eq!(
                        env.array_get(arr, i).unwrap(),
                        (i as i32).wrapping_mul(7),
                        "n={n} i={i}"
                    );
                }
            }
        });
    }
}

#[test]
fn mixed_buffer_to_array_interop() {
    // Sender uses a direct buffer, receiver a Java array: the wire format
    // must be identical.
    run_job(cfg2(), |env| {
        let w = env.world();
        if env.rank() == 0 {
            let buf = env.new_direct(32);
            for i in 0..4 {
                env.direct_put::<f64>(buf, i * 8, i as f64 + 0.25).unwrap();
            }
            env.send_buffer(buf, 4, &DOUBLE, 1, 1, w).unwrap();
        } else {
            let arr = env.new_array::<f64>(4).unwrap();
            env.recv_array(arr, 4, 0, 1, w).unwrap();
            for i in 0..4 {
                assert_eq!(env.array_get(arr, i).unwrap(), i as f64 + 0.25);
            }
        }
    });
}

#[test]
fn nonblocking_arrays_supported_by_mvapich2j() {
    // The capability Open MPI-J lacks (basis of the bandwidth figures).
    run_job(cfg2(), |env| {
        let w = env.world();
        let window = 8;
        if env.rank() == 0 {
            let arr = env.new_array::<i8>(256).unwrap();
            let reqs: Vec<_> = (0..window)
                .map(|_| env.isend_array(arr, 256, 1, 0, w).unwrap())
                .collect();
            env.waitall(reqs).unwrap();
        } else {
            let arr = env.new_array::<i8>(256).unwrap();
            let reqs: Vec<_> = (0..window)
                .map(|_| env.irecv_array(arr, 256, 0, 0, w).unwrap())
                .collect();
            let stats = env.waitall(reqs).unwrap();
            assert!(stats.iter().all(|s| s.bytes == 256));
        }
    });
}

#[test]
fn array_slice_extension_sends_subsets() {
    run_job(cfg2(), |env| {
        let w = env.world();
        if env.rank() == 0 {
            let arr = env.new_array::<i32>(10).unwrap();
            for i in 0..10 {
                env.array_set(arr, i, i as i32).unwrap();
            }
            // Send elements 3..7 only.
            env.send_array_slice(arr, 3, 4, 1, 0, w).unwrap();
        } else {
            let arr = env.new_array::<i32>(10).unwrap();
            let st = env.recv_array_slice(arr, 5, 4, 0, 0, w).unwrap();
            assert_eq!(st.bytes, 16);
            // Elements land at 5..9; the rest stay zero.
            let mut out = [0i32; 10];
            env.array_read(arr, 0, &mut out).unwrap();
            assert_eq!(out, [0, 0, 0, 0, 0, 3, 4, 5, 6, 0]);
        }
    });
}

#[test]
fn derived_vector_datatype_over_arrays() {
    // Strided column exchange — the buffering layer's derived-datatype
    // showcase.
    run_job(cfg2(), |env| {
        let w = env.world();
        let dt = Datatype::vector(4, 1, 3, INT).unwrap();
        if env.rank() == 0 {
            let arr = env.new_array::<i32>(10).unwrap();
            for k in 0..4 {
                env.array_set(arr, k * 3, 100 + k as i32).unwrap();
            }
            env.send_array_dt(arr, 1, &dt, 1, 0, w).unwrap();
        } else {
            let arr = env.new_array::<i32>(10).unwrap();
            for i in 0..10 {
                env.array_set(arr, i, -1).unwrap();
            }
            env.recv_array_dt(arr, 1, &dt, 0, 0, w).unwrap();
            for k in 0..4 {
                assert_eq!(env.array_get(arr, k * 3).unwrap(), 100 + k as i32);
            }
            // Gaps preserved.
            assert_eq!(env.array_get(arr, 1).unwrap(), -1);
            assert_eq!(env.array_get(arr, 2).unwrap(), -1);
        }
    });
}

#[test]
fn test_outcome_pending_then_done() {
    run_job(cfg2(), |env| {
        let w = env.world();
        if env.rank() == 0 {
            // Synchronize first so the probe below observes "pending".
            let b = env.new_direct(4);
            env.recv_buffer(b, 1, &INT, 1, 9, w).unwrap();
            let buf = env.new_direct(8);
            env.send_buffer(buf, 2, &INT, 1, 0, w).unwrap();
        } else {
            let buf = env.new_direct(8);
            let req = env.irecv_buffer(buf, 2, &INT, 0, 0, w).unwrap();
            let mut req = match env.test(req).unwrap() {
                TestOutcome::Pending(r) => r,
                TestOutcome::Done(_) => panic!("nothing was sent yet"),
            };
            let sig = env.new_direct(4);
            env.send_buffer(sig, 1, &INT, 0, 9, w).unwrap();
            loop {
                match env.test(req).unwrap() {
                    TestOutcome::Done(st) => {
                        assert_eq!(st.bytes, 8);
                        break;
                    }
                    TestOutcome::Pending(r) => {
                        req = r;
                        std::thread::yield_now();
                    }
                }
            }
        }
    });
}

#[test]
fn collectives_buffer_and_array_agree() {
    let cfg = JobConfig::mvapich2j(Topology::new(2, 3));
    let res = run_job(cfg, |env| {
        let w = env.world();
        let me = env.rank() as i32;
        let p = env.size();

        // allreduce over buffers
        let send = env.new_direct(16);
        let recv = env.new_direct(16);
        for i in 0..4 {
            env.direct_put::<i32>(send, i * 4, me + i as i32).unwrap();
        }
        env.allreduce_buffer(send, recv, 4, &INT, ReduceOp::Sum, w)
            .unwrap();
        let buf_result: Vec<i32> = (0..4)
            .map(|i| env.direct_get::<i32>(recv, i * 4).unwrap())
            .collect();

        // allreduce over arrays
        let asend = env.new_array::<i32>(4).unwrap();
        let arecv = env.new_array::<i32>(4).unwrap();
        for i in 0..4 {
            env.array_set(asend, i, me + i as i32).unwrap();
        }
        env.allreduce_array(asend, arecv, 4, ReduceOp::Sum, w)
            .unwrap();
        let arr_result: Vec<i32> = (0..4).map(|i| env.array_get(arecv, i).unwrap()).collect();

        assert_eq!(buf_result, arr_result);
        let total: i32 = (0..p as i32).sum();
        assert_eq!(buf_result[0], total);
        buf_result
    });
    assert!(res.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn bcast_both_paths() {
    let cfg = JobConfig::mvapich2j(Topology::new(2, 2));
    run_job(cfg, |env| {
        let w = env.world();
        let me = env.rank();
        // Buffer path.
        let buf = env.new_direct(32);
        if me == 1 {
            for i in 0..8 {
                env.direct_put::<i32>(buf, i * 4, 50 + i as i32).unwrap();
            }
        }
        env.bcast_buffer(buf, 8, &INT, 1, w).unwrap();
        for i in 0..8 {
            assert_eq!(env.direct_get::<i32>(buf, i * 4).unwrap(), 50 + i as i32);
        }
        // Array path.
        let arr = env.new_array::<f64>(5).unwrap();
        if me == 0 {
            for i in 0..5 {
                env.array_set(arr, i, i as f64 / 2.0).unwrap();
            }
        }
        env.bcast_array(arr, 5, 0, w).unwrap();
        for i in 0..5 {
            assert_eq!(env.array_get(arr, i).unwrap(), i as f64 / 2.0);
        }
    });
}

#[test]
fn gatherv_and_scatterv_arrays() {
    let cfg = JobConfig::mvapich2j(Topology::single_node(3));
    run_job(cfg, |env| {
        let w = env.world();
        let me = env.rank();
        // Gatherv: rank r contributes r+1 ints.
        let send = env.new_array::<i32>(me + 1).unwrap();
        for i in 0..=me {
            env.array_set(send, i, (me * 10 + i) as i32).unwrap();
        }
        let recvcounts = [1i32, 2, 3];
        let displs = [0i32, 1, 3];
        let recv = env.new_array::<i32>(6).unwrap();
        let out = (me == 0).then_some(recv);
        env.gatherv_array(send, me as i32 + 1, out, &recvcounts, &displs, 0, w)
            .unwrap();
        if me == 0 {
            let mut got = [0i32; 6];
            env.array_read(recv, 0, &mut got).unwrap();
            assert_eq!(got, [0, 10, 11, 20, 21, 22]);
        }

        // Scatterv: inverse distribution.
        let src = env.new_array::<i32>(6).unwrap();
        if me == 0 {
            for i in 0..6 {
                env.array_set(src, i, i as i32 * 2).unwrap();
            }
        }
        let dst = env.new_array::<i32>(me + 1).unwrap();
        let sendsrc = (me == 0).then_some(src);
        env.scatterv_array(sendsrc, &recvcounts, &displs, dst, me as i32 + 1, 0, w)
            .unwrap();
        let mut got = vec![0i32; me + 1];
        env.array_read(dst, 0, &mut got).unwrap();
        let want: Vec<i32> = (displs[me]..displs[me] + recvcounts[me])
            .map(|i| i * 2)
            .collect();
        assert_eq!(got, want);
    });
}

#[test]
fn alltoall_and_allgather_arrays() {
    let cfg = JobConfig::mvapich2j(Topology::new(2, 2));
    run_job(cfg, |env| {
        let w = env.world();
        let me = env.rank() as i32;
        let p = env.size();

        let send = env.new_array::<i32>(p).unwrap();
        for d in 0..p {
            env.array_set(send, d, me * 100 + d as i32).unwrap();
        }
        let recv = env.new_array::<i32>(p).unwrap();
        env.alltoall_array(send, recv, 1, w).unwrap();
        for s in 0..p {
            assert_eq!(
                env.array_get(recv, s).unwrap(),
                s as i32 * 100 + me,
                "alltoall block from {s}"
            );
        }

        let ag = env.new_array::<i32>(p).unwrap();
        let mine = env.new_array::<i32>(1).unwrap();
        env.array_set(mine, 0, me * 11).unwrap();
        env.allgather_array(mine, ag, 1, w).unwrap();
        for r in 0..p {
            assert_eq!(env.array_get(ag, r).unwrap(), r as i32 * 11);
        }
    });
}

#[test]
fn comm_split_and_collectives_on_subcomm() {
    let cfg = JobConfig::mvapich2j(Topology::new(2, 2));
    run_job(cfg, |env| {
        let w = env.world();
        let me = env.rank();
        let color = (me % 2) as i32;
        let sub = env.comm_split(w, color, me as i32).unwrap().unwrap();
        assert_eq!(env.comm_size(sub).unwrap(), 2);
        // Sum ranks within the subcomm.
        let send = env.new_array::<i32>(1).unwrap();
        env.array_set(send, 0, me as i32).unwrap();
        let recv = env.new_array::<i32>(1).unwrap();
        env.allreduce_array(send, recv, 1, ReduceOp::Sum, sub)
            .unwrap();
        let want = if color == 0 { 0 + 2 } else { 1 + 3 };
        assert_eq!(env.array_get(recv, 0).unwrap(), want);
        env.comm_free(sub).unwrap();
    });
}

#[test]
fn comm_dup_isolates_traffic() {
    run_job(cfg2(), |env| {
        let w = env.world();
        let dup = env.comm_dup(w).unwrap();
        if env.rank() == 0 {
            let a = env.new_direct(4);
            env.direct_put::<i32>(a, 0, 1).unwrap();
            let b = env.new_direct(4);
            env.direct_put::<i32>(b, 0, 2).unwrap();
            // Same tag, different communicators.
            env.send_buffer(a, 1, &INT, 1, 7, w).unwrap();
            env.send_buffer(b, 1, &INT, 1, 7, dup).unwrap();
        } else {
            let b = env.new_direct(4);
            env.recv_buffer(b, 1, &INT, 0, 7, dup).unwrap();
            assert_eq!(env.direct_get::<i32>(b, 0).unwrap(), 2);
            let a = env.new_direct(4);
            env.recv_buffer(a, 1, &INT, 0, 7, w).unwrap();
            assert_eq!(env.direct_get::<i32>(a, 0).unwrap(), 1);
        }
    });
}

#[test]
fn truncation_surfaces_as_mpi_exception() {
    run_job(cfg2(), |env| {
        let w = env.world();
        if env.rank() == 0 {
            let arr = env.new_array::<i32>(8).unwrap();
            env.send_array(arr, 8, 1, 0, w).unwrap();
        } else {
            let arr = env.new_array::<i32>(2).unwrap();
            let err = env.recv_array(arr, 2, 0, 0, w).unwrap_err();
            assert!(matches!(
                err,
                BindError::Mpi(mpisim::MpiError::Truncated { .. })
            ));
        }
    });
}

#[test]
fn buffer_pool_is_reused_across_messages() {
    let stats = run_job(cfg2(), |env| {
        let w = env.world();
        let arr = env.new_array::<i8>(1024).unwrap();
        for i in 0..20 {
            if env.rank() == 0 {
                env.send_array(arr, 1024, 1, i, w).unwrap();
            } else {
                env.recv_array(arr, 1024, 0, i, w).unwrap();
            }
        }
        env.pool_stats()
    });
    for s in stats {
        assert!(s.misses <= 2, "one allocation per class, then reuse: {s:?}");
        assert!(s.hits >= 18, "subsequent messages must hit the pool: {s:?}");
        assert_eq!(s.outstanding, 0, "no leaked staging buffers: {s:?}");
    }
}

#[test]
fn bindings_runs_are_deterministic() {
    let run = || {
        run_job(JobConfig::mvapich2j(Topology::new(2, 2)), |env| {
            let w = env.world();
            let me = env.rank() as i32;
            let send = env.new_array::<i32>(512).unwrap();
            let recv = env.new_array::<i32>(512).unwrap();
            for _ in 0..5 {
                env.allreduce_array(send, recv, 512, ReduceOp::Max, w)
                    .unwrap();
            }
            let _ = me;
            env.now().as_nanos()
        })
    };
    assert_eq!(run(), run());
}

#[test]
fn java_layer_costs_more_than_native() {
    // The structural property behind Figure 11.
    let topo = Topology::new(2, 1);
    let iters = 100;
    // Native ping-pong.
    let native = mpisim::run_mpi(topo, mpisim::Profile::mvapich2(), move |mpi| {
        let w = mpi.world();
        let me = mpi.rank(w).unwrap();
        let mut buf = vec![0u8; 8];
        mpi.barrier(w).unwrap();
        let t0 = mpi.now();
        for _ in 0..iters {
            if me == 0 {
                mpi.send(&buf, 8, &mpisim::datatype::BYTE, 1, 0, w).unwrap();
                mpi.recv(&mut buf, 8, &mpisim::datatype::BYTE, 1, 0, w)
                    .unwrap();
            } else {
                mpi.recv(&mut buf, 8, &mpisim::datatype::BYTE, 0, 0, w)
                    .unwrap();
                mpi.send(&buf, 8, &mpisim::datatype::BYTE, 0, 0, w).unwrap();
            }
        }
        (mpi.now() - t0).as_nanos() / (2.0 * iters as f64)
    });
    // Bindings ping-pong over direct buffers.
    let java = run_job(JobConfig::mvapich2j(topo), move |env| {
        let w = env.world();
        let me = env.rank();
        let buf = env.new_direct(8);
        env.barrier(w).unwrap();
        let t0 = env.now();
        for _ in 0..iters {
            if me == 0 {
                env.send_buffer(buf, 8, &mvapich2j::datatype::BYTE, 1, 0, w)
                    .unwrap();
                env.recv_buffer(buf, 8, &mvapich2j::datatype::BYTE, 1, 0, w)
                    .unwrap();
            } else {
                env.recv_buffer(buf, 8, &mvapich2j::datatype::BYTE, 0, 0, w)
                    .unwrap();
                env.send_buffer(buf, 8, &mvapich2j::datatype::BYTE, 0, 0, w)
                    .unwrap();
            }
        }
        (env.now() - t0).as_nanos() / (2.0 * iters as f64)
    });
    let overhead = java[0] - native[0];
    assert!(
        overhead > 200.0 && overhead < 3000.0,
        "Java overhead should be sub-microsecond-ish: native={} java={} overhead={overhead}",
        native[0],
        java[0]
    );
}

#[test]
fn gc_runs_under_allocation_pressure_and_data_survives() {
    let mut cfg = cfg2();
    cfg.heap_initial = 1 << 16; // tiny heap: force collections
    cfg.heap_max = 1 << 18;
    let stats = run_job(cfg, |env| {
        let w = env.world();
        let keep = env.new_array::<i32>(128).unwrap();
        for i in 0..128 {
            env.array_set(keep, i, i as i32).unwrap();
        }
        // Churn: many short-lived arrays + messages.
        for round in 0..200 {
            let junk = env.new_array::<i64>(512).unwrap();
            env.free_array(junk).unwrap();
            if env.rank() == 0 {
                env.send_array(keep, 128, 1, round, w).unwrap();
            } else {
                let tmp = env.new_array::<i32>(128).unwrap();
                env.recv_array(tmp, 128, 0, round, w).unwrap();
                assert_eq!(env.array_get(tmp, 127).unwrap(), 127);
                env.free_array(tmp).unwrap();
            }
        }
        for i in 0..128 {
            assert_eq!(env.array_get(keep, i).unwrap(), i as i32);
        }
        env.gc_stats()
    });
    for s in stats {
        assert!(s.collections > 0, "GC must have run under churn: {s:?}");
    }
}
