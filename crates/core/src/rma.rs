//! One-sided (RMA) bindings: `MPI_Win` over both buffer flavors.
//!
//! The window API follows the same two-path discipline as point-to-point
//! (Sections IV-B/IV-C of the paper):
//!
//! * **Direct ByteBuffers** are address-stable off-heap storage, so a
//!   buffer-backed window is the RDMA target region itself: puts and gets
//!   move bytes with *zero Java-side copies*, and large transfers go
//!   through the native registration (pin-down) cache
//!   (`rma.reg.{hit,miss,evict}`).
//! * **Java arrays** are movable, so an array-backed window mirrors the
//!   array through a pooled `mpjbuf` staging buffer pinned for the
//!   window's lifetime — the same GC-safety discipline non-blocking
//!   collectives use for their schedules. Each synchronization pays the
//!   charged gather/scatter the buffering layer always pays.
//!
//! Epoch semantics are the MPI ones: active target via [`Env::win_fence`]
//! (collective; completes all one-sided operations and synchronizes the
//! window), passive target via [`Env::win_lock`]/[`Env::win_unlock`]
//! (origin-only; the target observes deposits at its next
//! [`Env::win_sync`] or fence). Get payloads are delivered when the epoch
//! closes, never before.

use mpisim::datatype::Datatype;
use mpisim::{CommHandle, ReduceOp};
use mpjbuf::Buffer;
use mrt::prim::Prim;
use mrt::{DirectBuffer, Handle, JArray};

use crate::datatype::datatype_of;
use crate::env::Env;
use crate::error::{BindError, BindResult};
use crate::request::ArrayDest;
use crate::stage::{stage_from_array, unstage_to_array};

/// Bindings-level window handle (the `Win` object).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JWin(usize);

/// Where a completed one-sided get deposits its payload.
enum GetDest {
    /// Straight into the user's direct buffer (NIC deposit — uncharged).
    Buffer { buf: DirectBuffer, span: usize },
    /// Through staging pinned for the epoch, then a charged scatter into
    /// the managed array.
    Array {
        staging: Buffer,
        dest: ArrayDest,
        dt: Datatype,
        count: usize,
    },
}

/// The user storage a window exposes.
enum WinStorage {
    /// Direct ByteBuffer: the RDMA target region itself.
    Buffer(DirectBuffer),
    /// Managed array mirrored through pooled staging pinned for the
    /// window's lifetime.
    Array {
        dest: ArrayDest,
        dt: Datatype,
        count: usize,
        staging: Buffer,
    },
}

/// Copyable description of a window's storage, extracted so the
/// synchronization helpers can drop the `WinState` borrow before touching
/// the runtime and the native library.
enum StorageInfo {
    Buffer(DirectBuffer),
    Array {
        store: DirectBuffer,
        handle: Handle,
        count: usize,
        dt: Datatype,
        byte_len: usize,
    },
}

/// Per-window bindings state.
pub(crate) struct WinState {
    native: mpisim::Win,
    storage: WinStorage,
    /// Shadow of the window memory at the last synchronization point. The
    /// fence writes only bytes the *user* changed since then — a full
    /// copy would clobber remote deposits that already landed in the NIC
    /// view.
    last_sync: Vec<u8>,
    /// Outstanding gets of the open epoch, with deposit destinations.
    gets: Vec<(mpisim::RmaGet, GetDest)>,
}

impl Env {
    fn win_state(&self, win: JWin) -> BindResult<&WinState> {
        self.wins
            .get(win.0)
            .and_then(|w| w.as_ref())
            .ok_or(BindError::Mpi(mpisim::MpiError::InvalidWin(
                "invalid or freed window handle",
            )))
    }

    fn win_state_mut(&mut self, win: JWin) -> BindResult<&mut WinState> {
        self.wins
            .get_mut(win.0)
            .and_then(|w| w.as_mut())
            .ok_or(BindError::Mpi(mpisim::MpiError::InvalidWin(
                "invalid or freed window handle",
            )))
    }

    fn storage_info(&self, win: JWin) -> BindResult<StorageInfo> {
        Ok(match &self.win_state(win)?.storage {
            WinStorage::Buffer(b) => StorageInfo::Buffer(*b),
            WinStorage::Array {
                dest,
                dt,
                count,
                staging,
            } => StorageInfo::Array {
                store: staging.store(),
                handle: dest.handle,
                count: *count,
                dt: dt.clone(),
                byte_len: dest.byte_len,
            },
        })
    }

    // ------------------------------------------------------------------
    // Window lifecycle
    // ------------------------------------------------------------------

    /// `MPI.createWindow(ByteBuffer, comm)`: expose a direct buffer as a
    /// one-sided window. Collective over `comm`.
    pub fn win_create_buffer(&mut self, buf: DirectBuffer, comm: CommHandle) -> BindResult<JWin> {
        self.binding_call();
        self.charge_buffer_address();
        let native = self.mpi.win_create(buf.capacity(), comm)?;
        self.wins.push(Some(WinState {
            native,
            storage: WinStorage::Buffer(buf),
            last_sync: vec![0u8; buf.capacity()],
            gets: Vec::new(),
        }));
        Ok(JWin(self.wins.len() - 1))
    }

    /// `MPI.createWindow(type[] arr, comm)`: expose a managed array
    /// through GC-safe pinned staging. Collective over `comm`.
    pub fn win_create_array<T: Prim>(
        &mut self,
        arr: JArray<T>,
        comm: CommHandle,
    ) -> BindResult<JWin> {
        self.binding_call();
        let byte_len = arr.byte_len();
        // The staging buffer stays pinned (out of the pool) for the
        // window's lifetime, like an NBC schedule's staging.
        let clock = self.mpi.clock_mut();
        let staging = Buffer::from_pool(&mut self.pool, &mut self.rt, clock, byte_len.max(1));
        self.charge_buffer_address();
        let native = match self.mpi.win_create(byte_len, comm) {
            Ok(w) => w,
            Err(e) => {
                let clock = self.mpi.clock_mut();
                staging.free(&mut self.pool, &mut self.rt, clock);
                return Err(e.into());
            }
        };
        self.wins.push(Some(WinState {
            native,
            storage: WinStorage::Array {
                dest: ArrayDest {
                    handle: arr.handle(),
                    byte_off: 0,
                    byte_len,
                },
                dt: datatype_of::<T>(),
                count: byte_len / T::SIZE,
                staging,
            },
            last_sync: vec![0u8; byte_len],
            gets: Vec::new(),
        }));
        Ok(JWin(self.wins.len() - 1))
    }

    /// `win.free()`: collective teardown. All epochs must be closed.
    pub fn win_free(&mut self, win: JWin) -> BindResult<()> {
        self.binding_call();
        let w = self.win_state(win)?;
        if !w.gets.is_empty() {
            return Err(BindError::Mpi(mpisim::MpiError::InvalidWin(
                "window freed with undelivered gets",
            )));
        }
        let native = w.native;
        self.mpi.win_free(native)?;
        let state = self.wins[win.0].take().expect("state checked above");
        if let WinStorage::Array { staging, .. } = state.storage {
            let clock = self.mpi.clock_mut();
            staging.free(&mut self.pool, &mut self.rt, clock);
        }
        Ok(())
    }

    /// Bytes this rank exposes through `win`.
    pub fn win_size(&self, win: JWin) -> BindResult<usize> {
        Ok(self.win_state(win)?.last_sync.len())
    }

    // ------------------------------------------------------------------
    // One-sided operations
    // ------------------------------------------------------------------

    /// `win.put(ByteBuffer, count, datatype, target, disp)`: RDMA-write
    /// from a direct buffer — zero Java-side copies; large transfers go
    /// through the registration cache keyed by the buffer's stable
    /// address.
    pub fn put_buffer(
        &mut self,
        win: JWin,
        origin: DirectBuffer,
        count: i32,
        dt: &Datatype,
        target: usize,
        target_disp: usize,
    ) -> BindResult<()> {
        self.binding_call();
        if !dt.is_contiguous() {
            return Err(BindError::Unsupported(
                "derived datatypes with one-sided operations on direct buffers",
            ));
        }
        let span = Self::check_dt_capacity(origin, count, dt)?;
        self.charge_buffer_address();
        let native = self.win_state(win)?.native;
        let bytes = self.rt.direct_bytes(origin)?;
        self.mpi.win_put(
            native,
            &bytes[..span],
            u64::from(origin.id()),
            target,
            target_disp,
        )?;
        Ok(())
    }

    /// `win.put(type[] arr, count, target, disp)`: array origin staged
    /// through a pooled buffer (one charged gather), then handed to the
    /// native put. The native library captures the payload at injection,
    /// so the staging goes straight back to the pool.
    pub fn put_array<T: Prim>(
        &mut self,
        win: JWin,
        arr: JArray<T>,
        count: i32,
        target: usize,
        target_disp: usize,
    ) -> BindResult<()> {
        self.binding_call();
        if count < 0 {
            return Err(BindError::Mpi(mpisim::MpiError::InvalidCount { count }));
        }
        let dt = datatype_of::<T>();
        let count = count as usize;
        let packed = dt.size() * count;
        let clock = self.mpi.clock_mut();
        let staging = Buffer::from_pool(&mut self.pool, &mut self.rt, clock, packed.max(1));
        let staged = stage_from_array(
            &mut self.rt,
            clock,
            staging.store(),
            arr.handle(),
            0,
            count,
            &dt,
        );
        self.charge_buffer_address();
        let res = staged.map_err(BindError::from).and_then(|_| {
            let native = self.win_state(win)?.native;
            let key = u64::from(staging.store().id());
            let bytes = self.rt.direct_bytes(staging.store())?;
            self.mpi
                .win_put(native, &bytes[..packed], key, target, target_disp)
                .map_err(BindError::from)
        });
        let clock = self.mpi.clock_mut();
        staging.free(&mut self.pool, &mut self.rt, clock);
        res
    }

    /// `win.get(ByteBuffer, count, datatype, target, disp)`: RDMA-read
    /// into a direct buffer. The payload lands (uncharged NIC deposit)
    /// when the epoch closes.
    pub fn get_buffer(
        &mut self,
        win: JWin,
        origin: DirectBuffer,
        count: i32,
        dt: &Datatype,
        target: usize,
        target_disp: usize,
    ) -> BindResult<()> {
        self.binding_call();
        if !dt.is_contiguous() {
            return Err(BindError::Unsupported(
                "derived datatypes with one-sided operations on direct buffers",
            ));
        }
        let span = Self::check_dt_capacity(origin, count, dt)?;
        self.charge_buffer_address();
        let native = self.win_state(win)?.native;
        let tok = self
            .mpi
            .win_get(native, target, target_disp, span, u64::from(origin.id()))?;
        self.win_state_mut(win)?
            .gets
            .push((tok, GetDest::Buffer { buf: origin, span }));
        Ok(())
    }

    /// `win.get(type[] arr, count, target, disp)`: the RDMA-read
    /// destination must stay registered and GC-safe for the whole epoch,
    /// so pooled staging is pinned until the epoch closes, then scattered
    /// into the array (one charged copy).
    pub fn get_array<T: Prim>(
        &mut self,
        win: JWin,
        arr: JArray<T>,
        count: i32,
        target: usize,
        target_disp: usize,
    ) -> BindResult<()> {
        self.binding_call();
        if count < 0 {
            return Err(BindError::Mpi(mpisim::MpiError::InvalidCount { count }));
        }
        let dt = datatype_of::<T>();
        let count = count as usize;
        let packed = dt.size() * count;
        if packed > arr.byte_len() {
            return Err(BindError::Runtime(mrt::MrtError::BufferOverflow {
                needed: packed,
                available: arr.byte_len(),
            }));
        }
        let clock = self.mpi.clock_mut();
        let staging = Buffer::from_pool(&mut self.pool, &mut self.rt, clock, packed.max(1));
        self.charge_buffer_address();
        let native = self.win_state(win)?.native;
        let key = u64::from(staging.store().id());
        let tok = match self.mpi.win_get(native, target, target_disp, packed, key) {
            Ok(t) => t,
            Err(e) => {
                let clock = self.mpi.clock_mut();
                staging.free(&mut self.pool, &mut self.rt, clock);
                return Err(e.into());
            }
        };
        self.win_state_mut(win)?.gets.push((
            tok,
            GetDest::Array {
                staging,
                dest: ArrayDest {
                    handle: arr.handle(),
                    byte_off: 0,
                    byte_len: arr.byte_len(),
                },
                dt,
                count,
            },
        ));
        Ok(())
    }

    /// `win.accumulate(ByteBuffer, count, op, target, disp)` over 32-bit
    /// integer lanes. Operands always travel through pre-registered
    /// bounce buffers, so there is no registration charge.
    pub fn accumulate_buffer(
        &mut self,
        win: JWin,
        origin: DirectBuffer,
        count: i32,
        op: ReduceOp,
        target: usize,
        target_disp: usize,
    ) -> BindResult<()> {
        self.binding_call();
        let span = Self::check_dt_capacity(origin, count, &mpisim::datatype::INT)?;
        self.charge_buffer_address();
        let native = self.win_state(win)?.native;
        let bytes = self.rt.direct_bytes(origin)?;
        self.mpi
            .win_accumulate(native, &bytes[..span], op, target, target_disp)?;
        Ok(())
    }

    /// `win.accumulate(int[] arr, count, op, target, disp)`.
    pub fn accumulate_array(
        &mut self,
        win: JWin,
        arr: JArray<i32>,
        count: i32,
        op: ReduceOp,
        target: usize,
        target_disp: usize,
    ) -> BindResult<()> {
        self.binding_call();
        if count < 0 {
            return Err(BindError::Mpi(mpisim::MpiError::InvalidCount { count }));
        }
        let dt = mpisim::datatype::INT;
        let count = count as usize;
        let packed = dt.size() * count;
        let clock = self.mpi.clock_mut();
        let staging = Buffer::from_pool(&mut self.pool, &mut self.rt, clock, packed.max(1));
        let staged = stage_from_array(
            &mut self.rt,
            clock,
            staging.store(),
            arr.handle(),
            0,
            count,
            &dt,
        );
        self.charge_buffer_address();
        let res = staged.map_err(BindError::from).and_then(|_| {
            let native = self.win_state(win)?.native;
            let bytes = self.rt.direct_bytes(staging.store())?;
            self.mpi
                .win_accumulate(native, &bytes[..packed], op, target, target_disp)
                .map_err(BindError::from)
        });
        let clock = self.mpi.clock_mut();
        staging.free(&mut self.pool, &mut self.rt, clock);
        res
    }

    // ------------------------------------------------------------------
    // Synchronization
    // ------------------------------------------------------------------

    /// Publish the user's local window writes into the NIC view. Only
    /// bytes changed since the last sync are written, so remote deposits
    /// that already landed are preserved.
    fn publish_local_writes(&mut self, win: JWin) -> BindResult<()> {
        let info = self.storage_info(win)?;
        let image: Vec<u8> = match info {
            StorageInfo::Buffer(b) => self.rt.direct_bytes(b)?.to_vec(),
            StorageInfo::Array {
                store,
                handle,
                count,
                ref dt,
                ..
            } => {
                // Charged gather: the buffering layer packs the array
                // into its pinned staging.
                let clock = self.mpi.clock_mut();
                stage_from_array(&mut self.rt, clock, store, handle, 0, count, dt)?;
                self.rt.direct_bytes(store)?.to_vec()
            }
        };
        let native = self.win_state(win)?.native;
        let last = std::mem::take(&mut self.win_state_mut(win)?.last_sync);
        {
            let mem = self.mpi.win_mem_mut(native)?;
            for (i, (&new, &old)) in image.iter().zip(last.iter()).enumerate() {
                if new != old {
                    mem[i] = new;
                }
            }
        }
        self.win_state_mut(win)?.last_sync = last;
        Ok(())
    }

    /// Deposit completed get payloads into their recorded destinations.
    fn deposit_gets(
        &mut self,
        win: JWin,
        done: Vec<(mpisim::RmaGet, Box<[u8]>)>,
    ) -> BindResult<()> {
        for (tok, data) in done {
            let pos = self
                .win_state(win)?
                .gets
                .iter()
                .position(|(t, _)| *t == tok);
            let Some(pos) = pos else { continue };
            let (_, dest) = self.win_state_mut(win)?.gets.remove(pos);
            match dest {
                GetDest::Buffer { buf, span } => {
                    // NIC deposits straight into the registered direct
                    // buffer — uncharged.
                    let n = span.min(data.len());
                    self.rt.direct_bytes_mut(buf)?[..n].copy_from_slice(&data[..n]);
                }
                GetDest::Array {
                    staging,
                    dest,
                    dt,
                    count,
                } => {
                    let store = staging.store();
                    let n = data.len();
                    self.rt.direct_bytes_mut(store)?[..n].copy_from_slice(&data);
                    let clock = self.mpi.clock_mut();
                    unstage_to_array(&mut self.rt, clock, store, &dest, count, &dt, n)?;
                    let clock = self.mpi.clock_mut();
                    staging.free(&mut self.pool, &mut self.rt, clock);
                }
            }
        }
        Ok(())
    }

    /// Mirror the NIC view back into the user's storage and refresh the
    /// sync shadow.
    fn refresh_user_storage(&mut self, win: JWin) -> BindResult<()> {
        let info = self.storage_info(win)?;
        let native = self.win_state(win)?.native;
        let snapshot = self.mpi.win_mem(native)?.to_vec();
        match info {
            StorageInfo::Buffer(b) => {
                // The buffer *is* the exposed region: uncharged mirror.
                self.rt.direct_bytes_mut(b)?[..snapshot.len()].copy_from_slice(&snapshot);
            }
            StorageInfo::Array {
                store,
                handle,
                count,
                ref dt,
                byte_len,
            } => {
                self.rt.direct_bytes_mut(store)?[..byte_len].copy_from_slice(&snapshot[..byte_len]);
                let dest = ArrayDest {
                    handle,
                    byte_off: 0,
                    byte_len,
                };
                // Charged scatter back into the managed array.
                let clock = self.mpi.clock_mut();
                unstage_to_array(&mut self.rt, clock, store, &dest, count, dt, byte_len)?;
            }
        }
        self.win_state_mut(win)?.last_sync = snapshot;
        Ok(())
    }

    /// `win.fence()`: close the active-target epoch — complete this
    /// rank's one-sided operations, synchronize the communicator, deposit
    /// get payloads, and make remote deposits visible in user storage.
    pub fn win_fence(&mut self, win: JWin) -> BindResult<()> {
        self.binding_call();
        self.publish_local_writes(win)?;
        let native = self.win_state(win)?.native;
        let done = self.mpi.win_fence(native)?;
        self.deposit_gets(win, done)?;
        self.refresh_user_storage(win)
    }

    /// `win.lock(target)`: begin an exclusive passive-target epoch.
    pub fn win_lock(&mut self, win: JWin, target: usize) -> BindResult<()> {
        self.binding_call();
        let native = self.win_state(win)?.native;
        self.mpi.win_lock(native, target)?;
        Ok(())
    }

    /// `win.unlock(target)`: end the passive-target epoch — flush and
    /// complete the operations issued under the lock (get payloads are
    /// deposited here).
    pub fn win_unlock(&mut self, win: JWin, target: usize) -> BindResult<()> {
        self.binding_call();
        let native = self.win_state(win)?.native;
        let done = self.mpi.win_unlock(native, target)?;
        self.deposit_gets(win, done)
    }

    /// `win.sync()`: local-only synchronization — publish local writes
    /// and make deposits a peer has causally completed (e.g. before a
    /// barrier this rank just left) visible in user storage. This is how
    /// a passive target observes a lock/unlock epoch.
    pub fn win_sync(&mut self, win: JWin) -> BindResult<()> {
        self.binding_call();
        self.publish_local_writes(win)?;
        let native = self.win_state(win)?.native;
        self.mpi.win_sync(native)?;
        self.refresh_user_storage(win)
    }
}
