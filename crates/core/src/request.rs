//! Request and status objects returned by the non-blocking bindings API.

use mpisim::datatype::Datatype;
use mpjbuf::Buffer;
use mrt::Handle;

/// Completion status (the bindings' `Status` object).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JStatus {
    /// Source rank within the communicator (`status.getSource()`).
    pub source: i32,
    /// Message tag (`status.getTag()`).
    pub tag: i32,
    /// Received payload size in bytes.
    pub bytes: usize,
}

impl JStatus {
    /// `status.getCount(datatype)`: received element count.
    pub fn count(&self, dt: &Datatype) -> usize {
        if dt.size() == 0 {
            0
        } else {
            self.bytes / dt.size()
        }
    }
}

/// Type-erased description of a managed-array destination for unstaging.
#[derive(Debug)]
pub(crate) struct ArrayDest {
    /// Heap handle of the target array.
    pub handle: Handle,
    /// Byte offset within the array where element 0 of the message lands.
    pub byte_off: usize,
    /// Total byte length of the array object (for bounds checks).
    pub byte_len: usize,
}

/// What must happen when a request completes.
pub(crate) enum PostAction {
    /// Plain send (direct-buffer source): nothing to do.
    SendDone,
    /// Array send: the staging buffer goes back to the pool.
    SendStaged { staging: Buffer },
    /// Receive into a direct buffer: deposit the payload.
    RecvBuffer {
        buf: mrt::DirectBuffer,
        /// User-layout span of the posted receive (temp sizing).
        span: usize,
    },
    /// Receive into a managed array: deposit into the staging buffer,
    /// then scatter into the array per the datatype.
    RecvArray {
        staging: Buffer,
        dest: ArrayDest,
        dt: Datatype,
        count: usize,
    },
}

/// A non-blocking operation in flight (the bindings' `Request` object).
pub struct JRequest {
    pub(crate) native: mpisim::mpi::MpiRequest,
    pub(crate) post: PostAction,
    /// Send-side staging buffer pinned for the operation's lifetime.
    /// Non-blocking collectives read their source region while the
    /// schedule progresses, so the request owns the buffer until
    /// completion — the collector can run mid-flight without the pool
    /// reusing (or freeing) storage the native library still reads.
    pub(crate) pinned: Option<Buffer>,
}

impl JRequest {
    /// Whether this request is a receive (its completion carries data).
    pub fn is_recv(&self) -> bool {
        matches!(
            self.post,
            PostAction::RecvBuffer { .. } | PostAction::RecvArray { .. }
        )
    }
}

/// Result of a non-blocking `test`.
pub enum TestOutcome {
    /// Completed with this status.
    Done(JStatus),
    /// Still pending; the request is handed back.
    Pending(JRequest),
}
