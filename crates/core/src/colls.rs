//! Collective bindings (Section IV-D): blocking collectives and their
//! vectored variants, for direct ByteBuffers and Java arrays.
//!
//! "Like the point-to-point primitives, the buffering layer is used for
//! Java arrays. Again, the idea is to keep the Java layer as minimal as
//! possible and utilize all optimizations and advanced collective
//! algorithms available in the native MVAPICH2 library."
//!
//! Array variants stage the whole participating region through a pooled
//! direct buffer (one bulk copy each way); buffer variants hand the
//! native library the buffer's stable storage.

use mpisim::datatype::Datatype;
use mpisim::{CommHandle, ReduceOp};
use mpjbuf::Buffer;
use mrt::prim::Prim;
use mrt::{DirectBuffer, JArray};

use crate::datatype::datatype_of;
use crate::env::Env;
use crate::error::{BindError, BindResult};
use crate::request::ArrayDest;
use crate::stage::{stage_from_array, unstage_to_array};

impl Env {
    /// Uncharged snapshot of a direct buffer's storage (the native
    /// library reads it in place; the copy is a simulation artifact).
    fn snapshot(&self, buf: DirectBuffer) -> BindResult<Vec<u8>> {
        Ok(self.rt.direct_bytes(buf)?.to_vec())
    }

    /// Uncharged deposit back into a direct buffer (native DMA).
    fn deposit(&mut self, buf: DirectBuffer, bytes: &[u8]) -> BindResult<()> {
        self.rt.direct_bytes_mut(buf)?[..bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Stage the first `elems` elements of an array through a pooled
    /// buffer: returns the staging buffer and a byte snapshot for the
    /// native call. One charged bulk copy of exactly the participating
    /// region.
    pub(crate) fn stage_region<T: Prim>(
        &mut self,
        arr: JArray<T>,
        elems: usize,
    ) -> BindResult<(Buffer, Vec<u8>)> {
        let nbytes = (elems * T::SIZE).max(1);
        let clock = self.mpi.clock_mut();
        let staging = Buffer::from_pool(&mut self.pool, &mut self.rt, clock, nbytes);
        let dt = datatype_of::<T>();
        stage_from_array(
            &mut self.rt,
            clock,
            staging.store(),
            arr.handle(),
            0,
            elems,
            &dt,
        )?;
        let bytes = self.rt.direct_bytes(staging.store())?[..elems * T::SIZE].to_vec();
        Ok((staging, bytes))
    }

    /// Acquire a staging buffer for `elems` received elements without
    /// copying in.
    pub(crate) fn stage_empty<T: Prim>(
        &mut self,
        _arr: JArray<T>,
        elems: usize,
    ) -> BindResult<Buffer> {
        let nbytes = (elems * T::SIZE).max(1);
        let clock = self.mpi.clock_mut();
        Ok(Buffer::from_pool(
            &mut self.pool,
            &mut self.rt,
            clock,
            nbytes,
        ))
    }

    /// Deposit `bytes` into the staging buffer (uncharged: native DMA),
    /// scatter them into the first `bytes.len()` bytes of the array
    /// (charged), and return the staging buffer to the pool.
    fn unstage_region<T: Prim>(
        &mut self,
        staging: Buffer,
        arr: JArray<T>,
        bytes: &[u8],
    ) -> BindResult<()> {
        self.rt.direct_bytes_mut(staging.store())?[..bytes.len()].copy_from_slice(bytes);
        let dt = datatype_of::<T>();
        let dest = ArrayDest {
            handle: arr.handle(),
            byte_off: 0,
            byte_len: arr.byte_len(),
        };
        let elems = bytes.len() / T::SIZE;
        let clock = self.mpi.clock_mut();
        unstage_to_array(
            &mut self.rt,
            clock,
            staging.store(),
            &dest,
            elems,
            &dt,
            bytes.len(),
        )?;
        let clock = self.mpi.clock_mut();
        staging.free(&mut self.pool, &mut self.rt, clock);
        Ok(())
    }

    /// Return a staging buffer without unstaging (send side).
    fn release_staging(&mut self, staging: Buffer) {
        let clock = self.mpi.clock_mut();
        staging.free(&mut self.pool, &mut self.rt, clock);
    }

    fn charge_addr(&mut self) {
        let cost = *self.rt.cost();
        let clock = self.mpi.clock_mut();
        clock.charge(cost.jni_transition());
        clock.charge(vtime::VDur::from_nanos(
            cost.jni.get_direct_buffer_address_ns,
        ));
    }

    // ------------------------------------------------------------------
    // Barrier
    // ------------------------------------------------------------------

    /// `comm.barrier()`.
    pub fn barrier(&mut self, comm: CommHandle) -> BindResult<()> {
        self.binding_call();
        self.mpi.barrier(comm)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Bcast
    // ------------------------------------------------------------------

    /// `comm.bcast(ByteBuffer, count, datatype, root)`.
    pub fn bcast_buffer(
        &mut self,
        buf: DirectBuffer,
        count: i32,
        dt: &Datatype,
        root: usize,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        self.charge_addr();
        let mut temp = self.snapshot(buf)?;
        self.mpi.bcast(&mut temp, count, dt, root, comm)?;
        self.deposit(buf, &temp)
    }

    /// `comm.bcast(type[] arr, count, datatype, root)`.
    pub fn bcast_array<T: Prim>(
        &mut self,
        arr: JArray<T>,
        count: i32,
        root: usize,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        let me = self.mpi.rank(comm)?;
        let dt = datatype_of::<T>();
        let elems = count.max(0) as usize;
        if me == root {
            let (staging, mut temp) = self.stage_region(arr, elems)?;
            self.charge_addr();
            self.mpi.bcast(&mut temp, count, &dt, root, comm)?;
            self.release_staging(staging);
        } else {
            let staging = self.stage_empty(arr, elems)?;
            let mut temp = vec![0u8; elems * T::SIZE];
            self.charge_addr();
            self.mpi.bcast(&mut temp, count, &dt, root, comm)?;
            self.unstage_region(staging, arr, &temp)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Reduce / Allreduce
    // ------------------------------------------------------------------

    /// `comm.reduce(send, recv, count, datatype, op, root)` over direct
    /// buffers; `recv` is significant at the root.
    #[allow(clippy::too_many_arguments)]
    pub fn reduce_buffer(
        &mut self,
        send: DirectBuffer,
        recv: Option<DirectBuffer>,
        count: i32,
        dt: &Datatype,
        op: ReduceOp,
        root: usize,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        self.charge_addr();
        let sendbytes = self.snapshot(send)?;
        let me = self.mpi.rank(comm)?;
        if me == root {
            let out = recv.ok_or(BindError::Mpi(mpisim::MpiError::BufferTooSmall {
                needed: dt.span(count.max(0) as usize),
                available: 0,
            }))?;
            let mut temp = self.snapshot(out)?;
            self.mpi
                .reduce(&sendbytes, Some(&mut temp), count, dt, op, root, comm)?;
            self.deposit(out, &temp)?;
        } else {
            self.mpi
                .reduce(&sendbytes, None, count, dt, op, root, comm)?;
        }
        Ok(())
    }

    /// Array flavour of reduce.
    #[allow(clippy::too_many_arguments)]
    pub fn reduce_array<T: Prim>(
        &mut self,
        send: JArray<T>,
        recv: Option<JArray<T>>,
        count: i32,
        op: ReduceOp,
        root: usize,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        let dt = datatype_of::<T>();
        let elems = count.max(0) as usize;
        let (staging, sendbytes) = self.stage_region(send, elems)?;
        self.charge_addr();
        let me = self.mpi.rank(comm)?;
        if me == root {
            let out = recv.ok_or(BindError::Mpi(mpisim::MpiError::BufferTooSmall {
                needed: dt.span(elems),
                available: 0,
            }))?;
            let rstaging = self.stage_empty(out, elems)?;
            let mut temp = vec![0u8; elems * T::SIZE];
            self.mpi
                .reduce(&sendbytes, Some(&mut temp), count, &dt, op, root, comm)?;
            self.unstage_region(rstaging, out, &temp)?;
        } else {
            self.mpi
                .reduce(&sendbytes, None, count, &dt, op, root, comm)?;
        }
        self.release_staging(staging);
        Ok(())
    }

    /// `comm.allReduce(send, recv, count, datatype, op)` over buffers.
    pub fn allreduce_buffer(
        &mut self,
        send: DirectBuffer,
        recv: DirectBuffer,
        count: i32,
        dt: &Datatype,
        op: ReduceOp,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        self.charge_addr();
        let sendbytes = self.snapshot(send)?;
        let mut temp = self.snapshot(recv)?;
        self.mpi
            .allreduce(&sendbytes, &mut temp, count, dt, op, comm)?;
        self.deposit(recv, &temp)
    }

    /// Array flavour of allreduce.
    pub fn allreduce_array<T: Prim>(
        &mut self,
        send: JArray<T>,
        recv: JArray<T>,
        count: i32,
        op: ReduceOp,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        let dt = datatype_of::<T>();
        let elems = count.max(0) as usize;
        let (staging, sendbytes) = self.stage_region(send, elems)?;
        let rstaging = self.stage_empty(recv, elems)?;
        self.charge_addr();
        let mut temp = vec![0u8; elems * T::SIZE];
        self.mpi
            .allreduce(&sendbytes, &mut temp, count, &dt, op, comm)?;
        self.unstage_region(rstaging, recv, &temp)?;
        self.release_staging(staging);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Gather / Scatter (+v)
    // ------------------------------------------------------------------

    /// `comm.gather` over buffers; `recv` significant at root and must
    /// hold `size * count` elements.
    #[allow(clippy::too_many_arguments)]
    pub fn gather_buffer(
        &mut self,
        send: DirectBuffer,
        recv: Option<DirectBuffer>,
        count: i32,
        dt: &Datatype,
        root: usize,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        self.charge_addr();
        let sendbytes = self.snapshot(send)?;
        let me = self.mpi.rank(comm)?;
        if me == root {
            let out = recv.ok_or(BindError::Mpi(mpisim::MpiError::BufferTooSmall {
                needed: 0,
                available: 0,
            }))?;
            let mut temp = self.snapshot(out)?;
            self.mpi
                .gather(&sendbytes, Some(&mut temp), count, dt, root, comm)?;
            self.deposit(out, &temp)?;
        } else {
            self.mpi.gather(&sendbytes, None, count, dt, root, comm)?;
        }
        Ok(())
    }

    /// Array flavour of gather.
    #[allow(clippy::too_many_arguments)]
    pub fn gather_array<T: Prim>(
        &mut self,
        send: JArray<T>,
        recv: Option<JArray<T>>,
        count: i32,
        root: usize,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        let dt = datatype_of::<T>();
        let elems = count.max(0) as usize;
        let p = self.mpi.size(comm)?;
        let (staging, sendbytes) = self.stage_region(send, elems)?;
        self.charge_addr();
        let me = self.mpi.rank(comm)?;
        if me == root {
            let out = recv.ok_or(BindError::Mpi(mpisim::MpiError::BufferTooSmall {
                needed: 0,
                available: 0,
            }))?;
            let rstaging = self.stage_empty(out, elems * p)?;
            let mut temp = vec![0u8; elems * p * T::SIZE];
            self.mpi
                .gather(&sendbytes, Some(&mut temp), count, &dt, root, comm)?;
            self.unstage_region(rstaging, out, &temp)?;
        } else {
            self.mpi.gather(&sendbytes, None, count, &dt, root, comm)?;
        }
        self.release_staging(staging);
        Ok(())
    }

    /// `comm.gatherv` over buffers (vectored blocking collective).
    #[allow(clippy::too_many_arguments)]
    pub fn gatherv_buffer(
        &mut self,
        send: DirectBuffer,
        sendcount: i32,
        recv: Option<DirectBuffer>,
        recvcounts: &[i32],
        displs: &[i32],
        dt: &Datatype,
        root: usize,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        self.charge_addr();
        let sendbytes = self.snapshot(send)?;
        let me = self.mpi.rank(comm)?;
        if me == root {
            let out = recv.ok_or(BindError::Mpi(mpisim::MpiError::BufferTooSmall {
                needed: 0,
                available: 0,
            }))?;
            let mut temp = self.snapshot(out)?;
            self.mpi.gatherv(
                &sendbytes,
                sendcount,
                Some(&mut temp),
                recvcounts,
                displs,
                dt,
                root,
                comm,
            )?;
            self.deposit(out, &temp)?;
        } else {
            self.mpi.gatherv(
                &sendbytes, sendcount, None, recvcounts, displs, dt, root, comm,
            )?;
        }
        Ok(())
    }

    /// Array flavour of gatherv.
    #[allow(clippy::too_many_arguments)]
    pub fn gatherv_array<T: Prim>(
        &mut self,
        send: JArray<T>,
        sendcount: i32,
        recv: Option<JArray<T>>,
        recvcounts: &[i32],
        displs: &[i32],
        root: usize,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        let dt = datatype_of::<T>();
        let (staging, sendbytes) = self.stage_region(send, send.len())?;
        self.charge_addr();
        let me = self.mpi.rank(comm)?;
        if me == root {
            let out = recv.ok_or(BindError::Mpi(mpisim::MpiError::BufferTooSmall {
                needed: 0,
                available: 0,
            }))?;
            let rstaging = self.stage_empty(out, out.len())?;
            // Seed with current contents: gatherv only fills the blocks.
            let mut temp = self.array_snapshot(out)?;
            self.mpi.gatherv(
                &sendbytes,
                sendcount,
                Some(&mut temp),
                recvcounts,
                displs,
                &dt,
                root,
                comm,
            )?;
            self.unstage_region(rstaging, out, &temp)?;
        } else {
            self.mpi.gatherv(
                &sendbytes, sendcount, None, recvcounts, displs, &dt, root, comm,
            )?;
        }
        self.release_staging(staging);
        Ok(())
    }

    /// Uncharged byte snapshot of an array (seeding receive temps).
    fn array_snapshot<T: Prim>(&self, arr: JArray<T>) -> BindResult<Vec<u8>> {
        Ok(self.rt.heap().bytes(arr.handle())?.to_vec())
    }

    /// `comm.scatter` over buffers; `send` significant at root.
    #[allow(clippy::too_many_arguments)]
    pub fn scatter_buffer(
        &mut self,
        send: Option<DirectBuffer>,
        recv: DirectBuffer,
        count: i32,
        dt: &Datatype,
        root: usize,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        self.charge_addr();
        let me = self.mpi.rank(comm)?;
        let mut temp = self.snapshot(recv)?;
        if me == root {
            let src = send.ok_or(BindError::Mpi(mpisim::MpiError::BufferTooSmall {
                needed: 0,
                available: 0,
            }))?;
            let sendbytes = self.snapshot(src)?;
            self.mpi
                .scatter(Some(&sendbytes), &mut temp, count, dt, root, comm)?;
        } else {
            self.mpi.scatter(None, &mut temp, count, dt, root, comm)?;
        }
        self.deposit(recv, &temp)
    }

    /// Array flavour of scatter.
    #[allow(clippy::too_many_arguments)]
    pub fn scatter_array<T: Prim>(
        &mut self,
        send: Option<JArray<T>>,
        recv: JArray<T>,
        count: i32,
        root: usize,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        let dt = datatype_of::<T>();
        let me = self.mpi.rank(comm)?;
        let rstaging = self.stage_empty(recv, recv.len())?;
        let mut temp = vec![0u8; recv.byte_len()];
        if me == root {
            let src = send.ok_or(BindError::Mpi(mpisim::MpiError::BufferTooSmall {
                needed: 0,
                available: 0,
            }))?;
            let (staging, sendbytes) = self.stage_region(src, src.len())?;
            self.charge_addr();
            self.mpi
                .scatter(Some(&sendbytes), &mut temp, count, &dt, root, comm)?;
            self.release_staging(staging);
        } else {
            self.charge_addr();
            self.mpi.scatter(None, &mut temp, count, &dt, root, comm)?;
        }
        self.unstage_region(rstaging, recv, &temp)
    }

    /// `comm.scatterv` over buffers.
    #[allow(clippy::too_many_arguments)]
    pub fn scatterv_buffer(
        &mut self,
        send: Option<DirectBuffer>,
        sendcounts: &[i32],
        displs: &[i32],
        recv: DirectBuffer,
        recvcount: i32,
        dt: &Datatype,
        root: usize,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        self.charge_addr();
        let me = self.mpi.rank(comm)?;
        let mut temp = self.snapshot(recv)?;
        if me == root {
            let src = send.ok_or(BindError::Mpi(mpisim::MpiError::BufferTooSmall {
                needed: 0,
                available: 0,
            }))?;
            let sendbytes = self.snapshot(src)?;
            self.mpi.scatterv(
                Some(&sendbytes),
                sendcounts,
                displs,
                &mut temp,
                recvcount,
                dt,
                root,
                comm,
            )?;
        } else {
            self.mpi.scatterv(
                None, sendcounts, displs, &mut temp, recvcount, dt, root, comm,
            )?;
        }
        self.deposit(recv, &temp)
    }

    /// Array flavour of scatterv.
    #[allow(clippy::too_many_arguments)]
    pub fn scatterv_array<T: Prim>(
        &mut self,
        send: Option<JArray<T>>,
        sendcounts: &[i32],
        displs: &[i32],
        recv: JArray<T>,
        recvcount: i32,
        root: usize,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        let dt = datatype_of::<T>();
        let me = self.mpi.rank(comm)?;
        let rstaging = self.stage_empty(recv, recv.len())?;
        let mut temp = self.array_snapshot(recv)?;
        if me == root {
            let src = send.ok_or(BindError::Mpi(mpisim::MpiError::BufferTooSmall {
                needed: 0,
                available: 0,
            }))?;
            let (staging, sendbytes) = self.stage_region(src, src.len())?;
            self.charge_addr();
            self.mpi.scatterv(
                Some(&sendbytes),
                sendcounts,
                displs,
                &mut temp,
                recvcount,
                &dt,
                root,
                comm,
            )?;
            self.release_staging(staging);
        } else {
            self.charge_addr();
            self.mpi.scatterv(
                None, sendcounts, displs, &mut temp, recvcount, &dt, root, comm,
            )?;
        }
        self.unstage_region(rstaging, recv, &temp)
    }

    // ------------------------------------------------------------------
    // Allgather / Alltoall (+v)
    // ------------------------------------------------------------------

    /// `comm.allGather` over buffers.
    pub fn allgather_buffer(
        &mut self,
        send: DirectBuffer,
        recv: DirectBuffer,
        count: i32,
        dt: &Datatype,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        self.charge_addr();
        let sendbytes = self.snapshot(send)?;
        let mut temp = self.snapshot(recv)?;
        self.mpi.allgather(&sendbytes, &mut temp, count, dt, comm)?;
        self.deposit(recv, &temp)
    }

    /// Array flavour of allgather.
    pub fn allgather_array<T: Prim>(
        &mut self,
        send: JArray<T>,
        recv: JArray<T>,
        count: i32,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        let dt = datatype_of::<T>();
        let elems = count.max(0) as usize;
        let p = self.mpi.size(comm)?;
        let (staging, sendbytes) = self.stage_region(send, elems)?;
        let rstaging = self.stage_empty(recv, elems * p)?;
        self.charge_addr();
        let mut temp = vec![0u8; elems * p * T::SIZE];
        self.mpi
            .allgather(&sendbytes, &mut temp, count, &dt, comm)?;
        self.unstage_region(rstaging, recv, &temp)?;
        self.release_staging(staging);
        Ok(())
    }

    /// `comm.allGatherv` over buffers.
    #[allow(clippy::too_many_arguments)]
    pub fn allgatherv_buffer(
        &mut self,
        send: DirectBuffer,
        sendcount: i32,
        recv: DirectBuffer,
        recvcounts: &[i32],
        displs: &[i32],
        dt: &Datatype,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        self.charge_addr();
        let sendbytes = self.snapshot(send)?;
        let mut temp = self.snapshot(recv)?;
        self.mpi.allgatherv(
            &sendbytes, sendcount, &mut temp, recvcounts, displs, dt, comm,
        )?;
        self.deposit(recv, &temp)
    }

    /// Array flavour of allgatherv.
    #[allow(clippy::too_many_arguments)]
    pub fn allgatherv_array<T: Prim>(
        &mut self,
        send: JArray<T>,
        sendcount: i32,
        recv: JArray<T>,
        recvcounts: &[i32],
        displs: &[i32],
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        let dt = datatype_of::<T>();
        let (staging, sendbytes) = self.stage_region(send, send.len())?;
        let rstaging = self.stage_empty(recv, recv.len())?;
        self.charge_addr();
        let mut temp = self.array_snapshot(recv)?;
        self.mpi.allgatherv(
            &sendbytes, sendcount, &mut temp, recvcounts, displs, &dt, comm,
        )?;
        self.unstage_region(rstaging, recv, &temp)?;
        self.release_staging(staging);
        Ok(())
    }

    /// `comm.allToAll` over buffers.
    pub fn alltoall_buffer(
        &mut self,
        send: DirectBuffer,
        recv: DirectBuffer,
        count: i32,
        dt: &Datatype,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        self.charge_addr();
        let sendbytes = self.snapshot(send)?;
        let mut temp = self.snapshot(recv)?;
        self.mpi.alltoall(&sendbytes, &mut temp, count, dt, comm)?;
        self.deposit(recv, &temp)
    }

    /// Array flavour of alltoall.
    pub fn alltoall_array<T: Prim>(
        &mut self,
        send: JArray<T>,
        recv: JArray<T>,
        count: i32,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        let dt = datatype_of::<T>();
        let elems = count.max(0) as usize;
        let p = self.mpi.size(comm)?;
        let (staging, sendbytes) = self.stage_region(send, elems * p)?;
        let rstaging = self.stage_empty(recv, elems * p)?;
        self.charge_addr();
        let mut temp = vec![0u8; elems * p * T::SIZE];
        self.mpi.alltoall(&sendbytes, &mut temp, count, &dt, comm)?;
        self.unstage_region(rstaging, recv, &temp)?;
        self.release_staging(staging);
        Ok(())
    }

    /// `comm.allToAllv` over buffers.
    #[allow(clippy::too_many_arguments)]
    pub fn alltoallv_buffer(
        &mut self,
        send: DirectBuffer,
        sendcounts: &[i32],
        sdispls: &[i32],
        recv: DirectBuffer,
        recvcounts: &[i32],
        rdispls: &[i32],
        dt: &Datatype,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        self.charge_addr();
        let sendbytes = self.snapshot(send)?;
        let mut temp = self.snapshot(recv)?;
        self.mpi.alltoallv(
            &sendbytes, sendcounts, sdispls, &mut temp, recvcounts, rdispls, dt, comm,
        )?;
        self.deposit(recv, &temp)
    }

    /// Array flavour of alltoallv.
    #[allow(clippy::too_many_arguments)]
    pub fn alltoallv_array<T: Prim>(
        &mut self,
        send: JArray<T>,
        sendcounts: &[i32],
        sdispls: &[i32],
        recv: JArray<T>,
        recvcounts: &[i32],
        rdispls: &[i32],
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        let dt = datatype_of::<T>();
        let (staging, sendbytes) = self.stage_region(send, send.len())?;
        let rstaging = self.stage_empty(recv, recv.len())?;
        self.charge_addr();
        let mut temp = self.array_snapshot(recv)?;
        self.mpi.alltoallv(
            &sendbytes, sendcounts, sdispls, &mut temp, recvcounts, rdispls, &dt, comm,
        )?;
        self.unstage_region(rstaging, recv, &temp)?;
        self.release_staging(staging);
        Ok(())
    }
}
