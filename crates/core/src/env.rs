//! The per-rank bindings environment: a managed runtime ("JVM"), a native
//! MPI library instance, and the buffering layer, wired to one virtual
//! clock.
//!
//! `Env` is what a Java MPI process is in the paper: user code manipulates
//! managed arrays and direct ByteBuffers through it, and communicates via
//! the bindings methods (see the `pt2pt` and `colls` modules), each of
//! which crosses the JNI-analog boundary into the native library.

use mpisim::{Frame, Mpi, Profile};
use mpjbuf::{BufferPool, PoolStats};
use mrt::prim::Prim;
use mrt::{DirectBuffer, GcStats, JArray, MrtResult, Runtime};
use simfabric::{run_cluster_on, EngineMode, FaultPlan, Topology};
use vtime::{CostModel, VDur, VTime};

use crate::flavor::{BindingFlavor, MVAPICH2J};
use crate::rma::WinState;

/// Job configuration: cluster shape, native library, binding flavor, and
/// managed-heap sizing.
#[derive(Debug, Clone, Copy)]
pub struct JobConfig {
    /// Cluster shape (nodes × ppn).
    pub topo: Topology,
    /// Native MPI library model underneath the bindings.
    pub profile: Profile,
    /// Java-layer personality.
    pub flavor: BindingFlavor,
    /// Calibrated cost model for the managed runtime.
    pub cost: CostModel,
    /// Initial managed heap per rank (-Xms).
    pub heap_initial: usize,
    /// Max managed heap per rank (-Xmx).
    pub heap_max: usize,
    /// Buffers the buffering-layer pool may park per size class; 0
    /// disables pooling entirely (every message allocates a fresh direct
    /// buffer — the configuration the pool exists to avoid).
    pub pool_limit: usize,
    /// Observability switches (pvar collection is always on under
    /// [`run_job_with_obs`]; this controls the per-rank event tracer).
    pub obs: obs::ObsOptions,
    /// Fault plan installed on every rank's endpoint before traffic
    /// starts; `None` runs on a perfect fabric with the reliability
    /// sublayer disabled.
    pub faults: Option<FaultPlan>,
    /// Cluster engine: one OS thread per rank (`Threaded`) or the
    /// single-threaded discrete-event loop (`EventDriven`). Virtual
    /// results are engine-invariant; the event engine lifts the rank
    /// ceiling into the thousands.
    pub engine: EngineMode,
}

impl JobConfig {
    /// MVAPICH2-J over the MVAPICH2 native profile (the paper's library).
    pub fn mvapich2j(topo: Topology) -> Self {
        JobConfig {
            topo,
            profile: Profile::mvapich2(),
            flavor: MVAPICH2J,
            cost: CostModel::default(),
            heap_initial: mrt::runtime::DEFAULT_HEAP,
            heap_max: mrt::runtime::DEFAULT_MAX_HEAP,
            pool_limit: 8,
            obs: obs::ObsOptions::default(),
            faults: None,
            engine: EngineMode::Threaded,
        }
    }

    /// Same cluster, different flavor/profile.
    pub fn with_flavor(mut self, flavor: BindingFlavor, profile: Profile) -> Self {
        self.flavor = flavor;
        self.profile = profile;
        self
    }

    /// Same job, different observability switches.
    pub fn with_obs(mut self, obs: obs::ObsOptions) -> Self {
        self.obs = obs;
        self
    }

    /// Same job, with a fault plan injected at the fabric.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Same job, run under a different cluster engine.
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }
}

/// One rank's bindings environment.
pub struct Env {
    pub(crate) rt: Runtime,
    pub(crate) mpi: Mpi,
    pub(crate) pool: BufferPool,
    pub(crate) flavor: BindingFlavor,
    pub(crate) binding_calls: u64,
    pub(crate) wins: Vec<Option<WinState>>,
}

/// Run a simulated Java MPI job: `f` executes once per rank with its own
/// [`Env`]. Results come back in rank order.
pub fn run_job<R, F>(cfg: JobConfig, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Env) -> R + Sync,
{
    run_job_with_obs(cfg, f).0
}

/// Like [`run_job`], but also harvest each rank's observability recorder
/// (pvars, and trace events when `cfg.obs.tracing` is on) into a
/// [`obs::JobReport`] with ranks in rank order.
///
/// With `cfg.obs.profiling` on, the report also carries a
/// [`obs::wallprof::SimPerf`] section: the job's wall time (measured
/// here, around the whole cluster run), each rank's final virtual clock,
/// and the per-rank wall-clock profiles. Wall readings are collected
/// strictly *after* each rank's virtual execution — they never feed a
/// virtual clock or a determinism digest.
pub fn run_job_with_obs<R, F>(cfg: JobConfig, f: F) -> (Vec<R>, obs::JobReport)
where
    R: Send,
    F: Fn(&mut Env) -> R + Sync,
{
    use std::sync::Mutex;
    let reports: Mutex<Vec<(obs::RankReport, f64)>> = Mutex::new(Vec::new());
    let wall_start = std::time::Instant::now();
    let results = run_cluster_on::<Frame, R, _>(cfg.engine, cfg.topo, |mut ep| {
        if let Some(plan) = cfg.faults {
            ep.install_faults(plan);
        }
        let rank = ep.rank();
        obs::install(rank, cfg.obs);
        // The engine is part of the span/process identity so traces from
        // the two engines are distinguishable at a glance; virtual span
        // begin/end times themselves stay engine-invariant.
        obs::set_process_label(format!(
            "rank {rank} ({}, {} engine)",
            cfg.flavor.name,
            cfg.engine.label()
        ));
        let mut env = Env {
            rt: Runtime::with_heap(cfg.cost, cfg.heap_initial, cfg.heap_max),
            mpi: Mpi::new(ep, cfg.profile),
            pool: BufferPool::with_limit(cfg.pool_limit),
            flavor: cfg.flavor,
            binding_calls: 0,
            wins: Vec::new(),
        };
        let out = f(&mut env);
        let virtual_end_ns = env.mpi.now().as_nanos();
        if let Some(rep) = obs::uninstall() {
            reports
                .lock()
                .expect("report sink")
                .push((rep, virtual_end_ns));
        }
        out
    });
    let wall_ns = wall_start.elapsed().as_nanos() as u64;
    let mut ranks = reports.into_inner().expect("report sink");
    ranks.sort_by_key(|r| r.0.rank);
    let sim_perf = cfg.obs.profiling.then(|| {
        obs::wallprof::SimPerf::from_ranks_on(
            cfg.engine.label(),
            wall_ns,
            ranks
                .iter()
                .map(|(rep, virtual_ns)| obs::wallprof::RankPerf {
                    rank: rep.rank,
                    virtual_ns: *virtual_ns,
                    prof: rep.wall.clone().unwrap_or_default(),
                })
                .collect(),
        )
    });
    let ranks = ranks.into_iter().map(|(rep, _)| rep).collect();
    (results, obs::JobReport { ranks, sim_perf })
}

impl Env {
    /// The binding flavor (library identity).
    pub fn flavor(&self) -> BindingFlavor {
        self.flavor
    }

    /// Charge the Java-side cost of one binding call: a JNI transition,
    /// argument handling, and the small-object churn that keeps the
    /// collector honest.
    pub(crate) fn binding_call(&mut self) {
        self.binding_calls += 1;
        // Anchor the telemetry sampler on the application clock at every
        // binding entry, so caller-side pvars bin to the call's virtual
        // moment under both binding flavors.
        obs::telemetry_tick(self.mpi.now());
        obs::count("bind.calls", 1);
        let garbage = self.flavor.garbage_per_call;
        let overhead = self.flavor.call_overhead_ns;
        let t0 = self.mpi.now();
        let clock = self.mpi.clock_mut();
        clock.charge(self.rt.cost().jni_transition());
        clock.charge(VDur::from_nanos(overhead));
        if garbage > 0 {
            // Status/request wrapper objects: allocated, then immediately
            // unreachable. GC pauses triggered by this churn are charged
            // inside alloc_object.
            if let Ok(h) = self.rt.alloc_object(garbage, clock) {
                let _ = self.rt.release_object(h);
            }
        }
        obs::span("bind.call", "nif", t0, self.mpi.now(), Vec::new());
    }

    /// Number of binding calls made so far (introspection).
    pub fn binding_call_count(&self) -> u64 {
        self.binding_calls
    }

    // ------------------------------------------------------------------
    // World / time
    // ------------------------------------------------------------------

    /// MPI_COMM_WORLD.
    pub fn world(&self) -> mpisim::CommHandle {
        self.mpi.world()
    }

    /// This process's rank in the world.
    pub fn rank(&self) -> usize {
        self.mpi.rank(self.mpi.world()).expect("world is valid")
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.mpi.size(self.mpi.world()).expect("world is valid")
    }

    /// `MPI.wtime()` in virtual seconds.
    pub fn wtime(&self) -> f64 {
        self.mpi.wtime()
    }

    /// Current virtual time.
    pub fn now(&self) -> VTime {
        self.mpi.now()
    }

    /// Charge pure application compute time (a workload's "think time").
    pub fn compute(&mut self, d: VDur) {
        self.mpi.clock_mut().charge(d);
    }

    // ------------------------------------------------------------------
    // Managed-runtime delegates (the "Java program" side)
    // ------------------------------------------------------------------

    /// `new T[len]`.
    pub fn new_array<T: Prim>(&mut self, len: usize) -> MrtResult<JArray<T>> {
        let clock = self.mpi.clock_mut();
        self.rt.alloc_array(len, clock)
    }

    /// Drop an array reference.
    pub fn free_array<T: Prim>(&mut self, arr: JArray<T>) -> MrtResult<()> {
        self.rt.release_array(arr)
    }

    /// `arr[idx]`.
    pub fn array_get<T: Prim>(&mut self, arr: JArray<T>, idx: usize) -> MrtResult<T> {
        let clock = self.mpi.clock_mut();
        self.rt.array_get(arr, idx, clock)
    }

    /// `arr[idx] = v`.
    pub fn array_set<T: Prim>(&mut self, arr: JArray<T>, idx: usize, v: T) -> MrtResult<()> {
        let clock = self.mpi.clock_mut();
        self.rt.array_set(arr, idx, v, clock)
    }

    /// Bulk read from an array.
    pub fn array_read<T: Prim>(
        &mut self,
        arr: JArray<T>,
        off: usize,
        out: &mut [T],
    ) -> MrtResult<()> {
        let clock = self.mpi.clock_mut();
        self.rt.array_read(arr, off, out, clock)
    }

    /// Bulk write into an array.
    pub fn array_write<T: Prim>(&mut self, arr: JArray<T>, off: usize, src: &[T]) -> MrtResult<()> {
        let clock = self.mpi.clock_mut();
        self.rt.array_write(arr, off, src, clock)
    }

    /// `ByteBuffer.allocateDirect(cap)`.
    pub fn new_direct(&mut self, cap: usize) -> DirectBuffer {
        let clock = self.mpi.clock_mut();
        self.rt.allocate_direct(cap, clock)
    }

    /// Free a direct buffer.
    pub fn free_direct(&mut self, b: DirectBuffer) -> MrtResult<()> {
        let clock = self.mpi.clock_mut();
        self.rt.free_direct(b, clock)
    }

    /// Absolute typed put on a direct buffer.
    pub fn direct_put<T: Prim>(&mut self, b: DirectBuffer, byte_idx: usize, v: T) -> MrtResult<()> {
        let clock = self.mpi.clock_mut();
        self.rt.direct_put(b, byte_idx, v, clock)
    }

    /// Absolute typed get on a direct buffer.
    pub fn direct_get<T: Prim>(&mut self, b: DirectBuffer, byte_idx: usize) -> MrtResult<T> {
        let clock = self.mpi.clock_mut();
        self.rt.direct_get(b, byte_idx, clock)
    }

    /// Charge a populate/validate loop over `n` array elements (helper
    /// for benchmarks; virtual cost identical to `n` `array_get/set`s).
    pub fn charge_array_loop(&mut self, n: usize) {
        let clock = self.mpi.clock_mut();
        self.rt.charge_array_loop(n, clock);
    }

    /// Charge a populate/validate loop over `n` direct-buffer elements.
    pub fn charge_direct_loop(&mut self, n: usize) {
        let clock = self.mpi.clock_mut();
        self.rt.charge_direct_loop(n, clock);
    }

    /// Force a collection (`System.gc()`).
    pub fn gc(&mut self) {
        let clock = self.mpi.clock_mut();
        self.rt.gc(clock);
    }

    /// Collector statistics.
    pub fn gc_stats(&self) -> GcStats {
        self.rt.gc_stats()
    }

    /// Buffering-layer pool statistics.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Direct buffers ever created by this rank's runtime.
    pub fn direct_allocations(&self) -> u64 {
        self.rt.direct_allocations()
    }

    /// Fabric-level traffic counters.
    pub fn fabric_stats(&self) -> simfabric::SendStats {
        self.mpi.fabric_stats()
    }

    /// Escape hatch: the underlying native library (for tests comparing
    /// the Java layer against direct native calls, as Figure 11 does).
    pub fn native_mut(&mut self) -> &mut Mpi {
        &mut self.mpi
    }

    /// Escape hatch: the managed runtime.
    pub fn runtime_mut(&mut self) -> (&mut Runtime, &mut vtime::Clock) {
        (&mut self.rt, self.mpi.clock_mut())
    }
}
