//! Binding flavors: what distinguishes MVAPICH2-J from Open MPI-J at the
//! Java layer.
//!
//! Both libraries follow the same API; they differ in (a) the native
//! library underneath, (b) the per-call Java-side overhead, and (c) API
//! restrictions — Open MPI-J does not support Java arrays with
//! non-blocking point-to-point operations, which is why the paper's
//! bandwidth figures have no "Open MPI-J arrays" series.

use mpisim::Profile;

/// The Java-layer personality of a bindings library.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BindingFlavor {
    /// Library name used in figure labels ("MVAPICH2-J", "Open MPI-J").
    pub name: &'static str,
    /// Java-side overhead per binding call (argument checking, handle
    /// resolution, small-object churn) — on top of the JNI transition.
    pub call_overhead_ns: f64,
    /// Whether Java arrays may be used with non-blocking point-to-point
    /// operations.
    pub arrays_with_nonblocking: bool,
    /// Bytes of small-object garbage each binding call leaves on the
    /// managed heap (status/request wrappers); drives GC activity.
    pub garbage_per_call: usize,
}

/// MVAPICH2-J: the paper's library. Minimal Java layer, buffering layer
/// for arrays, no API restrictions.
pub const MVAPICH2J: BindingFlavor = BindingFlavor {
    name: "MVAPICH2-J",
    call_overhead_ns: 130.0,
    arrays_with_nonblocking: true,
    garbage_per_call: 48,
};

/// Open MPI-J: the comparator. Slightly heavier Java layer and the
/// documented array/non-blocking restriction.
pub const OPENMPIJ: BindingFlavor = BindingFlavor {
    name: "Open MPI-J",
    call_overhead_ns: 180.0,
    arrays_with_nonblocking: false,
    garbage_per_call: 64,
};

impl BindingFlavor {
    /// The native profile this flavor is conventionally paired with.
    pub fn default_profile(&self) -> Profile {
        if self.name == "Open MPI-J" {
            Profile::openmpi_ucx()
        } else {
            Profile::mvapich2()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flavors_differ_where_the_paper_says() {
        assert!(MVAPICH2J.arrays_with_nonblocking);
        assert!(!OPENMPIJ.arrays_with_nonblocking);
        assert!(OPENMPIJ.call_overhead_ns > MVAPICH2J.call_overhead_ns);
    }

    #[test]
    fn default_profiles_pair_correctly() {
        assert_eq!(MVAPICH2J.default_profile().name, "MVAPICH2");
        assert_eq!(OPENMPIJ.default_profile().name, "Open MPI");
    }
}
