//! Point-to-point bindings: the Open-MPI-Java-style API over the native
//! library, for both buffer kinds.
//!
//! * **Direct ByteBuffers** (Section IV-C): the binding resolves the
//!   buffer's stable native address (`GetDirectBufferAddress`) and hands
//!   it straight to the native library — zero Java-side copies.
//! * **Java arrays** (Section IV-B): the binding stages the data through
//!   a pooled direct buffer from the buffering layer (one explicit copy
//!   each way), which also enables derived datatypes and — as an
//!   extension the paper proposes for the future — array *subsets* via an
//!   offset argument (`send_array_slice`).

use mpisim::datatype::Datatype;
use mpisim::CommHandle;
use mpjbuf::Buffer;
use mrt::prim::Prim;
use mrt::{DirectBuffer, JArray};
use vtime::VDur;

use crate::datatype::{check_base, datatype_of};
use crate::env::Env;
use crate::error::{BindError, BindResult};
use crate::request::{ArrayDest, JRequest, JStatus, PostAction, TestOutcome};
use crate::stage::{stage_from_array, unstage_to_array};

impl Env {
    /// Charge the `GetDirectBufferAddress` JNI cost.
    pub(crate) fn charge_buffer_address(&mut self) {
        let cost = *self.rt.cost();
        let t0 = self.mpi.now();
        let clock = self.mpi.clock_mut();
        clock.charge(cost.jni_transition());
        clock.charge(VDur::from_nanos(cost.jni.get_direct_buffer_address_ns));
        obs::span("direct_address", "nif", t0, self.mpi.now(), Vec::new());
    }

    pub(crate) fn check_dt_capacity(
        buf: DirectBuffer,
        count: i32,
        dt: &Datatype,
    ) -> BindResult<usize> {
        if count < 0 {
            return Err(BindError::Mpi(mpisim::MpiError::InvalidCount { count }));
        }
        let span = dt.span(count as usize);
        if span > buf.capacity() {
            return Err(BindError::Runtime(mrt::MrtError::BufferOverflow {
                needed: span,
                available: buf.capacity(),
            }));
        }
        Ok(span)
    }

    // ------------------------------------------------------------------
    // Direct-ByteBuffer path
    // ------------------------------------------------------------------

    fn isend_buffer_raw(
        &mut self,
        buf: DirectBuffer,
        count: i32,
        dt: &Datatype,
        dst: usize,
        tag: i32,
        comm: CommHandle,
    ) -> BindResult<JRequest> {
        let span = Self::check_dt_capacity(buf, count, dt)?;
        self.charge_buffer_address();
        // The native call reads straight out of the buffer's storage.
        let bytes = self.rt.direct_bytes(buf)?;
        let native = self.mpi.isend(&bytes[..span], count, dt, dst, tag, comm)?;
        Ok(JRequest {
            native,
            post: PostAction::SendDone,
            pinned: None,
        })
    }

    fn irecv_buffer_raw(
        &mut self,
        buf: DirectBuffer,
        count: i32,
        dt: &Datatype,
        src: i32,
        tag: i32,
        comm: CommHandle,
    ) -> BindResult<JRequest> {
        let span = Self::check_dt_capacity(buf, count, dt)?;
        self.charge_buffer_address();
        let native = self.mpi.irecv(count, dt, src, tag, comm)?;
        Ok(JRequest {
            native,
            post: PostAction::RecvBuffer { buf, span },
            pinned: None,
        })
    }

    /// `comm.send(ByteBuffer, count, datatype, dst, tag)`.
    pub fn send_buffer(
        &mut self,
        buf: DirectBuffer,
        count: i32,
        dt: &Datatype,
        dst: usize,
        tag: i32,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        let req = self.isend_buffer_raw(buf, count, dt, dst, tag, comm)?;
        self.wait_raw(req).map(|_| ())
    }

    /// `comm.recv(ByteBuffer, count, datatype, src, tag)`.
    pub fn recv_buffer(
        &mut self,
        buf: DirectBuffer,
        count: i32,
        dt: &Datatype,
        src: i32,
        tag: i32,
        comm: CommHandle,
    ) -> BindResult<JStatus> {
        self.binding_call();
        let req = self.irecv_buffer_raw(buf, count, dt, src, tag, comm)?;
        self.wait_raw(req)
    }

    /// `comm.iSend(ByteBuffer, ...)`.
    pub fn isend_buffer(
        &mut self,
        buf: DirectBuffer,
        count: i32,
        dt: &Datatype,
        dst: usize,
        tag: i32,
        comm: CommHandle,
    ) -> BindResult<JRequest> {
        self.binding_call();
        self.isend_buffer_raw(buf, count, dt, dst, tag, comm)
    }

    /// `comm.iRecv(ByteBuffer, ...)`.
    pub fn irecv_buffer(
        &mut self,
        buf: DirectBuffer,
        count: i32,
        dt: &Datatype,
        src: i32,
        tag: i32,
        comm: CommHandle,
    ) -> BindResult<JRequest> {
        self.binding_call();
        self.irecv_buffer_raw(buf, count, dt, src, tag, comm)
    }

    // ------------------------------------------------------------------
    // Java-array path (through the buffering layer)
    // ------------------------------------------------------------------

    fn isend_array_raw<T: Prim>(
        &mut self,
        arr: JArray<T>,
        elem_off: usize,
        count: i32,
        dt: &Datatype,
        dst: usize,
        tag: i32,
        comm: CommHandle,
    ) -> BindResult<JRequest> {
        if count < 0 {
            return Err(BindError::Mpi(mpisim::MpiError::InvalidCount { count }));
        }
        if !check_base::<T>(dt) {
            return Err(BindError::DatatypeMismatch {
                expected: T::TYPE.name(),
                datatype: dt.name(),
            });
        }
        let count = count as usize;
        let packed = dt.size() * count;
        // Buffering layer: pooled direct buffer + gather copy.
        let clock = self.mpi.clock_mut();
        let staging = Buffer::from_pool(&mut self.pool, &mut self.rt, clock, packed.max(1));
        stage_from_array(
            &mut self.rt,
            clock,
            staging.store(),
            arr.handle(),
            elem_off * T::SIZE,
            count,
            dt,
        )?;
        self.charge_buffer_address();
        // Native sees a contiguous run of base elements.
        let base_dt = datatype_of::<T>();
        let elems = (packed / T::SIZE) as i32;
        let bytes = self.rt.direct_bytes(staging.store())?;
        let native = self
            .mpi
            .isend(&bytes[..packed], elems, &base_dt, dst, tag, comm)?;
        Ok(JRequest {
            native,
            post: PostAction::SendStaged { staging },
            pinned: None,
        })
    }

    fn irecv_array_raw<T: Prim>(
        &mut self,
        arr: JArray<T>,
        elem_off: usize,
        count: i32,
        dt: &Datatype,
        src: i32,
        tag: i32,
        comm: CommHandle,
    ) -> BindResult<JRequest> {
        if count < 0 {
            return Err(BindError::Mpi(mpisim::MpiError::InvalidCount { count }));
        }
        if !check_base::<T>(dt) {
            return Err(BindError::DatatypeMismatch {
                expected: T::TYPE.name(),
                datatype: dt.name(),
            });
        }
        let count = count as usize;
        let packed = dt.size() * count;
        let clock = self.mpi.clock_mut();
        let staging = Buffer::from_pool(&mut self.pool, &mut self.rt, clock, packed.max(1));
        self.charge_buffer_address();
        let base_dt = datatype_of::<T>();
        let elems = (packed / T::SIZE) as i32;
        let native = self.mpi.irecv(elems, &base_dt, src, tag, comm)?;
        Ok(JRequest {
            native,
            post: PostAction::RecvArray {
                staging,
                dest: ArrayDest {
                    handle: arr.handle(),
                    byte_off: elem_off * T::SIZE,
                    byte_len: arr.byte_len(),
                },
                dt: dt.clone(),
                count,
            },
            pinned: None,
        })
    }

    /// `comm.send(type[] arr, count, datatype, dst, tag)` — natural
    /// datatype.
    pub fn send_array<T: Prim>(
        &mut self,
        arr: JArray<T>,
        count: i32,
        dst: usize,
        tag: i32,
        comm: CommHandle,
    ) -> BindResult<()> {
        let dt = datatype_of::<T>();
        self.send_array_dt(arr, count, &dt, dst, tag, comm)
    }

    /// Array send with an explicit (possibly derived) datatype.
    pub fn send_array_dt<T: Prim>(
        &mut self,
        arr: JArray<T>,
        count: i32,
        dt: &Datatype,
        dst: usize,
        tag: i32,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        let req = self.isend_array_raw(arr, 0, count, dt, dst, tag, comm)?;
        self.wait_raw(req).map(|_| ())
    }

    /// Extension (Section IV-B): send a *subset* of an array, restoring
    /// the `offset` argument the Open MPI Java API dropped. The buffering
    /// layer copies only the subset.
    pub fn send_array_slice<T: Prim>(
        &mut self,
        arr: JArray<T>,
        elem_off: usize,
        count: i32,
        dst: usize,
        tag: i32,
        comm: CommHandle,
    ) -> BindResult<()> {
        self.binding_call();
        let dt = datatype_of::<T>();
        let req = self.isend_array_raw(arr, elem_off, count, &dt, dst, tag, comm)?;
        self.wait_raw(req).map(|_| ())
    }

    /// `comm.recv(type[] arr, count, datatype, src, tag)`.
    pub fn recv_array<T: Prim>(
        &mut self,
        arr: JArray<T>,
        count: i32,
        src: i32,
        tag: i32,
        comm: CommHandle,
    ) -> BindResult<JStatus> {
        let dt = datatype_of::<T>();
        self.recv_array_dt(arr, count, &dt, src, tag, comm)
    }

    /// Array receive with an explicit (possibly derived) datatype.
    pub fn recv_array_dt<T: Prim>(
        &mut self,
        arr: JArray<T>,
        count: i32,
        dt: &Datatype,
        src: i32,
        tag: i32,
        comm: CommHandle,
    ) -> BindResult<JStatus> {
        self.binding_call();
        let req = self.irecv_array_raw(arr, 0, count, dt, src, tag, comm)?;
        self.wait_raw(req)
    }

    /// Extension: receive into a subset of an array.
    pub fn recv_array_slice<T: Prim>(
        &mut self,
        arr: JArray<T>,
        elem_off: usize,
        count: i32,
        src: i32,
        tag: i32,
        comm: CommHandle,
    ) -> BindResult<JStatus> {
        self.binding_call();
        let dt = datatype_of::<T>();
        let req = self.irecv_array_raw(arr, elem_off, count, &dt, src, tag, comm)?;
        self.wait_raw(req)
    }

    /// `comm.iSend(type[] arr, ...)`. MVAPICH2-J supports this; Open
    /// MPI-J raises the documented unsupported-operation error.
    pub fn isend_array<T: Prim>(
        &mut self,
        arr: JArray<T>,
        count: i32,
        dst: usize,
        tag: i32,
        comm: CommHandle,
    ) -> BindResult<JRequest> {
        if !self.flavor.arrays_with_nonblocking {
            return Err(BindError::Unsupported(
                "Java arrays with non-blocking point-to-point operations",
            ));
        }
        self.binding_call();
        let dt = datatype_of::<T>();
        self.isend_array_raw(arr, 0, count, &dt, dst, tag, comm)
    }

    /// `comm.iRecv(type[] arr, ...)` (same restriction as
    /// [`Env::isend_array`]).
    pub fn irecv_array<T: Prim>(
        &mut self,
        arr: JArray<T>,
        count: i32,
        src: i32,
        tag: i32,
        comm: CommHandle,
    ) -> BindResult<JRequest> {
        if !self.flavor.arrays_with_nonblocking {
            return Err(BindError::Unsupported(
                "Java arrays with non-blocking point-to-point operations",
            ));
        }
        self.binding_call();
        let dt = datatype_of::<T>();
        self.irecv_array_raw(arr, 0, count, &dt, src, tag, comm)
    }

    // ------------------------------------------------------------------
    // Completion
    // ------------------------------------------------------------------

    /// Temp buffer (user layout) the native wait/test deposits into, for
    /// post-actions that need one. RecvBuffer temps are seeded with the
    /// buffer's current content so derived-datatype gaps survive.
    fn prepare_temp(&mut self, post: &PostAction) -> BindResult<Option<Vec<u8>>> {
        match post {
            PostAction::SendDone | PostAction::SendStaged { .. } => Ok(None),
            PostAction::RecvBuffer { buf, span } => {
                let mut temp = vec![0u8; *span];
                temp.copy_from_slice(&self.rt.direct_bytes(*buf)?[..*span]);
                Ok(Some(temp))
            }
            PostAction::RecvArray { dt, count, .. } => Ok(Some(vec![0u8; dt.size() * count])),
        }
    }

    /// Run the Java-side completion actions once the native request is
    /// done.
    fn finish_post(
        &mut self,
        post: PostAction,
        st: mpisim::Status,
        temp: Option<Vec<u8>>,
    ) -> BindResult<JStatus> {
        match post {
            PostAction::SendDone => {}
            PostAction::SendStaged { staging } => {
                let clock = self.mpi.clock_mut();
                staging.free(&mut self.pool, &mut self.rt, clock);
            }
            PostAction::RecvBuffer { buf, span } => {
                // The native library deposited straight into the direct
                // buffer (conceptually DMA — uncharged).
                let temp = temp.expect("recv temp prepared");
                self.rt.direct_bytes_mut(buf)?[..span].copy_from_slice(&temp);
            }
            PostAction::RecvArray {
                staging,
                dest,
                dt,
                count,
            } => {
                let temp = temp.expect("recv temp prepared");
                // Native deposited into the staging buffer (DMA).
                self.rt.direct_bytes_mut(staging.store())?[..st.bytes]
                    .copy_from_slice(&temp[..st.bytes]);
                // Buffering layer scatters into the managed array.
                let clock = self.mpi.clock_mut();
                unstage_to_array(
                    &mut self.rt,
                    clock,
                    staging.store(),
                    &dest,
                    count,
                    &dt,
                    st.bytes,
                )?;
                let clock = self.mpi.clock_mut();
                staging.free(&mut self.pool, &mut self.rt, clock);
            }
        }
        Ok(JStatus {
            source: st.source as i32,
            tag: st.tag,
            bytes: st.bytes,
        })
    }

    /// Release a request's pinned send-side staging (collective sends
    /// hold theirs until completion).
    fn release_pinned(&mut self, pinned: Option<mpjbuf::Buffer>) {
        if let Some(staging) = pinned {
            let clock = self.mpi.clock_mut();
            staging.free(&mut self.pool, &mut self.rt, clock);
        }
    }

    pub(crate) fn wait_raw(&mut self, req: JRequest) -> BindResult<JStatus> {
        let mut temp = self.prepare_temp(&req.post)?;
        let st = self.mpi.wait(req.native, temp.as_deref_mut())?;
        self.release_pinned(req.pinned);
        self.finish_post(req.post, st, temp)
    }

    /// `request.waitFor()`.
    pub fn wait(&mut self, req: JRequest) -> BindResult<JStatus> {
        self.binding_call();
        self.wait_raw(req)
    }

    /// `Request.waitAll(...)`: statuses come back in request order, but
    /// progression is joint — the whole batch is handed to the native
    /// library's `Waitall`, so an early-completing later request (or a
    /// non-blocking collective mixed in with point-to-point requests)
    /// never waits on an earlier slow one.
    pub fn waitall(&mut self, reqs: Vec<JRequest>) -> BindResult<Vec<JStatus>> {
        self.binding_call();
        let mut natives = Vec::with_capacity(reqs.len());
        let mut posts = Vec::with_capacity(reqs.len());
        let mut pins = Vec::with_capacity(reqs.len());
        for r in reqs {
            natives.push(r.native);
            posts.push(r.post);
            pins.push(r.pinned);
        }
        let mut temps = Vec::with_capacity(posts.len());
        for post in &posts {
            temps.push(self.prepare_temp(post)?);
        }
        let bufs: Vec<Option<&mut [u8]>> = temps.iter_mut().map(|t| t.as_deref_mut()).collect();
        let statuses = self.mpi.waitall(natives, bufs)?;
        let mut out = Vec::with_capacity(posts.len());
        for ((post, pinned), (st, temp)) in posts
            .into_iter()
            .zip(pins)
            .zip(statuses.into_iter().zip(temps))
        {
            self.release_pinned(pinned);
            out.push(self.finish_post(post, st, temp)?);
        }
        Ok(out)
    }

    /// `request.test()`: non-blocking completion check; hands the request
    /// back when still pending.
    pub fn test(&mut self, req: JRequest) -> BindResult<TestOutcome> {
        self.binding_call();
        let mut temp = self.prepare_temp(&req.post)?;
        match self.mpi.test(&req.native, temp.as_deref_mut())? {
            None => Ok(TestOutcome::Pending(req)),
            Some(st) => {
                self.release_pinned(req.pinned);
                self.finish_post(req.post, st, temp).map(TestOutcome::Done)
            }
        }
    }

    /// `Request.testAny(...)`: poll the batch once; on a hit the
    /// completed request is removed from `reqs` and its original index
    /// and status are returned. Each poll also progresses every
    /// outstanding non-blocking collective.
    pub fn testany(&mut self, reqs: &mut Vec<JRequest>) -> BindResult<Option<(usize, JStatus)>> {
        self.binding_call();
        for i in 0..reqs.len() {
            let mut temp = self.prepare_temp(&reqs[i].post)?;
            if let Some(st) = self.mpi.test(&reqs[i].native, temp.as_deref_mut())? {
                let req = reqs.remove(i);
                self.release_pinned(req.pinned);
                let status = self.finish_post(req.post, st, temp)?;
                return Ok(Some((i, status)));
            }
        }
        Ok(None)
    }
}
