//! **MVAPICH2-J** (`mvapich2j`) — the paper's primary contribution,
//! reproduced in Rust: Java-bindings-style MPI over a simulated native
//! MVAPICH2 library, with a deliberately *minimal* "Java" layer.
//!
//! The library follows the Open MPI Java bindings API (Section II-C):
//!
//! * communication to/from **direct ByteBuffers** — stable off-heap
//!   storage handed to the native library with zero Java-side copies
//!   (`send_buffer`, `bcast_buffer`, …);
//! * communication to/from **Java arrays** — staged through the `mpjbuf`
//!   buffering layer's pooled direct buffers (`send_array`,
//!   `allreduce_array`, …), which also enables derived datatypes and, as
//!   an extension, array subsets (`send_array_slice`);
//! * blocking and non-blocking point-to-point, blocking collectives and
//!   blocking *vectored* collectives, and communicator/group management;
//! * unlike Open MPI-J, Java arrays work with non-blocking operations —
//!   the buffering layer owns the staging buffer until completion.
//!
//! Jobs run under [`run_job`]: one thread per simulated rank, each with
//! its own managed runtime ("JVM"), native library instance, and buffer
//! pool, all sharing a deterministic virtual clock. See the repository's
//! `DESIGN.md` for how this reproduces the paper's evaluation.
//!
//! ```
//! use mvapich2j::{run_job, JobConfig};
//! use mvapich2j::datatype::INT;
//! use simfabric::Topology;
//!
//! // 2 ranks on one node: rank 0 sends four ints to rank 1.
//! let results = run_job(JobConfig::mvapich2j(Topology::single_node(2)), |env| {
//!     let world = env.world();
//!     if env.rank() == 0 {
//!         let arr = env.new_array::<i32>(4).unwrap();
//!         for i in 0..4 {
//!             env.array_set(arr, i, i as i32 * 2).unwrap();
//!         }
//!         env.send_array(arr, 4, 1, 99, world).unwrap();
//!         0
//!     } else {
//!         let arr = env.new_array::<i32>(4).unwrap();
//!         let st = env.recv_array(arr, 4, 0, 99, world).unwrap();
//!         assert_eq!(st.bytes, 16);
//!         env.array_get(arr, 3).unwrap()
//!     }
//! });
//! assert_eq!(results[1], 6);
//! ```

pub mod colls;
pub mod comm;
pub mod datatype;
pub mod env;
pub mod error;
pub mod flavor;
pub mod icolls;
pub mod pt2pt;
pub mod request;
pub mod rma;
pub mod stage;

pub use env::{run_job, run_job_with_obs, Env, JobConfig};
pub use error::{BindError, BindResult};
pub use flavor::{BindingFlavor, MVAPICH2J, OPENMPIJ};
pub use request::{JRequest, JStatus, TestOutcome};
pub use rma::JWin;

// Re-exports so applications need only this crate.
pub use mpisim::{CommHandle, Group, MpiError, Profile, ReduceOp};
pub use mrt::{ByteOrder, DirectBuffer, JArray};
pub use simfabric::{EngineMode, Topology};
