//! Non-blocking collective bindings: `iBcast`, `iAllReduce`,
//! `iAllGather`, `iGather`, `iAllToAll`, and `iBarrier`, for direct
//! ByteBuffers and Java arrays.
//!
//! The native library compiles each call into a collective schedule and
//! progresses it whenever the rank is inside MPI (see `mpisim::coll::
//! sched`); the binding returns a [`JRequest`] whose completion deposits
//! the result.
//!
//! * **Direct ByteBuffers**: the source is read at post time, the
//!   destination deposited at `Wait`/`Test` — zero Java-side copies.
//! * **Java arrays** (MVAPICH2-J only, like non-blocking
//!   point-to-point): the participating region stages through a pooled
//!   direct buffer. The request *pins* that buffer — it is not
//!   returned to the pool until completion, so a collection running
//!   while the schedule is in flight can never hand the storage to
//!   someone else. GC safety is by construction, not by luck.

use mpisim::datatype::Datatype;
use mpisim::{CommHandle, ReduceOp};
use mrt::prim::Prim;
use mrt::{DirectBuffer, JArray};

use crate::datatype::datatype_of;
use crate::env::Env;
use crate::error::{BindError, BindResult};
use crate::request::{ArrayDest, JRequest, PostAction};

impl Env {
    /// Capacity check for a completion buffer that will hold `elems`
    /// elements of `dt`.
    fn check_capacity(&self, buf: DirectBuffer, elems: usize, dt: &Datatype) -> BindResult<usize> {
        let span = dt.span(elems);
        if span > buf.capacity() {
            return Err(BindError::Runtime(mrt::MrtError::BufferOverflow {
                needed: span,
                available: buf.capacity(),
            }));
        }
        Ok(span)
    }

    fn check_nb_count(count: i32) -> BindResult<usize> {
        if count < 0 {
            return Err(BindError::Mpi(mpisim::MpiError::InvalidCount { count }));
        }
        Ok(count as usize)
    }

    /// The documented restriction, extended to collectives: Open MPI-J
    /// cannot pair Java arrays with non-blocking operations.
    fn check_array_nb(&self) -> BindResult<()> {
        if !self.flavor.arrays_with_nonblocking {
            return Err(BindError::Unsupported(
                "Java arrays with non-blocking collective operations",
            ));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Barrier
    // ------------------------------------------------------------------

    /// `comm.iBarrier()`.
    pub fn ibarrier(&mut self, comm: CommHandle) -> BindResult<JRequest> {
        self.binding_call();
        let native = self.mpi.ibarrier(comm)?;
        Ok(JRequest {
            native,
            post: PostAction::SendDone,
            pinned: None,
        })
    }

    // ------------------------------------------------------------------
    // Direct-ByteBuffer flavour
    // ------------------------------------------------------------------

    /// `comm.iBcast(ByteBuffer, count, datatype, root)`: the buffer is
    /// read at the root and receives the payload on every rank at
    /// completion.
    pub fn ibcast_buffer(
        &mut self,
        buf: DirectBuffer,
        count: i32,
        dt: &Datatype,
        root: usize,
        comm: CommHandle,
    ) -> BindResult<JRequest> {
        self.binding_call();
        let elems = Self::check_nb_count(count)?;
        let span = self.check_capacity(buf, elems, dt)?;
        self.charge_buffer_address();
        let bytes = self.rt.direct_bytes(buf)?[..span].to_vec();
        let native = self.mpi.ibcast(&bytes, count, dt, root, comm)?;
        Ok(JRequest {
            native,
            post: PostAction::RecvBuffer { buf, span },
            pinned: None,
        })
    }

    /// `comm.iAllReduce(send, recv, count, datatype, op)` over buffers.
    pub fn iallreduce_buffer(
        &mut self,
        send: DirectBuffer,
        recv: DirectBuffer,
        count: i32,
        dt: &Datatype,
        op: ReduceOp,
        comm: CommHandle,
    ) -> BindResult<JRequest> {
        self.binding_call();
        let elems = Self::check_nb_count(count)?;
        let span = self.check_capacity(recv, elems, dt)?;
        self.check_capacity(send, elems, dt)?;
        self.charge_buffer_address();
        let bytes = self.rt.direct_bytes(send)?[..dt.span(elems)].to_vec();
        let native = self.mpi.iallreduce(&bytes, count, dt, op, comm)?;
        Ok(JRequest {
            native,
            post: PostAction::RecvBuffer { buf: recv, span },
            pinned: None,
        })
    }

    /// `comm.iAllGather(send, recv, count, datatype)` over buffers;
    /// `recv` holds `size × count` elements at completion.
    pub fn iallgather_buffer(
        &mut self,
        send: DirectBuffer,
        recv: DirectBuffer,
        count: i32,
        dt: &Datatype,
        comm: CommHandle,
    ) -> BindResult<JRequest> {
        self.binding_call();
        let elems = Self::check_nb_count(count)?;
        let p = self.mpi.size(comm)?;
        let span = self.check_capacity(recv, elems * p, dt)?;
        self.check_capacity(send, elems, dt)?;
        self.charge_buffer_address();
        let bytes = self.rt.direct_bytes(send)?[..dt.span(elems)].to_vec();
        let native = self.mpi.iallgather(&bytes, count, dt, comm)?;
        Ok(JRequest {
            native,
            post: PostAction::RecvBuffer { buf: recv, span },
            pinned: None,
        })
    }

    /// `comm.iGather(send, recv, count, datatype, root)` over buffers;
    /// `recv` is significant only at the root.
    #[allow(clippy::too_many_arguments)]
    pub fn igather_buffer(
        &mut self,
        send: DirectBuffer,
        recv: Option<DirectBuffer>,
        count: i32,
        dt: &Datatype,
        root: usize,
        comm: CommHandle,
    ) -> BindResult<JRequest> {
        self.binding_call();
        let elems = Self::check_nb_count(count)?;
        self.check_capacity(send, elems, dt)?;
        let me = self.mpi.rank(comm)?;
        let post = if me == root {
            let p = self.mpi.size(comm)?;
            let out = recv.ok_or(BindError::Mpi(mpisim::MpiError::BufferTooSmall {
                needed: dt.span(elems * p),
                available: 0,
            }))?;
            let span = self.check_capacity(out, elems * p, dt)?;
            PostAction::RecvBuffer { buf: out, span }
        } else {
            PostAction::SendDone
        };
        self.charge_buffer_address();
        let bytes = self.rt.direct_bytes(send)?[..dt.span(elems)].to_vec();
        let native = self.mpi.igather(&bytes, count, dt, root, comm)?;
        Ok(JRequest {
            native,
            post,
            pinned: None,
        })
    }

    /// `comm.iAllToAll(send, recv, count, datatype)` over buffers; both
    /// hold `size × count` elements (one block per peer).
    pub fn ialltoall_buffer(
        &mut self,
        send: DirectBuffer,
        recv: DirectBuffer,
        count: i32,
        dt: &Datatype,
        comm: CommHandle,
    ) -> BindResult<JRequest> {
        self.binding_call();
        let elems = Self::check_nb_count(count)?;
        let p = self.mpi.size(comm)?;
        let span = self.check_capacity(recv, elems * p, dt)?;
        self.check_capacity(send, elems * p, dt)?;
        self.charge_buffer_address();
        let bytes = self.rt.direct_bytes(send)?[..dt.span(elems * p)].to_vec();
        let native = self.mpi.ialltoall(&bytes, count, dt, comm)?;
        Ok(JRequest {
            native,
            post: PostAction::RecvBuffer { buf: recv, span },
            pinned: None,
        })
    }

    // ------------------------------------------------------------------
    // Java-array flavour (staging pinned for the schedule lifetime)
    // ------------------------------------------------------------------

    /// Build the unstage destination for a receive array.
    fn recv_array_post<T: Prim>(&mut self, arr: JArray<T>, elems: usize) -> BindResult<PostAction> {
        let staging = self.stage_empty(arr, elems)?;
        Ok(PostAction::RecvArray {
            staging,
            dest: ArrayDest {
                handle: arr.handle(),
                byte_off: 0,
                byte_len: arr.byte_len(),
            },
            dt: datatype_of::<T>(),
            count: elems,
        })
    }

    /// `comm.iBcast(type[] arr, count, datatype, root)`.
    pub fn ibcast_array<T: Prim>(
        &mut self,
        arr: JArray<T>,
        count: i32,
        root: usize,
        comm: CommHandle,
    ) -> BindResult<JRequest> {
        self.check_array_nb()?;
        self.binding_call();
        let elems = Self::check_nb_count(count)?;
        let dt = datatype_of::<T>();
        let me = self.mpi.rank(comm)?;
        // The root stages its payload in; every rank (root included)
        // receives the delivered payload back through a pinned staging
        // buffer at completion.
        let (post, bytes) = if me == root {
            let (staging, bytes) = self.stage_region(arr, elems)?;
            (
                PostAction::RecvArray {
                    staging,
                    dest: ArrayDest {
                        handle: arr.handle(),
                        byte_off: 0,
                        byte_len: arr.byte_len(),
                    },
                    dt: dt.clone(),
                    count: elems,
                },
                bytes,
            )
        } else {
            (
                self.recv_array_post(arr, elems)?,
                vec![0u8; elems * T::SIZE],
            )
        };
        self.charge_buffer_address();
        let native = self.mpi.ibcast(&bytes, count, &dt, root, comm)?;
        Ok(JRequest {
            native,
            post,
            pinned: None,
        })
    }

    /// `comm.iAllReduce(type[] send, type[] recv, count, op)`.
    pub fn iallreduce_array<T: Prim>(
        &mut self,
        send: JArray<T>,
        recv: JArray<T>,
        count: i32,
        op: ReduceOp,
        comm: CommHandle,
    ) -> BindResult<JRequest> {
        self.check_array_nb()?;
        self.binding_call();
        let elems = Self::check_nb_count(count)?;
        let dt = datatype_of::<T>();
        let (staging, bytes) = self.stage_region(send, elems)?;
        let post = self.recv_array_post(recv, elems)?;
        self.charge_buffer_address();
        let native = self.mpi.iallreduce(&bytes, count, &dt, op, comm)?;
        Ok(JRequest {
            native,
            post,
            pinned: Some(staging),
        })
    }

    /// `comm.iAllGather(type[] send, type[] recv, count)`; `recv` must
    /// hold `size × count` elements.
    pub fn iallgather_array<T: Prim>(
        &mut self,
        send: JArray<T>,
        recv: JArray<T>,
        count: i32,
        comm: CommHandle,
    ) -> BindResult<JRequest> {
        self.check_array_nb()?;
        self.binding_call();
        let elems = Self::check_nb_count(count)?;
        let p = self.mpi.size(comm)?;
        let dt = datatype_of::<T>();
        let (staging, bytes) = self.stage_region(send, elems)?;
        let post = self.recv_array_post(recv, elems * p)?;
        self.charge_buffer_address();
        let native = self.mpi.iallgather(&bytes, count, &dt, comm)?;
        Ok(JRequest {
            native,
            post,
            pinned: Some(staging),
        })
    }

    /// `comm.iGather(type[] send, type[] recv, count, root)`; `recv` is
    /// significant only at the root.
    pub fn igather_array<T: Prim>(
        &mut self,
        send: JArray<T>,
        recv: Option<JArray<T>>,
        count: i32,
        root: usize,
        comm: CommHandle,
    ) -> BindResult<JRequest> {
        self.check_array_nb()?;
        self.binding_call();
        let elems = Self::check_nb_count(count)?;
        let dt = datatype_of::<T>();
        let me = self.mpi.rank(comm)?;
        let (staging, bytes) = self.stage_region(send, elems)?;
        let (post, pinned) = if me == root {
            let p = self.mpi.size(comm)?;
            let out = recv.ok_or(BindError::Mpi(mpisim::MpiError::BufferTooSmall {
                needed: dt.span(elems * p),
                available: 0,
            }))?;
            (self.recv_array_post(out, elems * p)?, Some(staging))
        } else {
            (PostAction::SendStaged { staging }, None)
        };
        self.charge_buffer_address();
        let native = self.mpi.igather(&bytes, count, &dt, root, comm)?;
        Ok(JRequest {
            native,
            post,
            pinned,
        })
    }

    /// `comm.iAllToAll(type[] send, type[] recv, count)`; both arrays
    /// hold `size × count` elements.
    pub fn ialltoall_array<T: Prim>(
        &mut self,
        send: JArray<T>,
        recv: JArray<T>,
        count: i32,
        comm: CommHandle,
    ) -> BindResult<JRequest> {
        self.check_array_nb()?;
        self.binding_call();
        let elems = Self::check_nb_count(count)?;
        let p = self.mpi.size(comm)?;
        let dt = datatype_of::<T>();
        let (staging, bytes) = self.stage_region(send, elems * p)?;
        let post = self.recv_array_post(recv, elems * p)?;
        self.charge_buffer_address();
        let native = self.mpi.ialltoall(&bytes, count, &dt, comm)?;
        Ok(JRequest {
            native,
            post,
            pinned: Some(staging),
        })
    }
}
