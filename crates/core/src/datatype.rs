//! Datatype constants and the mapping between managed primitive types and
//! native MPI basic types.
//!
//! The bindings re-export the native [`Datatype`] so applications can
//! build derived types (contiguous/vector/indexed) exactly as the MPJ API
//! allowed — the capability the buffering layer exists to serve.

pub use mpisim::datatype::{BOOLEAN, BYTE, CHAR, DOUBLE, FLOAT, INT, LONG, SHORT};
pub use mpisim::{BasicType, Datatype};

use mrt::prim::{Prim, PrimType};

/// The native basic type corresponding to a managed primitive type.
pub fn basic_of(p: PrimType) -> BasicType {
    match p {
        PrimType::Byte => BasicType::Byte,
        PrimType::Boolean => BasicType::Boolean,
        PrimType::Char => BasicType::Char,
        PrimType::Short => BasicType::Short,
        PrimType::Int => BasicType::Int,
        PrimType::Long => BasicType::Long,
        PrimType::Float => BasicType::Float,
        PrimType::Double => BasicType::Double,
    }
}

/// The natural datatype of a managed array's element type.
pub fn datatype_of<T: Prim>() -> Datatype {
    Datatype::Basic(basic_of(T::TYPE))
}

/// Check that a (possibly derived) datatype is built over the managed
/// element type `T`.
pub fn check_base<T: Prim>(dt: &Datatype) -> bool {
    dt.base_type() == basic_of(T::TYPE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_covers_all_types() {
        assert_eq!(basic_of(PrimType::Byte), BasicType::Byte);
        assert_eq!(basic_of(PrimType::Boolean), BasicType::Boolean);
        assert_eq!(basic_of(PrimType::Char), BasicType::Char);
        assert_eq!(basic_of(PrimType::Short), BasicType::Short);
        assert_eq!(basic_of(PrimType::Int), BasicType::Int);
        assert_eq!(basic_of(PrimType::Long), BasicType::Long);
        assert_eq!(basic_of(PrimType::Float), BasicType::Float);
        assert_eq!(basic_of(PrimType::Double), BasicType::Double);
    }

    #[test]
    fn datatype_of_matches_sizes() {
        assert_eq!(datatype_of::<i32>().size(), 4);
        assert_eq!(datatype_of::<f64>().size(), 8);
        assert_eq!(datatype_of::<u16>().size(), 2);
    }

    #[test]
    fn check_base_accepts_derived_over_same_base() {
        let v = Datatype::vector(2, 1, 2, INT).unwrap();
        assert!(check_base::<i32>(&v));
        assert!(!check_base::<f64>(&v));
    }
}
