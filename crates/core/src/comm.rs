//! Communicator and group management bindings.
//!
//! Thin wrappers over the native library's communicator machinery — the
//! "supporting communicator and group management functions" the paper's
//! prototype implements.

use mpisim::{CommHandle, Group};

use crate::env::Env;
use crate::error::BindResult;

impl Env {
    /// `comm.getRank()`.
    pub fn comm_rank(&self, comm: CommHandle) -> BindResult<usize> {
        Ok(self.native_ref().rank(comm)?)
    }

    /// `comm.getSize()`.
    pub fn comm_size(&self, comm: CommHandle) -> BindResult<usize> {
        Ok(self.native_ref().size(comm)?)
    }

    /// `comm.dup()` — collective.
    pub fn comm_dup(&mut self, comm: CommHandle) -> BindResult<CommHandle> {
        self.binding_call();
        Ok(self.native_mut().comm_dup(comm)?)
    }

    /// `comm.split(color, key)` — collective; `color < 0` is
    /// MPI_UNDEFINED.
    pub fn comm_split(
        &mut self,
        comm: CommHandle,
        color: i32,
        key: i32,
    ) -> BindResult<Option<CommHandle>> {
        self.binding_call();
        Ok(self.native_mut().comm_split(comm, color, key)?)
    }

    /// `Comm.create(group)` — collective over `comm`.
    pub fn comm_create(
        &mut self,
        comm: CommHandle,
        group: &Group,
    ) -> BindResult<Option<CommHandle>> {
        self.binding_call();
        Ok(self.native_mut().comm_create(comm, group)?)
    }

    /// `comm.getGroup()`.
    pub fn comm_group(&mut self, comm: CommHandle) -> BindResult<Group> {
        self.binding_call();
        Ok(self.native_ref().comm_group(comm)?)
    }

    /// `comm.free()`.
    pub fn comm_free(&mut self, comm: CommHandle) -> BindResult<()> {
        self.binding_call();
        Ok(self.native_mut().comm_free(comm)?)
    }

    pub(crate) fn native_ref(&self) -> &mpisim::Mpi {
        &self.mpi
    }
}
