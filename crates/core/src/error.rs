//! Bindings-level errors: the analogue of `MPIException`.

use std::fmt;

use mpisim::MpiError;
use mrt::MrtError;

/// Errors surfaced by the bindings API.
#[derive(Debug, Clone, PartialEq)]
pub enum BindError {
    /// Raised by the native MPI library.
    Mpi(MpiError),
    /// Raised by the managed runtime (heap/buffer misuse).
    Runtime(MrtError),
    /// Datatype does not match the array's element type.
    DatatypeMismatch {
        expected: &'static str,
        datatype: &'static str,
    },
    /// API combination this library does not support (e.g. Open MPI-J
    /// with Java arrays on non-blocking operations).
    Unsupported(&'static str),
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::Mpi(e) => write!(f, "MPIException: {e}"),
            BindError::Runtime(e) => write!(f, "runtime error: {e}"),
            BindError::DatatypeMismatch { expected, datatype } => {
                write!(f, "datatype {datatype} incompatible with {expected} array")
            }
            BindError::Unsupported(what) => write!(f, "UnsupportedOperationException: {what}"),
        }
    }
}

impl std::error::Error for BindError {}

impl From<MpiError> for BindError {
    fn from(e: MpiError) -> Self {
        BindError::Mpi(e)
    }
}

impl From<MrtError> for BindError {
    fn from(e: MrtError) -> Self {
        BindError::Runtime(e)
    }
}

/// Result alias for the bindings API.
pub type BindResult<T> = Result<T, BindError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: BindError = MpiError::InvalidComm.into();
        assert!(e.to_string().contains("MPIException"));
        let e: BindError = MrtError::BadHandle.into();
        assert!(e.to_string().contains("runtime error"));
        let e = BindError::Unsupported("arrays with non-blocking p2p");
        assert!(e.to_string().contains("Unsupported"));
    }
}
