//! Staging copies between managed arrays and direct buffers, with full
//! derived-datatype support.
//!
//! "The buffering layer is useful for communicating derived datatypes
//! since it is possible to copy scattered elements in the array onto
//! consecutive locations in the ByteBuffer" — these helpers implement
//! exactly that gather/scatter, charging a bulk-copy cost per contiguous
//! segment.

use mpisim::datatype::Datatype;
use mrt::{DirectBuffer, Handle, MrtError, MrtResult, Runtime};
use vtime::Clock;

use crate::request::ArrayDest;

/// Gather `count` elements of `dt` from the array object `src` (starting
/// at `src_byte_off`) into `store` starting at byte 0. Returns the packed
/// size.
pub(crate) fn stage_from_array(
    rt: &mut Runtime,
    clock: &mut Clock,
    store: DirectBuffer,
    src: Handle,
    src_byte_off: usize,
    count: usize,
    dt: &Datatype,
) -> MrtResult<usize> {
    stage_from_array_at(rt, clock, store, 0, src, src_byte_off, count, dt)
}

/// Like [`stage_from_array`], but packing into `store` at `store_off`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stage_from_array_at(
    rt: &mut Runtime,
    clock: &mut Clock,
    store: DirectBuffer,
    store_off: usize,
    src: Handle,
    src_byte_off: usize,
    count: usize,
    dt: &Datatype,
) -> MrtResult<usize> {
    let packed = dt.size() * count;
    let t0 = clock.now();
    let span = dt.span(count);
    let avail = rt.heap().len_of(src)?;
    if src_byte_off + span > avail {
        return Err(MrtError::IndexOutOfBounds {
            index: src_byte_off + span,
            length: avail,
        });
    }
    if dt.is_contiguous() {
        // One bulk copy.
        let bytes = rt.heap().bytes(src)?[src_byte_off..src_byte_off + packed].to_vec();
        rt.direct_write_bytes(store, store_off, &bytes, clock)?;
    } else {
        let segs = dt.segments();
        let ext = dt.extent();
        let mut pos = store_off;
        for i in 0..count {
            let base = src_byte_off + i * ext;
            for &(off, len) in &segs {
                let bytes = rt.heap().bytes(src)?[base + off..base + off + len].to_vec();
                // Each scattered segment is a separate (charged) copy.
                rt.direct_write_bytes(store, pos, &bytes, clock)?;
                pos += len;
            }
        }
        debug_assert_eq!(pos, store_off + packed);
    }
    if obs::tracing_enabled() {
        obs::span(
            "stage",
            "mpjbuf",
            t0,
            clock.now(),
            vec![("bytes", obs::ArgValue::U64(packed as u64))],
        );
    }
    Ok(packed)
}

/// Scatter packed bytes from `store` into the array destination per `dt`.
/// `filled` is the number of valid bytes in the store (may be less than
/// `dt.size() * count` for short messages).
pub(crate) fn unstage_to_array(
    rt: &mut Runtime,
    clock: &mut Clock,
    store: DirectBuffer,
    dest: &ArrayDest,
    count: usize,
    dt: &Datatype,
    filled: usize,
) -> MrtResult<()> {
    unstage_to_array_at(rt, clock, store, 0, dest, count, dt, filled)
}

/// Like [`unstage_to_array`], but reading packed bytes from `store` at
/// `store_off`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn unstage_to_array_at(
    rt: &mut Runtime,
    clock: &mut Clock,
    store: DirectBuffer,
    store_off: usize,
    dest: &ArrayDest,
    count: usize,
    dt: &Datatype,
    filled: usize,
) -> MrtResult<()> {
    let elem = dt.size();
    if elem == 0 || filled == 0 {
        return Ok(());
    }
    let t0 = clock.now();
    let full = (filled / elem).min(count);
    let span = if full == 0 { 0 } else { dt.span(full) };
    if dest.byte_off + span > dest.byte_len {
        return Err(MrtError::IndexOutOfBounds {
            index: dest.byte_off + span,
            length: dest.byte_len,
        });
    }
    if dt.is_contiguous() {
        let mut bytes = vec![0u8; full * elem];
        rt.direct_read_bytes(store, store_off, &mut bytes, clock)?;
        let dst = rt.heap_mut().bytes_mut(dest.handle)?;
        dst[dest.byte_off..dest.byte_off + bytes.len()].copy_from_slice(&bytes);
    } else {
        let segs = dt.segments();
        let ext = dt.extent();
        let mut pos = store_off;
        for i in 0..full {
            let base = dest.byte_off + i * ext;
            for &(off, len) in &segs {
                let mut bytes = vec![0u8; len];
                rt.direct_read_bytes(store, pos, &mut bytes, clock)?;
                let dst = rt.heap_mut().bytes_mut(dest.handle)?;
                dst[base + off..base + off + len].copy_from_slice(&bytes);
                pos += len;
            }
        }
    }
    if obs::tracing_enabled() {
        obs::span(
            "unstage",
            "mpjbuf",
            t0,
            clock.now(),
            vec![("bytes", obs::ArgValue::U64(filled as u64))],
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::datatype::INT;
    use mpisim::Datatype;
    use vtime::CostModel;

    fn setup() -> (Runtime, Clock) {
        (Runtime::new(CostModel::default()), Clock::new())
    }

    #[test]
    fn contiguous_stage_roundtrip() {
        let (mut rt, mut c) = setup();
        let arr = rt.alloc_array::<i32>(8, &mut c).unwrap();
        for i in 0..8 {
            rt.array_set(arr, i, 100 + i as i32, &mut c).unwrap();
        }
        let store = rt.allocate_direct(64, &mut c);
        let n = stage_from_array(&mut rt, &mut c, store, arr.handle(), 8, 4, &INT).unwrap();
        assert_eq!(n, 16); // elements 2..6
        let dst = rt.alloc_array::<i32>(8, &mut c).unwrap();
        let dest = ArrayDest {
            handle: dst.handle(),
            byte_off: 0,
            byte_len: 32,
        };
        unstage_to_array(&mut rt, &mut c, store, &dest, 4, &INT, 16).unwrap();
        for k in 0..4 {
            assert_eq!(rt.array_get(dst, k, &mut c).unwrap(), 102 + k as i32);
        }
    }

    #[test]
    fn vector_datatype_gathers_and_scatters() {
        let (mut rt, mut c) = setup();
        // vector(2 blocks, 1 elem, stride 3) over INT: picks idx 0 and 3.
        let dt = Datatype::vector(2, 1, 3, INT).unwrap();
        let arr = rt.alloc_array::<i32>(8, &mut c).unwrap();
        for i in 0..8 {
            rt.array_set(arr, i, i as i32, &mut c).unwrap();
        }
        let store = rt.allocate_direct(64, &mut c);
        let n = stage_from_array(&mut rt, &mut c, store, arr.handle(), 0, 2, &dt).unwrap();
        assert_eq!(n, 16); // 2 elements × 2 ints
                           // Packed content must be [0, 3, 4, 7].
        let mut packed = vec![0u8; 16];
        rt.direct_read_bytes(store, 0, &mut packed, &mut c).unwrap();
        let vals: Vec<i32> = packed
            .chunks_exact(4)
            .map(|b| i32::from_le_bytes(b.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![0, 3, 4, 7]);

        // Scatter into a fresh array: gaps untouched.
        let dst = rt.alloc_array::<i32>(8, &mut c).unwrap();
        for i in 0..8 {
            rt.array_set(dst, i, -1, &mut c).unwrap();
        }
        let dest = ArrayDest {
            handle: dst.handle(),
            byte_off: 0,
            byte_len: 32,
        };
        unstage_to_array(&mut rt, &mut c, store, &dest, 2, &dt, 16).unwrap();
        let mut out = [0i32; 8];
        rt.array_read(dst, 0, &mut out, &mut c).unwrap();
        assert_eq!(out, [0, -1, -1, 3, 4, -1, -1, 7]);
    }

    #[test]
    fn stage_out_of_bounds_rejected() {
        let (mut rt, mut c) = setup();
        let arr = rt.alloc_array::<i32>(2, &mut c).unwrap();
        let store = rt.allocate_direct(64, &mut c);
        assert!(stage_from_array(&mut rt, &mut c, store, arr.handle(), 0, 4, &INT).is_err());
    }

    #[test]
    fn short_message_fills_prefix_only() {
        let (mut rt, mut c) = setup();
        let store = rt.allocate_direct(64, &mut c);
        rt.direct_write_bytes(store, 0, &[1, 0, 0, 0, 2, 0, 0, 0], &mut c)
            .unwrap();
        let dst = rt.alloc_array::<i32>(4, &mut c).unwrap();
        let dest = ArrayDest {
            handle: dst.handle(),
            byte_off: 0,
            byte_len: 16,
        };
        // Posted for 4 elements, only 2 arrived.
        unstage_to_array(&mut rt, &mut c, store, &dest, 4, &INT, 8).unwrap();
        assert_eq!(rt.array_get(dst, 0, &mut c).unwrap(), 1);
        assert_eq!(rt.array_get(dst, 1, &mut c).unwrap(), 2);
        assert_eq!(rt.array_get(dst, 2, &mut c).unwrap(), 0);
    }
}
