//! Differential conformance: every collective — blocking and
//! non-blocking — against a naive flat reference implementation, over
//! seeded-LCG randomized sizes, roots, reduction ops, and communicator
//! splits. Because each rank's contribution is a pure function of
//! `(seed, trial, world rank)`, every rank can compute the expected
//! result locally with no communication at all; anything the collective
//! machinery gets wrong shows up as a byte mismatch.
//!
//! Every driver runs its whole job **twice** and requires byte-identical
//! outputs *and* bit-identical per-rank virtual clocks: the schedules'
//! self-timed progression must make virtual time independent of OS
//! thread scheduling.

use mpisim::datatype::INT;
use mpisim::{run_mpi, CommHandle, Mpi, Profile, ReduceOp};
use simfabric::Topology;

/// Deterministic split-mix style generator; all ranks draw the same
/// stream and derive local values from the raw draws.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let x = self.0;
        (x ^ (x >> 33)).wrapping_mul(0xFF51AFD7ED558CCD) >> 7
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Rank `world`'s contribution for a trial: `count` ints, a pure
/// function of the coordinates.
fn contribution(seed: u64, trial: u64, world: usize, count: usize) -> Vec<i32> {
    let mut g = Lcg::new(seed ^ (trial << 20) ^ ((world as u64) << 44));
    (0..count).map(|_| g.next() as i32).collect()
}

fn ints(v: &[i32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn to_ints(b: &[u8]) -> Vec<i32> {
    b.chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Flat reference reduction, folding contributions in rank order with
/// wrapping integer arithmetic (all predefined ops are associative and
/// commutative over the integer types, so any tree order must agree
/// byte-for-byte).
fn reduce_ref(op: ReduceOp, inputs: &[Vec<i32>]) -> Vec<i32> {
    let mut acc = inputs[0].clone();
    for input in &inputs[1..] {
        for (a, x) in acc.iter_mut().zip(input) {
            *a = match op {
                ReduceOp::Sum => a.wrapping_add(*x),
                ReduceOp::Prod => a.wrapping_mul(*x),
                ReduceOp::Min => (*a).min(*x),
                ReduceOp::Max => (*a).max(*x),
                ReduceOp::Band => *a & *x,
                ReduceOp::Bor => *a | *x,
                ReduceOp::Bxor => *a ^ *x,
                ReduceOp::Land => ((*a != 0) && (*x != 0)) as i32,
                ReduceOp::Lor => ((*a != 0) || (*x != 0)) as i32,
            };
        }
    }
    acc
}

const OPS: [ReduceOp; 5] = [
    ReduceOp::Sum,
    ReduceOp::Max,
    ReduceOp::Bxor,
    ReduceOp::Min,
    ReduceOp::Bor,
];

/// Fold bytes into a running FNV-1a hash.
fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001B3);
    }
}

/// Run every collective on `comm` (whose members are world ranks
/// `members`, in communicator-rank order) for one trial, in both
/// blocking and non-blocking form, checking all results against the flat
/// reference. Returns a digest of everything observed.
#[allow(clippy::too_many_arguments)]
fn trial_on_comm(
    mpi: &mut Mpi,
    comm: CommHandle,
    members: &[usize],
    seed: u64,
    trial: u64,
    count: usize,
    root: usize,
    op: ReduceOp,
) -> u64 {
    let p = members.len();
    let me = mpi.rank(comm).unwrap();
    let inputs: Vec<Vec<i32>> = members
        .iter()
        .map(|&w| contribution(seed, trial, w, count))
        .collect();
    let mine = ints(&inputs[me]);
    let n = mine.len();
    let mut digest = 0xcbf29ce484222325u64;

    // --- Bcast: blocking, then non-blocking.
    let want = &inputs[root];
    let mut buf = if me == root {
        mine.clone()
    } else {
        vec![0u8; n]
    };
    mpi.bcast(&mut buf, count as i32, &INT, root, comm).unwrap();
    assert_eq!(&to_ints(&buf), want, "bcast payload (p={p} n={n})");
    let req = mpi.ibcast(&mine, count as i32, &INT, root, comm).unwrap();
    let mut out = vec![0u8; n];
    mpi.wait(req, Some(&mut out)).unwrap();
    assert_eq!(&to_ints(&out), want, "ibcast payload (p={p} n={n})");
    fnv(&mut digest, &out);

    // --- Allreduce.
    let want = reduce_ref(op, &inputs);
    let mut out = vec![0u8; n];
    mpi.allreduce(&mine, &mut out, count as i32, &INT, op, comm)
        .unwrap();
    assert_eq!(to_ints(&out), want, "allreduce {op:?} (p={p} n={n})");
    let req = mpi.iallreduce(&mine, count as i32, &INT, op, comm).unwrap();
    let mut out = vec![0u8; n];
    mpi.wait(req, Some(&mut out)).unwrap();
    assert_eq!(to_ints(&out), want, "iallreduce {op:?} (p={p} n={n})");
    fnv(&mut digest, &out);

    // --- Allgather.
    let want: Vec<i32> = inputs.iter().flatten().copied().collect();
    let mut out = vec![0u8; n * p];
    mpi.allgather(&mine, &mut out, count as i32, &INT, comm)
        .unwrap();
    assert_eq!(to_ints(&out), want, "allgather (p={p} n={n})");
    let req = mpi.iallgather(&mine, count as i32, &INT, comm).unwrap();
    let mut out = vec![0u8; n * p];
    mpi.wait(req, Some(&mut out)).unwrap();
    assert_eq!(to_ints(&out), want, "iallgather (p={p} n={n})");
    fnv(&mut digest, &out);

    // --- Gather (result significant at root only).
    let mut out = vec![0u8; n * p];
    mpi.gather(
        &mine,
        (me == root).then_some(&mut out[..]),
        count as i32,
        &INT,
        root,
        comm,
    )
    .unwrap();
    if me == root {
        assert_eq!(to_ints(&out), want, "gather (p={p} n={n})");
    }
    let req = mpi.igather(&mine, count as i32, &INT, root, comm).unwrap();
    let mut out = vec![0u8; n * p];
    mpi.wait(req, (me == root).then_some(&mut out[..])).unwrap();
    if me == root {
        assert_eq!(to_ints(&out), want, "igather (p={p} n={n})");
        fnv(&mut digest, &out);
    }

    // --- Alltoall: rank me's incoming block s is rank s's outgoing
    // block me. Contributions sized p×count per rank.
    let send_all: Vec<i32> = (0..p)
        .flat_map(|d| {
            contribution(seed ^ 0xA17A, trial, members[me], count)
                .into_iter()
                .map(move |x| x.wrapping_add(d as i32))
        })
        .collect();
    let want: Vec<i32> = (0..p)
        .flat_map(|s| {
            contribution(seed ^ 0xA17A, trial, members[s], count)
                .into_iter()
                .map(move |x| x.wrapping_add(me as i32))
        })
        .collect();
    let send_bytes = ints(&send_all);
    let mut out = vec![0u8; n * p];
    mpi.alltoall(&send_bytes, &mut out, count as i32, &INT, comm)
        .unwrap();
    assert_eq!(to_ints(&out), want, "alltoall (p={p} n={n})");
    let req = mpi
        .ialltoall(&send_bytes, count as i32, &INT, comm)
        .unwrap();
    let mut out = vec![0u8; n * p];
    mpi.wait(req, Some(&mut out)).unwrap();
    assert_eq!(to_ints(&out), want, "ialltoall (p={p} n={n})");
    fnv(&mut digest, &out);

    // --- Barrier, and several schedules outstanding at once, consumed
    // in reverse post order (progression must be joint, not per-wait).
    mpi.barrier(comm).unwrap();
    let r1 = mpi.ibarrier(comm).unwrap();
    let r2 = mpi.ibcast(&mine, count as i32, &INT, root, comm).unwrap();
    let r3 = mpi.iallreduce(&mine, count as i32, &INT, op, comm).unwrap();
    let mut out3 = vec![0u8; n];
    mpi.wait(r3, Some(&mut out3)).unwrap();
    assert_eq!(
        to_ints(&out3),
        reduce_ref(op, &inputs),
        "overlapped iallreduce"
    );
    let mut out2 = vec![0u8; n];
    mpi.wait(r2, Some(&mut out2)).unwrap();
    assert_eq!(&to_ints(&out2), &inputs[root], "overlapped ibcast");
    mpi.wait(r1, None).unwrap();
    fnv(&mut digest, &out2);
    fnv(&mut digest, &out3);
    digest
}

/// One full conformance job: `trials` randomized rounds on the world
/// communicator plus a split sub-communicator. Returns per-rank
/// `(digest, clock-bits)`.
fn conformance_job(
    topo: Topology,
    profile: Profile,
    seed: u64,
    trials: u64,
    max_count: usize,
) -> Vec<(u64, u64)> {
    run_mpi(topo, profile, move |mpi| {
        let world = mpi.world();
        let p = mpi.size(world).unwrap();
        let me = mpi.rank(world).unwrap();
        let mut digest = 0u64;
        for trial in 0..trials {
            let mut g = Lcg::new(seed ^ (trial * 7919));
            let bucket = g.below(4);
            let cap = match bucket {
                0 => 8,
                1 => 256,
                2 => 2048,
                _ => max_count as u64,
            };
            let count = g.below(cap) as usize + 1;
            let root = g.below(p as u64) as usize;
            let op = OPS[g.below(OPS.len() as u64) as usize];
            let members: Vec<usize> = (0..p).collect();
            digest ^= trial_on_comm(mpi, world, &members, seed, trial, count, root, op);

            // Same trial on a two-way split (both halves run
            // concurrently on disjoint member sets).
            if p >= 2 && g.below(2) == 0 {
                let cut = g.below(p as u64 - 1) as usize + 1;
                let color = i32::from(me >= cut);
                let sub = mpi.comm_split(world, color, me as i32).unwrap().unwrap();
                let members: Vec<usize> = if me >= cut {
                    (cut..p).collect()
                } else {
                    (0..cut).collect()
                };
                let sub_root = g.below(members.len() as u64) as usize;
                digest ^= trial_on_comm(
                    mpi,
                    sub,
                    &members,
                    seed ^ 0x511,
                    trial,
                    count.min(512),
                    sub_root,
                    op,
                );
                mpi.comm_free(sub).unwrap();
            }
        }
        mpi.barrier(world).unwrap();
        (digest, mpi.now().as_nanos().to_bits())
    })
}

/// Run the job twice; results and virtual clocks must be bit-identical.
fn assert_deterministic(topo: Topology, profile: Profile, seed: u64, trials: u64, max: usize) {
    let a = conformance_job(topo, profile, seed, trials, max);
    let b = conformance_job(topo, profile, seed, trials, max);
    assert_eq!(a, b, "collective results or virtual time not deterministic");
}

#[test]
fn conformance_2_ranks() {
    assert_deterministic(Topology::new(2, 1), Profile::mvapich2(), 11, 10, 4096);
}

#[test]
fn conformance_4_ranks() {
    // 2×2: exercises the hierarchical (two-level) blocking paths next to
    // the flat non-blocking schedules.
    assert_deterministic(Topology::new(2, 2), Profile::mvapich2(), 23, 8, 4096);
    assert_deterministic(Topology::new(2, 2), Profile::openmpi_ucx(), 29, 4, 4096);
}

#[test]
fn conformance_16_ranks() {
    assert_deterministic(Topology::new(4, 4), Profile::mvapich2(), 37, 3, 1024);
}

#[test]
fn conformance_non_power_of_two() {
    // 3 and 6 ranks force the non-power-of-two allreduce/bcast branches.
    assert_deterministic(Topology::new(3, 1), Profile::mvapich2(), 41, 6, 2048);
    assert_deterministic(Topology::new(3, 2), Profile::openmpi_ucx(), 43, 4, 1024);
}

#[test]
fn conformance_large_messages() {
    // Above allreduce_rd_max (64 KiB for the Open MPI profile): the ring
    // reduce-scatter + allgather schedule; bcast goes scatter-allgather.
    assert_deterministic(Topology::new(2, 2), Profile::openmpi_ucx(), 47, 2, 24_000);
}
