//! Regression tests for `Mpi::waitall`: statuses drain in request order,
//! but progression is joint — an early-completing later request must not
//! wait on an earlier slow one, and mixed point-to-point + non-blocking
//! collective batches complete together.

use mpisim::datatype::INT;
use mpisim::{run_mpi, Mpi, Profile, ReduceOp};
use simfabric::Topology;
use vtime::VDur;

fn ints(v: &[i32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn to_ints(b: &[u8]) -> Vec<i32> {
    b.chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Rank 1 sends a *fast* message on tag 2 immediately, then sits on a
/// long virtual compute before sending the *slow* message on tag 1.
/// Rank 0 posts the slow receive first. `join = true` drains both with
/// one `waitall`; `join = false` waits them in request order. Returns
/// rank 0's final clock (ns).
fn two_recv_job(join: bool) -> f64 {
    let times = run_mpi(
        Topology::new(2, 1),
        Profile::mvapich2(),
        move |mpi: &mut Mpi| {
            let world = mpi.world();
            let me = mpi.rank(world).unwrap();
            if me == 1 {
                let fast = ints(&(0..64).collect::<Vec<i32>>());
                let r_fast = mpi.isend(&fast, 64, &INT, 0, 2, world).unwrap();
                // A long compute block delays the second payload far past
                // the first one's delivery.
                mpi.clock_mut().charge(VDur::from_micros(400.0));
                let slow = ints(&(100..164).collect::<Vec<i32>>());
                let r_slow = mpi.isend(&slow, 64, &INT, 0, 1, world).unwrap();
                mpi.waitall(vec![r_fast, r_slow], vec![None, None]).unwrap();
                0.0
            } else {
                let r_slow = mpi.irecv(64, &INT, 1, 1, world).unwrap();
                let r_fast = mpi.irecv(64, &INT, 1, 2, world).unwrap();
                let mut slow_buf = vec![0u8; 256];
                let mut fast_buf = vec![0u8; 256];
                if join {
                    let st = mpi
                        .waitall(
                            vec![r_slow, r_fast],
                            vec![Some(&mut slow_buf), Some(&mut fast_buf)],
                        )
                        .unwrap();
                    assert_eq!(st.len(), 2);
                    assert_eq!(st[0].bytes, 256);
                    assert_eq!(st[1].bytes, 256);
                } else {
                    mpi.wait(r_slow, Some(&mut slow_buf)).unwrap();
                    mpi.wait(r_fast, Some(&mut fast_buf)).unwrap();
                }
                assert_eq!(to_ints(&slow_buf)[0], 100);
                assert_eq!(to_ints(&fast_buf)[0], 0);
                mpi.now().as_nanos()
            }
        },
    );
    times[0]
}

#[test]
fn waitall_does_not_serialize_on_an_earlier_slow_request() {
    let joint = two_recv_job(true);
    let serial = two_recv_job(false);
    // In-order waiting charges the fast receive's consumption *after*
    // the slow arrival; joint completion hides it before. The joint
    // drain must therefore finish strictly earlier.
    assert!(
        joint < serial,
        "waitall serialized progression: joint={joint}ns serial={serial}ns"
    );
    // Both variants still end after the slow payload's flight time.
    assert!(joint > 400_000.0, "joint={joint}ns");
}

#[test]
fn waitall_mixes_pt2pt_and_collective_requests() {
    let clocks = run_mpi(Topology::new(2, 2), Profile::mvapich2(), |mpi: &mut Mpi| {
        let world = mpi.world();
        let me = mpi.rank(world).unwrap();
        let p = mpi.size(world).unwrap();
        let mine = ints(
            &(0..32)
                .map(|i| (me as i32) << (8 + i % 3))
                .collect::<Vec<_>>(),
        );

        // One NBC, one receive from the left neighbor, one send to the
        // right neighbor — all drained by a single waitall.
        let r_coll = mpi
            .iallreduce(&mine, 32, &INT, ReduceOp::Sum, world)
            .unwrap();
        let left = (me + p - 1) % p;
        let right = (me + 1) % p;
        let r_recv = mpi.irecv(32, &INT, left as i32, 7, world).unwrap();
        let r_send = mpi.isend(&mine, 32, &INT, right, 7, world).unwrap();

        let mut coll_buf = vec![0u8; 128];
        let mut recv_buf = vec![0u8; 128];
        let st = mpi
            .waitall(
                vec![r_coll, r_recv, r_send],
                vec![Some(&mut coll_buf), Some(&mut recv_buf), None],
            )
            .unwrap();
        assert_eq!(st[1].source, left);

        let want: Vec<i32> = (0..32)
            .map(|i| (0..p as i32).map(|r| r << (8 + i % 3)).sum())
            .collect();
        assert_eq!(to_ints(&coll_buf), want, "allreduce payload");
        let want_recv: Vec<i32> = (0..32).map(|i| (left as i32) << (8 + i % 3)).collect();
        assert_eq!(to_ints(&recv_buf), want_recv, "neighbor payload");
        mpi.barrier(world).unwrap();
        mpi.now().as_nanos().to_bits()
    });
    // Determinism: the mixed drain must give byte-identical virtual times
    // on a rerun.
    let again = run_mpi(Topology::new(2, 2), Profile::mvapich2(), |mpi: &mut Mpi| {
        let world = mpi.world();
        let me = mpi.rank(world).unwrap();
        let p = mpi.size(world).unwrap();
        let mine = ints(
            &(0..32)
                .map(|i| (me as i32) << (8 + i % 3))
                .collect::<Vec<_>>(),
        );
        let r_coll = mpi
            .iallreduce(&mine, 32, &INT, ReduceOp::Sum, world)
            .unwrap();
        let left = (me + p - 1) % p;
        let right = (me + 1) % p;
        let r_recv = mpi.irecv(32, &INT, left as i32, 7, world).unwrap();
        let r_send = mpi.isend(&mine, 32, &INT, right, 7, world).unwrap();
        let mut coll_buf = vec![0u8; 128];
        let mut recv_buf = vec![0u8; 128];
        mpi.waitall(
            vec![r_coll, r_recv, r_send],
            vec![Some(&mut coll_buf), Some(&mut recv_buf), None],
        )
        .unwrap();
        mpi.barrier(world).unwrap();
        mpi.now().as_nanos().to_bits()
    });
    assert_eq!(
        clocks, again,
        "mixed waitall virtual time not deterministic"
    );
}
