//! Reliability-sublayer tests: MPI jobs running over a deliberately
//! faulty fabric must still deliver every payload intact (ack +
//! retransmit ride over drops, corruption, and duplication), stay
//! deterministic under a fixed seed, pay nothing when the plan injects
//! nothing, and convert a crashed peer into a typed `RankFailed` error
//! under `MPI_ERRORS_RETURN` instead of hanging or aborting.

use std::time::Instant;

use mpisim::datatype::{BYTE, INT};
use mpisim::{run_mpi, run_mpi_faulty, Errhandler, MpiError, Profile, ReduceOp};
use simfabric::{FaultPlan, Topology};

fn ints(v: &[i32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn to_ints(b: &[u8]) -> Vec<i32> {
    b.chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// A plan lossy enough that a multi-iteration job is statistically
/// certain to exercise drop, corruption, and duplication paths.
fn lossy_plan(seed: u64) -> FaultPlan {
    FaultPlan::parse("drop=0.05,corrupt=0.02,dup=0.05,jitter=300")
        .map(|mut p| {
            p.seed = seed;
            p
        })
        .unwrap()
}

#[test]
fn lossy_pt2pt_delivers_every_payload_intact() {
    // Patterned payloads across the eager→rendezvous switch: the
    // reliability sublayer must hide every injected fault.
    run_mpi_faulty(
        Topology::new(2, 1),
        Profile::mvapich2(),
        lossy_plan(42),
        |mpi| {
            let w = mpi.world();
            let me = mpi.rank(w).unwrap();
            for (iter, n) in [8usize, 64, 1024, 1 << 17]
                .iter()
                .cycle()
                .take(40)
                .enumerate()
            {
                let want: Vec<u8> = (0..*n).map(|i| (i as u8) ^ (iter as u8)).collect();
                if me == 0 {
                    mpi.send(&want, *n as i32, &BYTE, 1, 7, w).unwrap();
                } else {
                    let mut got = vec![0u8; *n];
                    let st = mpi.recv(&mut got, *n as i32, &BYTE, 0, 7, w).unwrap();
                    assert_eq!(got, want, "iteration {iter}: payload corrupted end-to-end");
                    assert_eq!(st.bytes, *n);
                }
            }
        },
    );
}

#[test]
fn lossy_collectives_validate_on_four_ranks() {
    let results = run_mpi_faulty(
        Topology::new(2, 2),
        Profile::mvapich2(),
        lossy_plan(7),
        |mpi| {
            let w = mpi.world();
            let me = mpi.rank(w).unwrap() as i32;
            let n = mpi.size(w).unwrap() as i32;
            // Allreduce-sum of rank ids, twice (re-exercises the links).
            for _ in 0..3 {
                let mine = ints(&[me, me * 2]);
                let mut out = vec![0u8; 8];
                mpi.allreduce(&mine, &mut out, 2, &INT, ReduceOp::Sum, w)
                    .unwrap();
                let expect = vec![n * (n - 1) / 2, n * (n - 1)];
                assert_eq!(to_ints(&out), expect);
            }
            // Bcast a payload large enough for the tree algorithms.
            let mut buf = if me == 0 {
                (0..4000u16)
                    .flat_map(|i| (i as i32).to_le_bytes())
                    .collect()
            } else {
                vec![0u8; 16000]
            };
            mpi.bcast(&mut buf, 4000, &INT, 0, w).unwrap();
            let got = to_ints(&buf);
            assert!(got.iter().enumerate().all(|(i, &v)| v == i as i32));
            mpi.wtime()
        },
    );
    assert_eq!(results.len(), 4);
}

#[test]
fn same_seed_replays_byte_identically_different_seed_may_not() {
    let run = |seed: u64| {
        run_mpi_faulty(
            Topology::new(2, 1),
            Profile::mvapich2(),
            lossy_plan(seed),
            |mpi| {
                let w = mpi.world();
                let me = mpi.rank(w).unwrap();
                for _ in 0..50 {
                    let mut buf = [0u8; 64];
                    if me == 0 {
                        mpi.send(&buf, 64, &BYTE, 1, 0, w).unwrap();
                        mpi.recv(&mut buf, 64, &BYTE, 1, 0, w).unwrap();
                    } else {
                        mpi.recv(&mut buf, 64, &BYTE, 0, 0, w).unwrap();
                        mpi.send(&buf, 64, &BYTE, 0, 0, w).unwrap();
                    }
                }
                mpi.now().as_nanos()
            },
        )
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "identical seeds must replay the exact virtual times");
    // Drops reshape arrival times, so a different seed almost surely
    // lands elsewhere — detect the pathological "plan ignored" case.
    let c = run(1042);
    assert_ne!(a, c, "fault plan had no effect on timing at all");
}

#[test]
fn inactive_plan_has_zero_virtual_time_overhead() {
    // The reliability sublayer (sequencing, checksums, acks) must never
    // charge the application clock: a plan that injects nothing yields
    // bit-identical virtual times to no plan at all.
    let workload = |mpi: &mut mpisim::Mpi| {
        let w = mpi.world();
        let me = mpi.rank(w).unwrap();
        for n in [16usize, 512, 1 << 16] {
            let buf = vec![3u8; n];
            let mut out = vec![0u8; n];
            if me == 0 {
                mpi.send(&buf, n as i32, &BYTE, 1, 1, w).unwrap();
                mpi.recv(&mut out, n as i32, &BYTE, 1, 1, w).unwrap();
            } else {
                mpi.recv(&mut out, n as i32, &BYTE, 0, 1, w).unwrap();
                mpi.send(&buf, n as i32, &BYTE, 0, 1, w).unwrap();
            }
        }
        mpi.now().as_nanos()
    };
    let clean = run_mpi(Topology::new(2, 1), Profile::mvapich2(), workload);
    let framed = run_mpi_faulty(
        Topology::new(2, 1),
        Profile::mvapich2(),
        FaultPlan::new(99), // active sublayer, zero injected faults
        workload,
    );
    assert_eq!(
        clean, framed,
        "reliability framing must be free of virtual-time cost when no fault fires"
    );
}

#[test]
fn crashed_peer_surfaces_rank_failed_under_errors_return() {
    // Rank 1 dies at virtual time 0; rank 0 (ERRORS_RETURN) blocks on a
    // receive that can never be satisfied. The watchdog must convert the
    // stall into `RankFailed` within its real-time bound instead of
    // hanging forever or aborting the process.
    let mut plan = FaultPlan::new(0);
    plan.crash = Some((1, 0.0));
    plan.watchdog_ms = 100;
    let results = run_mpi_faulty(Topology::new(2, 1), Profile::mvapich2(), plan, |mpi| {
        let w = mpi.world();
        mpi.set_errhandler(w, Errhandler::ErrorsReturn).unwrap();
        if mpi.rank(w).unwrap() == 0 {
            let started = Instant::now();
            let mut buf = [0u8; 8];
            let err = mpi.recv(&mut buf, 8, &BYTE, 1, 0, w).unwrap_err();
            let waited = started.elapsed();
            assert!(
                waited.as_millis() < 5_000,
                "watchdog must fire near its bound, waited {waited:?}"
            );
            err
        } else {
            // The crashed rank stops initiating operations: its own call
            // errors out immediately (vtime 0 >= crash time 0).
            mpi.send(&[0u8; 8], 8, &BYTE, 0, 0, w).unwrap_err()
        }
    });
    assert!(
        matches!(results[0], MpiError::RankFailed { rank: 1 }),
        "rank 0 got {:?}",
        results[0]
    );
    assert!(
        matches!(results[1], MpiError::RankFailed { rank: 1 }),
        "rank 1 got {:?}",
        results[1]
    );
}

#[test]
fn sends_to_a_crashed_rank_fail_after_retries() {
    // Rank 1 crashes mid-run; rank 0's eager sends to it are blackholed
    // by the fabric, and after the retry budget the reliability layer
    // reports the peer as failed (not a generic transport failure).
    let mut plan = FaultPlan::new(0);
    plan.crash = Some((1, 1.0)); // dies at t=1 ns: every send arrives later
    plan.watchdog_ms = 100;
    plan.rto_ns = 50.0; // keep the backoff sum tiny
    plan.max_retries = 3;
    let results = run_mpi_faulty(Topology::new(2, 1), Profile::mvapich2(), plan, |mpi| {
        let w = mpi.world();
        mpi.set_errhandler(w, Errhandler::ErrorsReturn).unwrap();
        if mpi.rank(w).unwrap() == 0 {
            Some(mpi.send(&[7u8; 32], 32, &BYTE, 1, 0, w).unwrap_err())
        } else {
            None
        }
    });
    assert!(
        matches!(results[0], Some(MpiError::RankFailed { rank: 1 })),
        "got {:?}",
        results[0]
    );
}

#[test]
fn errors_abort_is_the_default_errhandler() {
    run_mpi(Topology::new(1, 2), Profile::mvapich2(), |mpi| {
        let w = mpi.world();
        assert_eq!(mpi.errhandler(w), Errhandler::ErrorsAbort);
        mpi.set_errhandler(w, Errhandler::ErrorsReturn).unwrap();
        assert_eq!(mpi.errhandler(w), Errhandler::ErrorsReturn);
        // Derived communicators inherit the parent's handler.
        let dup = mpi.comm_dup(w).unwrap();
        assert_eq!(mpi.errhandler(dup), Errhandler::ErrorsReturn);
    });
}

#[test]
fn slowdown_shifts_timing_but_not_results() {
    let run = |plan: Option<FaultPlan>| {
        let f = |mpi: &mut mpisim::Mpi| {
            let w = mpi.world();
            let me = mpi.rank(w).unwrap() as i32;
            let mut out = vec![0u8; 4];
            mpi.allreduce(&ints(&[me + 1]), &mut out, 1, &INT, ReduceOp::Prod, w)
                .unwrap();
            (to_ints(&out)[0], mpi.now().as_nanos())
        };
        match plan {
            Some(p) => run_mpi_faulty(Topology::new(2, 1), Profile::mvapich2(), p, f),
            None => run_mpi(Topology::new(2, 1), Profile::mvapich2(), f),
        }
    };
    let mut plan = FaultPlan::new(0);
    plan.slowdown = Some((1, 4.0));
    let slow = run(Some(plan));
    let fast = run(None);
    assert_eq!(slow[0].0, 2, "1 * 2 on both ranks");
    assert_eq!(slow[0].0, fast[0].0);
    assert!(
        slow[1].1 > fast[1].1,
        "a 4x straggler must finish later: {} vs {}",
        slow[1].1,
        fast[1].1
    );
}
