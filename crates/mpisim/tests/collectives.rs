//! Cross-algorithm correctness tests for the collective operations: every
//! profile (and therefore every algorithm family) must produce the same
//! results as a sequential reference, across communicator sizes that hit
//! power-of-two and non-power-of-two paths, and payload sizes that hit
//! the small/large algorithm switchovers.

use mpisim::datatype::{DOUBLE, INT};
use mpisim::{run_mpi, BasicType, Datatype, Profile, ReduceOp};
use simfabric::Topology;

fn ints(v: &[i32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn to_ints(b: &[u8]) -> Vec<i32> {
    b.chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn doubles(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn to_doubles(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn profiles() -> [Profile; 2] {
    [Profile::mvapich2(), Profile::openmpi_ucx()]
}

/// Topologies covering single-node, multi-node, and non-power-of-two
/// shapes (both with and without full nodes).
fn topologies() -> Vec<Topology> {
    vec![
        Topology::new(1, 2),
        Topology::new(1, 5),
        Topology::new(2, 2),
        Topology::new(2, 3),
        Topology::new(3, 4),
        Topology::new(4, 4),
    ]
}

#[test]
fn bcast_matches_reference_all_profiles() {
    for profile in profiles() {
        for topo in topologies() {
            // Cover binomial (small), scatter-allgather / chain (large),
            // and two-level paths.
            for count in [1usize, 7, 64, 3000, 20000] {
                for root in [0usize, topo.size() - 1] {
                    let want: Vec<i32> = (0..count as i32).map(|i| i * 3 + 1).collect();
                    let want2 = want.clone();
                    let res = run_mpi(topo, profile, move |mpi| {
                        let w = mpi.world();
                        let me = mpi.rank(w).unwrap();
                        let mut buf = if me == root {
                            ints(&want2)
                        } else {
                            vec![0u8; 4 * count]
                        };
                        mpi.bcast(&mut buf, count as i32, &INT, root, w).unwrap();
                        to_ints(&buf)
                    });
                    for (r, got) in res.iter().enumerate() {
                        assert_eq!(
                            got,
                            &want,
                            "bcast {} nodes={} ppn={} count={count} root={root} rank={r}",
                            profile.name,
                            topo.nodes(),
                            topo.ppn()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn allreduce_sum_matches_reference_all_profiles() {
    for profile in profiles() {
        for topo in topologies() {
            let p = topo.size() as i32;
            // Cover recursive doubling (small) and Rabenseifner (large).
            for count in [1usize, 13, 4096, 40000] {
                let res = run_mpi(topo, profile, move |mpi| {
                    let w = mpi.world();
                    let me = mpi.rank(w).unwrap() as i32;
                    let mine: Vec<i32> = (0..count as i32).map(|i| me * 1000 + i).collect();
                    let send = ints(&mine);
                    let mut recv = vec![0u8; 4 * count];
                    mpi.allreduce(&send, &mut recv, count as i32, &INT, ReduceOp::Sum, w)
                        .unwrap();
                    to_ints(&recv)
                });
                let want: Vec<i32> = (0..count as i32)
                    .map(|i| (0..p).map(|r| r * 1000 + i).sum())
                    .collect();
                for (r, got) in res.iter().enumerate() {
                    assert_eq!(
                        got,
                        &want,
                        "allreduce {} nodes={} ppn={} count={count} rank={r}",
                        profile.name,
                        topo.nodes(),
                        topo.ppn()
                    );
                }
            }
        }
    }
}

#[test]
fn allreduce_all_ops_small_cluster() {
    let ops = [
        ReduceOp::Sum,
        ReduceOp::Prod,
        ReduceOp::Min,
        ReduceOp::Max,
        ReduceOp::Band,
        ReduceOp::Bor,
        ReduceOp::Bxor,
        ReduceOp::Land,
        ReduceOp::Lor,
    ];
    let topo = Topology::new(2, 3);
    let p = topo.size();
    for op in ops {
        let res = run_mpi(topo, Profile::mvapich2(), move |mpi| {
            let w = mpi.world();
            let me = mpi.rank(w).unwrap() as i32;
            let mine = [me + 1, me % 2, 7 - me];
            let send = ints(&mine);
            let mut recv = vec![0u8; 12];
            mpi.allreduce(&send, &mut recv, 3, &INT, op, w).unwrap();
            to_ints(&recv)
        });
        // Sequential reference.
        let inputs: Vec<[i32; 3]> = (0..p as i32).map(|me| [me + 1, me % 2, 7 - me]).collect();
        let mut want = inputs[0].to_vec();
        for inp in &inputs[1..] {
            for (a, &b) in want.iter_mut().zip(inp.iter()) {
                *a = match op {
                    ReduceOp::Sum => a.wrapping_add(b),
                    ReduceOp::Prod => a.wrapping_mul(b),
                    ReduceOp::Min => (*a).min(b),
                    ReduceOp::Max => (*a).max(b),
                    ReduceOp::Band => *a & b,
                    ReduceOp::Bor => *a | b,
                    ReduceOp::Bxor => *a ^ b,
                    ReduceOp::Land => ((*a != 0) && (b != 0)) as i32,
                    ReduceOp::Lor => ((*a != 0) || (b != 0)) as i32,
                };
            }
        }
        for got in &res {
            assert_eq!(got, &want, "op {:?}", op);
        }
    }
}

#[test]
fn reduce_doubles_to_root() {
    for profile in profiles() {
        let topo = Topology::new(2, 4);
        let p = topo.size();
        let res = run_mpi(topo, profile, move |mpi| {
            let w = mpi.world();
            let me = mpi.rank(w).unwrap();
            let mine = [me as f64, 0.5];
            let send = doubles(&mine);
            let mut recv = vec![0u8; 16];
            let out = (me == 2).then_some(&mut recv[..]);
            mpi.reduce(&send, out, 2, &DOUBLE, ReduceOp::Sum, 2, w)
                .unwrap();
            (me == 2).then(|| to_doubles(&recv))
        });
        let got = res[2].clone().unwrap();
        let n = p as f64;
        assert!((got[0] - n * (n - 1.0) / 2.0).abs() < 1e-9);
        assert!((got[1] - 0.5 * n).abs() < 1e-9);
    }
}

#[test]
fn allgather_assembles_rank_order() {
    for profile in profiles() {
        for topo in [Topology::new(1, 4), Topology::new(2, 3)] {
            let p = topo.size();
            let res = run_mpi(topo, profile, move |mpi| {
                let w = mpi.world();
                let me = mpi.rank(w).unwrap() as i32;
                let send = ints(&[me, -me]);
                let mut recv = vec![0u8; 8 * p];
                mpi.allgather(&send, &mut recv, 2, &INT, w).unwrap();
                to_ints(&recv)
            });
            let want: Vec<i32> = (0..p as i32).flat_map(|r| [r, -r]).collect();
            for got in &res {
                assert_eq!(got, &want);
            }
        }
    }
}

#[test]
fn allgatherv_uneven_blocks() {
    let topo = Topology::new(2, 2);
    let res = run_mpi(topo, Profile::openmpi_ucx(), |mpi| {
        let w = mpi.world();
        let me = mpi.rank(w).unwrap();
        let mine: Vec<i32> = (0..=me as i32).collect(); // me+1 elements
        let send = ints(&mine);
        let recvcounts = [1i32, 2, 3, 4];
        let displs = [0i32, 1, 3, 6];
        let mut recv = vec![0u8; 40];
        mpi.allgatherv(
            &send,
            me as i32 + 1,
            &mut recv,
            &recvcounts,
            &displs,
            &INT,
            w,
        )
        .unwrap();
        to_ints(&recv)
    });
    let want = vec![0, 0, 1, 0, 1, 2, 0, 1, 2, 3];
    for got in &res {
        assert_eq!(got, &want);
    }
}

#[test]
fn alltoall_transposes_blocks() {
    for topo in [Topology::new(1, 3), Topology::new(2, 2)] {
        let p = topo.size();
        let res = run_mpi(topo, Profile::mvapich2(), move |mpi| {
            let w = mpi.world();
            let me = mpi.rank(w).unwrap() as i32;
            // Block for destination d: [me*100 + d].
            let send: Vec<i32> = (0..p as i32).map(|d| me * 100 + d).collect();
            let mut recv = vec![0u8; 4 * p];
            mpi.alltoall(&ints(&send), &mut recv, 1, &INT, w).unwrap();
            to_ints(&recv)
        });
        for (r, got) in res.iter().enumerate() {
            let want: Vec<i32> = (0..p as i32).map(|s| s * 100 + r as i32).collect();
            assert_eq!(got, &want);
        }
    }
}

#[test]
fn alltoallv_irregular() {
    let topo = Topology::new(1, 3);
    // Rank r sends r+1 copies of (100*r + d) to each destination d.
    let res = run_mpi(topo, Profile::openmpi_ucx(), |mpi| {
        let w = mpi.world();
        let me = mpi.rank(w).unwrap() as i32;
        let p = 3i32;
        let cnt = me + 1;
        let mut send = Vec::new();
        for d in 0..p {
            for _ in 0..cnt {
                send.push(100 * me + d);
            }
        }
        let sendcounts = [cnt; 3];
        let sdispls = [0, cnt, 2 * cnt];
        let recvcounts = [1i32, 2, 3];
        let rdispls = [0i32, 1, 3];
        let mut recv = vec![0u8; 4 * 6];
        mpi.alltoallv(
            &ints(&send),
            &sendcounts,
            &sdispls,
            &mut recv,
            &recvcounts,
            &rdispls,
            &INT,
            w,
        )
        .unwrap();
        to_ints(&recv)
    });
    // Rank r receives from s: (s+1) copies of 100*s + r.
    for (r, got) in res.iter().enumerate() {
        let mut want = Vec::new();
        for s in 0..3i32 {
            for _ in 0..=s {
                want.push(100 * s + r as i32);
            }
        }
        assert_eq!(got, &want, "rank {r}");
    }
}

#[test]
fn barrier_roughly_aligns_clocks() {
    let topo = Topology::new(2, 4);
    let times = run_mpi(topo, Profile::mvapich2(), |mpi| {
        let w = mpi.world();
        let me = mpi.rank(w).unwrap();
        // Skew the ranks heavily before the barrier.
        mpi.clock_mut()
            .charge(vtime::VDur::from_micros(me as f64 * 50.0));
        mpi.barrier(w).unwrap();
        mpi.now().as_micros()
    });
    let slowest_entry = 7.0 * 50.0;
    for t in &times {
        assert!(
            *t >= slowest_entry,
            "no rank may leave the barrier before the slowest entered (t={t})"
        );
        assert!(
            *t < slowest_entry + 100.0,
            "barrier overhead is bounded (t={t})"
        );
    }
}

#[test]
fn bcast_with_vector_datatype() {
    // Derived-datatype broadcast: a strided column.
    let vec_dt = Datatype::vector(4, 1, 3, Datatype::Basic(BasicType::Int)).unwrap();
    let ext_ints = 10; // ((4-1)*3 + 1) = 10 ints per element
    let res = run_mpi(Topology::new(2, 2), Profile::mvapich2(), move |mpi| {
        let w = mpi.world();
        let me = mpi.rank(w).unwrap();
        let mut region = vec![-1i32; ext_ints];
        if me == 0 {
            for k in 0..4 {
                region[k * 3] = (k as i32 + 1) * 11;
            }
        }
        let mut buf = ints(&region);
        mpi.bcast(&mut buf, 1, &vec_dt, 0, w).unwrap();
        to_ints(&buf)
    });
    for (r, got) in res.iter().enumerate() {
        for k in 0..4 {
            assert_eq!(got[k * 3], (k as i32 + 1) * 11, "rank {r} stride slot {k}");
        }
        if r != 0 {
            // Gaps must be untouched on receivers.
            assert_eq!(got[1], -1);
            assert_eq!(got[2], -1);
        }
    }
}

#[test]
fn collectives_are_deterministic() {
    let run = || {
        run_mpi(Topology::new(2, 4), Profile::mvapich2(), |mpi| {
            let w = mpi.world();
            let me = mpi.rank(w).unwrap() as i32;
            let send = ints(&vec![me; 2048]);
            let mut recv = vec![0u8; 4 * 2048];
            mpi.allreduce(&send, &mut recv, 2048, &INT, ReduceOp::Sum, w)
                .unwrap();
            let mut b = ints(&vec![me; 512]);
            mpi.bcast(&mut b, 512, &INT, 0, w).unwrap();
            mpi.barrier(w).unwrap();
            mpi.now().as_nanos()
        })
    };
    assert_eq!(run(), run(), "collective timing must be bit-deterministic");
}

#[test]
fn hierarchical_collectives_beat_flat_on_multinode() {
    // The structural property behind Figures 14-17: with everything else
    // equal, the MVAPICH2 profile's collectives finish faster on a
    // 4x16 cluster.
    let topo = Topology::new(4, 8); // 32 ranks (test-sized)
    let time_for = |profile: Profile| {
        let times = run_mpi(topo, profile, move |mpi| {
            let w = mpi.world();
            let me = mpi.rank(w).unwrap() as i32;
            mpi.barrier(w).unwrap();
            let t0 = mpi.now();
            for _ in 0..5 {
                let send = ints(&vec![me; 256]);
                let mut recv = vec![0u8; 4 * 256];
                mpi.allreduce(&send, &mut recv, 256, &INT, ReduceOp::Sum, w)
                    .unwrap();
            }
            (mpi.now() - t0).as_nanos()
        });
        times.iter().copied().fold(0.0f64, f64::max)
    };
    let mv = time_for(Profile::mvapich2());
    let om = time_for(Profile::openmpi_ucx());
    assert!(
        om > 1.3 * mv,
        "Open MPI profile should be clearly slower on multi-node allreduce: mv={mv} om={om}"
    );
}
