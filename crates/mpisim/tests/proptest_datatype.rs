//! Randomized tests for the datatype pack engine and reduction ops,
//! driven by a deterministic LCG (no external property-testing crates;
//! every run replays the same cases).

use mpisim::datatype::{BasicType, Datatype};
use mpisim::{op, ReduceOp};

/// Knuth LCG.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() >> 33) as usize % n
    }
    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }
}

fn basic(rng: &mut Lcg) -> Datatype {
    const BASICS: [BasicType; 7] = [
        BasicType::Byte,
        BasicType::Char,
        BasicType::Short,
        BasicType::Int,
        BasicType::Long,
        BasicType::Float,
        BasicType::Double,
    ];
    Datatype::Basic(BASICS[rng.below(BASICS.len())])
}

/// A pseudo-random (possibly derived) datatype with bounded nesting —
/// the shape space the old proptest strategy covered.
fn gen_datatype(rng: &mut Lcg, depth: usize) -> Datatype {
    if depth == 0 || rng.below(3) == 0 {
        return basic(rng);
    }
    match rng.below(3) {
        0 => Datatype::contiguous(rng.range(1, 4), gen_datatype(rng, depth - 1)),
        1 => {
            let count = rng.range(1, 4);
            let blocklength = rng.range(1, 3);
            let stride = blocklength + rng.below(4);
            Datatype::vector(count, blocklength, stride, gen_datatype(rng, depth - 1))
                .expect("stride >= blocklength is valid")
        }
        _ => {
            // Non-overlapping (displacement, len) blocks from (gap, len)
            // pairs.
            let mut disp = 0usize;
            let mut blocks = Vec::new();
            for _ in 0..rng.range(1, 4) {
                disp += rng.below(3);
                let len = rng.range(1, 3);
                blocks.push((disp, len));
                disp += len;
            }
            Datatype::indexed(blocks, gen_datatype(rng, depth - 1)).expect("non-overlapping")
        }
    }
}

#[test]
fn segments_are_sorted_disjoint_and_sum_to_size() {
    let mut rng = Lcg::new(1);
    for _ in 0..128 {
        let dt = gen_datatype(&mut rng, 2);
        let segs = dt.segments();
        let mut end = 0usize;
        let mut total = 0usize;
        for &(off, len) in &segs {
            assert!(
                off >= end,
                "segments must not overlap or go backwards: {dt:?}"
            );
            assert!(len > 0);
            end = off + len;
            total += len;
        }
        assert_eq!(total, dt.size());
        assert!(end <= dt.extent().max(end));
    }
}

#[test]
fn pack_unpack_roundtrips() {
    let mut rng = Lcg::new(2);
    for _ in 0..128 {
        let dt = gen_datatype(&mut rng, 2);
        let count = rng.below(5);
        let span = dt.span(count).max(dt.extent() * count);
        let mut src = vec![0u8; span.max(1)];
        for b in src.iter_mut() {
            *b = (rng.next() >> 56) as u8;
        }
        let packed = dt.pack(&src, count).unwrap();
        assert_eq!(packed.len(), dt.size() * count);
        let mut dst = vec![0u8; src.len()];
        dt.unpack(&packed, count, &mut dst).unwrap();
        // Every byte covered by the typemap roundtrips.
        let ext = dt.extent();
        for i in 0..count {
            for &(off, len) in &dt.segments() {
                let a = &src[i * ext + off..i * ext + off + len];
                let b = &dst[i * ext + off..i * ext + off + len];
                assert_eq!(a, b, "typemap bytes corrupted: {dt:?}");
            }
        }
    }
}

const ALL_OPS: [ReduceOp; 9] = [
    ReduceOp::Sum,
    ReduceOp::Prod,
    ReduceOp::Min,
    ReduceOp::Max,
    ReduceOp::Band,
    ReduceOp::Bor,
    ReduceOp::Bxor,
    ReduceOp::Land,
    ReduceOp::Lor,
];

#[test]
fn reduction_ops_match_scalar_reference() {
    let mut rng = Lcg::new(3);
    for op in ALL_OPS {
        for _ in 0..16 {
            let n = rng.range(1, 16);
            let a: Vec<i32> = (0..n).map(|_| rng.next() as i32).collect();
            let b: Vec<i32> = (0..n).map(|_| (rng.next() >> 33) as i32).collect();
            let mut acc: Vec<u8> = a.iter().flat_map(|x| x.to_le_bytes()).collect();
            let src: Vec<u8> = b.iter().flat_map(|x| x.to_le_bytes()).collect();
            op::apply(op, &mpisim::datatype::INT, &mut acc, &src).unwrap();
            let got: Vec<i32> = acc
                .chunks_exact(4)
                .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            for i in 0..n {
                let want = match op {
                    ReduceOp::Sum => a[i].wrapping_add(b[i]),
                    ReduceOp::Prod => a[i].wrapping_mul(b[i]),
                    ReduceOp::Min => a[i].min(b[i]),
                    ReduceOp::Max => a[i].max(b[i]),
                    ReduceOp::Band => a[i] & b[i],
                    ReduceOp::Bor => a[i] | b[i],
                    ReduceOp::Bxor => a[i] ^ b[i],
                    ReduceOp::Land => ((a[i] != 0) && (b[i] != 0)) as i32,
                    ReduceOp::Lor => ((a[i] != 0) || (b[i] != 0)) as i32,
                };
                assert_eq!(got[i], want, "{op:?} lane {i}");
            }
        }
    }
}

#[test]
fn commutative_ops_commute() {
    let commutative = [
        ReduceOp::Sum,
        ReduceOp::Min,
        ReduceOp::Max,
        ReduceOp::Band,
        ReduceOp::Bor,
        ReduceOp::Bxor,
    ];
    let mut rng = Lcg::new(4);
    for op in commutative {
        for _ in 0..16 {
            let n = rng.range(1, 8);
            let a: Vec<i64> = (0..n).map(|_| rng.next() as i64).collect();
            let b: Vec<i64> = (0..n).map(|_| rng.next() as i64).collect();
            let bytes = |v: &[i64]| -> Vec<u8> { v.iter().flat_map(|x| x.to_le_bytes()).collect() };
            let mut ab = bytes(&a);
            op::apply(op, &mpisim::datatype::LONG, &mut ab, &bytes(&b)).unwrap();
            let mut ba = bytes(&b);
            op::apply(op, &mpisim::datatype::LONG, &mut ba, &bytes(&a)).unwrap();
            assert_eq!(ab, ba, "{op:?} must commute");
        }
    }
}
