//! Property tests for the datatype pack engine and reduction ops.

use mpisim::datatype::{BasicType, Datatype};
use mpisim::{op, ReduceOp};
use proptest::prelude::*;

fn arb_basic() -> impl Strategy<Value = BasicType> {
    prop_oneof![
        Just(BasicType::Byte),
        Just(BasicType::Char),
        Just(BasicType::Short),
        Just(BasicType::Int),
        Just(BasicType::Long),
        Just(BasicType::Float),
        Just(BasicType::Double),
    ]
}

/// Arbitrary (possibly derived) datatype with bounded nesting.
fn arb_datatype() -> impl Strategy<Value = Datatype> {
    let basic = arb_basic().prop_map(Datatype::Basic);
    basic.prop_recursive(2, 8, 4, |inner| {
        prop_oneof![
            (1usize..4, inner.clone())
                .prop_map(|(count, base)| Datatype::contiguous(count, base)),
            (1usize..4, 1usize..3, 0usize..4, inner.clone()).prop_filter_map(
                "valid vector",
                |(count, blocklength, extra, base)| {
                    let stride = blocklength + extra;
                    Datatype::vector(count, blocklength, stride, base).ok()
                }
            ),
            proptest::collection::vec((0usize..3, 1usize..3), 1..4).prop_flat_map(
                move |blocks| {
                    // Convert (gap, len) pairs into non-overlapping
                    // (displacement, len) blocks.
                    let mut disp = 0;
                    let mut out = Vec::new();
                    for (gap, len) in blocks {
                        disp += gap;
                        out.push((disp, len));
                        disp += len;
                    }
                    let inner = inner.clone();
                    inner.prop_map(move |base| {
                        Datatype::indexed(out.clone(), base).expect("non-overlapping")
                    })
                }
            ),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn segments_are_sorted_disjoint_and_sum_to_size(dt in arb_datatype()) {
        let segs = dt.segments();
        let mut end = 0usize;
        let mut total = 0usize;
        for &(off, len) in &segs {
            prop_assert!(off >= end, "segments must not overlap or go backwards");
            prop_assert!(len > 0);
            end = off + len;
            total += len;
        }
        prop_assert_eq!(total, dt.size());
        prop_assert!(end <= dt.extent().max(end));
    }

    #[test]
    fn pack_unpack_roundtrips(dt in arb_datatype(), count in 0usize..5, seed in any::<u64>()) {
        let span = dt.span(count).max(dt.extent() * count);
        let mut src = vec![0u8; span.max(1)];
        let mut s = seed;
        for b in src.iter_mut() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (s >> 56) as u8;
        }
        let packed = dt.pack(&src, count).unwrap();
        prop_assert_eq!(packed.len(), dt.size() * count);
        let mut dst = vec![0u8; src.len()];
        dt.unpack(&packed, count, &mut dst).unwrap();
        // Every byte covered by the typemap roundtrips.
        let ext = dt.extent();
        for i in 0..count {
            for &(off, len) in &dt.segments() {
                let a = &src[i * ext + off..i * ext + off + len];
                let b = &dst[i * ext + off..i * ext + off + len];
                prop_assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn reduction_ops_match_scalar_reference(
        a in proptest::collection::vec(any::<i32>(), 1..16),
        b_seed in any::<u64>(),
        op in prop_oneof![
            Just(ReduceOp::Sum), Just(ReduceOp::Prod), Just(ReduceOp::Min),
            Just(ReduceOp::Max), Just(ReduceOp::Band), Just(ReduceOp::Bor),
            Just(ReduceOp::Bxor), Just(ReduceOp::Land), Just(ReduceOp::Lor),
        ],
    ) {
        let mut s = b_seed;
        let b: Vec<i32> = a.iter().map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 33) as i32
        }).collect();
        let mut acc: Vec<u8> = a.iter().flat_map(|x| x.to_le_bytes()).collect();
        let src: Vec<u8> = b.iter().flat_map(|x| x.to_le_bytes()).collect();
        op::apply(op, &mpisim::datatype::INT, &mut acc, &src).unwrap();
        let got: Vec<i32> = acc.chunks_exact(4).map(|c| i32::from_le_bytes(c.try_into().unwrap())).collect();
        for i in 0..a.len() {
            let want = match op {
                ReduceOp::Sum => a[i].wrapping_add(b[i]),
                ReduceOp::Prod => a[i].wrapping_mul(b[i]),
                ReduceOp::Min => a[i].min(b[i]),
                ReduceOp::Max => a[i].max(b[i]),
                ReduceOp::Band => a[i] & b[i],
                ReduceOp::Bor => a[i] | b[i],
                ReduceOp::Bxor => a[i] ^ b[i],
                ReduceOp::Land => ((a[i] != 0) && (b[i] != 0)) as i32,
                ReduceOp::Lor => ((a[i] != 0) || (b[i] != 0)) as i32,
            };
            prop_assert_eq!(got[i], want);
        }
    }

    #[test]
    fn commutative_ops_commute(
        a in proptest::collection::vec(any::<i64>(), 1..8),
        b in proptest::collection::vec(any::<i64>(), 1..8),
        op in prop_oneof![
            Just(ReduceOp::Sum), Just(ReduceOp::Min), Just(ReduceOp::Max),
            Just(ReduceOp::Band), Just(ReduceOp::Bor), Just(ReduceOp::Bxor),
        ],
    ) {
        let n = a.len().min(b.len());
        let bytes = |v: &[i64]| -> Vec<u8> { v[..n].iter().flat_map(|x| x.to_le_bytes()).collect() };
        let mut ab = bytes(&a);
        op::apply(op, &mpisim::datatype::LONG, &mut ab, &bytes(&b)).unwrap();
        let mut ba = bytes(&b);
        op::apply(op, &mpisim::datatype::LONG, &mut ba, &bytes(&a)).unwrap();
        prop_assert_eq!(ab, ba);
    }
}
