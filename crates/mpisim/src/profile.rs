//! Library profiles: the tunable performance models of the two native MPI
//! libraries the paper evaluates.
//!
//! The paper attributes its headline collective gaps "largely to the
//! performance differences of the native libraries". A profile captures
//! those differences as (a) LogGP parameters per path (shared-memory vs.
//! network), (b) protocol thresholds, and (c) collective algorithm
//! selection and software overheads. `Profile::mvapich2()` and
//! `Profile::openmpi_ucx()` are calibrated against the published curves —
//! see `EXPERIMENTS.md` for the resulting paper-vs-measured comparison.

use vtime::{LogGp, VDur};

/// Per-path (shm or network) transport parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathParams {
    /// Timing of the wire/copy pipe.
    pub loggp: LogGp,
    /// Largest payload sent eagerly; above this the rendezvous protocol
    /// is used.
    pub eager_threshold: usize,
    /// Sender CPU cost per byte to stage an eager payload into the bounce
    /// buffer.
    pub eager_copy_per_byte_ns: f64,
    /// Receiver CPU cost per byte to copy an eager payload out of the
    /// bounce buffer.
    pub recv_copy_per_byte_ns: f64,
    /// Additional per-byte cost when the eager payload took the
    /// unexpected-message path (staged once more).
    pub unexpected_extra_per_byte_ns: f64,
    /// Receiver-side cost to turn an RTS into a CTS.
    pub cts_handling_ns: f64,
    /// Wire header added to every message for serialization timing.
    pub header_bytes: usize,
    /// Largest one-sided payload sent through the pre-registered eager
    /// (copy-based) RDMA-write path; above this the payload moves
    /// zero-copy from registered user memory (rendezvous crossover).
    pub rma_eager_threshold: usize,
    /// Base cost of registering (pinning) a memory region with the NIC on
    /// a registration-cache miss.
    pub rma_reg_base_ns: f64,
    /// Per-byte cost of registering a memory region.
    pub rma_reg_per_byte_ns: f64,
}

impl PathParams {
    /// Sender staging cost for an `n`-byte eager payload.
    #[inline]
    pub fn eager_copy(&self, n: usize) -> VDur {
        VDur::from_nanos(n as f64 * self.eager_copy_per_byte_ns)
    }

    /// Receiver copy-out cost for an `n`-byte eager payload.
    #[inline]
    pub fn recv_copy(&self, n: usize) -> VDur {
        VDur::from_nanos(n as f64 * self.recv_copy_per_byte_ns)
    }

    /// Extra cost for consuming an unexpected `n`-byte eager payload.
    #[inline]
    pub fn unexpected_extra(&self, n: usize) -> VDur {
        VDur::from_nanos(n as f64 * self.unexpected_extra_per_byte_ns)
    }

    /// NIC registration (pinning) cost for an `n`-byte region — paid on a
    /// registration-cache miss before a zero-copy one-sided transfer.
    #[inline]
    pub fn rma_reg(&self, n: usize) -> VDur {
        VDur::from_nanos(self.rma_reg_base_ns + n as f64 * self.rma_reg_per_byte_ns)
    }
}

/// Collective algorithm tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollTuning {
    /// Use topology-aware two-level algorithms (node leaders over the
    /// network + shared-memory stages). MVAPICH2's signature strength.
    pub hierarchical: bool,
    /// Largest payload handled by the two-level algorithms; above this
    /// the library falls back to flat bandwidth-optimal algorithms.
    pub two_level_max: usize,
    /// Within the two-level allreduce, payloads ≤ this use the simple
    /// leader fan-in; larger payloads use the cooperative intra-node
    /// ring reduce-scatter (serialized fan-in does not scale to megabyte
    /// vectors).
    pub two_level_fanin_max: usize,
    /// Bcast: payloads ≤ this use the binomial tree; larger payloads use
    /// scatter + allgather (hierarchical) or a pipelined chain (flat).
    pub bcast_binomial_max: usize,
    /// Segment size of the flat pipelined-chain bcast.
    pub bcast_segment: usize,
    /// Allreduce: payloads ≤ this use recursive doubling; larger use
    /// Rabenseifner (reduce-scatter + allgather) or — if
    /// `allreduce_ring_above_rd` — a ring, Open MPI's large-message
    /// default with its long per-step critical path.
    pub allreduce_rd_max: usize,
    /// Use the ring allreduce above `allreduce_rd_max` (Open MPI tuned
    /// behaviour) instead of Rabenseifner.
    pub allreduce_ring_above_rd: bool,
    /// Extra per-hop software overhead specific to broadcast (models the
    /// segmented splitted-binary scheduling of Open MPI's tuned module,
    /// the main ingredient of the paper's 6.2x gap).
    pub bcast_perhop_extra_ns: f64,
    /// Extra per-hop software overhead specific to allreduce.
    pub allreduce_perhop_extra_ns: f64,
    /// Fixed software overhead charged per collective call (decision
    /// logic, argument checking) on every rank.
    pub percall_ns: f64,
    /// Extra software overhead charged per tree/ring hop (progression,
    /// scheduling) on the sending side of each internal message.
    pub perhop_ns: f64,
}

/// A native MPI library performance model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Profile {
    /// Human-readable library name (figure labels).
    pub name: &'static str,
    /// Intra-node (shared-memory) path.
    pub shm: PathParams,
    /// Inter-node (network) path.
    pub net: PathParams,
    /// Collective tuning.
    pub coll: CollTuning,
    /// Reduction compute cost per byte of operand combined.
    pub reduce_per_byte_ns: f64,
    /// Native pack/unpack cost per byte for non-contiguous datatypes.
    pub pack_per_byte_ns: f64,
}

impl Profile {
    /// The path used between this rank and `local` (same-node) peers.
    #[inline]
    pub fn path(&self, local: bool) -> &PathParams {
        if local {
            &self.shm
        } else {
            &self.net
        }
    }

    /// MVAPICH2-X 2.3.6-like model: very fast shared-memory path, tuned
    /// hierarchical collectives, RDMA network path.
    pub fn mvapich2() -> Profile {
        Profile {
            name: "MVAPICH2",
            shm: PathParams {
                loggp: LogGp {
                    latency_ns: 80.0,
                    o_send_ns: 45.0,
                    o_recv_ns: 45.0,
                    gap_msg_ns: 20.0,
                    // Single-copy (CMA/kernel-assisted) streaming:
                    // ~18 GB/s effective.
                    gap_per_byte_ns: 0.055,
                },
                eager_threshold: 8 * 1024,
                eager_copy_per_byte_ns: 0.030,
                recv_copy_per_byte_ns: 0.030,
                unexpected_extra_per_byte_ns: 0.030,
                cts_handling_ns: 80.0,
                header_bytes: 48,
                rma_eager_threshold: 8 * 1024,
                // CMA-backed shm "registration" is cheap (VMA bookkeeping).
                rma_reg_base_ns: 6_000.0,
                rma_reg_per_byte_ns: 0.008,
            },
            net: PathParams {
                loggp: LogGp {
                    latency_ns: 850.0,
                    o_send_ns: 140.0,
                    o_recv_ns: 140.0,
                    gap_msg_ns: 40.0,
                    // HDR-100 InfiniBand: ~12.2 GB/s.
                    gap_per_byte_ns: 0.082,
                },
                eager_threshold: 16 * 1024,
                eager_copy_per_byte_ns: 0.030,
                recv_copy_per_byte_ns: 0.030,
                unexpected_extra_per_byte_ns: 0.030,
                cts_handling_ns: 120.0,
                header_bytes: 64,
                rma_eager_threshold: 16 * 1024,
                // ibv_reg_mr: page pinning plus HCA translation update.
                rma_reg_base_ns: 25_000.0,
                rma_reg_per_byte_ns: 0.010,
            },
            coll: CollTuning {
                hierarchical: true,
                two_level_max: usize::MAX,
                two_level_fanin_max: 2 * 1024,
                bcast_binomial_max: 16 * 1024,
                bcast_segment: 128 * 1024,
                allreduce_rd_max: 16 * 1024,
                allreduce_ring_above_rd: false,
                bcast_perhop_extra_ns: 0.0,
                allreduce_perhop_extra_ns: 0.0,
                percall_ns: 150.0,
                perhop_ns: 30.0,
            },
            reduce_per_byte_ns: 0.045,
            pack_per_byte_ns: 0.030,
        }
    }

    /// Open MPI 4.1.2 + UCX 1.13-like model: comparable network path,
    /// noticeably slower small-message shared-memory path, flat
    /// (topology-unaware) collective defaults with heavier decision
    /// overhead — the combination behind Figures 5, 14–17.
    pub fn openmpi_ucx() -> Profile {
        Profile {
            name: "Open MPI",
            shm: PathParams {
                loggp: LogGp {
                    latency_ns: 420.0,
                    o_send_ns: 230.0,
                    o_recv_ns: 230.0,
                    gap_msg_ns: 60.0,
                    gap_per_byte_ns: 0.105,
                },
                eager_threshold: 4 * 1024,
                eager_copy_per_byte_ns: 0.034,
                recv_copy_per_byte_ns: 0.034,
                unexpected_extra_per_byte_ns: 0.034,
                cts_handling_ns: 150.0,
                header_bytes: 64,
                rma_eager_threshold: 4 * 1024,
                rma_reg_base_ns: 8_000.0,
                rma_reg_per_byte_ns: 0.009,
            },
            net: PathParams {
                loggp: LogGp {
                    latency_ns: 870.0,
                    o_send_ns: 150.0,
                    o_recv_ns: 150.0,
                    gap_msg_ns: 45.0,
                    // UCX squeezes slightly more large-message bandwidth
                    // out of the same HCA (Figure 13).
                    gap_per_byte_ns: 0.079,
                },
                eager_threshold: 8 * 1024,
                eager_copy_per_byte_ns: 0.032,
                recv_copy_per_byte_ns: 0.032,
                unexpected_extra_per_byte_ns: 0.032,
                cts_handling_ns: 140.0,
                header_bytes: 64,
                rma_eager_threshold: 8 * 1024,
                rma_reg_base_ns: 30_000.0,
                rma_reg_per_byte_ns: 0.012,
            },
            coll: CollTuning {
                hierarchical: false,
                two_level_max: 0,
                two_level_fanin_max: 0,
                bcast_binomial_max: 8 * 1024,
                bcast_segment: 8 * 1024,
                // Open MPI's tuned module keeps recursive doubling far
                // longer before switching, then rings.
                allreduce_rd_max: 64 * 1024,
                allreduce_ring_above_rd: true,
                bcast_perhop_extra_ns: 1_400.0,
                allreduce_perhop_extra_ns: 900.0,
                percall_ns: 1_400.0,
                perhop_ns: 260.0,
            },
            reduce_per_byte_ns: 0.065,
            pack_per_byte_ns: 0.032,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mvapich_shm_beats_openmpi_shm_small() {
        // The native basis of Figure 5.
        let mv = Profile::mvapich2();
        let om = Profile::openmpi_ucx();
        let mv_lat = mv.shm.loggp.unloaded(8).as_nanos() + mv.shm.loggp.o_recv_ns;
        let om_lat = om.shm.loggp.unloaded(8).as_nanos() + om.shm.loggp.o_recv_ns;
        assert!(
            om_lat / mv_lat > 3.0,
            "native shm gap drives the 2.46x Java-level gap: {om_lat}/{mv_lat}"
        );
    }

    #[test]
    fn network_paths_are_comparable() {
        // The native basis of Figures 9/10: inter-node pt2pt similar.
        let mv = Profile::mvapich2();
        let om = Profile::openmpi_ucx();
        let mv_lat = mv.net.loggp.unloaded(8).as_nanos();
        let om_lat = om.net.loggp.unloaded(8).as_nanos();
        let ratio = om_lat / mv_lat;
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn openmpi_has_better_large_message_network_bandwidth() {
        // Figure 13: MVAPICH2-J buffer slightly lags Open MPI-J buffer.
        let mv = Profile::mvapich2();
        let om = Profile::openmpi_ucx();
        assert!(om.net.loggp.gap_per_byte_ns < mv.net.loggp.gap_per_byte_ns);
    }

    #[test]
    fn path_selector() {
        let p = Profile::mvapich2();
        assert_eq!(p.path(true), &p.shm);
        assert_eq!(p.path(false), &p.net);
    }

    #[test]
    fn collective_tuning_reflects_design() {
        assert!(Profile::mvapich2().coll.hierarchical);
        assert!(!Profile::openmpi_ucx().coll.hierarchical);
        assert!(Profile::openmpi_ucx().coll.percall_ns > Profile::mvapich2().coll.percall_ns);
    }

    #[test]
    fn helper_costs_scale() {
        let p = Profile::mvapich2();
        assert_eq!(p.shm.eager_copy(0), VDur::ZERO);
        assert!(p.shm.eager_copy(1000) > p.shm.eager_copy(100));
    }
}
