//! The per-rank progress engine: MPI point-to-point semantics (matching,
//! eager and rendezvous protocols, requests) over a fabric endpoint.
//!
//! ## Protocols
//!
//! * **Eager** (payload ≤ path threshold): the sender copies the payload
//!   into a bounce buffer (charged per byte), injects one message, and
//!   completes immediately. The receiver pays a copy-out when it consumes
//!   the message — plus an extra touch if the message arrived before the
//!   receive was posted (unexpected queue).
//! * **Rendezvous** (payload > threshold): the sender injects a small RTS
//!   and completes only after the receiver's CTS arrives; the payload then
//!   moves zero-copy (RDMA-style) — no per-byte CPU charge, only wire
//!   serialization time.
//!
//! ## Virtual-time discipline
//!
//! The engine never advances its clock just because a message *popped out
//! of the channel*; costs attach to the operation that consumes the
//! message. This matters because the underlying channel delivers in real
//! time order, which may interleave messages whose virtual arrivals are
//! far apart. Control traffic (RTS/CTS) is handled "asynchronously" — the
//! modern hardware-offloaded rendezvous — so it never inflates the
//! receiver's application-visible clock.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use obs::wallprof::{self, Counter as WpCounter, Subsystem as WpSub};
use simfabric::{one_sided_channel, Delivery, Endpoint, Fate, FaultPlan, OneSidedClass};
use vtime::{Clock, LogGp, VDur, VTime};

use crate::error::{MpiError, MpiResult};
use crate::op::ReduceOp;
use crate::profile::{PathParams, Profile};

/// Wildcard source (MPI_ANY_SOURCE) for receive matching.
pub const ANY_SOURCE: i32 = -1;
/// Wildcard tag (MPI_ANY_TAG) for receive matching.
pub const ANY_TAG: i32 = -2;
/// Largest user tag; the collective layer uses tags above this.
pub const TAG_UB: i32 = 1 << 24;
/// Base of the non-blocking collective tag space (above every blocking
/// collective tag base). Traffic tagged here is schedule traffic: its
/// emission order is driven by message arrival rather than program order,
/// so it is injected on per-schedule fabric channels (see
/// [`injection_channel`]).
pub(crate) const NBC_TAG_BASE: i32 = TAG_UB + 0x1000;
/// Tag window stride per schedule; also the cap on rounds per schedule.
pub(crate) const NBC_ROUNDS_MAX: usize = 512;

/// Injection-channel classes for non-blocking-collective traffic. Each
/// class has a deterministic internal emission order but races against
/// the other classes in real time, so each gets its own channel.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ChannelClass {
    /// Eager payloads and RTS frames posted by a schedule round (fired in
    /// round order).
    Data = 0,
    /// CTS responses to a schedule's rendezvous sends (emitted in the
    /// peer's round order).
    Cts = 1,
    /// Rendezvous payloads released by a CTS (emitted in round order).
    RndvData = 2,
}

/// The fabric injection channel for a message with the given envelope.
///
/// Ordinary point-to-point and blocking-collective traffic (tags at or
/// below the blocking tag space) is emitted in program order, so it all
/// shares channel 0 and serializes realistically. Non-blocking-collective
/// schedule traffic is emitted whenever progression happens to run, which
/// real time decides — injecting it on the shared port would let OS
/// scheduling reorder the port's busy horizon and leak wall-clock
/// nondeterminism into virtual arrival times. Each schedule window (and
/// each response class within it) therefore gets a dedicated channel,
/// modeling the per-schedule send queue a hardware-offloaded NBC engine
/// owns. Within one channel the emission order is deterministic, so
/// arrivals stay a pure function of virtual time.
fn injection_channel(context: u32, tag: i32, class: ChannelClass) -> u64 {
    if tag < NBC_TAG_BASE {
        return 0;
    }
    let window = ((tag - NBC_TAG_BASE) as u64) / NBC_ROUNDS_MAX as u64;
    1 + (((context as u64) << 16) | window) * 3 + class as u64
}

/// Message envelope used for matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    /// Sender's world rank.
    pub src: usize,
    /// Message tag.
    pub tag: i32,
    /// Communication context (communicator id × pt2pt/collective stream).
    pub context: u32,
}

/// Causal stamp carried by every payload-bearing wire message: `flow` is
/// the globally unique flow id tying a send to its matching recv (bits
/// 40.. hold `src+1`, bits 0..40 a per-sender sequence number, so ids
/// from the same (src,dst,tag) stream are monotonically increasing);
/// `coll` is the collective-instance id (0 for plain pt2pt traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowStamp {
    pub flow: u64,
    pub coll: u64,
}

/// Fabric payload exchanged between engines.
#[derive(Debug, Clone)]
pub enum Wire {
    /// Eagerly sent message with inline payload.
    Eager {
        env: Envelope,
        data: Box<[u8]>,
        stamp: FlowStamp,
    },
    /// Rendezvous request-to-send.
    Rts {
        env: Envelope,
        sender_req: u64,
        nbytes: usize,
        stamp: FlowStamp,
    },
    /// Clear-to-send, answering an RTS.
    Cts { sender_req: u64 },
    /// Rendezvous payload (conceptually an RDMA write).
    RndvData {
        env: Envelope,
        data: Box<[u8]>,
        stamp: FlowStamp,
    },
    /// Reliability-sublayer positive acknowledgement of frame `seq`
    /// (only emitted while a fault plan is active).
    Ack { seq: u64 },
    /// One-sided RDMA write into window `win` at `offset`. Bypasses tag
    /// matching entirely: the target NIC deposits the payload into the
    /// exposed window memory without a posted receive. `epoch` carries the
    /// origin's access-epoch number for the window; the target defers
    /// frames from epochs it has not opened yet (see
    /// [`Engine::win_epoch_advance`]).
    Put {
        win: u32,
        epoch: u64,
        offset: usize,
        data: Box<[u8]>,
        stamp: FlowStamp,
    },
    /// One-sided read request: the target NIC answers with [`Wire::GetReply`]
    /// carrying `nbytes` from window `win` at `offset`, addressed to the
    /// origin's request `req`.
    GetReq {
        win: u32,
        epoch: u64,
        offset: usize,
        nbytes: usize,
        origin: usize,
        req: u64,
        stamp: FlowStamp,
    },
    /// Payload answering a [`Wire::GetReq`] (conceptually the RDMA-read
    /// response DMA'd straight into the origin's registered memory).
    GetReply {
        req: u64,
        data: Box<[u8]>,
        stamp: FlowStamp,
    },
    /// One-sided accumulate: element-wise `op` of the payload into window
    /// memory, applied by the target side on arrival.
    Acc {
        win: u32,
        epoch: u64,
        offset: usize,
        op: ReduceOp,
        data: Box<[u8]>,
        stamp: FlowStamp,
    },
}

/// The unit the engine actually puts on the fabric: a [`Wire`] message
/// framed with a per-link sequence number and a checksum. Outside a fault
/// plan both fields stay zero and are never inspected, so the reliability
/// sublayer costs nothing on a healthy fabric.
///
/// The wire content is shared (`Arc`) so retransmission clones a pointer,
/// not the payload: the reliability sublayer allocates the message once
/// however many copies the fabric ends up carrying.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Per-(src,dst) sequence number (1-based; 0 marks control acks).
    pub seq: u64,
    /// FNV-1a over `seq` and the wire content (0 when no plan is active).
    pub checksum: u64,
    /// The MPI-level message.
    pub wire: Arc<Wire>,
}

impl simfabric::FaultTarget for Frame {
    /// Bit-flip the frame the way a faulty wire would: payload bytes when
    /// there are any, otherwise the checksum itself (control frames).
    /// `seq` is left intact so the receiver can still attribute the frame.
    /// `Arc::make_mut` unshares the wire first, so the sender's pristine
    /// copy (needed for retransmission) is never damaged.
    fn corrupt(&mut self, salt: u64) {
        match Arc::make_mut(&mut self.wire) {
            Wire::Eager { data, .. }
            | Wire::RndvData { data, .. }
            | Wire::Put { data, .. }
            | Wire::GetReply { data, .. }
            | Wire::Acc { data, .. }
                if !data.is_empty() =>
            {
                let idx = (salt as usize) % data.len();
                data[idx] ^= (salt as u8) | 1;
            }
            _ => self.checksum ^= salt | 1,
        }
    }
}

/// FNV-1a hasher for frame checksums (checksum field excluded).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    fn eat_u64(&mut self, v: u64) {
        self.eat(&v.to_le_bytes());
    }
}

/// Checksum of a frame's integrity-relevant content.
fn frame_checksum(seq: u64, wire: &Wire) -> u64 {
    let mut h = Fnv::new();
    h.eat_u64(seq);
    let env_of = |h: &mut Fnv, env: &Envelope| {
        h.eat_u64(env.src as u64);
        h.eat_u64(env.tag as u64);
        h.eat_u64(env.context as u64);
    };
    match wire {
        Wire::Eager { env, data, stamp } => {
            h.eat_u64(1);
            env_of(&mut h, env);
            h.eat_u64(stamp.flow);
            h.eat(data);
        }
        Wire::Rts {
            env,
            sender_req,
            nbytes,
            stamp,
        } => {
            h.eat_u64(2);
            env_of(&mut h, env);
            h.eat_u64(*sender_req);
            h.eat_u64(*nbytes as u64);
            h.eat_u64(stamp.flow);
        }
        Wire::Cts { sender_req } => {
            h.eat_u64(3);
            h.eat_u64(*sender_req);
        }
        Wire::RndvData { env, data, stamp } => {
            h.eat_u64(4);
            env_of(&mut h, env);
            h.eat_u64(stamp.flow);
            h.eat(data);
        }
        Wire::Ack { seq } => {
            h.eat_u64(5);
            h.eat_u64(*seq);
        }
        Wire::Put {
            win,
            epoch,
            offset,
            data,
            stamp,
        } => {
            h.eat_u64(6);
            h.eat_u64(*win as u64);
            h.eat_u64(*epoch);
            h.eat_u64(*offset as u64);
            h.eat_u64(stamp.flow);
            h.eat(data);
        }
        Wire::GetReq {
            win,
            epoch,
            offset,
            nbytes,
            origin,
            req,
            stamp,
        } => {
            h.eat_u64(7);
            h.eat_u64(*win as u64);
            h.eat_u64(*epoch);
            h.eat_u64(*offset as u64);
            h.eat_u64(*nbytes as u64);
            h.eat_u64(*origin as u64);
            h.eat_u64(*req);
            h.eat_u64(stamp.flow);
        }
        Wire::GetReply { req, data, stamp } => {
            h.eat_u64(8);
            h.eat_u64(*req);
            h.eat_u64(stamp.flow);
            h.eat(data);
        }
        Wire::Acc {
            win,
            epoch,
            offset,
            op,
            data,
            stamp,
        } => {
            h.eat_u64(9);
            h.eat_u64(*win as u64);
            h.eat_u64(*epoch);
            h.eat_u64(*offset as u64);
            h.eat_u64(*op as u64);
            h.eat_u64(stamp.flow);
            h.eat(data);
        }
    }
    h.0
}

/// Completion information for a receive (subset of MPI_Status).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// World rank of the sender.
    pub source: usize,
    /// Tag of the matched message.
    pub tag: i32,
    /// Payload bytes received.
    pub bytes: usize,
}

/// Opaque request handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request(u64);

/// What a posted receive is willing to match.
///
/// Besides the exact fields, the spec precomputes a packed `(mask, key)`
/// pre-filter: context in bits 32.., truncated source in bits 16..32,
/// truncated tag in bits 0..16, with wildcard fields masked out. One AND
/// and compare rejects almost every non-matching envelope before the full
/// (counted) comparison runs; truncation can only produce false
/// *positives*, which the exact check then rejects.
#[derive(Debug, Clone, Copy)]
struct MatchSpec {
    context: u32,
    src: Option<usize>,
    tag: Option<i32>,
    mask: u64,
    key: u64,
}

/// Packed envelope key mirroring [`MatchSpec`]'s pre-filter layout.
#[inline]
fn env_key(env: &Envelope) -> u64 {
    ((env.context as u64) << 32) | ((env.src as u16 as u64) << 16) | (env.tag as u16 as u64)
}

impl MatchSpec {
    fn new(context: u32, src: Option<usize>, tag: Option<i32>) -> MatchSpec {
        let mut mask = 0xFFFF_FFFFu64 << 32;
        let mut key = (context as u64) << 32;
        if let Some(s) = src {
            mask |= 0xFFFF << 16;
            key |= (s as u16 as u64) << 16;
        }
        if let Some(t) = tag {
            mask |= 0xFFFF;
            key |= t as u16 as u64;
        }
        MatchSpec {
            context,
            src,
            tag,
            mask,
            key,
        }
    }

    /// Cheap packed-key rejection test; `true` means "might match".
    #[inline]
    fn prefilter(&self, packed: u64) -> bool {
        packed & self.mask == self.key
    }

    fn matches(&self, env: &Envelope) -> bool {
        env.context == self.context
            && self.src.map_or(true, |s| s == env.src)
            && self.tag.map_or(true, |t| t == env.tag)
    }
}

/// A message that arrived before a matching receive was posted. The
/// packed envelope key is computed once at enqueue so receive-side scans
/// pre-filter without touching the envelope.
#[derive(Debug)]
enum Unexpected {
    Eager {
        env: Envelope,
        key: u64,
        arrival: VTime,
        data: Box<[u8]>,
        stamp: FlowStamp,
    },
    Rts {
        env: Envelope,
        key: u64,
        arrival: VTime,
        sender_req: u64,
        nbytes: usize,
    },
}

impl Unexpected {
    fn env(&self) -> &Envelope {
        match self {
            Unexpected::Eager { env, .. } | Unexpected::Rts { env, .. } => env,
        }
    }

    fn key(&self) -> u64 {
        match self {
            Unexpected::Eager { key, .. } | Unexpected::Rts { key, .. } => *key,
        }
    }
}

#[derive(Debug)]
enum SendState {
    /// Eager send: already complete at this instant.
    EagerDone { complete_at: VTime },
    /// Rendezvous: RTS injected, waiting for CTS.
    AwaitCts {
        dst: usize,
        data: Box<[u8]>,
        env: Envelope,
        stamp: FlowStamp,
    },
    /// Rendezvous payload injected.
    RndvDone { complete_at: VTime },
}

#[derive(Debug)]
enum RecvState {
    /// Posted, nothing matched yet (records the posting instant so that
    /// control responses are timed deterministically).
    Posted { posted_at: VTime },
    /// Matched an RTS and answered CTS; waiting for the payload.
    AwaitData { src: usize },
    /// Payload is here (not yet consumed by `wait`).
    Ready {
        env: Envelope,
        arrival: VTime,
        data: Box<[u8]>,
        /// True if the message took the unexpected path (extra copy).
        was_unexpected: bool,
        stamp: FlowStamp,
    },
}

#[derive(Debug)]
enum ReqState {
    Send(SendState),
    Recv {
        spec: MatchSpec,
        capacity: usize,
        state: RecvState,
    },
    /// Outstanding one-sided get: waiting for the target's [`Wire::GetReply`]
    /// to land in origin memory. Never enters the posted list — one-sided
    /// traffic bypasses tag matching.
    RmaGet {
        target: usize,
        state: Option<(Box<[u8]>, VTime)>,
    },
}

/// A completed receive, returned by [`Engine::wait`].
#[derive(Debug)]
pub struct Completion {
    /// Receive payload (empty for send requests).
    pub data: Box<[u8]>,
    /// Matching metadata.
    pub status: Status,
}

/// The per-rank MPI progress engine.
pub struct Engine {
    ep: Endpoint<Frame>,
    clock: Clock,
    profile: Profile,
    requests: HashMap<u64, ReqState>,
    next_req: u64,
    /// Receive requests in post order (for arrival-side matching), each
    /// carrying its spec's packed pre-filter so scans reject non-matching
    /// entries without a request-table lookup. Entries leave this list as
    /// soon as their payload is ready (matched), not at consumption — a
    /// matched-but-unconsumed receive can never match again, so keeping it
    /// here only lengthens every later scan.
    posted: Vec<PostedEntry>,
    /// Arrived-but-unmatched messages in arrival order.
    unexpected: Vec<Unexpected>,
    /// Per-sender flow sequence number (monotonic over all sends, hence
    /// over every (src,dst,tag) stream).
    next_flow: u64,
    /// Collective instance currently in flight, and the context whose
    /// traffic it labels (stale outside a collective; the context gate
    /// keeps user pt2pt traffic unlabelled).
    coll_instance: u64,
    coll_ctx: Option<u32>,
    /// Per-context collective call counter; collectives are globally
    /// ordered per communicator, so every rank derives the same ids.
    coll_seq: HashMap<u32, u64>,
    /// Fault plan in force (copied from the endpoint at construction).
    /// `None` disables the entire reliability sublayer — no checksums,
    /// no acks, no dedup state — so a healthy fabric pays nothing.
    plan: Option<FaultPlan>,
    /// Next frame sequence number per destination (1-based).
    next_seq: Vec<u64>,
    /// Accepted frame seqs per source, for duplicate suppression.
    seen: Vec<HashSet<u64>>,
    /// Exposed one-sided window memory by window id (the "NIC view" the
    /// fabric deposits into and serves gets from).
    windows: HashMap<u32, WinMem>,
}

/// One exposed window: memory, the access epoch this rank has opened, and
/// one-sided frames from epochs it has not opened yet.
///
/// Epoch gating is what keeps one-sided traffic deterministic: an origin
/// that leaves a fence early (in *real* time) may inject next-epoch
/// operations before a slower target has closed the previous epoch, and
/// applying those on arrival would make window contents depend on OS
/// scheduling. Deferring every frame stamped with a future epoch, and
/// applying the backlog in virtual-arrival order when the target itself
/// advances, reproduces MPI's epoch semantics exactly: a deposit becomes
/// visible at the fence that closes the epoch it was issued in.
struct WinMem {
    mem: Vec<u8>,
    /// Number of fence epochs this rank has opened on the window (0 =
    /// between creation and the first fence).
    epoch: u64,
    /// Frames stamped with an epoch this rank has not opened yet, in
    /// arrival (real-time) order; replayed deterministically at
    /// [`Engine::win_epoch_advance`] / [`Engine::win_deliver_current`].
    deferred: Vec<DeferredRma>,
}

/// A one-sided frame parked until its epoch opens at the target.
struct DeferredRma {
    src: usize,
    arrival: VTime,
    wire: Wire,
}

impl DeferredRma {
    fn epoch(&self) -> u64 {
        match &self.wire {
            Wire::Put { epoch, .. } | Wire::GetReq { epoch, .. } | Wire::Acc { epoch, .. } => {
                *epoch
            }
            _ => unreachable!("only one-sided frames are deferred"),
        }
    }

    fn is_get(&self) -> bool {
        matches!(self.wire, Wire::GetReq { .. })
    }
}

/// One posted-receive entry: request id plus its spec's packed pre-filter.
#[derive(Debug, Clone, Copy)]
struct PostedEntry {
    id: u64,
    mask: u64,
    key: u64,
}

impl Engine {
    /// Wrap a fabric endpoint with MPI semantics under `profile`.
    pub fn new(ep: Endpoint<Frame>, profile: Profile) -> Self {
        let plan = ep.fault_plan();
        let n = ep.size();
        let mut clock = Clock::new();
        if let Some((rank, factor)) = plan.and_then(|p| p.slowdown) {
            if rank == ep.rank() {
                clock.set_rate(factor);
            }
        }
        Engine {
            ep,
            clock,
            profile,
            requests: HashMap::new(),
            next_req: 1,
            posted: Vec::new(),
            unexpected: Vec::new(),
            next_flow: 0,
            coll_instance: 0,
            coll_ctx: None,
            coll_seq: HashMap::new(),
            plan,
            next_seq: vec![1; n],
            seen: vec![HashSet::new(); n],
            windows: HashMap::new(),
        }
    }

    /// World rank of this engine.
    #[inline]
    pub fn rank(&self) -> usize {
        self.ep.rank()
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn world_size(&self) -> usize {
        self.ep.size()
    }

    /// The library profile in force.
    #[inline]
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// The fabric topology.
    pub fn topology(&self) -> &simfabric::Topology {
        self.ep.topology()
    }

    /// Mutable access to the rank's virtual clock (the bindings layer
    /// charges JNI and copy costs here).
    #[inline]
    pub fn clock_mut(&mut self) -> &mut Clock {
        &mut self.clock
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> VTime {
        self.clock.now()
    }

    fn path_to(&self, dst: usize) -> &PathParams {
        self.profile.path(self.ep.is_local(dst))
    }

    fn alloc_req(&mut self, st: ReqState) -> Request {
        let id = self.next_req;
        self.next_req += 1;
        self.requests.insert(id, st);
        Request(id)
    }

    /// Next flow id: bits 40.. are `src+1`, bits 0..40 the per-sender
    /// sequence — globally unique and monotonic per (src,dst,tag).
    fn alloc_flow(&mut self) -> u64 {
        self.next_flow += 1;
        ((self.rank() as u64 + 1) << 40) | self.next_flow
    }

    /// Begin a collective on context `ctx`: derive its deterministic
    /// instance id (`ctx << 32 | per-context call count`) and label the
    /// context's traffic with it until the next collective.
    pub fn begin_collective(&mut self, ctx: u32) -> u64 {
        let seq = self.coll_seq.entry(ctx).or_insert(0);
        *seq += 1;
        let id = ((ctx as u64) << 32) | *seq;
        self.coll_instance = id;
        self.coll_ctx = Some(ctx);
        id
    }

    /// Re-install a previously allocated collective label (context +
    /// instance id), returning the label it replaced. Non-blocking
    /// collective schedules use this so traffic posted during progression
    /// — possibly interleaved with other collectives — keeps carrying the
    /// instance id allocated at post time.
    pub fn swap_coll_label(&mut self, ctx: Option<u32>, id: u64) -> (Option<u32>, u64) {
        let old = (self.coll_ctx, self.coll_instance);
        self.coll_ctx = ctx;
        self.coll_instance = id;
        old
    }

    /// Instance id of the most recently begun collective (0 if none).
    pub fn current_collective(&self) -> u64 {
        self.coll_instance
    }

    /// Collective-instance label for traffic on `context`.
    fn coll_of(&self, context: u32) -> u64 {
        if self.coll_ctx == Some(context) {
            self.coll_instance
        } else {
            0
        }
    }

    // ------------------------------------------------------------------
    // Reliability sublayer
    // ------------------------------------------------------------------

    /// Inject `wire` towards `dst`, retransmitting on loss or corruption.
    ///
    /// Without a fault plan this is a plain injection (zero-cost framing).
    /// With one, the frame is sequenced and checksummed, and the sender
    /// retransmits with exponential backoff until a copy is delivered
    /// intact or the retry cap is hit. Retransmission is *oracle-timed*:
    /// the fabric's fault fates are seeded deterministic sender-side
    /// decisions, so the sender already knows whether a copy will survive
    /// and can schedule the retransmit at `t + rto·2^attempt` in virtual
    /// time without a real timer. The application clock is never charged —
    /// the reliability sublayer is NIC-offloaded, like the RC transport it
    /// stands in for — so faults surface as later arrivals (wait time),
    /// with `retransmit` spans recording the cause for attribution.
    fn inject_reliable(
        &mut self,
        dst: usize,
        channel: u64,
        t: VTime,
        wire_bytes: usize,
        loggp: &LogGp,
        wire: Wire,
    ) -> MpiResult<VTime> {
        let _wp = wallprof::span(WpSub::Fabric);
        let Some(plan) = self.plan else {
            let frame = Frame {
                seq: 0,
                checksum: 0,
                wire: Arc::new(wire),
            };
            let out = self
                .ep
                .send_on(dst, channel, t, wire_bytes, loggp, frame)
                .unwrap_or_else(|e| panic!("engine routed to invalid destination: {e}"));
            return Ok(out.arrival);
        };

        let seq = self.next_seq[dst];
        self.next_seq[dst] += 1;
        let checksum = {
            let _wr = wallprof::span(WpSub::Reliability);
            frame_checksum(seq, &wire)
        };
        // The payload is captured once; every (re)transmitted copy shares
        // it through the Arc, so retries cost a pointer clone, not an
        // allocation.
        let wire = Arc::new(wire);
        let mut attempt = 0u32;
        let mut t = t;
        loop {
            let frame = Frame {
                seq,
                checksum,
                wire: Arc::clone(&wire),
            };
            let out = self
                .ep
                .send_on(dst, channel, t, wire_bytes, loggp, frame)
                .unwrap_or_else(|e| panic!("engine routed to invalid destination: {e}"));
            match out.fate {
                Fate::Delivered | Fate::Duplicated | Fate::Corrupted => {
                    // Corrupted copies *are* delivered; the receiver's
                    // checksum rejects them and the oracle retransmits.
                }
                Fate::Dropped => {
                    obs::count("fabric.drops_injected", 1);
                }
            }
            if matches!(out.fate, Fate::Delivered | Fate::Duplicated) {
                return Ok(out.arrival);
            }
            if attempt >= plan.max_retries {
                // A destination that is dropping because it crashed is a
                // failed rank, not a flaky link.
                if let Some((crashed, _)) = plan.crash {
                    if crashed == dst {
                        obs::incident_mark(
                            "rank_failed",
                            dst,
                            t,
                            format!("peer {dst} unreachable after {attempt} retries"),
                        );
                        return Err(MpiError::RankFailed { rank: dst });
                    }
                }
                obs::incident_mark(
                    "transport_failure",
                    dst,
                    t,
                    format!("retries exhausted towards peer {dst}"),
                );
                return Err(MpiError::TransportFailure {
                    peer: dst,
                    retries: attempt,
                });
            }
            let backoff = plan.rto_ns * 2f64.powi(attempt as i32);
            obs::count("fabric.retransmits", 1);
            obs::count("reliability.backoff_ns", backoff as u64);
            let resend_at = t + VDur::from_nanos(backoff);
            if obs::tracing_enabled() {
                obs::span(
                    "retransmit",
                    "retransmit",
                    t,
                    resend_at,
                    vec![
                        ("dst", obs::ArgValue::U64(dst as u64)),
                        ("seq", obs::ArgValue::U64(seq)),
                        ("attempt", obs::ArgValue::U64(attempt as u64 + 1)),
                    ],
                );
            }
            t = resend_at;
            attempt += 1;
        }
    }

    /// Error out if this rank's own crash time has passed: a crashed rank
    /// stops initiating MPI operations (its thread then unwinds through
    /// the errhandler).
    fn check_self_crash(&self) -> MpiResult<()> {
        if let Some((rank, at_ns)) = self.plan.and_then(|p| p.crash) {
            if rank == self.rank() && self.clock.now().as_nanos() >= at_ns {
                obs::incident_mark(
                    "rank_failed",
                    rank,
                    self.clock.now(),
                    "own crash time passed".to_string(),
                );
                return Err(MpiError::RankFailed { rank });
            }
        }
        Ok(())
    }

    /// Pull the next delivery for the progress loop. When the plan
    /// declares a crashed rank, blocking is bounded by the watchdog: a
    /// stall longer than `watchdog_ms` of *real* time means the missing
    /// message is never coming (the dead rank will not send it), and the
    /// stall is converted into a deterministic `RankFailed`. Without a
    /// crash in the plan the fabric never loses a message permanently
    /// (retransmission is bounded), so unbounded blocking stays safe and
    /// real time stays out of the simulation entirely.
    fn recv_progress(&mut self) -> MpiResult<Delivery<Frame>> {
        match self
            .plan
            .and_then(|p| p.crash.map(|(r, _)| (r, p.watchdog_ms)))
        {
            None => Ok(self.ep.recv_blocking()),
            Some((crashed, ms)) => match self.ep.recv_timeout(Duration::from_millis(ms)) {
                Some(d) => Ok(d),
                None => {
                    obs::count("fabric.watchdog_trips", 1);
                    obs::incident_mark(
                        "watchdog",
                        crashed,
                        self.clock.now(),
                        format!("recv stalled {ms} ms waiting on rank {crashed}"),
                    );
                    Err(MpiError::RankFailed { rank: crashed })
                }
            },
        }
    }

    // ------------------------------------------------------------------
    // Posting
    // ------------------------------------------------------------------

    /// Non-blocking send of a contiguous byte payload.
    ///
    /// The payload is captured immediately (MPI buffer-reuse semantics for
    /// the simulation); timing follows the eager or rendezvous protocol.
    pub fn isend_bytes(
        &mut self,
        data: &[u8],
        dst: usize,
        tag: i32,
        context: u32,
    ) -> MpiResult<Request> {
        if dst >= self.world_size() {
            return Err(MpiError::InvalidRank {
                rank: dst as i32,
                comm_size: self.world_size(),
            });
        }
        self.check_self_crash()?;
        wallprof::add(WpCounter::Messages, 1);
        let path = *self.path_to(dst);
        let env = Envelope {
            src: self.rank(),
            tag,
            context,
        };
        let stamp = FlowStamp {
            flow: self.alloc_flow(),
            coll: self.coll_of(context),
        };
        if data.len() <= path.eager_threshold {
            // Eager: CPU copy into the bounce buffer, inject, done.
            wallprof::add(WpCounter::Allocs, 1); // payload capture below
            self.clock.charge(path.eager_copy(data.len()));
            self.clock.charge(path.loggp.o_send());
            let wire = path.header_bytes + data.len();
            let inject_at = self.clock.now();
            let arrival = self.inject_reliable(
                dst,
                injection_channel(context, tag, ChannelClass::Data),
                inject_at,
                wire,
                &path.loggp,
                Wire::Eager {
                    env,
                    data: data.into(),
                    stamp,
                },
            )?;
            obs::count("pt2pt.eager_msgs", 1);
            obs::count("pt2pt.eager_bytes", data.len() as u64);
            if obs::tracing_enabled() {
                self.trace_send(stamp, "eager", dst, tag, data.len(), inject_at, arrival);
            }
            Ok(self.alloc_req(ReqState::Send(SendState::EagerDone {
                complete_at: self.clock.now(),
            })))
        } else {
            // Rendezvous: inject RTS, park the payload until CTS.
            self.clock.charge(path.loggp.o_send());
            obs::count("pt2pt.rndv_msgs", 1);
            obs::count("pt2pt.rndv_bytes", data.len() as u64);
            if obs::tracing_enabled() {
                // The fabric span for the payload is emitted when the CTS
                // triggers the actual transfer.
                let now = self.clock.now();
                self.trace_send(stamp, "rndv", dst, tag, data.len(), now, now);
            }
            let nbytes = data.len();
            wallprof::add(WpCounter::Allocs, 1); // payload parked until CTS
            let req = self.alloc_req(ReqState::Send(SendState::AwaitCts {
                dst,
                data: data.into(),
                env,
                stamp,
            }));
            let Request(id) = req;
            if let Err(e) = self.inject_reliable(
                dst,
                injection_channel(context, tag, ChannelClass::Data),
                self.clock.now(),
                path.header_bytes,
                &path.loggp,
                Wire::Rts {
                    env,
                    sender_req: id,
                    nbytes,
                    stamp,
                },
            ) {
                self.requests.remove(&id);
                return Err(e);
            }
            Ok(req)
        }
    }

    /// Trace one send: the "send" instant, the flow-begin arrow anchor,
    /// and (when `arrival > inject_at`) the sender-side fabric-transfer
    /// span. Reads clocks only — never charges one.
    #[allow(clippy::too_many_arguments)]
    fn trace_send(
        &self,
        stamp: FlowStamp,
        proto: &'static str,
        dst: usize,
        tag: i32,
        bytes: usize,
        inject_at: VTime,
        arrival: VTime,
    ) {
        obs::instant(
            "send",
            "pt2pt",
            inject_at,
            vec![
                ("proto", obs::ArgValue::Str(proto)),
                ("dst", obs::ArgValue::U64(dst as u64)),
                ("tag", obs::ArgValue::I64(tag as i64)),
                ("bytes", obs::ArgValue::U64(bytes as u64)),
                ("flow", obs::ArgValue::U64(stamp.flow)),
                ("coll", obs::ArgValue::U64(stamp.coll)),
            ],
        );
        obs::flow(
            "msg",
            "flow",
            inject_at,
            obs::FlowDir::Begin,
            stamp.flow,
            vec![
                ("bytes", obs::ArgValue::U64(bytes as u64)),
                ("dst", obs::ArgValue::U64(dst as u64)),
                ("coll", obs::ArgValue::U64(stamp.coll)),
            ],
        );
        if arrival > inject_at {
            obs::span(
                "xfer",
                "fabric",
                inject_at,
                arrival,
                vec![
                    ("bytes", obs::ArgValue::U64(bytes as u64)),
                    ("dst", obs::ArgValue::U64(dst as u64)),
                    ("flow", obs::ArgValue::U64(stamp.flow)),
                ],
            );
        }
    }

    /// Non-blocking receive of up to `capacity` bytes.
    ///
    /// `src < 0` means [`ANY_SOURCE`]; `tag == ANY_TAG` matches any tag.
    pub fn irecv_bytes(
        &mut self,
        capacity: usize,
        src: i32,
        tag: i32,
        context: u32,
    ) -> MpiResult<Request> {
        if src >= self.world_size() as i32 {
            return Err(MpiError::InvalidRank {
                rank: src,
                comm_size: self.world_size(),
            });
        }
        // Note: internal collective traffic uses tags above TAG_UB; the
        // user-facing tag range check lives in the `Mpi` facade.
        if tag != ANY_TAG && tag < 0 {
            return Err(MpiError::InvalidTag { tag });
        }
        self.check_self_crash()?;
        let spec = MatchSpec::new(
            context,
            (src >= 0).then_some(src as usize),
            (tag != ANY_TAG).then_some(tag),
        );
        // First look at the unexpected queue (arrival order).
        let pos = {
            let _wp = wallprof::span(WpSub::Match);
            obs::count("pt2pt.match.scans", 1);
            wallprof::add(WpCounter::MatchScans, 1);
            let mut full = 0u64;
            let pos = self.unexpected.iter().position(|u| {
                if !spec.prefilter(u.key()) {
                    return false;
                }
                full += 1;
                spec.matches(u.env())
            });
            wallprof::add(WpCounter::MatchComparisons, full);
            pos
        };
        if let Some(pos) = pos {
            let u = self.unexpected.remove(pos);
            obs::count("pt2pt.unexpected_hits", 1);
            obs::gauge_set("pt2pt.unexpected_depth", self.unexpected.len() as i64);
            return self.match_unexpected(spec, capacity, u);
        }
        let posted_at = self.clock.now();
        let req = self.alloc_req(ReqState::Recv {
            spec,
            capacity,
            state: RecvState::Posted { posted_at },
        });
        self.posted.push(PostedEntry {
            id: req.0,
            mask: spec.mask,
            key: spec.key,
        });
        Ok(req)
    }

    /// Consume a previously-unmatched message for a newly posted receive.
    fn match_unexpected(
        &mut self,
        spec: MatchSpec,
        capacity: usize,
        u: Unexpected,
    ) -> MpiResult<Request> {
        match u {
            Unexpected::Eager {
                env,
                key: _,
                arrival,
                data,
                stamp,
            } => {
                if data.len() > capacity {
                    return Err(MpiError::Truncated {
                        incoming: data.len(),
                        capacity,
                    });
                }
                let was_unexpected = arrival < self.clock.now();
                Ok(self.alloc_req(ReqState::Recv {
                    spec,
                    capacity,
                    state: RecvState::Ready {
                        env,
                        arrival,
                        data,
                        was_unexpected,
                        stamp,
                    },
                }))
            }
            Unexpected::Rts {
                env,
                key: _,
                arrival,
                sender_req,
                nbytes,
            } => {
                if nbytes > capacity {
                    return Err(MpiError::Truncated {
                        incoming: nbytes,
                        capacity,
                    });
                }
                // The sender has been waiting for us: CTS goes out at
                // max(now, rts arrival) + handling. Offloaded, exactly like
                // the posted-receive path in `handle()` — whether the RTS
                // physically beat the `irecv` call is an OS-scheduling
                // accident, so the two paths must leave the application
                // clock in the same state or intermediate timestamps
                // (e.g. the start of a later wait) become nondeterministic.
                let path = *self.path_to(env.src);
                let t = self.clock.now().max(arrival) + VDur::from_nanos(path.cts_handling_ns);
                let req = self.alloc_req(ReqState::Recv {
                    spec,
                    capacity,
                    state: RecvState::AwaitData { src: env.src },
                });
                // The request must be findable when the payload arrives.
                self.posted.push(PostedEntry {
                    id: req.0,
                    mask: spec.mask,
                    key: spec.key,
                });
                self.inject_reliable(
                    env.src,
                    injection_channel(env.context, env.tag, ChannelClass::Cts),
                    t,
                    path.header_bytes,
                    &path.loggp,
                    Wire::Cts { sender_req },
                )?;
                Ok(req)
            }
        }
    }

    // ------------------------------------------------------------------
    // Progress
    // ------------------------------------------------------------------

    /// Handle one delivery. Control traffic is processed "offloaded" (no
    /// application clock charge); payload timing attaches at consumption.
    ///
    /// With a fault plan active, frames pass admission first: acks are
    /// counted and dropped, corrupt frames are rejected by checksum (the
    /// sender's oracle already retransmitted), duplicates are suppressed
    /// by seq, and every accepted frame is positively acknowledged
    /// out-of-band. Protocol violations that previously aborted the
    /// process surface as [`MpiError::ProtocolError`].
    fn handle(&mut self, d: Delivery<Frame>) -> MpiResult<()> {
        let _wp = wallprof::span(WpSub::Engine);
        wallprof::add(WpCounter::Deliveries, 1);
        // Bin subsequent pvar updates to this delivery's virtual arrival:
        // the telemetry interval an update lands in is then a function of
        // the message, not of real-time mailbox pop order.
        obs::telemetry_tick(d.arrival);
        obs::count("engine.deliveries", 1);
        let frame = d.msg;
        if self.plan.is_some() {
            let _wr = wallprof::span(WpSub::Reliability);
            if let Wire::Ack { .. } = &*frame.wire {
                // Pure bookkeeping at the original sender; the ack was
                // counted when emitted (the emit count is a deterministic
                // function of accepted frames, the drain count is not).
                return Ok(());
            }
            if frame.checksum != frame_checksum(frame.seq, &frame.wire) {
                obs::count("fabric.corrupt_detected", 1);
                return Ok(());
            }
            if !self.seen[d.src].insert(frame.seq) {
                obs::count("fabric.dups_suppressed", 1);
                return Ok(());
            }
            // Positive ack, out-of-band: one latency after the frame
            // landed, without occupying the reverse data port (the RC
            // transport acks from the NIC, not through the send queue).
            let path = *self.path_to(d.src);
            obs::count("fabric.acks", 1);
            self.ep.send_oob(
                d.src,
                d.arrival + VDur::from_nanos(path.loggp.latency_ns),
                Frame {
                    seq: 0,
                    checksum: 0,
                    wire: Arc::new(Wire::Ack { seq: frame.seq }),
                },
            );
        }
        // Consume the shared wire: sole owner on the common path (no
        // retransmission raced us), else clone out of the shared copy.
        let wire = Arc::try_unwrap(frame.wire).unwrap_or_else(|shared| (*shared).clone());
        match wire {
            Wire::Eager { env, data, stamp } => {
                if let Some((pos, rid)) = self.find_posted(&env) {
                    let Some(ReqState::Recv {
                        capacity, state, ..
                    }) = self.requests.get_mut(&rid)
                    else {
                        unreachable!("posted list holds recv requests");
                    };
                    let RecvState::Posted { posted_at } = *state else {
                        unreachable!("find_posted only returns Posted requests");
                    };
                    // Truncation surfaces at wait(); record ready state.
                    // Whether the message took the unexpected path is a
                    // *virtual-time* predicate (arrival before the receive
                    // was posted), so it cannot depend on OS scheduling.
                    let _ = capacity;
                    *state = RecvState::Ready {
                        env,
                        arrival: d.arrival,
                        data,
                        was_unexpected: d.arrival < posted_at,
                        stamp,
                    };
                    self.posted.remove(pos);
                } else {
                    self.unexpected.push(Unexpected::Eager {
                        env,
                        key: env_key(&env),
                        arrival: d.arrival,
                        data,
                        stamp,
                    });
                    obs::gauge_set("pt2pt.unexpected_depth", self.unexpected.len() as i64);
                }
            }
            Wire::Rts {
                env,
                sender_req,
                nbytes,
                stamp: _, // the payload (RndvData) re-carries the stamp
            } => {
                if let Some((_, rid)) = self.find_posted(&env) {
                    // Receive already posted: answer CTS now. Handled as
                    // offloaded progress: timed from the RTS arrival, not
                    // from the application clock.
                    let path = *self.path_to(env.src);
                    let Some(ReqState::Recv {
                        capacity, state, ..
                    }) = self.requests.get_mut(&rid)
                    else {
                        unreachable!("posted list holds recv requests");
                    };
                    let RecvState::Posted { posted_at } = *state else {
                        unreachable!("find_posted only returns Posted requests");
                    };
                    // Offloaded rendezvous: the CTS goes out when both the
                    // RTS has arrived and the receive was posted —
                    // independent of what the CPU happens to be doing.
                    let t = posted_at.max(d.arrival) + VDur::from_nanos(path.cts_handling_ns);
                    let _ = nbytes.min(*capacity); // truncation checked at data arrival
                    *state = RecvState::AwaitData { src: env.src };
                    self.inject_reliable(
                        env.src,
                        injection_channel(env.context, env.tag, ChannelClass::Cts),
                        t,
                        path.header_bytes,
                        &path.loggp,
                        Wire::Cts { sender_req },
                    )?;
                } else {
                    self.unexpected.push(Unexpected::Rts {
                        env,
                        key: env_key(&env),
                        arrival: d.arrival,
                        sender_req,
                        nbytes,
                    });
                    obs::gauge_set("pt2pt.unexpected_depth", self.unexpected.len() as i64);
                }
            }
            Wire::Cts { sender_req } => {
                let Some(ReqState::Send(st)) = self.requests.get_mut(&sender_req) else {
                    return Err(MpiError::ProtocolError("CTS for an unknown send request"));
                };
                if !matches!(st, SendState::AwaitCts { .. }) {
                    return Err(MpiError::ProtocolError("CTS for a send not awaiting one"));
                }
                let SendState::AwaitCts {
                    dst,
                    data,
                    env,
                    stamp,
                } = std::mem::replace(
                    st,
                    SendState::RndvDone {
                        complete_at: VTime::ZERO,
                    },
                )
                else {
                    unreachable!("state checked above");
                };
                // Inject the payload. With hardware-offloaded rendezvous
                // (RDMA read/write) the transfer starts when the CTS
                // arrives at the NIC, independent of the CPU.
                let path = *self.path_to(dst);
                let t = d.arrival + path.loggp.o_send();
                let wire = path.header_bytes + data.len();
                let nbytes = data.len();
                let arrival = self.inject_reliable(
                    dst,
                    injection_channel(env.context, env.tag, ChannelClass::RndvData),
                    t,
                    wire,
                    &path.loggp,
                    Wire::RndvData { env, data, stamp },
                )?;
                if obs::tracing_enabled() && arrival > t {
                    obs::span(
                        "xfer",
                        "fabric",
                        t,
                        arrival,
                        vec![
                            ("bytes", obs::ArgValue::U64(nbytes as u64)),
                            ("dst", obs::ArgValue::U64(dst as u64)),
                            ("flow", obs::ArgValue::U64(stamp.flow)),
                        ],
                    );
                }
                let Some(ReqState::Send(st)) = self.requests.get_mut(&sender_req) else {
                    unreachable!();
                };
                *st = SendState::RndvDone { complete_at: t };
            }
            Wire::RndvData { env, data, stamp } => {
                // Find the AwaitData receive matching this source/context.
                let idx = {
                    let _wm = wallprof::span(WpSub::Match);
                    obs::count("pt2pt.match.scans", 1);
                    obs::gauge_set("pt2pt.match.maxdepth", self.posted.len() as i64);
                    wallprof::add(WpCounter::MatchScans, 1);
                    let ek = env_key(&env);
                    let requests = &self.requests;
                    let mut full = 0u64;
                    let idx = self.posted.iter().position(|p| {
                        if ek & p.mask != p.key {
                            return false;
                        }
                        full += 1;
                        matches!(
                            requests.get(&p.id),
                            Some(ReqState::Recv {
                                spec,
                                state: RecvState::AwaitData { src },
                                ..
                            }) if *src == env.src && spec.matches(&env)
                        )
                    });
                    wallprof::add(WpCounter::MatchComparisons, full);
                    idx
                };
                let Some(pos) = idx else {
                    return Err(MpiError::ProtocolError(
                        "rendezvous data without a matching posted receive",
                    ));
                };
                let rid = self.posted[pos].id;
                let Some(ReqState::Recv { state, .. }) = self.requests.get_mut(&rid) else {
                    unreachable!();
                };
                *state = RecvState::Ready {
                    env,
                    arrival: d.arrival,
                    data,
                    was_unexpected: false,
                    stamp,
                };
                self.posted.remove(pos);
            }
            Wire::Ack { .. } => {
                // Only reachable without a plan (admission consumes acks),
                // i.e. never — no plan means no acks are ever emitted.
                return Err(MpiError::ProtocolError("ack frame without a fault plan"));
            }
            wire @ (Wire::Put { .. } | Wire::GetReq { .. } | Wire::Acc { .. }) => {
                // One-sided traffic: gate on the window's access epoch.
                // Frames from an epoch this rank has not opened yet are
                // parked and replayed (in virtual-arrival order) when the
                // epoch advances — real-time races between an origin that
                // left a fence early and a slower target cannot leak
                // next-epoch deposits into the current one.
                let (win, epoch) = match &wire {
                    Wire::Put { win, epoch, .. }
                    | Wire::GetReq { win, epoch, .. }
                    | Wire::Acc { win, epoch, .. } => (*win, *epoch),
                    _ => unreachable!("matched one-sided variants above"),
                };
                let Some(w) = self.windows.get_mut(&win) else {
                    return Err(MpiError::ProtocolError(
                        "one-sided frame for an unknown window",
                    ));
                };
                if epoch > w.epoch {
                    w.deferred.push(DeferredRma {
                        src: d.src,
                        arrival: d.arrival,
                        wire,
                    });
                    obs::count("rma.epoch.deferred", 1);
                } else {
                    self.apply_one_sided(d.src, d.arrival, wire)?;
                }
            }

            Wire::GetReply { req, data, stamp } => match self.requests.get_mut(&req) {
                Some(ReqState::RmaGet { state, .. }) if state.is_none() => {
                    if obs::tracing_enabled() {
                        obs::flow(
                            "msg",
                            "flow",
                            d.arrival,
                            obs::FlowDir::End,
                            stamp.flow,
                            vec![("src", obs::ArgValue::U64(d.src as u64))],
                        );
                    }
                    *state = Some((data, d.arrival));
                }
                _ => {
                    return Err(MpiError::ProtocolError(
                        "one-sided reply for an unknown get request",
                    ))
                }
            },
        }
        Ok(())
    }

    /// Find the oldest posted receive in `Posted` state matching `env`,
    /// returning its position in the posted list and its request id. The
    /// caller removes the entry once the request leaves `Posted`.
    fn find_posted(&mut self, env: &Envelope) -> Option<(usize, u64)> {
        let _wp = wallprof::span(WpSub::Match);
        // Scan count and queue depth are structural (one scan per accepted
        // message; depth = receives the app had outstanding), so they are
        // safe as pvars; comparison counts depend on the packed pre-filter
        // and stay wall-side only.
        obs::count("pt2pt.match.scans", 1);
        obs::gauge_set("pt2pt.match.maxdepth", self.posted.len() as i64);
        wallprof::add(WpCounter::MatchScans, 1);
        let ek = env_key(env);
        let requests = &self.requests;
        let mut full = 0u64;
        let idx = self.posted.iter().position(|p| {
            if ek & p.mask != p.key {
                return false;
            }
            full += 1;
            matches!(
                requests.get(&p.id),
                Some(ReqState::Recv {
                    spec,
                    state: RecvState::Posted { .. },
                    ..
                }) if spec.matches(env)
            )
        });
        wallprof::add(WpCounter::MatchComparisons, full);
        idx.map(|i| (i, self.posted[i].id))
    }

    fn is_complete(&self, req: Request) -> bool {
        match self.requests.get(&req.0) {
            Some(ReqState::Send(SendState::EagerDone { .. }))
            | Some(ReqState::Send(SendState::RndvDone { .. }))
            | Some(ReqState::Recv {
                state: RecvState::Ready { .. },
                ..
            })
            | Some(ReqState::RmaGet { state: Some(_), .. }) => true,
            _ => false,
        }
    }

    /// Whether `req` is complete (delivery-wise) without consuming it.
    /// Like MPI_Request_get_status; progression must be driven separately
    /// ([`Engine::poll`] / [`Engine::block_for_delivery`]).
    pub fn is_done(&self, req: Request) -> bool {
        self.is_complete(req)
    }

    /// Whether `req` is still live (posted and not yet consumed).
    pub fn has_request(&self, req: Request) -> bool {
        self.requests.contains_key(&req.0)
    }

    /// Virtual completion instant of a *complete* request: the send's
    /// local completion or the receive's payload arrival. `None` while the
    /// request is still in flight. Used to consume a set of completed
    /// requests in virtual-arrival order (deterministic and
    /// progression-optimal) instead of posting order.
    pub fn completion_time(&self, req: Request) -> Option<VTime> {
        match self.requests.get(&req.0) {
            Some(ReqState::Send(SendState::EagerDone { complete_at }))
            | Some(ReqState::Send(SendState::RndvDone { complete_at })) => Some(*complete_at),
            Some(ReqState::Recv {
                state: RecvState::Ready { arrival, .. },
                ..
            })
            | Some(ReqState::RmaGet {
                state: Some((_, arrival)),
                ..
            }) => Some(*arrival),
            _ => None,
        }
    }

    /// Drain every delivery the fabric has ready, without blocking and
    /// without touching the application clock (payload costs attach when
    /// a request is consumed).
    pub fn poll(&mut self) -> MpiResult<()> {
        self.check_self_crash()?;
        while let Some(d) = self.ep.try_recv() {
            self.handle(d)?;
        }
        Ok(())
    }

    /// Block for exactly one fabric delivery and process it. The crash
    /// watchdog applies, so a dead peer surfaces as [`MpiError::RankFailed`]
    /// instead of a hang. Callers loop on this to make blocking progress
    /// for request sets the single-request [`Engine::wait`] cannot express
    /// (waitall, collective schedules).
    pub fn block_for_delivery(&mut self) -> MpiResult<()> {
        self.check_self_crash()?;
        let d = self.recv_progress()?;
        self.handle(d)
    }

    /// Consume `req` if it is already complete (charging its consumption
    /// costs), without driving progression. `Ok(None)` while in flight.
    pub fn try_complete(&mut self, req: Request) -> MpiResult<Option<Completion>> {
        if !self.requests.contains_key(&req.0) {
            return Err(MpiError::InvalidRequest);
        }
        if self.is_complete(req) {
            self.finish(req).map(Some)
        } else {
            Ok(None)
        }
    }

    /// Run `f` with the engine's clock swapped for a detached timeline
    /// positioned at `t`; restores the rank clock afterwards and returns
    /// `f`'s result plus where the timeline advanced to. This is how
    /// self-timed (offloaded) progression reuses every engine primitive —
    /// sends, receives, completions — while charging their costs to the
    /// schedule's own timeline instead of the application clock.
    pub fn with_timeline<R>(&mut self, t: VTime, f: impl FnOnce(&mut Engine) -> R) -> (R, VTime) {
        let detached = self.clock.fork_at(t);
        let saved = std::mem::replace(&mut self.clock, detached);
        let out = f(self);
        let advanced = self.clock.now();
        self.clock = saved;
        (out, advanced)
    }

    /// Block until `req` completes; consume it and charge its costs.
    pub fn wait(&mut self, req: Request) -> MpiResult<Completion> {
        if !self.requests.contains_key(&req.0) {
            return Err(MpiError::InvalidRequest);
        }
        self.check_self_crash()?;
        let wait_begin = self.clock.now();
        while !self.is_complete(req) {
            let d = self.recv_progress()?;
            self.handle(d)?;
        }
        let c = self.finish(req)?;
        // Re-anchor the sampler on the application clock: pvars counted
        // by the caller after this wait bin to the post-wait instant.
        obs::telemetry_tick(self.clock.now());
        obs::span(
            "mpi.wait",
            "pt2pt",
            wait_begin,
            self.clock.now(),
            Vec::new(),
        );
        Ok(c)
    }

    /// Non-blocking completion check. Drains any pending deliveries, then
    /// returns the completion if `req` is done.
    pub fn test(&mut self, req: Request) -> MpiResult<Option<Completion>> {
        if !self.requests.contains_key(&req.0) {
            return Err(MpiError::InvalidRequest);
        }
        self.check_self_crash()?;
        while let Some(d) = self.ep.try_recv() {
            self.handle(d)?;
        }
        if self.is_complete(req) {
            self.finish(req).map(Some)
        } else {
            Ok(None)
        }
    }

    /// Consume a completed request: charge consumption costs, advance the
    /// clock, and return the payload.
    fn finish(&mut self, req: Request) -> MpiResult<Completion> {
        let state = self
            .requests
            .remove(&req.0)
            .ok_or(MpiError::InvalidRequest)?;
        match state {
            ReqState::Send(SendState::EagerDone { complete_at })
            | ReqState::Send(SendState::RndvDone { complete_at }) => {
                self.clock.merge(complete_at);
                Ok(Completion {
                    data: Box::new([]),
                    status: Status {
                        source: self.rank(),
                        tag: 0,
                        bytes: 0,
                    },
                })
            }
            ReqState::Send(SendState::AwaitCts { .. }) => {
                unreachable!("wait loop returned before send completion")
            }
            ReqState::Recv {
                capacity,
                state:
                    RecvState::Ready {
                        env,
                        arrival,
                        data,
                        was_unexpected,
                        stamp,
                    },
                ..
            } => {
                if data.len() > capacity {
                    return Err(MpiError::Truncated {
                        incoming: data.len(),
                        capacity,
                    });
                }
                let path = *self.path_to(env.src);
                self.clock.merge(arrival);
                self.clock.charge(path.loggp.o_recv());
                if data.len() <= path.eager_threshold {
                    // Eager copy-out of the bounce buffer.
                    self.clock.charge(path.recv_copy(data.len()));
                    if was_unexpected {
                        self.clock.charge(path.unexpected_extra(data.len()));
                    }
                }
                if obs::tracing_enabled() {
                    obs::instant(
                        "recv",
                        "pt2pt",
                        self.clock.now(),
                        vec![
                            ("src", obs::ArgValue::U64(env.src as u64)),
                            ("tag", obs::ArgValue::I64(env.tag as i64)),
                            ("bytes", obs::ArgValue::U64(data.len() as u64)),
                            ("unexpected", obs::ArgValue::Bool(was_unexpected)),
                            ("flow", obs::ArgValue::U64(stamp.flow)),
                            ("coll", obs::ArgValue::U64(stamp.coll)),
                        ],
                    );
                    obs::flow(
                        "msg",
                        "flow",
                        self.clock.now(),
                        obs::FlowDir::End,
                        stamp.flow,
                        vec![
                            ("src", obs::ArgValue::U64(env.src as u64)),
                            ("coll", obs::ArgValue::U64(stamp.coll)),
                        ],
                    );
                }
                Ok(Completion {
                    data,
                    status: Status {
                        source: env.src,
                        tag: env.tag,
                        bytes: 0, // filled by caller from data.len()
                    },
                })
            }
            ReqState::Recv { .. } => unreachable!("wait loop returned before recv completion"),
            ReqState::RmaGet {
                target,
                state: Some((data, arrival)),
            } => {
                // RDMA read completion: the reply was DMA'd into origin
                // memory, so consumption costs only the completion check —
                // no per-byte copy.
                let path = *self.path_to(target);
                self.clock.merge(arrival);
                self.clock.charge(path.loggp.o_recv());
                Ok(Completion {
                    data,
                    status: Status {
                        source: target,
                        tag: 0,
                        bytes: 0, // filled by caller from data.len()
                    },
                })
            }
            ReqState::RmaGet { state: None, .. } => {
                unreachable!("wait loop returned before get completion")
            }
        }
    }

    // ------------------------------------------------------------------
    // One-sided (RMA) operations
    // ------------------------------------------------------------------

    /// Path parameters towards `dst`. Facade layers read protocol
    /// thresholds and registration costs from here.
    #[inline]
    pub fn path_params(&self, dst: usize) -> &PathParams {
        self.path_to(dst)
    }

    /// Apply one one-sided frame to this rank's window state: deposit a
    /// put, combine an accumulate, or serve a get reply. `src`/`arrival`
    /// come from the frame's fabric delivery; timing is offloaded (no
    /// application clock charge — the target CPU is not involved).
    fn apply_one_sided(&mut self, src: usize, arrival: VTime, wire: Wire) -> MpiResult<()> {
        match wire {
            Wire::Put {
                win,
                epoch: _,
                offset,
                data,
                stamp,
            } => {
                // RDMA write: deposit into exposed window memory. No tag
                // matching, no posted receive.
                let Some(w) = self.windows.get_mut(&win) else {
                    return Err(MpiError::ProtocolError(
                        "one-sided put to an unknown window",
                    ));
                };
                let end = offset
                    .checked_add(data.len())
                    .filter(|&e| e <= w.mem.len())
                    .ok_or(MpiError::ProtocolError("one-sided put outside the window"))?;
                w.mem[offset..end].copy_from_slice(&data);
                obs::count("rma.put.applied", 1);
                if obs::tracing_enabled() {
                    obs::flow(
                        "msg",
                        "flow",
                        arrival,
                        obs::FlowDir::End,
                        stamp.flow,
                        vec![("src", obs::ArgValue::U64(src as u64))],
                    );
                }
            }
            Wire::GetReq {
                win,
                epoch: _,
                offset,
                nbytes,
                origin,
                req,
                stamp,
            } => {
                // RDMA read: the target NIC serves the reply out of window
                // memory, timed from the request's arrival — the target
                // application clock is never touched.
                let data: Box<[u8]> = {
                    let Some(w) = self.windows.get(&win) else {
                        return Err(MpiError::ProtocolError(
                            "one-sided get from an unknown window",
                        ));
                    };
                    let end = offset
                        .checked_add(nbytes)
                        .filter(|&e| e <= w.mem.len())
                        .ok_or(MpiError::ProtocolError("one-sided get outside the window"))?;
                    w.mem[offset..end].into()
                };
                wallprof::add(WpCounter::Allocs, 1); // reply payload capture above
                let path = *self.path_to(origin);
                let t = arrival + path.loggp.o_send();
                let wire_bytes = path.header_bytes + nbytes;
                let reply_arrival = self.inject_reliable(
                    origin,
                    one_sided_channel(win, OneSidedClass::Reply),
                    t,
                    wire_bytes,
                    &path.loggp,
                    Wire::GetReply { req, data, stamp },
                )?;
                if obs::tracing_enabled() && reply_arrival > t {
                    obs::span(
                        "xfer",
                        "fabric",
                        t,
                        reply_arrival,
                        vec![
                            ("bytes", obs::ArgValue::U64(nbytes as u64)),
                            ("dst", obs::ArgValue::U64(origin as u64)),
                            ("flow", obs::ArgValue::U64(stamp.flow)),
                        ],
                    );
                }
            }
            Wire::Acc {
                win,
                epoch: _,
                offset,
                op,
                data,
                stamp,
            } => {
                // Like Put, but combining instead of overwriting. Epochs
                // restrict concurrent accumulates to commutative
                // well-definedness (MPI semantics).
                let Some(w) = self.windows.get_mut(&win) else {
                    return Err(MpiError::ProtocolError(
                        "one-sided accumulate to an unknown window",
                    ));
                };
                let end = offset
                    .checked_add(data.len())
                    .filter(|&e| e <= w.mem.len())
                    .ok_or(MpiError::ProtocolError(
                        "one-sided accumulate outside the window",
                    ))?;
                crate::op::apply(op, &crate::datatype::INT, &mut w.mem[offset..end], &data)?;
                obs::count("rma.acc.applied", 1);
                if obs::tracing_enabled() {
                    obs::flow(
                        "msg",
                        "flow",
                        arrival,
                        obs::FlowDir::End,
                        stamp.flow,
                        vec![("src", obs::ArgValue::U64(src as u64))],
                    );
                }
            }
            _ => unreachable!("only one-sided frames reach apply_one_sided"),
        }
        Ok(())
    }

    /// Replay deferred one-sided frames for `win`: deposits (put /
    /// accumulate) stamped at or before `deposit_horizon`, plus reads
    /// stamped at or before the window's current epoch, in virtual-arrival
    /// order (source rank breaks ties) — a deterministic order however the
    /// frames raced in real time.
    fn run_deferred(&mut self, win: u32, deposit_horizon: u64) -> MpiResult<()> {
        let Some(w) = self.windows.get_mut(&win) else {
            return Err(MpiError::ProtocolError("replaying an unknown window"));
        };
        let read_horizon = w.epoch;
        let mut ready = Vec::new();
        let mut parked = Vec::new();
        for d in w.deferred.drain(..) {
            let horizon = if d.is_get() {
                read_horizon
            } else {
                deposit_horizon
            };
            if d.epoch() <= horizon {
                ready.push(d);
            } else {
                parked.push(d);
            }
        }
        w.deferred = parked;
        // Stable sort: same-source frames keep their per-link FIFO order.
        ready.sort_by(|a, b| {
            a.arrival
                .as_nanos()
                .partial_cmp(&b.arrival.as_nanos())
                .expect("virtual times are finite")
                .then(a.src.cmp(&b.src))
        });
        for d in ready {
            self.apply_one_sided(d.src, d.arrival, d.wire)?;
        }
        Ok(())
    }

    /// Close the window's current access epoch and open the next
    /// (the target half of MPI_Win_fence). Applies every deferred deposit
    /// stamped with the closing epoch or earlier — making exactly the
    /// closed epoch's one-sided traffic visible — and serves deferred
    /// reads up to the newly opened epoch (an origin that left the shared
    /// barrier early may already have issued next-epoch gets; parking them
    /// past this point would deadlock its epoch-closing flush against our
    /// fence).
    pub fn win_epoch_advance(&mut self, win: u32) -> MpiResult<()> {
        let Some(w) = self.windows.get_mut(&win) else {
            return Err(MpiError::ProtocolError("advancing an unknown window"));
        };
        let closing = w.epoch;
        w.epoch = closing + 1;
        self.run_deferred(win, closing)
    }

    /// Apply every deferred frame stamped with the current epoch or
    /// earlier, without advancing (the target half of MPI_Win_sync):
    /// passive-target deposits that raced ahead of this rank's last fence
    /// become visible at its next local synchronization.
    pub fn win_deliver_current(&mut self, win: u32) -> MpiResult<()> {
        let Some(w) = self.windows.get(&win) else {
            return Err(MpiError::ProtocolError("syncing an unknown window"));
        };
        let horizon = w.epoch;
        self.run_deferred(win, horizon)
    }

    /// Expose `size` bytes of zero-initialized window memory under `win`.
    /// The id must be agreed across ranks (the facade reuses the
    /// context-agreement collective); exposure is local — callers
    /// synchronize before targeting the window.
    pub fn win_create(&mut self, win: u32, size: usize) -> MpiResult<()> {
        let state = WinMem {
            mem: vec![0u8; size],
            epoch: 0,
            deferred: Vec::new(),
        };
        if self.windows.insert(win, state).is_some() {
            return Err(MpiError::ProtocolError("window id created twice"));
        }
        // Window memory is a one-time setup allocation, not per-message
        // work; charging it to `Allocs` would pollute the allocs/msg
        // metric every RMA benchmark is gated on.
        Ok(())
    }

    /// Tear down window `win`'s exposed memory.
    pub fn win_free(&mut self, win: u32) -> MpiResult<()> {
        self.windows
            .remove(&win)
            .map(|_| ())
            .ok_or(MpiError::ProtocolError("freeing an unknown window"))
    }

    /// Read this rank's exposed window memory (the NIC view the fabric
    /// deposits into). Zero virtual cost: local loads from pinned memory.
    pub fn win_mem(&self, win: u32) -> MpiResult<&[u8]> {
        self.windows
            .get(&win)
            .map(|w| &w.mem[..])
            .ok_or(MpiError::ProtocolError("reading an unknown window"))
    }

    /// Mutable access to this rank's exposed window memory.
    pub fn win_mem_mut(&mut self, win: u32) -> MpiResult<&mut [u8]> {
        self.windows
            .get_mut(&win)
            .map(|w| &mut w.mem[..])
            .ok_or(MpiError::ProtocolError("writing an unknown window"))
    }

    /// The access epoch this rank currently has open on `win` (stamped
    /// into every outbound one-sided frame so targets can gate
    /// application on their own epoch progress).
    fn win_epoch(&self, win: u32) -> MpiResult<u64> {
        self.windows
            .get(&win)
            .map(|w| w.epoch)
            .ok_or(MpiError::ProtocolError(
                "one-sided operation without the window",
            ))
    }

    /// One-sided put: RDMA-write `data` into `dst`'s window `win` at byte
    /// `offset`. Returns the deposit's virtual arrival at the target; the
    /// origin completes locally (fire-and-forget until the epoch closes).
    ///
    /// Payloads at or below the path's RMA eager threshold go through a
    /// pre-registered bounce buffer (per-byte copy charge); larger ones
    /// move zero-copy out of registered user memory — the facade charges
    /// registration via its cache before calling here.
    pub fn rma_put(
        &mut self,
        dst: usize,
        win: u32,
        offset: usize,
        data: &[u8],
    ) -> MpiResult<VTime> {
        self.check_rma_target(dst)?;
        let epoch = self.win_epoch(win)?;
        wallprof::add(WpCounter::Messages, 1);
        wallprof::add(WpCounter::Allocs, 1); // payload capture into the wire frame
        let path = *self.path_to(dst);
        if data.len() <= path.rma_eager_threshold {
            self.clock.charge(path.eager_copy(data.len()));
            obs::count("rma.put.eager", 1);
        } else {
            obs::count("rma.put.zcopy", 1);
        }
        self.clock.charge(path.loggp.o_send());
        let stamp = FlowStamp {
            flow: self.alloc_flow(),
            coll: 0,
        };
        let inject_at = self.clock.now();
        let wire_bytes = path.header_bytes + data.len();
        let arrival = self.inject_reliable(
            dst,
            one_sided_channel(win, OneSidedClass::Data),
            inject_at,
            wire_bytes,
            &path.loggp,
            Wire::Put {
                win,
                epoch,
                offset,
                data: data.into(),
                stamp,
            },
        )?;
        obs::count("rma.put.msgs", 1);
        obs::count("rma.put.bytes", data.len() as u64);
        if obs::tracing_enabled() {
            self.trace_rma("rma.put", dst, data.len(), stamp, inject_at, arrival);
        }
        Ok(arrival)
    }

    /// One-sided accumulate: combine `data` into `dst`'s window with `op`
    /// (32-bit integer lanes). Always staged through the bounce buffer —
    /// the operand must be packed for the target-side ALU pass — so the
    /// per-byte copy is charged regardless of size.
    pub fn rma_accumulate(
        &mut self,
        dst: usize,
        win: u32,
        offset: usize,
        op: ReduceOp,
        data: &[u8],
    ) -> MpiResult<VTime> {
        self.check_rma_target(dst)?;
        if data.len() % 4 != 0 {
            return Err(MpiError::ProtocolError(
                "accumulate payloads must be whole 32-bit lanes",
            ));
        }
        let epoch = self.win_epoch(win)?;
        wallprof::add(WpCounter::Messages, 1);
        wallprof::add(WpCounter::Allocs, 1); // payload capture into the wire frame
        let path = *self.path_to(dst);
        self.clock.charge(path.eager_copy(data.len()));
        self.clock.charge(path.loggp.o_send());
        let stamp = FlowStamp {
            flow: self.alloc_flow(),
            coll: 0,
        };
        let inject_at = self.clock.now();
        let wire_bytes = path.header_bytes + data.len();
        let arrival = self.inject_reliable(
            dst,
            one_sided_channel(win, OneSidedClass::Data),
            inject_at,
            wire_bytes,
            &path.loggp,
            Wire::Acc {
                win,
                epoch,
                offset,
                op,
                data: data.into(),
                stamp,
            },
        )?;
        obs::count("rma.acc.msgs", 1);
        obs::count("rma.acc.bytes", data.len() as u64);
        if obs::tracing_enabled() {
            self.trace_rma("rma.acc", dst, data.len(), stamp, inject_at, arrival);
        }
        Ok(arrival)
    }

    /// One-sided get: request `nbytes` from `dst`'s window; returns a
    /// request that completes when the RDMA-read reply lands in origin
    /// memory. Waited like any other request (epoch close does this).
    pub fn rma_get(
        &mut self,
        dst: usize,
        win: u32,
        offset: usize,
        nbytes: usize,
    ) -> MpiResult<Request> {
        self.check_rma_target(dst)?;
        let epoch = self.win_epoch(win)?;
        wallprof::add(WpCounter::Messages, 1);
        let path = *self.path_to(dst);
        self.clock.charge(path.loggp.o_send());
        let stamp = FlowStamp {
            flow: self.alloc_flow(),
            coll: 0,
        };
        let inject_at = self.clock.now();
        let req = self.alloc_req(ReqState::RmaGet {
            target: dst,
            state: None,
        });
        let Request(id) = req;
        if let Err(e) = self.inject_reliable(
            dst,
            one_sided_channel(win, OneSidedClass::Data),
            inject_at,
            path.header_bytes,
            &path.loggp,
            Wire::GetReq {
                win,
                epoch,
                offset,
                nbytes,
                origin: self.rank(),
                req: id,
                stamp,
            },
        ) {
            self.requests.remove(&id);
            return Err(e);
        }
        obs::count("rma.get.msgs", 1);
        obs::count("rma.get.bytes", nbytes as u64);
        if obs::tracing_enabled() {
            self.trace_rma("rma.get", dst, nbytes, stamp, inject_at, inject_at);
        }
        Ok(req)
    }

    /// Passive-target control round trip (lock acquire/release): one
    /// NIC-level atomic to `target`, charged entirely at the origin. The
    /// target CPU is never involved, so no wire message is exchanged and
    /// the exchange cannot deadlock against program order. Lock
    /// *contention* is deliberately not modeled (see DESIGN.md).
    pub fn rma_control_roundtrip(&mut self, target: usize) -> MpiResult<()> {
        self.check_rma_target(target)?;
        let path = *self.path_to(target);
        self.clock.charge(path.loggp.o_send());
        let reply_at =
            self.clock.now() + VDur::from_nanos(2.0 * path.loggp.latency_ns + path.cts_handling_ns);
        self.clock.merge(reply_at);
        self.clock.charge(path.loggp.o_recv());
        Ok(())
    }

    fn check_rma_target(&self, dst: usize) -> MpiResult<()> {
        if dst >= self.world_size() {
            return Err(MpiError::InvalidRank {
                rank: dst as i32,
                comm_size: self.world_size(),
            });
        }
        self.check_self_crash()
    }

    /// Trace one one-sided origination: instant + flow-begin + (when the
    /// wire took time) the origin-side fabric span. Reads clocks only.
    fn trace_rma(
        &self,
        name: &'static str,
        dst: usize,
        bytes: usize,
        stamp: FlowStamp,
        inject_at: VTime,
        arrival: VTime,
    ) {
        obs::instant(
            name,
            "rma",
            inject_at,
            vec![
                ("dst", obs::ArgValue::U64(dst as u64)),
                ("bytes", obs::ArgValue::U64(bytes as u64)),
                ("flow", obs::ArgValue::U64(stamp.flow)),
            ],
        );
        obs::flow(
            "msg",
            "flow",
            inject_at,
            obs::FlowDir::Begin,
            stamp.flow,
            vec![
                ("bytes", obs::ArgValue::U64(bytes as u64)),
                ("dst", obs::ArgValue::U64(dst as u64)),
            ],
        );
        if arrival > inject_at {
            obs::span(
                "xfer",
                "fabric",
                inject_at,
                arrival,
                vec![
                    ("bytes", obs::ArgValue::U64(bytes as u64)),
                    ("dst", obs::ArgValue::U64(dst as u64)),
                    ("flow", obs::ArgValue::U64(stamp.flow)),
                ],
            );
        }
    }

    // ------------------------------------------------------------------
    // Blocking conveniences
    // ------------------------------------------------------------------

    /// Blocking send.
    pub fn send_bytes(&mut self, data: &[u8], dst: usize, tag: i32, context: u32) -> MpiResult<()> {
        let r = self.isend_bytes(data, dst, tag, context)?;
        self.wait(r).map(|_| ())
    }

    /// Blocking receive; returns the payload and its status.
    pub fn recv_bytes(
        &mut self,
        capacity: usize,
        src: i32,
        tag: i32,
        context: u32,
    ) -> MpiResult<(Box<[u8]>, Status)> {
        let r = self.irecv_bytes(capacity, src, tag, context)?;
        let c = self.wait(r)?;
        let bytes = c.data.len();
        Ok((c.data, Status { bytes, ..c.status }))
    }

    /// Fabric-level injection counters (for tests/ablations).
    pub fn fabric_stats(&self) -> simfabric::SendStats {
        self.ep.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use simfabric::{run_cluster, Topology};

    fn run2<R: Send>(f: impl Fn(&mut Engine) -> R + Sync) -> Vec<R> {
        run_cluster(Topology::new(2, 1), |ep| {
            let mut e = Engine::new(ep, Profile::mvapich2());
            f(&mut e)
        })
    }

    #[test]
    fn eager_roundtrip() {
        let data: Vec<u8> = (0..64).collect();
        let expect = data.clone();
        run2(move |e| {
            if e.rank() == 0 {
                e.send_bytes(&data, 1, 7, 0).unwrap();
            } else {
                let (got, st) = e.recv_bytes(1024, 0, 7, 0).unwrap();
                assert_eq!(&got[..], &expect[..]);
                assert_eq!(st.source, 0);
                assert_eq!(st.tag, 7);
                assert_eq!(st.bytes, 64);
                assert!(e.now() > VTime::ZERO);
            }
        });
    }

    #[test]
    fn rendezvous_roundtrip() {
        // Force rendezvous by exceeding every eager threshold.
        let n = 1 << 20;
        run2(move |e| {
            if e.rank() == 0 {
                let data = vec![0xA5u8; n];
                e.send_bytes(&data, 1, 0, 0).unwrap();
            } else {
                let (got, st) = e.recv_bytes(n, 0, 0, 0).unwrap();
                assert_eq!(got.len(), n);
                assert!(got.iter().all(|&b| b == 0xA5));
                assert_eq!(st.bytes, n);
            }
        });
    }

    #[test]
    fn unexpected_message_is_matched_later() {
        run2(|e| {
            if e.rank() == 0 {
                e.send_bytes(&[1, 2, 3], 1, 5, 0).unwrap();
                e.send_bytes(&[9], 1, 6, 0).unwrap();
            } else {
                // Receive the *second* message first: the first lands in
                // the unexpected queue, then is matched by the later recv.
                let (b, _) = e.recv_bytes(16, 0, 6, 0).unwrap();
                assert_eq!(&b[..], &[9]);
                let (a, _) = e.recv_bytes(16, 0, 5, 0).unwrap();
                assert_eq!(&a[..], &[1, 2, 3]);
            }
        });
    }

    #[test]
    fn tag_and_source_wildcards() {
        run2(|e| {
            if e.rank() == 0 {
                e.send_bytes(&[42], 1, 17, 0).unwrap();
            } else {
                let (b, st) = e.recv_bytes(8, ANY_SOURCE, ANY_TAG, 0).unwrap();
                assert_eq!(&b[..], &[42]);
                assert_eq!(st.source, 0);
                assert_eq!(st.tag, 17);
            }
        });
    }

    #[test]
    fn non_overtaking_same_tag() {
        run2(|e| {
            if e.rank() == 0 {
                for i in 0..10u8 {
                    e.send_bytes(&[i], 1, 3, 0).unwrap();
                }
            } else {
                for i in 0..10u8 {
                    let (b, _) = e.recv_bytes(8, 0, 3, 0).unwrap();
                    assert_eq!(b[0], i, "messages must not overtake");
                }
            }
        });
    }

    #[test]
    fn truncation_error_eager() {
        run2(|e| {
            if e.rank() == 0 {
                e.send_bytes(&[0u8; 100], 1, 0, 0).unwrap();
            } else {
                let err = e.recv_bytes(10, 0, 0, 0).unwrap_err();
                assert!(matches!(
                    err,
                    MpiError::Truncated {
                        incoming: 100,
                        capacity: 10
                    }
                ));
            }
        });
    }

    #[test]
    fn nonblocking_overlap() {
        run2(|e| {
            if e.rank() == 0 {
                let r1 = e.isend_bytes(&[1], 1, 1, 0).unwrap();
                let r2 = e.isend_bytes(&[2], 1, 2, 0).unwrap();
                e.wait(r1).unwrap();
                e.wait(r2).unwrap();
            } else {
                let r2 = e.irecv_bytes(8, 0, 2, 0).unwrap();
                let r1 = e.irecv_bytes(8, 0, 1, 0).unwrap();
                let c2 = e.wait(r2).unwrap();
                let c1 = e.wait(r1).unwrap();
                assert_eq!(&c1.data[..], &[1]);
                assert_eq!(&c2.data[..], &[2]);
            }
        });
    }

    #[test]
    fn test_polls_without_blocking() {
        run2(|e| {
            if e.rank() == 0 {
                // Wait until rank 1 signals, then send.
                let (_, _) = e.recv_bytes(1, 1, 9, 0).unwrap();
                e.send_bytes(&[7], 1, 0, 0).unwrap();
            } else {
                let r = e.irecv_bytes(8, 0, 0, 0).unwrap();
                assert!(e.test(r).unwrap().is_none(), "nothing sent yet");
                e.send_bytes(&[], 0, 9, 0).unwrap();
                // Spin on test until completion.
                let c = loop {
                    if let Some(c) = e.test(r).unwrap() {
                        break c;
                    }
                    std::thread::yield_now();
                };
                assert_eq!(&c.data[..], &[7]);
            }
        });
    }

    #[test]
    fn wait_on_consumed_request_errors() {
        run2(|e| {
            if e.rank() == 0 {
                let r = e.isend_bytes(&[1], 1, 0, 0).unwrap();
                e.wait(r).unwrap();
                assert!(matches!(e.wait(r), Err(MpiError::InvalidRequest)));
            } else {
                let _ = e.recv_bytes(8, 0, 0, 0).unwrap();
            }
        });
    }

    #[test]
    fn invalid_rank_rejected() {
        run2(|e| {
            assert!(matches!(
                e.isend_bytes(&[1], 99, 0, 0),
                Err(MpiError::InvalidRank { .. })
            ));
        });
    }

    #[test]
    fn rendezvous_sender_blocks_until_recv_posted() {
        // Timing property: sender completion time must be at least one
        // round trip after the receiver posts.
        let n = 1 << 20;
        let times = run2(move |e| {
            if e.rank() == 0 {
                let data = vec![1u8; n];
                e.send_bytes(&data, 1, 0, 0).unwrap();
                e.now().as_nanos()
            } else {
                // Delay posting the receive by 1 ms of virtual compute.
                e.clock_mut().charge(VDur::from_micros(1000.0));
                let _ = e.recv_bytes(n, 0, 0, 0).unwrap();
                e.now().as_nanos()
            }
        });
        assert!(
            times[0] > 1_000_000.0,
            "sender should not complete before receiver posted (got {}ns)",
            times[0]
        );
    }

    #[test]
    fn eager_sender_does_not_block() {
        let times = run2(|e| {
            if e.rank() == 0 {
                e.send_bytes(&[0u8; 16], 1, 0, 0).unwrap();
                e.now().as_nanos()
            } else {
                e.clock_mut().charge(VDur::from_micros(1000.0));
                let _ = e.recv_bytes(16, 0, 0, 0).unwrap();
                e.now().as_nanos()
            }
        });
        assert!(
            times[0] < 10_000.0,
            "eager sender must complete locally (got {}ns)",
            times[0]
        );
    }

    #[test]
    fn contexts_isolate_traffic() {
        run2(|e| {
            if e.rank() == 0 {
                e.send_bytes(&[1], 1, 0, 42).unwrap();
                e.send_bytes(&[2], 1, 0, 43).unwrap();
            } else {
                // Same tag, different contexts: matching must respect the
                // context even when posted in reverse order.
                let (b43, _) = e.recv_bytes(8, 0, 0, 43).unwrap();
                let (b42, _) = e.recv_bytes(8, 0, 0, 42).unwrap();
                assert_eq!(&b43[..], &[2]);
                assert_eq!(&b42[..], &[1]);
            }
        });
    }

    #[test]
    fn stray_cts_is_an_error_not_an_abort() {
        // A CTS naming a request id that was never allocated used to
        // abort the process; it must surface as a ProtocolError instead.
        run2(|e| {
            if e.rank() == 0 {
                let path = *e.path_to(1);
                let t = e.now();
                e.ep.send(
                    1,
                    t,
                    path.header_bytes,
                    &path.loggp,
                    Frame {
                        seq: 0,
                        checksum: 0,
                        wire: Arc::new(Wire::Cts { sender_req: 999 }),
                    },
                )
                .unwrap();
            } else {
                let r = e.irecv_bytes(8, 0, 0, 0).unwrap();
                let err = e.wait(r).unwrap_err();
                assert!(matches!(err, MpiError::ProtocolError(_)), "{err:?}");
            }
        });
    }

    #[test]
    fn duplicate_cts_for_a_completed_send_is_an_error() {
        // A CTS that names a live send request in the wrong state (here:
        // an eager send, already complete) is a protocol violation, not a
        // panic.
        run2(|e| {
            if e.rank() == 0 {
                // Eager send allocates request id 1 and completes without
                // awaiting a CTS; keep the request live (not waited).
                let _r = e.isend_bytes(&[1, 2, 3], 1, 0, 0).unwrap();
                let r2 = e.irecv_bytes(8, 1, 1, 0).unwrap();
                let err = e.wait(r2).unwrap_err();
                assert!(matches!(err, MpiError::ProtocolError(_)), "{err:?}");
            } else {
                let (b, _) = e.recv_bytes(8, 0, 0, 0).unwrap();
                assert_eq!(&b[..], &[1, 2, 3]);
                // Forge a CTS naming the sender's eager request.
                let path = *e.path_to(0);
                let t = e.now();
                e.ep.send(
                    0,
                    t,
                    path.header_bytes,
                    &path.loggp,
                    Frame {
                        seq: 0,
                        checksum: 0,
                        wire: Arc::new(Wire::Cts { sender_req: 1 }),
                    },
                )
                .unwrap();
            }
        });
    }

    #[test]
    fn ping_pong_latency_is_symmetric_and_deterministic() {
        let run = || {
            run2(|e| {
                let iters = 10;
                if e.rank() == 0 {
                    let t0 = e.now();
                    for _ in 0..iters {
                        e.send_bytes(&[0u8; 8], 1, 0, 0).unwrap();
                        let _ = e.recv_bytes(8, 1, 0, 0).unwrap();
                    }
                    (e.now() - t0).as_nanos() / iters as f64
                } else {
                    for _ in 0..iters {
                        let _ = e.recv_bytes(8, 0, 0, 0).unwrap();
                        e.send_bytes(&[0u8; 8], 0, 0, 0).unwrap();
                    }
                    0.0
                }
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "virtual timing must be deterministic");
        assert!(a[0] > 0.0);
    }
}
