//! Rooted data-movement collectives: gather, scatter and their vectored
//! variants.
//!
//! Gather and scatter use binomial trees (subtree aggregation / recursive
//! splitting). The vectored variants use the linear root-centric
//! algorithm, like most production MPI implementations: irregular block
//! sizes defeat tree aggregation.

use super::{cc, check_root, cisend, crecv, csend, tags};
use crate::comm::CommHandle;
use crate::datatype::Datatype;
use crate::error::{MpiError, MpiResult};
use crate::mpi::Mpi;
use vtime::VDur;

fn pack_charged(mpi: &mut Mpi, buf: &[u8], count: usize, dt: &Datatype) -> MpiResult<Vec<u8>> {
    let p = dt.pack(buf, count)?;
    if !dt.is_contiguous() {
        let per_byte = mpi.profile().pack_per_byte_ns;
        mpi.clock_mut()
            .charge(VDur::from_nanos(p.len() as f64 * per_byte));
    }
    Ok(p)
}

fn unpack_at(
    mpi: &mut Mpi,
    data: &[u8],
    count: usize,
    dt: &Datatype,
    out: &mut [u8],
    elem_offset: usize,
) -> MpiResult<()> {
    let start = elem_offset * dt.extent();
    let end = start + dt.span(count);
    if out.len() < end {
        return Err(MpiError::BufferTooSmall {
            needed: end,
            available: out.len(),
        });
    }
    dt.unpack(data, count, &mut out[start..end])?;
    if !dt.is_contiguous() {
        let per_byte = mpi.profile().pack_per_byte_ns;
        mpi.clock_mut()
            .charge(VDur::from_nanos(data.len() as f64 * per_byte));
    }
    Ok(())
}

/// MPI_Gather: binomial subtree aggregation.
pub fn gather(
    mpi: &mut Mpi,
    send: &[u8],
    recv: Option<&mut [u8]>,
    count: usize,
    dt: &Datatype,
    root: usize,
    comm: CommHandle,
) -> MpiResult<()> {
    let c = cc(mpi, comm)?;
    check_root(&c, root)?;
    let p = c.size();
    let bs = dt.size() * count; // packed block size per rank
    let vrank = (c.me + p - root) % p;
    let real = |v: usize| (v + root) % p;

    // Subtree buffer in vrank order: block for vrank v at (v - vrank)*bs.
    let mut vbuf = pack_charged(mpi, send, count, dt)?;

    let mut mask = 1usize;
    let mut subtree = 1usize; // blocks currently held: [vrank, vrank+subtree)
    while mask < p {
        if vrank & mask == 0 {
            let child = vrank + mask;
            if child < p {
                let child_blocks = mask.min(p - child);
                let got = crecv(mpi, &c, child_blocks * bs, real(child), tags::GATHER)?;
                vbuf.extend_from_slice(&got);
                subtree += child_blocks;
            }
        } else {
            csend(mpi, &c, &vbuf, real(vrank - mask), tags::GATHER)?;
            break;
        }
        mask <<= 1;
    }
    let _ = subtree;

    if c.me == root {
        let out = recv.ok_or(MpiError::BufferTooSmall {
            needed: p * bs,
            available: 0,
        })?;
        // vbuf holds blocks for vranks 0..p; map vrank v → comm rank.
        for v in 0..p {
            let r = real(v);
            unpack_at(mpi, &vbuf[v * bs..(v + 1) * bs], count, dt, out, r * count)?;
        }
    }
    Ok(())
}

/// MPI_Gatherv: linear algorithm; `recvcounts`/`displs` are in elements,
/// significant only at the root.
#[allow(clippy::too_many_arguments)]
pub fn gatherv(
    mpi: &mut Mpi,
    send: &[u8],
    sendcount: usize,
    recv: Option<&mut [u8]>,
    recvcounts: &[i32],
    displs: &[i32],
    dt: &Datatype,
    root: usize,
    comm: CommHandle,
) -> MpiResult<()> {
    let c = cc(mpi, comm)?;
    check_root(&c, root)?;
    let p = c.size();

    if c.me != root {
        let payload = pack_charged(mpi, send, sendcount, dt)?;
        return csend(mpi, &c, &payload, root, tags::GATHER + 1);
    }

    if recvcounts.len() != p || displs.len() != p {
        return Err(MpiError::CollectiveMismatch(
            "gatherv counts/displs must have one entry per rank",
        ));
    }
    let out = recv.ok_or(MpiError::BufferTooSmall {
        needed: 0,
        available: 0,
    })?;
    for r in 0..p {
        let cnt = recvcounts[r];
        if cnt < 0 || displs[r] < 0 {
            return Err(MpiError::InvalidCount { count: cnt });
        }
        let cnt = cnt as usize;
        let block = if r == root {
            pack_charged(mpi, send, sendcount.min(cnt), dt)?.into_boxed_slice()
        } else {
            crecv(mpi, &c, cnt * dt.size(), r, tags::GATHER + 1)?
        };
        unpack_at(mpi, &block, cnt, dt, out, displs[r] as usize)?;
    }
    Ok(())
}

/// MPI_Scatter: binomial recursive splitting (inverse of gather).
pub fn scatter(
    mpi: &mut Mpi,
    send: Option<&[u8]>,
    recv: &mut [u8],
    count: usize,
    dt: &Datatype,
    root: usize,
    comm: CommHandle,
) -> MpiResult<()> {
    let c = cc(mpi, comm)?;
    check_root(&c, root)?;
    let p = c.size();
    let bs = dt.size() * count;
    let vrank = (c.me + p - root) % p;
    let real = |v: usize| (v + root) % p;

    // vbuf holds packed blocks for vranks [vrank, vrank+owned).
    let mut vbuf: Vec<u8>;
    let mut owned: usize;
    if c.me == root {
        let src = send.ok_or(MpiError::BufferTooSmall {
            needed: p * bs,
            available: 0,
        })?;
        // Pack per-rank blocks into vrank order.
        vbuf = Vec::with_capacity(p * bs);
        for v in 0..p {
            let r = real(v);
            let start = r * count * dt.extent();
            let end = start + dt.span(count);
            if src.len() < end {
                return Err(MpiError::BufferTooSmall {
                    needed: end,
                    available: src.len(),
                });
            }
            let packed = pack_charged(mpi, &src[start..], count, dt)?;
            vbuf.extend_from_slice(&packed);
        }
        owned = p;
    } else {
        // Receive phase of the binomial tree.
        let mut mask = 1usize;
        let mut got_data: Option<Box<[u8]>> = None;
        let mut got_blocks = 0usize;
        while mask < p {
            if vrank & mask != 0 {
                let parent = vrank - mask;
                got_blocks = mask.min(p - vrank);
                let got = crecv(mpi, &c, got_blocks * bs, real(parent), tags::SCATTER)?;
                got_data = Some(got);
                break;
            }
            mask <<= 1;
        }
        vbuf = got_data
            .expect("non-root always receives in scatter")
            .into_vec();
        owned = got_blocks;
    }

    // Send phase: peel the upper halves off to children.
    let mut mask = {
        // The mask at which this rank received (or 2^⌈log₂p⌉ for root).
        if vrank == 0 {
            p.next_power_of_two()
        } else {
            vrank & vrank.wrapping_neg() // lowest set bit
        }
    } >> 1;
    while mask > 0 {
        if vrank + mask < vrank + owned {
            let child = vrank + mask;
            let child_blocks = owned - mask;
            let frag = vbuf[mask * bs..(mask + child_blocks) * bs].to_vec();
            csend(mpi, &c, &frag, real(child), tags::SCATTER)?;
            vbuf.truncate(mask * bs);
            owned = mask;
        }
        mask >>= 1;
    }

    unpack_at(mpi, &vbuf[..bs.min(vbuf.len())], count, dt, recv, 0)?;
    Ok(())
}

/// MPI_Scatterv: linear algorithm from the root.
#[allow(clippy::too_many_arguments)]
pub fn scatterv(
    mpi: &mut Mpi,
    send: Option<&[u8]>,
    sendcounts: &[i32],
    displs: &[i32],
    recv: &mut [u8],
    recvcount: usize,
    dt: &Datatype,
    root: usize,
    comm: CommHandle,
) -> MpiResult<()> {
    let c = cc(mpi, comm)?;
    check_root(&c, root)?;
    let p = c.size();

    if c.me != root {
        let got = crecv(mpi, &c, recvcount * dt.size(), root, tags::SCATTER + 1)?;
        let n = got.len() / dt.size().max(1);
        return unpack_at(mpi, &got, n, dt, recv, 0);
    }

    if sendcounts.len() != p || displs.len() != p {
        return Err(MpiError::CollectiveMismatch(
            "scatterv counts/displs must have one entry per rank",
        ));
    }
    let src = send.ok_or(MpiError::BufferTooSmall {
        needed: 0,
        available: 0,
    })?;
    let mut reqs = Vec::new();
    let mut own: Option<Vec<u8>> = None;
    for r in 0..p {
        let cnt = sendcounts[r];
        if cnt < 0 || displs[r] < 0 {
            return Err(MpiError::InvalidCount { count: cnt });
        }
        let cnt = cnt as usize;
        let start = displs[r] as usize * dt.extent();
        if src.len() < start + dt.span(cnt) {
            return Err(MpiError::BufferTooSmall {
                needed: start + dt.span(cnt),
                available: src.len(),
            });
        }
        let packed = pack_charged(mpi, &src[start..], cnt, dt)?;
        if r == root {
            own = Some(packed);
        } else {
            reqs.push(cisend(mpi, &c, &packed, r, tags::SCATTER + 1)?);
        }
    }
    if let Some(mine) = own {
        let n = mine.len() / dt.size().max(1);
        unpack_at(mpi, &mine, n.min(recvcount), dt, recv, 0)?;
    }
    for r in reqs {
        mpi.engine_mut().wait(r)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::super::mpi::run_mpi;
    use crate::datatype::INT;
    use crate::profile::Profile;
    use simfabric::Topology;

    fn ints(v: &[i32]) -> Vec<u8> {
        v.iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    fn to_ints(b: &[u8]) -> Vec<i32> {
        b.chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn gather_collects_in_rank_order() {
        for p in [1usize, 2, 3, 5, 8] {
            for root in [0, p - 1] {
                let res = run_mpi(Topology::new(1, p), Profile::mvapich2(), move |mpi| {
                    let w = mpi.world();
                    let me = mpi.rank(w).unwrap() as i32;
                    let send = ints(&[me * 10, me * 10 + 1]);
                    let mut recv = vec![0u8; 8 * p];
                    let out = (me as usize == root).then_some(&mut recv[..]);
                    mpi.gather(&send, out, 2, &INT, root, w).unwrap();
                    (me as usize == root).then(|| to_ints(&recv))
                });
                let got = res[root].clone().unwrap();
                let want: Vec<i32> = (0..p as i32).flat_map(|r| [r * 10, r * 10 + 1]).collect();
                assert_eq!(got, want, "p={p} root={root}");
            }
        }
    }

    #[test]
    fn scatter_distributes_in_rank_order() {
        for p in [1usize, 2, 4, 6] {
            for root in [0, p / 2] {
                let res = run_mpi(Topology::new(1, p), Profile::openmpi_ucx(), move |mpi| {
                    let w = mpi.world();
                    let me = mpi.rank(w).unwrap();
                    let all: Vec<i32> = (0..2 * p as i32).collect();
                    let send = ints(&all);
                    let mut recv = vec![0u8; 8];
                    let src = (me == root).then_some(&send[..]);
                    mpi.scatter(src, &mut recv, 2, &INT, root, w).unwrap();
                    to_ints(&recv)
                });
                for (r, got) in res.iter().enumerate() {
                    assert_eq!(got, &[2 * r as i32, 2 * r as i32 + 1], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn gatherv_with_uneven_blocks() {
        let p = 4;
        let res = run_mpi(Topology::new(2, 2), Profile::mvapich2(), move |mpi| {
            let w = mpi.world();
            let me = mpi.rank(w).unwrap();
            // Rank r contributes r+1 ints.
            let mine: Vec<i32> = (0..=me as i32).map(|i| me as i32 * 100 + i).collect();
            let send = ints(&mine);
            let recvcounts = [1, 2, 3, 4];
            let displs = [0, 1, 3, 6];
            let mut recv = vec![0u8; 4 * 10];
            let out = (me == 0).then_some(&mut recv[..]);
            mpi.gatherv(
                &send,
                me as i32 + 1,
                out,
                &recvcounts.map(|x| x as i32),
                &displs.map(|x| x as i32),
                &INT,
                0,
                w,
            )
            .unwrap();
            (me == 0).then(|| to_ints(&recv))
        });
        let got = res[0].clone().unwrap();
        assert_eq!(got, vec![0, 100, 101, 200, 201, 202, 300, 301, 302, 303]);
        let _ = p;
    }

    #[test]
    fn scatterv_with_uneven_blocks() {
        let res = run_mpi(Topology::new(1, 3), Profile::openmpi_ucx(), |mpi| {
            let w = mpi.world();
            let me = mpi.rank(w).unwrap();
            let all: Vec<i32> = (0..6).collect();
            let send = ints(&all);
            let sendcounts = [3i32, 1, 2];
            let displs = [0i32, 3, 4];
            let want = sendcounts[me] as usize;
            let mut recv = vec![0u8; 4 * want];
            let src = (me == 0).then_some(&send[..]);
            mpi.scatterv(
                src,
                &sendcounts,
                &displs,
                &mut recv,
                want as i32,
                &INT,
                0,
                w,
            )
            .unwrap();
            to_ints(&recv)
        });
        assert_eq!(res[0], vec![0, 1, 2]);
        assert_eq!(res[1], vec![3]);
        assert_eq!(res[2], vec![4, 5]);
    }
}
