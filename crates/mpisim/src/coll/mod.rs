//! Blocking collective operations.
//!
//! Every collective is implemented as a real message-passing algorithm
//! over the point-to-point engine (no magic "collective primitive"), so
//! the latency differences between library profiles emerge from algorithm
//! choice and tuning — exactly the paper's explanation for Figures 14–17:
//!
//! * **MVAPICH2 profile** (`hierarchical = true`): two-level algorithms —
//!   a network stage among node leaders plus shared-memory stages within
//!   each node — with binomial/scatter-allgather/Rabenseifner inner
//!   algorithms by message size.
//! * **Open MPI profile** (`hierarchical = false`): flat, topology-unaware
//!   binomial/recursive-doubling/pipeline algorithms with heavier
//!   per-call and per-hop software overheads.
//!
//! All algorithms operate on *packed* byte payloads; entry points pack and
//! unpack derived datatypes at the edges (charging the native pack engine).

mod allgather;
mod alltoall;
mod bcast;
mod gather;
mod reduce;
pub(crate) mod sched;

pub use allgather::{allgather, allgatherv};
pub use alltoall::{alltoall, alltoallv};
pub use bcast::bcast;
pub use gather::{gather, gatherv, scatter, scatterv};
pub use reduce::{allreduce, reduce};

use vtime::VDur;

use crate::comm::CommHandle;
use crate::engine::ANY_TAG;
use crate::error::{MpiError, MpiResult};
use crate::mpi::Mpi;

/// Tag bases for internal collective traffic (above the user tag space;
/// collective traffic additionally travels in its own context stream).
pub(crate) mod tags {
    use crate::engine::TAG_UB;
    pub const BARRIER: i32 = TAG_UB + 0x10;
    pub const BCAST: i32 = TAG_UB + 0x20;
    pub const REDUCE: i32 = TAG_UB + 0x30;
    pub const ALLREDUCE: i32 = TAG_UB + 0x40;
    pub const GATHER: i32 = TAG_UB + 0x50;
    pub const SCATTER: i32 = TAG_UB + 0x60;
    pub const ALLGATHER: i32 = TAG_UB + 0x70;
    pub const ALLTOALL: i32 = TAG_UB + 0x80;
}

/// Snapshot of the communicator/profile state one collective call needs.
#[derive(Debug, Clone)]
pub(crate) struct Cc {
    /// Collective context stream of the communicator.
    pub ctx: u32,
    /// World ranks in communicator order.
    pub ranks: Vec<usize>,
    /// Caller's communicator rank.
    pub me: usize,
    /// Per-internal-message software overhead (profile tuning).
    pub perhop: VDur,
    /// Per-call software overhead (profile tuning).
    pub percall: VDur,
}

impl Cc {
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    pub fn world(&self, comm_rank: usize) -> usize {
        self.ranks[comm_rank]
    }
}

/// Build the collective context for `comm` and charge the per-call
/// overhead.
pub(crate) fn cc(mpi: &mut Mpi, comm: CommHandle) -> MpiResult<Cc> {
    // Entering any blocking collective is a library entry: let
    // outstanding non-blocking schedules progress first.
    mpi.nb_progress()?;
    let (ctx, ranks, me) = {
        let info = mpi.info(comm)?;
        (
            info.coll_context(),
            info.group.ranks().to_vec(),
            info.my_rank,
        )
    };
    let tuning = mpi.profile().coll;
    let c = Cc {
        ctx,
        ranks,
        me,
        perhop: VDur::from_nanos(tuning.perhop_ns),
        percall: VDur::from_nanos(tuning.percall_ns),
    };
    mpi.clock_mut().charge(c.percall);
    // Collectives are globally ordered per communicator, so every member
    // derives the same instance id; internal pt2pt traffic is stamped with
    // it for cross-rank causal analysis.
    mpi.engine_mut().begin_collective(ctx);
    Ok(c)
}

/// Whether the communicator spans more than one node.
pub(crate) fn spans_nodes(mpi: &Mpi, cc: &Cc) -> bool {
    let topo = *mpi.topology();
    let first = topo.node_of(cc.ranks[0]);
    cc.ranks.iter().any(|&r| topo.node_of(r) != first)
}

/// Internal blocking send of a collective fragment.
pub(crate) fn csend(mpi: &mut Mpi, cc: &Cc, data: &[u8], dst: usize, tag: i32) -> MpiResult<()> {
    mpi.clock_mut().charge(cc.perhop);
    let world = cc.world(dst);
    mpi.engine_mut().send_bytes(data, world, tag, cc.ctx)
}

/// Internal non-blocking send of a collective fragment.
pub(crate) fn cisend(
    mpi: &mut Mpi,
    cc: &Cc,
    data: &[u8],
    dst: usize,
    tag: i32,
) -> MpiResult<crate::engine::Request> {
    mpi.clock_mut().charge(cc.perhop);
    let world = cc.world(dst);
    mpi.engine_mut().isend_bytes(data, world, tag, cc.ctx)
}

/// Internal blocking receive of a collective fragment from communicator
/// rank `src`.
pub(crate) fn crecv(
    mpi: &mut Mpi,
    cc: &Cc,
    cap: usize,
    src: usize,
    tag: i32,
) -> MpiResult<Box<[u8]>> {
    let world = cc.world(src) as i32;
    let (data, _) = mpi.engine_mut().recv_bytes(cap, world, tag, cc.ctx)?;
    Ok(data)
}

/// Simultaneous exchange with a partner: isend to `dst`, recv from `src`,
/// complete the send. The workhorse of ring and recursive-doubling
/// algorithms.
pub(crate) fn exchange(
    mpi: &mut Mpi,
    cc: &Cc,
    data: &[u8],
    dst: usize,
    cap: usize,
    src: usize,
    tag: i32,
) -> MpiResult<Box<[u8]>> {
    let sreq = cisend(mpi, cc, data, dst, tag)?;
    let got = crecv(mpi, cc, cap, src, tag)?;
    mpi.engine_mut().wait(sreq)?;
    Ok(got)
}

/// Validate a collective root argument.
pub(crate) fn check_root(cc: &Cc, root: usize) -> MpiResult<()> {
    if root >= cc.size() {
        Err(MpiError::InvalidRank {
            rank: root as i32,
            comm_size: cc.size(),
        })
    } else {
        Ok(())
    }
}

/// MPI_Barrier: dissemination algorithm — ⌈log₂ p⌉ rounds of exchanges at
/// distance 2^k.
pub fn barrier(mpi: &mut Mpi, comm: CommHandle) -> MpiResult<()> {
    let c = cc(mpi, comm)?;
    let p = c.size();
    if p == 1 {
        return Ok(());
    }
    let me = c.me;
    let mut dist = 1usize;
    while dist < p {
        let dst = (me + dist) % p;
        let src = (me + p - dist) % p;
        let tag = tags::BARRIER + dist.trailing_zeros() as i32;
        exchange(mpi, &c, &[], dst, 0, src, tag)?;
        dist *= 2;
    }
    Ok(())
}

/// Hierarchy description used by two-level algorithms.
#[derive(Debug)]
pub(crate) struct Hierarchy {
    /// Communicator rank of this rank's node leader.
    #[allow(dead_code)] // part of the hierarchy API; algorithms use my_node[0]
    pub my_leader: usize,
    /// All node leaders (lowest comm rank per node), in node order of
    /// appearance.
    pub leaders: Vec<usize>,
    /// This rank's index within `leaders` (if a leader).
    pub leader_index: Option<usize>,
    /// Communicator ranks on this rank's node, in comm-rank order
    /// (first entry is the leader).
    pub my_node: Vec<usize>,
}

/// Group the communicator's ranks by physical node. The lowest
/// communicator rank on each node acts as its leader.
pub(crate) fn hierarchy(mpi: &Mpi, cc: &Cc) -> Hierarchy {
    let topo = *mpi.topology();
    let my_node_id = topo.node_of(cc.world(cc.me));
    let mut leaders: Vec<usize> = Vec::new();
    let mut seen_nodes: Vec<usize> = Vec::new();
    let mut my_node: Vec<usize> = Vec::new();
    for (cr, &wr) in cc.ranks.iter().enumerate() {
        let node = topo.node_of(wr);
        if !seen_nodes.contains(&node) {
            seen_nodes.push(node);
            leaders.push(cr);
        }
        if node == my_node_id {
            my_node.push(cr);
        }
    }
    let my_leader = my_node[0];
    let leader_index = leaders.iter().position(|&l| l == cc.me);
    Hierarchy {
        my_leader,
        leaders,
        leader_index,
        my_node,
    }
}

/// A sub-`Cc` restricted to the given communicator ranks (used by
/// two-level algorithms to run a flat algorithm among leaders or within a
/// node). Traffic stays in the parent's collective context; the distinct
/// `tag` keeps stages from colliding.
pub(crate) fn sub_cc(cc: &Cc, members: &[usize]) -> Option<(Cc, usize)> {
    let me = members.iter().position(|&m| m == cc.me)?;
    let ranks = members.iter().map(|&m| cc.world(m)).collect();
    Some((
        Cc {
            ctx: cc.ctx,
            ranks,
            me,
            perhop: cc.perhop,
            percall: VDur::ZERO,
        },
        me,
    ))
}

/// Receive from any source within a collective (used only by tests).
#[allow(dead_code)]
pub(crate) fn crecv_any(mpi: &mut Mpi, cc: &Cc, cap: usize) -> MpiResult<Box<[u8]>> {
    let (data, _) = mpi.engine_mut().recv_bytes(cap, -1, ANY_TAG, cc.ctx)?;
    Ok(data)
}
