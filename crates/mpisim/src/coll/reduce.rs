//! Reduction collectives: MPI_Reduce and MPI_Allreduce.
//!
//! Algorithms:
//!
//! * `reduce`: binomial tree (children combined in deterministic mask
//!   order).
//! * `allreduce`, flat: recursive doubling for small payloads,
//!   Rabenseifner (recursive-halving reduce-scatter + recursive-doubling
//!   allgather) for large ones, with the standard non-power-of-two fold.
//! * `allreduce`, hierarchical (MVAPICH2): shared-memory fan-in to the
//!   node leader, flat allreduce among leaders over the network,
//!   shared-memory binomial broadcast of the result.

use super::{bcast, cc, check_root, crecv, csend, hierarchy, spans_nodes, sub_cc, tags, Cc};
use crate::comm::CommHandle;
use crate::datatype::Datatype;
use crate::error::{MpiError, MpiResult};
use crate::mpi::Mpi;
use crate::op::{self, ReduceOp};
use vtime::VDur;

/// Charge the reduction-compute cost for combining `bytes` of operands.
fn charge_reduce(mpi: &mut Mpi, bytes: usize) {
    let per_byte = mpi.profile().reduce_per_byte_ns;
    mpi.clock_mut()
        .charge(VDur::from_nanos(bytes as f64 * per_byte));
}

/// Combine `src` into `acc` and charge the flops.
fn combine(
    mpi: &mut Mpi,
    op: ReduceOp,
    dt: &Datatype,
    acc: &mut [u8],
    src: &[u8],
) -> MpiResult<()> {
    op::apply(op, dt, acc, src)?;
    charge_reduce(mpi, src.len());
    Ok(())
}

/// Pack the send buffer, charging for non-contiguous layouts.
fn pack_charged(mpi: &mut Mpi, buf: &[u8], count: usize, dt: &Datatype) -> MpiResult<Vec<u8>> {
    let p = dt.pack(buf, count)?;
    if !dt.is_contiguous() {
        let per_byte = mpi.profile().pack_per_byte_ns;
        mpi.clock_mut()
            .charge(VDur::from_nanos(p.len() as f64 * per_byte));
    }
    Ok(p)
}

fn unpack_charged(
    mpi: &mut Mpi,
    data: &[u8],
    count: usize,
    dt: &Datatype,
    out: &mut [u8],
) -> MpiResult<()> {
    dt.unpack(data, count, out)?;
    if !dt.is_contiguous() {
        let per_byte = mpi.profile().pack_per_byte_ns;
        mpi.clock_mut()
            .charge(VDur::from_nanos(data.len() as f64 * per_byte));
    }
    Ok(())
}

/// MPI_Reduce: binomial tree rooted at `root`.
pub fn reduce(
    mpi: &mut Mpi,
    send: &[u8],
    recv: Option<&mut [u8]>,
    count: usize,
    dt: &Datatype,
    op: ReduceOp,
    root: usize,
    comm: CommHandle,
) -> MpiResult<()> {
    let c = cc(mpi, comm)?;
    check_root(&c, root)?;
    let mut acc = pack_charged(mpi, send, count, dt)?;
    let p = c.size();

    if p > 1 {
        let vrank = (c.me + p - root) % p;
        let real = |v: usize| (v + root) % p;
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask == 0 {
                let child = vrank + mask;
                if child < p {
                    let got = crecv(mpi, &c, acc.len(), real(child), tags::REDUCE)?;
                    if got.len() != acc.len() {
                        return Err(MpiError::CollectiveMismatch(
                            "reduce contributions differ in size",
                        ));
                    }
                    combine(mpi, op, dt, &mut acc, &got)?;
                }
            } else {
                csend(mpi, &c, &acc, real(vrank - mask), tags::REDUCE)?;
                break;
            }
            mask <<= 1;
        }
    }

    if c.me == root {
        let out = recv.ok_or(MpiError::BufferTooSmall {
            needed: acc.len(),
            available: 0,
        })?;
        unpack_charged(mpi, &acc, count, dt, out)?;
    }
    Ok(())
}

/// MPI_Allreduce: algorithm selection per profile.
pub fn allreduce(
    mpi: &mut Mpi,
    send: &[u8],
    recv: &mut [u8],
    count: usize,
    dt: &Datatype,
    op: ReduceOp,
    comm: CommHandle,
) -> MpiResult<()> {
    let mut c = cc(mpi, comm)?;
    // Allreduce-specific scheduling overhead (profile tuning).
    c.perhop += VDur::from_nanos(mpi.profile().coll.allreduce_perhop_extra_ns);
    let mut acc = pack_charged(mpi, send, count, dt)?;
    let begin = mpi.now();
    let nbytes = acc.len();

    if c.size() > 1 && !acc.is_empty() {
        let tuning = mpi.profile().coll;
        if tuning.hierarchical && spans_nodes(mpi, &c) && acc.len() <= tuning.two_level_max {
            obs::count("coll.allreduce.algo.two_level", 1);
            two_level(mpi, &c, &mut acc, dt, op, tuning.allreduce_rd_max)?;
        } else {
            flat(mpi, &c, &mut acc, dt, op, &tuning)?;
        }
    }

    unpack_charged(mpi, &acc, count, dt, recv)?;
    if obs::tracing_enabled() {
        obs::span(
            "allreduce",
            "coll",
            begin,
            mpi.now(),
            vec![
                ("bytes", obs::ArgValue::U64(nbytes as u64)),
                ("ranks", obs::ArgValue::U64(c.size() as u64)),
            ],
        );
    }
    Ok(())
}

/// Flat allreduce over `c`: recursive doubling or Rabenseifner, with the
/// standard fold for non-power-of-two sizes.
pub(super) fn flat(
    mpi: &mut Mpi,
    c: &Cc,
    acc: &mut [u8],
    dt: &Datatype,
    op: ReduceOp,
    tuning: &crate::profile::CollTuning,
) -> MpiResult<()> {
    let rd_max = tuning.allreduce_rd_max;
    // Ring allreduce (Open MPI's large-message default): bandwidth
    // optimal but with a 2(p-1)-step critical path.
    if acc.len() > rd_max
        && tuning.allreduce_ring_above_rd
        && acc.len() >= c.size() * dt.base_type().size()
    {
        obs::count("coll.allreduce.algo.ring", 1);
        return ring(mpi, c, acc, dt, op);
    }
    let p = c.size();
    let pof2 = prev_power_of_two(p);
    let rem = p - pof2;
    let me = c.me;

    // Fold phase: the first 2*rem ranks pair up; evens push their vector
    // into odds, halving the active set to a power of two.
    let newrank: Option<usize> = if me < 2 * rem {
        if me % 2 == 0 {
            csend(mpi, c, acc, me + 1, tags::ALLREDUCE + 1)?;
            None
        } else {
            let got = crecv(mpi, c, acc.len(), me - 1, tags::ALLREDUCE + 1)?;
            combine(mpi, op, dt, acc, &got)?;
            Some(me / 2)
        }
    } else {
        Some(me - rem)
    };

    if let Some(nr) = newrank {
        // Map a new rank back to a communicator rank.
        let real = |v: usize| if v < rem { 2 * v + 1 } else { v + rem };
        if acc.len() <= rd_max || acc.len() < pof2 * dt.base_type().size() {
            obs::count("coll.allreduce.algo.recursive_doubling", 1);
            recursive_doubling(mpi, c, acc, dt, op, nr, pof2, real)?;
        } else {
            obs::count("coll.allreduce.algo.rabenseifner", 1);
            rabenseifner(mpi, c, acc, dt, op, nr, pof2, real)?;
        }
    }

    // Unfold: odds hand the final vector back to their even partner.
    if me < 2 * rem {
        if me % 2 == 1 {
            csend(mpi, c, acc, me - 1, tags::ALLREDUCE + 2)?;
        } else {
            let got = crecv(mpi, c, acc.len(), me + 1, tags::ALLREDUCE + 2)?;
            acc.copy_from_slice(&got);
        }
    }
    Ok(())
}

/// Flat allreduce restricted to RD/Rabenseifner (used by the leader
/// stage of the two-level algorithm).
fn flat_rd_or_raben(
    mpi: &mut Mpi,
    c: &Cc,
    acc: &mut [u8],
    dt: &Datatype,
    op: ReduceOp,
    rd_max: usize,
) -> MpiResult<()> {
    let p = c.size();
    let pof2 = prev_power_of_two(p);
    let rem = p - pof2;
    let me = c.me;
    let newrank: Option<usize> = if me < 2 * rem {
        if me % 2 == 0 {
            csend(mpi, c, acc, me + 1, tags::ALLREDUCE + 1)?;
            None
        } else {
            let got = crecv(mpi, c, acc.len(), me - 1, tags::ALLREDUCE + 1)?;
            combine(mpi, op, dt, acc, &got)?;
            Some(me / 2)
        }
    } else {
        Some(me - rem)
    };
    if let Some(nr) = newrank {
        let real = |v: usize| if v < rem { 2 * v + 1 } else { v + rem };
        if acc.len() <= rd_max || acc.len() < pof2 * dt.base_type().size() {
            recursive_doubling(mpi, c, acc, dt, op, nr, pof2, real)?;
        } else {
            rabenseifner(mpi, c, acc, dt, op, nr, pof2, real)?;
        }
    }
    if me < 2 * rem {
        if me % 2 == 1 {
            csend(mpi, c, acc, me - 1, tags::ALLREDUCE + 2)?;
        } else {
            let got = crecv(mpi, c, acc.len(), me + 1, tags::ALLREDUCE + 2)?;
            acc.copy_from_slice(&got);
        }
    }
    Ok(())
}

/// Binomial tree reduction of `acc` to communicator rank `root` of the
/// sub-communicator (children combined in deterministic mask order).
pub(super) fn tree_reduce(
    mpi: &mut Mpi,
    c: &Cc,
    acc: &mut [u8],
    dt: &Datatype,
    op: ReduceOp,
    root: usize,
    tag: i32,
) -> MpiResult<()> {
    let p = c.size();
    if p <= 1 {
        return Ok(());
    }
    let vrank = (c.me + p - root) % p;
    let real = |v: usize| (v + root) % p;
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask == 0 {
            let child = vrank + mask;
            if child < p {
                let got = crecv(mpi, c, acc.len(), real(child), tag)?;
                combine(mpi, op, dt, acc, &got)?;
            }
        } else {
            csend(mpi, c, acc, real(vrank - mask), tag)?;
            break;
        }
        mask <<= 1;
    }
    Ok(())
}

/// Chunk boundaries (bytes) for splitting `elems` base elements into `p`
/// near-equal chunks.
fn chunk_range(elems: usize, bs: usize, p: usize, i: usize) -> (usize, usize) {
    let per = elems.div_ceil(p);
    let lo = (per * i).min(elems);
    let hi = (per * (i + 1)).min(elems);
    (lo * bs, hi * bs)
}

/// Ring reduce-scatter: p-1 steps of n/p bytes. Afterwards rank `me`
/// holds the fully-reduced chunk `(me + 1) % p`.
fn ring_reduce_scatter(
    mpi: &mut Mpi,
    c: &Cc,
    acc: &mut [u8],
    dt: &Datatype,
    op: ReduceOp,
) -> MpiResult<usize> {
    let p = c.size();
    let me = c.me;
    let bs = dt.base_type().size();
    let elems = acc.len() / bs;
    let next = (me + 1) % p;
    let prev = (me + p - 1) % p;
    for s in 0..p - 1 {
        let send_id = (me + p - s) % p;
        let recv_id = (me + p - s - 1) % p;
        let (slo, shi) = chunk_range(elems, bs, p, send_id);
        let frag = acc[slo..shi].to_vec();
        let (rlo, rhi) = chunk_range(elems, bs, p, recv_id);
        let got = super::exchange(mpi, c, &frag, next, rhi - rlo, prev, tags::ALLREDUCE + 8)?;
        let dst = &mut acc[rlo..rhi];
        op::apply(op, dt, dst, &got)?;
        charge_reduce(mpi, got.len());
    }
    Ok((me + 1) % p)
}

/// Ring allgather of the per-rank chunks (inverse of the reduce-scatter).
fn ring_allgather(mpi: &mut Mpi, c: &Cc, acc: &mut [u8], bs: usize) -> MpiResult<()> {
    let p = c.size();
    let me = c.me;
    let elems = acc.len() / bs;
    let next = (me + 1) % p;
    let prev = (me + p - 1) % p;
    for s in 0..p - 1 {
        let send_id = (me + 1 + p - s) % p;
        let recv_id = (me + p - s) % p;
        let (slo, shi) = chunk_range(elems, bs, p, send_id);
        let frag = acc[slo..shi].to_vec();
        let (rlo, rhi) = chunk_range(elems, bs, p, recv_id);
        let got = super::exchange(mpi, c, &frag, next, rhi - rlo, prev, tags::ALLREDUCE + 9)?;
        acc[rlo..rlo + got.len()].copy_from_slice(&got);
    }
    Ok(())
}

/// Ring allreduce: ring reduce-scatter followed by a ring allgather.
fn ring(mpi: &mut Mpi, c: &Cc, acc: &mut [u8], dt: &Datatype, op: ReduceOp) -> MpiResult<()> {
    ring_reduce_scatter(mpi, c, acc, dt, op)?;
    ring_allgather(mpi, c, acc, dt.base_type().size())
}

fn prev_power_of_two(p: usize) -> usize {
    let mut v = 1;
    while v * 2 <= p {
        v *= 2;
    }
    v
}

/// Recursive doubling among `pof2` active ranks (`real` maps new ranks to
/// communicator ranks).
fn recursive_doubling(
    mpi: &mut Mpi,
    c: &Cc,
    acc: &mut [u8],
    dt: &Datatype,
    op: ReduceOp,
    newrank: usize,
    pof2: usize,
    real: impl Fn(usize) -> usize,
) -> MpiResult<()> {
    let mut mask = 1usize;
    while mask < pof2 {
        let partner = real(newrank ^ mask);
        let tag = tags::ALLREDUCE + 4 + mask.trailing_zeros() as i32;
        let got = super::exchange(mpi, c, acc, partner, acc.len(), partner, tag)?;
        if got.len() != acc.len() {
            return Err(MpiError::CollectiveMismatch(
                "allreduce contributions differ in size",
            ));
        }
        combine(mpi, op, dt, acc, &got)?;
        mask <<= 1;
    }
    Ok(())
}

/// Rabenseifner's algorithm among `pof2` active ranks: recursive-halving
/// reduce-scatter, then a mirrored recursive-doubling allgather.
fn rabenseifner(
    mpi: &mut Mpi,
    c: &Cc,
    acc: &mut [u8],
    dt: &Datatype,
    op: ReduceOp,
    newrank: usize,
    pof2: usize,
    real: impl Fn(usize) -> usize,
) -> MpiResult<()> {
    let bs = dt.base_type().size();
    let elems = acc.len() / bs;
    debug_assert_eq!(acc.len() % bs, 0);

    // Reduce-scatter by recursive halving.
    let mut lo = 0usize;
    let mut hi = elems;
    let mut mask = pof2 >> 1;
    let mut steps: Vec<(usize, usize, usize, usize)> = Vec::new(); // (lo, hi, mid, mask)
    while mask > 0 {
        let partner_new = newrank ^ mask;
        let partner = real(partner_new);
        let mid = lo + (hi - lo) / 2;
        let tag = tags::ALLREDUCE + 16 + mask.trailing_zeros() as i32;
        if newrank < partner_new {
            // Keep [lo, mid); trade away [mid, hi).
            let send_frag = acc[mid * bs..hi * bs].to_vec();
            let got = super::exchange(mpi, c, &send_frag, partner, (mid - lo) * bs, partner, tag)?;
            let dst = &mut acc[lo * bs..mid * bs];
            op::apply(op, dt, dst, &got)?;
            charge_reduce(mpi, got.len());
            steps.push((lo, hi, mid, mask));
            hi = mid;
        } else {
            let send_frag = acc[lo * bs..mid * bs].to_vec();
            let got = super::exchange(mpi, c, &send_frag, partner, (hi - mid) * bs, partner, tag)?;
            let dst = &mut acc[mid * bs..hi * bs];
            op::apply(op, dt, dst, &got)?;
            charge_reduce(mpi, got.len());
            steps.push((lo, hi, mid, mask));
            lo = mid;
        }
        mask >>= 1;
    }

    // Allgather by recursive doubling, mirroring the halving steps.
    for &(plo, phi, mid, mask) in steps.iter().rev() {
        let partner_new = newrank ^ mask;
        let partner = real(partner_new);
        let tag = tags::ALLREDUCE + 48 + mask.trailing_zeros() as i32;
        if newrank < partner_new {
            // I own [plo, mid); partner owns [mid, phi).
            let send_frag = acc[plo * bs..mid * bs].to_vec();
            let got = super::exchange(mpi, c, &send_frag, partner, (phi - mid) * bs, partner, tag)?;
            acc[mid * bs..mid * bs + got.len()].copy_from_slice(&got);
        } else {
            let send_frag = acc[mid * bs..phi * bs].to_vec();
            let got = super::exchange(mpi, c, &send_frag, partner, (mid - plo) * bs, partner, tag)?;
            acc[plo * bs..plo * bs + got.len()].copy_from_slice(&got);
        }
    }
    Ok(())
}

/// MVAPICH2-style two-level allreduce.
///
/// Small payloads: serialized shared-memory fan-in to the node leader.
/// Large payloads: cooperative intra-node ring reduce-scatter so all
/// cores share the combining work, then a chunk gather to the leader —
/// the shm-slot behaviour of the real library.
fn two_level(
    mpi: &mut Mpi,
    c: &Cc,
    acc: &mut [u8],
    dt: &Datatype,
    op: ReduceOp,
    rd_max: usize,
) -> MpiResult<()> {
    let h = hierarchy(mpi, c);
    let fanin_max = mpi.profile().coll.two_level_fanin_max;
    let bs = dt.base_type().size();

    // Stage A: node-local reduction to the leader.
    if h.my_node.len() > 1 {
        let m = h.my_node.len();
        if acc.len() <= fanin_max || acc.len() < m * bs {
            // Binomial tree reduction to the node leader (shm-slot-fast
            // for latency-bound payloads).
            if let Some((nc, _)) = sub_cc(c, &h.my_node) {
                tree_reduce(mpi, &nc, acc, dt, op, 0, tags::ALLREDUCE + 80)?;
            }
        } else if let Some((nc, my)) = sub_cc(c, &h.my_node) {
            // Cooperative: ring reduce-scatter, then chunks to the leader.
            let owned = ring_reduce_scatter(mpi, &nc, acc, dt, op)?;
            let elems = acc.len() / bs;
            if my == 0 {
                // Leader: collect the other m-1 reduced chunks.
                for peer in 1..m {
                    let peer_chunk = (peer + 1) % m;
                    let (lo, hi) = chunk_range(elems, bs, m, peer_chunk);
                    let got = crecv(mpi, &nc, hi - lo, peer, tags::ALLREDUCE + 81)?;
                    acc[lo..lo + got.len()].copy_from_slice(&got);
                }
            } else {
                let (lo, hi) = chunk_range(elems, bs, m, owned);
                let frag = acc[lo..hi].to_vec();
                csend(mpi, &nc, &frag, 0, tags::ALLREDUCE + 81)?;
            }
        }
    }

    // Stage B: flat allreduce among the node leaders over the network.
    if h.leader_index.is_some() && h.leaders.len() > 1 {
        if let Some((lc, _)) = sub_cc(c, &h.leaders) {
            flat_rd_or_raben(mpi, &lc, acc, dt, op, rd_max)?;
        }
    }

    // Stage C: shared-memory broadcast of the result within each node —
    // binomial when latency-bound, scatter+allgather when
    // bandwidth-bound.
    if h.my_node.len() > 1 {
        if let Some((nc, _)) = sub_cc(c, &h.my_node) {
            if acc.len() <= fanin_max {
                bcast::binomial(mpi, &nc, acc, 0, tags::ALLREDUCE + 96)?;
            } else {
                bcast::scatter_allgather(mpi, &nc, acc, 0, tags::ALLREDUCE + 96)?;
            }
        }
    }
    Ok(())
}
