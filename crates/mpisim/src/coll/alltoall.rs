//! Alltoall and alltoallv: pairwise-exchange (ring-offset) algorithm.
//!
//! At step `s`, every rank sends its block for `(me + s) mod p` and
//! receives from `(me - s) mod p`; p steps move all p² blocks with full
//! link utilization and no hot spot.

use super::{cc, cisend, crecv, tags};
use crate::comm::CommHandle;
use crate::datatype::Datatype;
use crate::error::{MpiError, MpiResult};
use crate::mpi::Mpi;
use vtime::VDur;

fn pack_block(
    mpi: &mut Mpi,
    buf: &[u8],
    elem_offset: usize,
    count: usize,
    dt: &Datatype,
) -> MpiResult<Vec<u8>> {
    let start = elem_offset * dt.extent();
    if buf.len() < start + dt.span(count) {
        return Err(MpiError::BufferTooSmall {
            needed: start + dt.span(count),
            available: buf.len(),
        });
    }
    let p = dt.pack(&buf[start..], count)?;
    if !dt.is_contiguous() {
        let per_byte = mpi.profile().pack_per_byte_ns;
        mpi.clock_mut()
            .charge(VDur::from_nanos(p.len() as f64 * per_byte));
    }
    Ok(p)
}

fn unpack_block(
    mpi: &mut Mpi,
    data: &[u8],
    count: usize,
    dt: &Datatype,
    out: &mut [u8],
    elem_offset: usize,
) -> MpiResult<()> {
    let start = elem_offset * dt.extent();
    let end = start + dt.span(count);
    if out.len() < end {
        return Err(MpiError::BufferTooSmall {
            needed: end,
            available: out.len(),
        });
    }
    dt.unpack(data, count, &mut out[start..end])?;
    if !dt.is_contiguous() {
        let per_byte = mpi.profile().pack_per_byte_ns;
        mpi.clock_mut()
            .charge(VDur::from_nanos(data.len() as f64 * per_byte));
    }
    Ok(())
}

/// MPI_Alltoall (equal blocks of `count` elements).
pub fn alltoall(
    mpi: &mut Mpi,
    send: &[u8],
    recv: &mut [u8],
    count: usize,
    dt: &Datatype,
    comm: CommHandle,
) -> MpiResult<()> {
    let c = cc(mpi, comm)?;
    let p = c.size();
    let me = c.me;

    // Step 0: local block.
    let own = pack_block(mpi, send, me * count, count, dt)?;
    unpack_block(mpi, &own, count, dt, recv, me * count)?;

    for s in 1..p {
        let dst = (me + s) % p;
        let src = (me + p - s) % p;
        let out = pack_block(mpi, send, dst * count, count, dt)?;
        let sreq = cisend(mpi, &c, &out, dst, tags::ALLTOALL)?;
        let got = crecv(mpi, &c, count * dt.size(), src, tags::ALLTOALL)?;
        mpi.engine_mut().wait(sreq)?;
        unpack_block(mpi, &got, count, dt, recv, src * count)?;
    }
    Ok(())
}

/// MPI_Alltoallv: pairwise exchange with per-peer counts/displacements
/// (all in elements).
#[allow(clippy::too_many_arguments)]
pub fn alltoallv(
    mpi: &mut Mpi,
    send: &[u8],
    sendcounts: &[i32],
    sdispls: &[i32],
    recv: &mut [u8],
    recvcounts: &[i32],
    rdispls: &[i32],
    dt: &Datatype,
    comm: CommHandle,
) -> MpiResult<()> {
    let c = cc(mpi, comm)?;
    let p = c.size();
    let me = c.me;
    if sendcounts.len() != p || sdispls.len() != p || recvcounts.len() != p || rdispls.len() != p {
        return Err(MpiError::CollectiveMismatch(
            "alltoallv counts/displs must have one entry per rank",
        ));
    }
    for r in 0..p {
        if sendcounts[r] < 0 || recvcounts[r] < 0 || sdispls[r] < 0 || rdispls[r] < 0 {
            return Err(MpiError::InvalidCount {
                count: sendcounts[r]
                    .min(recvcounts[r])
                    .min(sdispls[r])
                    .min(rdispls[r]),
            });
        }
    }

    let own = pack_block(mpi, send, sdispls[me] as usize, sendcounts[me] as usize, dt)?;
    unpack_block(
        mpi,
        &own,
        recvcounts[me] as usize,
        dt,
        recv,
        rdispls[me] as usize,
    )?;

    for s in 1..p {
        let dst = (me + s) % p;
        let src = (me + p - s) % p;
        let out = pack_block(
            mpi,
            send,
            sdispls[dst] as usize,
            sendcounts[dst] as usize,
            dt,
        )?;
        let sreq = cisend(mpi, &c, &out, dst, tags::ALLTOALL + 1)?;
        let got = crecv(
            mpi,
            &c,
            recvcounts[src] as usize * dt.size(),
            src,
            tags::ALLTOALL + 1,
        )?;
        mpi.engine_mut().wait(sreq)?;
        unpack_block(
            mpi,
            &got,
            recvcounts[src] as usize,
            dt,
            recv,
            rdispls[src] as usize,
        )?;
    }
    Ok(())
}
