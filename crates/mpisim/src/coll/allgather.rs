//! Allgather and allgatherv: ring algorithm.
//!
//! The ring moves each rank's contribution `p-1` hops; every step
//! overlaps a send with a receive, so the wall-clock cost is `(p-1) ×
//! (block transfer)` — the standard bandwidth-friendly choice for
//! medium/large payloads and perfectly adequate for the paper's
//! workloads.

use super::{cc, cisend, crecv, tags};
use crate::comm::CommHandle;
use crate::datatype::Datatype;
use crate::error::{MpiError, MpiResult};
use crate::mpi::Mpi;
use vtime::VDur;

fn pack_charged(mpi: &mut Mpi, buf: &[u8], count: usize, dt: &Datatype) -> MpiResult<Vec<u8>> {
    let p = dt.pack(buf, count)?;
    if !dt.is_contiguous() {
        let per_byte = mpi.profile().pack_per_byte_ns;
        mpi.clock_mut()
            .charge(VDur::from_nanos(p.len() as f64 * per_byte));
    }
    Ok(p)
}

fn unpack_block(
    mpi: &mut Mpi,
    data: &[u8],
    count: usize,
    dt: &Datatype,
    out: &mut [u8],
    elem_offset: usize,
) -> MpiResult<()> {
    let start = elem_offset * dt.extent();
    let end = start + dt.span(count);
    if out.len() < end {
        return Err(MpiError::BufferTooSmall {
            needed: end,
            available: out.len(),
        });
    }
    dt.unpack(data, count, &mut out[start..end])?;
    if !dt.is_contiguous() {
        let per_byte = mpi.profile().pack_per_byte_ns;
        mpi.clock_mut()
            .charge(VDur::from_nanos(data.len() as f64 * per_byte));
    }
    Ok(())
}

/// MPI_Allgather (equal contributions): ring.
pub fn allgather(
    mpi: &mut Mpi,
    send: &[u8],
    recv: &mut [u8],
    count: usize,
    dt: &Datatype,
    comm: CommHandle,
) -> MpiResult<()> {
    let c = cc(mpi, comm)?;
    let p = c.size();
    let me = c.me;
    let mine = pack_charged(mpi, send, count, dt)?;

    // Own block.
    unpack_block(mpi, &mine, count, dt, recv, me * count)?;
    if p == 1 {
        return Ok(());
    }

    let next = (me + 1) % p;
    let prev = (me + p - 1) % p;
    let mut forward = mine; // packed block we pass along next
    for s in 0..p - 1 {
        // The block arriving at step s originated s+1 ranks behind us.
        let incoming_id = (me + p - 1 - s) % p;
        let sreq = cisend(mpi, &c, &forward, next, tags::ALLGATHER)?;
        let got = crecv(mpi, &c, count * dt.size(), prev, tags::ALLGATHER)?;
        mpi.engine_mut().wait(sreq)?;
        unpack_block(mpi, &got, count, dt, recv, incoming_id * count)?;
        forward = got.into_vec();
    }
    Ok(())
}

/// MPI_Allgatherv: ring with per-rank block sizes. `recvcounts`/`displs`
/// are in elements and must be identical on all ranks (MPI requirement).
pub fn allgatherv(
    mpi: &mut Mpi,
    send: &[u8],
    sendcount: usize,
    recv: &mut [u8],
    recvcounts: &[i32],
    displs: &[i32],
    dt: &Datatype,
    comm: CommHandle,
) -> MpiResult<()> {
    let c = cc(mpi, comm)?;
    let p = c.size();
    let me = c.me;
    if recvcounts.len() != p || displs.len() != p {
        return Err(MpiError::CollectiveMismatch(
            "allgatherv counts/displs must have one entry per rank",
        ));
    }
    if recvcounts[me] as usize != sendcount {
        return Err(MpiError::CollectiveMismatch(
            "allgatherv sendcount must equal recvcounts[me]",
        ));
    }
    let mine = pack_charged(mpi, send, sendcount, dt)?;
    unpack_block(mpi, &mine, sendcount, dt, recv, displs[me] as usize)?;
    if p == 1 {
        return Ok(());
    }

    let next = (me + 1) % p;
    let prev = (me + p - 1) % p;
    let mut forward = mine;
    for s in 0..p - 1 {
        let incoming_id = (me + p - 1 - s) % p;
        let cnt = recvcounts[incoming_id];
        if cnt < 0 {
            return Err(MpiError::InvalidCount { count: cnt });
        }
        let cnt = cnt as usize;
        let sreq = cisend(mpi, &c, &forward, next, tags::ALLGATHER + 1)?;
        let got = crecv(mpi, &c, cnt * dt.size(), prev, tags::ALLGATHER + 1)?;
        mpi.engine_mut().wait(sreq)?;
        unpack_block(mpi, &got, cnt, dt, recv, displs[incoming_id] as usize)?;
        forward = got.into_vec();
    }
    Ok(())
}
