//! Non-blocking collectives: schedule compilation and progression.
//!
//! Each `I*` collective compiles — using the same tuned algorithm
//! selection as its blocking counterpart — into a [`Schedule`]: a static
//! DAG of send/recv/reduce/copy steps grouped into *rounds* (LibNBC
//! style). A round's compute steps consume the previous round's receives;
//! its sends and receives are posted non-blocking and the round retires
//! when all of them complete. Any number of schedules can be outstanding
//! per rank; the [`Mpi`](crate::mpi::Mpi) facade advances them whenever
//! the rank enters the library (Test/Wait/any MPI call).
//!
//! ## Virtual-time discipline
//!
//! A schedule advances on its *own timeline*, forked from the rank clock
//! at post time ([`vtime::Clock::fork_at`]). Every step cost — per-hop
//! software overhead, eager copies, o_send/o_recv, reduction arithmetic —
//! is charged to that timeline via [`Engine::with_timeline`], and message
//! arrivals merge into it. The rank's own clock only moves when the
//! application *consumes* the operation (Wait/Test), where it merges the
//! schedule's final timeline instant. This models offloaded progression
//! (a NIC/async-thread driving the collective while the CPU computes) and
//! keeps timing byte-identical across reruns: *when* the OS thread
//! happens to notice a delivery affects only real-time progress, never
//! the virtual result — the same rule the engine already applies to
//! rendezvous control traffic.
//!
//! ## Tag discipline
//!
//! Schedule traffic travels in the communicator's collective context with
//! tags from [`nbc_tag`]: a per-schedule window (derived from a per-comm
//! sequence number every member derives identically) crossed with the
//! round index. Distinct tags per round make matching immune to a
//! neighbor racing several rounds ahead, and distinct windows keep any
//! realistic number of outstanding schedules on one communicator apart.

use vtime::{VDur, VTime};

use crate::comm::CommHandle;
use crate::datatype::Datatype;
use crate::engine::{Engine, Request, NBC_ROUNDS_MAX, NBC_TAG_BASE};
use crate::error::{MpiError, MpiResult};
use crate::mpi::Mpi;
use crate::op::{self, ReduceOp};
use crate::profile::CollTuning;

/// Number of schedule windows before tags wrap (windows this far apart
/// cannot have traffic in flight simultaneously on one communicator).
const NBC_WINDOWS: u64 = 512;

/// Tag for round `round` of the schedule with per-communicator sequence
/// number `seq`.
fn nbc_tag(seq: u64, round: usize) -> i32 {
    debug_assert!(round < NBC_ROUNDS_MAX);
    NBC_TAG_BASE + ((seq % NBC_WINDOWS) as i32) * (NBC_ROUNDS_MAX as i32) + round as i32
}

/// One primitive operation of a schedule. Buffer indices refer to the
/// schedule's buffer table; ranks are communicator ranks.
#[derive(Debug, Clone)]
enum Step {
    /// Send `bufs[buf][off..off+len]` to `dst`.
    Send {
        buf: usize,
        off: usize,
        len: usize,
        dst: usize,
    },
    /// Receive `len` bytes from `src` into `bufs[buf][off..]`.
    Recv {
        buf: usize,
        off: usize,
        len: usize,
        src: usize,
    },
    /// `bufs[dst][doff..] = bufs[dst][doff..] OP bufs[src][soff..]` over
    /// `len` bytes (charged at the profile's reduction rate).
    Reduce {
        src: usize,
        soff: usize,
        dst: usize,
        doff: usize,
        len: usize,
    },
    /// Plain copy between schedule buffers (uncharged, like the payload
    /// shuffling inside the blocking algorithms).
    Copy {
        src: usize,
        soff: usize,
        dst: usize,
        doff: usize,
        len: usize,
    },
}

/// A group of steps that post together. Compute steps (`Reduce`/`Copy`)
/// run first — consuming the previous round's receives — then the round's
/// sends and receives are posted non-blocking.
#[derive(Debug, Default)]
struct Round {
    steps: Vec<Step>,
}

/// A receive in flight: where its payload lands when it completes.
#[derive(Debug)]
struct RecvSlot {
    buf: usize,
    off: usize,
    len: usize,
}

/// A compiled, progressing non-blocking collective.
pub(crate) struct Schedule {
    /// Collective context stream of the communicator.
    ctx: u32,
    /// Collective instance id (allocated by `Engine::begin_collective`).
    pub(crate) coll_id: u64,
    /// OMB-style name ("ibcast", ...), used for spans.
    pub(crate) name: &'static str,
    /// World ranks by communicator rank.
    ranks: Vec<usize>,
    /// Per-communicator non-blocking sequence number (tag window).
    seq: u64,
    /// Reduction parameters (reduce schedules only).
    red: Option<(ReduceOp, Datatype)>,
    /// Per-internal-message software overhead (profile tuning).
    perhop: VDur,
    /// Reduction cost per combined byte (profile).
    reduce_per_byte_ns: f64,
    bufs: Vec<Vec<u8>>,
    rounds: Vec<Round>,
    /// Index of the buffer holding the result at completion.
    out: usize,
    /// Next round to fire.
    next_round: usize,
    /// Requests of the fired-but-unretired round, in posting order, with
    /// receive landing slots.
    inflight: Vec<(Request, Option<RecvSlot>)>,
    /// Prefix of `inflight` already consumed (completion is drained in
    /// posting order so the timeline folds deterministically).
    inflight_done: usize,
    /// The schedule's own virtual timeline.
    timeline: VTime,
    /// Timeline instant the schedule was posted at.
    pub(crate) posted_at: VTime,
}

impl Schedule {
    /// Whether every round has fired and retired.
    pub(crate) fn is_done(&self) -> bool {
        self.next_round >= self.rounds.len() && self.inflight_done >= self.inflight.len()
    }

    /// Final timeline instant (meaningful once [`Schedule::is_done`]).
    pub(crate) fn finish_time(&self) -> VTime {
        self.timeline
    }

    /// The result payload (meaningful once done).
    pub(crate) fn take_output(mut self) -> Vec<u8> {
        std::mem::take(&mut self.bufs[self.out])
    }

    /// Fire round `next_round`: run its compute steps (charged to the
    /// timeline), then post its sends/receives through the engine with the
    /// clock swapped for the timeline.
    fn fire_round(&mut self, eng: &mut Engine) -> MpiResult<()> {
        let round = &self.rounds[self.next_round];
        let tag = nbc_tag(self.seq, self.next_round);
        // Compute steps first: they consume the previous round's receives.
        let mut compute_ns = 0.0f64;
        for step in &round.steps {
            match *step {
                Step::Reduce {
                    src,
                    soff,
                    dst,
                    doff,
                    len,
                } => {
                    let (op, dt) = self.red.as_ref().expect("reduce step needs an op");
                    let (op, dt) = (*op, dt.clone());
                    let (sbuf, dbuf) = if src < dst {
                        let (a, b) = self.bufs.split_at_mut(dst);
                        (&a[src][soff..soff + len], &mut b[0][doff..doff + len])
                    } else {
                        let (a, b) = self.bufs.split_at_mut(src);
                        (&b[0][soff..soff + len], &mut a[dst][doff..doff + len])
                    };
                    op::apply(op, &dt, dbuf, sbuf)?;
                    compute_ns += len as f64 * self.reduce_per_byte_ns;
                    obs::count("coll.nb.reduce_bytes", len as u64);
                }
                Step::Copy {
                    src,
                    soff,
                    dst,
                    doff,
                    len,
                } => {
                    if src == dst {
                        self.bufs[dst].copy_within(soff..soff + len, doff);
                    } else {
                        let (from, to) = if src < dst {
                            let (a, b) = self.bufs.split_at_mut(dst);
                            (&a[src], &mut b[0])
                        } else {
                            let (a, b) = self.bufs.split_at_mut(src);
                            (&b[0], &mut a[dst])
                        };
                        to[doff..doff + len].copy_from_slice(&from[soff..soff + len]);
                    }
                }
                _ => {}
            }
        }
        // Post the communication steps on the schedule timeline.
        let me_world = eng.rank();
        let label = eng.swap_coll_label(Some(self.ctx), self.coll_id);
        let (posted, advanced) = eng.with_timeline(self.timeline, |eng| -> MpiResult<_> {
            if compute_ns > 0.0 {
                eng.clock_mut().charge(VDur::from_nanos(compute_ns));
            }
            let mut posted = Vec::new();
            for step in &self.rounds[self.next_round].steps {
                match *step {
                    Step::Recv { buf, off, len, src } => {
                        let world = self.ranks[src] as i32;
                        let r = eng.irecv_bytes(len, world, tag, self.ctx)?;
                        posted.push((r, Some(RecvSlot { buf, off, len })));
                        obs::count("coll.nb.recvs", 1);
                    }
                    Step::Send { buf, off, len, dst } => {
                        let world = self.ranks[dst];
                        debug_assert_ne!(world, me_world, "schedules never self-send");
                        eng.clock_mut().charge(self.perhop);
                        let data = &self.bufs[buf][off..off + len];
                        let r = eng.isend_bytes(data, world, tag, self.ctx)?;
                        posted.push((r, None));
                        obs::count("coll.nb.sends", 1);
                        obs::count("coll.nb.bytes", len as u64);
                    }
                    _ => {}
                }
            }
            Ok(posted)
        });
        let (old_ctx, old_id) = label;
        eng.swap_coll_label(old_ctx, old_id);
        self.timeline = advanced;
        self.inflight = posted?;
        self.inflight_done = 0;
        self.next_round += 1;
        Ok(())
    }

    /// Advance as far as already-arrived traffic permits: retire inflight
    /// requests (in posting order, folding arrivals into the timeline) and
    /// fire follow-on rounds. Never blocks; returns whether the schedule
    /// is now done.
    pub(crate) fn advance(&mut self, eng: &mut Engine) -> MpiResult<bool> {
        let _wp = obs::wallprof::span(obs::wallprof::Subsystem::Sched);
        obs::wallprof::add(obs::wallprof::Counter::SchedPolls, 1);
        loop {
            // Retire the current round's requests in posting order.
            while self.inflight_done < self.inflight.len() {
                let (req, slot) = &self.inflight[self.inflight_done];
                let req = *req;
                if !eng.is_done(req) {
                    return Ok(false);
                }
                let (completion, advanced) =
                    eng.with_timeline(self.timeline, |eng| eng.try_complete(req));
                let completion = completion?.expect("request checked complete");
                self.timeline = advanced;
                if let Some(RecvSlot { buf, off, len }) = slot {
                    let got = completion.data;
                    if got.len() != *len {
                        return Err(MpiError::Truncated {
                            incoming: got.len(),
                            capacity: *len,
                        });
                    }
                    self.bufs[*buf][*off..*off + *len].copy_from_slice(&got);
                }
                self.inflight_done += 1;
            }
            if self.next_round >= self.rounds.len() {
                return Ok(true);
            }
            self.fire_round(eng)?;
        }
    }
}

/// Builder used by the per-collective compilers.
struct Build {
    bufs: Vec<Vec<u8>>,
    rounds: Vec<Round>,
    out: usize,
}

impl Build {
    fn new() -> Self {
        Build {
            bufs: Vec::new(),
            rounds: Vec::new(),
            out: 0,
        }
    }

    fn buf(&mut self, data: Vec<u8>) -> usize {
        self.bufs.push(data);
        self.bufs.len() - 1
    }

    fn round(&mut self) -> &mut Round {
        self.rounds.push(Round::default());
        self.rounds.last_mut().unwrap()
    }
}

/// Even byte partition of `n` over `p` (same as the blocking
/// scatter-allgather bcast).
fn block_range(n: usize, p: usize, i: usize) -> (usize, usize) {
    let bs = n.div_ceil(p);
    let lo = (bs * i).min(n);
    let hi = (bs * (i + 1)).min(n);
    (lo, hi)
}

/// Element-aligned byte partition for reduce schedules: boundaries land
/// on base-type elements (like the blocking ring's `chunk_range`) so
/// [`op::apply`] always sees whole elements.
fn elem_block_range(n: usize, elem: usize, p: usize, i: usize) -> (usize, usize) {
    let elems = n / elem;
    let per = elems.div_ceil(p);
    let lo = (per * i).min(elems);
    let hi = (per * (i + 1)).min(elems);
    (lo * elem, hi * elem)
}

fn ceil_log2(p: usize) -> usize {
    (usize::BITS - (p - 1).leading_zeros()) as usize
}

/// Parameters shared by every compiler: communicator geometry plus the
/// payload, in *communicator ranks*.
struct Geo {
    me: usize,
    p: usize,
}

// ----------------------------------------------------------------------
// Compilers. Each returns (bufs, rounds, out-buffer index).
// ----------------------------------------------------------------------

/// Ibarrier: dissemination, ⌈log₂ p⌉ rounds of zero-byte exchanges.
fn compile_barrier(g: &Geo) -> Build {
    let mut b = Build::new();
    b.out = b.buf(Vec::new());
    let mut dist = 1usize;
    while dist < g.p {
        let r = b.round();
        r.steps.push(Step::Recv {
            buf: 0,
            off: 0,
            len: 0,
            src: (g.me + g.p - dist) % g.p,
        });
        r.steps.push(Step::Send {
            buf: 0,
            off: 0,
            len: 0,
            dst: (g.me + dist) % g.p,
        });
        dist *= 2;
    }
    b
}

/// Ibcast: binomial tree for small payloads, binomial-scatter +
/// ring-allgather (van de Geijn) above the binomial threshold — the same
/// selection the blocking `bcast` makes for flat communicators.
fn compile_bcast(g: &Geo, data: Vec<u8>, root: usize, tuning: &CollTuning) -> Build {
    let n = data.len();
    let mut b = Build::new();
    b.out = b.buf(data);
    if g.p == 1 || n == 0 {
        return b;
    }
    let vrank = (g.me + g.p - root) % g.p;
    let from_v = |v: usize| (v + root) % g.p;
    if n <= tuning.bcast_binomial_max {
        // Doubling binomial: after round k the first 2^(k+1) vranks hold
        // the payload.
        for k in 0..ceil_log2(g.p) {
            let mask = 1usize << k;
            let r = b.round();
            if vrank < mask {
                if vrank + mask < g.p {
                    r.steps.push(Step::Send {
                        buf: 0,
                        off: 0,
                        len: n,
                        dst: from_v(vrank + mask),
                    });
                }
            } else if vrank < 2 * mask {
                r.steps.push(Step::Recv {
                    buf: 0,
                    off: 0,
                    len: n,
                    src: from_v(vrank - mask),
                });
            }
        }
        return b;
    }
    // Scatter-allgather: binomial scatter of vrank-indexed blocks, then a
    // ring allgather.
    for k in (0..ceil_log2(g.p)).rev() {
        let mask = 1usize << k;
        let r = b.round();
        if vrank & (mask - 1) == 0 {
            if vrank & mask == 0 {
                // Holder of [vrank, vrank+2*mask): pass the upper half.
                if vrank + mask < g.p {
                    let (lo, _) = block_range(n, g.p, vrank + mask);
                    let (_, hi) = block_range(n, g.p, (vrank + 2 * mask).min(g.p));
                    if hi > lo {
                        r.steps.push(Step::Send {
                            buf: 0,
                            off: lo,
                            len: hi - lo,
                            dst: from_v(vrank + mask),
                        });
                    }
                }
            } else {
                let (lo, _) = block_range(n, g.p, vrank);
                let (_, hi) = block_range(n, g.p, (vrank + mask).min(g.p));
                if hi > lo {
                    r.steps.push(Step::Recv {
                        buf: 0,
                        off: lo,
                        len: hi - lo,
                        src: from_v(vrank - mask),
                    });
                }
            }
        }
    }
    // Ring allgather over vrank blocks.
    for step in 0..g.p - 1 {
        let r = b.round();
        let send_block = (vrank + g.p - step) % g.p;
        let recv_block = (vrank + g.p - step - 1) % g.p;
        let (slo, shi) = block_range(n, g.p, send_block);
        let (rlo, rhi) = block_range(n, g.p, recv_block);
        if shi > slo {
            r.steps.push(Step::Send {
                buf: 0,
                off: slo,
                len: shi - slo,
                dst: from_v((vrank + 1) % g.p),
            });
        }
        if rhi > rlo {
            r.steps.push(Step::Recv {
                buf: 0,
                off: rlo,
                len: rhi - rlo,
                src: from_v((vrank + g.p - 1) % g.p),
            });
        }
    }
    b
}

/// Iallgather: ring — p−1 rounds, each forwarding the block received in
/// the previous round.
fn compile_allgather(g: &Geo, mine: Vec<u8>) -> Build {
    let nb = mine.len();
    let mut b = Build::new();
    let mut out = vec![0u8; nb * g.p];
    out[g.me * nb..(g.me + 1) * nb].copy_from_slice(&mine);
    b.out = b.buf(out);
    if g.p == 1 || nb == 0 {
        return b;
    }
    let right = (g.me + 1) % g.p;
    let left = (g.me + g.p - 1) % g.p;
    for step in 0..g.p - 1 {
        let send_block = (g.me + g.p - step) % g.p;
        let recv_block = (g.me + g.p - step - 1) % g.p;
        let r = b.round();
        r.steps.push(Step::Send {
            buf: 0,
            off: send_block * nb,
            len: nb,
            dst: right,
        });
        r.steps.push(Step::Recv {
            buf: 0,
            off: recv_block * nb,
            len: nb,
            src: left,
        });
    }
    b
}

/// Igather: binomial fan-in over vranks, then (at the root) a
/// vrank→rank permutation of the accumulated blocks.
fn compile_gather(g: &Geo, mine: Vec<u8>, root: usize) -> Build {
    let nb = mine.len();
    let mut b = Build::new();
    let vrank = (g.me + g.p - root) % g.p;
    let from_v = |v: usize| (v + root) % g.p;
    // Accumulation buffer in vrank block order; own block at vrank.
    let mut acc = vec![0u8; nb * g.p];
    acc[vrank * nb..(vrank + 1) * nb].copy_from_slice(&mine);
    let acc = b.buf(acc);
    let out = b.buf(vec![0u8; nb * g.p]);
    b.out = out;
    if g.p == 1 || nb == 0 {
        if nb > 0 {
            b.round().steps.push(Step::Copy {
                src: acc,
                soff: 0,
                dst: out,
                doff: 0,
                len: nb,
            });
        }
        return b;
    }
    for k in 0..ceil_log2(g.p) {
        let mask = 1usize << k;
        let r = b.round();
        if vrank & mask != 0 {
            // My accumulated range is [vrank, min(vrank+mask, p)).
            let hi = (vrank + mask).min(g.p);
            r.steps.push(Step::Send {
                buf: acc,
                off: vrank * nb,
                len: (hi - vrank) * nb,
                dst: from_v(vrank - mask),
            });
            break;
        } else if vrank + mask < g.p {
            let hi = (vrank + 2 * mask).min(g.p);
            r.steps.push(Step::Recv {
                buf: acc,
                off: (vrank + mask) * nb,
                len: (hi - vrank - mask) * nb,
                src: from_v(vrank + mask),
            });
        }
    }
    if vrank == 0 {
        // Root: permute vrank blocks into communicator-rank order.
        let r = b.round();
        for v in 0..g.p {
            r.steps.push(Step::Copy {
                src: acc,
                soff: v * nb,
                dst: out,
                doff: from_v(v) * nb,
                len: nb,
            });
        }
    }
    b
}

/// Ialltoall: pairwise exchange — p−1 rounds with partner offsets
/// 1..p−1, plus the local block copied upfront.
fn compile_alltoall(g: &Geo, send: Vec<u8>) -> Build {
    let nb = send.len() / g.p;
    let mut b = Build::new();
    let sbuf = b.buf(send);
    let out = b.buf(vec![0u8; nb * g.p]);
    b.out = out;
    if nb == 0 {
        return b;
    }
    b.round().steps.push(Step::Copy {
        src: sbuf,
        soff: g.me * nb,
        dst: out,
        doff: g.me * nb,
        len: nb,
    });
    for off in 1..g.p {
        let dst = (g.me + off) % g.p;
        let src = (g.me + g.p - off) % g.p;
        let r = b.round();
        r.steps.push(Step::Send {
            buf: sbuf,
            off: dst * nb,
            len: nb,
            dst,
        });
        r.steps.push(Step::Recv {
            buf: out,
            off: src * nb,
            len: nb,
            src,
        });
    }
    b
}

/// Iallreduce: recursive doubling for small power-of-two communicators,
/// binomial reduce + binomial bcast for small non-power-of-two ones, and
/// a ring (reduce-scatter + allgather) above the recursive-doubling
/// threshold — mirroring the blocking selection.
fn compile_allreduce(g: &Geo, mine: Vec<u8>, tuning: &CollTuning, elem: usize) -> Build {
    let n = mine.len();
    if g.p == 1 || n == 0 {
        let mut b = Build::new();
        b.out = b.buf(mine);
        return b;
    }
    let small = n <= tuning.allreduce_rd_max;
    if small && g.p.is_power_of_two() {
        compile_allreduce_rd(g, mine)
    } else if small || !tuning.allreduce_ring_above_rd {
        compile_allreduce_redbcast(g, mine)
    } else {
        compile_allreduce_ring(g, mine, elem)
    }
}

/// Recursive doubling (p a power of two): log₂ p exchange rounds, each
/// followed by a combine of the partner's contribution.
fn compile_allreduce_rd(g: &Geo, mine: Vec<u8>) -> Build {
    let n = mine.len();
    let mut b = Build::new();
    let acc = b.buf(mine);
    let tmp = b.buf(vec![0u8; n]);
    b.out = acc;
    let k = ceil_log2(g.p);
    for i in 0..k {
        let partner = g.me ^ (1usize << i);
        let r = b.round();
        if i > 0 {
            r.steps.push(Step::Reduce {
                src: tmp,
                soff: 0,
                dst: acc,
                doff: 0,
                len: n,
            });
        }
        r.steps.push(Step::Send {
            buf: acc,
            off: 0,
            len: n,
            dst: partner,
        });
        r.steps.push(Step::Recv {
            buf: tmp,
            off: 0,
            len: n,
            src: partner,
        });
    }
    // Final combine of the last round's receive.
    b.round().steps.push(Step::Reduce {
        src: tmp,
        soff: 0,
        dst: acc,
        doff: 0,
        len: n,
    });
    b
}

/// Binomial reduce to comm rank 0, then binomial bcast back out (any p).
fn compile_allreduce_redbcast(g: &Geo, mine: Vec<u8>) -> Build {
    let n = mine.len();
    let mut b = Build::new();
    let acc = b.buf(mine);
    let tmp = b.buf(vec![0u8; n]);
    b.out = acc;
    let k = ceil_log2(g.p);
    // Fan-in: rank `me` receives in rounds below its lowest set bit, then
    // sends once and falls silent.
    let mut sent = false;
    let mut pending_reduce = false;
    for i in 0..k {
        let mask = 1usize << i;
        let r = b.round();
        if pending_reduce {
            r.steps.push(Step::Reduce {
                src: tmp,
                soff: 0,
                dst: acc,
                doff: 0,
                len: n,
            });
            pending_reduce = false;
        }
        if sent {
            continue;
        }
        if g.me & mask != 0 {
            r.steps.push(Step::Send {
                buf: acc,
                off: 0,
                len: n,
                dst: g.me - mask,
            });
            sent = true;
        } else if g.me + mask < g.p {
            r.steps.push(Step::Recv {
                buf: tmp,
                off: 0,
                len: n,
                src: g.me + mask,
            });
            pending_reduce = true;
        }
    }
    // Every rank adds this round even when it has nothing to fold:
    // round indices double as tag offsets, so all members must agree on
    // the round count at every point of the schedule.
    {
        let r = b.round();
        if pending_reduce {
            r.steps.push(Step::Reduce {
                src: tmp,
                soff: 0,
                dst: acc,
                doff: 0,
                len: n,
            });
        }
    }
    // Fan-out: doubling binomial bcast from rank 0.
    for i in 0..k {
        let mask = 1usize << i;
        let r = b.round();
        if g.me < mask {
            if g.me + mask < g.p {
                r.steps.push(Step::Send {
                    buf: acc,
                    off: 0,
                    len: n,
                    dst: g.me + mask,
                });
            }
        } else if g.me < 2 * mask {
            r.steps.push(Step::Recv {
                buf: acc,
                off: 0,
                len: n,
                src: g.me - mask,
            });
        }
    }
    b
}

/// Ring allreduce: a reduce-scatter ring (p−1 rounds) leaves each rank
/// owning one fully-reduced block, then a ring allgather (p−1 rounds)
/// circulates the owned blocks. Handles any p and uneven blocks.
fn compile_allreduce_ring(g: &Geo, mine: Vec<u8>, elem: usize) -> Build {
    let n = mine.len();
    let mut b = Build::new();
    let acc = b.buf(mine);
    let bs = (n / elem).div_ceil(g.p) * elem;
    let tmp = b.buf(vec![0u8; bs]);
    b.out = acc;
    let right = (g.me + 1) % g.p;
    let left = (g.me + g.p - 1) % g.p;
    // Reduce-scatter: in round r, send block (me−r) (just combined, for
    // r ≥ 1) and receive block (me−r−1) into tmp.
    for step in 0..g.p - 1 {
        let send_block = (g.me + g.p - step) % g.p;
        let recv_block = (g.me + g.p - step - 1) % g.p;
        let (slo, shi) = elem_block_range(n, elem, g.p, send_block);
        let (rlo, rhi) = elem_block_range(n, elem, g.p, recv_block);
        let r = b.round();
        if step > 0 && shi > slo {
            r.steps.push(Step::Reduce {
                src: tmp,
                soff: 0,
                dst: acc,
                doff: slo,
                len: shi - slo,
            });
        }
        if shi > slo {
            r.steps.push(Step::Send {
                buf: acc,
                off: slo,
                len: shi - slo,
                dst: right,
            });
        }
        if rhi > rlo {
            r.steps.push(Step::Recv {
                buf: tmp,
                off: 0,
                len: rhi - rlo,
                src: left,
            });
        }
    }
    // Fold the final receive: rank me now owns block (me+1). The round
    // exists on every rank (round indices double as tag offsets) even if
    // this rank's owned block is empty.
    let owned = (g.me + 1) % g.p;
    let (olo, ohi) = elem_block_range(n, elem, g.p, owned);
    {
        let r = b.round();
        if ohi > olo {
            r.steps.push(Step::Reduce {
                src: tmp,
                soff: 0,
                dst: acc,
                doff: olo,
                len: ohi - olo,
            });
        }
    }
    // Allgather ring of the owned blocks.
    for step in 0..g.p - 1 {
        let send_block = (g.me + 1 + g.p - step) % g.p;
        let recv_block = (g.me + g.p - step) % g.p;
        let (slo, shi) = elem_block_range(n, elem, g.p, send_block);
        let (rlo, rhi) = elem_block_range(n, elem, g.p, recv_block);
        let r = b.round();
        if shi > slo {
            r.steps.push(Step::Send {
                buf: acc,
                off: slo,
                len: shi - slo,
                dst: right,
            });
        }
        if rhi > rlo {
            r.steps.push(Step::Recv {
                buf: acc,
                off: rlo,
                len: rhi - rlo,
                src: left,
            });
        }
    }
    b
}

/// Which collective to compile (payloads are packed bytes).
pub(crate) enum IcollKind {
    Barrier,
    Bcast {
        data: Vec<u8>,
        root: usize,
    },
    Allreduce {
        mine: Vec<u8>,
        op: ReduceOp,
        dt: Datatype,
    },
    Allgather {
        mine: Vec<u8>,
    },
    Gather {
        mine: Vec<u8>,
        root: usize,
    },
    Alltoall {
        send: Vec<u8>,
    },
}

impl IcollKind {
    pub(crate) fn name(&self) -> &'static str {
        match self {
            IcollKind::Barrier => "ibarrier",
            IcollKind::Bcast { .. } => "ibcast",
            IcollKind::Allreduce { .. } => "iallreduce",
            IcollKind::Allgather { .. } => "iallgather",
            IcollKind::Gather { .. } => "igather",
            IcollKind::Alltoall { .. } => "ialltoall",
        }
    }
}

/// Compile `kind` into a schedule and fire its first round. Must be
/// called with the communicator's collective instance already begun (the
/// id labels the schedule's traffic end-to-end).
pub(crate) fn compile(
    mpi: &mut Mpi,
    comm: CommHandle,
    kind: IcollKind,
    seq: u64,
) -> MpiResult<Schedule> {
    let (ctx, ranks, me) = {
        let info = mpi.info(comm)?;
        (
            info.coll_context(),
            info.group.ranks().to_vec(),
            info.my_rank,
        )
    };
    let g = Geo { me, p: ranks.len() };
    let profile = *mpi.profile();
    let tuning = profile.coll;
    let reduce_per_byte_ns = profile.reduce_per_byte_ns;
    let mut perhop = VDur::from_nanos(tuning.perhop_ns);
    let name = kind.name();
    let (build, red) = match kind {
        IcollKind::Barrier => (compile_barrier(&g), None),
        IcollKind::Bcast { data, root } => {
            perhop += VDur::from_nanos(tuning.bcast_perhop_extra_ns);
            (compile_bcast(&g, data, root, &tuning), None)
        }
        IcollKind::Allreduce { mine, op, dt } => {
            perhop += VDur::from_nanos(tuning.allreduce_perhop_extra_ns);
            let elem = dt.base_type().size();
            (compile_allreduce(&g, mine, &tuning, elem), Some((op, dt)))
        }
        IcollKind::Allgather { mine } => (compile_allgather(&g, mine), None),
        IcollKind::Gather { mine, root } => (compile_gather(&g, mine, root), None),
        IcollKind::Alltoall { send } => (compile_alltoall(&g, send), None),
    };
    if build.rounds.len() >= NBC_ROUNDS_MAX {
        return Err(MpiError::ProtocolError(
            "non-blocking schedule exceeds the round cap",
        ));
    }
    let eng = mpi.engine_mut();
    let now = eng.now();
    let mut sched = Schedule {
        ctx,
        coll_id: eng.current_collective(),
        name,
        ranks,
        seq,
        red,
        perhop,
        reduce_per_byte_ns,
        bufs: build.bufs,
        rounds: build.rounds,
        out: build.out,
        next_round: 0,
        inflight: Vec::new(),
        inflight_done: 0,
        timeline: now,
        posted_at: now,
    };
    obs::count("coll.nb.posted", 1);
    obs::count("coll.nb.rounds", sched.rounds.len() as u64);
    // Fire round 0 immediately: receives are pre-posted and first-round
    // sends leave at post time, so wire time overlaps whatever the
    // application computes before Wait.
    sched.advance(eng)?;
    Ok(sched)
}
