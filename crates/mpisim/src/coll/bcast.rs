//! Broadcast algorithms.
//!
//! * `binomial` — ⌈log₂ p⌉ hops; the classic small-message algorithm.
//! * `scatter_allgather` — van de Geijn: binomial scatter of 1/p blocks
//!   followed by a ring allgather; bandwidth-optimal for large payloads.
//! * `chain` — pipelined chain through the ranks in communicator order;
//!   Open MPI's large-message default, whose long critical path on a
//!   multi-node communicator is a key ingredient of Figure 15.
//! * `two_level` — MVAPICH2-style hierarchical: network stage among node
//!   leaders, shared-memory stage within each node.

use super::{cc, check_root, cisend, crecv, csend, hierarchy, spans_nodes, sub_cc, tags, Cc};
use crate::comm::CommHandle;
use crate::datatype::Datatype;
use crate::error::MpiResult;
use crate::mpi::Mpi;
use vtime::VDur;

/// Entry point: algorithm selection per the library profile.
pub fn bcast(
    mpi: &mut Mpi,
    buf: &mut [u8],
    count: usize,
    dt: &Datatype,
    root: usize,
    comm: CommHandle,
) -> MpiResult<()> {
    let mut c = cc(mpi, comm)?;
    check_root(&c, root)?;
    // Bcast-specific scheduling overhead (profile tuning).
    c.perhop += vtime::VDur::from_nanos(mpi.profile().coll.bcast_perhop_extra_ns);
    let nbytes = dt.size() * count;
    if c.size() == 1 || nbytes == 0 {
        return Ok(());
    }

    // Move to the packed-bytes domain.
    let contiguous = dt.is_contiguous();
    let mut payload: Vec<u8> = if c.me == root {
        let p = dt.pack(buf, count)?;
        if !contiguous {
            let per_byte = mpi.profile().pack_per_byte_ns;
            mpi.clock_mut()
                .charge(VDur::from_nanos(p.len() as f64 * per_byte));
        }
        p
    } else {
        vec![0u8; nbytes]
    };

    let tuning = mpi.profile().coll;
    let begin = mpi.now();
    let algo = if tuning.hierarchical && spans_nodes(mpi, &c) {
        two_level(mpi, &c, &mut payload, root, tuning.bcast_binomial_max)?;
        obs::count("coll.bcast.algo.two_level", 1);
        "two_level"
    } else if nbytes <= tuning.bcast_binomial_max {
        binomial(mpi, &c, &mut payload, root, tags::BCAST)?;
        obs::count("coll.bcast.algo.binomial", 1);
        "binomial"
    } else if tuning.hierarchical {
        // MVAPICH2 on a single node: bandwidth-optimal scatter+allgather.
        scatter_allgather(mpi, &c, &mut payload, root, tags::BCAST)?;
        obs::count("coll.bcast.algo.scatter_allgather", 1);
        "scatter_allgather"
    } else {
        // Open MPI's tuned module: segmented (pipelined) binomial tree.
        binomial_segmented(
            mpi,
            &c,
            &mut payload,
            root,
            tuning.bcast_segment,
            tags::BCAST,
        )?;
        obs::count("coll.bcast.algo.binomial_segmented", 1);
        "binomial_segmented"
    };

    if c.me != root {
        dt.unpack(&payload, count, buf)?;
        if !contiguous {
            let per_byte = mpi.profile().pack_per_byte_ns;
            mpi.clock_mut()
                .charge(VDur::from_nanos(payload.len() as f64 * per_byte));
        }
    }
    if obs::tracing_enabled() {
        obs::span(
            "bcast",
            "coll",
            begin,
            mpi.now(),
            vec![
                ("algo", obs::ArgValue::Str(algo)),
                ("bytes", obs::ArgValue::U64(nbytes as u64)),
                ("root", obs::ArgValue::U64(root as u64)),
                ("ranks", obs::ArgValue::U64(c.size() as u64)),
            ],
        );
    }
    Ok(())
}

/// Binomial-tree broadcast over the whole sub-communicator `c`.
pub(super) fn binomial(
    mpi: &mut Mpi,
    c: &Cc,
    payload: &mut [u8],
    root: usize,
    tag: i32,
) -> MpiResult<()> {
    let p = c.size();
    let vrank = (c.me + p - root) % p;
    let real = |v: usize| (v + root) % p;

    // Receive phase: the lowest set bit of vrank identifies the parent.
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask != 0 {
            let parent = vrank - mask;
            let got = crecv(mpi, c, payload.len(), real(parent), tag)?;
            payload[..got.len()].copy_from_slice(&got);
            break;
        }
        mask <<= 1;
    }
    // Send phase: peel off bits below the receive mask.
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < p {
            csend(mpi, c, payload, real(vrank + mask), tag)?;
        }
        mask >>= 1;
    }
    Ok(())
}

/// Block boundaries for splitting `n` bytes into `p` near-equal blocks.
fn block_range(n: usize, p: usize, i: usize) -> (usize, usize) {
    let bs = n.div_ceil(p);
    let lo = (bs * i).min(n);
    let hi = (bs * (i + 1)).min(n);
    (lo, hi)
}

/// Van-de-Geijn broadcast: binomial scatter of 1/p blocks, then a ring
/// allgather. Every rank ends with the full payload.
pub(super) fn scatter_allgather(
    mpi: &mut Mpi,
    c: &Cc,
    payload: &mut [u8],
    root: usize,
    tag: i32,
) -> MpiResult<()> {
    let p = c.size();
    let n = payload.len();
    let vrank = (c.me + p - root) % p;
    let real = |v: usize| (v + root) % p;
    let span = |lo_blk: usize, hi_blk: usize| -> (usize, usize) {
        (block_range(n, p, lo_blk).0, block_range(n, p, hi_blk - 1).1)
    };

    // --- Binomial scatter: after this phase, vrank v holds block v. ---
    // Receive phase: on receipt at distance `mask`, this rank temporarily
    // owns blocks [vrank, min(vrank+mask, p)).
    let mut mask = 1usize;
    let mut owned_hi = p; // root owns everything
    while mask < p {
        if vrank & mask != 0 {
            let parent = vrank - mask;
            let (lo, hi) = span(vrank, (vrank + mask).min(p));
            let got = crecv(mpi, c, hi - lo, real(parent), tag)?;
            payload[lo..lo + got.len()].copy_from_slice(&got);
            owned_hi = (vrank + mask).min(p);
            break;
        }
        mask <<= 1;
    }
    // Send phase: hand the upper half of the owned range to the child.
    // (For the root the receive loop exits with mask = 2^⌈log₂ p⌉.)
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < owned_hi {
            let child_lo = vrank + mask;
            let child_hi = owned_hi.min(child_lo + mask);
            let (lo, hi) = span(child_lo, child_hi.max(child_lo + 1));
            if hi > lo {
                let frag = payload[lo..hi].to_vec();
                csend(mpi, c, &frag, real(child_lo), tag)?;
            } else {
                // Degenerate tiny payload: still synchronize the child.
                csend(mpi, c, &[], real(child_lo), tag)?;
            }
            owned_hi = child_lo;
        }
        mask >>= 1;
    }

    // --- Ring allgather of the p blocks (block ids are vranks). ---
    let next = real((vrank + 1) % p);
    let prev = real((vrank + p - 1) % p);
    let mut have = vrank; // block id we forward next
    for _ in 0..p - 1 {
        let (lo, hi) = block_range(n, p, have);
        let frag = payload[lo..hi].to_vec();
        let sreq = cisend(mpi, c, &frag, next, tag + 1)?;
        let incoming = (have + p - 1) % p;
        let (ilo, ihi) = block_range(n, p, incoming);
        let got = crecv(mpi, c, ihi - ilo, prev, tag + 1)?;
        payload[ilo..ilo + got.len()].copy_from_slice(&got);
        mpi.engine_mut().wait(sreq)?;
        have = incoming;
    }
    Ok(())
}

/// Segmented binomial broadcast: the binomial tree is applied
/// segment-by-segment, so an inner node forwards segment `s` to its
/// children while receiving segment `s+1` from its parent (eager sends
/// make the overlap real). Open MPI's tuned large-message behaviour.
pub(super) fn binomial_segmented(
    mpi: &mut Mpi,
    c: &Cc,
    payload: &mut [u8],
    root: usize,
    segment: usize,
    tag: i32,
) -> MpiResult<()> {
    let n = payload.len();
    let segment = segment.max(1);
    let mut lo = 0usize;
    while lo < n {
        let hi = (lo + segment).min(n);
        binomial(mpi, c, &mut payload[lo..hi], root, tag)?;
        lo = hi;
    }
    Ok(())
}

/// Pipelined chain broadcast: payload flows root → root+1 → … in
/// `segment`-byte pieces; downstream hops overlap with upstream ones.
/// (Kept for the ablation benches; the Open MPI profile uses the
/// segmented binomial above.)
#[allow(dead_code)]
pub(super) fn chain(
    mpi: &mut Mpi,
    c: &Cc,
    payload: &mut [u8],
    root: usize,
    segment: usize,
    tag: i32,
) -> MpiResult<()> {
    let p = c.size();
    let n = payload.len();
    let vrank = (c.me + p - root) % p;
    let real = |v: usize| (v + root) % p;
    let segment = segment.max(1);
    let nseg = n.div_ceil(segment);
    let mut send_reqs = Vec::new();
    for s in 0..nseg {
        let lo = s * segment;
        let hi = (lo + segment).min(n);
        if vrank > 0 {
            let got = crecv(mpi, c, hi - lo, real(vrank - 1), tag)?;
            payload[lo..lo + got.len()].copy_from_slice(&got);
        }
        if vrank + 1 < p {
            let frag = payload[lo..hi].to_vec();
            send_reqs.push(cisend(mpi, c, &frag, real(vrank + 1), tag)?);
        }
    }
    for r in send_reqs {
        mpi.engine_mut().wait(r)?;
    }
    Ok(())
}

/// MVAPICH2-style two-level broadcast.
pub(super) fn two_level(
    mpi: &mut Mpi,
    c: &Cc,
    payload: &mut [u8],
    root: usize,
    binomial_max: usize,
) -> MpiResult<()> {
    let h = hierarchy(mpi, c);
    // The leader of the root's node starts the network stage.
    let topo = *mpi.topology();
    let root_node = topo.node_of(c.world(root));
    let root_leader = *h
        .leaders
        .iter()
        .find(|&&l| topo.node_of(c.world(l)) == root_node)
        .expect("root's node has a leader");

    // Stage A: root hands the payload to its node leader if needed.
    if root != root_leader {
        if c.me == root {
            csend(mpi, c, payload, root_leader, tags::BCAST + 7)?;
        } else if c.me == root_leader {
            let got = crecv(mpi, c, payload.len(), root, tags::BCAST + 7)?;
            payload[..got.len()].copy_from_slice(&got);
        }
    }

    // Stage B: broadcast among node leaders (network stage).
    if h.leaders.len() > 1 {
        if let Some((lc, _)) = sub_cc(c, &h.leaders) {
            let lroot = h
                .leaders
                .iter()
                .position(|&l| l == root_leader)
                .expect("root leader is a leader");
            if payload.len() <= binomial_max {
                binomial(mpi, &lc, payload, lroot, tags::BCAST + 8)?;
            } else {
                scatter_allgather(mpi, &lc, payload, lroot, tags::BCAST + 8)?;
            }
        }
    }

    // Stage C: shared-memory broadcast within each node, rooted at the
    // node leader. Binomial for latency-bound payloads, scatter+allgather
    // for bandwidth-bound ones (the shm-slot pipelined path).
    if h.my_node.len() > 1 {
        if let Some((nc, _)) = sub_cc(c, &h.my_node) {
            if payload.len() <= binomial_max {
                binomial(mpi, &nc, payload, 0, tags::BCAST + 12)?;
            } else {
                scatter_allgather(mpi, &nc, payload, 0, tags::BCAST + 12)?;
            }
        }
    }
    Ok(())
}
