//! One-sided support machinery: the NIC registration (pin-down) cache.
//!
//! Zero-copy RDMA requires the transferred region to be registered
//! (pinned) with the NIC — an expensive kernel round trip ("Design and
//! Implementation of MPICH2 over InfiniBand with RDMA Support" measures
//! it dominating small-message one-sided cost when uncached). Real
//! libraries amortize it with a pin-down cache keyed by buffer identity:
//! the first transfer from a region pays registration, later ones hit the
//! cache, and an LRU bound models the pinned-memory budget.
//!
//! The cache is pure bookkeeping — the caller charges virtual time for
//! misses and emits the `rma.reg.{hit,miss,evict}` pvars — so it is
//! directly unit-testable.

/// Outcome of a registration-cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegLookup {
    /// The region is already pinned; the transfer proceeds at zero
    /// registration cost.
    Hit,
    /// The region had to be registered. `evicted` reports whether an LRU
    /// entry was unpinned to make room.
    Miss { evicted: bool },
}

/// LRU registration cache keyed by buffer identity.
///
/// An entry covers a whole buffer, not a byte range: like MVAPICH2's
/// pin-down cache, re-registering the same buffer with a larger extent
/// upgrades the existing entry in place (counted as a miss — the extra
/// pages still get pinned).
#[derive(Debug)]
pub struct RegCache {
    cap: usize,
    /// `(key, pinned_bytes)`, least-recently-used first.
    entries: Vec<(u64, usize)>,
}

impl RegCache {
    /// A cache holding at most `cap` pinned regions.
    pub fn new(cap: usize) -> RegCache {
        RegCache {
            cap: cap.max(1),
            entries: Vec::new(),
        }
    }

    /// Number of regions currently pinned.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is pinned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes currently pinned.
    pub fn pinned_bytes(&self) -> usize {
        self.entries.iter().map(|&(_, b)| b).sum()
    }

    /// Look up (and touch) the registration for buffer `key` covering
    /// `bytes`. A hit requires the pinned extent to cover the request;
    /// anything else is a miss that (re)pins `bytes`.
    pub fn lookup(&mut self, key: u64, bytes: usize) -> RegLookup {
        if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
            let (_, pinned) = self.entries.remove(pos);
            if pinned >= bytes {
                self.entries.push((key, pinned));
                return RegLookup::Hit;
            }
            // Extent grew: re-register in place (no eviction needed, the
            // slot is already ours).
            self.entries.push((key, bytes));
            return RegLookup::Miss { evicted: false };
        }
        let evicted = if self.entries.len() >= self.cap {
            self.entries.remove(0);
            true
        } else {
            false
        };
        self.entries.push((key, bytes));
        RegLookup::Miss { evicted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_use_misses_then_hits() {
        let mut c = RegCache::new(4);
        assert_eq!(c.lookup(1, 100), RegLookup::Miss { evicted: false });
        assert_eq!(c.lookup(1, 100), RegLookup::Hit);
        assert_eq!(c.lookup(1, 50), RegLookup::Hit, "smaller extent is covered");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn growing_extent_repins() {
        let mut c = RegCache::new(4);
        c.lookup(1, 100);
        assert_eq!(c.lookup(1, 200), RegLookup::Miss { evicted: false });
        assert_eq!(c.pinned_bytes(), 200);
        assert_eq!(c.lookup(1, 200), RegLookup::Hit);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut c = RegCache::new(2);
        c.lookup(1, 10);
        c.lookup(2, 10);
        // Touch 1 so 2 becomes LRU.
        assert_eq!(c.lookup(1, 10), RegLookup::Hit);
        assert_eq!(c.lookup(3, 10), RegLookup::Miss { evicted: true });
        assert_eq!(c.lookup(1, 10), RegLookup::Hit, "recently used survives");
        assert_eq!(
            c.lookup(2, 10),
            RegLookup::Miss { evicted: true },
            "LRU was evicted"
        );
    }

    #[test]
    fn capacity_is_at_least_one() {
        let mut c = RegCache::new(0);
        assert_eq!(c.lookup(1, 10), RegLookup::Miss { evicted: false });
        assert_eq!(c.lookup(1, 10), RegLookup::Hit);
    }
}
