//! Reduction operations (MPI_Op) over the Java basic types.
//!
//! `apply` combines `src` into `acc` element-wise: `acc[i] = acc[i] OP
//! src[i]`, interpreting both byte slices as little-endian arrays of the
//! datatype's base type (the simulated cluster is homogeneous x86, so the
//! wire format is native little-endian throughout).

use crate::datatype::{BasicType, Datatype};
use crate::error::{MpiError, MpiResult};

/// The predefined reduction operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// MPI_SUM.
    Sum,
    /// MPI_PROD.
    Prod,
    /// MPI_MIN.
    Min,
    /// MPI_MAX.
    Max,
    /// MPI_BAND (integer types only).
    Band,
    /// MPI_BOR (integer types only).
    Bor,
    /// MPI_BXOR (integer types only).
    Bxor,
    /// MPI_LAND (nonzero = true; integer types only).
    Land,
    /// MPI_LOR.
    Lor,
}

impl ReduceOp {
    /// Display name used in error messages.
    pub const fn name(self) -> &'static str {
        match self {
            ReduceOp::Sum => "MPI_SUM",
            ReduceOp::Prod => "MPI_PROD",
            ReduceOp::Min => "MPI_MIN",
            ReduceOp::Max => "MPI_MAX",
            ReduceOp::Band => "MPI_BAND",
            ReduceOp::Bor => "MPI_BOR",
            ReduceOp::Bxor => "MPI_BXOR",
            ReduceOp::Land => "MPI_LAND",
            ReduceOp::Lor => "MPI_LOR",
        }
    }

    /// All predefined ops are commutative (we do not model user ops).
    pub const fn is_commutative(self) -> bool {
        true
    }

    fn requires_integer(self) -> bool {
        matches!(
            self,
            ReduceOp::Band | ReduceOp::Bor | ReduceOp::Bxor | ReduceOp::Land | ReduceOp::Lor
        )
    }
}

macro_rules! combine_int {
    ($ty:ty, $op:expr, $acc:expr, $src:expr) => {{
        const W: usize = std::mem::size_of::<$ty>();
        for (a, s) in $acc.chunks_exact_mut(W).zip($src.chunks_exact(W)) {
            let x = <$ty>::from_le_bytes(a.try_into().unwrap());
            let y = <$ty>::from_le_bytes(s.try_into().unwrap());
            let r: $ty = match $op {
                ReduceOp::Sum => x.wrapping_add(y),
                ReduceOp::Prod => x.wrapping_mul(y),
                ReduceOp::Min => x.min(y),
                ReduceOp::Max => x.max(y),
                ReduceOp::Band => x & y,
                ReduceOp::Bor => x | y,
                ReduceOp::Bxor => x ^ y,
                ReduceOp::Land => ((x != 0) && (y != 0)) as $ty,
                ReduceOp::Lor => ((x != 0) || (y != 0)) as $ty,
            };
            a.copy_from_slice(&r.to_le_bytes());
        }
    }};
}

macro_rules! combine_float {
    ($ty:ty, $op:expr, $acc:expr, $src:expr) => {{
        const W: usize = std::mem::size_of::<$ty>();
        for (a, s) in $acc.chunks_exact_mut(W).zip($src.chunks_exact(W)) {
            let x = <$ty>::from_le_bytes(a.try_into().unwrap());
            let y = <$ty>::from_le_bytes(s.try_into().unwrap());
            let r: $ty = match $op {
                ReduceOp::Sum => x + y,
                ReduceOp::Prod => x * y,
                ReduceOp::Min => x.min(y),
                ReduceOp::Max => x.max(y),
                _ => unreachable!("checked before dispatch"),
            };
            a.copy_from_slice(&r.to_le_bytes());
        }
    }};
}

/// `acc[i] = acc[i] OP src[i]` over `acc.len() / elem_size` elements.
///
/// Both slices must have equal length, a multiple of the base type size.
pub fn apply(op: ReduceOp, dt: &Datatype, acc: &mut [u8], src: &[u8]) -> MpiResult<()> {
    if acc.len() != src.len() {
        return Err(MpiError::BufferTooSmall {
            needed: acc.len(),
            available: src.len(),
        });
    }
    let base = dt.base_type();
    if op.requires_integer() && !base.is_integer() {
        return Err(MpiError::InvalidOpForType {
            op: op.name(),
            datatype: base.name(),
        });
    }
    if acc.len() % base.size() != 0 {
        return Err(MpiError::InvalidCount {
            count: acc.len() as i32,
        });
    }
    match base {
        BasicType::Byte | BasicType::Boolean => combine_int!(u8, op, acc, src),
        BasicType::Char => combine_int!(u16, op, acc, src),
        BasicType::Short => combine_int!(i16, op, acc, src),
        BasicType::Int => combine_int!(i32, op, acc, src),
        BasicType::Long => combine_int!(i64, op, acc, src),
        BasicType::Float => combine_float!(f32, op, acc, src),
        BasicType::Double => combine_float!(f64, op, acc, src),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::{DOUBLE, INT};

    fn ints(v: &[i32]) -> Vec<u8> {
        v.iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    fn to_ints(b: &[u8]) -> Vec<i32> {
        b.chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn sum_ints() {
        let mut acc = ints(&[1, 2, 3]);
        apply(ReduceOp::Sum, &INT, &mut acc, &ints(&[10, 20, 30])).unwrap();
        assert_eq!(to_ints(&acc), vec![11, 22, 33]);
    }

    #[test]
    fn min_max_prod() {
        let mut acc = ints(&[5, -3, 2]);
        apply(ReduceOp::Max, &INT, &mut acc, &ints(&[1, 7, 2])).unwrap();
        assert_eq!(to_ints(&acc), vec![5, 7, 2]);
        apply(ReduceOp::Min, &INT, &mut acc, &ints(&[2, -9, 3])).unwrap();
        assert_eq!(to_ints(&acc), vec![2, -9, 2]);
        apply(ReduceOp::Prod, &INT, &mut acc, &ints(&[3, 2, -1])).unwrap();
        assert_eq!(to_ints(&acc), vec![6, -18, -2]);
    }

    #[test]
    fn bitwise_and_logical() {
        let mut acc = ints(&[0b1100, 0, 5]);
        apply(ReduceOp::Band, &INT, &mut acc, &ints(&[0b1010, 1, 5])).unwrap();
        assert_eq!(to_ints(&acc), vec![0b1000, 0, 5]);
        apply(ReduceOp::Lor, &INT, &mut acc, &ints(&[0, 0, 0])).unwrap();
        assert_eq!(to_ints(&acc), vec![1, 0, 1]);
        apply(ReduceOp::Land, &INT, &mut acc, &ints(&[1, 1, 0])).unwrap();
        assert_eq!(to_ints(&acc), vec![1, 0, 0]);
        apply(ReduceOp::Bxor, &INT, &mut acc, &ints(&[3, 0, 1])).unwrap();
        assert_eq!(to_ints(&acc), vec![2, 0, 1]);
        apply(ReduceOp::Bor, &INT, &mut acc, &ints(&[4, 4, 4])).unwrap();
        assert_eq!(to_ints(&acc), vec![6, 4, 5]);
    }

    #[test]
    fn doubles_sum() {
        let mut acc: Vec<u8> = [1.5f64, 2.5].iter().flat_map(|x| x.to_le_bytes()).collect();
        let src: Vec<u8> = [0.25f64, 0.75]
            .iter()
            .flat_map(|x| x.to_le_bytes())
            .collect();
        apply(ReduceOp::Sum, &DOUBLE, &mut acc, &src).unwrap();
        let out: Vec<f64> = acc
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(out, vec![1.75, 3.25]);
    }

    #[test]
    fn bitwise_on_float_rejected() {
        let mut acc = vec![0u8; 8];
        let src = vec![0u8; 8];
        assert!(matches!(
            apply(ReduceOp::Band, &DOUBLE, &mut acc, &src),
            Err(MpiError::InvalidOpForType { .. })
        ));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut acc = vec![0u8; 8];
        let src = vec![0u8; 4];
        assert!(apply(ReduceOp::Sum, &INT, &mut acc, &src).is_err());
    }

    #[test]
    fn misaligned_length_rejected() {
        let mut acc = vec![0u8; 6];
        let src = vec![0u8; 6];
        assert!(matches!(
            apply(ReduceOp::Sum, &INT, &mut acc, &src),
            Err(MpiError::InvalidCount { .. })
        ));
    }

    #[test]
    fn wrapping_sum_does_not_panic() {
        let mut acc = ints(&[i32::MAX]);
        apply(ReduceOp::Sum, &INT, &mut acc, &ints(&[1])).unwrap();
        assert_eq!(to_ints(&acc), vec![i32::MIN]);
    }
}
