//! Groups and communicators.
//!
//! A [`Group`] is an ordered set of world ranks; a communicator is a group
//! plus a *context* — the integer stream id that isolates its traffic from
//! every other communicator's. Point-to-point traffic uses context
//! `2 * base` and collective traffic `2 * base + 1`, mirroring how real
//! MPI implementations keep a communicator's collectives from matching
//! its user sends.

use crate::error::{MpiError, MpiResult};

/// An ordered set of distinct world ranks (MPI_Group).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    ranks: Vec<usize>,
}

impl Group {
    /// Build a group from world ranks. Ranks must be distinct.
    pub fn new(ranks: Vec<usize>) -> MpiResult<Group> {
        let mut seen = ranks.clone();
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Err(MpiError::InvalidGroup("duplicate ranks in group"));
        }
        Ok(Group { ranks })
    }

    /// The world ranks, in group order.
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// Number of members (MPI_Group_size).
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// Group rank of `world_rank`, if a member (MPI_Group_rank).
    pub fn rank_of(&self, world_rank: usize) -> Option<usize> {
        self.ranks.iter().position(|&r| r == world_rank)
    }

    /// World rank of group member `group_rank`.
    pub fn world_rank(&self, group_rank: usize) -> MpiResult<usize> {
        self.ranks
            .get(group_rank)
            .copied()
            .ok_or(MpiError::InvalidRank {
                rank: group_rank as i32,
                comm_size: self.size(),
            })
    }

    /// Keep the listed members, in the listed order (MPI_Group_incl).
    pub fn incl(&self, members: &[usize]) -> MpiResult<Group> {
        let mut out = Vec::with_capacity(members.len());
        for &m in members {
            out.push(self.world_rank(m)?);
        }
        Group::new(out)
    }

    /// Remove the listed members (MPI_Group_excl).
    pub fn excl(&self, members: &[usize]) -> MpiResult<Group> {
        for &m in members {
            if m >= self.size() {
                return Err(MpiError::InvalidRank {
                    rank: m as i32,
                    comm_size: self.size(),
                });
            }
        }
        let out = self
            .ranks
            .iter()
            .enumerate()
            .filter(|(i, _)| !members.contains(i))
            .map(|(_, &r)| r)
            .collect();
        Group::new(out)
    }

    /// Members of `self` followed by members of `other` not already
    /// present (MPI_Group_union).
    pub fn union(&self, other: &Group) -> Group {
        let mut out = self.ranks.clone();
        for &r in &other.ranks {
            if !out.contains(&r) {
                out.push(r);
            }
        }
        Group { ranks: out }
    }

    /// Members of `self` that are also in `other`, in `self` order
    /// (MPI_Group_intersection).
    pub fn intersection(&self, other: &Group) -> Group {
        Group {
            ranks: self
                .ranks
                .iter()
                .copied()
                .filter(|r| other.ranks.contains(r))
                .collect(),
        }
    }

    /// Members of `self` not in `other` (MPI_Group_difference).
    pub fn difference(&self, other: &Group) -> Group {
        Group {
            ranks: self
                .ranks
                .iter()
                .copied()
                .filter(|r| !other.ranks.contains(r))
                .collect(),
        }
    }

    /// Translate group ranks of `self` into group ranks of `other`
    /// (MPI_Group_translate_ranks); `None` where not a member.
    pub fn translate(&self, ranks: &[usize], other: &Group) -> MpiResult<Vec<Option<usize>>> {
        ranks
            .iter()
            .map(|&r| self.world_rank(r).map(|w| other.rank_of(w)))
            .collect()
    }
}

/// Handle to a communicator owned by an [`crate::Mpi`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CommHandle(pub(crate) usize);

/// MPI_COMM_WORLD: always handle 0.
pub const COMM_WORLD: CommHandle = CommHandle(0);

/// Internal communicator record.
#[derive(Debug, Clone)]
pub(crate) struct CommInfo {
    /// Base context id; pt2pt uses `2*base`, collectives `2*base + 1`.
    pub base_context: u32,
    pub group: Group,
    /// This process's rank within the communicator.
    pub my_rank: usize,
}

impl CommInfo {
    #[inline]
    pub fn pt2pt_context(&self) -> u32 {
        2 * self.base_context
    }

    #[inline]
    pub fn coll_context(&self) -> u32 {
        2 * self.base_context + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(v: &[usize]) -> Group {
        Group::new(v.to_vec()).unwrap()
    }

    #[test]
    fn group_basics() {
        let grp = g(&[4, 2, 7]);
        assert_eq!(grp.size(), 3);
        assert_eq!(grp.rank_of(2), Some(1));
        assert_eq!(grp.rank_of(3), None);
        assert_eq!(grp.world_rank(2).unwrap(), 7);
        assert!(grp.world_rank(3).is_err());
    }

    #[test]
    fn duplicates_rejected() {
        assert!(Group::new(vec![1, 2, 1]).is_err());
    }

    #[test]
    fn incl_excl() {
        let grp = g(&[10, 11, 12, 13]);
        assert_eq!(grp.incl(&[3, 0]).unwrap().ranks(), &[13, 10]);
        assert_eq!(grp.excl(&[1, 2]).unwrap().ranks(), &[10, 13]);
        assert!(grp.incl(&[9]).is_err());
        assert!(grp.excl(&[9]).is_err());
    }

    #[test]
    fn set_ops() {
        let a = g(&[0, 1, 2]);
        let b = g(&[2, 3]);
        assert_eq!(a.union(&b).ranks(), &[0, 1, 2, 3]);
        assert_eq!(a.intersection(&b).ranks(), &[2]);
        assert_eq!(a.difference(&b).ranks(), &[0, 1]);
    }

    #[test]
    fn translate_ranks() {
        let a = g(&[5, 6, 7]);
        let b = g(&[7, 5]);
        let t = a.translate(&[0, 1, 2], &b).unwrap();
        assert_eq!(t, vec![Some(1), None, Some(0)]);
    }

    #[test]
    fn contexts_are_disjoint_streams() {
        let c = CommInfo {
            base_context: 3,
            group: g(&[0, 1]),
            my_rank: 0,
        };
        assert_eq!(c.pt2pt_context(), 6);
        assert_eq!(c.coll_context(), 7);
        assert_ne!(c.pt2pt_context(), c.coll_context());
    }
}
