//! MPI datatypes: the Java basic types plus the derived constructors the
//! buffering layer exists to support (contiguous, vector, indexed).
//!
//! A datatype describes one *element*; communication calls take an element
//! `count`. Derived types are described by their **typemap**: the list of
//! `(byte offset, byte length)` contiguous segments one element occupies
//! in the user buffer, plus the element *extent* (the span from the start
//! of one element to the start of the next). Packing walks the typemap —
//! this is exactly what a native MPI implementation's pack engine does.

use crate::error::{MpiError, MpiResult};

/// The basic (primitive) Java datatypes MVAPICH2-J communicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BasicType {
    /// `byte` — 1 byte.
    Byte,
    /// `boolean` — 1 byte in the JVM's array representation.
    Boolean,
    /// `char` — UTF-16 code unit, 2 bytes.
    Char,
    /// `short` — 2 bytes.
    Short,
    /// `int` — 4 bytes.
    Int,
    /// `long` — 8 bytes.
    Long,
    /// `float` — 4 bytes.
    Float,
    /// `double` — 8 bytes.
    Double,
}

impl BasicType {
    /// Size of one element in bytes.
    #[inline]
    pub const fn size(self) -> usize {
        match self {
            BasicType::Byte | BasicType::Boolean => 1,
            BasicType::Char | BasicType::Short => 2,
            BasicType::Int | BasicType::Float => 4,
            BasicType::Long | BasicType::Double => 8,
        }
    }

    /// Display name used in error messages.
    pub const fn name(self) -> &'static str {
        match self {
            BasicType::Byte => "BYTE",
            BasicType::Boolean => "BOOLEAN",
            BasicType::Char => "CHAR",
            BasicType::Short => "SHORT",
            BasicType::Int => "INT",
            BasicType::Long => "LONG",
            BasicType::Float => "FLOAT",
            BasicType::Double => "DOUBLE",
        }
    }

    /// Whether this is an integer type (bitwise/logical reductions are
    /// only defined on these).
    pub const fn is_integer(self) -> bool {
        matches!(
            self,
            BasicType::Byte
                | BasicType::Boolean
                | BasicType::Char
                | BasicType::Short
                | BasicType::Int
                | BasicType::Long
        )
    }
}

/// An MPI datatype: a basic type or a derived layout over one.
#[derive(Debug, Clone, PartialEq)]
pub enum Datatype {
    /// A single primitive element.
    Basic(BasicType),
    /// `count` consecutive elements of `base` (MPI_Type_contiguous).
    Contiguous { count: usize, base: Box<Datatype> },
    /// `count` blocks of `blocklength` base elements, block `k` starting
    /// at base-element offset `k * stride` (MPI_Type_vector).
    Vector {
        count: usize,
        blocklength: usize,
        stride: usize,
        base: Box<Datatype>,
    },
    /// Explicit blocks: `(displacement, blocklength)` in base elements
    /// (MPI_Type_indexed).
    Indexed {
        blocks: Vec<(usize, usize)>,
        base: Box<Datatype>,
    },
}

/// Shorthands matching the constants the bindings export.
pub const BYTE: Datatype = Datatype::Basic(BasicType::Byte);
pub const BOOLEAN: Datatype = Datatype::Basic(BasicType::Boolean);
pub const CHAR: Datatype = Datatype::Basic(BasicType::Char);
pub const SHORT: Datatype = Datatype::Basic(BasicType::Short);
pub const INT: Datatype = Datatype::Basic(BasicType::Int);
pub const LONG: Datatype = Datatype::Basic(BasicType::Long);
pub const FLOAT: Datatype = Datatype::Basic(BasicType::Float);
pub const DOUBLE: Datatype = Datatype::Basic(BasicType::Double);

impl Datatype {
    /// MPI_Type_contiguous.
    pub fn contiguous(count: usize, base: Datatype) -> Datatype {
        Datatype::Contiguous {
            count,
            base: Box::new(base),
        }
    }

    /// MPI_Type_vector. `stride` is in base elements, like the standard.
    pub fn vector(
        count: usize,
        blocklength: usize,
        stride: usize,
        base: Datatype,
    ) -> MpiResult<Datatype> {
        if count > 0 && stride < blocklength && count > 1 {
            // Overlapping blocks are legal to *send* in MPI but make
            // receive semantics undefined; we reject them outright.
            return Err(MpiError::InvalidCount {
                count: stride as i32,
            });
        }
        Ok(Datatype::Vector {
            count,
            blocklength,
            stride,
            base: Box::new(base),
        })
    }

    /// MPI_Type_indexed with `(displacement, blocklength)` pairs in base
    /// elements. Displacements must be non-decreasing and non-overlapping.
    pub fn indexed(blocks: Vec<(usize, usize)>, base: Datatype) -> MpiResult<Datatype> {
        let mut prev_end = 0usize;
        for &(disp, len) in &blocks {
            if disp < prev_end {
                return Err(MpiError::InvalidGroup("indexed blocks overlap or decrease"));
            }
            prev_end = disp + len;
        }
        Ok(Datatype::Indexed {
            blocks,
            base: Box::new(base),
        })
    }

    /// True data bytes in one element (sum of the typemap segments).
    pub fn size(&self) -> usize {
        match self {
            Datatype::Basic(b) => b.size(),
            Datatype::Contiguous { count, base } => count * base.size(),
            Datatype::Vector {
                count,
                blocklength,
                base,
                ..
            } => count * blocklength * base.size(),
            Datatype::Indexed { blocks, base } => {
                blocks.iter().map(|&(_, l)| l).sum::<usize>() * base.size()
            }
        }
    }

    /// Span in the user buffer from the start of one element to the start
    /// of the next (MPI extent, bytes).
    pub fn extent(&self) -> usize {
        match self {
            Datatype::Basic(b) => b.size(),
            Datatype::Contiguous { count, base } => count * base.extent(),
            Datatype::Vector {
                count,
                blocklength,
                stride,
                base,
            } => {
                if *count == 0 {
                    0
                } else {
                    ((count - 1) * stride + blocklength) * base.extent()
                }
            }
            Datatype::Indexed { blocks, base } => blocks
                .iter()
                .map(|&(d, l)| (d + l) * base.extent())
                .max()
                .unwrap_or(0),
        }
    }

    /// Whether the typemap of one element is a single gap-free segment
    /// covering its extent (pack is then the identity).
    pub fn is_contiguous(&self) -> bool {
        self.size() == self.extent()
    }

    /// The underlying basic type (reductions require one).
    pub fn base_type(&self) -> BasicType {
        match self {
            Datatype::Basic(b) => *b,
            Datatype::Contiguous { base, .. }
            | Datatype::Vector { base, .. }
            | Datatype::Indexed { base, .. } => base.base_type(),
        }
    }

    /// Display name used in error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Datatype::Basic(b) => b.name(),
            Datatype::Contiguous { .. } => "CONTIGUOUS",
            Datatype::Vector { .. } => "VECTOR",
            Datatype::Indexed { .. } => "INDEXED",
        }
    }

    /// The typemap of one element: coalesced `(offset, len)` byte
    /// segments, relative to the element start.
    pub fn segments(&self) -> Vec<(usize, usize)> {
        let mut segs = Vec::new();
        self.collect_segments(0, &mut segs);
        // Coalesce adjacent segments (e.g. contiguous-of-basic).
        let mut out: Vec<(usize, usize)> = Vec::with_capacity(segs.len());
        for (off, len) in segs {
            if let Some(last) = out.last_mut() {
                if last.0 + last.1 == off {
                    last.1 += len;
                    continue;
                }
            }
            out.push((off, len));
        }
        out
    }

    fn collect_segments(&self, at: usize, out: &mut Vec<(usize, usize)>) {
        match self {
            Datatype::Basic(b) => out.push((at, b.size())),
            Datatype::Contiguous { count, base } => {
                let ext = base.extent();
                for k in 0..*count {
                    base.collect_segments(at + k * ext, out);
                }
            }
            Datatype::Vector {
                count,
                blocklength,
                stride,
                base,
            } => {
                let ext = base.extent();
                for k in 0..*count {
                    let block_at = at + k * stride * ext;
                    for j in 0..*blocklength {
                        base.collect_segments(block_at + j * ext, out);
                    }
                }
            }
            Datatype::Indexed { blocks, base } => {
                let ext = base.extent();
                for &(disp, len) in blocks {
                    let block_at = at + disp * ext;
                    for j in 0..len {
                        base.collect_segments(block_at + j * ext, out);
                    }
                }
            }
        }
    }

    /// Bytes of user buffer needed to hold `count` elements.
    pub fn span(&self, count: usize) -> usize {
        if count == 0 {
            0
        } else {
            (count - 1) * self.extent() + self.trailing_span()
        }
    }

    /// Span of a single element up to the end of its last segment (an
    /// element's data may end before its extent).
    fn trailing_span(&self) -> usize {
        self.segments().last().map(|&(o, l)| o + l).unwrap_or(0)
    }

    /// Pack `count` elements from `src` into a dense byte vector.
    pub fn pack(&self, src: &[u8], count: usize) -> MpiResult<Vec<u8>> {
        let needed = self.span(count);
        if src.len() < needed {
            return Err(MpiError::BufferTooSmall {
                needed,
                available: src.len(),
            });
        }
        let mut out = Vec::with_capacity(self.size() * count);
        let segs = self.segments();
        let ext = self.extent();
        for i in 0..count {
            let base = i * ext;
            for &(off, len) in &segs {
                out.extend_from_slice(&src[base + off..base + off + len]);
            }
        }
        Ok(out)
    }

    /// Unpack `count` elements from dense bytes `data` into `dst` laid out
    /// with this datatype. `data` must hold exactly `size() * count` bytes
    /// or fewer (a shorter message fills a prefix, like MPI receives).
    pub fn unpack(&self, data: &[u8], count: usize, dst: &mut [u8]) -> MpiResult<usize> {
        let elem_size = self.size();
        if elem_size == 0 {
            return Ok(0);
        }
        let full = data.len() / elem_size;
        if full > count {
            return Err(MpiError::Truncated {
                incoming: data.len(),
                capacity: elem_size * count,
            });
        }
        let needed = self.span(full);
        if dst.len() < needed {
            return Err(MpiError::BufferTooSmall {
                needed,
                available: dst.len(),
            });
        }
        let segs = self.segments();
        let ext = self.extent();
        let mut pos = 0usize;
        for i in 0..full {
            let base = i * ext;
            for &(off, len) in &segs {
                dst[base + off..base + off + len].copy_from_slice(&data[pos..pos + len]);
                pos += len;
            }
        }
        // Trailing partial element, if the sender sent a ragged tail
        // (possible with basic types only in practice).
        let rem = data.len() - pos;
        if rem > 0 {
            let base = full * ext;
            let mut left = rem;
            for &(off, len) in &segs {
                let take = left.min(len);
                if dst.len() < base + off + take {
                    return Err(MpiError::BufferTooSmall {
                        needed: base + off + take,
                        available: dst.len(),
                    });
                }
                dst[base + off..base + off + take].copy_from_slice(&data[pos..pos + take]);
                pos += take;
                left -= take;
                if left == 0 {
                    break;
                }
            }
        }
        Ok(data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_sizes() {
        assert_eq!(BYTE.size(), 1);
        assert_eq!(CHAR.size(), 2);
        assert_eq!(SHORT.size(), 2);
        assert_eq!(INT.size(), 4);
        assert_eq!(LONG.size(), 8);
        assert_eq!(FLOAT.size(), 4);
        assert_eq!(DOUBLE.size(), 8);
        assert!(INT.is_contiguous());
    }

    #[test]
    fn contiguous_type() {
        let t = Datatype::contiguous(5, INT);
        assert_eq!(t.size(), 20);
        assert_eq!(t.extent(), 20);
        assert!(t.is_contiguous());
        assert_eq!(t.segments(), vec![(0, 20)]);
    }

    #[test]
    fn vector_type_layout() {
        // 3 blocks of 2 ints, stride 4 ints.
        let t = Datatype::vector(3, 2, 4, INT).unwrap();
        assert_eq!(t.size(), 24);
        assert_eq!(t.extent(), (2 * 4 + 2) * 4);
        assert!(!t.is_contiguous());
        assert_eq!(t.segments(), vec![(0, 8), (16, 8), (32, 8)]);
    }

    #[test]
    fn vector_pack_unpack_roundtrip() {
        let t = Datatype::vector(2, 2, 3, INT).unwrap();
        // Element layout (ints): [b0 b0 . b1 b1] extent = 5 ints? stride 3,
        // blocklength 2 => extent = ((2-1)*3 + 2)*4 = 20 bytes = 5 ints.
        let src: Vec<u8> = (0..40u8).collect(); // 2 elements * 5 ints
        let packed = t.pack(&src, 2).unwrap();
        assert_eq!(packed.len(), 2 * t.size());
        let mut dst = vec![0u8; 40];
        let n = t.unpack(&packed, 2, &mut dst).unwrap();
        assert_eq!(n, packed.len());
        // Every byte covered by the typemap must roundtrip.
        let ext = t.extent();
        for i in 0..2 {
            for &(off, len) in &t.segments() {
                let a = &src[i * ext + off..i * ext + off + len];
                let b = &dst[i * ext + off..i * ext + off + len];
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn indexed_type() {
        let t = Datatype::indexed(vec![(0, 1), (3, 2)], DOUBLE).unwrap();
        assert_eq!(t.size(), 24);
        assert_eq!(t.extent(), 40);
        assert_eq!(t.segments(), vec![(0, 8), (24, 16)]);
    }

    #[test]
    fn indexed_rejects_overlap() {
        assert!(Datatype::indexed(vec![(0, 2), (1, 1)], INT).is_err());
    }

    #[test]
    fn vector_rejects_overlapping_stride() {
        assert!(Datatype::vector(3, 4, 2, INT).is_err());
    }

    #[test]
    fn pack_rejects_short_buffer() {
        let t = Datatype::contiguous(4, INT);
        let src = vec![0u8; 15];
        assert!(matches!(
            t.pack(&src, 1),
            Err(MpiError::BufferTooSmall { .. })
        ));
    }

    #[test]
    fn unpack_rejects_oversized_message() {
        let data = vec![0u8; 8];
        let mut dst = vec![0u8; 4];
        assert!(matches!(
            INT.unpack(&data, 1, &mut dst),
            Err(MpiError::Truncated { .. })
        ));
    }

    #[test]
    fn unpack_partial_fill() {
        // 2 ints arrive into a 4-int receive: prefix fill.
        let data: Vec<u8> = (0..8).collect();
        let mut dst = vec![0xFFu8; 16];
        let n = INT.unpack(&data, 4, &mut dst).unwrap();
        assert_eq!(n, 8);
        assert_eq!(&dst[..8], &data[..]);
        assert_eq!(&dst[8..], &[0xFF; 8]);
    }

    #[test]
    fn base_type_of_nested() {
        let t = Datatype::contiguous(3, Datatype::vector(2, 1, 2, DOUBLE).unwrap());
        assert_eq!(t.base_type(), BasicType::Double);
    }

    #[test]
    fn span_accounts_for_ragged_tail() {
        let t = Datatype::vector(2, 1, 3, INT).unwrap();
        // segments: (0,4), (12,4); extent 16; trailing span 16 => span(2)=32
        assert_eq!(t.span(2), 32);
        let u = Datatype::indexed(vec![(0, 1)], INT).unwrap();
        // extent 4 == trailing span; span(3) = 12
        assert_eq!(u.span(3), 12);
    }

    #[test]
    fn nested_contiguous_of_vector_packs() {
        let v = Datatype::vector(2, 1, 2, SHORT).unwrap(); // segs (0,2),(4,2), ext 6? ((2-1)*2+1)*2=6
        let t = Datatype::contiguous(2, v);
        assert_eq!(t.size(), 8);
        let src: Vec<u8> = (0..12u8).chain(0..12u8).collect();
        let packed = t.pack(&src, 1).unwrap();
        assert_eq!(packed.len(), 8);
        assert_eq!(packed, vec![0, 1, 4, 5, 6, 7, 10, 11]);
    }
}
