//! `mpisim` — the simulated "native MPI" substrate.
//!
//! This crate plays the role MVAPICH2 and Open MPI play in the paper: a
//! production-style MPI implementation the Java-bindings layer calls into
//! through the JNI-analog boundary. It provides:
//!
//! * MPI datatypes (basic + contiguous/vector/indexed derived types) with
//!   a real pack engine ([`datatype`]);
//! * reduction operations over the Java basic types ([`op`]);
//! * a per-rank progress engine with tag/source/context matching, eager
//!   and rendezvous protocols, and request objects ([`engine`]);
//! * communicators and groups ([`comm`]);
//! * blocking collectives with multiple algorithms — binomial trees,
//!   scatter+allgather, recursive doubling, Rabenseifner, ring, pairwise
//!   exchange, and MVAPICH2-style two-level hierarchical variants — plus
//!   the vectored (v-suffix) collectives ([`coll`]);
//! * non-blocking collectives compiled into round-based schedules that a
//!   per-rank progression engine advances on a self-timed virtual
//!   timeline, so communication/computation overlap is actually modeled
//!   ([`coll::sched`], surfaced through [`mpi::Mpi`]);
//! * two calibrated library profiles ([`profile::Profile::mvapich2`] and
//!   [`profile::Profile::openmpi_ucx`]) whose differences reproduce the
//!   native-performance gaps the paper reports.
//!
//! All timing is virtual (see the `vtime` crate); all data movement is
//! real, so tests can validate payload contents end-to-end.

pub mod coll;
pub mod comm;
pub mod datatype;
pub mod engine;
pub mod error;
pub mod mpi;
pub mod op;
pub mod profile;
pub mod rma;

pub use comm::{CommHandle, Group};
pub use datatype::{BasicType, Datatype};
pub use engine::{Completion, Envelope, Frame, Request, Status, Wire, ANY_SOURCE, ANY_TAG, TAG_UB};
pub use error::{MpiError, MpiResult};
pub use mpi::{
    run_mpi, run_mpi_faulty, run_mpi_faulty_on, run_mpi_on, Errhandler, Mpi, MpiRequest, RmaGet,
    Win,
};
pub use op::ReduceOp;
pub use profile::{CollTuning, PathParams, Profile};
pub use rma::{RegCache, RegLookup};
pub use simfabric::EngineMode;
