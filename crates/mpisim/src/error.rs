//! Error classes mirroring the MPI error classes the bindings surface.

use std::fmt;

/// Errors raised by the simulated native MPI library (and surfaced by the
/// Java-style bindings as `MPIException`s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// Receive buffer too small for the matched message (MPI_ERR_TRUNCATE).
    Truncated {
        /// Bytes in the incoming message.
        incoming: usize,
        /// Bytes the posted receive could hold.
        capacity: usize,
    },
    /// Rank argument outside the communicator (MPI_ERR_RANK).
    InvalidRank { rank: i32, comm_size: usize },
    /// Negative or otherwise invalid count (MPI_ERR_COUNT).
    InvalidCount { count: i32 },
    /// Tag outside the valid range (MPI_ERR_TAG).
    InvalidTag { tag: i32 },
    /// Buffer too small for `count` elements of the datatype
    /// (MPI_ERR_BUFFER).
    BufferTooSmall { needed: usize, available: usize },
    /// Operation/datatype combination not defined (MPI_ERR_OP), e.g.
    /// bitwise AND on FLOAT.
    InvalidOpForType {
        op: &'static str,
        datatype: &'static str,
    },
    /// The feature exists in the MPI standard but this library (profile)
    /// does not support it — used to model Open MPI-J's missing
    /// array/non-blocking combination.
    Unsupported(&'static str),
    /// Request handle already completed/freed (MPI_ERR_REQUEST).
    InvalidRequest,
    /// Communicator handle unknown (MPI_ERR_COMM).
    InvalidComm,
    /// One-sided window handle unknown or misused (MPI_ERR_WIN), e.g.
    /// unlocking a window that is not locked.
    InvalidWin(&'static str),
    /// Group operation given inconsistent arguments (MPI_ERR_GROUP).
    InvalidGroup(&'static str),
    /// Mismatched collective participation detected (programming error in
    /// the simulated application).
    CollectiveMismatch(&'static str),
    /// The reliability sublayer gave up on a peer after exhausting its
    /// retransmit budget (MPI_ERR_OTHER-style transport failure).
    TransportFailure { peer: usize, retries: u32 },
    /// A peer rank is known to have failed (crash fault or watchdog
    /// timeout) — collectives involving it cannot complete.
    RankFailed { rank: usize },
    /// The engine received a frame that violates the point-to-point
    /// protocol (e.g. a CTS for a request not awaiting one). With the
    /// reliability sublayer active these are surfaced, not aborted on.
    ProtocolError(&'static str),
}

impl MpiError {
    /// Whether this error is transport-class: raised by the fabric or
    /// reliability sublayer rather than by invalid application arguments.
    /// Only transport-class errors are routed through the communicator
    /// errhandler; argument errors are always returned to the caller.
    pub fn is_transport(&self) -> bool {
        matches!(
            self,
            MpiError::TransportFailure { .. }
                | MpiError::RankFailed { .. }
                | MpiError::ProtocolError(_)
        )
    }
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::Truncated { incoming, capacity } => write!(
                f,
                "MPI_ERR_TRUNCATE: message of {incoming} bytes does not fit posted receive of {capacity} bytes"
            ),
            MpiError::InvalidRank { rank, comm_size } => {
                write!(f, "MPI_ERR_RANK: rank {rank} invalid in communicator of size {comm_size}")
            }
            MpiError::InvalidCount { count } => write!(f, "MPI_ERR_COUNT: invalid count {count}"),
            MpiError::InvalidTag { tag } => write!(f, "MPI_ERR_TAG: invalid tag {tag}"),
            MpiError::BufferTooSmall { needed, available } => write!(
                f,
                "MPI_ERR_BUFFER: operation needs {needed} bytes but buffer holds {available}"
            ),
            MpiError::InvalidOpForType { op, datatype } => {
                write!(f, "MPI_ERR_OP: reduction {op} undefined for {datatype}")
            }
            MpiError::Unsupported(what) => write!(f, "unsupported by this library: {what}"),
            MpiError::InvalidRequest => write!(f, "MPI_ERR_REQUEST: invalid or completed request"),
            MpiError::InvalidComm => write!(f, "MPI_ERR_COMM: invalid communicator"),
            MpiError::InvalidWin(why) => write!(f, "MPI_ERR_WIN: {why}"),
            MpiError::InvalidGroup(why) => write!(f, "MPI_ERR_GROUP: {why}"),
            MpiError::CollectiveMismatch(why) => {
                write!(f, "collective participation mismatch: {why}")
            }
            MpiError::TransportFailure { peer, retries } => write!(
                f,
                "MPI_ERR_OTHER: transport to rank {peer} failed after {retries} retransmits"
            ),
            MpiError::RankFailed { rank } => {
                write!(f, "MPI_ERR_OTHER: rank {rank} has failed")
            }
            MpiError::ProtocolError(why) => {
                write!(f, "MPI_ERR_INTERN: point-to-point protocol violation: {why}")
            }
        }
    }
}

impl std::error::Error for MpiError {}

/// Result alias used across the native library and the bindings.
pub type MpiResult<T> = Result<T, MpiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MpiError::Truncated {
            incoming: 100,
            capacity: 10,
        };
        let s = e.to_string();
        assert!(s.contains("100"));
        assert!(s.contains("10"));
        assert!(s.contains("TRUNCATE"));
    }

    #[test]
    fn errors_compare() {
        assert_eq!(MpiError::Unsupported("x"), MpiError::Unsupported("x"));
        assert_ne!(
            MpiError::InvalidRank {
                rank: 1,
                comm_size: 1
            },
            MpiError::InvalidRank {
                rank: 2,
                comm_size: 1
            }
        );
    }
}
