//! The per-rank native MPI facade: typed point-to-point over the progress
//! engine, communicator management, and entry points to the collectives.
//!
//! This is the API surface the Java-style bindings call through the
//! JNI-analog boundary — the equivalent of `MPI_Send`, `MPI_Irecv`,
//! `MPI_Bcast`, `MPI_Comm_split`, … in the native library.

use simfabric::{run_cluster, Endpoint, FaultPlan, Topology};
use vtime::{Clock, VDur, VTime};

use crate::coll;
use crate::comm::{CommHandle, CommInfo, Group, COMM_WORLD};
use crate::datatype::Datatype;
use crate::engine::{Engine, Frame, Request, Status};
use crate::error::{MpiError, MpiResult};
use crate::op::ReduceOp;
use crate::profile::Profile;

/// A request returned by the non-blocking typed operations.
#[derive(Debug)]
pub struct MpiRequest {
    raw: Request,
    /// For receives: the datatype/count needed to unpack at completion.
    recv: Option<(Datatype, usize)>,
    /// Communicator the operation was posted on (status translation).
    comm: CommHandle,
}

impl MpiRequest {
    /// Whether this is a receive request (completion carries data).
    pub fn is_recv(&self) -> bool {
        self.recv.is_some()
    }
}

/// Per-communicator error handler (MPI_Errhandler).
///
/// Routing applies only to *transport-class* errors
/// ([`MpiError::is_transport`]): failures of the fabric or a peer rank,
/// which the application did nothing to cause. Argument errors
/// (truncation, invalid rank, ...) are always returned to the caller
/// directly, matching the seed behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Errhandler {
    /// MPI_ERRORS_ARE_FATAL (the MPI default): a transport-class error
    /// aborts the whole job.
    #[default]
    ErrorsAbort,
    /// MPI_ERRORS_RETURN: transport-class errors surface as `Err` for the
    /// application to handle.
    ErrorsReturn,
}

/// The per-rank native MPI library instance.
pub struct Mpi {
    eng: Engine,
    comms: Vec<Option<CommInfo>>,
    next_context: u32,
    /// Error handler per communicator slot (parallel to `comms`;
    /// inherited from the parent at creation, like MPI).
    errhandlers: Vec<Errhandler>,
}

/// Run an MPI "job": one thread per rank under `topo`, each executing `f`
/// with its own [`Mpi`] instance configured with `profile`.
pub fn run_mpi<R, F>(topo: Topology, profile: Profile, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Mpi) -> R + Sync,
{
    run_cluster::<Frame, R, _>(topo, |ep| {
        let mut mpi = Mpi::new(ep, profile);
        f(&mut mpi)
    })
}

/// Like [`run_mpi`], but with `plan` installed on every rank's endpoint:
/// the fabric injects the plan's faults and the engine's reliability
/// sublayer rides over them.
pub fn run_mpi_faulty<R, F>(topo: Topology, profile: Profile, plan: FaultPlan, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Mpi) -> R + Sync,
{
    run_cluster::<Frame, R, _>(topo, |mut ep| {
        ep.install_faults(plan);
        let mut mpi = Mpi::new(ep, profile);
        f(&mut mpi)
    })
}

impl Mpi {
    /// Wrap a fabric endpoint. `MPI_COMM_WORLD` covers all ranks.
    pub fn new(ep: Endpoint<Frame>, profile: Profile) -> Self {
        let world = CommInfo {
            base_context: 0,
            group: Group::new((0..ep.size()).collect()).expect("world ranks are distinct"),
            my_rank: ep.rank(),
        };
        Mpi {
            eng: Engine::new(ep, profile),
            comms: vec![Some(world)],
            next_context: 1,
            errhandlers: vec![Errhandler::default()],
        }
    }

    /// Set the error handler of `comm` (MPI_Comm_set_errhandler).
    pub fn set_errhandler(&mut self, comm: CommHandle, h: Errhandler) -> MpiResult<()> {
        self.info(comm)?;
        self.errhandlers[comm.0] = h;
        Ok(())
    }

    /// The error handler in force on `comm`.
    pub fn errhandler(&self, comm: CommHandle) -> Errhandler {
        self.errhandlers.get(comm.0).copied().unwrap_or_default()
    }

    /// Route a transport-class error through `comm`'s error handler:
    /// abort the job (panic, like MPI_ERRORS_ARE_FATAL) or hand the error
    /// back. Non-transport errors pass through untouched.
    fn route<T>(&self, comm: CommHandle, r: MpiResult<T>) -> MpiResult<T> {
        match r {
            Err(e) if e.is_transport() => match self.errhandler(comm) {
                Errhandler::ErrorsAbort => {
                    panic!("MPI job aborted (MPI_ERRORS_ARE_FATAL): {e}")
                }
                Errhandler::ErrorsReturn => Err(e),
            },
            other => other,
        }
    }

    /// MPI_COMM_WORLD.
    #[inline]
    pub fn world(&self) -> CommHandle {
        COMM_WORLD
    }

    pub(crate) fn info(&self, comm: CommHandle) -> MpiResult<&CommInfo> {
        self.comms
            .get(comm.0)
            .and_then(|c| c.as_ref())
            .ok_or(MpiError::InvalidComm)
    }

    pub(crate) fn engine_mut(&mut self) -> &mut Engine {
        &mut self.eng
    }

    /// This process's rank in `comm`.
    pub fn rank(&self, comm: CommHandle) -> MpiResult<usize> {
        Ok(self.info(comm)?.my_rank)
    }

    /// Size of `comm`.
    pub fn size(&self, comm: CommHandle) -> MpiResult<usize> {
        Ok(self.info(comm)?.group.size())
    }

    /// The group of `comm` (MPI_Comm_group).
    pub fn comm_group(&self, comm: CommHandle) -> MpiResult<Group> {
        Ok(self.info(comm)?.group.clone())
    }

    /// The library profile in force.
    pub fn profile(&self) -> &Profile {
        self.eng.profile()
    }

    /// The fabric topology (nodes × ppn).
    pub fn topology(&self) -> &Topology {
        self.eng.topology()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> VTime {
        self.eng.now()
    }

    /// MPI_Wtime in (virtual) seconds.
    #[inline]
    pub fn wtime(&self) -> f64 {
        self.eng.now().as_secs()
    }

    /// Mutable clock access for layers above (JNI/runtime costs).
    #[inline]
    pub fn clock_mut(&mut self) -> &mut Clock {
        self.eng.clock_mut()
    }

    /// Wrap a collective entry point in a cat-`"coll"` trace span tagged
    /// with the instance id allocated inside `coll::cc`. Zero virtual
    /// cost: only reads the clock before and after.
    fn coll_span<T>(
        &mut self,
        name: &'static str,
        f: impl FnOnce(&mut Self) -> MpiResult<T>,
    ) -> MpiResult<T> {
        if !obs::tracing_enabled() {
            return f(self);
        }
        let begin = self.eng.now();
        let out = f(self);
        obs::span(
            name,
            "coll",
            begin,
            self.eng.now(),
            vec![("coll", obs::ArgValue::U64(self.eng.current_collective()))],
        );
        out
    }

    // ------------------------------------------------------------------
    // Typed point-to-point
    // ------------------------------------------------------------------

    fn check_count(count: i32) -> MpiResult<usize> {
        if count < 0 {
            Err(MpiError::InvalidCount { count })
        } else {
            Ok(count as usize)
        }
    }

    fn world_dst(&self, comm: CommHandle, dst: usize) -> MpiResult<usize> {
        let info = self.info(comm)?;
        info.group
            .world_rank(dst)
            .map_err(|_| MpiError::InvalidRank {
                rank: dst as i32,
                comm_size: info.group.size(),
            })
    }

    /// Prepare the dense payload for `count` elements of `dt` from `buf`,
    /// charging the native pack engine for non-contiguous layouts.
    fn pack_payload(&mut self, buf: &[u8], count: usize, dt: &Datatype) -> MpiResult<Vec<u8>> {
        let payload = dt.pack(buf, count)?;
        if !dt.is_contiguous() {
            let per_byte = self.eng.profile().pack_per_byte_ns;
            self.eng
                .clock_mut()
                .charge(VDur::from_nanos(payload.len() as f64 * per_byte));
        }
        Ok(payload)
    }

    /// Blocking standard-mode send (MPI_Send).
    pub fn send(
        &mut self,
        buf: &[u8],
        count: i32,
        dt: &Datatype,
        dst: usize,
        tag: i32,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let r = self.isend(buf, count, dt, dst, tag, comm)?;
        self.wait(r, None).map(|_| ())
    }

    /// Blocking receive (MPI_Recv). Returns a status with the source as a
    /// communicator rank.
    pub fn recv(
        &mut self,
        buf: &mut [u8],
        count: i32,
        dt: &Datatype,
        src: i32,
        tag: i32,
        comm: CommHandle,
    ) -> MpiResult<Status> {
        let r = self.irecv(count, dt, src, tag, comm)?;
        self.wait(r, Some(buf))
    }

    /// Non-blocking send (MPI_Isend).
    pub fn isend(
        &mut self,
        buf: &[u8],
        count: i32,
        dt: &Datatype,
        dst: usize,
        tag: i32,
        comm: CommHandle,
    ) -> MpiResult<MpiRequest> {
        let count = Self::check_count(count)?;
        if !(0..=crate::engine::TAG_UB).contains(&tag) {
            return Err(MpiError::InvalidTag { tag });
        }
        let wdst = self.world_dst(comm, dst)?;
        let ctx = self.info(comm)?.pt2pt_context();
        let payload = self.pack_payload(buf, count, dt)?;
        let raw = self.eng.isend_bytes(&payload, wdst, tag, ctx);
        let raw = self.route(comm, raw)?;
        Ok(MpiRequest {
            raw,
            recv: None,
            comm,
        })
    }

    /// Non-blocking receive (MPI_Irecv). `src < 0` is MPI_ANY_SOURCE
    /// (communicator-relative otherwise).
    pub fn irecv(
        &mut self,
        count: i32,
        dt: &Datatype,
        src: i32,
        tag: i32,
        comm: CommHandle,
    ) -> MpiResult<MpiRequest> {
        let count = Self::check_count(count)?;
        if tag != crate::engine::ANY_TAG && !(0..=crate::engine::TAG_UB).contains(&tag) {
            return Err(MpiError::InvalidTag { tag });
        }
        let info = self.info(comm)?;
        let ctx = info.pt2pt_context();
        let wsrc = if src < 0 {
            -1
        } else {
            info.group.world_rank(src as usize)? as i32
        };
        let cap = dt.size() * count;
        let raw = self.eng.irecv_bytes(cap, wsrc, tag, ctx);
        let raw = self.route(comm, raw)?;
        Ok(MpiRequest {
            raw,
            recv: Some((dt.clone(), count)),
            comm,
        })
    }

    /// Wait for completion (MPI_Wait). Receive requests require the
    /// destination buffer; send requests ignore it.
    pub fn wait(&mut self, req: MpiRequest, buf: Option<&mut [u8]>) -> MpiResult<Status> {
        let completion = self.eng.wait(req.raw);
        let completion = self.route(req.comm, completion)?;
        let source = self
            .info(req.comm)?
            .group
            .rank_of(completion.status.source)
            .unwrap_or(usize::MAX);
        let completion = crate::engine::Completion {
            data: completion.data,
            status: Status {
                source,
                ..completion.status
            },
        };
        match req.recv {
            None => Ok(completion.status),
            Some((dt, count)) => {
                let bytes = completion.data.len();
                let out = buf.ok_or(MpiError::BufferTooSmall {
                    needed: bytes,
                    available: 0,
                })?;
                dt.unpack(&completion.data, count, out)?;
                if !dt.is_contiguous() {
                    let per_byte = self.eng.profile().pack_per_byte_ns;
                    self.eng
                        .clock_mut()
                        .charge(VDur::from_nanos(bytes as f64 * per_byte));
                }
                Ok(Status {
                    bytes,
                    ..completion.status
                })
            }
        }
    }

    /// Non-blocking completion test (MPI_Test). On completion of a
    /// receive, the payload is unpacked into `buf`.
    pub fn test(&mut self, req: &MpiRequest, buf: Option<&mut [u8]>) -> MpiResult<Option<Status>> {
        let polled = self.eng.test(req.raw);
        match self.route(req.comm, polled)? {
            None => Ok(None),
            Some(completion) => {
                let source = self
                    .info(req.comm)?
                    .group
                    .rank_of(completion.status.source)
                    .unwrap_or(usize::MAX);
                let completion = crate::engine::Completion {
                    data: completion.data,
                    status: Status {
                        source,
                        ..completion.status
                    },
                };
                match &req.recv {
                    None => Ok(Some(completion.status)),
                    Some((dt, count)) => {
                        let bytes = completion.data.len();
                        let out = buf.ok_or(MpiError::BufferTooSmall {
                            needed: bytes,
                            available: 0,
                        })?;
                        dt.unpack(&completion.data, *count, out)?;
                        Ok(Some(Status {
                            bytes,
                            ..completion.status
                        }))
                    }
                }
            }
        }
    }

    /// Translate a world rank in a status to a communicator rank.
    pub fn comm_rank_of_world(&self, comm: CommHandle, world: usize) -> MpiResult<Option<usize>> {
        Ok(self.info(comm)?.group.rank_of(world))
    }

    // ------------------------------------------------------------------
    // Collectives (algorithm selection lives in `coll`)
    // ------------------------------------------------------------------

    /// MPI_Barrier.
    pub fn barrier(&mut self, comm: CommHandle) -> MpiResult<()> {
        let r = self.coll_span("barrier", |m| coll::barrier(m, comm));
        self.route(comm, r)
    }

    /// MPI_Bcast over `count` elements of `dt` in `buf`.
    pub fn bcast(
        &mut self,
        buf: &mut [u8],
        count: i32,
        dt: &Datatype,
        root: usize,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let count = Self::check_count(count)?;
        let r = self.coll_span("bcast", |m| coll::bcast(m, buf, count, dt, root, comm));
        self.route(comm, r)
    }

    /// MPI_Reduce. `recv` must be `Some` on the root.
    pub fn reduce(
        &mut self,
        send: &[u8],
        recv: Option<&mut [u8]>,
        count: i32,
        dt: &Datatype,
        op: ReduceOp,
        root: usize,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let count = Self::check_count(count)?;
        let r = self.coll_span("reduce", |m| {
            coll::reduce(m, send, recv, count, dt, op, root, comm)
        });
        self.route(comm, r)
    }

    /// MPI_Allreduce.
    pub fn allreduce(
        &mut self,
        send: &[u8],
        recv: &mut [u8],
        count: i32,
        dt: &Datatype,
        op: ReduceOp,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let count = Self::check_count(count)?;
        let r = self.coll_span("allreduce", |m| {
            coll::allreduce(m, send, recv, count, dt, op, comm)
        });
        self.route(comm, r)
    }

    /// MPI_Gather (equal contributions). `recv` significant at root.
    pub fn gather(
        &mut self,
        send: &[u8],
        recv: Option<&mut [u8]>,
        count: i32,
        dt: &Datatype,
        root: usize,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let count = Self::check_count(count)?;
        let r = self.coll_span("gather", |m| {
            coll::gather(m, send, recv, count, dt, root, comm)
        });
        self.route(comm, r)
    }

    /// MPI_Gatherv. `recvcounts`/`displs` are in elements, significant at
    /// root.
    #[allow(clippy::too_many_arguments)]
    pub fn gatherv(
        &mut self,
        send: &[u8],
        sendcount: i32,
        recv: Option<&mut [u8]>,
        recvcounts: &[i32],
        displs: &[i32],
        dt: &Datatype,
        root: usize,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let sendcount = Self::check_count(sendcount)?;
        let r = self.coll_span("gatherv", |m| {
            coll::gatherv(m, send, sendcount, recv, recvcounts, displs, dt, root, comm)
        });
        self.route(comm, r)
    }

    /// MPI_Scatter (equal blocks). `send` significant at root.
    pub fn scatter(
        &mut self,
        send: Option<&[u8]>,
        recv: &mut [u8],
        count: i32,
        dt: &Datatype,
        root: usize,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let count = Self::check_count(count)?;
        let r = self.coll_span("scatter", |m| {
            coll::scatter(m, send, recv, count, dt, root, comm)
        });
        self.route(comm, r)
    }

    /// MPI_Scatterv.
    #[allow(clippy::too_many_arguments)]
    pub fn scatterv(
        &mut self,
        send: Option<&[u8]>,
        sendcounts: &[i32],
        displs: &[i32],
        recv: &mut [u8],
        recvcount: i32,
        dt: &Datatype,
        root: usize,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let recvcount = Self::check_count(recvcount)?;
        let r = self.coll_span("scatterv", |m| {
            coll::scatterv(m, send, sendcounts, displs, recv, recvcount, dt, root, comm)
        });
        self.route(comm, r)
    }

    /// MPI_Allgather (equal contributions).
    pub fn allgather(
        &mut self,
        send: &[u8],
        recv: &mut [u8],
        count: i32,
        dt: &Datatype,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let count = Self::check_count(count)?;
        let r = self.coll_span("allgather", |m| {
            coll::allgather(m, send, recv, count, dt, comm)
        });
        self.route(comm, r)
    }

    /// MPI_Allgatherv.
    pub fn allgatherv(
        &mut self,
        send: &[u8],
        sendcount: i32,
        recv: &mut [u8],
        recvcounts: &[i32],
        displs: &[i32],
        dt: &Datatype,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let sendcount = Self::check_count(sendcount)?;
        let r = self.coll_span("allgatherv", |m| {
            coll::allgatherv(m, send, sendcount, recv, recvcounts, displs, dt, comm)
        });
        self.route(comm, r)
    }

    /// MPI_Alltoall (equal blocks).
    pub fn alltoall(
        &mut self,
        send: &[u8],
        recv: &mut [u8],
        count: i32,
        dt: &Datatype,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let count = Self::check_count(count)?;
        let r = self.coll_span("alltoall", |m| {
            coll::alltoall(m, send, recv, count, dt, comm)
        });
        self.route(comm, r)
    }

    /// MPI_Alltoallv.
    #[allow(clippy::too_many_arguments)]
    pub fn alltoallv(
        &mut self,
        send: &[u8],
        sendcounts: &[i32],
        sdispls: &[i32],
        recv: &mut [u8],
        recvcounts: &[i32],
        rdispls: &[i32],
        dt: &Datatype,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let r = self.coll_span("alltoallv", |m| {
            coll::alltoallv(
                m, send, sendcounts, sdispls, recv, recvcounts, rdispls, dt, comm,
            )
        });
        self.route(comm, r)
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    fn push_comm(&mut self, parent: CommHandle, info: CommInfo) -> CommHandle {
        self.comms.push(Some(info));
        self.errhandlers.push(self.errhandler(parent));
        CommHandle(self.comms.len() - 1)
    }

    /// Agree on a fresh base context across the members of `comm`
    /// (allreduce-MAX of the local proposals, like real MPI's context-id
    /// agreement).
    fn agree_context(&mut self, comm: CommHandle) -> MpiResult<u32> {
        let mine = self.next_context;
        let mut out = [0u8; 4];
        self.allreduce(
            &mine.to_le_bytes(),
            &mut out,
            1,
            &crate::datatype::INT,
            ReduceOp::Max,
            comm,
        )?;
        let agreed = u32::from_le_bytes(out);
        self.next_context = agreed + 1;
        Ok(agreed)
    }

    /// MPI_Comm_dup: same group, fresh context.
    pub fn comm_dup(&mut self, comm: CommHandle) -> MpiResult<CommHandle> {
        let ctx = self.agree_context(comm)?;
        let info = self.info(comm)?;
        let dup = CommInfo {
            base_context: ctx,
            group: info.group.clone(),
            my_rank: info.my_rank,
        };
        Ok(self.push_comm(comm, dup))
    }

    /// MPI_Comm_split. `color < 0` means MPI_UNDEFINED (no communicator
    /// for this process). Members are ordered by `(key, parent rank)`.
    pub fn comm_split(
        &mut self,
        comm: CommHandle,
        color: i32,
        key: i32,
    ) -> MpiResult<Option<CommHandle>> {
        let (my_rank, size) = {
            let info = self.info(comm)?;
            (info.my_rank, info.group.size())
        };
        // Allgather (color, key) over the parent communicator.
        let mut mine = [0u8; 8];
        mine[..4].copy_from_slice(&color.to_le_bytes());
        mine[4..].copy_from_slice(&key.to_le_bytes());
        let mut all = vec![0u8; 8 * size];
        self.allgather(&mine, &mut all, 8, &crate::datatype::BYTE, comm)?;
        let ctx = self.agree_context(comm)?;
        if color < 0 {
            return Ok(None);
        }
        // Members with my color, sorted by (key, parent rank).
        let mut members: Vec<(i32, usize)> = (0..size)
            .filter_map(|r| {
                let c = i32::from_le_bytes(all[8 * r..8 * r + 4].try_into().unwrap());
                let k = i32::from_le_bytes(all[8 * r + 4..8 * r + 8].try_into().unwrap());
                (c == color).then_some((k, r))
            })
            .collect();
        members.sort_unstable();
        let parent_group = self.info(comm)?.group.clone();
        let world_ranks: Vec<usize> = members
            .iter()
            .map(|&(_, r)| parent_group.world_rank(r).expect("member of parent"))
            .collect();
        let my_new = members
            .iter()
            .position(|&(_, r)| r == my_rank)
            .expect("caller has this color");
        let info = CommInfo {
            base_context: ctx,
            group: Group::new(world_ranks)?,
            my_rank: my_new,
        };
        Ok(Some(self.push_comm(comm, info)))
    }

    /// MPI_Comm_create: collective over `comm`; returns a communicator
    /// only on members of `group`.
    pub fn comm_create(
        &mut self,
        comm: CommHandle,
        group: &Group,
    ) -> MpiResult<Option<CommHandle>> {
        let ctx = self.agree_context(comm)?;
        let my_world = {
            let info = self.info(comm)?;
            info.group.world_rank(info.my_rank)?
        };
        match group.rank_of(my_world) {
            None => Ok(None),
            Some(my_rank) => {
                let info = CommInfo {
                    base_context: ctx,
                    group: group.clone(),
                    my_rank,
                };
                Ok(Some(self.push_comm(comm, info)))
            }
        }
    }

    /// MPI_Comm_free. The world communicator cannot be freed.
    pub fn comm_free(&mut self, comm: CommHandle) -> MpiResult<()> {
        if comm == COMM_WORLD {
            return Err(MpiError::InvalidComm);
        }
        let slot = self.comms.get_mut(comm.0).ok_or(MpiError::InvalidComm)?;
        if slot.take().is_none() {
            return Err(MpiError::InvalidComm);
        }
        Ok(())
    }

    /// Fabric-level traffic counters for this rank.
    pub fn fabric_stats(&self) -> simfabric::SendStats {
        self.eng.fabric_stats()
    }
}
