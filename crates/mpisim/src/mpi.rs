//! The per-rank native MPI facade: typed point-to-point over the progress
//! engine, communicator management, and entry points to the collectives.
//!
//! This is the API surface the Java-style bindings call through the
//! JNI-analog boundary — the equivalent of `MPI_Send`, `MPI_Irecv`,
//! `MPI_Bcast`, `MPI_Comm_split`, … in the native library.

use std::collections::HashMap;

use simfabric::{run_cluster, run_cluster_on, Endpoint, EngineMode, FaultPlan, Topology};
use vtime::{Clock, VDur, VTime};

use crate::coll;
use crate::coll::sched::{self, IcollKind, Schedule};
use crate::comm::{CommHandle, CommInfo, Group, COMM_WORLD};
use crate::datatype::Datatype;
use crate::engine::{Completion, Engine, Frame, Request, Status};
use crate::error::{MpiError, MpiResult};
use crate::op::ReduceOp;
use crate::profile::Profile;
use crate::rma::{RegCache, RegLookup};

/// What an [`MpiRequest`] refers to: an engine-level point-to-point
/// request, or an outstanding non-blocking collective schedule (keyed by
/// the facade's schedule table).
#[derive(Debug, Clone, Copy)]
enum ReqKind {
    P2p(Request),
    Coll(u64),
}

/// A request returned by the non-blocking typed operations (pt2pt and
/// collective alike — `Wait`/`Test`/`Waitall`/`Testany` accept any mix).
#[derive(Debug)]
pub struct MpiRequest {
    raw: ReqKind,
    /// For operations producing data: the datatype/count needed to unpack
    /// at completion.
    recv: Option<(Datatype, usize)>,
    /// Communicator the operation was posted on (status translation,
    /// error-handler routing).
    comm: CommHandle,
}

impl MpiRequest {
    /// Whether completion carries data that needs a destination buffer.
    pub fn is_recv(&self) -> bool {
        self.recv.is_some()
    }

    /// Whether this request is a non-blocking collective.
    pub fn is_coll(&self) -> bool {
        matches!(self.raw, ReqKind::Coll(_))
    }
}

/// An outstanding non-blocking collective: the schedule plus the facade
/// metadata needed to consume it. Errors raised while *progressing* the
/// schedule opportunistically (from some unrelated MPI call) are parked
/// here and surface at `Wait`/`Test` of this request, routed through the
/// communicator the collective was posted on — MPI ties an operation's
/// errors to its own communicator.
struct IcollState {
    id: u64,
    comm: CommHandle,
    sched: Schedule,
    err: Option<MpiError>,
}

/// Per-communicator error handler (MPI_Errhandler).
///
/// Routing applies only to *transport-class* errors
/// ([`MpiError::is_transport`]): failures of the fabric or a peer rank,
/// which the application did nothing to cause. Argument errors
/// (truncation, invalid rank, ...) are always returned to the caller
/// directly, matching the seed behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Errhandler {
    /// MPI_ERRORS_ARE_FATAL (the MPI default): a transport-class error
    /// aborts the whole job.
    #[default]
    ErrorsAbort,
    /// MPI_ERRORS_RETURN: transport-class errors surface as `Err` for the
    /// application to handle.
    ErrorsReturn,
}

/// The per-rank native MPI library instance.
pub struct Mpi {
    eng: Engine,
    comms: Vec<Option<CommInfo>>,
    next_context: u32,
    /// Error handler per communicator slot (parallel to `comms`;
    /// inherited from the parent at creation, like MPI).
    errhandlers: Vec<Errhandler>,
    /// Outstanding non-blocking collective schedules, in post order
    /// (progression iterates in this order so virtual time is independent
    /// of hash layout).
    scheds: Vec<IcollState>,
    /// Next schedule table key.
    next_icoll: u64,
    /// Per-collective-context sequence numbers for non-blocking tag
    /// windows. Collectives are globally ordered per communicator, so
    /// every member derives the same sequence.
    nbc_seq: HashMap<u32, u64>,
    /// One-sided windows by handle slot (`None` after free).
    wins: Vec<Option<WinInfo>>,
    /// Next window-id proposal (agreed across ranks at creation, like
    /// context ids).
    next_win: u32,
    /// NIC registration (pin-down) cache shared by every window on this
    /// rank — the pinned-memory budget is per HCA, not per window.
    reg: RegCache,
}

/// Pinned regions the registration cache can hold per rank. Small enough
/// that benchmark-scale working sets exercise eviction.
const REG_CACHE_REGIONS: usize = 64;

/// A one-sided communication window handle (MPI_Win analog).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Win(usize);

/// Token for an outstanding one-sided get; the payload is handed back
/// when the epoch closes (`win_fence` / `win_unlock`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RmaGet(Request);

/// Facade-side state of one window.
struct WinInfo {
    /// Engine-level (fabric) window id.
    id: u32,
    /// Communicator the window was created over.
    comm: CommHandle,
    /// Bytes this rank exposes.
    size: usize,
    /// Target-arrival horizon of every put/accumulate issued this epoch,
    /// with the world rank it targets (passive-target flushes filter).
    pending_puts: Vec<(usize, VTime)>,
    /// Outstanding gets in issue order, with their world-rank targets.
    pending_gets: Vec<(usize, RmaGet)>,
    /// Passive-target lock currently held (world rank of the target).
    locked: Option<usize>,
}

/// Run an MPI "job": one thread per rank under `topo`, each executing `f`
/// with its own [`Mpi`] instance configured with `profile`.
pub fn run_mpi<R, F>(topo: Topology, profile: Profile, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Mpi) -> R + Sync,
{
    run_cluster::<Frame, R, _>(topo, |ep| {
        let mut mpi = Mpi::new(ep, profile);
        f(&mut mpi)
    })
}

/// [`run_mpi`] under an explicit cluster engine ([`EngineMode`]). The
/// virtual outcome is engine-invariant; the event engine runs the whole
/// job as one discrete-event loop, which is how 1k+-rank jobs fit in a
/// single process.
pub fn run_mpi_on<R, F>(mode: EngineMode, topo: Topology, profile: Profile, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Mpi) -> R + Sync,
{
    run_cluster_on::<Frame, R, _>(mode, topo, |ep| {
        let mut mpi = Mpi::new(ep, profile);
        f(&mut mpi)
    })
}

/// Like [`run_mpi`], but with `plan` installed on every rank's endpoint:
/// the fabric injects the plan's faults and the engine's reliability
/// sublayer rides over them.
pub fn run_mpi_faulty<R, F>(topo: Topology, profile: Profile, plan: FaultPlan, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Mpi) -> R + Sync,
{
    run_mpi_faulty_on(EngineMode::Threaded, topo, profile, plan, f)
}

/// [`run_mpi_faulty`] under an explicit cluster engine. Fault fates are
/// decided at the sender, so they too are engine-invariant.
pub fn run_mpi_faulty_on<R, F>(
    mode: EngineMode,
    topo: Topology,
    profile: Profile,
    plan: FaultPlan,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Mpi) -> R + Sync,
{
    run_cluster_on::<Frame, R, _>(mode, topo, |mut ep| {
        ep.install_faults(plan);
        let mut mpi = Mpi::new(ep, profile);
        f(&mut mpi)
    })
}

impl Mpi {
    /// Wrap a fabric endpoint. `MPI_COMM_WORLD` covers all ranks.
    pub fn new(ep: Endpoint<Frame>, profile: Profile) -> Self {
        let world = CommInfo {
            base_context: 0,
            group: Group::new((0..ep.size()).collect()).expect("world ranks are distinct"),
            my_rank: ep.rank(),
        };
        Mpi {
            eng: Engine::new(ep, profile),
            comms: vec![Some(world)],
            next_context: 1,
            errhandlers: vec![Errhandler::default()],
            scheds: Vec::new(),
            next_icoll: 0,
            nbc_seq: HashMap::new(),
            wins: Vec::new(),
            next_win: 1,
            reg: RegCache::new(REG_CACHE_REGIONS),
        }
    }

    /// Set the error handler of `comm` (MPI_Comm_set_errhandler).
    pub fn set_errhandler(&mut self, comm: CommHandle, h: Errhandler) -> MpiResult<()> {
        self.info(comm)?;
        self.errhandlers[comm.0] = h;
        Ok(())
    }

    /// The error handler in force on `comm`.
    pub fn errhandler(&self, comm: CommHandle) -> Errhandler {
        self.errhandlers.get(comm.0).copied().unwrap_or_default()
    }

    /// Route a transport-class error through `comm`'s error handler:
    /// abort the job (panic, like MPI_ERRORS_ARE_FATAL) or hand the error
    /// back. Non-transport errors pass through untouched.
    fn route<T>(&self, comm: CommHandle, r: MpiResult<T>) -> MpiResult<T> {
        match r {
            Err(e) if e.is_transport() => match self.errhandler(comm) {
                Errhandler::ErrorsAbort => {
                    panic!("MPI job aborted (MPI_ERRORS_ARE_FATAL): {e}")
                }
                Errhandler::ErrorsReturn => Err(e),
            },
            other => other,
        }
    }

    /// MPI_COMM_WORLD.
    #[inline]
    pub fn world(&self) -> CommHandle {
        COMM_WORLD
    }

    pub(crate) fn info(&self, comm: CommHandle) -> MpiResult<&CommInfo> {
        self.comms
            .get(comm.0)
            .and_then(|c| c.as_ref())
            .ok_or(MpiError::InvalidComm)
    }

    pub(crate) fn engine_mut(&mut self) -> &mut Engine {
        &mut self.eng
    }

    /// This process's rank in `comm`.
    pub fn rank(&self, comm: CommHandle) -> MpiResult<usize> {
        Ok(self.info(comm)?.my_rank)
    }

    /// Size of `comm`.
    pub fn size(&self, comm: CommHandle) -> MpiResult<usize> {
        Ok(self.info(comm)?.group.size())
    }

    /// The group of `comm` (MPI_Comm_group).
    pub fn comm_group(&self, comm: CommHandle) -> MpiResult<Group> {
        Ok(self.info(comm)?.group.clone())
    }

    /// The library profile in force.
    pub fn profile(&self) -> &Profile {
        self.eng.profile()
    }

    /// The fabric topology (nodes × ppn).
    pub fn topology(&self) -> &Topology {
        self.eng.topology()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> VTime {
        self.eng.now()
    }

    /// MPI_Wtime in (virtual) seconds.
    #[inline]
    pub fn wtime(&self) -> f64 {
        self.eng.now().as_secs()
    }

    /// Mutable clock access for layers above (JNI/runtime costs).
    #[inline]
    pub fn clock_mut(&mut self) -> &mut Clock {
        self.eng.clock_mut()
    }

    /// Wrap a collective entry point in a cat-`"coll"` trace span tagged
    /// with the instance id allocated inside `coll::cc`. Zero virtual
    /// cost: only reads the clock before and after.
    fn coll_span<T>(
        &mut self,
        name: &'static str,
        f: impl FnOnce(&mut Self) -> MpiResult<T>,
    ) -> MpiResult<T> {
        if !obs::tracing_enabled() {
            return f(self);
        }
        let begin = self.eng.now();
        let out = f(self);
        obs::span(
            name,
            "coll",
            begin,
            self.eng.now(),
            vec![("coll", obs::ArgValue::U64(self.eng.current_collective()))],
        );
        out
    }

    // ------------------------------------------------------------------
    // Typed point-to-point
    // ------------------------------------------------------------------

    fn check_count(count: i32) -> MpiResult<usize> {
        if count < 0 {
            Err(MpiError::InvalidCount { count })
        } else {
            Ok(count as usize)
        }
    }

    fn world_dst(&self, comm: CommHandle, dst: usize) -> MpiResult<usize> {
        let info = self.info(comm)?;
        info.group
            .world_rank(dst)
            .map_err(|_| MpiError::InvalidRank {
                rank: dst as i32,
                comm_size: info.group.size(),
            })
    }

    /// Prepare the dense payload for `count` elements of `dt` from `buf`,
    /// charging the native pack engine for non-contiguous layouts.
    fn pack_payload(&mut self, buf: &[u8], count: usize, dt: &Datatype) -> MpiResult<Vec<u8>> {
        let payload = dt.pack(buf, count)?;
        if !dt.is_contiguous() {
            let per_byte = self.eng.profile().pack_per_byte_ns;
            self.eng
                .clock_mut()
                .charge(VDur::from_nanos(payload.len() as f64 * per_byte));
        }
        Ok(payload)
    }

    /// Blocking standard-mode send (MPI_Send).
    pub fn send(
        &mut self,
        buf: &[u8],
        count: i32,
        dt: &Datatype,
        dst: usize,
        tag: i32,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let r = self.isend(buf, count, dt, dst, tag, comm)?;
        self.wait(r, None).map(|_| ())
    }

    /// Blocking receive (MPI_Recv). Returns a status with the source as a
    /// communicator rank.
    pub fn recv(
        &mut self,
        buf: &mut [u8],
        count: i32,
        dt: &Datatype,
        src: i32,
        tag: i32,
        comm: CommHandle,
    ) -> MpiResult<Status> {
        let r = self.irecv(count, dt, src, tag, comm)?;
        self.wait(r, Some(buf))
    }

    /// Non-blocking send (MPI_Isend).
    pub fn isend(
        &mut self,
        buf: &[u8],
        count: i32,
        dt: &Datatype,
        dst: usize,
        tag: i32,
        comm: CommHandle,
    ) -> MpiResult<MpiRequest> {
        let count = Self::check_count(count)?;
        if !(0..=crate::engine::TAG_UB).contains(&tag) {
            return Err(MpiError::InvalidTag { tag });
        }
        let progressed = self.nb_progress();
        self.route(comm, progressed)?;
        let wdst = self.world_dst(comm, dst)?;
        let ctx = self.info(comm)?.pt2pt_context();
        let payload = self.pack_payload(buf, count, dt)?;
        let raw = self.eng.isend_bytes(&payload, wdst, tag, ctx);
        let raw = self.route(comm, raw)?;
        Ok(MpiRequest {
            raw: ReqKind::P2p(raw),
            recv: None,
            comm,
        })
    }

    /// Non-blocking receive (MPI_Irecv). `src < 0` is MPI_ANY_SOURCE
    /// (communicator-relative otherwise).
    pub fn irecv(
        &mut self,
        count: i32,
        dt: &Datatype,
        src: i32,
        tag: i32,
        comm: CommHandle,
    ) -> MpiResult<MpiRequest> {
        let count = Self::check_count(count)?;
        if tag != crate::engine::ANY_TAG && !(0..=crate::engine::TAG_UB).contains(&tag) {
            return Err(MpiError::InvalidTag { tag });
        }
        let progressed = self.nb_progress();
        self.route(comm, progressed)?;
        let info = self.info(comm)?;
        let ctx = info.pt2pt_context();
        let wsrc = if src < 0 {
            -1
        } else {
            info.group.world_rank(src as usize)? as i32
        };
        let cap = dt.size() * count;
        let raw = self.eng.irecv_bytes(cap, wsrc, tag, ctx);
        let raw = self.route(comm, raw)?;
        Ok(MpiRequest {
            raw: ReqKind::P2p(raw),
            recv: Some((dt.clone(), count)),
            comm,
        })
    }

    /// Translate and unpack a point-to-point completion: map the source
    /// to a communicator rank and deposit receive payloads into `buf`.
    fn finish_p2p(
        &mut self,
        comm: CommHandle,
        recv: &Option<(Datatype, usize)>,
        completion: Completion,
        buf: Option<&mut [u8]>,
    ) -> MpiResult<Status> {
        let source = self
            .info(comm)?
            .group
            .rank_of(completion.status.source)
            .unwrap_or(usize::MAX);
        let status = Status {
            source,
            ..completion.status
        };
        match recv {
            None => Ok(status),
            Some((dt, count)) => {
                let bytes = completion.data.len();
                let out = buf.ok_or(MpiError::BufferTooSmall {
                    needed: bytes,
                    available: 0,
                })?;
                dt.unpack(&completion.data, *count, out)?;
                if !dt.is_contiguous() {
                    let per_byte = self.eng.profile().pack_per_byte_ns;
                    self.eng
                        .clock_mut()
                        .charge(VDur::from_nanos(bytes as f64 * per_byte));
                }
                Ok(Status { bytes, ..status })
            }
        }
    }

    /// Wait for completion (MPI_Wait). Requests producing data require the
    /// destination buffer; others ignore it. Works on point-to-point and
    /// non-blocking collective requests alike; while waiting, *every*
    /// outstanding collective schedule keeps progressing.
    pub fn wait(&mut self, req: MpiRequest, buf: Option<&mut [u8]>) -> MpiResult<Status> {
        match req.raw {
            ReqKind::P2p(raw) => {
                let progressed = self.nb_progress();
                self.route(req.comm, progressed)?;
                let completion = self.eng.wait(raw);
                let completion = self.route(req.comm, completion)?;
                self.finish_p2p(req.comm, &req.recv, completion, buf)
            }
            ReqKind::Coll(id) => self.wait_icoll(id, req.comm, req.recv, buf),
        }
    }

    /// Non-blocking completion test (MPI_Test). On completion of a data-
    /// producing request, the payload is unpacked into `buf`. A `Some`
    /// return consumes the underlying operation — drop the request.
    pub fn test(&mut self, req: &MpiRequest, buf: Option<&mut [u8]>) -> MpiResult<Option<Status>> {
        let progressed = self.nb_progress();
        self.route(req.comm, progressed)?;
        match req.raw {
            ReqKind::P2p(raw) => {
                let polled = self.eng.test(raw);
                match self.route(req.comm, polled)? {
                    None => Ok(None),
                    Some(completion) => self
                        .finish_p2p(req.comm, &req.recv, completion, buf)
                        .map(Some),
                }
            }
            ReqKind::Coll(id) => {
                let idx = self
                    .scheds
                    .iter()
                    .position(|s| s.id == id)
                    .ok_or(MpiError::InvalidRequest)?;
                let st = &self.scheds[idx];
                if st.err.is_none() && !st.sched.is_done() {
                    return Ok(None);
                }
                self.consume_icoll(idx, req.recv.clone(), buf, None)
                    .map(Some)
            }
        }
    }

    /// Complete all of `reqs` (MPI_Waitall over any mix of point-to-point
    /// and collective requests). Statuses come back in request order, but
    /// progression is *joint*: everything is driven to completion first,
    /// then consumption costs are charged in virtual-completion-time order
    /// — an early-completing later request never waits on an earlier slow
    /// one.
    pub fn waitall(
        &mut self,
        reqs: Vec<MpiRequest>,
        mut bufs: Vec<Option<&mut [u8]>>,
    ) -> MpiResult<Vec<Status>> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        bufs.resize_with(reqs.len(), || None);
        let wait_begin = self.eng.now();
        // Phase 1: drive everything to completion without consuming.
        loop {
            let progressed = self.nb_progress();
            self.route(reqs[0].comm, progressed)?;
            let all_done = reqs.iter().all(|r| match r.raw {
                ReqKind::P2p(raw) => self.eng.is_done(raw),
                ReqKind::Coll(id) => self
                    .scheds
                    .iter()
                    .find(|s| s.id == id)
                    .is_none_or(|s| s.err.is_some() || s.sched.is_done()),
            });
            if all_done {
                break;
            }
            let delivered = self.eng.block_for_delivery();
            self.route(reqs[0].comm, delivered)?;
        }
        // Phase 2: consume in virtual-completion-time order (ties broken
        // by request index) so the costs charged at consumption stack up
        // the way a perfectly-scheduled drain would.
        let mut order: Vec<(f64, usize)> = Vec::with_capacity(reqs.len());
        for (i, r) in reqs.iter().enumerate() {
            let t = match r.raw {
                ReqKind::P2p(raw) => self
                    .eng
                    .completion_time(raw)
                    .map(|t| t.as_nanos())
                    .unwrap_or(f64::MAX),
                ReqKind::Coll(id) => self
                    .scheds
                    .iter()
                    .find(|s| s.id == id)
                    .map(|s| s.sched.finish_time().as_nanos())
                    .unwrap_or(f64::MAX),
            };
            order.push((t, i));
        }
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut reqs: Vec<Option<MpiRequest>> = reqs.into_iter().map(Some).collect();
        let mut statuses: Vec<Option<Status>> =
            std::iter::repeat_with(|| None).take(reqs.len()).collect();
        for (_, i) in order {
            let req = reqs[i].take().expect("each index consumed once");
            let buf = bufs[i].take();
            let status = match req.raw {
                ReqKind::P2p(raw) => {
                    let completion = self.eng.try_complete(raw);
                    let completion = self
                        .route(req.comm, completion)?
                        .expect("driven to completion above");
                    self.finish_p2p(req.comm, &req.recv, completion, buf)?
                }
                ReqKind::Coll(id) => {
                    let idx = self
                        .scheds
                        .iter()
                        .position(|s| s.id == id)
                        .ok_or(MpiError::InvalidRequest)?;
                    self.consume_icoll(idx, req.recv, buf, None)?
                }
            };
            statuses[i] = Some(status);
        }
        obs::span("mpi.wait", "pt2pt", wait_begin, self.eng.now(), Vec::new());
        Ok(statuses
            .into_iter()
            .map(|s| s.expect("all indices consumed"))
            .collect())
    }

    /// MPI_Testany: test the requests in order and complete the first one
    /// found done. Returns its index and status; the caller must drop that
    /// request (its underlying operation is consumed).
    pub fn testany(
        &mut self,
        reqs: &[MpiRequest],
        bufs: &mut [Option<&mut [u8]>],
    ) -> MpiResult<Option<(usize, Status)>> {
        for (i, req) in reqs.iter().enumerate() {
            let buf = bufs.get_mut(i).and_then(|b| b.as_deref_mut());
            if let Some(status) = self.test(req, buf)? {
                return Ok(Some((i, status)));
            }
        }
        Ok(None)
    }

    /// Translate a world rank in a status to a communicator rank.
    pub fn comm_rank_of_world(&self, comm: CommHandle, world: usize) -> MpiResult<Option<usize>> {
        Ok(self.info(comm)?.group.rank_of(world))
    }

    // ------------------------------------------------------------------
    // Collectives (algorithm selection lives in `coll`)
    // ------------------------------------------------------------------

    /// MPI_Barrier.
    pub fn barrier(&mut self, comm: CommHandle) -> MpiResult<()> {
        let r = self.coll_span("barrier", |m| coll::barrier(m, comm));
        self.route(comm, r)
    }

    /// MPI_Bcast over `count` elements of `dt` in `buf`.
    pub fn bcast(
        &mut self,
        buf: &mut [u8],
        count: i32,
        dt: &Datatype,
        root: usize,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let count = Self::check_count(count)?;
        let r = self.coll_span("bcast", |m| coll::bcast(m, buf, count, dt, root, comm));
        self.route(comm, r)
    }

    /// MPI_Reduce. `recv` must be `Some` on the root.
    pub fn reduce(
        &mut self,
        send: &[u8],
        recv: Option<&mut [u8]>,
        count: i32,
        dt: &Datatype,
        op: ReduceOp,
        root: usize,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let count = Self::check_count(count)?;
        let r = self.coll_span("reduce", |m| {
            coll::reduce(m, send, recv, count, dt, op, root, comm)
        });
        self.route(comm, r)
    }

    /// MPI_Allreduce.
    pub fn allreduce(
        &mut self,
        send: &[u8],
        recv: &mut [u8],
        count: i32,
        dt: &Datatype,
        op: ReduceOp,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let count = Self::check_count(count)?;
        let r = self.coll_span("allreduce", |m| {
            coll::allreduce(m, send, recv, count, dt, op, comm)
        });
        self.route(comm, r)
    }

    /// MPI_Gather (equal contributions). `recv` significant at root.
    pub fn gather(
        &mut self,
        send: &[u8],
        recv: Option<&mut [u8]>,
        count: i32,
        dt: &Datatype,
        root: usize,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let count = Self::check_count(count)?;
        let r = self.coll_span("gather", |m| {
            coll::gather(m, send, recv, count, dt, root, comm)
        });
        self.route(comm, r)
    }

    /// MPI_Gatherv. `recvcounts`/`displs` are in elements, significant at
    /// root.
    #[allow(clippy::too_many_arguments)]
    pub fn gatherv(
        &mut self,
        send: &[u8],
        sendcount: i32,
        recv: Option<&mut [u8]>,
        recvcounts: &[i32],
        displs: &[i32],
        dt: &Datatype,
        root: usize,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let sendcount = Self::check_count(sendcount)?;
        let r = self.coll_span("gatherv", |m| {
            coll::gatherv(m, send, sendcount, recv, recvcounts, displs, dt, root, comm)
        });
        self.route(comm, r)
    }

    /// MPI_Scatter (equal blocks). `send` significant at root.
    pub fn scatter(
        &mut self,
        send: Option<&[u8]>,
        recv: &mut [u8],
        count: i32,
        dt: &Datatype,
        root: usize,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let count = Self::check_count(count)?;
        let r = self.coll_span("scatter", |m| {
            coll::scatter(m, send, recv, count, dt, root, comm)
        });
        self.route(comm, r)
    }

    /// MPI_Scatterv.
    #[allow(clippy::too_many_arguments)]
    pub fn scatterv(
        &mut self,
        send: Option<&[u8]>,
        sendcounts: &[i32],
        displs: &[i32],
        recv: &mut [u8],
        recvcount: i32,
        dt: &Datatype,
        root: usize,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let recvcount = Self::check_count(recvcount)?;
        let r = self.coll_span("scatterv", |m| {
            coll::scatterv(m, send, sendcounts, displs, recv, recvcount, dt, root, comm)
        });
        self.route(comm, r)
    }

    /// MPI_Allgather (equal contributions).
    pub fn allgather(
        &mut self,
        send: &[u8],
        recv: &mut [u8],
        count: i32,
        dt: &Datatype,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let count = Self::check_count(count)?;
        let r = self.coll_span("allgather", |m| {
            coll::allgather(m, send, recv, count, dt, comm)
        });
        self.route(comm, r)
    }

    /// MPI_Allgatherv.
    pub fn allgatherv(
        &mut self,
        send: &[u8],
        sendcount: i32,
        recv: &mut [u8],
        recvcounts: &[i32],
        displs: &[i32],
        dt: &Datatype,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let sendcount = Self::check_count(sendcount)?;
        let r = self.coll_span("allgatherv", |m| {
            coll::allgatherv(m, send, sendcount, recv, recvcounts, displs, dt, comm)
        });
        self.route(comm, r)
    }

    /// MPI_Alltoall (equal blocks).
    pub fn alltoall(
        &mut self,
        send: &[u8],
        recv: &mut [u8],
        count: i32,
        dt: &Datatype,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let count = Self::check_count(count)?;
        let r = self.coll_span("alltoall", |m| {
            coll::alltoall(m, send, recv, count, dt, comm)
        });
        self.route(comm, r)
    }

    /// MPI_Alltoallv.
    #[allow(clippy::too_many_arguments)]
    pub fn alltoallv(
        &mut self,
        send: &[u8],
        sendcounts: &[i32],
        sdispls: &[i32],
        recv: &mut [u8],
        recvcounts: &[i32],
        rdispls: &[i32],
        dt: &Datatype,
        comm: CommHandle,
    ) -> MpiResult<()> {
        let r = self.coll_span("alltoallv", |m| {
            coll::alltoallv(
                m, send, sendcounts, sdispls, recv, recvcounts, rdispls, dt, comm,
            )
        });
        self.route(comm, r)
    }

    // ------------------------------------------------------------------
    // Non-blocking collectives (schedule compilation lives in
    // `coll::sched`)
    // ------------------------------------------------------------------

    /// Opportunistically progress every outstanding non-blocking
    /// collective schedule: drain pending deliveries, then let each
    /// schedule retire arrivals and fire follow-on rounds. Invoked at
    /// every library entry, so a rank that is "inside MPI" for any reason
    /// keeps its collectives moving — the progression-engine behavior the
    /// overlap benchmarks measure. Errors raised by an individual
    /// schedule are parked on it (surfacing at its own `Wait`/`Test`);
    /// only rank-local failures propagate from here.
    pub(crate) fn nb_progress(&mut self) -> MpiResult<()> {
        if self.scheds.is_empty() {
            return Ok(());
        }
        self.eng.poll()?;
        for st in self.scheds.iter_mut() {
            if st.err.is_some() || st.sched.is_done() {
                continue;
            }
            if let Err(e) = st.sched.advance(&mut self.eng) {
                st.err = Some(e);
            }
        }
        Ok(())
    }

    /// Compile and post one non-blocking collective: charge the per-call
    /// software overhead, open the collective instance (labelling the
    /// schedule's traffic for causal tracing), and fire the schedule's
    /// first round.
    fn post_icoll(
        &mut self,
        comm: CommHandle,
        kind: IcollKind,
        recv: Option<(Datatype, usize)>,
    ) -> MpiResult<MpiRequest> {
        let progressed = self.nb_progress();
        self.route(comm, progressed)?;
        let ctx = self.info(comm)?.coll_context();
        let percall = VDur::from_nanos(self.profile().coll.percall_ns);
        self.eng.clock_mut().charge(percall);
        self.eng.begin_collective(ctx);
        let seq = {
            let s = self.nbc_seq.entry(ctx).or_insert(0);
            let cur = *s;
            *s += 1;
            cur
        };
        let compiled = sched::compile(self, comm, kind, seq);
        let compiled = self.route(comm, compiled)?;
        let id = self.next_icoll;
        self.next_icoll += 1;
        self.scheds.push(IcollState {
            id,
            comm,
            sched: compiled,
            err: None,
        });
        Ok(MpiRequest {
            raw: ReqKind::Coll(id),
            recv,
            comm,
        })
    }

    /// Block until schedule `id` is done, keeping *all* outstanding
    /// schedules progressing (a neighbor's later collective may be what
    /// unblocks ours), then consume it.
    fn wait_icoll(
        &mut self,
        id: u64,
        comm: CommHandle,
        recv: Option<(Datatype, usize)>,
        buf: Option<&mut [u8]>,
    ) -> MpiResult<Status> {
        let wait_begin = self.eng.now();
        loop {
            let progressed = self.nb_progress();
            self.route(comm, progressed)?;
            let st = self
                .scheds
                .iter()
                .find(|s| s.id == id)
                .ok_or(MpiError::InvalidRequest)?;
            if st.err.is_some() || st.sched.is_done() {
                break;
            }
            let delivered = self.eng.block_for_delivery();
            self.route(comm, delivered)?;
        }
        let idx = self
            .scheds
            .iter()
            .position(|s| s.id == id)
            .expect("present: found in wait loop");
        self.consume_icoll(idx, recv, buf, Some(wait_begin))
    }

    /// Consume a finished (or failed) schedule: merge its timeline into
    /// the rank clock, emit the wait + collective spans, and unpack the
    /// result.
    fn consume_icoll(
        &mut self,
        idx: usize,
        recv: Option<(Datatype, usize)>,
        buf: Option<&mut [u8]>,
        wait_begin: Option<VTime>,
    ) -> MpiResult<Status> {
        let st = self.scheds.remove(idx);
        if let Some(e) = st.err {
            return self.route(st.comm, Err(e));
        }
        let finish = st.sched.finish_time();
        self.eng.clock_mut().merge(finish);
        let now = self.eng.now();
        if let Some(begin) = wait_begin {
            obs::span("mpi.wait", "pt2pt", begin, now, Vec::new());
        }
        // The collective's own span covers post→finish on the schedule
        // timeline: `obs-analyze` sees the operation's true extent and can
        // attribute the part hidden under application compute as overlap.
        if obs::tracing_enabled() {
            obs::span(
                st.sched.name,
                "coll",
                st.sched.posted_at,
                finish,
                vec![("coll", obs::ArgValue::U64(st.sched.coll_id))],
            );
        }
        obs::count("coll.nb.completed", 1);
        let my_rank = self.info(st.comm)?.my_rank;
        let data = st.sched.take_output();
        match recv {
            None => Ok(Status {
                source: my_rank,
                tag: 0,
                bytes: 0,
            }),
            Some((dt, count)) => {
                let bytes = data.len();
                let out = buf.ok_or(MpiError::BufferTooSmall {
                    needed: bytes,
                    available: 0,
                })?;
                dt.unpack(&data, count, out)?;
                if !dt.is_contiguous() {
                    let per_byte = self.eng.profile().pack_per_byte_ns;
                    self.eng
                        .clock_mut()
                        .charge(VDur::from_nanos(bytes as f64 * per_byte));
                }
                Ok(Status {
                    source: my_rank,
                    tag: 0,
                    bytes,
                })
            }
        }
    }

    /// Validate a root argument against `comm`.
    fn check_icoll_root(&self, comm: CommHandle, root: usize) -> MpiResult<()> {
        let size = self.size(comm)?;
        if root >= size {
            return Err(MpiError::InvalidRank {
                rank: root as i32,
                comm_size: size,
            });
        }
        Ok(())
    }

    /// MPI_Ibarrier.
    pub fn ibarrier(&mut self, comm: CommHandle) -> MpiResult<MpiRequest> {
        self.post_icoll(comm, IcollKind::Barrier, None)
    }

    /// MPI_Ibcast over `count` elements of `dt`. `buf` is read at the
    /// root; every rank receives the payload into the buffer passed to
    /// `Wait`/`Test`.
    pub fn ibcast(
        &mut self,
        buf: &[u8],
        count: i32,
        dt: &Datatype,
        root: usize,
        comm: CommHandle,
    ) -> MpiResult<MpiRequest> {
        let count = Self::check_count(count)?;
        self.check_icoll_root(comm, root)?;
        let me = self.rank(comm)?;
        let data = if me == root {
            self.pack_payload(buf, count, dt)?
        } else {
            vec![0u8; dt.size() * count]
        };
        self.post_icoll(
            comm,
            IcollKind::Bcast { data, root },
            Some((dt.clone(), count)),
        )
    }

    /// MPI_Iallreduce.
    pub fn iallreduce(
        &mut self,
        send: &[u8],
        count: i32,
        dt: &Datatype,
        op: ReduceOp,
        comm: CommHandle,
    ) -> MpiResult<MpiRequest> {
        let count = Self::check_count(count)?;
        let mine = self.pack_payload(send, count, dt)?;
        self.post_icoll(
            comm,
            IcollKind::Allreduce {
                mine,
                op,
                dt: dt.clone(),
            },
            Some((dt.clone(), count)),
        )
    }

    /// MPI_Iallgather (equal contributions). The completion buffer holds
    /// `size × count` elements.
    pub fn iallgather(
        &mut self,
        send: &[u8],
        count: i32,
        dt: &Datatype,
        comm: CommHandle,
    ) -> MpiResult<MpiRequest> {
        let count = Self::check_count(count)?;
        let size = self.size(comm)?;
        let mine = self.pack_payload(send, count, dt)?;
        self.post_icoll(
            comm,
            IcollKind::Allgather { mine },
            Some((dt.clone(), count * size)),
        )
    }

    /// MPI_Igather (equal contributions). Only the root's completion
    /// carries data (`size × count` elements).
    pub fn igather(
        &mut self,
        send: &[u8],
        count: i32,
        dt: &Datatype,
        root: usize,
        comm: CommHandle,
    ) -> MpiResult<MpiRequest> {
        let count = Self::check_count(count)?;
        self.check_icoll_root(comm, root)?;
        let size = self.size(comm)?;
        let me = self.rank(comm)?;
        let mine = self.pack_payload(send, count, dt)?;
        let recv = (me == root).then(|| (dt.clone(), count * size));
        self.post_icoll(comm, IcollKind::Gather { mine, root }, recv)
    }

    /// MPI_Ialltoall (equal blocks): `send` holds `size × count`
    /// elements, one block per destination; so does the completion
    /// buffer, one block per source.
    pub fn ialltoall(
        &mut self,
        send: &[u8],
        count: i32,
        dt: &Datatype,
        comm: CommHandle,
    ) -> MpiResult<MpiRequest> {
        let count = Self::check_count(count)?;
        let size = self.size(comm)?;
        let packed = self.pack_payload(send, count * size, dt)?;
        self.post_icoll(
            comm,
            IcollKind::Alltoall { send: packed },
            Some((dt.clone(), count * size)),
        )
    }

    // ------------------------------------------------------------------
    // One-sided communication (MPI_Win_*)
    // ------------------------------------------------------------------

    fn win_info(&self, win: Win) -> MpiResult<&WinInfo> {
        self.wins
            .get(win.0)
            .and_then(|w| w.as_ref())
            .ok_or(MpiError::InvalidWin("invalid or freed window handle"))
    }

    fn win_info_mut(&mut self, win: Win) -> MpiResult<&mut WinInfo> {
        self.wins
            .get_mut(win.0)
            .and_then(|w| w.as_mut())
            .ok_or(MpiError::InvalidWin("invalid or freed window handle"))
    }

    /// Collective window creation (MPI_Win_create): every member of `comm`
    /// exposes `size` bytes of zero-initialized memory. The window id is
    /// agreed like a context id and doubles as the one-sided fabric
    /// channel; the closing barrier guarantees no rank targets a window a
    /// peer has not exposed yet.
    pub fn win_create(&mut self, size: usize, comm: CommHandle) -> MpiResult<Win> {
        let progressed = self.nb_progress();
        self.route(comm, progressed)?;
        self.info(comm)?;
        let mine = self.next_win;
        let mut out = [0u8; 4];
        self.allreduce(
            &mine.to_le_bytes(),
            &mut out,
            1,
            &crate::datatype::INT,
            ReduceOp::Max,
            comm,
        )?;
        let id = u32::from_le_bytes(out);
        self.next_win = id + 1;
        let created = self.eng.win_create(id, size);
        self.route(comm, created)?;
        self.barrier(comm)?;
        self.wins.push(Some(WinInfo {
            id,
            comm,
            size,
            pending_puts: Vec::new(),
            pending_gets: Vec::new(),
            locked: None,
        }));
        obs::count("rma.win.created", 1);
        Ok(Win(self.wins.len() - 1))
    }

    /// Collective window destruction (MPI_Win_free). All one-sided
    /// operations on the window must have been completed by an epoch
    /// close (`win_fence` / `win_unlock`) first.
    pub fn win_free(&mut self, win: Win) -> MpiResult<()> {
        let progressed = self.nb_progress();
        let comm = self.win_info(win)?.comm;
        self.route(comm, progressed)?;
        {
            let w = self.win_info(win)?;
            if !w.pending_puts.is_empty() || !w.pending_gets.is_empty() || w.locked.is_some() {
                return Err(MpiError::InvalidWin(
                    "window freed with an open access epoch",
                ));
            }
        }
        // No member may tear down exposure while a peer could still be
        // issuing; mirror the creation barrier.
        self.barrier(comm)?;
        let id = self.win_info(win)?.id;
        let freed = self.eng.win_free(id);
        self.route(comm, freed)?;
        self.wins[win.0] = None;
        Ok(())
    }

    /// Bytes this rank exposes through `win`.
    pub fn win_size(&self, win: Win) -> MpiResult<usize> {
        Ok(self.win_info(win)?.size)
    }

    /// Read this rank's exposed window memory (the NIC view deposits land
    /// in). Zero virtual cost — callers synchronize via epochs.
    pub fn win_mem(&self, win: Win) -> MpiResult<&[u8]> {
        self.eng.win_mem(self.win_info(win)?.id)
    }

    /// Mutable access to this rank's exposed window memory (bindings sync
    /// user storage into the NIC view here). Zero virtual cost.
    pub fn win_mem_mut(&mut self, win: Win) -> MpiResult<&mut [u8]> {
        let id = self.win_info(win)?.id;
        self.eng.win_mem_mut(id)
    }

    /// Charge NIC registration for a zero-copy transfer of `bytes` from
    /// the region identified by `reg_key`, through the pin-down cache.
    /// Transfers at or below the path's RMA eager threshold use
    /// pre-registered bounce buffers and skip registration entirely.
    fn charge_registration(&mut self, wtarget: usize, bytes: usize, reg_key: u64) {
        let path = *self.eng.path_params(wtarget);
        if bytes <= path.rma_eager_threshold {
            return;
        }
        match self.reg.lookup(reg_key, bytes) {
            RegLookup::Hit => obs::count("rma.reg.hit", 1),
            RegLookup::Miss { evicted } => {
                obs::count("rma.reg.miss", 1);
                if evicted {
                    obs::count("rma.reg.evict", 1);
                }
                let begin = self.eng.now();
                self.eng.clock_mut().charge(path.rma_reg(bytes));
                if obs::tracing_enabled() {
                    obs::span(
                        "rma.reg",
                        "rma",
                        begin,
                        self.eng.now(),
                        vec![
                            ("bytes", obs::ArgValue::U64(bytes as u64)),
                            ("key", obs::ArgValue::U64(reg_key)),
                        ],
                    );
                }
            }
        }
    }

    /// One-sided put (MPI_Put): RDMA-write `data` into `target`'s window
    /// at byte `offset`. `target` is a communicator rank; `reg_key`
    /// identifies the origin region for the registration cache (zero-copy
    /// path). Completes at the target when the epoch closes.
    pub fn win_put(
        &mut self,
        win: Win,
        data: &[u8],
        reg_key: u64,
        target: usize,
        offset: usize,
    ) -> MpiResult<()> {
        let progressed = self.nb_progress();
        let (comm, id) = {
            let w = self.win_info(win)?;
            (w.comm, w.id)
        };
        self.route(comm, progressed)?;
        let wtarget = self.world_dst(comm, target)?;
        self.charge_registration(wtarget, data.len(), reg_key);
        let arrival = self.eng.rma_put(wtarget, id, offset, data);
        let arrival = self.route(comm, arrival)?;
        self.win_info_mut(win)?
            .pending_puts
            .push((wtarget, arrival));
        Ok(())
    }

    /// One-sided accumulate (MPI_Accumulate) of 32-bit integer lanes:
    /// combine `data` into `target`'s window with `op`. Operands are
    /// always staged through pre-registered bounce buffers, so no
    /// registration charge applies.
    pub fn win_accumulate(
        &mut self,
        win: Win,
        data: &[u8],
        op: ReduceOp,
        target: usize,
        offset: usize,
    ) -> MpiResult<()> {
        let progressed = self.nb_progress();
        let (comm, id) = {
            let w = self.win_info(win)?;
            (w.comm, w.id)
        };
        self.route(comm, progressed)?;
        let wtarget = self.world_dst(comm, target)?;
        let arrival = self.eng.rma_accumulate(wtarget, id, offset, op, data);
        let arrival = self.route(comm, arrival)?;
        self.win_info_mut(win)?
            .pending_puts
            .push((wtarget, arrival));
        Ok(())
    }

    /// One-sided get (MPI_Get): fetch `nbytes` from `target`'s window at
    /// byte `offset`. The payload is delivered when the epoch closes;
    /// `reg_key` identifies the origin destination region (the RDMA-read
    /// reply lands there zero-copy).
    pub fn win_get(
        &mut self,
        win: Win,
        target: usize,
        offset: usize,
        nbytes: usize,
        reg_key: u64,
    ) -> MpiResult<RmaGet> {
        let progressed = self.nb_progress();
        let (comm, id) = {
            let w = self.win_info(win)?;
            (w.comm, w.id)
        };
        self.route(comm, progressed)?;
        let wtarget = self.world_dst(comm, target)?;
        self.charge_registration(wtarget, nbytes, reg_key);
        let raw = self.eng.rma_get(wtarget, id, offset, nbytes);
        let raw = self.route(comm, raw)?;
        let tok = RmaGet(raw);
        self.win_info_mut(win)?.pending_gets.push((wtarget, tok));
        Ok(tok)
    }

    /// Complete the outstanding gets in `tokens` (issue order) and merge
    /// the put horizon, returning `(token, payload)` pairs.
    fn flush_rma(
        &mut self,
        comm: CommHandle,
        puts: Vec<(usize, VTime)>,
        gets: Vec<(usize, RmaGet)>,
    ) -> MpiResult<Vec<(RmaGet, Box<[u8]>)>> {
        for (_, arrival) in puts {
            self.eng.clock_mut().merge(arrival);
        }
        let mut out = Vec::with_capacity(gets.len());
        for (_, tok) in gets {
            let c = self.eng.wait(tok.0);
            let c = self.route(comm, c)?;
            out.push((tok, c.data));
        }
        Ok(out)
    }

    /// Close the current active-target epoch (MPI_Win_fence): complete
    /// every one-sided operation this rank issued, synchronize the
    /// window's communicator, and hand back completed get payloads in
    /// issue order.
    ///
    /// Remote deposits are visible after the fence because the barrier's
    /// completion causally depends on every origin's entry, which in turn
    /// follows its last put's injection — the fabric delivers in causal
    /// order, so the deposits are drained before the barrier completes.
    pub fn win_fence(&mut self, win: Win) -> MpiResult<Vec<(RmaGet, Box<[u8]>)>> {
        let progressed = self.nb_progress();
        let comm = self.win_info(win)?.comm;
        self.route(comm, progressed)?;
        if self.win_info(win)?.locked.is_some() {
            return Err(MpiError::InvalidWin("fence inside a passive-target epoch"));
        }
        let begin = self.eng.now();
        let puts = std::mem::take(&mut self.win_info_mut(win)?.pending_puts);
        let gets = std::mem::take(&mut self.win_info_mut(win)?.pending_gets);
        let out = self.flush_rma(comm, puts, gets)?;
        obs::count("rma.fence.epochs", 1);
        self.barrier(comm)?;
        // A 1-rank window's barrier moves no messages; drain self-targeted
        // deliveries explicitly so local puts are applied before reads.
        let polled = self.eng.poll();
        self.route(comm, polled)?;
        // Close the epoch: every frame stamped with it is causally in the
        // mailbox by the end of the barrier (origins flush before they
        // enter), so the deterministic replay below sees them all — while
        // next-epoch frames from origins that raced ahead stay deferred.
        let id = self.win_info(win)?.id;
        let advanced = self.eng.win_epoch_advance(id);
        self.route(comm, advanced)?;
        if obs::tracing_enabled() {
            obs::span("rma.fence", "rma", begin, self.eng.now(), Vec::new());
        }
        Ok(out)
    }

    /// Local window synchronization (MPI_Win_sync analog): drain any
    /// one-sided deliveries already addressed to this rank so deposits a
    /// peer has causally completed (e.g. before a barrier this rank just
    /// left) are visible in the window memory. Purely local — no epoch
    /// semantics of its own.
    pub fn win_sync(&mut self, win: Win) -> MpiResult<()> {
        let progressed = self.nb_progress();
        let comm = self.win_info(win)?.comm;
        self.route(comm, progressed)?;
        let polled = self.eng.poll();
        self.route(comm, polled)?;
        // Passive-target deposits that raced ahead of this rank's last
        // fence sit deferred under the current epoch; surface them now.
        let id = self.win_info(win)?.id;
        let delivered = self.eng.win_deliver_current(id);
        self.route(comm, delivered)?;
        Ok(())
    }

    /// Begin a passive-target epoch on `target` (MPI_Win_lock,
    /// exclusive). Modeled as a NIC-level atomic: one control round trip
    /// charged at the origin, no target CPU involvement, and no lock
    /// *contention* queueing (documented limitation).
    pub fn win_lock(&mut self, win: Win, target: usize) -> MpiResult<()> {
        let progressed = self.nb_progress();
        let comm = self.win_info(win)?.comm;
        self.route(comm, progressed)?;
        if self.win_info(win)?.locked.is_some() {
            return Err(MpiError::InvalidWin("window is already locked"));
        }
        let wtarget = self.world_dst(comm, target)?;
        let r = self.eng.rma_control_roundtrip(wtarget);
        self.route(comm, r)?;
        self.win_info_mut(win)?.locked = Some(wtarget);
        obs::count("rma.lock.acquired", 1);
        Ok(())
    }

    /// End a passive-target epoch (MPI_Win_unlock): flush every operation
    /// issued to `target` under the lock, then release with another
    /// control round trip. Completed get payloads return in issue order.
    pub fn win_unlock(&mut self, win: Win, target: usize) -> MpiResult<Vec<(RmaGet, Box<[u8]>)>> {
        let progressed = self.nb_progress();
        let comm = self.win_info(win)?.comm;
        self.route(comm, progressed)?;
        let wtarget = self.world_dst(comm, target)?;
        if self.win_info(win)?.locked != Some(wtarget) {
            return Err(MpiError::InvalidWin("unlock without a matching lock"));
        }
        let begin = self.eng.now();
        let (puts, gets) = {
            let w = self.win_info_mut(win)?;
            let (puts, keep_p): (Vec<_>, Vec<_>) = std::mem::take(&mut w.pending_puts)
                .into_iter()
                .partition(|&(t, _)| t == wtarget);
            let (gets, keep_g): (Vec<_>, Vec<_>) = std::mem::take(&mut w.pending_gets)
                .into_iter()
                .partition(|&(t, _)| t == wtarget);
            w.pending_puts = keep_p;
            w.pending_gets = keep_g;
            (puts, gets)
        };
        let out = self.flush_rma(comm, puts, gets)?;
        let r = self.eng.rma_control_roundtrip(wtarget);
        self.route(comm, r)?;
        self.win_info_mut(win)?.locked = None;
        if obs::tracing_enabled() {
            obs::span("rma.unlock", "rma", begin, self.eng.now(), Vec::new());
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    fn push_comm(&mut self, parent: CommHandle, info: CommInfo) -> CommHandle {
        self.comms.push(Some(info));
        self.errhandlers.push(self.errhandler(parent));
        CommHandle(self.comms.len() - 1)
    }

    /// Agree on a fresh base context across the members of `comm`
    /// (allreduce-MAX of the local proposals, like real MPI's context-id
    /// agreement).
    fn agree_context(&mut self, comm: CommHandle) -> MpiResult<u32> {
        let mine = self.next_context;
        let mut out = [0u8; 4];
        self.allreduce(
            &mine.to_le_bytes(),
            &mut out,
            1,
            &crate::datatype::INT,
            ReduceOp::Max,
            comm,
        )?;
        let agreed = u32::from_le_bytes(out);
        self.next_context = agreed + 1;
        Ok(agreed)
    }

    /// MPI_Comm_dup: same group, fresh context.
    pub fn comm_dup(&mut self, comm: CommHandle) -> MpiResult<CommHandle> {
        let ctx = self.agree_context(comm)?;
        let info = self.info(comm)?;
        let dup = CommInfo {
            base_context: ctx,
            group: info.group.clone(),
            my_rank: info.my_rank,
        };
        Ok(self.push_comm(comm, dup))
    }

    /// MPI_Comm_split. `color < 0` means MPI_UNDEFINED (no communicator
    /// for this process). Members are ordered by `(key, parent rank)`.
    pub fn comm_split(
        &mut self,
        comm: CommHandle,
        color: i32,
        key: i32,
    ) -> MpiResult<Option<CommHandle>> {
        let (my_rank, size) = {
            let info = self.info(comm)?;
            (info.my_rank, info.group.size())
        };
        // Allgather (color, key) over the parent communicator.
        let mut mine = [0u8; 8];
        mine[..4].copy_from_slice(&color.to_le_bytes());
        mine[4..].copy_from_slice(&key.to_le_bytes());
        let mut all = vec![0u8; 8 * size];
        self.allgather(&mine, &mut all, 8, &crate::datatype::BYTE, comm)?;
        let ctx = self.agree_context(comm)?;
        if color < 0 {
            return Ok(None);
        }
        // Members with my color, sorted by (key, parent rank).
        let mut members: Vec<(i32, usize)> = (0..size)
            .filter_map(|r| {
                let c = i32::from_le_bytes(all[8 * r..8 * r + 4].try_into().unwrap());
                let k = i32::from_le_bytes(all[8 * r + 4..8 * r + 8].try_into().unwrap());
                (c == color).then_some((k, r))
            })
            .collect();
        members.sort_unstable();
        let parent_group = self.info(comm)?.group.clone();
        let world_ranks: Vec<usize> = members
            .iter()
            .map(|&(_, r)| parent_group.world_rank(r).expect("member of parent"))
            .collect();
        let my_new = members
            .iter()
            .position(|&(_, r)| r == my_rank)
            .expect("caller has this color");
        let info = CommInfo {
            base_context: ctx,
            group: Group::new(world_ranks)?,
            my_rank: my_new,
        };
        Ok(Some(self.push_comm(comm, info)))
    }

    /// MPI_Comm_create: collective over `comm`; returns a communicator
    /// only on members of `group`.
    pub fn comm_create(
        &mut self,
        comm: CommHandle,
        group: &Group,
    ) -> MpiResult<Option<CommHandle>> {
        let ctx = self.agree_context(comm)?;
        let my_world = {
            let info = self.info(comm)?;
            info.group.world_rank(info.my_rank)?
        };
        match group.rank_of(my_world) {
            None => Ok(None),
            Some(my_rank) => {
                let info = CommInfo {
                    base_context: ctx,
                    group: group.clone(),
                    my_rank,
                };
                Ok(Some(self.push_comm(comm, info)))
            }
        }
    }

    /// MPI_Comm_free. The world communicator cannot be freed.
    pub fn comm_free(&mut self, comm: CommHandle) -> MpiResult<()> {
        if comm == COMM_WORLD {
            return Err(MpiError::InvalidComm);
        }
        let slot = self.comms.get_mut(comm.0).ok_or(MpiError::InvalidComm)?;
        if slot.take().is_none() {
            return Err(MpiError::InvalidComm);
        }
        Ok(())
    }

    /// Fabric-level traffic counters for this rank.
    pub fn fabric_stats(&self) -> simfabric::SendStats {
        self.eng.fabric_stats()
    }
}
