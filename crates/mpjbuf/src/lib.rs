//! `mpjbuf` — the buffering layer (Section IV-A of the paper).
//!
//! MVAPICH2-J communicates Java arrays by staging them through pooled
//! direct ByteBuffers: the pool ([`BufferPool`]) amortizes the high cost
//! of `allocateDirect`, and the staging buffer ([`Buffer`]) provides the
//! paper's Listing-1 interface — `write`/`read` for all primitive types,
//! section headers, encodings, and `commit`/`clear`/`free` — plus the
//! raw-staging fast path the bindings use for ordinary array messages.
//!
//! Because staging copies are *explicit*, subsets of arrays and scattered
//! (derived-datatype) element layouts can be gathered into contiguous
//! wire bytes — the two capabilities the paper highlights over the
//! `Get<Type>ArrayElements` approach.

pub mod buffer;
pub mod pool;

pub use buffer::{Buffer, SECTION_HEADER_BYTES};
pub use pool::{BufferPool, PoolStats};
