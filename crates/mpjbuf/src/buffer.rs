//! `mpjbuf::Buffer` — the staging buffer of the buffering layer,
//! following the interface of the paper's Listing 1.
//!
//! A `Buffer` wraps a (usually pooled) direct ByteBuffer and supports two
//! staging disciplines:
//!
//! * **raw staging** (`stage_*` / `unstage_*`): header-free bulk copies of
//!   array regions — what the bindings use for ordinary array messages,
//!   so the wire format stays identical to the direct-ByteBuffer path;
//! * **sectioned mode** (`write` / `read` with
//!   [`Buffer::put_section_header`] / [`Buffer::get_section_header`]):
//!   MPJ-Express-style self-describing sections, each carrying a type tag
//!   and element count — used for multi-array messages and derived
//!   datatypes, where "it is possible to copy scattered elements in the
//!   array onto consecutive locations in the ByteBuffer".

use mrt::prim::{ByteOrder, Prim, PrimType};
use mrt::{DirectBuffer, MrtError, MrtResult, Runtime};
use vtime::Clock;

use crate::pool::BufferPool;

/// Bytes of a section header: 1 type tag + 3 reserved + 4 element count.
pub const SECTION_HEADER_BYTES: usize = 8;

fn type_tag(t: PrimType) -> u8 {
    match t {
        PrimType::Byte => 0,
        PrimType::Boolean => 1,
        PrimType::Char => 2,
        PrimType::Short => 3,
        PrimType::Int => 4,
        PrimType::Long => 5,
        PrimType::Float => 6,
        PrimType::Double => 7,
    }
}

fn tag_type(tag: u8) -> MrtResult<PrimType> {
    Ok(match tag {
        0 => PrimType::Byte,
        1 => PrimType::Boolean,
        2 => PrimType::Char,
        3 => PrimType::Short,
        4 => PrimType::Int,
        5 => PrimType::Long,
        6 => PrimType::Float,
        7 => PrimType::Double,
        _ => {
            return Err(MrtError::TypeMismatch {
                expected: "primitive type tag",
                actual: "corrupt section header",
            })
        }
    })
}

/// A staging buffer backed by a direct ByteBuffer.
pub struct Buffer {
    store: DirectBuffer,
    /// Whether `store` came from a pool (free() returns it there).
    pooled: bool,
    write_pos: usize,
    read_pos: usize,
    committed: bool,
    encoding: ByteOrder,
    sections: u32,
}

impl Buffer {
    /// Wrap a caller-provided direct buffer (static buffer).
    pub fn attach(store: DirectBuffer) -> Self {
        Buffer {
            store,
            pooled: false,
            write_pos: 0,
            read_pos: 0,
            committed: false,
            encoding: ByteOrder::Little,
            sections: 0,
        }
    }

    /// Acquire a pooled buffer of at least `size` bytes.
    pub fn from_pool(
        pool: &mut BufferPool,
        rt: &mut Runtime,
        clock: &mut Clock,
        size: usize,
    ) -> Self {
        let store = pool.acquire(rt, clock, size);
        Buffer {
            store,
            pooled: true,
            ..Buffer::attach(store)
        }
    }

    /// The backing direct buffer (what the JNI layer takes the address
    /// of).
    pub fn store(&self) -> DirectBuffer {
        self.store
    }

    /// Bytes staged so far.
    pub fn len(&self) -> usize {
        self.write_pos
    }

    /// Whether nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.write_pos == 0
    }

    /// Remaining staging capacity.
    pub fn remaining(&self) -> usize {
        self.store.capacity() - self.write_pos
    }

    /// Number of sections written (sectioned mode).
    pub fn sections(&self) -> u32 {
        self.sections
    }

    /// `getEncoding()`.
    pub fn encoding(&self) -> ByteOrder {
        self.encoding
    }

    /// `setEncoding(ByteOrder)`. Only allowed before any data is staged.
    pub fn set_encoding(&mut self, rt: &mut Runtime, order: ByteOrder) -> MrtResult<()> {
        if self.write_pos != 0 {
            return Err(MrtError::BufferOverflow {
                needed: 0,
                available: self.write_pos,
            });
        }
        self.encoding = order;
        rt.direct_set_order(self.store, order)
    }

    fn ensure(&self, n: usize) -> MrtResult<()> {
        if self.committed {
            return Err(MrtError::BufferOverflow {
                needed: n,
                available: 0,
            });
        }
        if n > self.remaining() {
            return Err(MrtError::BufferOverflow {
                needed: n,
                available: self.remaining(),
            });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Raw staging (bindings' fast path for basic-type arrays)
    // ------------------------------------------------------------------

    /// Stage `num_els` elements of `src` starting at `src_off` — a bulk
    /// arraycopy into the direct store. Supports array *subsets*, the
    /// capability the Open MPI Java API lost when it dropped `offset`
    /// arguments.
    pub fn stage_array<T: Prim>(
        &mut self,
        rt: &mut Runtime,
        clock: &mut Clock,
        src: mrt::JArray<T>,
        src_off: usize,
        num_els: usize,
    ) -> MrtResult<()> {
        let nbytes = num_els * T::SIZE;
        self.ensure(nbytes)?;
        rt.direct_write_from_array(self.store, self.write_pos, src, src_off, num_els, clock)?;
        self.write_pos += nbytes;
        Ok(())
    }

    /// Unstage `num_els` elements into `dst` at `dst_off`.
    pub fn unstage_array<T: Prim>(
        &mut self,
        rt: &mut Runtime,
        clock: &mut Clock,
        dst: mrt::JArray<T>,
        dst_off: usize,
        num_els: usize,
    ) -> MrtResult<()> {
        let nbytes = num_els * T::SIZE;
        if self.read_pos + nbytes > self.write_pos {
            return Err(MrtError::BufferOverflow {
                needed: nbytes,
                available: self.write_pos - self.read_pos,
            });
        }
        rt.direct_read_into_array(self.store, self.read_pos, dst, dst_off, num_els, clock)?;
        self.read_pos += nbytes;
        Ok(())
    }

    /// Stage raw bytes (already-packed payloads).
    pub fn stage_bytes(
        &mut self,
        rt: &mut Runtime,
        clock: &mut Clock,
        src: &[u8],
    ) -> MrtResult<()> {
        self.ensure(src.len())?;
        rt.direct_write_bytes(self.store, self.write_pos, src, clock)?;
        self.write_pos += src.len();
        Ok(())
    }

    /// Mark a received payload of `n` bytes as present in the store (used
    /// on the receive path, where the native library deposited the data).
    pub fn assume_filled(&mut self, n: usize) -> MrtResult<()> {
        if n > self.store.capacity() {
            return Err(MrtError::BufferOverflow {
                needed: n,
                available: self.store.capacity(),
            });
        }
        self.write_pos = n;
        self.read_pos = 0;
        self.committed = true;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Sectioned mode (Listing 1)
    // ------------------------------------------------------------------

    /// `putSectionHeader(Type)`: open a section of `num_els` elements.
    pub fn put_section_header(
        &mut self,
        rt: &mut Runtime,
        clock: &mut Clock,
        ty: PrimType,
        num_els: usize,
    ) -> MrtResult<()> {
        self.ensure(SECTION_HEADER_BYTES)?;
        let mut hdr = [0u8; SECTION_HEADER_BYTES];
        hdr[0] = type_tag(ty);
        hdr[4..].copy_from_slice(&(num_els as u32).to_le_bytes());
        rt.direct_write_bytes(self.store, self.write_pos, &hdr, clock)?;
        self.write_pos += SECTION_HEADER_BYTES;
        self.sections += 1;
        Ok(())
    }

    /// `getSectionHeader()`: read the next section's type and length.
    pub fn get_section_header(
        &mut self,
        rt: &Runtime,
        clock: &mut Clock,
    ) -> MrtResult<(PrimType, usize)> {
        if self.read_pos + SECTION_HEADER_BYTES > self.write_pos {
            return Err(MrtError::BufferOverflow {
                needed: SECTION_HEADER_BYTES,
                available: self.write_pos - self.read_pos,
            });
        }
        let mut hdr = [0u8; SECTION_HEADER_BYTES];
        rt.direct_read_bytes(self.store, self.read_pos, &mut hdr, clock)?;
        self.read_pos += SECTION_HEADER_BYTES;
        let ty = tag_type(hdr[0])?;
        let n = u32::from_le_bytes(hdr[4..].try_into().expect("fixed header")) as usize;
        Ok((ty, n))
    }

    /// `write(type[] source, int srcOff, int numEls)`: header + data.
    pub fn write<T: Prim>(
        &mut self,
        rt: &mut Runtime,
        clock: &mut Clock,
        src: mrt::JArray<T>,
        src_off: usize,
        num_els: usize,
    ) -> MrtResult<()> {
        self.put_section_header(rt, clock, T::TYPE, num_els)?;
        self.stage_array(rt, clock, src, src_off, num_els)
    }

    /// `read(type[] dest, int dstOff, int numEls)`: consume the next
    /// section, checking its type tag and length.
    pub fn read<T: Prim>(
        &mut self,
        rt: &mut Runtime,
        clock: &mut Clock,
        dst: mrt::JArray<T>,
        dst_off: usize,
        num_els: usize,
    ) -> MrtResult<()> {
        let (ty, n) = self.get_section_header(rt, clock)?;
        if ty != T::TYPE {
            return Err(MrtError::TypeMismatch {
                expected: T::TYPE.name(),
                actual: ty.name(),
            });
        }
        if n != num_els {
            return Err(MrtError::BufferOverflow {
                needed: num_els,
                available: n,
            });
        }
        self.unstage_array(rt, clock, dst, dst_off, num_els)
    }

    // ------------------------------------------------------------------
    // Lifecycle (Listing 1 utility methods)
    // ------------------------------------------------------------------

    /// `commit()`: freeze the staged content for communication and rewind
    /// the read cursor.
    pub fn commit(&mut self) {
        self.committed = true;
        self.read_pos = 0;
    }

    /// `clear()`: reset for reuse without returning the store.
    pub fn clear(&mut self) {
        self.write_pos = 0;
        self.read_pos = 0;
        self.committed = false;
        self.sections = 0;
    }

    /// `free()`: return the store to its pool (or the allocator).
    pub fn free(self, pool: &mut BufferPool, rt: &mut Runtime, clock: &mut Clock) {
        if self.pooled {
            pool.release(rt, clock, self.store);
        } else {
            rt.free_direct(self.store, clock)
                .expect("buffer store is live");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtime::CostModel;

    fn setup() -> (Runtime, Clock, BufferPool) {
        (
            Runtime::new(CostModel::default()),
            Clock::new(),
            BufferPool::new(),
        )
    }

    #[test]
    fn raw_staging_roundtrip_with_offsets() {
        let (mut rt, mut c, mut pool) = setup();
        let src = rt.alloc_array::<i32>(8, &mut c).unwrap();
        for i in 0..8 {
            rt.array_set(src, i, i as i32 * 7, &mut c).unwrap();
        }
        let mut buf = Buffer::from_pool(&mut pool, &mut rt, &mut c, 64);
        // Stage a SUBSET: elements 2..6.
        buf.stage_array(&mut rt, &mut c, src, 2, 4).unwrap();
        assert_eq!(buf.len(), 16);
        buf.commit();
        let dst = rt.alloc_array::<i32>(8, &mut c).unwrap();
        buf.unstage_array(&mut rt, &mut c, dst, 1, 4).unwrap();
        for k in 0..4 {
            assert_eq!(
                rt.array_get(dst, 1 + k, &mut c).unwrap(),
                ((2 + k) as i32) * 7
            );
        }
        buf.free(&mut pool, &mut rt, &mut c);
    }

    #[test]
    fn sectioned_mode_multiple_types() {
        let (mut rt, mut c, mut pool) = setup();
        let a = rt.alloc_array::<i32>(3, &mut c).unwrap();
        let b = rt.alloc_array::<f64>(2, &mut c).unwrap();
        rt.array_write(a, 0, &[1, 2, 3], &mut c).unwrap();
        rt.array_write(b, 0, &[0.5, -0.5], &mut c).unwrap();

        let mut buf = Buffer::from_pool(&mut pool, &mut rt, &mut c, 256);
        buf.write(&mut rt, &mut c, a, 0, 3).unwrap();
        buf.write(&mut rt, &mut c, b, 0, 2).unwrap();
        assert_eq!(buf.sections(), 2);
        buf.commit();

        let a2 = rt.alloc_array::<i32>(3, &mut c).unwrap();
        let b2 = rt.alloc_array::<f64>(2, &mut c).unwrap();
        buf.read(&mut rt, &mut c, a2, 0, 3).unwrap();
        buf.read(&mut rt, &mut c, b2, 0, 2).unwrap();
        let mut out_a = [0i32; 3];
        rt.array_read(a2, 0, &mut out_a, &mut c).unwrap();
        assert_eq!(out_a, [1, 2, 3]);
        let mut out_b = [0f64; 2];
        rt.array_read(b2, 0, &mut out_b, &mut c).unwrap();
        assert_eq!(out_b, [0.5, -0.5]);
        buf.free(&mut pool, &mut rt, &mut c);
    }

    #[test]
    fn read_with_wrong_type_is_rejected() {
        let (mut rt, mut c, mut pool) = setup();
        let a = rt.alloc_array::<i32>(2, &mut c).unwrap();
        let mut buf = Buffer::from_pool(&mut pool, &mut rt, &mut c, 64);
        buf.write(&mut rt, &mut c, a, 0, 2).unwrap();
        buf.commit();
        let wrong = rt.alloc_array::<f64>(2, &mut c).unwrap();
        assert!(matches!(
            buf.read(&mut rt, &mut c, wrong, 0, 2),
            Err(MrtError::TypeMismatch { .. })
        ));
        buf.free(&mut pool, &mut rt, &mut c);
    }

    #[test]
    fn overflow_is_rejected() {
        let (mut rt, mut c, mut pool) = setup();
        let a = rt.alloc_array::<i64>(100, &mut c).unwrap();
        let mut buf = Buffer::from_pool(&mut pool, &mut rt, &mut c, 256);
        assert!(matches!(
            buf.stage_array(&mut rt, &mut c, a, 0, 100),
            Err(MrtError::BufferOverflow { .. })
        ));
        buf.free(&mut pool, &mut rt, &mut c);
    }

    #[test]
    fn write_after_commit_rejected_until_clear() {
        let (mut rt, mut c, mut pool) = setup();
        let a = rt.alloc_array::<i8>(4, &mut c).unwrap();
        let mut buf = Buffer::from_pool(&mut pool, &mut rt, &mut c, 64);
        buf.stage_array(&mut rt, &mut c, a, 0, 4).unwrap();
        buf.commit();
        assert!(buf.stage_array(&mut rt, &mut c, a, 0, 4).is_err());
        buf.clear();
        assert_eq!(buf.len(), 0);
        buf.stage_array(&mut rt, &mut c, a, 0, 4).unwrap();
        buf.free(&mut pool, &mut rt, &mut c);
    }

    #[test]
    fn encoding_switch_only_before_data() {
        let (mut rt, mut c, mut pool) = setup();
        let mut buf = Buffer::from_pool(&mut pool, &mut rt, &mut c, 64);
        buf.set_encoding(&mut rt, ByteOrder::Big).unwrap();
        assert_eq!(buf.encoding(), ByteOrder::Big);
        let a = rt.alloc_array::<i8>(1, &mut c).unwrap();
        buf.stage_array(&mut rt, &mut c, a, 0, 1).unwrap();
        assert!(buf.set_encoding(&mut rt, ByteOrder::Little).is_err());
        buf.free(&mut pool, &mut rt, &mut c);
    }

    #[test]
    fn free_returns_to_pool_for_reuse() {
        let (mut rt, mut c, mut pool) = setup();
        let buf = Buffer::from_pool(&mut pool, &mut rt, &mut c, 1024);
        let store = buf.store();
        buf.free(&mut pool, &mut rt, &mut c);
        let again = Buffer::from_pool(&mut pool, &mut rt, &mut c, 1024);
        assert_eq!(again.store(), store);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn stage_bytes_then_assume_filled_models_receive() {
        let (mut rt, mut c, mut pool) = setup();
        let mut buf = Buffer::from_pool(&mut pool, &mut rt, &mut c, 64);
        buf.stage_bytes(&mut rt, &mut c, &[9, 8, 7]).unwrap();
        assert_eq!(buf.len(), 3);
        buf.clear();
        // Receive path: data deposited by the native library.
        rt.direct_write_bytes(buf.store(), 0, &[1, 2, 3, 4], &mut c)
            .unwrap();
        buf.assume_filled(4).unwrap();
        let dst = rt.alloc_array::<i8>(4, &mut c).unwrap();
        buf.unstage_array(&mut rt, &mut c, dst, 0, 4).unwrap();
        assert_eq!(rt.array_get(dst, 3, &mut c).unwrap(), 4);
        buf.free(&mut pool, &mut rt, &mut c);
    }
}
