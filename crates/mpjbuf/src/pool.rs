//! The direct-buffer pool.
//!
//! "The proposed buffering layer avoids the overhead of creating a
//! ByteBuffer every time a message comprising of Java arrays is
//! communicated" — direct buffers are expensive to create
//! (`MemCosts::direct_alloc_fixed_ns`), so the pool keeps freed buffers on
//! power-of-two free lists and reuses them for the cost of a list pop.

use mrt::{DirectBuffer, Runtime};
use vtime::{Clock, VDur};

/// Pool behaviour counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions served from a free list.
    pub hits: u64,
    /// Acquisitions that had to allocate a fresh direct buffer.
    pub misses: u64,
    /// Buffers returned to the pool.
    pub releases: u64,
    /// Buffers currently lent out.
    pub outstanding: u64,
    /// Bytes currently parked on free lists.
    pub pooled_bytes: usize,
    /// Requests larger than the biggest size class, served by a transient
    /// exact-size buffer that bypasses the pool entirely.
    pub fallback_allocs: u64,
}

/// Smallest size class: 256 B.
const MIN_CLASS: u32 = 8;
/// Largest size class: 64 MiB.
const MAX_CLASS: u32 = 26;

/// A pool of direct ByteBuffers in power-of-two size classes.
pub struct BufferPool {
    classes: Vec<Vec<DirectBuffer>>,
    /// Cap on buffers parked per class (excess is freed on release).
    per_class_limit: usize,
    stats: PoolStats,
    /// Whether the oversized-request warning has been printed yet (one
    /// line per rank, not one per message).
    warned_fallback: bool,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    /// Empty pool with the default per-class retention limit (8).
    pub fn new() -> Self {
        Self::with_limit(8)
    }

    /// Empty pool retaining at most `per_class_limit` buffers per class.
    pub fn with_limit(per_class_limit: usize) -> Self {
        BufferPool {
            classes: vec![Vec::new(); (MAX_CLASS - MIN_CLASS + 1) as usize],
            per_class_limit,
            stats: PoolStats::default(),
            warned_fallback: false,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    fn class_of(size: usize) -> u32 {
        let bits = usize::BITS - size.max(1).saturating_sub(1).leading_zeros();
        bits.clamp(MIN_CLASS, MAX_CLASS)
    }

    /// Capacity a request of `size` bytes is rounded up to.
    pub fn rounded(size: usize) -> usize {
        1usize << Self::class_of(size)
    }

    /// Acquire a direct buffer of at least `size` bytes.
    ///
    /// Requests beyond the largest size class do not panic and do not
    /// grow the pool: they fall back to a transient exact-size buffer
    /// (counted in [`PoolStats::fallback_allocs`] and the
    /// `mpjbuf.pool.fallback_allocs` pvar) which [`BufferPool::release`]
    /// frees immediately instead of parking.
    pub fn acquire(&mut self, rt: &mut Runtime, clock: &mut Clock, size: usize) -> DirectBuffer {
        let _wp = obs::wallprof::span(obs::wallprof::Subsystem::Pool);
        obs::wallprof::add(obs::wallprof::Counter::PoolAcquires, 1);
        if size > 1 << MAX_CLASS {
            obs::wallprof::add(obs::wallprof::Counter::Allocs, 1);
            self.stats.fallback_allocs += 1;
            self.stats.outstanding += 1;
            obs::count("mpjbuf.pool.fallback_allocs", 1);
            obs::gauge_set("mpjbuf.pool.outstanding", self.stats.outstanding as i64);
            if !self.warned_fallback {
                self.warned_fallback = true;
                eprintln!(
                    "mpjbuf: warning: {size} B message exceeds the largest pool class \
                     ({} B); falling back to transient unpooled buffers",
                    1usize << MAX_CLASS
                );
            }
            let t0 = clock.now();
            let buf = rt.allocate_direct(size, clock);
            if obs::tracing_enabled() {
                obs::span(
                    "acquire",
                    "mpjbuf",
                    t0,
                    clock.now(),
                    vec![("bytes", obs::ArgValue::U64(buf.capacity() as u64))],
                );
            }
            return buf;
        }
        let class = Self::class_of(size);
        let idx = (class - MIN_CLASS) as usize;
        let t0 = clock.now();
        self.stats.outstanding += 1;
        obs::gauge_set("mpjbuf.pool.outstanding", self.stats.outstanding as i64);
        let buf = if let Some(buf) = self.classes[idx].pop() {
            self.stats.hits += 1;
            obs::count("mpjbuf.pool.hits", 1);
            self.stats.pooled_bytes -= buf.capacity();
            clock.charge(VDur::from_nanos(rt.cost().pool.acquire_hit_ns));
            buf
        } else {
            self.stats.misses += 1;
            obs::count("mpjbuf.pool.misses", 1);
            obs::wallprof::add(obs::wallprof::Counter::Allocs, 1);
            rt.allocate_direct(1usize << class, clock)
        };
        if obs::tracing_enabled() {
            obs::span(
                "acquire",
                "mpjbuf",
                t0,
                clock.now(),
                vec![("bytes", obs::ArgValue::U64(buf.capacity() as u64))],
            );
        }
        buf
    }

    /// Return a buffer to the pool (or free it if the class is full).
    /// Fallback buffers (larger than the biggest class) are freed, never
    /// parked — the pool's footprint stays bounded by `per_class_limit`.
    pub fn release(&mut self, rt: &mut Runtime, clock: &mut Clock, buf: DirectBuffer) {
        let _wp = obs::wallprof::span(obs::wallprof::Subsystem::Pool);
        if buf.capacity() > 1 << MAX_CLASS {
            self.stats.releases += 1;
            self.stats.outstanding = self.stats.outstanding.saturating_sub(1);
            obs::count("mpjbuf.pool.releases", 1);
            obs::gauge_set("mpjbuf.pool.outstanding", self.stats.outstanding as i64);
            clock.charge(VDur::from_nanos(rt.cost().pool.release_ns));
            rt.free_direct(buf, clock).expect("fallback buffer is live");
            return;
        }
        let class = Self::class_of(buf.capacity());
        debug_assert_eq!(
            1usize << class,
            buf.capacity(),
            "pool only sees its own buffers"
        );
        let idx = (class - MIN_CLASS) as usize;
        let t0 = clock.now();
        self.stats.releases += 1;
        self.stats.outstanding = self.stats.outstanding.saturating_sub(1);
        obs::count("mpjbuf.pool.releases", 1);
        obs::gauge_set("mpjbuf.pool.outstanding", self.stats.outstanding as i64);
        clock.charge(VDur::from_nanos(rt.cost().pool.release_ns));
        let cap = buf.capacity();
        if self.classes[idx].len() < self.per_class_limit {
            self.stats.pooled_bytes += buf.capacity();
            self.classes[idx].push(buf);
        } else {
            rt.free_direct(buf, clock).expect("pool buffer is live");
        }
        if obs::tracing_enabled() {
            obs::span(
                "release",
                "mpjbuf",
                t0,
                clock.now(),
                vec![("bytes", obs::ArgValue::U64(cap as u64))],
            );
        }
    }

    /// Free every parked buffer (shutdown).
    pub fn drain(&mut self, rt: &mut Runtime, clock: &mut Clock) {
        for list in &mut self.classes {
            for buf in list.drain(..) {
                rt.free_direct(buf, clock).expect("pool buffer is live");
            }
        }
        self.stats.pooled_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtime::CostModel;

    fn setup() -> (Runtime, Clock) {
        (Runtime::new(CostModel::default()), Clock::new())
    }

    #[test]
    fn size_classes_round_up_to_powers_of_two() {
        assert_eq!(BufferPool::rounded(1), 256);
        assert_eq!(BufferPool::rounded(256), 256);
        assert_eq!(BufferPool::rounded(257), 512);
        assert_eq!(BufferPool::rounded(100_000), 1 << 17);
    }

    #[test]
    fn reuse_hits_after_release() {
        let (mut rt, mut c) = setup();
        let mut pool = BufferPool::new();
        let b1 = pool.acquire(&mut rt, &mut c, 1000);
        assert_eq!(b1.capacity(), 1024);
        pool.release(&mut rt, &mut c, b1);
        let b2 = pool.acquire(&mut rt, &mut c, 900);
        assert_eq!(b1, b2, "same class buffer is reused");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.releases, s.outstanding), (1, 1, 1, 1));
    }

    #[test]
    fn reuse_is_much_cheaper_than_allocation() {
        let (mut rt, mut c) = setup();
        let mut pool = BufferPool::new();
        let t0 = c.now();
        let b = pool.acquire(&mut rt, &mut c, 65536);
        let t_miss = c.now() - t0;
        pool.release(&mut rt, &mut c, b);
        let t1 = c.now();
        let _b2 = pool.acquire(&mut rt, &mut c, 65536);
        let t_hit = c.now() - t1;
        assert!(
            t_miss.as_nanos() > 10.0 * t_hit.as_nanos(),
            "pooling must amortize allocateDirect: miss={t_miss:?} hit={t_hit:?}"
        );
    }

    #[test]
    fn distinct_classes_do_not_share() {
        let (mut rt, mut c) = setup();
        let mut pool = BufferPool::new();
        let small = pool.acquire(&mut rt, &mut c, 300);
        pool.release(&mut rt, &mut c, small);
        let big = pool.acquire(&mut rt, &mut c, 5000);
        assert_ne!(small, big);
        assert_eq!(big.capacity(), 8192);
    }

    #[test]
    fn per_class_limit_frees_excess() {
        let (mut rt, mut c) = setup();
        let mut pool = BufferPool::with_limit(1);
        let a = pool.acquire(&mut rt, &mut c, 256);
        let b = pool.acquire(&mut rt, &mut c, 256);
        let before = rt.direct_allocated_bytes();
        pool.release(&mut rt, &mut c, a);
        pool.release(&mut rt, &mut c, b); // over the limit: freed
        assert_eq!(rt.direct_allocated_bytes(), before - 256);
        assert_eq!(pool.stats().pooled_bytes, 256);
    }

    #[test]
    fn drain_frees_everything() {
        let (mut rt, mut c) = setup();
        let mut pool = BufferPool::new();
        let bufs: Vec<_> = (0..4).map(|_| pool.acquire(&mut rt, &mut c, 512)).collect();
        for b in bufs {
            pool.release(&mut rt, &mut c, b);
        }
        assert!(rt.direct_allocated_bytes() >= 4 * 512);
        pool.drain(&mut rt, &mut c);
        assert_eq!(rt.direct_allocated_bytes(), 0);
        assert_eq!(pool.stats().pooled_bytes, 0);
    }

    #[test]
    fn oversized_request_falls_back_to_transient_buffer() {
        let (mut rt, mut c) = setup();
        let mut pool = BufferPool::new();
        let size = (1 << 26) + 1;
        let buf = pool.acquire(&mut rt, &mut c, size);
        assert_eq!(buf.capacity(), size, "fallback is exact-size, not rounded");
        let s = pool.stats();
        assert_eq!((s.fallback_allocs, s.misses, s.outstanding), (1, 0, 1));
        // Releasing a fallback buffer frees it immediately: nothing is
        // parked, so pool footprint stays bounded.
        let before = rt.direct_allocated_bytes();
        pool.release(&mut rt, &mut c, buf);
        assert_eq!(rt.direct_allocated_bytes(), before - size);
        let s = pool.stats();
        assert_eq!((s.releases, s.outstanding, s.pooled_bytes), (1, 0, 0));
        // A second oversized round-trip allocates afresh (never pooled).
        let buf2 = pool.acquire(&mut rt, &mut c, size);
        assert_eq!(pool.stats().fallback_allocs, 2);
        pool.release(&mut rt, &mut c, buf2);
    }
}
