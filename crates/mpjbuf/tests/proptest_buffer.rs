//! Property tests for the buffering layer: sectioned write/read
//! roundtrips over arbitrary type sequences, and pool accounting.

use mpjbuf::{Buffer, BufferPool};
use mrt::prim::PrimType;
use mrt::Runtime;
use proptest::prelude::*;
use vtime::{Clock, CostModel};

#[derive(Debug, Clone)]
enum Section {
    Bytes(Vec<i8>),
    Shorts(Vec<i16>),
    Ints(Vec<i32>),
    Longs(Vec<i64>),
    Floats(Vec<f32>),
    Doubles(Vec<f64>),
    Chars(Vec<u16>),
}

fn arb_section() -> impl Strategy<Value = Section> {
    prop_oneof![
        proptest::collection::vec(any::<i8>(), 1..16).prop_map(Section::Bytes),
        proptest::collection::vec(any::<i16>(), 1..16).prop_map(Section::Shorts),
        proptest::collection::vec(any::<i32>(), 1..16).prop_map(Section::Ints),
        proptest::collection::vec(any::<i64>(), 1..16).prop_map(Section::Longs),
        proptest::collection::vec(any::<f32>(), 1..16).prop_map(Section::Floats),
        proptest::collection::vec(any::<f64>(), 1..16).prop_map(Section::Doubles),
        proptest::collection::vec(any::<u16>(), 1..16).prop_map(Section::Chars),
    ]
}

macro_rules! write_section {
    ($env:expr, $buf:expr, $vals:expr, $ty:ty) => {{
        let (rt, clock, buf) = $env;
        let arr = rt.alloc_array::<$ty>($vals.len(), clock).unwrap();
        rt.array_write(arr, 0, $vals, clock).unwrap();
        buf.write(rt, clock, arr, 0, $vals.len()).unwrap();
        let _ = $buf;
    }};
}

macro_rules! read_section {
    ($rt:expr, $clock:expr, $buf:expr, $vals:expr, $ty:ty) => {{
        let arr = $rt.alloc_array::<$ty>($vals.len(), $clock).unwrap();
        $buf.read($rt, $clock, arr, 0, $vals.len()).unwrap();
        let mut got = vec![<$ty>::default(); $vals.len()];
        $rt.array_read(arr, 0, &mut got, $clock).unwrap();
        prop_assert!(
            got.iter().zip($vals.iter()).all(|(a, b)| a == b || (a != a && b != b)),
            "section roundtrip mismatch"
        );
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sectioned_roundtrip_arbitrary_type_sequence(sections in proptest::collection::vec(arb_section(), 1..8)) {
        let mut rt = Runtime::new(CostModel::default());
        let mut clock = Clock::new();
        let mut pool = BufferPool::new();
        let mut buf = Buffer::from_pool(&mut pool, &mut rt, &mut clock, 16 * 1024);

        for s in &sections {
            match s {
                Section::Bytes(v) => write_section!((&mut rt, &mut clock, &mut buf), &mut buf, v, i8),
                Section::Shorts(v) => write_section!((&mut rt, &mut clock, &mut buf), &mut buf, v, i16),
                Section::Ints(v) => write_section!((&mut rt, &mut clock, &mut buf), &mut buf, v, i32),
                Section::Longs(v) => write_section!((&mut rt, &mut clock, &mut buf), &mut buf, v, i64),
                Section::Floats(v) => write_section!((&mut rt, &mut clock, &mut buf), &mut buf, v, f32),
                Section::Doubles(v) => write_section!((&mut rt, &mut clock, &mut buf), &mut buf, v, f64),
                Section::Chars(v) => write_section!((&mut rt, &mut clock, &mut buf), &mut buf, v, u16),
            }
        }
        prop_assert_eq!(buf.sections() as usize, sections.len());
        buf.commit();
        for s in &sections {
            match s {
                Section::Bytes(v) => read_section!(&mut rt, &mut clock, &mut buf, v, i8),
                Section::Shorts(v) => read_section!(&mut rt, &mut clock, &mut buf, v, i16),
                Section::Ints(v) => read_section!(&mut rt, &mut clock, &mut buf, v, i32),
                Section::Longs(v) => read_section!(&mut rt, &mut clock, &mut buf, v, i64),
                Section::Floats(v) => read_section!(&mut rt, &mut clock, &mut buf, v, f32),
                Section::Doubles(v) => read_section!(&mut rt, &mut clock, &mut buf, v, f64),
                Section::Chars(v) => read_section!(&mut rt, &mut clock, &mut buf, v, u16),
            }
        }
        buf.free(&mut pool, &mut rt, &mut clock);
    }

    #[test]
    fn section_headers_describe_their_sections(
        ints in proptest::collection::vec(any::<i32>(), 1..10),
        doubles in proptest::collection::vec(any::<f64>(), 1..10),
    ) {
        let mut rt = Runtime::new(CostModel::default());
        let mut clock = Clock::new();
        let mut pool = BufferPool::new();
        let mut buf = Buffer::from_pool(&mut pool, &mut rt, &mut clock, 4096);
        let ia = rt.alloc_array::<i32>(ints.len(), &mut clock).unwrap();
        rt.array_write(ia, 0, &ints, &mut clock).unwrap();
        let da = rt.alloc_array::<f64>(doubles.len(), &mut clock).unwrap();
        rt.array_write(da, 0, &doubles, &mut clock).unwrap();
        buf.write(&mut rt, &mut clock, ia, 0, ints.len()).unwrap();
        buf.write(&mut rt, &mut clock, da, 0, doubles.len()).unwrap();
        buf.commit();
        let (t1, n1) = buf.get_section_header(&rt, &mut clock).unwrap();
        prop_assert_eq!(t1, PrimType::Int);
        prop_assert_eq!(n1, ints.len());
        // Skip the data by unstaging it.
        let skip = rt.alloc_array::<i32>(n1, &mut clock).unwrap();
        buf.unstage_array(&mut rt, &mut clock, skip, 0, n1).unwrap();
        let (t2, n2) = buf.get_section_header(&rt, &mut clock).unwrap();
        prop_assert_eq!(t2, PrimType::Double);
        prop_assert_eq!(n2, doubles.len());
        buf.free(&mut pool, &mut rt, &mut clock);
    }

    #[test]
    fn pool_accounting_balances(sizes in proptest::collection::vec(1usize..65536, 1..24)) {
        let mut rt = Runtime::new(CostModel::default());
        let mut clock = Clock::new();
        let mut pool = BufferPool::new();
        let mut held = Vec::new();
        for (i, &sz) in sizes.iter().enumerate() {
            held.push(pool.acquire(&mut rt, &mut clock, sz));
            if i % 3 == 2 {
                let b = held.remove(0);
                pool.release(&mut rt, &mut clock, b);
            }
        }
        let n = held.len();
        for b in held.drain(..) {
            pool.release(&mut rt, &mut clock, b);
        }
        let s = pool.stats();
        prop_assert_eq!(s.outstanding, 0);
        prop_assert_eq!(s.hits + s.misses, sizes.len() as u64);
        prop_assert_eq!(s.releases as usize, sizes.len());
        let _ = n;
        // Drain returns every pooled byte to the allocator.
        pool.drain(&mut rt, &mut clock);
        prop_assert_eq!(pool.stats().pooled_bytes, 0);
    }
}
