//! Randomized tests for the buffering layer: sectioned write/read
//! roundtrips over arbitrary type sequences, and pool accounting.
//! Driven by a deterministic LCG so every run replays the same cases.

use mpjbuf::{Buffer, BufferPool};
use mrt::prim::PrimType;
use mrt::Runtime;
use vtime::{Clock, CostModel};

/// Knuth LCG.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() >> 33) as usize % n
    }
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }
}

#[derive(Debug, Clone)]
enum Section {
    Bytes(Vec<i8>),
    Shorts(Vec<i16>),
    Ints(Vec<i32>),
    Longs(Vec<i64>),
    Floats(Vec<f32>),
    Doubles(Vec<f64>),
    Chars(Vec<u16>),
}

fn gen_section(rng: &mut Lcg) -> Section {
    let n = rng.range(1, 16);
    match rng.below(7) {
        0 => Section::Bytes((0..n).map(|_| rng.next() as i8).collect()),
        1 => Section::Shorts((0..n).map(|_| rng.next() as i16).collect()),
        2 => Section::Ints((0..n).map(|_| rng.next() as i32).collect()),
        3 => Section::Longs((0..n).map(|_| rng.next() as i64).collect()),
        4 => Section::Floats((0..n).map(|_| f32::from_bits(rng.next() as u32)).collect()),
        5 => Section::Doubles((0..n).map(|_| f64::from_bits(rng.next())).collect()),
        _ => Section::Chars((0..n).map(|_| rng.next() as u16).collect()),
    }
}

macro_rules! write_section {
    ($rt:expr, $clock:expr, $buf:expr, $vals:expr, $ty:ty) => {{
        let arr = $rt.alloc_array::<$ty>($vals.len(), $clock).unwrap();
        $rt.array_write(arr, 0, $vals, $clock).unwrap();
        $buf.write($rt, $clock, arr, 0, $vals.len()).unwrap();
    }};
}

macro_rules! read_section {
    ($rt:expr, $clock:expr, $buf:expr, $vals:expr, $ty:ty) => {{
        let arr = $rt.alloc_array::<$ty>($vals.len(), $clock).unwrap();
        $buf.read($rt, $clock, arr, 0, $vals.len()).unwrap();
        let mut got = vec![<$ty>::default(); $vals.len()];
        $rt.array_read(arr, 0, &mut got, $clock).unwrap();
        assert!(
            got.iter()
                .zip($vals.iter())
                .all(|(a, b)| a == b || (a != a && b != b)),
            "section roundtrip mismatch"
        );
    }};
}

#[test]
fn sectioned_roundtrip_arbitrary_type_sequence() {
    let mut rng = Lcg::new(21);
    for _case in 0..48 {
        let sections: Vec<Section> = (0..rng.range(1, 8))
            .map(|_| gen_section(&mut rng))
            .collect();
        let mut rt = Runtime::new(CostModel::default());
        let mut clock = Clock::new();
        let mut pool = BufferPool::new();
        let mut buf = Buffer::from_pool(&mut pool, &mut rt, &mut clock, 16 * 1024);

        for s in &sections {
            match s {
                Section::Bytes(v) => write_section!(&mut rt, &mut clock, &mut buf, v, i8),
                Section::Shorts(v) => write_section!(&mut rt, &mut clock, &mut buf, v, i16),
                Section::Ints(v) => write_section!(&mut rt, &mut clock, &mut buf, v, i32),
                Section::Longs(v) => write_section!(&mut rt, &mut clock, &mut buf, v, i64),
                Section::Floats(v) => write_section!(&mut rt, &mut clock, &mut buf, v, f32),
                Section::Doubles(v) => write_section!(&mut rt, &mut clock, &mut buf, v, f64),
                Section::Chars(v) => write_section!(&mut rt, &mut clock, &mut buf, v, u16),
            }
        }
        assert_eq!(buf.sections() as usize, sections.len());
        buf.commit();
        for s in &sections {
            match s {
                Section::Bytes(v) => read_section!(&mut rt, &mut clock, &mut buf, v, i8),
                Section::Shorts(v) => read_section!(&mut rt, &mut clock, &mut buf, v, i16),
                Section::Ints(v) => read_section!(&mut rt, &mut clock, &mut buf, v, i32),
                Section::Longs(v) => read_section!(&mut rt, &mut clock, &mut buf, v, i64),
                Section::Floats(v) => read_section!(&mut rt, &mut clock, &mut buf, v, f32),
                Section::Doubles(v) => read_section!(&mut rt, &mut clock, &mut buf, v, f64),
                Section::Chars(v) => read_section!(&mut rt, &mut clock, &mut buf, v, u16),
            }
        }
        buf.free(&mut pool, &mut rt, &mut clock);
    }
}

#[test]
fn section_headers_describe_their_sections() {
    let mut rng = Lcg::new(22);
    for _case in 0..24 {
        let ints: Vec<i32> = (0..rng.range(1, 10)).map(|_| rng.next() as i32).collect();
        let doubles: Vec<f64> = (0..rng.range(1, 10))
            .map(|_| f64::from_bits(rng.next()))
            .collect();
        let mut rt = Runtime::new(CostModel::default());
        let mut clock = Clock::new();
        let mut pool = BufferPool::new();
        let mut buf = Buffer::from_pool(&mut pool, &mut rt, &mut clock, 4096);
        let ia = rt.alloc_array::<i32>(ints.len(), &mut clock).unwrap();
        rt.array_write(ia, 0, &ints, &mut clock).unwrap();
        let da = rt.alloc_array::<f64>(doubles.len(), &mut clock).unwrap();
        rt.array_write(da, 0, &doubles, &mut clock).unwrap();
        buf.write(&mut rt, &mut clock, ia, 0, ints.len()).unwrap();
        buf.write(&mut rt, &mut clock, da, 0, doubles.len())
            .unwrap();
        buf.commit();
        let (t1, n1) = buf.get_section_header(&rt, &mut clock).unwrap();
        assert_eq!(t1, PrimType::Int);
        assert_eq!(n1, ints.len());
        // Skip the data by unstaging it.
        let skip = rt.alloc_array::<i32>(n1, &mut clock).unwrap();
        buf.unstage_array(&mut rt, &mut clock, skip, 0, n1).unwrap();
        let (t2, n2) = buf.get_section_header(&rt, &mut clock).unwrap();
        assert_eq!(t2, PrimType::Double);
        assert_eq!(n2, doubles.len());
        buf.free(&mut pool, &mut rt, &mut clock);
    }
}

#[test]
fn pool_accounting_balances() {
    let mut rng = Lcg::new(23);
    for _case in 0..32 {
        let sizes: Vec<usize> = (0..rng.range(1, 24)).map(|_| rng.range(1, 65536)).collect();
        let mut rt = Runtime::new(CostModel::default());
        let mut clock = Clock::new();
        let mut pool = BufferPool::new();
        let mut held = Vec::new();
        for (i, &sz) in sizes.iter().enumerate() {
            held.push(pool.acquire(&mut rt, &mut clock, sz));
            if i % 3 == 2 {
                let b = held.remove(0);
                pool.release(&mut rt, &mut clock, b);
            }
        }
        for b in held.drain(..) {
            pool.release(&mut rt, &mut clock, b);
        }
        let s = pool.stats();
        assert_eq!(s.outstanding, 0);
        assert_eq!(s.hits + s.misses, sizes.len() as u64);
        assert_eq!(s.releases as usize, sizes.len());
        // Drain returns every pooled byte to the allocator.
        pool.drain(&mut rt, &mut clock);
        assert_eq!(pool.stats().pooled_bytes, 0);
    }
}
